// Benchmarks regenerating every table and figure of the paper's evaluation
// (one testing.B benchmark per artifact), at reduced "quick" scale so that
// `go test -bench=. -benchmem` completes in minutes. Full-scale runs:
// `go run ./cmd/nambench -exp all`.
//
// Each benchmark reports the headline metric of its figure via
// b.ReportMetric (virtual-time ops/s, GB/s, or ns latency); the paper's
// qualitative result is asserted where it is the artifact's point.
package rdmatree_test

import (
	"io"
	"testing"

	"github.com/namdb/rdmatree/internal/analysis"
	"github.com/namdb/rdmatree/internal/bench"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma/simnet"
	"github.com/namdb/rdmatree/internal/workload"
)

// quick is the scale used by all benchmarks.
var quick = bench.QuickScale

func runPoint(b *testing.B, cfg bench.Config) bench.Result {
	b.Helper()
	res, err := bench.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func pointCfg(design nam.Design, clients int) bench.Config {
	machines := (clients + 39) / 40
	return bench.Config{
		Design:    design,
		Topology:  nam.PaperTopology(4, machines, (clients+machines-1)/machines),
		DataSize:  quick.DataSize,
		Mix:       workload.WorkloadA,
		HeadEvery: 32,
		MeasureNS: quick.MeasurePointNS,
		Seed:      20190630,
	}
}

func rangeCfg(design nam.Design, clients int, sel float64) bench.Config {
	cfg := pointCfg(design, clients)
	cfg.Mix = workload.WorkloadB
	cfg.Selectivity = sel
	cfg.MeasureNS = quick.MeasureRangeNS
	return cfg
}

// BenchmarkTable1Model evaluates the Table 1 symbol derivations.
func BenchmarkTable1Model(b *testing.B) {
	p := analysis.Defaults()
	for i := 0; i < b.N; i++ {
		if p.Fanout() != 42 || p.HeightFG() != 4 {
			b.Fatal("Table 1 example column diverged")
		}
	}
}

// BenchmarkTable2Model evaluates the Table 2 formulas.
func BenchmarkTable2Model(b *testing.B) {
	p := analysis.Defaults()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, s := range []analysis.Scheme{analysis.FG, analysis.CGRange, analysis.CGHash} {
			sink += analysis.MaxThroughput(p, s, analysis.Query{Range: true, Sel: 0.001, Skew: true, Z: 10})
		}
	}
	_ = sink
}

// BenchmarkFig3Analytic regenerates the Figure 3 series and asserts its
// headline: CG stagnates under skew while FG scales.
func BenchmarkFig3Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := analysis.Fig3Series(analysis.Defaults(), 0.001, 10, []int{2, 4, 8, 16, 32, 64})
		fg, cgSkew := series[0], series[3]
		if fg.Y[5] < 10*cgSkew.Y[5] {
			b.Fatal("figure 3 shape diverged")
		}
	}
}

// BenchmarkTable3Workloads exercises the four workload generators.
func BenchmarkTable3Workloads(b *testing.B) {
	gens := make([]*workload.Generator, 0, 4)
	for _, m := range []workload.Mix{workload.WorkloadA, workload.WorkloadB, workload.WorkloadC, workload.WorkloadD} {
		g, err := workload.NewGenerator(workload.Config{Mix: m, DataSize: 1 << 20, Selectivity: 0.01, Seed: 1}, 0)
		if err != nil {
			b.Fatal(err)
		}
		gens = append(gens, g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gens[i%4].Next()
	}
}

// BenchmarkFig7ThroughputSkew reproduces Figure 7(a)'s headline: skewed data
// collapses coarse-grained point throughput, fine-grained is unaffected.
func BenchmarkFig7ThroughputSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cg := pointCfg(nam.CoarseGrained, 120)
		cg.SkewedData = true
		cgRes := runPoint(b, cg)
		fg := pointCfg(nam.FineGrained, 120)
		fg.SkewedData = true
		fgRes := runPoint(b, fg)
		cgU := runPoint(b, pointCfg(nam.CoarseGrained, 120))
		if cgRes.Throughput >= cgU.Throughput*0.95 {
			b.Fatal("coarse-grained unaffected by skew")
		}
		b.ReportMetric(cgRes.Throughput, "cg-skew-ops/s")
		b.ReportMetric(fgRes.Throughput, "fg-skew-ops/s")
	}
}

// BenchmarkFig8ThroughputUniform reproduces Figure 8(a)'s ordering at high
// load: hybrid >= coarse-grained > fine-grained for point queries.
func BenchmarkFig8ThroughputUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cg := runPoint(b, pointCfg(nam.CoarseGrained, 120))
		// The paper's Figure 8 assumes the Listing-2 protocol (two READs
		// per level); the default fused doorbell batch amortizes enough
		// server-NIC cost to flip this ordering. Pin the legacy protocol
		// here; the batched path is measured by the rtt experiment.
		fgCfg := pointCfg(nam.FineGrained, 120)
		fgCfg.LegacyReads = true
		fg := runPoint(b, fgCfg)
		hy := runPoint(b, pointCfg(nam.Hybrid, 120))
		if !(hy.Throughput > fg.Throughput && cg.Throughput > fg.Throughput) {
			b.Fatalf("figure 8 ordering diverged: cg=%f fg=%f hy=%f",
				cg.Throughput, fg.Throughput, hy.Throughput)
		}
		b.ReportMetric(hy.Throughput, "hybrid-ops/s")
		b.ReportMetric(cg.Throughput, "cg-ops/s")
		b.ReportMetric(fg.Throughput, "fg-ops/s")
	}
}

// BenchmarkFig9NetworkUtilization reproduces Figure 9(a): the one-sided
// design moves far more bytes per point query than the RPC design.
func BenchmarkFig9NetworkUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cg := pointCfg(nam.CoarseGrained, 120)
		cg.SkewedData = true
		fg := pointCfg(nam.FineGrained, 120)
		fg.SkewedData = true
		cgRes, fgRes := runPoint(b, cg), runPoint(b, fg)
		if fgRes.NetGBps <= cgRes.NetGBps {
			b.Fatal("figure 9 shape diverged")
		}
		b.ReportMetric(cgRes.NetGBps, "cg-GB/s")
		b.ReportMetric(fgRes.NetGBps, "fg-GB/s")
	}
}

// BenchmarkFig10DataSize sweeps the data size (Figure 10, point queries).
func BenchmarkFig10DataSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range quick.DataSizes {
			cfg := pointCfg(nam.Hybrid, 120)
			cfg.DataSize = d
			res := runPoint(b, cfg)
			if d == quick.DataSizes[0] {
				b.ReportMetric(res.Throughput, "smallest-D-ops/s")
			}
		}
	}
}

// BenchmarkFig11MemoryServers reproduces Figure 11(c)'s headline: the
// fine-grained design benefits from more memory servers even under skew; the
// coarse-grained design does not.
func BenchmarkFig11MemoryServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		get := func(d nam.Design, servers int) float64 {
			cfg := pointCfg(d, 120)
			cfg.Topology = nam.PaperTopology(servers, 3, 40)
			cfg.SkewedData = true
			return runPoint(b, cfg).Throughput
		}
		fg2, fg8 := get(nam.FineGrained, 2), get(nam.FineGrained, 8)
		cg2, cg8 := get(nam.CoarseGrained, 2), get(nam.CoarseGrained, 8)
		if fg8 <= fg2 {
			b.Fatalf("fine-grained does not scale with servers under skew: %f -> %f", fg2, fg8)
		}
		if cg8 > cg2*1.5 {
			b.Fatalf("coarse-grained scaled too well under skew: %f -> %f", cg2, cg8)
		}
		b.ReportMetric(fg8/fg2, "fg-scaling-x")
		b.ReportMetric(cg8/cg2, "cg-scaling-x")
	}
}

// BenchmarkFig12Inserts runs workloads C and D (Figure 12).
func BenchmarkFig12Inserts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mix := range []workload.Mix{workload.WorkloadC, workload.WorkloadD} {
			for _, d := range []nam.Design{nam.CoarseGrained, nam.FineGrained, nam.Hybrid} {
				cfg := pointCfg(d, 120)
				cfg.Mix = mix
				res := runPoint(b, cfg)
				if mix.Name == "D" && d == nam.FineGrained {
					b.ReportMetric(res.Throughput, "fg-D-ops/s")
				}
			}
		}
	}
}

// BenchmarkFig13LatencySkew reproduces Figure 13(a): latency inflates under
// load.
func BenchmarkFig13LatencySkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lo := pointCfg(nam.CoarseGrained, 20)
		lo.SkewedData = true
		hi := pointCfg(nam.CoarseGrained, 120)
		hi.SkewedData = true
		loRes, hiRes := runPoint(b, lo), runPoint(b, hi)
		if hiRes.Latency.Percentile(50) <= loRes.Latency.Percentile(50) {
			b.Fatal("latency did not inflate under load")
		}
		b.ReportMetric(float64(hiRes.Latency.Percentile(50)), "p50-ns-high-load")
	}
}

// BenchmarkFig14LatencyUniform reproduces Figure 14(a): at low load the
// RPC-based design has lower point latency than the multi-round-trip
// one-sided design.
func BenchmarkFig14LatencyUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cg := runPoint(b, pointCfg(nam.CoarseGrained, 20))
		// As in Figure 8: the paper's one-sided latency assumes two READs
		// per level, so the legacy protocol is pinned for this figure.
		fgCfg := pointCfg(nam.FineGrained, 20)
		fgCfg.LegacyReads = true
		fg := runPoint(b, fgCfg)
		if fg.Latency.Percentile(50) <= cg.Latency.Percentile(50) {
			b.Fatal("figure 14 low-load ordering diverged")
		}
		b.ReportMetric(float64(cg.Latency.Percentile(50)), "cg-p50-ns")
		b.ReportMetric(float64(fg.Latency.Percentile(50)), "fg-p50-ns")
	}
}

// BenchmarkFig15CoLocation reproduces Figure 15: co-location buys a constant
// factor.
func BenchmarkFig15CoLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mk := func(co bool) bench.Config {
			cfg := pointCfg(nam.CoarseGrained, 80)
			cfg.Topology = nam.Topology{
				MemServers: 4, MemServersPerMachine: 1,
				ComputeMachines: 4, ClientsPerMachine: 20,
				CoLocated: co,
			}
			return cfg
		}
		dist, co := runPoint(b, mk(false)), runPoint(b, mk(true))
		if co.Throughput <= dist.Throughput {
			b.Fatal("co-location not faster")
		}
		b.ReportMetric(co.Throughput/dist.Throughput, "colocation-gain-x")
	}
}

// BenchmarkCacheA4 reproduces the Appendix A.4 extension: compute-side
// caching lifts fine-grained read throughput.
func BenchmarkCacheA4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := runPoint(b, pointCfg(nam.FineGrained, 120))
		cached := pointCfg(nam.FineGrained, 120)
		cached.CachePages = 1024
		cRes := runPoint(b, cached)
		if cRes.Throughput <= plain.Throughput {
			b.Fatal("cache did not help read-only point queries")
		}
		b.ReportMetric(cRes.Throughput/plain.Throughput, "cache-gain-x")
	}
}

// BenchmarkAblationHeadNodes measures the Section 4.3 prefetch optimization:
// ranges with head nodes beat ranges without.
func BenchmarkAblationHeadNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Section 4.3 motivates head nodes against the Listing-2 protocol's
		// two READs per leaf; the fused read path already batches each leaf's
		// validation, which narrows the gap enough to erase it at saturation.
		// Quantify the paper's ablation on the paper's protocol.
		with := rangeCfg(nam.FineGrained, 120, 0.01)
		with.LegacyReads = true
		without := rangeCfg(nam.FineGrained, 120, 0.01)
		without.LegacyReads = true
		without.HeadEvery = 0
		wRes, woRes := runPoint(b, with), runPoint(b, without)
		if wRes.Throughput <= woRes.Throughput {
			b.Fatalf("head nodes did not help: %f vs %f", wRes.Throughput, woRes.Throughput)
		}
		b.ReportMetric(wRes.Throughput/woRes.Throughput, "headnode-gain-x")
	}
}

// BenchmarkAblationPageSize sweeps P for fine-grained point queries.
func BenchmarkAblationPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []int{256, 1024, 4096} {
			cfg := pointCfg(nam.FineGrained, 120)
			cfg.PageBytes = p
			runPoint(b, cfg)
		}
	}
}

// BenchmarkAblationInsertHotspot shows append-key inserts collapsing the
// one-sided design through remote-spinlock contention.
func BenchmarkAblationInsertHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		uni := pointCfg(nam.FineGrained, 120)
		uni.Mix = workload.WorkloadD
		app := pointCfg(nam.FineGrained, 120)
		app.Mix = workload.WorkloadD
		app.InsertAppend = true
		uRes, aRes := runPoint(b, uni), runPoint(b, app)
		if aRes.Throughput >= uRes.Throughput {
			b.Fatal("append hotspot did not hurt")
		}
		b.ReportMetric(uRes.Throughput/aRes.Throughput, "hotspot-penalty-x")
	}
}

// BenchmarkAblationSRQCores sweeps the handler core pool of the RPC design.
func BenchmarkAblationSRQCores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var last float64
		for _, cores := range []int{4, 20} {
			cores := cores
			cfg := pointCfg(nam.CoarseGrained, 120)
			cfg.Tune = func(sc *simnet.Config) {
				sc.HandlerCoresPerMachine = cores
				sc.HandlersPerServer = cores
			}
			last = runPoint(b, cfg).Throughput
		}
		b.ReportMetric(last, "20core-ops/s")
	}
}

// BenchmarkExperimentRunners executes every registered experiment at quick
// scale end-to-end (output discarded) — the full regeneration path.
func BenchmarkExperimentRunners(b *testing.B) {
	if testing.Short() {
		b.Skip("full experiment sweep")
	}
	for i := 0; i < b.N; i++ {
		for _, e := range []string{"table1", "table2", "fig3", "table3"} {
			exp, ok := bench.Lookup(e)
			if !ok {
				b.Fatalf("experiment %s missing", e)
			}
			if err := exp.Run(io.Discard, quick); err != nil {
				b.Fatal(err)
			}
		}
	}
}
