// Command analytic prints the theoretical scalability study of Section 2.3:
// the symbols of Table 1, the evaluated formulas of Table 2, and the
// Figure 3 maximal-throughput curves.
//
// Usage:
//
//	analytic                       # paper defaults (Table 1's example column)
//	analytic -servers 8 -bw 100 -data 1e9 -sel 0.01 -z 20
package main

import (
	"flag"
	"fmt"

	"github.com/namdb/rdmatree/internal/analysis"
	"github.com/namdb/rdmatree/internal/stats"
)

func main() {
	var (
		servers = flag.Int("servers", 4, "number of memory servers S")
		bwGB    = flag.Float64("bw", 50, "bandwidth per memory server in GB/s")
		page    = flag.Int("page", 1024, "page size P in bytes")
		data    = flag.Float64("data", 100e6, "data size D in tuples")
		keySize = flag.Int("key", 8, "key size K in bytes")
		sel     = flag.Float64("sel", 0.001, "range selectivity s")
		z       = flag.Float64("z", 10, "skew read-amplification z")
	)
	flag.Parse()

	p := analysis.Params{S: *servers, BW: *bwGB * 1e9, P: *page, D: *data, K: *keySize}
	fmt.Println(analysis.Table1String(p))
	fmt.Println(analysis.Table2String(p, *sel, *z))
	fmt.Printf("Figure 3: Maximal Throughput, Range Queries (Sel=%g, z=%g)\n", *sel, *z)
	series := analysis.Fig3Series(p, *sel, *z, []int{2, 4, 8, 16, 32, 64})
	fmt.Println(stats.Table("memory servers", "max ops/s", series...))
}
