// Command nambench regenerates the tables and figures of the paper's
// evaluation (Section 6 and Appendix A) on the simulated NAM cluster.
//
// Usage:
//
//	nambench -exp fig8              # one experiment
//	nambench -exp all               # everything, in paper order
//	nambench -exp fig7 -quick       # reduced scale
//	nambench -list                  # available experiments
//	nambench -exp fig8 -size 1000000 -clients 20,40,80
//	nambench -regress BENCH_rtt.json,BENCH_pipeline.json  # CI gate: fail on >10% regression
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/namdb/rdmatree/internal/bench"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/telemetry"
)

// lintMetrics validates an OpenMetrics exposition read from a file or
// scraped from an http(s) URL — the CI smoke job runs it against a live
// namserver /metrics endpoint.
func lintMetrics(src string) error {
	var raw []byte
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		raw, err = io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
	} else {
		var err error
		raw, err = os.ReadFile(src)
		if err != nil {
			return err
		}
	}
	return obs.LintOpenMetrics(string(raw))
}

// runRegress dispatches one baseline file to its regression gate by name:
// BENCH_rtt* re-runs the doorbell-batching experiment, BENCH_pipeline* the
// async-dataplane sweep, BENCH_replication* the page-replication comparison,
// BENCH_adaptive* the adaptive traversal-policy sweep.
func runRegress(w io.Writer, path string) error {
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	switch {
	case strings.HasPrefix(name, "BENCH_rtt"):
		return bench.RegressRTT(w, path)
	case strings.HasPrefix(name, "BENCH_pipeline"):
		return bench.RegressPipeline(w, path)
	case strings.HasPrefix(name, "BENCH_replication"):
		return bench.RegressReplication(w, path)
	case strings.HasPrefix(name, "BENCH_adaptive"):
		return bench.RegressAdaptive(w, path)
	default:
		return fmt.Errorf("-regress: unrecognized baseline %q (expected BENCH_rtt*.json, BENCH_pipeline*.json, BENCH_replication*.json or BENCH_adaptive*.json)", path)
	}
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (table1,table2,table3,fig3,fig7..fig15) or 'all'")
		list     = flag.Bool("list", false, "list experiments")
		quick    = flag.Bool("quick", false, "reduced scale")
		size     = flag.Int("size", 0, "override data size D")
		clients  = flag.String("clients", "", "override client sweep, e.g. 20,40,80")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON timeline of every run to this file (open in Perfetto or chrome://tracing)")
		metrics  = flag.String("metrics", "", "serve live expvar (/debug/vars), pprof (/debug/pprof/), and OpenMetrics (/metrics) on this address while experiments run")
		noverbs  = flag.Bool("noverbs", false, "omit the per-verb breakdown tables from experiment reports")
		regress  = flag.String("regress", "", "comma-separated bench baselines (BENCH_rtt.json, BENCH_pipeline.json, BENCH_replication.json, BENCH_adaptive.json); re-runs each experiment at the baseline's scale and fails on >10% regression")
		lintmet  = flag.String("lintmetrics", "", "validate an OpenMetrics exposition (file path or http URL) and exit")
	)
	flag.Parse()

	if *regress != "" {
		for _, path := range strings.Split(*regress, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			if err := runRegress(os.Stdout, path); err != nil {
				fmt.Fprintf(os.Stderr, "nambench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *lintmet != "" {
		if err := lintMetrics(*lintmet); err != nil {
			fmt.Fprintf(os.Stderr, "nambench: -lintmetrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid OpenMetrics exposition\n", *lintmet)
		return
	}

	if *noverbs {
		bench.Verbs = false
	}
	var tracer *telemetry.Tracer
	var traceFile *os.File
	if *traceOut != "" {
		// Create the file up front so a bad path fails before hours of
		// experiments, not after.
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nambench: -trace: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		tracer = telemetry.NewTracer()
		bench.LiveTracer = tracer
	}
	if *metrics != "" {
		bench.LiveRecorder = telemetry.NewRecorder(rdma.MaxServers)
		telemetry.Publish("nambench", bench.LiveRecorder)
		// Live per-op latency histograms: every benchmark client gets a
		// flight-recorder Log feeding this set, and /metrics exports it as
		// OpenMetrics alongside the verb and recovery counters.
		bench.LiveMetrics = &obs.MetricsSet{}
		telemetry.Handle("/metrics", obs.MetricsHandler(bench.LiveRecorder, bench.LiveMetrics))
		addr, err := telemetry.ServeMetrics(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nambench: -metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nambench: metrics on http://%s/debug/vars and http://%s/metrics\n", addr, addr)
	}

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, e := range bench.AllExperiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			os.Exit(0)
		}
	}

	sc := bench.FullScale
	if *quick {
		sc = bench.QuickScale
	}
	if *size > 0 {
		sc.DataSize = *size
	}
	if *clients != "" {
		sc.Clients = nil
		for _, part := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "nambench: bad -clients value %q\n", part)
				os.Exit(2)
			}
			sc.Clients = append(sc.Clients, n)
		}
	}

	var todo []bench.Experiment
	switch *exp {
	case "all":
		todo = bench.AllExperiments()
	case "paper":
		todo = bench.Experiments()
	default:
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "nambench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		todo = []bench.Experiment{e}
	}

	for _, e := range todo {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, sc); err != nil {
			fmt.Fprintf(os.Stderr, "nambench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if tracer != nil {
		werr := tracer.WriteJSON(traceFile)
		if cerr := traceFile.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "nambench: -trace: %v\n", werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s", tracer.Len(), *traceOut)
		if d := tracer.Dropped(); d > 0 {
			fmt.Printf(" (%d dropped past the %d-event buffer)", d, telemetry.DefaultMaxEvents)
		}
		fmt.Println()
	}
}
