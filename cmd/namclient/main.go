// Command namclient is a compute-server client for a NAM cluster of
// namserver processes, using the fine-grained one-sided index design
// (Section 4): all index logic runs here, the memory servers stay passive.
//
// Usage:
//
//	namclient -servers :7000,:7001 build -size 100000
//	namclient -servers :7000,:7001 put 42 4200
//	namclient -servers :7000,:7001 get 42
//	namclient -servers :7000,:7001 del 42 4200
//	namclient -servers :7000,:7001 scan 100 200
//	namclient -servers :7000,:7001 bench -clients 8 -seconds 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/coarse"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/core/hybrid"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/retry"
	"github.com/namdb/rdmatree/internal/rdma/tcpnet"
	"github.com/namdb/rdmatree/internal/telemetry"
	"github.com/namdb/rdmatree/internal/workload"
)

func main() {
	var (
		servers = flag.String("servers", ":7000", "comma-separated memory server addresses (order = server IDs)")
		page    = flag.Int("page", 1024, "index page size in bytes (must match across all clients)")
		design  = flag.String("design", "fine", "fine (one-sided), coarse, or hybrid (servers must run the matching -design)")
		keyspce = flag.Int("keyspace", 100000, "key space of the coarse deployment (must match namserver -size)")
	)
	flag.Parse()
	addrs := strings.Split(*servers, ",")
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// Client-side robustness counters: every endpoint runs under the shared
	// retry policy, and every index client under operation-level recovery, so
	// retries, QP reconnects, and epoch-fenced re-traversals are counted here
	// (servers only see the verbs that reached them).
	clientRec := telemetry.NewRecorder(len(addrs))
	robust := func(id int, ep *tcpnet.Endpoint) rdma.Endpoint {
		return retry.Wrap(ep, &retry.Policy{
			Seed:     int64(id),
			Sleep:    time.Sleep,
			Counters: clientRec,
		})
	}

	var cat *nam.Catalog
	var client func(id int) (core.Index, *tcpnet.Endpoint)
	switch *design {
	case "fine":
		cat = &nam.Catalog{
			Design:    nam.FineGrained,
			PageBytes: *page,
			Servers:   len(addrs),
			RootWords: []rdma.RemotePtr{nam.RootWordPtr(0)},
		}
		client = func(id int) (core.Index, *tcpnet.Endpoint) {
			ep := tcpnet.Dial(addrs)
			return core.Recover(fine.NewClient(robust(id, ep), rdma.NopEnv{}, cat, id), 0, clientRec), ep
		}
	case "coarse":
		// The coarse catalog is fetched from server 0's agent, which built
		// it from its own flags (or reconstructed from ours as a fallback).
		boot := tcpnet.Dial(addrs)
		raw, err := boot.Call(0, (&nam.Request{Op: nam.OpCatalog}).Encode())
		if err == nil {
			if resp, derr := nam.DecodeResponse(raw); derr == nil && resp.AsError() == nil {
				cat, _ = nam.DecodeCatalog(coarse.WordsToBytes(resp.Pairs))
			}
		}
		boot.Close()
		if cat == nil {
			cat = &nam.Catalog{
				Design:      nam.CoarseGrained,
				PageBytes:   *page,
				Servers:     len(addrs),
				PartKind:    nam.PartRange,
				RangeBounds: partition.NewRangeUniform(len(addrs), uint64(*keyspce)).Bounds(),
			}
		}
		client = func(id int) (core.Index, *tcpnet.Endpoint) {
			ep := tcpnet.Dial(addrs)
			return core.Recover(coarse.NewClient(robust(id, ep), rdma.NopEnv{}, cat), 0, clientRec), ep
		}
	case "hybrid":
		cat = &nam.Catalog{
			Design:      nam.Hybrid,
			PageBytes:   *page,
			Servers:     len(addrs),
			PartKind:    nam.PartRange,
			RangeBounds: partition.NewRangeUniform(len(addrs), uint64(*keyspce)).Bounds(),
		}
		for i := range addrs {
			cat.RootWords = append(cat.RootWords, nam.RootWordPtr(i))
		}
		client = func(id int) (core.Index, *tcpnet.Endpoint) {
			ep := tcpnet.Dial(addrs)
			return core.Recover(hybrid.NewClient(robust(id, ep), rdma.NopEnv{}, cat, id), 0, clientRec), ep
		}
	default:
		log.Fatalf("namclient: unknown -design %q", *design)
	}

	switch args[0] {
	case "build":
		if *design != "fine" {
			log.Fatal("namclient: build is for -design fine; coarse servers build their own partitions (namserver -size)")
		}
		fs := flag.NewFlagSet("build", flag.ExitOnError)
		size := fs.Int("size", 100000, "initial keys (0..size-1, value = key)")
		headEvery := fs.Int("headevery", 32, "head node spacing (0 = none)")
		fs.Parse(args[1:])
		ep := tcpnet.Dial(addrs)
		defer ep.Close()
		start := time.Now()
		_, err := fine.Build(ep, fine.Options{Layout: layout.New(*page)}, core.BuildSpec{
			N:         *size,
			At:        workload.DataItem,
			HeadEvery: *headEvery,
		})
		if err != nil {
			log.Fatalf("namclient: build: %v", err)
		}
		fmt.Printf("built fine-grained index with %d keys across %d servers in %v\n",
			*size, len(addrs), time.Since(start).Round(time.Millisecond))

	case "get":
		k := parseU64(args, 1)
		c, ep := client(0)
		defer ep.Close()
		vals, err := c.Lookup(k)
		check(err)
		fmt.Printf("%d -> %v\n", k, vals)

	case "put":
		k, v := parseU64(args, 1), parseU64(args, 2)
		c, ep := client(0)
		defer ep.Close()
		check(c.Insert(k, v))
		fmt.Printf("inserted (%d, %d)\n", k, v)

	case "del":
		k, v := parseU64(args, 1), parseU64(args, 2)
		c, ep := client(0)
		defer ep.Close()
		ok, err := c.Delete(k, v)
		check(err)
		fmt.Printf("deleted (%d, %d): %v\n", k, v, ok)

	case "scan":
		lo, hi := parseU64(args, 1), parseU64(args, 2)
		c, ep := client(0)
		defer ep.Close()
		n := 0
		check(c.Range(lo, hi, func(k, v uint64) bool {
			fmt.Printf("%d -> %d\n", k, v)
			n++
			return n < 1000
		}))
		fmt.Printf("(%d entries)\n", n)

	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		clients := fs.Int("clients", 4, "concurrent client goroutines")
		seconds := fs.Int("seconds", 3, "duration")
		size := fs.Int("size", 100000, "key space (must match build -size)")
		fs.Parse(args[1:])
		var ops atomic.Int64
		stop := make(chan struct{})
		for c := 0; c < *clients; c++ {
			c := c
			go func() {
				idx, ep := client(c)
				defer ep.Close()
				gen, err := workload.NewGenerator(workload.Config{
					Mix: workload.WorkloadA, DataSize: uint64(*size), Seed: 99, Clients: *clients,
				}, c)
				check(err)
				for {
					select {
					case <-stop:
						return
					default:
					}
					op := gen.Next()
					if _, err := idx.Lookup(op.Key); err != nil {
						log.Printf("client %d: %v", c, err)
						return
					}
					ops.Add(1)
				}
			}()
		}
		time.Sleep(time.Duration(*seconds) * time.Second)
		close(stop)
		total := ops.Load()
		fmt.Printf("%d lookups in %ds with %d clients: %.0f lookups/s (wall clock, TCP transport)\n",
			total, *seconds, *clients, float64(total)/float64(*seconds))
		fmt.Printf("client-side recovery: verb_retries=%d qp_reconnects=%d op_recoveries=%d\n",
			clientRec.Retries(), clientRec.Reconnects(), clientRec.OpRecoveries())

	case "stats":
		// Fetch each server's live telemetry over the existing verb
		// connection (the nam.OpStats RPC) and pretty-print it. Works
		// against any -design: even passive memory servers answer it via
		// the telemetry handler decorator. The per-server documents include
		// the fault/retry/recovery counters (the "faults" section) alongside
		// the verb counters; the fetch itself runs under the client's retry
		// stack, whose own counters print at the end.
		ep := tcpnet.Dial(addrs)
		defer ep.Close()
		rep := robust(0, ep)
		for s := range addrs {
			fmt.Printf("server %d (%s):\n", s, addrs[s])
			m, err := telemetry.FetchStats(rep, s)
			if err != nil {
				fmt.Printf("  stats unavailable: %v\n", err)
				continue
			}
			blob, err := json.MarshalIndent(m, "  ", "  ")
			if err != nil {
				fmt.Printf("  stats unavailable: %v\n", err)
				continue
			}
			fmt.Printf("  %s\n", blob)
		}
		fmt.Printf("client-side recovery: verb_retries=%d qp_reconnects=%d op_recoveries=%d\n",
			clientRec.Retries(), clientRec.Reconnects(), clientRec.OpRecoveries())

	case "check":
		if *design != "fine" {
			log.Fatal("namclient: check is for -design fine")
		}
		// A bare client: the verification sweep wants raw errors, not the
		// retry/recovery stack.
		ep := tcpnet.Dial(addrs)
		defer ep.Close()
		c := fine.NewClient(ep, rdma.NopEnv{}, cat, 0)
		live, err := c.Tree().CheckInvariants(rdma.NopEnv{})
		check(err)
		fmt.Printf("index invariants OK, %d live entries\n", live)

	default:
		usage()
	}
}

func parseU64(args []string, i int) uint64 {
	if i >= len(args) {
		usage()
	}
	v, err := strconv.ParseUint(args[i], 10, 64)
	if err != nil {
		log.Fatalf("namclient: bad number %q", args[i])
	}
	return v
}

func check(err error) {
	if err != nil {
		log.Fatalf("namclient: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: namclient -servers a,b,c <command>
commands:
  build  -size N -headevery K   bulk-load keys 0..N-1
  get    <key>                  point lookup
  put    <key> <value>          insert
  del    <key> <value>          delete one entry
  scan   <lo> <hi>              range scan (first 1000 entries)
  bench  -clients N -seconds S  closed-loop point-query benchmark
  stats                         fetch each server's live telemetry counters
  check                         verify tree invariants`)
	os.Exit(2)
}
