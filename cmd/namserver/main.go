// Command namserver runs one NAM memory server: a passive, registered
// memory region served over TCP with RDMA-style verbs (internal/rdma/tcpnet).
//
// Memory servers are deliberately dumb — with the fine-grained index design
// (Section 4) every index operation is executed by the compute side with
// one-sided verbs, so this process contains no index logic at all.
//
// Usage:
//
//	namserver -id 0 -listen :7000 -region 256
//	namserver -id 1 -listen :7001 -region 256
//	...
//	namclient -servers :7000,:7001 build -size 1000000
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/coarse"
	"github.com/namdb/rdmatree/internal/core/hybrid"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/tcpnet"
	"github.com/namdb/rdmatree/internal/telemetry"
	"github.com/namdb/rdmatree/internal/workload"
)

func main() {
	var (
		id      = flag.Int("id", 0, "memory server ID (position in the clients' -servers list)")
		listen  = flag.String("listen", ":7000", "listen address")
		region  = flag.Int("region", 256, "registered region size in MiB")
		design  = flag.String("design", "memory", "memory (passive region, fine-grained clients), coarse (partitioned local tree + RPC handlers), or hybrid (local inner levels, leaves spread across peers)")
		servers = flag.Int("servers", 1, "total memory servers in the cluster (coarse/hybrid)")
		size    = flag.Int("size", 0, "bulk-load this server's partition of keys 0..size-1 (coarse/hybrid)")
		page    = flag.Int("page", 1024, "index page size in bytes (coarse/hybrid)")
		peers   = flag.String("peers", "", "comma-separated addresses of ALL memory servers in ID order, including this one (hybrid; leaves are written to peers at build time)")
		metrics = flag.String("metrics", "", "serve live expvar (/debug/vars), pprof (/debug/pprof/), and OpenMetrics (/metrics) on this address, e.g. :6060")
	)
	flag.Parse()

	if *id < 0 || *id >= rdma.MaxServers {
		log.Fatalf("namserver: id %d out of range", *id)
	}
	srv := rdma.NewServer(*id, *region<<20, nam.SuperblockBytes)
	rec := telemetry.NewRecorder(*servers)

	var handler rdma.Handler
	switch *design {
	case "memory":
		// Passive region: the fine-grained design needs no server logic.
	case "coarse":
		// This process owns one partition of a coarse-grained index; it
		// builds its local tree and serves the RPC protocol. The spec and
		// partitioning are derived deterministically from the flags, so all
		// server processes and clients agree without coordination.
		fab := &rdma.SingleServerFabric{Srv: srv, Total: *servers}
		keyspace := uint64(*size)
		if keyspace == 0 {
			keyspace = 1
		}
		cs := coarse.NewServer(fab, coarse.Options{
			Layout:    layout.New(*page),
			Part:      partition.NewRangeUniform(*servers, keyspace),
			Telemetry: rec,
		})
		if *size > 0 {
			if err := cs.BuildServer(*id, core.BuildSpec{N: *size, At: workload.DataItem}); err != nil {
				log.Fatalf("namserver: %v", err)
			}
			log.Printf("namserver: built partition %d/%d of %d keys", *id, *servers, *size)
		} else if err := cs.InitServer(*id); err != nil {
			log.Fatalf("namserver: %v", err)
		}
		handler = cs.Handler()
	case "hybrid":
		if *peers == "" {
			log.Fatal("namserver: -design hybrid requires -peers")
		}
		fab := &rdma.SingleServerFabric{Srv: srv, Total: *servers}
		keyspace := uint64(*size)
		if keyspace == 0 {
			keyspace = 1
		}
		hs := hybrid.NewServer(fab, hybrid.Options{
			Layout:    layout.New(*page),
			Part:      partition.NewRangeUniform(*servers, keyspace),
			Telemetry: rec,
		})
		handler = hs.Handler()
		// Build after the agent is up (the setup endpoint must reach every
		// peer, including this process).
		addrs := strings.Split(*peers, ",")
		go func() {
			ep := tcpnet.Dial(addrs)
			defer ep.Close()
			// Wait for all peers to come up.
			for {
				ready := true
				for p := range addrs {
					var w [1]uint64
					if err := ep.Read(rdma.MakePtr(p, 8), w[:]); err != nil {
						ready = false
						break
					}
				}
				if ready {
					break
				}
				time.Sleep(200 * time.Millisecond)
			}
			if err := hs.BuildServer(ep, *id, core.BuildSpec{N: *size, At: workload.DataItem, HeadEvery: 32}); err != nil {
				log.Fatalf("namserver: hybrid build: %v", err)
			}
			log.Printf("namserver: built hybrid partition %d/%d of %d keys", *id, *servers, *size)
		}()
	default:
		log.Fatalf("namserver: unknown -design %q", *design)
	}
	// Instrumenting the RPC handler lets every design — including a passive
	// memory server with no handler of its own — answer the OpStats
	// introspection RPC (namclient stats) over the existing connection.
	handler = telemetry.Instrument(handler, rec, nil)
	if *metrics != "" {
		telemetry.Publish("namserver", rec)
		// OpenMetrics export of the verb and recovery counters (a memory
		// server has no per-op histograms — those live on the compute side).
		telemetry.Handle("/metrics", obs.MetricsHandler(rec, nil))
		addr, err := telemetry.ServeMetrics(*metrics)
		if err != nil {
			log.Fatalf("namserver: -metrics: %v", err)
		}
		log.Printf("namserver: metrics on http://%s/debug/vars and http://%s/metrics", addr, addr)
	}
	agent := tcpnet.NewAgent(srv, handler)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("namserver: %v", err)
	}
	log.Printf("namserver: memory server %d serving %d MiB on %s", *id, *region, l.Addr())

	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		log.Printf("namserver: shutting down")
		agent.Close()
	}()
	if err := agent.Serve(l); err != nil {
		log.Fatalf("namserver: %v", err)
	}
}
