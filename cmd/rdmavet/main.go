// Command rdmavet statically enforces the verbs-protocol invariants of this
// repository (see internal/lint/rdmavet for the analyzer suite and
// DESIGN.md "Statically-enforced invariants" for the protocol rationale).
//
// Usage:
//
//	go run ./cmd/rdmavet ./...
//	go run ./cmd/rdmavet -list
//
// Exit status: 0 when clean, 1 when any diagnostic fired, 2 on driver
// errors. Intentional exceptions are suppressed in place with
//
//	//rdmavet:allow <analyzer>[,<analyzer>] -- <one-line justification>
//
// on the offending line or the line directly above.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/namdb/rdmatree/internal/lint"
	"github.com/namdb/rdmatree/internal/lint/rdmavet"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers of the suite and exit")
	only := flag.String("only", "", "run only the named analyzer (comma-separated names)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rdmavet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Checks the verbs-protocol invariants; packages default to ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := rdmavet.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		var kept []*lint.Analyzer
		for _, a := range suite {
			if nameListed(*only, a.Name) {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "rdmavet: no analyzer matches -only=%s\n", *only)
			os.Exit(2)
		}
		suite = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := lint.NewProgram(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdmavet: %v\n", err)
		os.Exit(2)
	}
	paths, err := prog.List(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdmavet: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(prog, paths, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdmavet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rdmavet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

func nameListed(csv, name string) bool {
	for len(csv) > 0 {
		i := 0
		for i < len(csv) && csv[i] != ',' {
			i++
		}
		if csv[:i] == name {
			return true
		}
		if i == len(csv) {
			break
		}
		csv = csv[i+1:]
	}
	return false
}
