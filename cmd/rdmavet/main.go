// Command rdmavet statically enforces the verbs-protocol invariants of this
// repository (see internal/lint/rdmavet for the analyzer suite and
// DESIGN.md "Statically-enforced invariants" for the protocol rationale).
//
// Usage:
//
//	go run ./cmd/rdmavet ./...
//	go run ./cmd/rdmavet -list
//	go run ./cmd/rdmavet -sarif rdmavet.sarif ./...
//
// Exit status: 0 when clean, 1 when any diagnostic fired, 2 on driver
// errors. Intentional exceptions are suppressed in place with
//
//	//rdmavet:allow <analyzer>[,<analyzer>] -- <one-line justification>
//
// on the offending line or the line directly above. A directive that
// suppresses nothing is itself reported (full-suite runs only): stale
// waivers hide the next real finding at the same site.
//
// Results are cached per package under the user cache directory, keyed on
// the file contents of the package's module-internal dependency closure and
// the suite's own source; -cache=false forces a cold run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/namdb/rdmatree/internal/lint"
	"github.com/namdb/rdmatree/internal/lint/rdmavet"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers of the suite and exit")
	only := flag.String("only", "", "run only the named analyzer (comma-separated names)")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 report to this file")
	useCache := flag.Bool("cache", true, "memoize per-package results across runs")
	cacheDir := flag.String("cachedir", "", "cache directory (default <user cache dir>/rdmavet)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rdmavet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Checks the verbs-protocol invariants; packages default to ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := rdmavet.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	fullSuite := *only == ""
	if !fullSuite {
		var kept []*lint.Analyzer
		for _, a := range suite {
			if nameListed(*only, a.Name) {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "rdmavet: no analyzer matches -only=%s\n", *only)
			os.Exit(2)
		}
		suite = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := lint.NewProgram(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdmavet: %v\n", err)
		os.Exit(2)
	}
	paths, err := prog.List(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdmavet: %v\n", err)
		os.Exit(2)
	}

	// The cache key covers the analyzed package's module-internal dependency
	// closure and the suite's own source (a lint change must not serve stale
	// verdicts); a missing user cache dir silently disables caching.
	var cache *lint.Cache
	if *useCache {
		dir := *cacheDir
		if dir == "" {
			if base, err := os.UserCacheDir(); err == nil {
				dir = filepath.Join(base, "rdmavet")
			}
		}
		if dir != "" {
			fp := lint.SuiteFingerprint(prog, suite, []string{"internal/lint", "internal/lint/rdmavet", "cmd/rdmavet"})
			cache = lint.NewCache(dir, fp)
		}
	}

	// Stale-waiver detection needs the full suite: a partial run cannot tell
	// a stale directive from one owned by an analyzer that did not run.
	res, err := lint.RunSuite(prog, paths, suite, lint.SuiteOptions{
		ReportUnused: fullSuite,
		Cache:        cache,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdmavet: %v\n", err)
		os.Exit(2)
	}
	failures := append(append([]lint.Diagnostic{}, res.Diags...), res.Unused...)
	lint.SortDiagnostics(failures)

	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdmavet: %v\n", err)
			os.Exit(2)
		}
		werr := lint.WriteSARIF(f, prog.RootDir, suite, failures)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "rdmavet: writing %s: %v\n", *sarifOut, werr)
			os.Exit(2)
		}
	}

	for _, d := range failures {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "rdmavet: %d diagnostic(s)\n", len(failures))
		os.Exit(1)
	}
}

func nameListed(csv, name string) bool {
	for len(csv) > 0 {
		i := 0
		for i < len(csv) && csv[i] != ',' {
			i++
		}
		if csv[:i] == name {
			return true
		}
		if i == len(csv) {
			break
		}
		csv = csv[i+1:]
	}
	return false
}
