// Package rdmatree is a from-scratch Go reproduction of "Designing
// Distributed Tree-based Index Structures for Fast RDMA-capable Networks"
// (Ziegler, Tumkur Vani, Binnig, Fonseca, Kraska — SIGMOD 2019).
//
// The library implements the Network-Attached-Memory (NAM) architecture, a
// verbs-level RDMA abstraction with three transports (in-process, simulated
// fabric with a calibrated performance model, and TCP), and the paper's
// three distributed B-link-tree index designs: coarse-grained/two-sided,
// fine-grained/one-sided, and hybrid.
//
// Entry points:
//
//   - internal/core/{coarse,fine,hybrid}: the index designs
//   - cmd/nambench: regenerate every table and figure of the paper
//   - cmd/namserver, cmd/namclient: a real TCP NAM deployment
//   - examples/: quickstart, YCSB driver, ordered KV store, analytic model
//
// See README.md, DESIGN.md and EXPERIMENTS.md.
package rdmatree
