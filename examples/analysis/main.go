// Analysis example: explore the paper's Section 2.3 design-space model
// programmatically — when does the fine-grained scheme's skew resilience pay
// for its extra traversal traffic?
//
// Run with: go run ./examples/analysis
package main

import (
	"fmt"

	"github.com/namdb/rdmatree/internal/analysis"
	"github.com/namdb/rdmatree/internal/stats"
)

func main() {
	p := analysis.Defaults()
	fmt.Println(analysis.Table1String(p))

	// 1. The paper's Figure 3: range queries, sel = 0.1%, skew z = 10.
	fmt.Println("Maximal throughput, range queries (sel=0.001, z=10):")
	fmt.Println(stats.Table("memory servers", "ops/s",
		analysis.Fig3Series(p, 0.001, 10, []int{2, 4, 8, 16, 32, 64})...))

	// 2. How much skew does it take for FG to win at S=4? Sweep z.
	fmt.Println("Throughput vs skew amplification z (S=4, point queries):")
	fg := &stats.Series{Name: "FG"}
	cg := &stats.Series{Name: "CG Range"}
	for _, z := range []float64{1, 2, 5, 10, 20, 50} {
		q := analysis.Query{Skew: true, Z: z}
		fg.Append(z, analysis.MaxThroughput(p, analysis.FG, q))
		cg.Append(z, analysis.MaxThroughput(p, analysis.CGRange, q))
	}
	fmt.Println(stats.Table("z", "ops/s", fg, cg))

	// 3. Page-size sensitivity: the fanout/height trade-off.
	fmt.Println("FG point-query cost vs page size (uniform):")
	bytesSer := &stats.Series{Name: "bytes/query"}
	tputSer := &stats.Series{Name: "max ops/s"}
	for _, page := range []int{256, 512, 1024, 2048, 4096} {
		pp := p
		pp.P = page
		q := analysis.Query{}
		bytesSer.Append(float64(page), analysis.QueryBytes(pp, analysis.FG, q))
		tputSer.Append(float64(page), analysis.MaxThroughput(pp, analysis.FG, q))
	}
	fmt.Println(stats.Table("page bytes", "value", bytesSer, tputSer))

	// 4. Where hash partitioning hurts: range queries must visit all S
	// servers' indexes.
	fmt.Println("Hash vs range partitioning for range queries (uniform, sel=0.001):")
	rg := &stats.Series{Name: "CG Range"}
	hs := &stats.Series{Name: "CG Hash"}
	for _, s := range []int{2, 8, 32, 64} {
		pp := p
		pp.S = s
		q := analysis.Query{Range: true, Sel: 0.001}
		rg.Append(float64(s), analysis.MaxThroughput(pp, analysis.CGRange, q))
		hs.Append(float64(s), analysis.MaxThroughput(pp, analysis.CGHash, q))
	}
	fmt.Println(stats.Table("memory servers", "ops/s", rg, hs))
}
