// kvstore: an ordered key-value store service built on the fine-grained
// distributed index over the TCP transport — the "ordered key-value store
// over RDMA-capable networks" application the paper's introduction motivates.
//
// The example boots a 3-server NAM cluster (in separate goroutines, speaking
// real TCP — the same agents cmd/namserver runs), bulk-loads it, serves a
// tiny line protocol (GET/PUT/DEL/SCAN) on a local port, and then drives
// itself through a demo session.
//
// Run with: go run ./examples/kvstore
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/tcpnet"
)

const (
	memServers = 3
	pageBytes  = 1024
	initial    = 50_000
)

func main() {
	// ---- boot the NAM memory servers (real TCP agents) ----
	var addrs []string
	for i := 0; i < memServers; i++ {
		srv := rdma.NewServer(i, 128<<20, nam.SuperblockBytes)
		agent := tcpnet.NewAgent(srv, nil)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		go agent.Serve(l)
		defer agent.Close()
	}
	fmt.Printf("NAM memory servers up: %v\n", addrs)

	// ---- bulk-load the index (keys 0..N-1, value = key squared) ----
	boot := tcpnet.Dial(addrs)
	cat, err := fine.Build(boot, fine.Options{Layout: layout.New(pageBytes)}, core.BuildSpec{
		N:         initial,
		At:        func(i int) (uint64, uint64) { return uint64(i), uint64(i) * uint64(i) },
		HeadEvery: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	boot.Close()
	fmt.Printf("loaded %d keys across %d memory servers\n", initial, memServers)

	// ---- the KV service ----
	svcListener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go serveKV(svcListener, addrs, cat)
	fmt.Printf("kvstore service on %s\n\n", svcListener.Addr())

	// ---- demo session ----
	conn, err := net.Dial("tcp", svcListener.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	session := []string{
		"GET 7",
		"PUT 7 777",
		"GET 7",
		"DEL 7 777",
		"GET 7",
		"SCAN 100 105",
		"PUT 999999 1",
		"GET 999999",
	}
	for _, cmd := range session {
		fmt.Printf("> %s\n", cmd)
		fmt.Fprintf(conn, "%s\n", cmd)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s", line)
			if !strings.HasPrefix(line, "|") {
				break
			}
		}
	}
}

// serveKV accepts connections and executes KV commands against the
// distributed index. Every connection gets its own compute-thread endpoint.
func serveKV(l net.Listener, addrs []string, cat *nam.Catalog) {
	connID := 0
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		connID++
		go func(conn net.Conn, id int) {
			defer conn.Close()
			ep := tcpnet.Dial(addrs)
			defer ep.Close()
			idx := fine.NewClient(ep, rdma.NopEnv{}, cat, id)
			sc := bufio.NewScanner(conn)
			w := bufio.NewWriter(conn)
			for sc.Scan() {
				reply(w, idx, sc.Text())
				w.Flush()
			}
		}(conn, connID)
	}
}

func reply(w *bufio.Writer, idx core.Index, line string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		fmt.Fprintln(w, "ERR empty command")
		return
	}
	num := func(i int) (uint64, bool) {
		if i >= len(fields) {
			return 0, false
		}
		v, err := strconv.ParseUint(fields[i], 10, 64)
		return v, err == nil
	}
	switch strings.ToUpper(fields[0]) {
	case "GET":
		k, ok := num(1)
		if !ok {
			fmt.Fprintln(w, "ERR usage: GET <key>")
			return
		}
		vals, err := idx.Lookup(k)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		if len(vals) == 0 {
			fmt.Fprintln(w, "NOTFOUND")
			return
		}
		fmt.Fprintf(w, "OK %v\n", vals)
	case "PUT":
		k, ok1 := num(1)
		v, ok2 := num(2)
		if !ok1 || !ok2 {
			fmt.Fprintln(w, "ERR usage: PUT <key> <value>")
			return
		}
		if err := idx.Insert(k, v); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK")
	case "DEL":
		k, ok1 := num(1)
		v, ok2 := num(2)
		if !ok1 || !ok2 {
			fmt.Fprintln(w, "ERR usage: DEL <key> <value>")
			return
		}
		ok, err := idx.Delete(k, v)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		if !ok {
			fmt.Fprintln(w, "NOTFOUND")
			return
		}
		fmt.Fprintln(w, "OK")
	case "SCAN":
		lo, ok1 := num(1)
		hi, ok2 := num(2)
		if !ok1 || !ok2 {
			fmt.Fprintln(w, "ERR usage: SCAN <lo> <hi>")
			return
		}
		n := 0
		err := idx.Range(lo, hi, func(k, v uint64) bool {
			fmt.Fprintf(w, "| %d = %d\n", k, v)
			n++
			return n < 100
		})
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(w, "OK %d entries\n", n)
	default:
		fmt.Fprintln(w, "ERR unknown command (GET/PUT/DEL/SCAN)")
	}
}
