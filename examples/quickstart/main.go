// Quickstart: build a distributed tree index on an in-process NAM cluster
// and query it through all three designs of the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/coarse"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/core/hybrid"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

func main() {
	const (
		servers  = 4
		numKeys  = 100_000
		pageSize = 1024
	)
	// The initial data set: monotonically increasing keys, value = key*10.
	spec := core.BuildSpec{
		N:         numKeys,
		At:        func(i int) (uint64, uint64) { return uint64(i), uint64(i) * 10 },
		HeadEvery: 32,
	}
	l := layout.New(pageSize)

	fmt.Printf("NAM cluster: %d memory servers, %d keys, %dB pages (fanout %d, leaf capacity %d)\n\n",
		servers, numKeys, pageSize, l.InnerCap, l.LeafCap)

	// ---- Design 1: coarse-grained / two-sided ----
	{
		fab := direct.New(servers, 256<<20, nam.SuperblockBytes)
		srv := coarse.NewServer(fab, coarse.Options{
			Layout: l,
			Part:   partition.NewRangeUniform(servers, numKeys),
		})
		cat, err := srv.Build(spec)
		if err != nil {
			log.Fatal(err)
		}
		fab.SetHandler(srv.Handler())
		idx := coarse.NewClient(fab.Endpoint(), direct.Env{}, cat)
		demo("coarse-grained (partitioned trees, RPC access)", idx)
	}

	// ---- Design 2: fine-grained / one-sided ----
	{
		fab := direct.New(servers, 256<<20, nam.SuperblockBytes)
		cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: l}, spec)
		if err != nil {
			log.Fatal(err)
		}
		idx := fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
		demo("fine-grained (global tree, one-sided verbs only)", idx)
	}

	// ---- Design 3: hybrid ----
	{
		fab := direct.New(servers, 256<<20, nam.SuperblockBytes)
		srv := hybrid.NewServer(fab, hybrid.Options{
			Layout: l,
			Part:   partition.NewRangeUniform(servers, numKeys),
		})
		cat, err := srv.Build(fab.Endpoint(), spec)
		if err != nil {
			log.Fatal(err)
		}
		fab.SetHandler(srv.Handler())
		idx := hybrid.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
		demo("hybrid (RPC traversal, one-sided leaves)", idx)
	}
}

// demo exercises the shared Index interface.
func demo(name string, idx core.Index) {
	fmt.Println("##", name)

	vals, err := idx.Lookup(4242)
	must(err)
	fmt.Printf("  Lookup(4242)            = %v\n", vals)

	must(idx.Insert(4242, 99999)) // non-unique: a second value under the same key
	vals, err = idx.Lookup(4242)
	must(err)
	fmt.Printf("  after Insert(4242)      = %v\n", vals)

	ok, err := idx.Delete(4242, 99999)
	must(err)
	fmt.Printf("  Delete(4242, 99999)     = %v\n", ok)

	sum, count := uint64(0), 0
	must(idx.Range(1000, 1009, func(k, v uint64) bool {
		sum += v
		count++
		return true
	}))
	fmt.Printf("  Range[1000,1009]        = %d entries, value sum %d\n\n", count, sum)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
