// YCSB example: run the paper's modified YCSB workloads (Table 3) against
// all three index designs on the simulated RDMA fabric and print a
// mini-version of the paper's Figure 8/12 comparison.
//
// Run with: go run ./examples/ycsb [-size 200000] [-clients 120]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/namdb/rdmatree/internal/bench"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/stats"
	"github.com/namdb/rdmatree/internal/workload"
)

func main() {
	size := flag.Int("size", 200_000, "initial data size D")
	clients := flag.Int("clients", 120, "client threads (40 per compute machine)")
	flag.Parse()

	designs := []nam.Design{nam.CoarseGrained, nam.FineGrained, nam.Hybrid}
	rows := []struct {
		name string
		mix  workload.Mix
		sel  float64
	}{
		{"A: 100% point queries", workload.WorkloadA, 0},
		{"B: 100% range queries (sel=0.01)", workload.WorkloadB, 0.01},
		{"C: 95% point / 5% insert", workload.WorkloadC, 0},
		{"D: 50% point / 50% insert", workload.WorkloadD, 0},
	}

	fmt.Printf("Modified YCSB on a simulated NAM cluster: 4 memory servers, %d clients, D=%d\n\n",
		*clients, *size)
	for _, row := range rows {
		fmt.Printf("Workload %s\n", row.name)
		for _, d := range designs {
			machines := (*clients + 39) / 40
			cfg := bench.Config{
				Design:      d,
				Topology:    nam.PaperTopology(4, machines, (*clients+machines-1)/machines),
				DataSize:    *size,
				Mix:         row.mix,
				Selectivity: row.sel,
				HeadEvery:   32,
				Seed:        7,
			}
			if row.mix.RangePct > 0 {
				cfg.MeasureNS = 60_000_000
			}
			res, err := bench.Run(cfg)
			if err != nil {
				log.Fatalf("%v / %s: %v", d, row.name, err)
			}
			fmt.Printf("  %-16s %10s ops/s   p50 %7.1fus   p99 %7.1fus   net %5.2f GB/s\n",
				d.String(),
				stats.FormatQty(res.Throughput),
				float64(res.Latency.Percentile(50))/1000,
				float64(res.Latency.Percentile(99))/1000,
				res.NetGBps)
		}
		fmt.Println()
	}
	fmt.Println("(virtual-time measurements on the calibrated simulated fabric; see EXPERIMENTS.md)")
}
