module github.com/namdb/rdmatree

go 1.22
