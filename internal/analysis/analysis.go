// Package analysis implements the theoretical scalability model of
// Section 2.3: the symbols of Table 1, the bandwidth-requirement formulas of
// Table 2, and the maximal-throughput curves of Figure 3.
package analysis

import (
	"fmt"
	"math"
	"strings"

	"github.com/namdb/rdmatree/internal/stats"
)

// Params are the model symbols of Table 1.
type Params struct {
	// S is the number of memory servers.
	S int
	// BW is the per-server bandwidth in bytes/second.
	BW float64
	// P is the page size of index nodes in bytes.
	P int
	// D is the data size in tuples.
	D float64
	// K is the key size in bytes (same as value/pointer size).
	K int
}

// Defaults returns the example column of Table 1.
func Defaults() Params {
	return Params{S: 4, BW: 50e9, P: 1024, D: 100e6, K: 8}
}

// Fanout is M = P/(3K).
func (p Params) Fanout() int { return p.P / (3 * p.K) }

// Leaves is L = D/M.
func (p Params) Leaves() float64 { return p.D / float64(p.Fanout()) }

func logM(m int, x float64) float64 { return math.Log(x) / math.Log(float64(m)) }

// HeightFG is the fine-grained index height ceil(log_M(L)); identical for
// uniform and skewed data.
func (p Params) HeightFG() int {
	return int(math.Ceil(logM(p.Fanout(), p.Leaves())))
}

// HeightCGUniform is the coarse-grained height under uniform data:
// ceil(log_M(L/S)).
func (p Params) HeightCGUniform() int {
	return int(math.Ceil(logM(p.Fanout(), p.Leaves()/float64(p.S))))
}

// HeightCGSkew equals HeightFG: under attribute-value skew most leaves end
// up on one server.
func (p Params) HeightCGSkew() int { return p.HeightFG() }

// Scheme enumerates the design columns of Table 2.
type Scheme int

// Schemes of the analysis.
const (
	FG Scheme = iota // fine-grained, one-sided
	CGRange
	CGHash
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case FG:
		return "Fine-Grained"
	case CGRange:
		return "Coarse-Grained Range"
	case CGHash:
		return "Coarse-Grained Hash"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Query describes one query class of Table 2.
type Query struct {
	// Range selects range queries; false = point query.
	Range bool
	// Skew selects the skewed workload (attribute-value skew with
	// read-amplification Z).
	Skew bool
	// Sel is the range selectivity s.
	Sel float64
	// Z is the skew read-amplification factor z.
	Z float64
}

// AvailableBW is step (1) of Table 2: the effective aggregated bandwidth.
func AvailableBW(p Params, scheme Scheme, q Query) float64 {
	if q.Skew && scheme != FG {
		// Under attribute-value skew one server holds most of the index.
		return p.BW
	}
	return float64(p.S) * p.BW
}

// QueryBytes is step (2) of Table 2: the per-query bandwidth requirement.
func QueryBytes(p Params, scheme Scheme, q Query) float64 {
	P := float64(p.P)
	L := p.Leaves()
	var h float64
	switch {
	case scheme == FG:
		h = float64(p.HeightFG())
	case q.Skew:
		h = float64(p.HeightCGSkew())
	default:
		h = float64(p.HeightCGUniform())
	}
	traversal := h * P
	if scheme == CGHash && q.Range {
		// Hash-partitioned range queries must be sent to all S servers.
		traversal = h * P * float64(p.S)
	}
	switch {
	case !q.Range && !q.Skew:
		return traversal
	case !q.Range && q.Skew:
		return traversal + q.Z*P
	case q.Range && !q.Skew:
		return traversal + q.Sel*L*P
	default:
		return traversal + q.Sel*q.Z*L*P
	}
}

// MaxThroughput is step (3) of Table 2: AvailableBW / QueryBytes, in
// queries/second.
func MaxThroughput(p Params, scheme Scheme, q Query) float64 {
	return AvailableBW(p, scheme, q) / QueryBytes(p, scheme, q)
}

// Table1String renders Table 1 for the given parameters.
func Table1String(p Params) string {
	var b strings.Builder
	row := func(desc, sym string, val any) {
		fmt.Fprintf(&b, "%-42s %-8s %v\n", desc, sym, val)
	}
	b.WriteString("Table 1: Overview of Symbols\n")
	row("# of Memory Servers", "S", p.S)
	row("Bandwidth per Memory Server (GB/s)", "BW", p.BW/1e9)
	row("Page Size of Index Nodes (in Bytes)", "P", p.P)
	row("Data Size (# of tuples)", "D", stats.FormatQty(p.D))
	row("Key Size (in Bytes)", "K", p.K)
	row("Fanout (per index node)", "M", p.Fanout())
	row("Leaves (# of nodes)", "L", stats.FormatQty(p.Leaves()))
	row("Max. index height (FG, Unif./Skew)", "H_FG", p.HeightFG())
	row("Max. index height (CG, Unif.)", "H_UCG", p.HeightCGUniform())
	row("Max. index height (CG, Skew)", "H_SCG", p.HeightCGSkew())
	return b.String()
}

// Table2String renders the evaluated Table 2 for given selectivity and skew
// amplification.
func Table2String(p Params, sel, z float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Scalability Analysis (S=%d, sel=%g, z=%g)\n", p.S, sel, z)
	fmt.Fprintf(&b, "%-26s %22s %22s %22s\n", "", FG.String(), CGRange.String(), CGHash.String())
	rows := []struct {
		name string
		q    Query
	}{
		{"Point (Unif.)", Query{}},
		{"Point (Skew)", Query{Skew: true, Z: z}},
		{"Range (Unif.)", Query{Range: true, Sel: sel}},
		{"Range (Skew)", Query{Range: true, Skew: true, Sel: sel, Z: z}},
	}
	fmt.Fprintln(&b, "Step 2: bandwidth per query (bytes)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %22s %22s %22s\n", r.name,
			stats.FormatQty(QueryBytes(p, FG, r.q)),
			stats.FormatQty(QueryBytes(p, CGRange, r.q)),
			stats.FormatQty(QueryBytes(p, CGHash, r.q)))
	}
	fmt.Fprintln(&b, "Step 3: max throughput (queries/s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %22s %22s %22s\n", r.name,
			stats.FormatQty(MaxThroughput(p, FG, r.q)),
			stats.FormatQty(MaxThroughput(p, CGRange, r.q)),
			stats.FormatQty(MaxThroughput(p, CGHash, r.q)))
	}
	return b.String()
}

// Fig3Series computes the four curves of Figure 3 (theoretical maximal
// throughput of range queries, sel and z as in the paper) for server counts
// servers.
func Fig3Series(base Params, sel, z float64, servers []int) []*stats.Series {
	fgS := &stats.Series{Name: "FG (Unif./Skew)"}
	cgrU := &stats.Series{Name: "CG Range (Unif.)"}
	cghU := &stats.Series{Name: "CG Hash (Unif.)"}
	cgSkew := &stats.Series{Name: "CG Range/Hash (Skew)"}
	for _, s := range servers {
		p := base
		p.S = s
		uq := Query{Range: true, Sel: sel}
		sq := Query{Range: true, Skew: true, Sel: sel, Z: z}
		x := float64(s)
		fgS.Append(x, MaxThroughput(p, FG, uq)) // FG identical under skew
		cgrU.Append(x, MaxThroughput(p, CGRange, uq))
		cghU.Append(x, MaxThroughput(p, CGHash, uq))
		cgSkew.Append(x, MaxThroughput(p, CGRange, sq))
	}
	return []*stats.Series{fgS, cgrU, cghU, cgSkew}
}
