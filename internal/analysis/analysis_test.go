package analysis

import (
	"strings"
	"testing"
)

func TestTable1ExampleColumn(t *testing.T) {
	// The rightmost column of Table 1 in the paper.
	p := Defaults()
	if p.Fanout() != 42 {
		t.Fatalf("Fanout = %d; want 42", p.Fanout())
	}
	l := p.Leaves()
	if l < 2.3e6 || l > 2.4e6 {
		t.Fatalf("Leaves = %f; want approx 2.3M", l)
	}
	if p.HeightFG() != 4 {
		t.Fatalf("H_FG = %d; want 4", p.HeightFG())
	}
	if p.HeightCGUniform() != 4 {
		t.Fatalf("H_UCG = %d; want 4", p.HeightCGUniform())
	}
	if p.HeightCGSkew() != 4 {
		t.Fatalf("H_SCG = %d; want 4", p.HeightCGSkew())
	}
}

func TestAvailableBWStep1(t *testing.T) {
	p := Defaults()
	uq := Query{}
	sq := Query{Skew: true, Z: 10}
	if got := AvailableBW(p, FG, uq); got != 4*50e9 {
		t.Fatalf("FG uniform BW = %g", got)
	}
	if got := AvailableBW(p, FG, sq); got != 4*50e9 {
		t.Fatalf("FG skew BW = %g; FG must keep aggregate BW under skew", got)
	}
	if got := AvailableBW(p, CGRange, sq); got != 50e9 {
		t.Fatalf("CG skew BW = %g; want single-server BW", got)
	}
	if got := AvailableBW(p, CGHash, uq); got != 4*50e9 {
		t.Fatalf("CG hash uniform BW = %g", got)
	}
}

func TestQueryBytesStep2(t *testing.T) {
	p := Defaults()
	P := float64(p.P)
	L := p.Leaves()
	// Point uniform: H*P.
	if got := QueryBytes(p, FG, Query{}); got != 4*P {
		t.Fatalf("FG point bytes = %g; want %g", got, 4*P)
	}
	// Point skew: H*P + z*P.
	if got := QueryBytes(p, FG, Query{Skew: true, Z: 10}); got != 4*P+10*P {
		t.Fatalf("FG skew point bytes = %g", got)
	}
	// Range uniform: H*P + s*L*P.
	want := 4*P + 0.001*L*P
	if got := QueryBytes(p, CGRange, Query{Range: true, Sel: 0.001}); got != want {
		t.Fatalf("CG range bytes = %g; want %g", got, want)
	}
	// Hash ranges traverse S indexes.
	wantHash := 4*P*4 + 0.001*L*P
	if got := QueryBytes(p, CGHash, Query{Range: true, Sel: 0.001}); got != wantHash {
		t.Fatalf("CG hash range bytes = %g; want %g", got, wantHash)
	}
}

func TestFigure3Shape(t *testing.T) {
	// The paper's headline findings from the model:
	// (1) all schemes scale for uniform workloads;
	// (2) under skew, CG stagnates (flat) while FG keeps scaling;
	// (3) hash partitioning scales slightly worse than range for ranges.
	servers := []int{2, 4, 8, 16, 32, 64}
	series := Fig3Series(Defaults(), 0.001, 10, servers)
	fg, cgr, cgh, cgSkew := series[0], series[1], series[2], series[3]

	for i := 1; i < len(servers); i++ {
		if fg.Y[i] <= fg.Y[i-1] {
			t.Fatal("FG does not scale with servers")
		}
		if cgr.Y[i] <= cgr.Y[i-1] {
			t.Fatal("CG range (uniform) does not scale")
		}
	}
	// CG skew stagnates: last point barely above first.
	if cgSkew.Y[len(servers)-1] > cgSkew.Y[0]*1.5 {
		t.Fatalf("CG skew scales too well: %v", cgSkew.Y)
	}
	// FG under skew = FG uniform, far above CG skew at S=64.
	if fg.Y[len(servers)-1] < cgSkew.Y[len(servers)-1]*10 {
		t.Fatalf("FG does not dominate CG under skew at scale: %f vs %f",
			fg.Y[len(servers)-1], cgSkew.Y[len(servers)-1])
	}
	// Hash <= range for uniform ranges at every S.
	for i := range servers {
		if cgh.Y[i] > cgr.Y[i] {
			t.Fatalf("hash faster than range at S=%d", servers[i])
		}
	}
	// Figure 3's S=64 FG value is around 1.4M ops/s with the example
	// parameters; check the right order of magnitude.
	if top := fg.Y[len(servers)-1]; top < 0.8e6 || top > 2.5e6 {
		t.Fatalf("FG at S=64 = %f; want ~1.4M", top)
	}
}

func TestTableRenderers(t *testing.T) {
	p := Defaults()
	t1 := Table1String(p)
	for _, want := range []string{"S", "Fanout", "42", "H_FG"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2String(p, 0.001, 10)
	for _, want := range []string{"Fine-Grained", "Coarse-Grained Hash", "Point (Skew)", "Range (Unif.)"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}
