package bench

import (
	"fmt"
	"io"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma/simnet"
	"github.com/namdb/rdmatree/internal/stats"
	"github.com/namdb/rdmatree/internal/workload"
)

// extensions lists the experiments beyond the paper's figures: the Appendix
// A.4 caching study and ablations of the design decisions called out in
// DESIGN.md.
func extensions() []Experiment {
	return []Experiment{
		{"cache", "Appendix A.4: Compute-Side Caching (Fine-Grained, Point Queries)", expCache},
		{"ablation-heads", "Ablation: Head-Node Prefetching (Section 4.3)", expAblationHeads},
		{"ablation-pagesize", "Ablation: Page Size P", expAblationPageSize},
		{"ablation-hotspot", "Ablation: Insert Hotspot (Append vs Uniform Inserts, Workload D)", expAblationHotspot},
		{"ablation-srq", "Ablation: SRQ Handler Cores (Coarse-Grained, Point Queries)", expAblationSRQ},
		{"ablation-zipf", "Ablation: Zipfian Request Skew (Point Queries)", expAblationZipf},
		{"rtt", "Doorbell-Batched Consistent Reads: Exposed RTTs and Latency (Fine-Grained)", expRTT},
		{"chaos", "Fault Injection: Scripted Fault Schedules vs Client-Side Recovery (All Designs)", expChaos},
		{"obs", "Observability: Flight-Recorder Reconstruction of a Fault-Injected Traversal (Fine-Grained)", expObs},
		{"pipeline", "Async Pipelined Dataplane: In-Flight Sweep and Doorbell Coalescing (Fine-Grained)", expPipeline},
		{"replication", "Page Replication (k=2): Mirrored-Write Overhead and Read-Path Neutrality (Fine-Grained)", expReplication},
		{"adaptive", "Adaptive Traversal Policy: Tracking the Best Static Strategy per Workload Cell (Hybrid)", expAdaptive},
	}
}

// expCache sweeps the per-client cache size for read-only and insert-mixed
// workloads (Appendix A.4: caching helps reads, writes complicate it).
func expCache(w io.Writer, sc Scale) error {
	sizes := []int{0, 64, 512, 4096}
	for _, mix := range []workload.Mix{workload.WorkloadA, workload.WorkloadC} {
		thr := &stats.Series{Name: "lookups/s"}
		hit := &stats.Series{Name: "hit rate %"}
		var verbs verbReports
		for _, pages := range sizes {
			cfg := baseConfig(nam.FineGrained, sc, 120)
			cfg.Mix = mix
			cfg.CachePages = pages
			cfg.Telemetry = Verbs && pages == sizes[len(sizes)-1]
			res, err := Run(cfg)
			if err != nil {
				return fmt.Errorf("cache/%s/%d pages: %w", mix.Name, pages, err)
			}
			thr.Append(float64(pages), res.Throughput)
			rate := 0.0
			if t := res.CacheHits + res.CacheMisses; t > 0 {
				rate = 100 * float64(res.CacheHits) / float64(t)
			}
			hit.Append(float64(pages), rate)
			verbs.add(fmt.Sprintf("%d cache pages", pages), res.Telemetry)
		}
		fmt.Fprintf(w, "Workload %s (cache pages per client)\n", mix.Name)
		fmt.Fprintln(w, stats.Table("cache pages", "value", thr, hit))
		verbs.write(w)
	}
	return nil
}

// expAblationHeads measures range-scan throughput with and without head
// nodes at several spacings — the value of the Section 4.3 optimization.
func expAblationHeads(w io.Writer, sc Scale) error {
	spacings := []int{0, 8, 32, 64}
	for _, sel := range sc.Selectivities {
		ser := &stats.Series{Name: "fine-grained"}
		var verbs verbReports
		for _, he := range spacings {
			cfg := baseConfig(nam.FineGrained, sc, 120)
			cfg.Mix = workload.WorkloadB
			cfg.Selectivity = sel
			cfg.HeadEvery = he
			cfg.MeasureNS = sc.MeasureRangeNS
			cfg.Telemetry = Verbs && (he == 0 || he == spacings[len(spacings)-1])
			res, err := Run(cfg)
			if err != nil {
				return fmt.Errorf("heads/sel=%g/every=%d: %w", sel, he, err)
			}
			ser.Append(float64(he), res.Throughput)
			verbs.add(fmt.Sprintf("head spacing %d", he), res.Telemetry)
		}
		fmt.Fprintf(w, "Range Queries (Sel=%g); x = head-node spacing (0 = no head nodes)\n", sel)
		fmt.Fprintln(w, stats.Table("head every", "lookups/s", ser))
		verbs.write(w)
	}
	return nil
}

// expAblationPageSize sweeps the page size P for point and range queries on
// the fine-grained design: bigger pages mean shallower trees but larger
// transfers.
func expAblationPageSize(w io.Writer, sc Scale) error {
	pageSizes := []int{256, 512, 1024, 4096}
	panels := []wlPanel{
		{"Point Queries", workload.WorkloadA, 0},
		{"Range Queries (Sel=0.01)", workload.WorkloadB, 0.01},
	}
	for _, panel := range panels {
		ser := &stats.Series{Name: "fine-grained"}
		var verbs verbReports
		for _, pb := range pageSizes {
			cfg := exp1Config(nam.FineGrained, sc, 120, panel, false)
			cfg.PageBytes = pb
			cfg.Telemetry = Verbs && (pb == pageSizes[0] || pb == pageSizes[len(pageSizes)-1])
			res, err := Run(cfg)
			if err != nil {
				return fmt.Errorf("pagesize/%s/P=%d: %w", panel.name, pb, err)
			}
			ser.Append(float64(pb), res.Throughput)
			verbs.add(fmt.Sprintf("P=%d", pb), res.Telemetry)
		}
		fmt.Fprintln(w, panel.name)
		fmt.Fprintln(w, stats.Table("page bytes", "lookups/s", ser))
		verbs.write(w)
	}
	return nil
}

// expAblationHotspot contrasts uniform inserts with append-style inserts
// (YCSB new records): the right-edge hotspot collapses designs that spin on
// the hot leaf's lock — remotely (fine-grained clients flood the NIC) or on
// the server's cores.
func expAblationHotspot(w io.Writer, sc Scale) error {
	var series []*stats.Series
	var verbs verbReports
	for _, append_ := range []bool{false, true} {
		label := "uniform"
		if append_ {
			label = "append"
		}
		for _, d := range allDesigns {
			name := fmt.Sprintf("%s %s", shortName(d), label)
			ser := &stats.Series{Name: name}
			for _, clients := range sc.Clients {
				cfg := baseConfig(d, sc, clients)
				cfg.Mix = workload.WorkloadD
				cfg.InsertAppend = append_
				cfg.Telemetry = Verbs && clients == sc.Clients[len(sc.Clients)-1]
				res, err := Run(cfg)
				if err != nil {
					return fmt.Errorf("hotspot/%v/%s/%d: %w", d, label, clients, err)
				}
				ser.Append(float64(clients), res.Throughput)
				verbs.add(name, res.Telemetry)
			}
			series = append(series, ser)
		}
	}
	fmt.Fprintln(w, "Workload D (50% inserts), uniform vs append insert keys")
	fmt.Fprintln(w, stats.Table("clients", "operations/s", series...))
	verbs.write(w)
	return nil
}

// expAblationZipf applies YCSB's original request-skew knob (Zipfian key
// popularity) instead of the paper's attribute-value skew: hot *requests*
// concentrate on one partition owner (coarse-grained) or one hot leaf's NIC
// (fine-grained) even though the data itself is placed uniformly.
func expAblationZipf(w io.Writer, sc Scale) error {
	var series []*stats.Series
	var verbs verbReports
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipfian} {
		label := "uniform"
		if dist == workload.Zipfian {
			label = "zipfian"
		}
		for _, d := range allDesigns {
			name := fmt.Sprintf("%s %s", shortName(d), label)
			ser := &stats.Series{Name: name}
			for _, clients := range sc.Clients {
				cfg := baseConfig(d, sc, clients)
				cfg.Dist = dist
				cfg.Telemetry = Verbs && clients == sc.Clients[len(sc.Clients)-1]
				res, err := Run(cfg)
				if err != nil {
					return fmt.Errorf("zipf/%v/%s/%d: %w", d, label, clients, err)
				}
				ser.Append(float64(clients), res.Throughput)
				verbs.add(name, res.Telemetry)
			}
			series = append(series, ser)
		}
	}
	fmt.Fprintln(w, "Point queries, uniform vs Zipfian request distribution")
	fmt.Fprintln(w, stats.Table("clients", "lookups/s", series...))
	verbs.write(w)
	return nil
}

// expAblationSRQ sweeps the handler core pool of the coarse-grained design —
// the resource its two-sided RPCs saturate (Section 6.1).
func expAblationSRQ(w io.Writer, sc Scale) error {
	cores := []int{4, 10, 20, 40}
	ser := &stats.Series{Name: "coarse-grained"}
	var verbs verbReports
	for _, c := range cores {
		c := c
		cfg := baseConfig(nam.CoarseGrained, sc, 240)
		cfg.Tune = func(sc *simnet.Config) {
			sc.HandlerCoresPerMachine = c
			sc.HandlersPerServer = c
		}
		cfg.Telemetry = Verbs && c == cores[len(cores)-1]
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("srq/cores=%d: %w", c, err)
		}
		ser.Append(float64(c), res.Throughput)
		verbs.add(fmt.Sprintf("%d cores", c), res.Telemetry)
	}
	fmt.Fprintln(w, "Point Queries, 240 clients; x = handler cores per memory machine")
	fmt.Fprintln(w, stats.Table("cores", "lookups/s", ser))
	verbs.write(w)
	return nil
}
