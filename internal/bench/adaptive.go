package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/workload"
)

// AdaptiveBaselinePath is where expAdaptive writes its machine-readable
// baseline; nambench -regress re-runs the experiment against it.
var AdaptiveBaselinePath = "BENCH_adaptive.json"

// AdaptiveGateRatio is the tracking floor: in every cell of the sweep the
// adaptive client's throughput must be at least this fraction of the better
// static strategy's — the "within 10% of best static, zero manual tuning"
// contract. Checked when the baseline is generated and again by the
// regression gate.
const AdaptiveGateRatio = 0.90

// adaptiveClients pins the sweep's client count. The policy's interesting
// regime is server-CPU pressure — enough closed-loop clients that the RPC
// offload's handler queueing is visible and the crossover genuinely moves
// between cells — so the sweep runs at the upper end of the paper's client
// scale rather than the latency-exposed low end the pipeline experiment uses.
const adaptiveClients = 120

// adaptiveWarmupNS widens the warm-up window beyond the harness default:
// every client starts on the default strategy with empty signal windows, and
// the slowest cells (insert-heavy Zipfian mixes run at a few hundred ops per
// client) must still ramp — observe, evaluate, and switch — before the
// measured window opens, so the measurement sees the adapted steady state,
// not the learning transient.
const adaptiveWarmupNS = 20_000_000

// adaptiveTraverses are the three traversal modes each cell measures.
var adaptiveTraverses = []string{"rpc", "onesided", "adaptive"}

// AdaptiveCell is one (workload, distribution) cell of the sweep: the two
// static strategies, the adaptive client, and how well it tracked.
type AdaptiveCell struct {
	Workload string `json:"workload"`
	Dist     string `json:"dist"`
	// RPCOpsSec / OneSidedOpsSec / AdaptiveOpsSec are the cell's measured
	// throughputs under each traversal mode.
	RPCOpsSec      float64 `json:"rpc_ops_sec"`
	OneSidedOpsSec float64 `json:"onesided_ops_sec"`
	AdaptiveOpsSec float64 `json:"adaptive_ops_sec"`
	// BestStatic names the winning static strategy ("rpc" or "onesided").
	BestStatic string `json:"best_static"`
	// Ratio is AdaptiveOpsSec over the best static throughput — the metric
	// under the AdaptiveGateRatio floor.
	Ratio float64 `json:"adaptive_over_best"`
	// Switches counts runtime strategy switches across all clients in the
	// adaptive run (cold-start ramps land around one per client-partition;
	// a much larger count means flapping).
	Switches int64 `json:"policy_switches"`
}

// AdaptiveReport is the BENCH_adaptive.json payload. The scale travels in
// the JSON so the regression gate re-runs at the baseline's own shape.
type AdaptiveReport struct {
	DataSize int            `json:"data_size"`
	Clients  int            `json:"clients"`
	Cells    []AdaptiveCell `json:"cells"`
	// MinRatio is the worst cell's Ratio — the single number under the floor.
	MinRatio float64 `json:"min_adaptive_over_best"`
}

// adaptivePanels enumerates workloads A-D; B's range scans amortize the
// upper-level traversal over a long leaf walk (the cell pins that adaptivity
// does not hurt when strategy barely matters), C and D mix inserts in, moving
// the crossover through lock traffic and splits.
func adaptivePanels() []wlPanel {
	return []wlPanel{
		{"Workload A (100% point)", workload.WorkloadA, 0},
		{"Workload B (100% range, Sel=0.001)", workload.WorkloadB, 0.001},
		{"Workload C (95% point, 5% insert)", workload.WorkloadC, 0},
		{"Workload D (50% point, 50% insert)", workload.WorkloadD, 0},
	}
}

// adaptiveDists enumerates the request distributions of the sweep.
var adaptiveDists = []struct {
	name string
	dist workload.Distribution
}{
	{"uniform", workload.Uniform},
	{"zipfian", workload.Zipfian},
}

// runAdaptiveCell measures one (workload, dist, traverse) point.
func runAdaptiveCell(sc Scale, clients, dataSize int, p wlPanel, dist workload.Distribution, traverse string) (Result, error) {
	cfg := baseConfig(nam.Hybrid, sc, clients)
	cfg.DataSize = dataSize
	cfg.Mix = p.mix
	cfg.Selectivity = p.sel
	cfg.Dist = dist
	cfg.Traverse = traverse
	cfg.WarmupNS = adaptiveWarmupNS
	if p.mix.RangePct > 0 {
		cfg.MeasureNS = sc.MeasureRangeNS
	}
	return Run(cfg)
}

// RunAdaptive executes the adaptive-policy experiment: for every workload ×
// distribution cell, both static traversal strategies and the adaptive
// client, under one global policy configuration (policy.Defaults — no
// per-cell tuning).
func RunAdaptive(sc Scale) (AdaptiveReport, error) {
	return runAdaptiveAt(sc, adaptiveClients, sc.DataSize)
}

func runAdaptiveAt(sc Scale, clients, dataSize int) (AdaptiveReport, error) {
	rep := AdaptiveReport{DataSize: dataSize, Clients: clients, MinRatio: 1e18}
	for _, panel := range adaptivePanels() {
		for _, d := range adaptiveDists {
			cell := AdaptiveCell{Workload: panel.mix.Name, Dist: d.name}
			for _, trav := range adaptiveTraverses {
				res, err := runAdaptiveCell(sc, clients, dataSize, panel, d.dist, trav)
				if err != nil {
					return rep, fmt.Errorf("adaptive/%s/%s/%s: %w", panel.mix.Name, d.name, trav, err)
				}
				switch trav {
				case "rpc":
					cell.RPCOpsSec = res.Throughput
				case "onesided":
					cell.OneSidedOpsSec = res.Throughput
				case "adaptive":
					cell.AdaptiveOpsSec = res.Throughput
					cell.Switches = res.PolicySwitches
				}
			}
			best := cell.RPCOpsSec
			cell.BestStatic = "rpc"
			if cell.OneSidedOpsSec > best {
				best, cell.BestStatic = cell.OneSidedOpsSec, "onesided"
			}
			if best > 0 {
				cell.Ratio = cell.AdaptiveOpsSec / best
			}
			if cell.Ratio < rep.MinRatio {
				rep.MinRatio = cell.Ratio
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

// expAdaptive is the nambench surface of RunAdaptive: it renders the cell
// table, enforces the tracking floor, and writes the machine-readable
// baseline to AdaptiveBaselinePath.
func expAdaptive(w io.Writer, sc Scale) error {
	rep, err := RunAdaptive(sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "adaptive traversal policy (%d clients, data size %d; one policy config for every cell)\n",
		rep.Clients, rep.DataSize)
	fmt.Fprintf(w, "  %-4s %-8s %14s %14s %14s  %-8s %7s %9s\n",
		"wl", "dist", "rpc ops/s", "onesided ops/s", "adaptive ops/s", "best", "ratio", "switches")
	var failures []string
	for _, c := range rep.Cells {
		verdict := ""
		if c.Ratio < AdaptiveGateRatio {
			verdict = "  BELOW FLOOR"
			failures = append(failures, fmt.Sprintf("%s/%s: adaptive %.0f ops/s is %.1f%% of best static (%s %.0f), floor %.0f%%",
				c.Workload, c.Dist, c.AdaptiveOpsSec, 100*c.Ratio, c.BestStatic, max(c.RPCOpsSec, c.OneSidedOpsSec), 100*AdaptiveGateRatio))
		}
		fmt.Fprintf(w, "  %-4s %-8s %14.0f %14.0f %14.0f  %-8s %6.1f%% %9d%s\n",
			c.Workload, c.Dist, c.RPCOpsSec, c.OneSidedOpsSec, c.AdaptiveOpsSec, c.BestStatic, 100*c.Ratio, c.Switches, verdict)
	}
	fmt.Fprintf(w, "worst cell: adaptive at %.1f%% of best static (floor %.0f%%)\n",
		100*rep.MinRatio, 100*AdaptiveGateRatio)
	if len(failures) > 0 {
		msg := fmt.Sprintf("adaptive: %d cells below the %.0f%% tracking floor:", len(failures), 100*AdaptiveGateRatio)
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(AdaptiveBaselinePath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("adaptive: writing baseline: %w", err)
	}
	fmt.Fprintf(w, "wrote %s\n", AdaptiveBaselinePath)
	return nil
}

// RegressAdaptive is the CI gate over BENCH_adaptive.json: it re-runs the
// sweep at the baseline's recorded scale and fails when any cell's adaptive
// throughput fell more than RegressTolerance below its baseline, or when any
// cell no longer clears the absolute tracking floor. Failures enumerate the
// offending (workload, distribution) cells.
func RegressAdaptive(w io.Writer, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("regress: reading baseline: %w", err)
	}
	var base AdaptiveReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("regress: parsing %s: %w", baselinePath, err)
	}
	if base.DataSize <= 0 || base.Clients <= 0 || len(base.Cells) == 0 {
		return fmt.Errorf("regress: %s carries no scale (data_size=%d clients=%d cells=%d)",
			baselinePath, base.DataSize, base.Clients, len(base.Cells))
	}
	sc := FullScale
	sc.DataSize = base.DataSize
	got, err := runAdaptiveAt(sc, base.Clients, base.DataSize)
	if err != nil {
		return fmt.Errorf("regress: re-running adaptive: %w", err)
	}
	byCell := make(map[string]AdaptiveCell, len(got.Cells))
	for _, c := range got.Cells {
		byCell[c.Workload+"/"+c.Dist] = c
	}

	var failures []string
	fmt.Fprintf(w, "adaptive regression gate vs %s (data_size=%d clients=%d, tolerance %.0f%%, floor %.0f%%)\n",
		baselinePath, base.DataSize, base.Clients, 100*RegressTolerance, 100*AdaptiveGateRatio)
	for _, bc := range base.Cells {
		name := bc.Workload + "/" + bc.Dist
		gc, ok := byCell[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: cell missing from re-run", name))
			continue
		}
		delta := 0.0
		if bc.AdaptiveOpsSec > 0 {
			delta = 100 * (gc.AdaptiveOpsSec - bc.AdaptiveOpsSec) / bc.AdaptiveOpsSec
		}
		verdict := "ok"
		if bc.AdaptiveOpsSec > 0 && gc.AdaptiveOpsSec < bc.AdaptiveOpsSec*(1-RegressTolerance) {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: adaptive ops/s baseline %.0f, observed %.0f (%+.2f%%)",
				name, bc.AdaptiveOpsSec, gc.AdaptiveOpsSec, delta))
		}
		if gc.Ratio < AdaptiveGateRatio {
			verdict = "BELOW FLOOR"
			failures = append(failures, fmt.Sprintf("%s: adaptive at %.1f%% of best static (%s), floor %.0f%%",
				name, 100*gc.Ratio, gc.BestStatic, 100*AdaptiveGateRatio))
		}
		fmt.Fprintf(w, "  %-58s baseline %14.2f  measured %14.2f  %+7.2f%%  %s\n",
			name+"/adaptive_ops_sec", bc.AdaptiveOpsSec, gc.AdaptiveOpsSec, delta, verdict)
		fmt.Fprintf(w, "  %-58s floor    %14.2f  measured %14.2f\n",
			name+"/adaptive_over_best", AdaptiveGateRatio, gc.Ratio)
	}
	if len(failures) > 0 {
		msg := fmt.Sprintf("regress: %d adaptive cells failed over %s:", len(failures), baselinePath)
		for _, f := range failures {
			msg += "\n  " + f
		}
		msg += "\n(if intentional, regenerate with `nambench -exp adaptive`)"
		return fmt.Errorf("%s", msg)
	}
	fmt.Fprintln(w, "adaptive regression gate passed")
	return nil
}
