// Package bench is the experiment harness: it deploys one index design on a
// simulated NAM cluster, drives it with closed-loop clients executing a
// modified-YCSB workload (Section 6), and reports throughput, latency and
// network utilization over a measured virtual-time window.
package bench

import (
	"fmt"
	"sync/atomic"

	"github.com/namdb/rdmatree/internal/cache"
	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/coarse"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/core/hybrid"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/policy"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/repl"
	"github.com/namdb/rdmatree/internal/rdma/simnet"
	"github.com/namdb/rdmatree/internal/sim"
	"github.com/namdb/rdmatree/internal/stats"
	"github.com/namdb/rdmatree/internal/telemetry"
	"github.com/namdb/rdmatree/internal/workload"
)

// LiveRecorder, when non-nil, additionally accumulates the telemetry of
// every Run in this process — cmd/nambench sets it (with -metrics) so the
// expvar endpoint shows live counters across whole experiment sweeps.
var LiveRecorder *telemetry.Recorder

// LiveTracer, when non-nil, receives the trace spans of every Run —
// cmd/nambench sets it with -trace.
var LiveTracer *telemetry.Tracer

// LiveMetrics, when non-nil, receives per-op-type latency histograms (per
// design, per partition) from every Run — cmd/nambench sets it (with
// -metrics) to feed the OpenMetrics /metrics endpoint. Enabling it threads a
// per-client obs.Log through every design client, timed by the client's
// virtual clock.
var LiveMetrics *obs.MetricsSet

// Config describes one experiment point.
type Config struct {
	// Design selects the index design under test.
	Design nam.Design
	// PartKind selects the coarse-grained partitioning (range or hash);
	// ignored by the fine-grained design.
	PartKind nam.PartitionKind
	// SkewedData applies the paper's 80/12/5/3 attribute-value-skew
	// assignment (Section 6.1) instead of uniform range partitioning. For
	// the fine-grained design data placement is per-node round-robin and
	// unaffected, as in the paper.
	SkewedData bool
	// Topology is the cluster layout.
	Topology nam.Topology
	// DataSize is the initial number of index entries D.
	DataSize int
	// PageBytes is the index page size P.
	PageBytes int
	// Mix is the workload (Table 3).
	Mix workload.Mix
	// Selectivity configures range queries.
	Selectivity float64
	// Dist is the request distribution.
	Dist workload.Distribution
	// HeadEvery enables head nodes for fine-grained leaves (fine/hybrid).
	HeadEvery int
	// InsertAppend switches inserts to monotonically increasing new keys
	// (right-edge hotspot extension; see workload.Config.InsertAppend).
	InsertAppend bool
	// CachePages enables a compute-side page cache of this many pages per
	// client on the fine-grained design (Appendix A.4).
	CachePages int
	// Pipeline, when > 0, runs fine-grained clients through the async
	// pipelined dataplane with this many operations in flight per client
	// (DESIGN.md §11): traversal steps of different in-flight operations
	// share doorbell batches and their round trips overlap. 1 runs the
	// engine with a single slot (measures engine overhead over the serial
	// client); 0 selects the serial client. Fine-grained only; ignored by
	// the other designs.
	Pipeline int
	// LegacyReads runs fine-grained clients with the paper's original
	// Listing-2 read protocol (two blocking READs per level) instead of the
	// fused doorbell-batched protocol — the measured baseline of the RTT
	// experiment and the verb sequence the paper's figures assume. Ignored
	// by the other designs and by cached clients.
	LegacyReads bool
	// Traverse selects the hybrid design's upper-level traversal strategy:
	// "" or "rpc" keeps the design's native traverse RPC, "onesided" pins
	// client-side fused reads of the inner nodes, and "adaptive" runs each
	// client under its own policy engine (internal/policy) fed by the
	// client's signal window and timed by its virtual clock, switching
	// per partition at runtime. Hybrid only; a Validate error elsewhere.
	Traverse string
	// Replicas, when >= 2, deploys the fine-grained design with k-way page
	// replication (DESIGN.md §13): server regions are carved into
	// identity-offset replica slabs, every client's endpoint is wrapped in
	// the replica router, and each client mirrors its dirtied pages to the
	// group's backups before acking. Fine-grained serial clients only —
	// combining with Pipeline, CachePages or LegacyReads is a Validate
	// error, and 0 and 1 both mean unreplicated.
	Replicas int
	// WarmupNS and MeasureNS are the virtual warm-up and measurement
	// windows.
	WarmupNS  int64
	MeasureNS int64
	// Seed seeds the workload generators.
	Seed int64
	// Tune, if non-nil, adjusts the fabric cost model before deployment.
	Tune func(*simnet.Config)
	// Telemetry enables verbs-level recording: every client endpoint is
	// wrapped in a telemetry decorator (virtual-time latencies) and the
	// designs' protocol counters are collected; the merged recorder lands in
	// Result.Telemetry. Off by default — the decorators are never installed,
	// so the measured run is byte-identical to an uninstrumented one.
	Telemetry bool
	// Trace, if non-nil, receives per-op and per-verb trace spans in the
	// simulation's virtual time (implies Telemetry).
	Trace *telemetry.Tracer
}

// Validate fills defaults and sanity-checks.
func (c *Config) Validate() error {
	if c.DataSize <= 0 {
		return fmt.Errorf("bench: DataSize must be positive")
	}
	if c.PageBytes == 0 {
		c.PageBytes = 1024
	}
	if c.WarmupNS == 0 {
		c.WarmupNS = 2_000_000 // 2ms virtual
	}
	if c.MeasureNS == 0 {
		c.MeasureNS = 20_000_000 // 20ms virtual
	}
	switch c.Traverse {
	case "", "rpc", "onesided", "adaptive":
	default:
		return fmt.Errorf("bench: unknown Traverse %q (want rpc, onesided or adaptive)", c.Traverse)
	}
	if c.Traverse != "" && c.Design != nam.Hybrid {
		return fmt.Errorf("bench: Traverse requires the hybrid design")
	}
	if c.Replicas >= 2 {
		if c.Design != nam.FineGrained {
			return fmt.Errorf("bench: Replicas requires the fine-grained design")
		}
		if c.Pipeline > 0 || c.CachePages > 0 || c.LegacyReads {
			return fmt.Errorf("bench: Replicas supports only the serial fused-read client (no Pipeline, CachePages, LegacyReads)")
		}
		if c.Replicas > c.Topology.MemServers {
			return fmt.Errorf("bench: Replicas %d exceeds memory servers %d", c.Replicas, c.Topology.MemServers)
		}
	}
	return c.Topology.Validate()
}

// Result is one experiment point's measurement.
type Result struct {
	// Ops completed inside the measurement window.
	Ops int64
	// Throughput in operations/second.
	Throughput float64
	// Latency of operations completing inside the window, in nanoseconds.
	Latency *stats.Histogram
	// LatencyByKind splits latency per operation kind (point/range/insert),
	// useful for the mixed workloads of Exp. 3.
	LatencyByKind map[workload.OpKind]*stats.Histogram
	// NetGBps is the aggregate server-NIC traffic (in+out) during the
	// window, in GB/s (Figure 9's metric).
	NetGBps float64
	// PerServerGBps is the per-memory-server traffic.
	PerServerGBps []float64
	// CacheHits/CacheMisses aggregate compute-side cache statistics when
	// CachePages is enabled.
	CacheHits   int64
	CacheMisses int64
	// PolicySwitches counts runtime traversal-strategy switches across all
	// clients (hybrid with Traverse "adaptive" only).
	PolicySwitches int64
	// Util reports per-station utilization over the measurement window;
	// Util.Max() names the saturated resource behind a plateau.
	Util simnet.Utilization
	// Telemetry holds the run's verbs-level counters when Config.Telemetry
	// (or tracing) was enabled; nil otherwise.
	Telemetry *telemetry.Recorder
	// Err is the first client error, if any.
	Err error
}

// telemetryOrNil converts a possibly-nil *Recorder to the cache's hook
// interface without producing a typed-nil interface value.
func telemetryOrNil(rec *telemetry.Recorder) cache.Telemetry {
	if rec == nil {
		return nil
	}
	return rec
}

// eventsOrNil converts a possibly-nil *obs.Log to the cache's per-access
// hook interface without producing a typed-nil interface value.
func eventsOrNil(log *obs.Log) cache.Events {
	if log == nil {
		return nil
	}
	return log
}

// designLabel names a design for the metrics export.
func designLabel(d nam.Design) string {
	switch d {
	case nam.CoarseGrained:
		return "coarse"
	case nam.FineGrained:
		return "fine"
	case nam.Hybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// Run executes one experiment point.
func Run(cfg Config) (Result, error) {
	if err := (&cfg).Validate(); err != nil {
		return Result{}, err
	}
	s := sim.New()
	simCfg := simnet.NewConfig(cfg.Topology)
	if cfg.Tune != nil {
		cfg.Tune(&simCfg)
	}
	fab := simnet.New(s, simCfg)
	l := layout.New(cfg.PageBytes)

	// Telemetry wiring: one shared recorder (atomic counters) fed by every
	// client endpoint and server handler; nil when disabled, so the hot path
	// keeps its uninstrumented shape.
	tracer := cfg.Trace
	if tracer == nil {
		tracer = LiveTracer
	}
	var rec *telemetry.Recorder
	if cfg.Telemetry || tracer != nil || LiveRecorder != nil {
		rec = telemetry.NewRecorder(cfg.Topology.MemServers)
	}
	clientEp := func(id int, p *sim.Proc) rdma.Endpoint {
		base := fab.Endpoint(id, p)
		if rec == nil {
			return base
		}
		e := telemetry.Wrap(base, rec, p)
		if tracer != nil {
			e.WithTrace(tracer, 0, id)
		}
		return e
	}
	wrapHandler := func(h rdma.Handler) rdma.Handler {
		if rec == nil {
			return h
		}
		return telemetry.Instrument(h, rec, tracer)
	}
	// Per-op metrics wiring: with LiveMetrics set, every client carries an
	// obs.Log timed by its virtual clock, feeding the design's shared
	// histogram set (per op kind, and per partition for the partitioned
	// designs).
	var metrics *obs.Metrics
	if LiveMetrics != nil {
		parts := 0
		if cfg.Design != nam.FineGrained {
			parts = cfg.Topology.MemServers
		}
		metrics = LiveMetrics.Get(designLabel(cfg.Design), parts)
	}
	clientLog := func(id int, p *sim.Proc) *obs.Log {
		if metrics == nil {
			return nil
		}
		log := obs.NewLog(0, p)
		log.ClientID = id
		log.Metrics = metrics
		return log
	}
	if tracer != nil {
		tracer.NameProcess(0, "clients")
		for c := 0; c < cfg.Topology.Clients(); c++ {
			tracer.NameThread(0, c, fmt.Sprintf("client %d", c))
		}
		for srv := 0; srv < cfg.Topology.MemServers; srv++ {
			tracer.NameProcess(telemetry.ServerPid(srv), fmt.Sprintf("server %d handlers", srv))
		}
	}

	spec := core.BuildSpec{
		N:         cfg.DataSize,
		At:        workload.DataItem,
		HeadEvery: cfg.HeadEvery,
	}
	keyspace := uint64(cfg.DataSize)

	part := func() partition.Partitioner {
		if cfg.PartKind == nam.PartHash {
			return partition.NewHash(cfg.Topology.MemServers)
		}
		if cfg.SkewedData {
			// 80/12/5/3 across the first four servers; further servers
			// continue the tail geometrically.
			weights := []float64{80, 12, 5, 3}
			for len(weights) < cfg.Topology.MemServers {
				weights = append(weights, weights[len(weights)-1]/2)
			}
			return partition.NewRangeWeighted(keyspace, weights[:cfg.Topology.MemServers]...)
		}
		return partition.NewRangeUniform(cfg.Topology.MemServers, keyspace)
	}

	// Deploy the design.
	var caches []*cache.Mem
	var engines []*policy.Engine
	var mkClient func(clientID int, p *sim.Proc) core.Index
	var mkPipelined func(clientID int, p *sim.Proc) *fine.PipelinedClient
	switch cfg.Design {
	case nam.CoarseGrained:
		srv := coarse.NewServer(fab, coarse.Options{Layout: l, Part: part(), VisitNS: simCfg.VisitNS, Telemetry: rec})
		cat, err := srv.Build(spec)
		if err != nil {
			return Result{}, err
		}
		fab.SetHandler(wrapHandler(srv.Handler()))
		fab.Start()
		mkClient = func(id int, p *sim.Proc) core.Index {
			c := coarse.NewClient(clientEp(id, p), fab.ClientEnv(p), cat)
			c.SetOpLog(clientLog(id, p))
			return c
		}
	case nam.FineGrained:
		fineOpts := fine.Options{Layout: l}
		var lay nam.ReplicaLayout
		if cfg.Replicas >= 2 {
			// Carve every server's region into identity-offset replica slabs
			// and confine its allocator to its own slab, so a page's backup
			// copies live at the page's own offset on the group's other
			// members (DESIGN.md §13).
			lay = nam.NewReplicaLayout(cfg.Topology.MemServers, cfg.Replicas, uint64(simCfg.RegionBytes))
			for i := 0; i < cfg.Topology.MemServers; i++ {
				fab.Server(i).Alloc = rdma.NewAllocator(lay.SlabLo(i), lay.SlabHi(i))
			}
			fineOpts.Replicas = cfg.Replicas
			fineOpts.RegionBytes = uint64(simCfg.RegionBytes)
		}
		cat, err := fine.Build(fab.SetupEndpoint(), fineOpts, spec)
		if err != nil {
			return Result{}, err
		}
		if cfg.Replicas >= 2 {
			// The bulk load wrote primaries only; seed the backups before any
			// client starts, as deployment would after a bulk load.
			repl.SyncReplicas(lay, fab.Server)
		}
		if cfg.Pipeline > 0 {
			mkPipelined = func(id int, p *sim.Proc) *fine.PipelinedClient {
				c := fine.NewPipelinedClient(clientEp(id, p), fab.ClientEnv(p), cat, id, cfg.Pipeline)
				c.SetRecorder(rec)
				c.SetOpLog(clientLog(id, p))
				return c
			}
		}
		mkClient = func(id int, p *sim.Proc) core.Index {
			if cfg.CachePages > 0 {
				c, cm := fine.NewCachedClient(clientEp(id, p), fab.ClientEnv(p), cat, id, cfg.CachePages)
				cm.Tel = telemetryOrNil(rec)
				caches = append(caches, cm)
				c.SetRecorder(rec)
				log := clientLog(id, p)
				cm.Events = eventsOrNil(log)
				c.SetOpLog(log)
				return c
			}
			var c *fine.Client
			if cfg.Replicas >= 2 {
				// The router sits above the telemetry wrap, so mirror pushes
				// count toward the measured verbs and RTTs/op — replication
				// overhead is visible, not hidden.
				router := repl.NewRouter(clientEp(id, p), lay, nil, nil)
				c = fine.NewClient(router, fab.ClientEnv(p), cat, id)
				c.SetReplicator(repl.NewMirrorer(router, fab.ClientEnv(p), nil))
			} else if cfg.LegacyReads {
				c = fine.NewUnbatchedClient(clientEp(id, p), fab.ClientEnv(p), cat, id)
			} else {
				c = fine.NewClient(clientEp(id, p), fab.ClientEnv(p), cat, id)
			}
			c.SetRecorder(rec)
			c.SetOpLog(clientLog(id, p))
			return c
		}
	case nam.Hybrid:
		srv := hybrid.NewServer(fab, hybrid.Options{Layout: l, Part: part(), VisitNS: simCfg.VisitNS, Telemetry: rec})
		cat, err := srv.Build(fab.SetupEndpoint(), spec)
		if err != nil {
			return Result{}, err
		}
		// Replies piggyback the handler pool's utilization so adaptive
		// clients see the server-CPU signal (one probe per server, shared
		// by its handler procs).
		probes := make([]func() float64, cfg.Topology.MemServers)
		for i := range probes {
			probes[i] = fab.ServerCoreLoad(i)
		}
		srv.SetLoadProbe(func(server int) float64 { return probes[server]() })
		fab.SetHandler(wrapHandler(srv.Handler()))
		fab.Start()
		mkClient = func(id int, p *sim.Proc) core.Index {
			c := hybrid.NewClient(clientEp(id, p), fab.ClientEnv(p), cat, id)
			c.SetRecorder(rec)
			c.SetOpLog(clientLog(id, p))
			switch cfg.Traverse {
			case "onesided":
				c.SetDecider(policy.Static(policy.StrategyOneSided))
			case "adaptive":
				// Per-client engine and window, timed by the client's own
				// virtual clock: decisions use measured virtual-ns costs, so
				// the crossover tracks the simulated fabric, not the host.
				// The dwell is 2ms virtual — a few hundred operations at
				// typical simulated rates, long enough that a borderline
				// partition holds rather than flaps.
				pcfg := policy.Defaults(cfg.Topology.MemServers)
				pcfg.MinDwell = 2_000_000
				win := policy.NewWindow(cfg.Topology.MemServers)
				eng := policy.NewEngine(pcfg, win, p)
				engines = append(engines, eng)
				c.SetDecider(eng)
				c.SetSignalFeed(win, p)
			}
			return c
		}
	default:
		return Result{}, fmt.Errorf("bench: unknown design %v", cfg.Design)
	}

	wlCfg := workload.Config{
		Mix:          cfg.Mix,
		DataSize:     keyspace,
		Selectivity:  cfg.Selectivity,
		Dist:         cfg.Dist,
		Seed:         cfg.Seed,
		Clients:      cfg.Topology.Clients(),
		InsertAppend: cfg.InsertAppend,
	}
	if err := wlCfg.Validate(); err != nil {
		return Result{}, err
	}

	res := Result{
		Latency: &stats.Histogram{},
		LatencyByKind: map[workload.OpKind]*stats.Histogram{
			workload.PointQuery: {},
			workload.RangeQuery: {},
			workload.Insert:     {},
		},
	}
	var ops atomic.Int64
	var firstErr atomic.Value
	measureStart := cfg.WarmupNS
	measureEnd := cfg.WarmupNS + cfg.MeasureNS

	// Byte counters snapshotted at the window edges.
	var bytesAtStart, bytesAtEnd int64
	var perStart, perEnd []int64
	snapshot := func() int64 {
		return fab.BytesIn.Total() + fab.BytesOut.Total()
	}
	perSnapshot := func() []int64 {
		in, out := fab.BytesIn.Snapshot(), fab.BytesOut.Snapshot()
		res := make([]int64, len(in))
		for i := range in {
			res[i] = in[i] + out[i]
		}
		return res
	}
	var busySnap []sim.Time
	s.At(measureStart, func() { bytesAtStart = snapshot(); perStart = perSnapshot(); busySnap = fab.BusySnapshot() })
	s.At(measureEnd, func() {
		bytesAtEnd = snapshot()
		perEnd = perSnapshot()
		res.Util = fab.UtilizationSince(busySnap, measureStart)
	})

	for c := 0; c < cfg.Topology.Clients(); c++ {
		c := c
		s.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			gen, err := workload.NewGenerator(wlCfg, c)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			// record accounts one completed operation and reports whether the
			// client should keep submitting.
			record := func(kind workload.OpKind, start, end int64, err error) bool {
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("client %d: %w", c, err))
					return false
				}
				if tracer != nil {
					tracer.Span(0, c, kind.String(), "op", start, end)
				}
				if end > measureStart && end <= measureEnd {
					ops.Add(1)
					res.Latency.Record(end - start)
					res.LatencyByKind[kind].Record(end - start)
				}
				return end <= measureEnd
			}
			if mkPipelined != nil {
				// Async dataplane: keep the submission window full; latency
				// spans submission to completion, so queueing behind a full
				// window is charged to the operation (the closed-loop view).
				pc := mkPipelined(c, p)
				stop := false
				for !stop {
					op := gen.Next()
					kind := op.Kind
					start := p.Now()
					switch kind {
					case workload.PointQuery:
						pc.Lookup(op.Key, func(_ []uint64, err error) {
							if !record(kind, start, p.Now(), err) {
								stop = true
							}
						})
					case workload.RangeQuery:
						err := pc.Range(op.Key, op.EndKey, func(uint64, uint64) bool { return true })
						if !record(kind, start, p.Now(), err) {
							stop = true
						}
					case workload.Insert:
						pc.Insert(op.Key, op.Value, func(err error) {
							if !record(kind, start, p.Now(), err) {
								stop = true
							}
						})
					}
				}
				pc.Drain()
				return
			}
			idx := mkClient(c, p)
			for {
				op := gen.Next()
				start := p.Now()
				var err error
				switch op.Kind {
				case workload.PointQuery:
					_, err = idx.Lookup(op.Key)
				case workload.RangeQuery:
					err = idx.Range(op.Key, op.EndKey, func(uint64, uint64) bool { return true })
				case workload.Insert:
					err = idx.Insert(op.Key, op.Value)
				}
				if !record(op.Kind, start, p.Now(), err) {
					return
				}
			}
		})
	}
	s.RunUntil(measureEnd)
	s.Shutdown()

	if e, ok := firstErr.Load().(error); ok && e != nil {
		res.Err = e
		return res, e
	}
	res.Ops = ops.Load()
	for _, cm := range caches {
		res.CacheHits += cm.Stats.Hits
		res.CacheMisses += cm.Stats.Misses
	}
	for _, eng := range engines {
		res.PolicySwitches += eng.Switches()
	}
	if rec != nil {
		res.Telemetry = rec
		if LiveRecorder != nil {
			LiveRecorder.Merge(rec)
		}
	}
	secs := float64(cfg.MeasureNS) / 1e9
	res.Throughput = float64(res.Ops) / secs
	res.NetGBps = float64(bytesAtEnd-bytesAtStart) / secs / 1e9
	if perEnd != nil && perStart != nil {
		for i := range perEnd {
			res.PerServerGBps = append(res.PerServerGBps, float64(perEnd[i]-perStart[i])/secs/1e9)
		}
	}
	return res, nil
}

