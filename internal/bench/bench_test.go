package bench

import (
	"testing"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/workload"
)

func pointCfg(design nam.Design, clients int) Config {
	machines := (clients + 39) / 40
	if machines < 1 {
		machines = 1
	}
	return Config{
		Design:    design,
		Topology:  nam.PaperTopology(4, machines, (clients+machines-1)/machines),
		DataSize:  200_000,
		Mix:       workload.WorkloadA,
		HeadEvery: 16,
		Seed:      42,
	}
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("bench run failed: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	return res
}

func TestPointQueriesAllDesigns(t *testing.T) {
	for _, d := range []nam.Design{nam.CoarseGrained, nam.FineGrained, nam.Hybrid} {
		t.Run(d.String(), func(t *testing.T) {
			res := run(t, pointCfg(d, 40))
			if res.Throughput < 10_000 {
				t.Fatalf("implausibly low throughput %f", res.Throughput)
			}
			if res.Latency.Percentile(50) < 1000 {
				t.Fatalf("implausibly low median latency %d", res.Latency.Percentile(50))
			}
			if res.NetGBps <= 0 {
				t.Fatal("no network traffic measured")
			}
		})
	}
}

func TestThroughputGrowsWithLoadThenSaturates(t *testing.T) {
	// Closed-loop throughput must increase from 8 to 80 clients for every
	// design (fig 7/8 left side).
	for _, d := range []nam.Design{nam.CoarseGrained, nam.FineGrained, nam.Hybrid} {
		lo := run(t, pointCfg(d, 8))
		hi := run(t, pointCfg(d, 80))
		if hi.Throughput <= lo.Throughput {
			t.Fatalf("%v: throughput did not grow with load: %f -> %f",
				d, lo.Throughput, hi.Throughput)
		}
	}
}

func TestLatencyInflatesUnderLoad(t *testing.T) {
	lo := run(t, pointCfg(nam.CoarseGrained, 8))
	hi := run(t, pointCfg(nam.CoarseGrained, 160))
	if hi.Latency.Percentile(50) <= lo.Latency.Percentile(50) {
		t.Fatalf("median latency did not inflate: %d -> %d",
			lo.Latency.Percentile(50), hi.Latency.Percentile(50))
	}
}

func TestSkewHurtsCoarseNotFine(t *testing.T) {
	// Figure 7 vs 8 headline: attribute-value skew collapses the
	// coarse-grained design's throughput but leaves fine-grained intact.
	mk := func(d nam.Design, skew bool) Result {
		cfg := pointCfg(d, 120)
		cfg.SkewedData = skew
		return run(t, cfg)
	}
	cgU, cgS := mk(nam.CoarseGrained, false), mk(nam.CoarseGrained, true)
	fgU, fgS := mk(nam.FineGrained, false), mk(nam.FineGrained, true)
	if cgS.Throughput >= cgU.Throughput*0.9 {
		t.Fatalf("coarse-grained unaffected by skew: %f vs %f", cgS.Throughput, cgU.Throughput)
	}
	ratio := fgS.Throughput / fgU.Throughput
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("fine-grained affected by skew: %f vs %f", fgS.Throughput, fgU.Throughput)
	}
}

func TestRangeQueriesRun(t *testing.T) {
	for _, d := range []nam.Design{nam.CoarseGrained, nam.FineGrained, nam.Hybrid} {
		cfg := pointCfg(d, 40)
		cfg.DataSize = 100_000
		cfg.Mix = workload.WorkloadB
		cfg.Selectivity = 0.001
		cfg.MeasureNS = 50_000_000
		res := run(t, cfg)
		if res.Throughput <= 0 {
			t.Fatalf("%v: no range throughput", d)
		}
	}
}

func TestInsertWorkloadRuns(t *testing.T) {
	for _, d := range []nam.Design{nam.CoarseGrained, nam.FineGrained, nam.Hybrid} {
		cfg := pointCfg(d, 40)
		cfg.Mix = workload.WorkloadD
		res := run(t, cfg)
		if res.Throughput <= 0 {
			t.Fatalf("%v: no mixed-workload throughput", d)
		}
	}
}

func TestHashPartitioningBroadcastsRanges(t *testing.T) {
	mk := func(kind nam.PartitionKind) Result {
		cfg := pointCfg(nam.CoarseGrained, 40)
		cfg.DataSize = 100_000
		cfg.Mix = workload.WorkloadB
		cfg.Selectivity = 0.001
		cfg.PartKind = kind
		cfg.MeasureNS = 50_000_000
		return run(t, cfg)
	}
	rangeRes := mk(nam.PartRange)
	hashRes := mk(nam.PartHash)
	// Hash must traverse all S servers per range query (Table 2) and thus
	// achieve lower throughput.
	if hashRes.Throughput >= rangeRes.Throughput {
		t.Fatalf("hash partitioning not slower for ranges: %f vs %f",
			hashRes.Throughput, rangeRes.Throughput)
	}
}

func TestCoLocationBeatsDistributed(t *testing.T) {
	// Appendix A.3: co-locating compute and memory gives a constant-factor
	// gain from the local share of accesses.
	base := Config{
		Design: nam.CoarseGrained,
		Topology: nam.Topology{
			MemServers: 4, MemServersPerMachine: 1,
			ComputeMachines: 4, ClientsPerMachine: 20,
		},
		DataSize:  200_000,
		Mix:       workload.WorkloadA,
		HeadEvery: 16,
		Seed:      7,
	}
	dist := run(t, base)
	co := base
	co.Topology.CoLocated = true
	coRes := run(t, co)
	if coRes.Throughput <= dist.Throughput {
		t.Fatalf("co-location not faster: %f vs %f", coRes.Throughput, dist.Throughput)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := pointCfg(nam.Hybrid, 20)
	r1 := run(t, cfg)
	r2 := run(t, cfg)
	if r1.Ops != r2.Ops || r1.NetGBps != r2.NetGBps {
		t.Fatalf("non-deterministic: %d/%f vs %d/%f", r1.Ops, r1.NetGBps, r2.Ops, r2.NetGBps)
	}
}

func TestValidateDefaults(t *testing.T) {
	cfg := Config{Design: nam.FineGrained, Topology: nam.PaperTopology(2, 1, 4), DataSize: 1000, Mix: workload.WorkloadA}
	if err := (&cfg).Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.PageBytes != 1024 || cfg.WarmupNS == 0 || cfg.MeasureNS == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	bad := Config{Design: nam.FineGrained, Topology: nam.PaperTopology(2, 1, 4), Mix: workload.WorkloadA}
	if err := (&bad).Validate(); err == nil {
		t.Fatal("zero DataSize accepted")
	}
}

func TestPerKindLatency(t *testing.T) {
	cfg := pointCfg(nam.FineGrained, 40)
	cfg.Mix = workload.WorkloadD
	res := run(t, cfg)
	pts := res.LatencyByKind[workload.PointQuery]
	ins := res.LatencyByKind[workload.Insert]
	if pts.Count() == 0 || ins.Count() == 0 {
		t.Fatalf("per-kind histograms empty: points=%d inserts=%d", pts.Count(), ins.Count())
	}
	if res.LatencyByKind[workload.RangeQuery].Count() != 0 {
		t.Fatal("workload D recorded range queries")
	}
	// Inserts pay more verbs than lookups on the one-sided design.
	if ins.Mean() <= pts.Mean() {
		t.Fatalf("insert latency (%f) not above point latency (%f)", ins.Mean(), pts.Mean())
	}
}
