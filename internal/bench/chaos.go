package bench

import (
	"fmt"
	"io"

	"github.com/namdb/rdmatree/internal/chaos"
)

// expChaos runs every scripted fault schedule against every design and
// reports the client-visible outcome, the recovery work (retries, QP
// re-establishments, epoch-fenced re-traversals, released locks), and the
// post-run verification verdicts. A violated survivor invariant — an acked
// insert missing or duplicated, a lost preload entry, a malformed tree — is
// an error, so the experiment doubles as the CI chaos gate.
func expChaos(w io.Writer, sc Scale) error {
	preload := 2000
	if sc.DataSize <= QuickScale.DataSize {
		preload = 1000
	}
	failures := 0
	for _, scn := range chaos.Scenarios() {
		fmt.Fprintf(w, "schedule %q (seed %d): %s\n", scn.Name, scn.Schedule.Seed, scn.Doc)
		for _, design := range []string{"coarse", "fine", "hybrid"} {
			rep, err := chaos.Run(chaos.Config{
				Design:     design,
				Preload:    preload,
				Schedule:   scn.Schedule,
				Replicas:   scn.Replicas,
				SkipVerify: scn.Expect.PermanentLoss,
				Adaptive:   scn.Adaptive,
			})
			if err != nil {
				return fmt.Errorf("chaos/%s/%s: %w", scn.Name, design, err)
			}
			fmt.Fprintf(w, "  %s", rep.Summary())
			rec := rep.Recorder
			fmt.Fprintf(w, "    faults=%d retries=%d reconnects=%d op_recoveries=%d\n",
				rec.Faults(), rec.Retries(), rec.Reconnects(), rec.OpRecoveries())
			if scn.Expect.PermanentLoss {
				// The scenario's contract is surfaced loss, not survival.
				if rep.ServerLostOps == 0 {
					failures++
					fmt.Fprintf(w, "    CONTRACT VIOLATED: expected rdma.ErrServerLost operations, saw none\n")
				}
				continue
			}
			if !rep.AckedPresent || !rep.NoDuplicates || !rep.PreloadIntact {
				failures++
				fmt.Fprintf(w, "    INVARIANT VIOLATED: missing_acked=%d duplicate_pairs=%d missing_preload=%d\n",
					rep.MissingAcked, rep.DuplicatePairs, rep.MissingPreload)
			}
			if scn.Replicas >= 2 && len(rep.Wiped) > 0 && !rep.RebuildClean {
				failures++
				fmt.Fprintf(w, "    REBUILD VIOLATED: rebuilt members differ from group authorities\n")
			}
			if scn.Adaptive && design == "hybrid" {
				if m := scn.Expect.MaxPolicySwitches; m > 0 && rep.PolicySwitches > int64(m) {
					failures++
					fmt.Fprintf(w, "    POLICY FLAPPED: %d strategy switches exceed the bound %d\n", rep.PolicySwitches, m)
				}
				if scn.Expect.PolicyResets && rep.PolicyResets == 0 {
					failures++
					fmt.Fprintf(w, "    POLICY CONTRACT VIOLATED: promotion never reset a partition's signal window\n")
				}
			}
		}
		fmt.Fprintln(w)
	}
	if failures > 0 {
		return fmt.Errorf("chaos: %d design/schedule combinations violated survivor invariants", failures)
	}
	return nil
}
