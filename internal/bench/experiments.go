package bench

import (
	"fmt"
	"io"

	"github.com/namdb/rdmatree/internal/analysis"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/stats"
	"github.com/namdb/rdmatree/internal/telemetry"
	"github.com/namdb/rdmatree/internal/workload"
)

// Verbs controls whether experiment reports append the per-verb telemetry
// breakdown of each design's largest run — the verb-count explanation behind
// every figure (cf. the paper's Figures 6-9 analysis). On by default;
// cmd/nambench -noverbs disables it.
var Verbs = true

// verbReports collects the telemetry of the largest run per series and
// renders the breakdowns after a panel's table.
type verbReports struct {
	order []string
	recs  map[string]*telemetry.Recorder
}

func (v *verbReports) add(label string, rec *telemetry.Recorder) {
	// Verbs can be false while recorders still exist (tracing or live
	// metrics force one); the -noverbs contract is about the report text.
	if rec == nil || !Verbs {
		return
	}
	if v.recs == nil {
		v.recs = map[string]*telemetry.Recorder{}
	}
	if _, ok := v.recs[label]; !ok {
		v.order = append(v.order, label)
	}
	v.recs[label] = rec
}

func (v *verbReports) write(w io.Writer) {
	for _, label := range v.order {
		rec := v.recs[label]
		fmt.Fprintf(w, "verb breakdown — %s (largest run):\n", label)
		fmt.Fprint(w, rec.VerbTable())
		fmt.Fprint(w, rec.ProtoSummary())
		fmt.Fprintln(w)
	}
}

// Scale sizes an experiment run. The paper's testbed numbers (100M tuples,
// 240 clients) are reproduced in shape at simulator scale; Full is the
// default, Quick is for smoke runs and `go test -bench`.
type Scale struct {
	// DataSize is the initial tuple count D.
	DataSize int
	// Clients is the client sweep of Exp. 1 and 3.
	Clients []int
	// MeasurePointNS / MeasureRangeNS are virtual measurement windows.
	MeasurePointNS int64
	MeasureRangeNS int64
	// Selectivities for workload B.
	Selectivities []float64
	// DataSizes is the sweep of Exp. 2a.
	DataSizes []int
	// Servers is the sweep of Exp. 2b.
	Servers []int
}

// FullScale is the default experiment scale.
var FullScale = Scale{
	DataSize:       400_000,
	Clients:        []int{10, 20, 40, 80, 160, 240},
	MeasurePointNS: 20_000_000,
	MeasureRangeNS: 60_000_000,
	Selectivities:  []float64{0.001, 0.01, 0.1},
	DataSizes:      []int{50_000, 200_000, 800_000},
	Servers:        []int{2, 4, 6, 8},
}

// QuickScale is a reduced scale for smoke tests.
var QuickScale = Scale{
	DataSize:       100_000,
	Clients:        []int{20, 120},
	MeasurePointNS: 8_000_000,
	MeasureRangeNS: 20_000_000,
	Selectivities:  []float64{0.01},
	DataSizes:      []int{50_000, 200_000},
	Servers:        []int{2, 4},
}

var allDesigns = []nam.Design{nam.CoarseGrained, nam.FineGrained, nam.Hybrid}

// topologyFor builds the paper's topology for a client count: 40 clients per
// compute machine, 4 memory servers on 2 machines unless overridden.
func topologyFor(memServers, clients int) nam.Topology {
	machines := (clients + 39) / 40
	if machines < 1 {
		machines = 1
	}
	return nam.PaperTopology(memServers, machines, (clients+machines-1)/machines)
}

func baseConfig(design nam.Design, sc Scale, clients int) Config {
	return Config{
		Design:    design,
		Topology:  topologyFor(4, clients),
		DataSize:  sc.DataSize,
		Mix:       workload.WorkloadA,
		HeadEvery: 32,
		MeasureNS: sc.MeasurePointNS,
		Seed:      20190630,
	}
}

// Experiment is one paper artifact with a runner that regenerates it.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, sc Scale) error
}

// Experiments lists every table and figure of the paper, in order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: Overview of Symbols", runTable1},
		{"table2", "Table 2: Scalability Analysis (Theoretical)", runTable2},
		{"fig3", "Figure 3: Maximal Throughput (Theoretical)", runFig3},
		{"table3", "Table 3: Workloads of the Evaluation", runTable3},
		{"fig7", "Figure 7: Throughput Workloads A & B (Skewed Data)", expThroughput(true)},
		{"fig8", "Figure 8: Throughput Workloads A & B (Uniform Data)", expThroughput(false)},
		{"fig9", "Figure 9: Network Utilization Workloads A & B (Skewed Data)", expNetwork},
		{"fig10", "Figure 10: Varying Data Size (Uniform, 240 Clients)", expDataSize},
		{"fig11", "Figure 11: Varying # of Memory Servers (120 Clients)", expServers},
		{"fig12", "Figure 12: Workloads C & D with Inserts (Uniform Data)", expInserts},
		{"fig13", "Figure 13: Latency Workloads A & B (Skewed Data)", expLatency(true)},
		{"fig14", "Figure 14: Latency Workloads A & B (Uniform Data)", expLatency(false)},
		{"fig15", "Figure 15: Effects of Co-location (Uniform, 80 Clients)", expCoLocation},
	}
}

// AllExperiments returns the paper's artifacts followed by the extension
// experiments (Appendix A.4 caching, ablations).
func AllExperiments() []Experiment {
	return append(Experiments(), extensions()...)
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func runTable1(w io.Writer, sc Scale) error {
	_, err := fmt.Fprintln(w, analysis.Table1String(analysis.Defaults()))
	return err
}

func runTable2(w io.Writer, sc Scale) error {
	_, err := fmt.Fprintln(w, analysis.Table2String(analysis.Defaults(), 0.001, 10))
	return err
}

func runFig3(w io.Writer, sc Scale) error {
	series := analysis.Fig3Series(analysis.Defaults(), 0.001, 10, []int{2, 4, 8, 16, 32, 64})
	fmt.Fprintln(w, "Range Queries (Sel=0.001, z=10)")
	_, err := fmt.Fprintln(w, stats.Table("memory servers", "max ops/s", series...))
	return err
}

func runTable3(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "%-10s %14s %14s %10s\n", "Workload", "Point Queries", "Range Queries", "Inserts")
	for _, m := range []workload.Mix{workload.WorkloadA, workload.WorkloadB, workload.WorkloadC, workload.WorkloadD} {
		fmt.Fprintf(w, "%-10s %13d%% %13d%% %9d%%\n", m.Name, m.PointPct, m.RangePct, m.InsertPct)
	}
	return nil
}

// workloadPoints enumerates the four workload panels of Exp. 1 (point
// queries plus range queries at each selectivity).
type wlPanel struct {
	name string
	mix  workload.Mix
	sel  float64
}

func exp1Panels(sc Scale) []wlPanel {
	panels := []wlPanel{{"Point Queries", workload.WorkloadA, 0}}
	for _, s := range sc.Selectivities {
		panels = append(panels, wlPanel{fmt.Sprintf("Range Queries (Sel=%g)", s), workload.WorkloadB, s})
	}
	return panels
}

func exp1Config(design nam.Design, sc Scale, clients int, p wlPanel, skew bool) Config {
	cfg := baseConfig(design, sc, clients)
	cfg.Mix = p.mix
	cfg.Selectivity = p.sel
	cfg.SkewedData = skew
	if p.mix.RangePct > 0 {
		cfg.MeasureNS = sc.MeasureRangeNS
	}
	return cfg
}

// expThroughput regenerates Figures 7 (skew) and 8 (uniform).
func expThroughput(skew bool) func(io.Writer, Scale) error {
	return func(w io.Writer, sc Scale) error {
		return sweepExp1(w, sc, skew, "lookups/s", func(r Result) float64 { return r.Throughput })
	}
}

// expLatency regenerates Figures 13 (skew) and 14 (uniform).
func expLatency(skew bool) func(io.Writer, Scale) error {
	return func(w io.Writer, sc Scale) error {
		return sweepExp1(w, sc, skew, "median latency (ns)", func(r Result) float64 {
			return float64(r.Latency.Percentile(50))
		})
	}
}

// expNetwork regenerates Figure 9 (server NIC GB/s, skewed data).
func expNetwork(w io.Writer, sc Scale) error {
	return sweepExp1(w, sc, true, "GB/s", func(r Result) float64 { return r.NetGBps })
}

func sweepExp1(w io.Writer, sc Scale, skew bool, yLabel string, metric func(Result) float64) error {
	for _, panel := range exp1Panels(sc) {
		var series []*stats.Series
		var verbs verbReports
		for _, d := range allDesigns {
			ser := &stats.Series{Name: d.String()}
			for _, clients := range sc.Clients {
				cfg := exp1Config(d, sc, clients, panel, skew)
				cfg.Telemetry = Verbs && clients == sc.Clients[len(sc.Clients)-1]
				res, err := Run(cfg)
				if err != nil {
					return fmt.Errorf("%s/%v/%d clients: %w", panel.name, d, clients, err)
				}
				ser.Append(float64(clients), metric(res))
				verbs.add(d.String(), res.Telemetry)
			}
			series = append(series, ser)
		}
		fmt.Fprintln(w, panel.name)
		fmt.Fprintln(w, stats.Table("clients", yLabel, series...))
		verbs.write(w)
	}
	return nil
}

// expDataSize regenerates Figure 10: point queries and high-selectivity
// ranges across data sizes at maximal load.
func expDataSize(w io.Writer, sc Scale) error {
	clients := sc.Clients[len(sc.Clients)-1]
	panels := []wlPanel{
		{"Point Queries", workload.WorkloadA, 0},
		{"Range Queries (Sel=0.1)", workload.WorkloadB, 0.1},
	}
	for _, panel := range panels {
		var series []*stats.Series
		var verbs verbReports
		for _, d := range allDesigns {
			ser := &stats.Series{Name: d.String()}
			for _, ds := range sc.DataSizes {
				cfg := exp1Config(d, sc, clients, panel, false)
				cfg.DataSize = ds
				cfg.Telemetry = Verbs && ds == sc.DataSizes[len(sc.DataSizes)-1]
				res, err := Run(cfg)
				if err != nil {
					return fmt.Errorf("fig10/%v/D=%d: %w", d, ds, err)
				}
				ser.Append(float64(ds), res.Throughput)
				verbs.add(d.String(), res.Telemetry)
			}
			series = append(series, ser)
		}
		fmt.Fprintln(w, panel.name)
		fmt.Fprintln(w, stats.Table("data size", "lookups/s", series...))
		verbs.write(w)
	}
	return nil
}

// expServers regenerates Figure 11: varying memory servers, coarse- vs
// fine-grained, point and range queries, uniform and skew.
func expServers(w io.Writer, sc Scale) error {
	designs := []nam.Design{nam.CoarseGrained, nam.FineGrained}
	panels := []wlPanel{
		{"Point Queries", workload.WorkloadA, 0},
		{"Range Queries (Sel=0.01)", workload.WorkloadB, 0.01},
	}
	for _, skew := range []bool{false, true} {
		label := "Uniform"
		if skew {
			label = "Skew"
		}
		for _, panel := range panels {
			var series []*stats.Series
			var verbs verbReports
			for _, d := range designs {
				ser := &stats.Series{Name: d.String()}
				for _, servers := range sc.Servers {
					cfg := exp1Config(d, sc, 120, panel, skew)
					cfg.Topology = topologyFor(servers, 120)
					cfg.Telemetry = Verbs && servers == sc.Servers[len(sc.Servers)-1]
					res, err := Run(cfg)
					if err != nil {
						return fmt.Errorf("fig11/%v/S=%d: %w", d, servers, err)
					}
					ser.Append(float64(servers), res.Throughput)
					verbs.add(d.String(), res.Telemetry)
				}
				series = append(series, ser)
			}
			fmt.Fprintf(w, "%s, %s\n", panel.name, label)
			fmt.Fprintln(w, stats.Table("memory servers", "lookups/s", series...))
			verbs.write(w)
		}
	}
	return nil
}

// expInserts regenerates Figure 12: workloads C (5% inserts) and D (50%
// inserts) under increasing load.
func expInserts(w io.Writer, sc Scale) error {
	var series []*stats.Series
	var verbs verbReports
	for _, mixPair := range []struct {
		mix  workload.Mix
		name string
	}{
		{workload.WorkloadD, "50"},
		{workload.WorkloadC, "5"},
	} {
		for _, d := range allDesigns {
			name := fmt.Sprintf("%s %s", shortName(d), mixPair.name)
			ser := &stats.Series{Name: name}
			for _, clients := range sc.Clients {
				cfg := baseConfig(d, sc, clients)
				cfg.Mix = mixPair.mix
				cfg.Telemetry = Verbs && clients == sc.Clients[len(sc.Clients)-1]
				res, err := Run(cfg)
				if err != nil {
					return fmt.Errorf("fig12/%v/%s/%d: %w", d, mixPair.name, clients, err)
				}
				ser.Append(float64(clients), res.Throughput)
				verbs.add(name+"% inserts", res.Telemetry)
			}
			series = append(series, ser)
		}
	}
	fmt.Fprintln(w, "Mixed Workloads (insert percentage in series name)")
	fmt.Fprintln(w, stats.Table("clients", "operations/s", series...))
	verbs.write(w)
	return nil
}

func shortName(d nam.Design) string {
	switch d {
	case nam.CoarseGrained:
		return "CG"
	case nam.FineGrained:
		return "FG"
	default:
		return "Hybrid"
	}
}

// expCoLocation regenerates Figure 15 (Appendix A.3): 4 co-located machines
// vs dedicated machines, 80 clients, uniform data.
func expCoLocation(w io.Writer, sc Scale) error {
	panels := []wlPanel{{"Point Queries", workload.WorkloadA, 0}}
	for _, s := range sc.Selectivities {
		panels = append(panels, wlPanel{fmt.Sprintf("Range Queries (Sel=%g)", s), workload.WorkloadB, s})
	}
	designs := []nam.Design{nam.FineGrained, nam.CoarseGrained}
	for _, panel := range panels {
		var series []*stats.Series
		var verbs verbReports
		for _, co := range []bool{false, true} {
			name := "Distributed"
			if co {
				name = "Co-Located"
			}
			ser := &stats.Series{Name: name}
			for i, d := range designs {
				cfg := exp1Config(d, sc, 80, panel, false)
				cfg.Topology = nam.Topology{
					MemServers: 4, MemServersPerMachine: 1,
					ComputeMachines: 4, ClientsPerMachine: 20,
					CoLocated: co,
				}
				cfg.Telemetry = Verbs
				res, err := Run(cfg)
				if err != nil {
					return fmt.Errorf("fig15/%v/co=%v: %w", d, co, err)
				}
				ser.Append(float64(i), res.Throughput)
				verbs.add(fmt.Sprintf("%s, %s", d, name), res.Telemetry)
			}
			series = append(series, ser)
		}
		fmt.Fprintln(w, panel.name, "(x: 0=Fine-Grained, 1=Coarse-Grained)")
		fmt.Fprintln(w, stats.Table("index design", "lookups/s", series...))
		verbs.write(w)
	}
	return nil
}
