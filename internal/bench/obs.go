package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/namdb/rdmatree/internal/chaos"
	"github.com/namdb/rdmatree/internal/rdma/faultnet"
)

// expObs demonstrates the flight recorder reconstructing a fault-injected
// traversal end to end. A single client runs the fine-grained design under a
// crash-lose schedule (server 2 restarts without its registered region), so
// one operation exhausts its retry budget and surfaces rdma.ErrServerLost —
// the trigger that dumps the client's ring. With one client and a tick clock
// the whole run is deterministic: the dump text is byte-identical across
// executions, which CI checks by running the experiment twice and diffing.
//
// The report prints only deterministic fields (no wall-clock latencies), then
// each dump verbatim. Missing dumps or a dump without the expected causal
// chain (reads, retries, the terminal op-end) is an error so the experiment
// doubles as a CI gate.
func expObs(w io.Writer, sc Scale) error {
	cfg := chaos.Config{
		Design:       "fine",
		Clients:      1,
		Preload:      1000,
		OpsPerClient: 300,
		Obs:          true,
		// Per-op SLO in tick units, sized so normal ops (≤ ~20 ticks of
		// recorded events) stay under it and only the op stuck retrying
		// against the lost server breaches it — demonstrating the SLO dump
		// trigger alongside the server-lost one.
		SLOTicks: 100,
		Schedule: faultnet.Schedule{
			Seed: 5,
			Steps: []faultnet.Step{
				{AtTick: 1_600, Server: 2, DownForTicks: 150, Lose: true},
			},
		},
	}
	fmt.Fprintf(w, "flight-recorder reconstruction: design=%s clients=%d schedule seed=%d (crash-lose: server 2 loses its region at tick 1600)\n",
		cfg.Design, cfg.Clients, cfg.Schedule.Seed)
	rep, err := chaos.Run(cfg)
	if err != nil {
		return fmt.Errorf("obs: chaos run: %w", err)
	}
	rec := rep.Recorder
	fmt.Fprintf(w, "  acked_inserts=%d failed_inserts=%d failed_ops=%d server_lost_ops=%d locks_cleared=%d live=%d\n",
		rep.AckedInserts, rep.FailedInserts, rep.FailedOps, rep.ServerLostOps, rep.LocksCleared, rep.LiveEntries)
	fmt.Fprintf(w, "  invariants: acked_present=%v no_duplicates=%v preload_intact=%v\n",
		rep.AckedPresent, rep.NoDuplicates, rep.PreloadIntact)
	fmt.Fprintf(w, "  faults=%d retries=%d reconnects=%d op_recoveries=%d obs_events=%d dumps=%d\n",
		rec.Faults(), rec.Retries(), rec.Reconnects(), rec.OpRecoveries(), rep.ObsEvents, len(rep.Dumps))
	if !rep.AckedPresent || !rep.NoDuplicates || !rep.PreloadIntact {
		return fmt.Errorf("obs: survivor invariants violated (missing_acked=%d duplicate_pairs=%d missing_preload=%d)",
			rep.MissingAcked, rep.DuplicatePairs, rep.MissingPreload)
	}
	if len(rep.Dumps) == 0 {
		return fmt.Errorf("obs: crash-lose schedule produced no flight-recorder dump")
	}
	reasons := map[string]bool{}
	var all strings.Builder
	for i, d := range rep.Dumps {
		fmt.Fprintf(w, "\ndump %d: client=%d reason=%s\n", i, d.Client, d.Reason)
		fmt.Fprint(w, d.Text)
		reasons[d.Reason] = true
		all.WriteString(d.Text)
	}
	// Both dump triggers must have fired: the op stuck retrying against the
	// dead server breaches the SLO, and the ops surfacing rdma.ErrServerLost
	// dump on their terminal error.
	for _, reason := range []string{"slo-breach", "server-lost"} {
		if !reasons[reason] {
			return fmt.Errorf("obs: no dump with trigger reason %q", reason)
		}
	}
	// The dumps together must let the reader reconstruct the failing
	// traversal: level reads, the retry storm with backoff, the reconnect
	// attempts, the epoch-fenced re-traversals, and the terminal server-lost
	// verdict.
	text := all.String()
	for _, marker := range []string{"read", "retry", "reconnect", "epoch-fence", "err=server-lost"} {
		if !strings.Contains(text, marker) {
			return fmt.Errorf("obs: dumps missing causal marker %q", marker)
		}
	}
	return nil
}
