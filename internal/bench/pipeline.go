package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/stats"
	"github.com/namdb/rdmatree/internal/workload"
)

// PipelineBaselinePath is where expPipeline writes its machine-readable
// baseline; nambench -regress re-runs the experiment against it.
var PipelineBaselinePath = "BENCH_pipeline.json"

// MinPipelineSpeedup is the absolute floor the pipelined dataplane must
// clear: point-lookup throughput at PipelineGateDepth operations in flight
// must be at least this multiple of the serial fused client on the same
// fabric. Checked when the baseline is generated and again by the
// regression gate.
const MinPipelineSpeedup = 3.0

// PipelineGateDepth is the in-flight depth the speedup floor is measured at.
const PipelineGateDepth = 16

// pipelineInflights is the sweep of in-flight depths per workload panel.
var pipelineInflights = []int{1, 2, 4, 8, 16, 32}

// pipelineClients pins the client count of the pipeline experiment. The
// pipeline is a per-client latency-overlap optimization, so it is measured
// in the latency-exposed regime: few clients, far from the machine-NIC
// saturation where closed-loop serial clients already aggregate enough
// parallelism to fill the wire (at high client counts both modes converge
// on the same bandwidth ceiling and the sweep would measure the NIC, not
// the dataplane).
const pipelineClients = 2

// PipelinePoint is one measured point of the pipeline sweep.
type PipelinePoint struct {
	// Inflight is the engine's slot count; 0 marks the serial fused client.
	Inflight         int     `json:"inflight"`
	ThroughputOpsSec float64 `json:"throughput_ops_sec"`
	MeanLatencyNS    float64 `json:"mean_latency_ns"`
	P50LatencyNS     int64   `json:"p50_latency_ns"`
	P99LatencyNS     int64   `json:"p99_latency_ns"`
	// OpsInFlightAvg is the average operations in flight per scheduling
	// round (telemetry gauge); 0 for serial runs.
	OpsInFlightAvg float64 `json:"ops_in_flight_avg"`
	// DoorbellCoalescing is verbs per doorbell on the non-blocking surface
	// (cross-op batching); 0 for serial runs, rendered as n/a.
	DoorbellCoalescing float64 `json:"doorbell_coalescing"`
	// Speedup is this point's throughput over the panel's serial baseline.
	Speedup float64 `json:"throughput_speedup_vs_serial"`
}

// PipelinePanel is one workload's sweep.
type PipelinePanel struct {
	Workload string          `json:"workload"`
	Serial   PipelinePoint   `json:"serial"`
	Points   []PipelinePoint `json:"points"`
}

// PipelineReport is the BENCH_pipeline.json payload. The scale travels in
// the JSON so the regression gate re-runs at the baseline's own shape.
type PipelineReport struct {
	DataSize  int             `json:"data_size"`
	Clients   int             `json:"clients"`
	PageBytes int             `json:"page_bytes"`
	HeadEvery int             `json:"head_every"`
	Inflights []int           `json:"inflights"`
	Panels    []PipelinePanel `json:"panels"`
	// GateSpeedup is point-lookup throughput at PipelineGateDepth in flight
	// over the serial fused client — the metric under the MinPipelineSpeedup
	// floor.
	GateSpeedup float64 `json:"gate_point_speedup_at_16"`
}

// pipelinePanels enumerates workloads A-D. B runs range queries (which the
// engine executes serially between drains — the panel quantifies that the
// pipeline does not hurt scan-heavy mixes); C and D add 5% / 50% inserts,
// exercising the locking and split paths under in-flight concurrency.
func pipelinePanels(sc Scale) []wlPanel {
	return []wlPanel{
		{"Workload A (100% point)", workload.WorkloadA, 0},
		{"Workload B (100% range, Sel=0.001)", workload.WorkloadB, 0.001},
		{"Workload C (95% point, 5% insert)", workload.WorkloadC, 0},
		{"Workload D (50% point, 50% insert)", workload.WorkloadD, 0},
	}
}

// runPipelinePoint executes one point; inflight 0 selects the serial client.
func runPipelinePoint(sc Scale, clients, dataSize int, p wlPanel, inflight int) (PipelinePoint, error) {
	cfg := baseConfig(nam.FineGrained, sc, clients)
	cfg.DataSize = dataSize
	cfg.Mix = p.mix
	cfg.Selectivity = p.sel
	cfg.Pipeline = inflight
	cfg.Telemetry = true
	if p.mix.RangePct > 0 {
		cfg.MeasureNS = sc.MeasureRangeNS
	}
	res, err := Run(cfg)
	if err != nil {
		return PipelinePoint{}, err
	}
	pt := PipelinePoint{
		Inflight:         inflight,
		ThroughputOpsSec: res.Throughput,
		MeanLatencyNS:    res.Latency.Snapshot().Mean(),
		P50LatencyNS:     res.Latency.Percentile(50),
		P99LatencyNS:     res.Latency.Percentile(99),
	}
	if rec := res.Telemetry; rec != nil {
		pt.OpsInFlightAvg = rec.AvgInflight()
		pt.DoorbellCoalescing = rec.CoalescingRatio()
	}
	return pt, nil
}

// RunPipeline executes the async-dataplane experiment: for each workload
// panel, the serial fused client and the pipelined engine at every in-flight
// depth, on the simulated fabric at fixed low concurrency.
func RunPipeline(sc Scale) (PipelineReport, error) {
	return runPipelineAt(sc, pipelineClients, sc.DataSize)
}

func runPipelineAt(sc Scale, clients, dataSize int) (PipelineReport, error) {
	rep := PipelineReport{
		DataSize:  dataSize,
		Clients:   clients,
		PageBytes: 1024,
		HeadEvery: 32,
		Inflights: pipelineInflights,
	}
	for _, panel := range pipelinePanels(sc) {
		pp := PipelinePanel{Workload: panel.name}
		serial, err := runPipelinePoint(sc, clients, dataSize, panel, 0)
		if err != nil {
			return rep, fmt.Errorf("pipeline/%s/serial: %w", panel.name, err)
		}
		pp.Serial = serial
		for _, inflight := range pipelineInflights {
			pt, err := runPipelinePoint(sc, clients, dataSize, panel, inflight)
			if err != nil {
				return rep, fmt.Errorf("pipeline/%s/inflight=%d: %w", panel.name, inflight, err)
			}
			if serial.ThroughputOpsSec > 0 {
				pt.Speedup = pt.ThroughputOpsSec / serial.ThroughputOpsSec
			}
			pp.Points = append(pp.Points, pt)
			if panel.mix == workload.WorkloadA && inflight == PipelineGateDepth {
				rep.GateSpeedup = pt.Speedup
			}
		}
		rep.Panels = append(rep.Panels, pp)
	}
	return rep, nil
}

// expPipeline is the nambench surface of RunPipeline: it renders the sweep
// tables, enforces the speedup floor, and writes the machine-readable
// baseline to PipelineBaselinePath.
func expPipeline(w io.Writer, sc Scale) error {
	rep, err := RunPipeline(sc)
	if err != nil {
		return err
	}
	for _, panel := range rep.Panels {
		thr := &stats.Series{Name: "ops/s"}
		lat := &stats.Series{Name: "mean latency (ns)"}
		p99 := &stats.Series{Name: "p99 (ns)"}
		inf := &stats.Series{Name: "ops in flight (avg)"}
		dcr := &stats.Series{Name: "verbs per doorbell"}
		spd := &stats.Series{Name: "speedup vs serial"}
		for _, pt := range append([]PipelinePoint{panel.Serial}, panel.Points...) {
			x := float64(pt.Inflight)
			thr.Append(x, pt.ThroughputOpsSec)
			lat.Append(x, pt.MeanLatencyNS)
			p99.Append(x, float64(pt.P99LatencyNS))
			inf.Append(x, pt.OpsInFlightAvg)
			dcr.Append(x, pt.DoorbellCoalescing)
			spd.Append(x, pt.Speedup)
		}
		fmt.Fprintf(w, "%s (%d clients; x: 0 = serial fused client, else engine slots)\n", panel.Workload, rep.Clients)
		fmt.Fprintln(w, stats.Table("in flight", "value", thr, lat, p99, inf, dcr, spd))
		fmt.Fprintf(w, "serial column: ops in flight 0, doorbell coalescing n/a (blocking client)\n\n")
	}
	fmt.Fprintf(w, "point-lookup speedup at %d in flight: %.2fx (floor %.1fx)\n",
		PipelineGateDepth, rep.GateSpeedup, MinPipelineSpeedup)
	if rep.GateSpeedup < MinPipelineSpeedup {
		return fmt.Errorf("pipeline: point-lookup speedup %.2fx at %d in flight is below the %.1fx floor",
			rep.GateSpeedup, PipelineGateDepth, MinPipelineSpeedup)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(PipelineBaselinePath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("pipeline: writing baseline: %w", err)
	}
	fmt.Fprintf(w, "wrote %s\n", PipelineBaselinePath)
	return nil
}

// RegressPipeline is the CI gate over BENCH_pipeline.json: it re-runs the
// sweep at the baseline's recorded scale and fails when throughput fell (or
// latency grew) more than RegressTolerance on any panel's serial or gated
// pipelined point, or when the absolute speedup floor is no longer met.
func RegressPipeline(w io.Writer, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("regress: reading baseline: %w", err)
	}
	var base PipelineReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("regress: parsing %s: %w", baselinePath, err)
	}
	if base.DataSize <= 0 || base.Clients <= 0 {
		return fmt.Errorf("regress: %s carries no scale (data_size=%d clients=%d)", baselinePath, base.DataSize, base.Clients)
	}
	sc := FullScale
	sc.DataSize = base.DataSize
	got, err := runPipelineAt(sc, base.Clients, base.DataSize)
	if err != nil {
		return fmt.Errorf("regress: re-running pipeline: %w", err)
	}

	type gate struct {
		name               string
		baseline, measured float64
		higherIsBetter     bool
	}
	regressed := func(g gate) bool {
		if g.baseline <= 0 {
			return false
		}
		if g.higherIsBetter {
			return g.measured < g.baseline*(1-RegressTolerance)
		}
		return g.measured > g.baseline*(1+RegressTolerance)
	}
	delta := func(g gate) float64 {
		if g.baseline <= 0 {
			return 0
		}
		return 100 * (g.measured - g.baseline) / g.baseline
	}

	var gates []gate
	gatedPoint := func(pts []PipelinePoint) PipelinePoint {
		for _, pt := range pts {
			if pt.Inflight == PipelineGateDepth {
				return pt
			}
		}
		return PipelinePoint{}
	}
	for i, bp := range base.Panels {
		if i >= len(got.Panels) {
			break
		}
		gp := got.Panels[i]
		gates = append(gates,
			gate{bp.Workload + "/serial/ops_sec", bp.Serial.ThroughputOpsSec, gp.Serial.ThroughputOpsSec, true},
			gate{bp.Workload + "/serial/mean_latency_ns", bp.Serial.MeanLatencyNS, gp.Serial.MeanLatencyNS, false},
		)
		bpt, gpt := gatedPoint(bp.Points), gatedPoint(gp.Points)
		name := fmt.Sprintf("%s/inflight=%d", bp.Workload, PipelineGateDepth)
		gates = append(gates,
			gate{name + "/ops_sec", bpt.ThroughputOpsSec, gpt.ThroughputOpsSec, true},
			gate{name + "/mean_latency_ns", bpt.MeanLatencyNS, gpt.MeanLatencyNS, false},
		)
	}

	var failures []string
	fmt.Fprintf(w, "pipeline regression gate vs %s (data_size=%d clients=%d, tolerance %.0f%%)\n",
		baselinePath, base.DataSize, base.Clients, 100*RegressTolerance)
	for _, g := range gates {
		verdict := "ok"
		if regressed(g) {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: baseline %.2f, observed %.2f (%+.2f%%)",
				g.name, g.baseline, g.measured, delta(g)))
		}
		fmt.Fprintf(w, "  %-58s baseline %14.2f  measured %14.2f  %+7.2f%%  %s\n",
			g.name, g.baseline, g.measured, delta(g), verdict)
	}
	fmt.Fprintf(w, "  %-58s floor    %14.2f  measured %14.2f\n",
		fmt.Sprintf("point speedup at %d in flight", PipelineGateDepth), MinPipelineSpeedup, got.GateSpeedup)
	if got.GateSpeedup < MinPipelineSpeedup {
		failures = append(failures, fmt.Sprintf("point speedup at %d in flight: %.2fx, floor %.1fx",
			PipelineGateDepth, got.GateSpeedup, MinPipelineSpeedup))
	}
	if len(failures) > 0 {
		msg := fmt.Sprintf("regress: %d pipeline metrics failed over %s:", len(failures), baselinePath)
		for _, f := range failures {
			msg += "\n  " + f
		}
		msg += "\n(if intentional, regenerate with `nambench -exp pipeline`)"
		return fmt.Errorf("%s", msg)
	}
	fmt.Fprintln(w, "pipeline regression gate passed")
	return nil
}
