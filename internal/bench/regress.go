package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// RegressTolerance is the fractional regression the RTT gate accepts before
// failing: metrics may grow by at most this much over the committed baseline.
// The simulator runs on virtual time, so a re-run at the baseline's scale is
// deterministic and the tolerance only absorbs intentional small protocol
// changes — anything larger must be explained and the baseline regenerated
// (nambench -exp rtt).
const RegressTolerance = 0.10

// rttGate is one gated metric: lower is better, and the candidate fails when
// it exceeds baseline * (1 + RegressTolerance).
type rttGate struct {
	name               string
	baseline, measured float64
}

func (g rttGate) regressed() bool {
	return g.baseline > 0 && g.measured > g.baseline*(1+RegressTolerance)
}

// delta is the percent change of measured over baseline (0 when the baseline
// is empty).
func (g rttGate) delta() float64 {
	if g.baseline <= 0 {
		return 0
	}
	return 100 * (g.measured - g.baseline) / g.baseline
}

func rttGates(prefix string, base, got RTTComparison) []rttGate {
	return []rttGate{
		{prefix + "/legacy/rtts_per_op", base.Legacy.RTTsPerOp, got.Legacy.RTTsPerOp},
		{prefix + "/legacy/mean_latency_ns", base.Legacy.MeanLatencyNS, got.Legacy.MeanLatencyNS},
		{prefix + "/fused/rtts_per_op", base.Fused.RTTsPerOp, got.Fused.RTTsPerOp},
		{prefix + "/fused/mean_latency_ns", base.Fused.MeanLatencyNS, got.Fused.MeanLatencyNS},
	}
}

// RegressRTT is the CI bench-regression gate: it loads the committed RTT
// baseline, re-runs the doorbell-batching experiment at the baseline's own
// recorded scale (data size and client count travel in the JSON, so the gate
// needs no out-of-band scale agreement), and fails if any exposed-RTT or
// mean-latency metric regressed beyond RegressTolerance.
func RegressRTT(w io.Writer, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("regress: reading baseline: %w", err)
	}
	var base RTTReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("regress: parsing %s: %w", baselinePath, err)
	}
	if base.DataSize <= 0 || base.Clients <= 0 {
		return fmt.Errorf("regress: %s carries no scale (data_size=%d clients=%d)", baselinePath, base.DataSize, base.Clients)
	}
	sc := FullScale
	sc.DataSize = base.DataSize
	sc.Clients = []int{base.Clients}
	got, err := RunRTT(sc)
	if err != nil {
		return fmt.Errorf("regress: re-running rtt: %w", err)
	}

	gates := append(rttGates("point", base.Point, got.Point), rttGates("scan", base.Scan, got.Scan)...)
	var regressed []string
	fmt.Fprintf(w, "rtt regression gate vs %s (data_size=%d clients=%d, tolerance %.0f%%)\n",
		baselinePath, base.DataSize, base.Clients, 100*RegressTolerance)
	for _, g := range gates {
		verdict := "ok"
		if g.regressed() {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s: baseline %.2f, observed %.2f (%+.2f%%)",
				g.name, g.baseline, g.measured, g.delta()))
		}
		fmt.Fprintf(w, "  %-28s baseline %12.2f  measured %12.2f  %+7.2f%%  %s\n",
			g.name, g.baseline, g.measured, g.delta(), verdict)
	}
	if len(regressed) > 0 {
		// The error names every regressed gate with its values and delta so a
		// CI failure is diagnosable from the one-line verdict alone.
		msg := fmt.Sprintf("regress: %d metrics regressed more than %.0f%% over %s:", len(regressed), 100*RegressTolerance, baselinePath)
		for _, r := range regressed {
			msg += "\n  " + r
		}
		msg += "\n(if intentional, regenerate with `nambench -exp rtt`)"
		return fmt.Errorf("%s", msg)
	}
	fmt.Fprintf(w, "  (serial protocol: ops in flight %.0f, doorbell coalescing %s — the async dataplane is gated by %s)\n",
		got.Point.Fused.OpsInFlight, got.Point.Fused.DoorbellCoalescing, PipelineBaselinePath)
	fmt.Fprintln(w, "rtt regression gate passed")
	return nil
}
