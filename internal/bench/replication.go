package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/stats"
	"github.com/namdb/rdmatree/internal/workload"
)

// ReplicationBaselinePath is where expReplication writes its machine-readable
// baseline (replicated vs unreplicated write cost at k=2), consumed by the CI
// bench-regression gate. Relative paths resolve against the process working
// directory (the repo root when run through cmd/nambench in CI).
var ReplicationBaselinePath = "BENCH_replication.json"

// ReplMode is one replication variant's measurement in the report.
type ReplMode struct {
	ThroughputOpsSec float64 `json:"throughput_ops_sec"`
	MeanLatencyNS    float64 `json:"mean_latency_ns"`
	P50LatencyNS     int64   `json:"p50_latency_ns"`
	P99LatencyNS     int64   `json:"p99_latency_ns"`
	// RTTsPerOp is blocking verbs per index operation measured at the
	// endpoint. The replica router sits above the telemetry wrap, so mirror
	// pushes to backups are counted: the replication write overhead in round
	// trips, the metric DESIGN.md §13 budgets.
	RTTsPerOp float64 `json:"rtts_per_op"`
}

// ReplComparison is one workload panel: unreplicated vs k-way replicated.
type ReplComparison struct {
	Unreplicated ReplMode `json:"unreplicated"`
	Replicated   ReplMode `json:"replicated"`
	// MeanSlowdown is replicated mean latency over unreplicated (>= 1 means
	// replication costs latency).
	MeanSlowdown float64 `json:"mean_latency_slowdown"`
	// RTTOverhead is replicated RTTs/op over unreplicated.
	RTTOverhead float64 `json:"rtts_per_op_ratio"`
}

// ReplReport is the BENCH_replication.json payload.
type ReplReport struct {
	DataSize int `json:"data_size"`
	Clients  int `json:"clients"`
	Replicas int `json:"replicas"`
	// Insert is the 100%-insert panel: every operation dirties at least one
	// leaf, so it exposes the full mirror-before-ack cost.
	Insert ReplComparison `json:"insert_only"`
	// Lookup is the 100%-point-lookup panel: the design's read-path
	// neutrality claim — reads stay single-READ-per-level on the primary, so
	// replicated and unreplicated RTTs/op must match.
	Lookup ReplComparison `json:"point_lookup"`
}

// replInsertMix is the insert-only workload of the replication experiment.
var replInsertMix = workload.Mix{Name: "insert-only", InsertPct: 100}

// runReplMode executes one point of the replication experiment.
func runReplMode(sc Scale, clients, replicas int, insert bool) (ReplMode, error) {
	cfg := baseConfig(nam.FineGrained, sc, clients)
	cfg.Replicas = replicas
	cfg.Telemetry = true
	if insert {
		cfg.Mix = replInsertMix
	}
	res, err := Run(cfg)
	if err != nil {
		return ReplMode{}, err
	}
	m := ReplMode{
		ThroughputOpsSec: res.Throughput,
		MeanLatencyNS:    res.Latency.Snapshot().Mean(),
		P50LatencyNS:     res.Latency.Percentile(50),
		P99LatencyNS:     res.Latency.Percentile(99),
	}
	if rec := res.Telemetry; rec != nil && rec.IndexOps() > 0 {
		m.RTTsPerOp = float64(rec.TotalOps()) / float64(rec.IndexOps())
	}
	return m, nil
}

func replCompare(plain, mirrored ReplMode) ReplComparison {
	c := ReplComparison{Unreplicated: plain, Replicated: mirrored}
	if plain.MeanLatencyNS > 0 {
		c.MeanSlowdown = mirrored.MeanLatencyNS / plain.MeanLatencyNS
	}
	if plain.RTTsPerOp > 0 {
		c.RTTOverhead = mirrored.RTTsPerOp / plain.RTTsPerOp
	}
	return c
}

// lookupNeutralityTolerance bounds how much replicated point-lookup RTTs/op
// may exceed unreplicated before the experiment itself fails: reads never
// touch backups, so any measurable divergence means the read path started
// paying for replication.
const lookupNeutralityTolerance = 0.02

// RunReplication executes the page-replication experiment at k=2 and low
// concurrency (latency exposed, not overlapped): an insert-only panel for the
// mirror-before-ack write cost and a point-lookup panel for read-path
// neutrality.
func RunReplication(sc Scale) (ReplReport, error) {
	clients := sc.Clients[0]
	rep := ReplReport{
		DataSize: sc.DataSize,
		Clients:  clients,
		Replicas: 2,
	}
	var modes [2]ReplMode
	for _, panel := range []struct {
		insert bool
		out    *ReplComparison
		name   string
	}{
		{true, &rep.Insert, "insert"},
		{false, &rep.Lookup, "lookup"},
	} {
		for i, replicas := range []int{0, rep.Replicas} {
			m, err := runReplMode(sc, clients, replicas, panel.insert)
			if err != nil {
				return rep, fmt.Errorf("replication/%s/k=%d: %w", panel.name, replicas, err)
			}
			modes[i] = m
		}
		*panel.out = replCompare(modes[0], modes[1])
	}
	return rep, nil
}

// expReplication is the nambench surface of RunReplication: it renders the
// comparison tables, enforces the read-path-neutrality claim, and writes the
// machine-readable baseline to ReplicationBaselinePath.
func expReplication(w io.Writer, sc Scale) error {
	rep, err := RunReplication(sc)
	if err != nil {
		return err
	}
	panel := func(name string, c ReplComparison) {
		lat := &stats.Series{Name: "mean latency (ns)"}
		p50 := &stats.Series{Name: "p50 (ns)"}
		rtt := &stats.Series{Name: "RTTs/op"}
		thr := &stats.Series{Name: "ops/s"}
		for i, m := range []ReplMode{c.Unreplicated, c.Replicated} {
			x := float64(i)
			lat.Append(x, m.MeanLatencyNS)
			p50.Append(x, float64(m.P50LatencyNS))
			rtt.Append(x, m.RTTsPerOp)
			thr.Append(x, m.ThroughputOpsSec)
		}
		fmt.Fprintf(w, "%s (%d clients; x: 0 = unreplicated, 1 = replicated k=%d)\n", name, rep.Clients, rep.Replicas)
		fmt.Fprintln(w, stats.Table("mode", "value", lat, p50, rtt, thr))
		fmt.Fprintf(w, "mean latency slowdown %.2fx, RTTs/op %.2f -> %.2f (%.2fx)\n\n",
			c.MeanSlowdown, c.Unreplicated.RTTsPerOp, c.Replicated.RTTsPerOp, c.RTTOverhead)
	}
	panel("Inserts (100%)", rep.Insert)
	panel("Point Lookups (100%)", rep.Lookup)

	if rep.Lookup.RTTOverhead > 1+lookupNeutralityTolerance {
		return fmt.Errorf("replication: point-lookup RTTs/op grew %.2fx under k=%d replication (max %.2fx) — reads must stay single-READ on the primary",
			rep.Lookup.RTTOverhead, rep.Replicas, 1+lookupNeutralityTolerance)
	}
	fmt.Fprintf(w, "read-path neutrality holds: lookup RTTs/op ratio %.3f (max %.2f)\n", rep.Lookup.RTTOverhead, 1+lookupNeutralityTolerance)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(ReplicationBaselinePath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("replication: writing baseline: %w", err)
	}
	fmt.Fprintf(w, "wrote %s\n", ReplicationBaselinePath)
	return nil
}

func replGates(prefix string, base, got ReplComparison) []rttGate {
	return []rttGate{
		{prefix + "/unreplicated/rtts_per_op", base.Unreplicated.RTTsPerOp, got.Unreplicated.RTTsPerOp},
		{prefix + "/unreplicated/mean_latency_ns", base.Unreplicated.MeanLatencyNS, got.Unreplicated.MeanLatencyNS},
		{prefix + "/replicated/rtts_per_op", base.Replicated.RTTsPerOp, got.Replicated.RTTsPerOp},
		{prefix + "/replicated/mean_latency_ns", base.Replicated.MeanLatencyNS, got.Replicated.MeanLatencyNS},
	}
}

// RegressReplication is the CI bench-regression gate for page replication: it
// loads the committed baseline, re-runs the experiment at the baseline's own
// recorded scale, and fails if replicated or unreplicated write cost
// regressed beyond RegressTolerance or the read path lost its neutrality.
func RegressReplication(w io.Writer, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("regress: reading baseline: %w", err)
	}
	var base ReplReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("regress: parsing %s: %w", baselinePath, err)
	}
	if base.DataSize <= 0 || base.Clients <= 0 {
		return fmt.Errorf("regress: %s carries no scale (data_size=%d clients=%d)", baselinePath, base.DataSize, base.Clients)
	}
	sc := FullScale
	sc.DataSize = base.DataSize
	sc.Clients = []int{base.Clients}
	got, err := RunReplication(sc)
	if err != nil {
		return fmt.Errorf("regress: re-running replication: %w", err)
	}

	gates := append(replGates("insert", base.Insert, got.Insert), replGates("lookup", base.Lookup, got.Lookup)...)
	var regressed []string
	fmt.Fprintf(w, "replication regression gate vs %s (data_size=%d clients=%d k=%d, tolerance %.0f%%)\n",
		baselinePath, base.DataSize, base.Clients, base.Replicas, 100*RegressTolerance)
	for _, g := range gates {
		verdict := "ok"
		if g.regressed() {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s: baseline %.2f, observed %.2f (%+.2f%%)",
				g.name, g.baseline, g.measured, g.delta()))
		}
		fmt.Fprintf(w, "  %-34s baseline %12.2f  measured %12.2f  %+7.2f%%  %s\n",
			g.name, g.baseline, g.measured, g.delta(), verdict)
	}
	if got.Lookup.RTTOverhead > 1+lookupNeutralityTolerance {
		regressed = append(regressed, fmt.Sprintf("lookup/read_path_neutrality: RTTs/op ratio %.3f exceeds %.2f",
			got.Lookup.RTTOverhead, 1+lookupNeutralityTolerance))
		fmt.Fprintf(w, "  %-34s ratio %.3f (max %.2f)  REGRESSED\n", "lookup/read_path_neutrality", got.Lookup.RTTOverhead, 1+lookupNeutralityTolerance)
	}
	if len(regressed) > 0 {
		msg := fmt.Sprintf("regress: %d metrics regressed over %s:", len(regressed), baselinePath)
		for _, r := range regressed {
			msg += "\n  " + r
		}
		msg += "\n(if intentional, regenerate with `nambench -exp replication`)"
		return fmt.Errorf("%s", msg)
	}
	fmt.Fprintln(w, "replication regression gate passed")
	return nil
}
