package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/stats"
	"github.com/namdb/rdmatree/internal/workload"
)

// RTTBaselinePath is where expRTT writes its machine-readable before/after
// baseline, so future changes can track the round-trip trajectory. Relative
// paths resolve against the process working directory (the repo root when
// run through cmd/nambench in CI).
var RTTBaselinePath = "BENCH_rtt.json"

// RTTMode is one protocol variant's measurement in the RTT report.
type RTTMode struct {
	ThroughputOpsSec float64 `json:"throughput_ops_sec"`
	MeanLatencyNS    float64 `json:"mean_latency_ns"`
	P50LatencyNS     int64   `json:"p50_latency_ns"`
	P99LatencyNS     int64   `json:"p99_latency_ns"`
	// RTTsPerOp is blocking verbs (batches counted once — one completion
	// waited on) per index operation, measured at the endpoint: the exact
	// exposed-round-trip count in both modes.
	RTTsPerOp float64 `json:"rtts_per_op"`
	AvgDepth  float64 `json:"avg_depth"`
	// OpsInFlight is the average operations in flight per scheduling round
	// on the async pipelined dataplane; 0 for the serial clients the RTT
	// experiment measures (one blocking operation at a time).
	OpsInFlight float64 `json:"ops_in_flight"`
	// DoorbellCoalescing is verbs per doorbell across in-flight operations;
	// "n/a" for serial runs, where batching happens only within one
	// operation's fused read.
	DoorbellCoalescing string `json:"doorbell_coalescing"`
}

// RTTComparison is one workload panel: the unbatched baseline vs the fused
// doorbell-batched protocol.
type RTTComparison struct {
	Legacy      RTTMode `json:"legacy"`
	Fused       RTTMode `json:"fused"`
	MeanSpeedup float64 `json:"mean_latency_speedup"`
	RTTRatio    float64 `json:"rtts_per_op_ratio"`
}

// RTTReport is the BENCH_rtt.json payload.
type RTTReport struct {
	DataSize  int           `json:"data_size"`
	Clients   int           `json:"clients"`
	PageBytes int           `json:"page_bytes"`
	HeadEvery int           `json:"head_every"`
	Point     RTTComparison `json:"point_lookup"`
	Scan      RTTComparison `json:"range_scan"`
}

// runRTTMode executes one point of the RTT experiment and extracts the
// round-trip metrics from the run's telemetry.
func runRTTMode(sc Scale, clients int, scan, legacy bool) (RTTMode, error) {
	cfg := baseConfig(nam.FineGrained, sc, clients)
	cfg.LegacyReads = legacy
	cfg.Telemetry = true
	if scan {
		cfg.Mix = workload.WorkloadB
		cfg.Selectivity = 0.001
		cfg.MeasureNS = sc.MeasureRangeNS
	}
	res, err := Run(cfg)
	if err != nil {
		return RTTMode{}, err
	}
	m := RTTMode{
		ThroughputOpsSec: res.Throughput,
		MeanLatencyNS:    res.Latency.Snapshot().Mean(),
		P50LatencyNS:     res.Latency.Percentile(50),
		P99LatencyNS:     res.Latency.Percentile(99),
	}
	m.DoorbellCoalescing = "n/a"
	if rec := res.Telemetry; rec != nil && rec.AvgInflight() > 0 {
		m.OpsInFlight = rec.AvgInflight()
		m.DoorbellCoalescing = fmt.Sprintf("%.2f", rec.CoalescingRatio())
	}
	if rec := res.Telemetry; rec != nil && rec.IndexOps() > 0 {
		// Every endpoint verb (including a ReadMulti batch, which waits on
		// one completion) is one blocking interaction; dividing by index
		// ops gives exposed round trips per operation in either mode.
		m.RTTsPerOp = float64(rec.TotalOps()) / float64(rec.IndexOps())
		idx := rec.StatsMap()["index"].(map[string]any)
		m.AvgDepth = idx["avg_depth"].(float64)
	}
	return m, nil
}

func rttCompare(legacy, fused RTTMode) RTTComparison {
	c := RTTComparison{Legacy: legacy, Fused: fused}
	if fused.MeanLatencyNS > 0 {
		c.MeanSpeedup = legacy.MeanLatencyNS / fused.MeanLatencyNS
	}
	if fused.RTTsPerOp > 0 {
		c.RTTRatio = legacy.RTTsPerOp / fused.RTTsPerOp
	}
	return c
}

// RunRTT executes the doorbell-batching experiment (point lookups and range
// scans, legacy vs fused read protocol) at low concurrency, where latency —
// the metric round trips dominate — is exposed rather than overlapped.
func RunRTT(sc Scale) (RTTReport, error) {
	clients := sc.Clients[0]
	rep := RTTReport{
		DataSize:  sc.DataSize,
		Clients:   clients,
		PageBytes: 1024,
		HeadEvery: 32,
	}
	var modes [2]RTTMode
	for i, legacy := range []bool{true, false} {
		m, err := runRTTMode(sc, clients, false, legacy)
		if err != nil {
			return rep, fmt.Errorf("rtt/point/legacy=%v: %w", legacy, err)
		}
		modes[i] = m
	}
	rep.Point = rttCompare(modes[0], modes[1])
	for i, legacy := range []bool{true, false} {
		m, err := runRTTMode(sc, clients, true, legacy)
		if err != nil {
			return rep, fmt.Errorf("rtt/scan/legacy=%v: %w", legacy, err)
		}
		modes[i] = m
	}
	rep.Scan = rttCompare(modes[0], modes[1])
	return rep, nil
}

// expRTT is the nambench surface of RunRTT: it renders the comparison tables
// and writes the machine-readable baseline to RTTBaselinePath.
func expRTT(w io.Writer, sc Scale) error {
	rep, err := RunRTT(sc)
	if err != nil {
		return err
	}
	panel := func(name string, c RTTComparison) {
		lat := &stats.Series{Name: "mean latency (ns)"}
		p50 := &stats.Series{Name: "p50 (ns)"}
		rtt := &stats.Series{Name: "RTTs/op"}
		thr := &stats.Series{Name: "ops/s"}
		for i, m := range []RTTMode{c.Legacy, c.Fused} {
			x := float64(i)
			lat.Append(x, m.MeanLatencyNS)
			p50.Append(x, float64(m.P50LatencyNS))
			rtt.Append(x, m.RTTsPerOp)
			thr.Append(x, m.ThroughputOpsSec)
		}
		fmt.Fprintf(w, "%s (%d clients; x: 0 = legacy two-READ, 1 = fused doorbell batch)\n", name, rep.Clients)
		fmt.Fprintln(w, stats.Table("mode", "value", lat, p50, rtt, thr))
		fmt.Fprintf(w, "mean latency speedup %.2fx, RTTs/op %.2f -> %.2f (avg depth %.2f)\n",
			c.MeanSpeedup, c.Legacy.RTTsPerOp, c.Fused.RTTsPerOp, c.Fused.AvgDepth)
		fmt.Fprintf(w, "ops in flight %.0f, doorbell coalescing %s (serial protocol; see -exp pipeline for the async dataplane)\n\n",
			c.Fused.OpsInFlight, c.Fused.DoorbellCoalescing)
	}
	panel("Point Lookups", rep.Point)
	panel("Range Scans (Sel=0.001)", rep.Scan)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(RTTBaselinePath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("rtt: writing baseline: %w", err)
	}
	fmt.Fprintf(w, "wrote %s\n", RTTBaselinePath)
	return nil
}
