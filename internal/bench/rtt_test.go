package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRTTBatchingWins pins the tentpole acceptance criteria of the fused
// consistent-read protocol on simnet: fine-grained point-lookup mean latency
// improves by at least 1.5x over the unbatched Listing-2 baseline, and the
// measured exposed round trips per lookup drop from ~2·depth+1 to ~depth+1.
func TestRTTBatchingWins(t *testing.T) {
	sc := Scale{
		DataSize:       60_000,
		Clients:        []int{20},
		MeasurePointNS: 8_000_000,
		MeasureRangeNS: 16_000_000,
	}
	clients := sc.Clients[0]

	legacy, err := runRTTMode(sc, clients, false, true)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := runRTTMode(sc, clients, false, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("legacy: mean=%.0fns rtts/op=%.2f depth=%.2f", legacy.MeanLatencyNS, legacy.RTTsPerOp, legacy.AvgDepth)
	t.Logf("fused:  mean=%.0fns rtts/op=%.2f depth=%.2f", fused.MeanLatencyNS, fused.RTTsPerOp, fused.AvgDepth)

	if fused.MeanLatencyNS <= 0 || legacy.MeanLatencyNS <= 0 {
		t.Fatal("no latency measured")
	}
	if speedup := legacy.MeanLatencyNS / fused.MeanLatencyNS; speedup < 1.5 {
		t.Fatalf("fused point-lookup mean latency speedup %.2fx, want >= 1.5x", speedup)
	}
	// A warm-root clean descent is depth fused batches; right-moves and the
	// odd root refresh add a fraction. The legacy protocol pays two READs
	// per level (minus early-outs on locked copies).
	d := fused.AvgDepth
	if d < 2 {
		t.Fatalf("avg depth %.2f, want a multi-level tree", d)
	}
	if fused.RTTsPerOp > d+0.5 {
		t.Fatalf("fused RTTs/op %.2f, want <= depth+0.5 = %.2f", fused.RTTsPerOp, d+0.5)
	}
	if legacy.RTTsPerOp < 2*d-0.5 {
		t.Fatalf("legacy RTTs/op %.2f, want >= 2*depth-0.5 = %.2f", legacy.RTTsPerOp, 2*d-0.5)
	}
}

// TestRTTExperimentWritesBaseline runs the nambench rtt experiment end to
// end at a tiny scale and validates the BENCH_rtt.json it writes.
func TestRTTExperimentWritesBaseline(t *testing.T) {
	old := RTTBaselinePath
	RTTBaselinePath = filepath.Join(t.TempDir(), "BENCH_rtt.json")
	defer func() { RTTBaselinePath = old }()

	sc := Scale{
		DataSize:       30_000,
		Clients:        []int{10},
		MeasurePointNS: 4_000_000,
		MeasureRangeNS: 8_000_000,
	}
	if err := expRTT(io.Discard, sc); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(RTTBaselinePath)
	if err != nil {
		t.Fatal(err)
	}
	var rep RTTReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_rtt.json malformed: %v", err)
	}
	if rep.Point.Fused.RTTsPerOp <= 0 || rep.Point.Legacy.RTTsPerOp <= 0 {
		t.Fatalf("missing RTT measurements: %+v", rep.Point)
	}
	if rep.Point.Fused.RTTsPerOp >= rep.Point.Legacy.RTTsPerOp {
		t.Fatalf("batching did not reduce RTTs/op: fused %.2f >= legacy %.2f",
			rep.Point.Fused.RTTsPerOp, rep.Point.Legacy.RTTsPerOp)
	}
	if rep.Scan.Fused.MeanLatencyNS <= 0 {
		t.Fatalf("scan panel missing: %+v", rep.Scan)
	}
}
