package bench

import (
	"fmt"
	"testing"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/workload"
)

func TestPaperScaleRangeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	for _, d := range []nam.Design{nam.CoarseGrained, nam.FineGrained} {
		cfg := Config{
			Design:      d,
			Topology:    nam.PaperTopology(4, 6, 40),
			DataSize:    4_000_000,
			Mix:         workload.WorkloadB,
			Selectivity: 0.01,
			HeadEvery:   32,
			MeasureNS:   80_000_000,
			Seed:        1,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%v: %.0f ops/s net %.1f GB/s\n", d, res.Throughput, res.NetGBps)
	}
}
