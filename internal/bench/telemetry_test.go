package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/telemetry"
)

// TestTelemetryDoesNotPerturbSimulation is the simnet leg of the decorator
// conformance check: the discrete-event simulation is deterministic, so a run
// with instrumentation enabled must complete exactly the same operations and
// move exactly the same bytes as a run without it.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	for _, d := range []nam.Design{nam.CoarseGrained, nam.FineGrained} {
		t.Run(d.String(), func(t *testing.T) {
			plain := run(t, pointCfg(d, 40))
			cfg := pointCfg(d, 40)
			cfg.Telemetry = true
			instr := run(t, cfg)
			if plain.Ops != instr.Ops || plain.NetGBps != instr.NetGBps {
				t.Fatalf("instrumented run diverged: %d/%f vs %d/%f",
					plain.Ops, plain.NetGBps, instr.Ops, instr.NetGBps)
			}
			if instr.Telemetry == nil {
				t.Fatal("telemetry requested but Result.Telemetry is nil")
			}
			if plain.Telemetry != nil {
				t.Fatal("telemetry not requested but Result.Telemetry is set")
			}
		})
	}
}

// TestRunTelemetryVerbProfile checks the recorded profile against what each
// design must issue by construction: coarse-grained is pure RPC (Table 1),
// fine-grained is purely one-sided.
func TestRunTelemetryVerbProfile(t *testing.T) {
	cfg := pointCfg(nam.CoarseGrained, 40)
	cfg.Telemetry = true
	res := run(t, cfg)
	rec := res.Telemetry
	if rec.VerbOps(telemetry.VerbCall) == 0 {
		t.Fatal("coarse-grained recorded no CALLs")
	}
	if rec.VerbOps(telemetry.VerbRead) != 0 {
		t.Fatal("coarse-grained point queries recorded one-sided READs")
	}

	cfg = pointCfg(nam.FineGrained, 40)
	cfg.Telemetry = true
	res = run(t, cfg)
	rec = res.Telemetry
	if rec.VerbOps(telemetry.VerbRead) == 0 {
		t.Fatal("fine-grained recorded no READs")
	}
	if rec.VerbOps(telemetry.VerbCall) != 0 {
		t.Fatal("fine-grained point queries recorded CALLs")
	}
	// Latencies are virtual-time on the simulated fabric.
	if rec.VerbLatency(telemetry.VerbRead).Percentile(50) <= 0 {
		t.Fatal("no virtual-time READ latency recorded")
	}
	table := rec.VerbTable()
	if !strings.Contains(table, "READ") || !strings.Contains(table, "p99(ns)") {
		t.Fatalf("verb table missing expected columns:\n%s", table)
	}
	if avg := rec.StatsMap()["index"].(map[string]any)["avg_depth"].(float64); avg < 1 {
		t.Fatalf("average traversal depth %v, want >= 1", avg)
	}
}

// TestRunEmitsTrace checks that a traced run produces a loadable Chrome
// trace: client tracks, server tracks for RPC designs, valid JSON.
func TestRunEmitsTrace(t *testing.T) {
	cfg := pointCfg(nam.Hybrid, 8)
	cfg.Trace = telemetry.NewTracer()
	run(t, cfg)
	if cfg.Trace.Len() == 0 {
		t.Fatal("traced run emitted no events")
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace is not valid JSON")
	}
	var doc struct {
		TraceEvents []telemetry.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var clientSpans, serverSpans, meta int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M":
			meta++
		case ev.Ph == "X" && ev.Pid < telemetry.ServerPid(0):
			clientSpans++
		case ev.Ph == "X":
			serverSpans++
		}
	}
	if clientSpans == 0 {
		t.Fatal("no client-track spans")
	}
	if serverSpans == 0 {
		t.Fatal("no server handler spans (hybrid issues RPCs)")
	}
	if meta == 0 {
		t.Fatal("no track-naming metadata events")
	}
}

// TestCacheTelemetry checks that the compute-side page cache reports hits
// and misses through the recorder.
func TestCacheTelemetry(t *testing.T) {
	cfg := pointCfg(nam.FineGrained, 20)
	cfg.CachePages = 256
	cfg.Telemetry = true
	res := run(t, cfg)
	m := res.Telemetry.StatsMap()
	cacheStats, ok := m["cache"].(map[string]any)
	if !ok {
		t.Fatalf("no cache section in stats: %v", m)
	}
	if cacheStats["hits"].(int64) == 0 {
		t.Fatal("cached run recorded no cache hits")
	}
	if res.CacheHits != cacheStats["hits"].(int64) {
		t.Fatalf("recorder hits %v != bench hits %d", cacheStats["hits"], res.CacheHits)
	}
}
