package bench

import (
	"fmt"
	"testing"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/workload"
)

func TestUtilizationIdentifiesBottleneck(t *testing.T) {
	// The coarse-grained design at high point-query load is bound by its
	// handler cores / server NICs, not client resources.
	cfg := Config{
		Design:    nam.CoarseGrained,
		Topology:  nam.PaperTopology(4, 3, 40),
		DataSize:  100_000,
		Mix:       workload.WorkloadA,
		HeadEvery: 32,
		Seed:      1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	name, util := res.Util.Max()
	fmt.Printf("bottleneck: %s at %.2f\n", name, util)
	if util < 0.7 {
		t.Fatalf("no saturated station at high load: %s %.2f", name, util)
	}
	if name != "handler-cores" && name != "server-nic" {
		t.Fatalf("unexpected bottleneck %s for the RPC design", name)
	}
}
