package btree

import (
	"testing"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

// Micro-benchmarks of the hot read paths on the direct (zero-latency)
// transport, with allocation reporting: the fused consistent-read protocol
// and the scratch-buffer reuse in Lookup's sibling walk and scanChain are
// meant to keep these nearly allocation-free in steady state.

func benchTree(b *testing.B, n, headEvery int) *Tree {
	b.Helper()
	f := direct.New(4, 256<<20, nam.SuperblockBytes)
	l := layout.New(512)
	root := rdma.MakePtr(0, 0)
	tr := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, 0)}, root)
	if _, err := tr.Build(rdma.NopEnv{}, BuildConfig{HeadEvery: headEvery}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkLookup(b *testing.B) {
	const n = 100000
	tr := benchTree(b, n, 0)
	env := rdma.NopEnv{}
	if _, _, err := tr.Lookup(env, 1); err != nil { // warm the root pointer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i*2654435761) % n
		vals, _, err := tr.Lookup(env, k)
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) != 1 {
			b.Fatalf("Lookup(%d) = %v", k, vals)
		}
	}
}

// TestLookupZeroAllocs is the hard gate behind BenchmarkLookup's allocation
// report: the serial fused lookup path must run allocation-free in steady
// state. The descent and lock paths share the handle's scratch page and
// Lookup reuses the handle's values buffer, so after the first (warming)
// operation nothing on the read path allocates.
func TestLookupZeroAllocs(t *testing.T) {
	const n = 100000
	f := direct.New(4, 256<<20, nam.SuperblockBytes)
	l := layout.New(512)
	tr := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, 0)}, rdma.MakePtr(0, 0))
	if _, err := tr.Build(rdma.NopEnv{}, BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	env := rdma.NopEnv{}
	if _, _, err := tr.Lookup(env, 1); err != nil { // warm root, scratch, values buffer
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		k := uint64(i*2654435761) % n
		i++
		vals, _, err := tr.Lookup(env, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 {
			t.Fatalf("Lookup(%d) = %v", k, vals)
		}
	})
	if allocs != 0 {
		t.Fatalf("serial fused lookup allocates %v allocs/op in steady state, want 0", allocs)
	}
}

func BenchmarkScan(b *testing.B) {
	const n = 100000
	tr := benchTree(b, n, 8)
	env := rdma.NopEnv{}
	if _, _, err := tr.Lookup(env, 1); err != nil { // warm the root pointer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i*2654435761) % (n - 2000)
		count := 0
		if _, err := tr.Scan(env, lo, lo+1999, func(k, v uint64) bool {
			count++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if count != 2000 {
			b.Fatalf("scan [%d,%d] emitted %d", lo, lo+1999, count)
		}
	}
}
