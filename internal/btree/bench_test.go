package btree

import (
	"testing"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

// Micro-benchmarks of the hot read paths on the direct (zero-latency)
// transport, with allocation reporting: the fused consistent-read protocol
// and the scratch-buffer reuse in Lookup's sibling walk and scanChain are
// meant to keep these nearly allocation-free in steady state.

func benchTree(b *testing.B, n, headEvery int) *Tree {
	b.Helper()
	f := direct.New(4, 256<<20, nam.SuperblockBytes)
	l := layout.New(512)
	root := rdma.MakePtr(0, 0)
	tr := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, 0)}, root)
	if _, err := tr.Build(rdma.NopEnv{}, BuildConfig{HeadEvery: headEvery}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkLookup(b *testing.B) {
	const n = 100000
	tr := benchTree(b, n, 0)
	env := rdma.NopEnv{}
	if _, _, err := tr.Lookup(env, 1); err != nil { // warm the root pointer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i*2654435761) % n
		vals, _, err := tr.Lookup(env, k)
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) != 1 {
			b.Fatalf("Lookup(%d) = %v", k, vals)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	const n = 100000
	tr := benchTree(b, n, 8)
	env := rdma.NopEnv{}
	if _, _, err := tr.Lookup(env, 1); err != nil { // warm the root pointer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i*2654435761) % (n - 2000)
		count := 0
		if _, err := tr.Scan(env, lo, lo+1999, func(k, v uint64) bool {
			count++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if count != 2000 {
			b.Fatalf("scan [%d,%d] emitted %d", lo, lo+1999, count)
		}
	}
}
