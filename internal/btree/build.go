package btree

import (
	"fmt"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// BuildStats reports the shape of a bulk-loaded tree.
type BuildStats struct {
	Items  int
	Leaves int
	Inner  int
	Heads  int
	Height int
}

// BuildConfig controls bulk loading.
type BuildConfig struct {
	// Fill is the target fill factor of leaves and inner nodes (0 < Fill <=
	// 1, default 0.9).
	Fill float64
	// HeadEvery inserts a head node (Section 4.3) into the leaf chain after
	// every HeadEvery leaves; 0 disables head nodes. Head nodes hold the
	// pointers of the leaves of the following group, so range scans can
	// prefetch them in one batched READ.
	HeadEvery int
}

func (c *BuildConfig) fillTarget(cap int) int {
	f := c.Fill
	if f <= 0 || f > 1 {
		f = 0.9
	}
	n := int(f * float64(cap))
	if n < 1 {
		n = 1
	}
	if n > cap {
		n = cap
	}
	return n
}

type levelEntry struct {
	high layout.Key
	ptr  rdma.RemotePtr
}

// Build bulk-loads a tree with n items; at(i) must return items in
// non-decreasing key order. The tree is built bottom-up directly through Mem
// (an untimed setup path on the simulated fabric) and published at
// t.RootWord. Build must not race with other accessors.
func (t *Tree) Build(env rdma.Env, cfg BuildConfig, n int, at func(i int) (k layout.Key, v uint64)) (BuildStats, error) {
	var bs BuildStats
	bs.Items = n
	if n == 0 {
		return bs, t.Init(env)
	}
	leafTarget := cfg.fillTarget(t.L.LeafCap)

	var entries []levelEntry // (highKey, ptr) per leaf, for the parent level

	// Streaming leaf construction with one buffered complete leaf, so each
	// page is written exactly once with its final right-sibling pointer.
	// The chain is L1..Ln, H1, L(n+1)..L(2n), H2, ... where head node Hi
	// follows group i and announces the leaves of group i+1. A head is
	// therefore *deferred*: allocated (and linked) at its group boundary,
	// filled as the next group's leaves are allocated, and written only once
	// that group has completed.
	var pending layout.Node // complete leaf awaiting its right-sibling ptr
	var pendingPtr rdma.RemotePtr

	var head layout.Node // deferred head node
	var headPtr rdma.RemotePtr
	var headFirst rdma.RemotePtr // first leaf the deferred head announces
	leavesInGroup := 0

	flushPending := func(next rdma.RemotePtr) error {
		if pendingPtr.IsNull() {
			return nil
		}
		pending.SetRight(next)
		if err := t.M.WriteWords(pendingPtr, pending.W); err != nil {
			return err
		}
		pendingPtr = rdma.NullPtr
		return nil
	}
	writeDeferredHead := func() error {
		if headPtr.IsNull() {
			return nil
		}
		head.SetRight(headFirst) // null if the head announces nothing
		if err := t.M.WriteWords(headPtr, head.W); err != nil {
			return err
		}
		headPtr = rdma.NullPtr
		headFirst = rdma.NullPtr
		return nil
	}

	cur := t.L.NewNode()
	cur.InitLeaf()
	curPtr, err := t.M.AllocPage(0, t.L.PageBytes)
	if err != nil {
		return bs, err
	}
	startLeaf := func() error {
		var err error
		curPtr, err = t.M.AllocPage(0, t.L.PageBytes)
		if err != nil {
			return err
		}
		cur = t.L.NewNode()
		cur.InitLeaf()
		// Announce the new leaf in the deferred head node.
		if !headPtr.IsNull() {
			if head.Count() == 0 {
				headFirst = curPtr
			}
			head.HeadAppend(curPtr)
		}
		return nil
	}
	closeLeaf := func() error {
		// cur is complete: fence = its last key; link chain.
		cur.SetHighKey(cur.LeafKey(cur.Count() - 1))
		entries = append(entries, levelEntry{cur.HighKey(), curPtr})
		bs.Leaves++
		if err := flushPending(curPtr); err != nil {
			return err
		}
		pending, pendingPtr = cur, curPtr
		leavesInGroup++
		if cfg.HeadEvery > 0 && leavesInGroup >= cfg.HeadEvery {
			leavesInGroup = 0
			// The previous deferred head has seen its whole group; write it.
			if err := writeDeferredHead(); err != nil {
				return err
			}
			// Start a new deferred head following cur.
			var err error
			headPtr, err = t.M.AllocPage(0, t.L.PageBytes)
			if err != nil {
				return err
			}
			head = t.L.NewNode()
			head.InitHead()
			if err := flushPending(headPtr); err != nil {
				return err
			}
			bs.Heads++
		}
		return nil
	}

	for i := 0; i < n; i++ {
		k, v := at(i)
		if k == layout.MaxKey {
			return bs, ErrKeyReserved
		}
		if cur.Count() > 0 && k < cur.LeafKey(cur.Count()-1) {
			return bs, fmt.Errorf("btree: Build input not sorted at item %d", i)
		}
		if cur.Count() >= leafTarget {
			if err := closeLeaf(); err != nil {
				return bs, err
			}
			if err := startLeaf(); err != nil {
				return bs, err
			}
		}
		cur.LeafAppend(k, v)
	}
	if err := closeLeaf(); err != nil {
		return bs, err
	}
	// Rightmost leaf: +inf fence, end of chain. closeLeaf may have handed
	// the chain tail to a fresh deferred head (group boundary at input end);
	// otherwise the last leaf is still pending.
	entries[len(entries)-1].high = layout.MaxKey
	if !pendingPtr.IsNull() {
		pending.SetHighKey(layout.MaxKey)
		if err := flushPending(rdma.NullPtr); err != nil {
			return bs, err
		}
	} else {
		// The last leaf was already written pointing at the deferred head;
		// rewrite it with the +inf fence preserved.
		last := entries[len(entries)-1].ptr
		buf := make([]uint64, t.L.Words)
		if err := t.M.ReadWords(last, buf); err != nil {
			return bs, err
		}
		ln := t.L.Wrap(buf)
		ln.SetHighKey(layout.MaxKey)
		//rdmavet:allow occvalidate -- bulk build is single-writer on a quiesced tree; no concurrent writer exists to tear this copy
		if err := t.M.WriteWords(last, ln.W); err != nil {
			return bs, err
		}
	}
	// A dangling deferred head announces nothing and terminates the chain.
	if err := writeDeferredHead(); err != nil {
		return bs, err
	}

	// Inner levels, bottom-up.
	innerTarget := cfg.fillTarget(t.L.InnerCap)
	level := 1
	for len(entries) > 1 {
		if level > 0xff {
			return bs, fmt.Errorf("btree: tree too tall")
		}
		var next []levelEntry
		var prev layout.Node
		var prevInnerPtr rdma.RemotePtr
		for start := 0; start < len(entries); {
			end := start + innerTarget
			if end > len(entries) {
				end = len(entries)
			}
			// Avoid a trailing 1-entry node: borrow from this chunk.
			if rem := len(entries) - end; rem == 1 && end-start > 1 {
				end--
			}
			node := t.L.NewNode()
			node.InitInner(level)
			for _, e := range entries[start:end] {
				node.InnerAppend(e.high, e.ptr)
			}
			node.SetHighKey(node.InnerKey(node.Count() - 1))
			ptr, err := t.M.AllocPage(level, t.L.PageBytes)
			if err != nil {
				return bs, err
			}
			if !prevInnerPtr.IsNull() {
				prev.SetRight(ptr)
				node.SetLeft(prevInnerPtr)
				if err := t.M.WriteWords(prevInnerPtr, prev.W); err != nil {
					return bs, err
				}
			}
			prev, prevInnerPtr = node, ptr
			next = append(next, levelEntry{node.HighKey(), ptr})
			bs.Inner++
			start = end
		}
		if err := t.M.WriteWords(prevInnerPtr, prev.W); err != nil {
			return bs, err
		}
		entries = next
		level++
	}
	rootPtr := entries[0].ptr
	if err := t.M.WriteWords(t.RootWord, []uint64{uint64(rootPtr)}); err != nil {
		return bs, err
	}
	t.cachedRoot = rootPtr
	bs.Height = level
	return bs, nil
}

// Compact walks the leaf chain and physically removes delete-bit entries —
// the epoch garbage collector's per-epoch pass (Section 3.2/4.2). It returns
// the number of entries removed. Node deallocation/rebalancing is out of
// scope, as in the paper's implementation.
func (t *Tree) Compact(env rdma.Env) (removed int, st Stats, err error) {
	p, _, _, err := t.descendToLeaf(env, &st, 0)
	if err != nil {
		return 0, st, err
	}
	var buf []uint64
	for !p.IsNull() {
		n, _, err := t.readNode(env, &st, p, buf)
		if err != nil {
			return removed, st, err
		}
		buf = n.W
		if n.IsHead() {
			p = n.Right()
			continue
		}
		// Cheap pre-check on the consistent copy before taking the lock.
		dirty := false
		for i := 0; i < n.Count(); i++ {
			if n.LeafDeleted(i) {
				dirty = true
				break
			}
		}
		if !dirty {
			p = n.Right()
			continue
		}
		lp, ln, pre, err := t.lockNodeForKey(env, &st, p, 0)
		if err != nil {
			return removed, st, err
		}
		r := ln.LeafCompact()
		removed += r
		if r > 0 {
			err = t.unlockBump(env, &st, lp, ln, pre)
		} else {
			err = t.unlockNoChange(&st, lp, pre)
		}
		if err != nil {
			return removed, st, err
		}
		p = ln.Right()
	}
	return removed, st, nil
}

// RebuildHeads rewrites the head nodes of the leaf chain so that each again
// announces the every-th following leaves — the epoch-based head-node
// maintenance of Section 4.3, run by a compute server. Old head nodes are
// unlinked and returned for deferred freeing (after an epoch, when no reader
// can still hold their pointers); new heads are linked in. It must not race
// with other RebuildHeads/Compact calls (single maintenance thread, as in
// the paper).
func (t *Tree) RebuildHeads(env rdma.Env, every int) (retired []rdma.RemotePtr, st Stats, err error) {
	if every < 2 {
		return nil, st, fmt.Errorf("btree: head group size must be >= 2")
	}
	p, _, _, err := t.descendToLeaf(env, &st, 0)
	if err != nil {
		return nil, st, err
	}
	// Pass 1: unlink all existing head nodes. For each head H between
	// leaves A and B (A -> H -> B), lock A and repoint A.Right to B.
	var prevLeaf rdma.RemotePtr
	var buf []uint64
	for !p.IsNull() {
		n, _, err := t.readNode(env, &st, p, buf)
		if err != nil {
			return retired, st, err
		}
		buf = n.W
		if !n.IsHead() {
			prevLeaf = p
			p = n.Right()
			continue
		}
		next := n.Right()
		if prevLeaf.IsNull() {
			return retired, st, fmt.Errorf("btree: head node at chain start")
		}
		lp, ln, lpre, err := t.lockNodeForKey(env, &st, prevLeaf, 0)
		if err != nil {
			return retired, st, err
		}
		if lp != prevLeaf {
			t.abortUnlock(&st, lp, lpre)
			return retired, st, fmt.Errorf("btree: predecessor moved during head unlink")
		}
		ln.SetRight(next)
		if err := t.unlockBump(env, &st, lp, ln, lpre); err != nil {
			return retired, st, err
		}
		retired = append(retired, p)
		p = next
	}
	// Pass 2: walk the (now head-free) chain and install fresh heads.
	p, _, _, err = t.descendToLeaf(env, &st, 0)
	if err != nil {
		return retired, st, err
	}
	var group []rdma.RemotePtr // leaves of the current group, in order
	buf = nil
	for !p.IsNull() {
		n, _, err := t.readNode(env, &st, p, buf)
		if err != nil {
			return retired, st, err
		}
		buf = n.W
		next := n.Right()
		group = append(group, p)
		if len(group) == every+1 || next.IsNull() {
			// group[0] is the leaf the head follows; group[1:] are announced.
			if len(group) > 2 {
				hp, err := t.M.AllocPage(0, t.L.PageBytes)
				if err != nil {
					return retired, st, err
				}
				st.ExposedRTTs++
				h := t.L.NewNode()
				h.InitHead()
				for _, lp := range group[1:] {
					h.HeadAppend(lp)
				}
				h.SetRight(group[1])
				h.SetLeft(group[0])
				if err := t.M.WriteWords(hp, h.W); err != nil {
					return retired, st, err
				}
				st.PageWrites++
				st.ExposedRTTs++
				// Link group[0] -> head.
				lp0, ln0, pre0, err := t.lockNodeForKey(env, &st, group[0], 0)
				if err != nil {
					return retired, st, err
				}
				if lp0 != group[0] {
					t.abortUnlock(&st, lp0, pre0)
					return retired, st, fmt.Errorf("btree: leaf moved during head install")
				}
				ln0.SetRight(hp)
				if err := t.unlockBump(env, &st, lp0, ln0, pre0); err != nil {
					return retired, st, err
				}
			}
			// The last leaf of this group starts the next one.
			group = group[len(group)-1:]
		}
		p = next
	}
	return retired, st, nil
}

// FreeRetired returns retired pages (from RebuildHeads) to their allocators;
// callers invoke it after an epoch has passed.
func (t *Tree) FreeRetired(ptrs []rdma.RemotePtr) error {
	for _, p := range ptrs {
		if err := t.M.FreePage(p, t.L.PageBytes); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants verifies structural invariants of the whole tree. It must
// run quiesced (no concurrent writers). Checked: key order within and across
// leaves, fence keys, sibling chains per level, parent separator == child
// fence, level consistency, head-node pointers targeting leaves, and that
// every live entry is reachable. Returns the number of live entries.
func (t *Tree) CheckInvariants(env rdma.Env) (liveEntries int, err error) {
	var st Stats
	rootPtr, err := t.refreshRoot(&st)
	if err != nil {
		return 0, err
	}
	root, _, err := t.readNode(env, &st, rootPtr, nil)
	if err != nil {
		return 0, err
	}
	// Walk each level left-to-right. The walk buffer is reused node to node;
	// nested reads (head targets, children) use a separate buffer because the
	// parent copy must stay live across them.
	levelStart := rootPtr
	var buf, childBuf []uint64
	for lvl := root.Level(); lvl >= 0; lvl-- {
		p := levelStart
		var prevHigh layout.Key
		first := true
		var lastHigh layout.Key
		var nextLevelStart rdma.RemotePtr
		for !p.IsNull() {
			n, _, err := t.readNode(env, &st, p, buf)
			if err != nil {
				return 0, err
			}
			buf = n.W
			if n.IsHead() {
				if lvl != 0 {
					return 0, fmt.Errorf("head node on level %d", lvl)
				}
				for i := 0; i < n.Count(); i++ {
					hn, _, err := t.readNode(env, &st, n.HeadPtr(i), childBuf)
					if err != nil {
						return 0, err
					}
					childBuf = hn.W
					if !hn.IsLeaf() {
						return 0, fmt.Errorf("head pointer %d targets non-leaf", i)
					}
				}
				p = n.Right()
				continue
			}
			if n.Level() != lvl {
				return 0, fmt.Errorf("node %v on level %d has level %d", p, lvl, n.Level())
			}
			if n.IsLeaf() != (lvl == 0) {
				return 0, fmt.Errorf("node %v leaf flag inconsistent with level %d", p, lvl)
			}
			// Inner nodes are never empty; leaves may be (the GC compacts
			// in place and never merges, as in the paper).
			if n.Count() == 0 && lvl > 0 {
				return 0, fmt.Errorf("empty inner node %v on level %d", p, lvl)
			}
			for i := 0; i < n.Count(); i++ {
				var k layout.Key
				if lvl == 0 {
					k = n.LeafKey(i)
					if !n.LeafDeleted(i) {
						liveEntries++
					}
				} else {
					k = n.InnerKey(i)
				}
				if i > 0 {
					prev := n.LeafKey(i - 1)
					if lvl > 0 {
						prev = n.InnerKey(i - 1)
					}
					if prev > k {
						return 0, fmt.Errorf("node %v keys unsorted at %d", p, i)
					}
				}
				if k > n.HighKey() {
					return 0, fmt.Errorf("node %v key %d exceeds fence %d", p, k, n.HighKey())
				}
			}
			if !first && n.Count() > 0 {
				firstKey := n.InnerKey(0)
				if lvl == 0 {
					firstKey = n.LeafKey(0)
				}
				// Duplicate keys/separators may equal the previous fence.
				if firstKey < prevHigh {
					return 0, fmt.Errorf("node %v first key %d below previous fence %d", p, firstKey, prevHigh)
				}
			}
			if lvl > 0 {
				if n.Count() > 0 && n.InnerKey(n.Count()-1) != n.HighKey() {
					return 0, fmt.Errorf("inner node %v last separator %d != fence %d", p, n.InnerKey(n.Count()-1), n.HighKey())
				}
				for i := 0; i < n.Count(); i++ {
					child, _, err := t.readNode(env, &st, n.InnerChild(i), childBuf)
					if err != nil {
						return 0, err
					}
					childBuf = child.W
					if child.Level() != lvl-1 {
						return 0, fmt.Errorf("child %d of %v has level %d; want %d", i, p, child.Level(), lvl-1)
					}
					if child.HighKey() > n.InnerKey(i) {
						return 0, fmt.Errorf("child %d of %v fence %d exceeds separator %d", i, p, child.HighKey(), n.InnerKey(i))
					}
				}
				if first {
					nextLevelStart = n.InnerChild(0)
				}
			}
			prevHigh = n.HighKey()
			lastHigh = n.HighKey()
			first = false
			p = n.Right()
		}
		if lastHigh != layout.MaxKey {
			return 0, fmt.Errorf("level %d rightmost fence %d != MaxKey", lvl, lastHigh)
		}
		if lvl > 0 {
			levelStart = nextLevelStart
		}
	}
	return liveEntries, nil
}
