package btree

import (
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// This file exports the entry points the hybrid design (Section 5) composes:
// the upper levels of the index are traversed by an RPC handler on the
// memory server (FindLeaf, Install over LocalMem), while the leaf level is
// accessed by compute servers with the one-sided protocol (LeafLookup,
// LeafScan, LeafInsertAt, LeafDeleteAt over EndpointMem).

// FindLeaf descends from the root to level 1 and returns the pointer of the
// leaf responsible for key — the hybrid design's RPC traversal result.
func (t *Tree) FindLeaf(env rdma.Env, key layout.Key) (rdma.RemotePtr, Stats, error) {
	var st Stats
	p, err := t.root(&st)
	if err != nil {
		return rdma.NullPtr, st, err
	}
	var buf []uint64
	depth := 1
	for {
		n, _, err := t.readNode(env, &st, p, buf)
		if err != nil {
			return rdma.NullPtr, st, err
		}
		buf = n.W
		if n.IsHead() || key > n.HighKey() {
			p = n.Right()
			if p.IsNull() {
				return rdma.NullPtr, st, errFellOff(key)
			}
			continue
		}
		if n.IsLeaf() {
			// Height-1 tree: the root is the leaf.
			st.Depth = depth
			return p, st, nil
		}
		child, ok := n.InnerRoute(key)
		if !ok {
			panic("btree: routing failed within fence")
		}
		if n.Level() == 1 {
			st.Depth = depth + 1
			return child, st, nil
		}
		p = child
		depth++
	}
}

// Install inserts the separator of a completed child split into the given
// level — the hybrid design's second RPC, executed by the memory server
// owning the upper levels after a compute server split a leaf one-sided.
func (t *Tree) Install(env rdma.Env, level int, sep layout.Key, left, right rdma.RemotePtr) (Stats, error) {
	var st Stats
	err := t.installSeparator(env, &st, level, sep, left, right)
	return st, err
}

// Split reports a completed in-place split of the leaf Left: the upper part
// of its range, bounded by Sep, now lives in the new node Right.
type Split struct {
	Sep   layout.Key
	Left  rdma.RemotePtr
	Right rdma.RemotePtr
}

// LeafLookup collects all live values under key starting from the leaf chain
// at leafPtr (which must be the leaf responsible for key, or left of it).
func (t *Tree) LeafLookup(env rdma.Env, leafPtr rdma.RemotePtr, key layout.Key) (values []uint64, st Stats, err error) {
	p := leafPtr
	var buf []uint64
	for {
		n, _, err := t.readNode(env, &st, p, buf)
		if err != nil {
			return nil, st, err
		}
		buf = n.W
		if n.IsHead() || key > n.HighKey() {
			p = n.Right()
			if p.IsNull() {
				return values, st, nil
			}
			continue
		}
		for i := n.LeafLowerBound(key); i < n.Count() && n.LeafKey(i) == key; i++ {
			if !n.LeafDeleted(i) {
				values = append(values, n.LeafValue(i))
			}
		}
		if n.HighKey() != key {
			return values, st, nil
		}
		p = n.Right()
		if p.IsNull() {
			return values, st, nil
		}
		buf = nil
	}
}

// LeafScan emits live entries in [lo, hi] starting from the leaf chain at
// leafPtr, with head-node prefetching as in Tree.Scan.
func (t *Tree) LeafScan(env rdma.Env, leafPtr rdma.RemotePtr, lo, hi layout.Key, emit func(k layout.Key, v uint64) bool) (Stats, error) {
	var st Stats
	// Position on the chain: skip past nodes whose range is below lo.
	p := leafPtr
	n, _, err := t.readNode(env, &st, p, nil)
	if err != nil {
		return st, err
	}
	return t.scanChain(env, &st, p, n, lo, hi, emit)
}

// LeafInsertAt inserts (key, value) into the leaf chain starting at leafPtr.
// If the leaf split, the split description is returned and the caller is
// responsible for installing the separator into the upper levels (via the
// hybrid design's install RPC).
func (t *Tree) LeafInsertAt(env rdma.Env, leafPtr rdma.RemotePtr, key layout.Key, value uint64) (*Split, Stats, error) {
	var st Stats
	if key == layout.MaxKey {
		return nil, st, ErrKeyReserved
	}
	sp, err := t.leafInsert(env, &st, leafPtr, key, value)
	return sp, st, err
}

// LeafDeleteAt marks the first live (key, value) entry deleted, starting
// from the leaf chain at leafPtr.
func (t *Tree) LeafDeleteAt(env rdma.Env, leafPtr rdma.RemotePtr, key layout.Key, value uint64) (bool, Stats, error) {
	var st Stats
	ok, err := t.leafDelete(env, &st, leafPtr, key, value)
	return ok, st, err
}

func errFellOff(key layout.Key) error {
	return &chainError{key: key}
}

type chainError struct{ key layout.Key }

func (e *chainError) Error() string {
	return "btree: fell off chain"
}
