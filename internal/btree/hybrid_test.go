package btree

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

// TestHybridComposition drives the tree the way the hybrid design does:
// FindLeaf (server-side traversal) + Leaf* one-sided ops + Install RPC.
func TestHybridComposition(t *testing.T) {
	f := direct.New(4, testRegion, 64)
	l := layout.New(512)
	root := rdma.MakePtr(0, 0)
	// Server-side handle: upper levels live on server 0.
	server := New(l, LocalMem{Srv: f.Server(0)}, root)
	// Client-side handle: leaves accessed one-sided, placed round-robin.
	client := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, 1)}, root)

	if err := server.Init(env); err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		k := uint64(i)
		leaf, _, err := server.FindLeaf(env, k)
		if err != nil {
			t.Fatal(err)
		}
		sp, _, err := client.LeafInsertAt(env, leaf, k, k*10)
		if err != nil {
			t.Fatal(err)
		}
		if sp != nil {
			if _, err := server.Install(env, 1, sp.Sep, sp.Left, sp.Right); err != nil {
				t.Fatal(err)
			}
		}
	}
	checker := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, 0)}, root)
	live, err := checker.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != n {
		t.Fatalf("live = %d; want %d", live, n)
	}
	// Lookups via the hybrid path.
	for i := 0; i < n; i += 37 {
		leaf, _, err := server.FindLeaf(env, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		vals, _, err := client.LeafLookup(env, leaf, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != uint64(i)*10 {
			t.Fatalf("hybrid lookup %d = %v", i, vals)
		}
	}
	// Range scan via the hybrid path.
	leaf, _, err := server.FindLeaf(env, 100)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := client.LeafScan(env, leaf, 100, 199, func(layout.Key, uint64) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("hybrid scan saw %d; want 100", count)
	}
	// Delete via the hybrid path.
	leaf, _, err = server.FindLeaf(env, 42)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := client.LeafDeleteAt(env, leaf, 42, 420)
	if err != nil || !ok {
		t.Fatalf("hybrid delete: ok=%v err=%v", ok, err)
	}
}

// TestHybridConcurrent exercises the hybrid composition under concurrency:
// several clients insert through FindLeaf + LeafInsertAt + Install while the
// server-side handle is shared per goroutine.
func TestHybridConcurrent(t *testing.T) {
	f := direct.New(4, testRegion, 64)
	l := layout.New(256)
	root := rdma.MakePtr(0, 0)
	boot := New(l, LocalMem{Srv: f.Server(0)}, root)
	if err := boot.Init(env); err != nil {
		t.Fatal(err)
	}
	// Hybrid invariant: the server-side tree must always have an inner root
	// on the owning server (core/hybrid guarantees this at build time), so
	// that server-side traversal never reads a foreign leaf.
	leafRoot := rdma.RemotePtr(f.Server(0).Region.Load(0))
	innerOff, err := f.Server(0).Alloc.Alloc(l.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	inner := l.NewNode()
	inner.InitInner(1)
	inner.InnerAppend(layout.MaxKey, leafRoot)
	f.Server(0).Region.Write(innerOff, inner.W)
	f.Server(0).Region.Store(0, uint64(rdma.MakePtr(0, innerOff)))
	const clients = 6
	const perC = 1200
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := direct.Env{}
			// Each goroutine owns both a server-side handle (simulating the
			// RPC handler thread) and a client-side handle.
			server := New(l, LocalMem{Srv: f.Server(0)}, root)
			client := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, c)}, root)
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perC; i++ {
				k := uint64(rng.Intn(10000))
				leaf, _, err := server.FindLeaf(e, k)
				if err != nil {
					t.Error(err)
					return
				}
				sp, _, err := client.LeafInsertAt(e, leaf, k, uint64(c*perC+i))
				if err != nil {
					t.Error(err)
					return
				}
				if sp != nil {
					if _, err := server.Install(e, 1, sp.Sep, sp.Left, sp.Right); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	checker := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, 0)}, root)
	live, err := checker.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != clients*perC {
		t.Fatalf("live = %d; want %d", live, clients*perC)
	}
}

func TestFindLeafOnSingleLeafTree(t *testing.T) {
	tr := newLocalTree(t, 512)
	leaf, _, err := tr.FindLeaf(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.IsNull() {
		t.Fatal("null leaf on fresh tree")
	}
}
