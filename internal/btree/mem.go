// Package btree implements the B-link tree engine shared by all three index
// designs of the paper: a Lehman-Yao style B+-tree with sibling links and
// high keys, synchronized by optimistic lock coupling (a version/lock word
// per page, compare-and-swap to lock, fetch-and-add to unlock-and-bump, as
// in Listings 1-4 of the paper).
//
// The engine is written against the Mem interface so exactly the same
// protocol executes in two very different places:
//
//   - on a memory server's CPU over its local region (the coarse-grained
//     design's RPC handlers, and the hybrid design's inner-level traversal),
//   - on a compute server over one-sided RDMA verbs (the fine-grained
//     design, and the hybrid design's leaf accesses).
//
// Readers never lock: a page is copied and the copy validated against the
// version word (re-read after the copy), retrying while a writer holds the
// lock. Writers CAS the lock bit, mutate a local copy, write the body back
// and fetch-add the version word, which simultaneously releases the lock and
// invalidates concurrent readers' copies. Splits follow the B-link
// discipline: the left half is rewritten in place, the right half is
// installed on a freshly allocated page, and the separator is then inserted
// into the parent level without holding the child lock (sibling links keep
// the tree searchable in between).
package btree

import (
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// Mem abstracts the memory the tree lives in: either a server-local region
// or the remote memory pool accessed through one-sided verbs.
type Mem interface {
	// ReadWords copies len(dst) words from p.
	ReadWords(p rdma.RemotePtr, dst []uint64) error
	// ReadValidated copies len(dst) words from p and then re-reads the
	// version word at p (the page's first word), in that order. It returns
	// the re-read version and whether the copy is consistent: the version
	// is unlocked and matches dst[0]. On RC transports both READs are
	// posted in one selectively-signalled doorbell batch — same-QP READs
	// complete in order, so waiting on the trailing word's completion
	// alone validates the page copy in a single exposed round trip
	// (Listing 2's page READ + version READ, fused).
	ReadValidated(p rdma.RemotePtr, dst []uint64) (version uint64, ok bool, err error)
	// WriteWords copies src to p.
	WriteWords(p rdma.RemotePtr, src []uint64) error
	// LoadWord reads the single word at p.
	LoadWord(p rdma.RemotePtr) (uint64, error)
	// CAS compares-and-swaps the word at p, returning the prior value.
	CAS(p rdma.RemotePtr, old, new uint64) (uint64, error)
	// FetchAdd atomically adds delta to the word at p, returning the prior
	// value.
	FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error)
	// AllocPage allocates an n-byte page for a node at the given level (0 =
	// leaf). The level lets placement policies distribute nodes — the
	// fine-grained design places pages round-robin across all memory
	// servers, the coarse-grained design keeps them on one server.
	AllocPage(level int, n int) (rdma.RemotePtr, error)
	// FreePage returns a page to its allocator.
	FreePage(p rdma.RemotePtr, n int) error
	// ReadPages reads the pages at ps into dst and then re-reads each
	// page's version word into versions, all in one selectively signalled
	// batch (2N entries: N page READs followed by N version READs) — the
	// head-node prefetch of Section 4.3 fused with its validation pass.
	// versions[i] corresponds to ps[i]; a prefetched copy is consistent
	// iff versions[i] == dst[i][0] and the version is unlocked.
	ReadPages(ps []rdma.RemotePtr, dst [][]uint64, versions []uint64) error
}

// validated reports the (version, ok) pair for a page copy whose version
// word re-read returned v: consistent iff unlocked and unchanged.
func validated(v uint64, dst []uint64) (uint64, bool) {
	return v, v == layout.BufVersion(dst) && !layout.IsLocked(v)
}

// LocalMem is a Mem over the local region of a single memory server. All
// pointers must target that server; this is the coarse-grained design's
// server-side view.
type LocalMem struct {
	Srv *rdma.Server
}

var _ Mem = LocalMem{}

func (m LocalMem) check(p rdma.RemotePtr) uint64 {
	if p.IsNull() {
		panic("btree: null pointer dereference")
	}
	if p.Server() != m.Srv.ID {
		panic("btree: LocalMem access to foreign server")
	}
	return p.Offset()
}

// ReadWords implements Mem.
func (m LocalMem) ReadWords(p rdma.RemotePtr, dst []uint64) error {
	m.Srv.Region.Read(m.check(p), dst)
	return nil
}

// ReadValidated implements Mem: a local copy plus a re-load of the version
// word. No batching is needed — local accesses have no round trip to hide.
func (m LocalMem) ReadValidated(p rdma.RemotePtr, dst []uint64) (uint64, bool, error) {
	off := m.check(p)
	m.Srv.Region.Read(off, dst)
	v, ok := validated(m.Srv.Region.Load(off), dst)
	return v, ok, nil
}

// WriteWords implements Mem.
func (m LocalMem) WriteWords(p rdma.RemotePtr, src []uint64) error {
	m.Srv.Region.Write(m.check(p), src)
	return nil
}

// LoadWord implements Mem.
func (m LocalMem) LoadWord(p rdma.RemotePtr) (uint64, error) {
	return m.Srv.Region.Load(m.check(p)), nil
}

// CAS implements Mem.
func (m LocalMem) CAS(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	return m.Srv.Region.CompareAndSwap(m.check(p), old, new), nil
}

// FetchAdd implements Mem.
func (m LocalMem) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	return m.Srv.Region.FetchAdd(m.check(p), delta), nil
}

// AllocPage implements Mem; pages are always placed on the local server.
func (m LocalMem) AllocPage(level int, n int) (rdma.RemotePtr, error) {
	off, err := m.Srv.Alloc.Alloc(n)
	if err != nil {
		return rdma.NullPtr, err
	}
	return rdma.MakePtr(m.Srv.ID, off), nil
}

// FreePage implements Mem.
func (m LocalMem) FreePage(p rdma.RemotePtr, n int) error {
	m.Srv.Alloc.Free(m.check(p), n)
	return nil
}

// ReadPages implements Mem.
func (m LocalMem) ReadPages(ps []rdma.RemotePtr, dst [][]uint64, versions []uint64) error {
	for i, p := range ps {
		off := m.check(p)
		m.Srv.Region.Read(off, dst[i])
		versions[i] = m.Srv.Region.Load(off)
	}
	return nil
}

// Placement chooses the memory server for a newly allocated page of a given
// level.
type Placement func(level int) int

// RoundRobin returns a placement that cycles over numServers servers
// starting at a per-client offset, implementing the paper's fine-grained
// round-robin node distribution for pages allocated at runtime (splits).
func RoundRobin(numServers, start int) Placement {
	next := start % numServers
	return func(level int) int {
		s := next
		next = (next + 1) % numServers
		return s
	}
}

// Fixed returns a placement that always allocates on one server.
func Fixed(server int) Placement {
	return func(level int) int { return server }
}

// EndpointMem is a Mem over the one-sided verbs of a compute server's
// endpoint: the fine-grained design's client-side view.
//
// EndpointMem is stateful (per-call scratch buffers keep the hot path
// allocation-free), so it is used through a pointer and must not be shared
// between goroutines — each client owns one, matching the one-QP-per-client
// connection model.
type EndpointMem struct {
	Ep    rdma.Endpoint
	Place Placement

	// Unbatched selects the paper's original Listing-2 protocol: the page
	// READ and the version READ are issued as two separate blocking verbs
	// (two exposed round trips per level). It exists as the measured
	// baseline for the doorbell-batching experiment; leave it false for
	// the fused single-round-trip protocol.
	Unbatched bool

	vbuf      [1]uint64
	batchPtrs []rdma.RemotePtr
	batchDst  [][]uint64
}

var _ Mem = (*EndpointMem)(nil)

// ReadWords implements Mem.
func (m *EndpointMem) ReadWords(p rdma.RemotePtr, dst []uint64) error {
	return m.Ep.Read(p, dst)
}

// ReadValidated implements Mem. The fused path posts the full-page READ and
// the 8-byte version READ to the same QP in one doorbell and waits only on
// the second completion: RC READs on one QP complete in order, so the page
// copy is already stable when the version word lands — one exposed round
// trip replaces Listing 2's two.
func (m *EndpointMem) ReadValidated(p rdma.RemotePtr, dst []uint64) (uint64, bool, error) {
	if m.Unbatched {
		// Paper baseline: page READ, then (only if the copy is not
		// obviously locked) a separate version READ.
		if err := m.Ep.Read(p, dst); err != nil {
			return 0, false, err
		}
		if v := layout.BufVersion(dst); layout.IsLocked(v) {
			return v, false, nil
		}
		if err := m.Ep.Read(p, m.vbuf[:]); err != nil {
			return 0, false, err
		}
		v, ok := validated(m.vbuf[0], dst)
		return v, ok, nil
	}
	m.batchPtrs = append(m.batchPtrs[:0], p, p)
	m.batchDst = append(m.batchDst[:0], dst, m.vbuf[:])
	if err := m.Ep.ReadMulti(m.batchPtrs, m.batchDst); err != nil {
		return 0, false, err
	}
	v, ok := validated(m.vbuf[0], dst)
	return v, ok, nil
}

// WriteWords implements Mem.
func (m *EndpointMem) WriteWords(p rdma.RemotePtr, src []uint64) error {
	return m.Ep.Write(p, src)
}

// LoadWord implements Mem.
func (m *EndpointMem) LoadWord(p rdma.RemotePtr) (uint64, error) {
	if err := m.Ep.Read(p, m.vbuf[:]); err != nil {
		return 0, err
	}
	return m.vbuf[0], nil
}

// CAS implements Mem.
func (m *EndpointMem) CAS(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	return m.Ep.CompareAndSwap(p, old, new)
}

// FetchAdd implements Mem.
func (m *EndpointMem) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	return m.Ep.FetchAdd(p, delta)
}

// AllocPage implements Mem using the RDMA_ALLOC verb on the server chosen by
// the placement policy.
func (m *EndpointMem) AllocPage(level int, n int) (rdma.RemotePtr, error) {
	return m.Ep.Alloc(m.Place(level), n)
}

// FreePage implements Mem.
func (m *EndpointMem) FreePage(p rdma.RemotePtr, n int) error {
	return m.Ep.Free(p, n)
}

// ReadPages implements Mem. The fused path posts all N page READs followed
// by all N version READs in one 2N-entry doorbell batch; per-server entries
// execute in posting order, so each version word is re-read after its page
// copy completed.
func (m *EndpointMem) ReadPages(ps []rdma.RemotePtr, dst [][]uint64, versions []uint64) error {
	if m.Unbatched {
		// Paper baseline: one batch for the pages, a second for the
		// version words.
		if err := m.Ep.ReadMulti(ps, dst); err != nil {
			return err
		}
		m.batchDst = m.batchDst[:0]
		for i := range ps {
			m.batchDst = append(m.batchDst, versions[i:i+1])
		}
		return m.Ep.ReadMulti(ps, m.batchDst)
	}
	m.batchPtrs = append(m.batchPtrs[:0], ps...)
	m.batchPtrs = append(m.batchPtrs, ps...)
	m.batchDst = append(m.batchDst[:0], dst...)
	for i := range ps {
		m.batchDst = append(m.batchDst, versions[i:i+1])
	}
	return m.Ep.ReadMulti(m.batchPtrs, m.batchDst)
}

// ReplicaLocalMem is a Mem over the local region of a memory server that
// serves a *replica group's* mirrored tree after a failover: the pages are
// home-addressed at Home, but their bytes live at the same (identity)
// offsets in this server's own region, per the replicated slab layout.
// Pointers addressed to either Home or the local server are accepted; both
// resolve to the local region by offset. Pages the handler allocates come
// from the local server's own allocator — and thus its own slab — so they
// are addressed at (and homed on) the local server: after a failover a
// group's tree may span pages of several groups, which routing handles
// transparently (each page's home is whatever its pointer encodes).
type ReplicaLocalMem struct {
	Srv  *rdma.Server
	Home int
}

var _ Mem = ReplicaLocalMem{}

func (m ReplicaLocalMem) check(p rdma.RemotePtr) uint64 {
	if p.IsNull() {
		panic("btree: null pointer dereference")
	}
	if s := p.Server(); s != m.Srv.ID && s != m.Home {
		panic("btree: ReplicaLocalMem access outside group")
	}
	return p.Offset()
}

// ReadWords implements Mem.
func (m ReplicaLocalMem) ReadWords(p rdma.RemotePtr, dst []uint64) error {
	m.Srv.Region.Read(m.check(p), dst)
	return nil
}

// ReadValidated implements Mem.
func (m ReplicaLocalMem) ReadValidated(p rdma.RemotePtr, dst []uint64) (uint64, bool, error) {
	off := m.check(p)
	m.Srv.Region.Read(off, dst)
	v, ok := validated(m.Srv.Region.Load(off), dst)
	return v, ok, nil
}

// WriteWords implements Mem.
func (m ReplicaLocalMem) WriteWords(p rdma.RemotePtr, src []uint64) error {
	m.Srv.Region.Write(m.check(p), src)
	return nil
}

// LoadWord implements Mem.
func (m ReplicaLocalMem) LoadWord(p rdma.RemotePtr) (uint64, error) {
	return m.Srv.Region.Load(m.check(p)), nil
}

// CAS implements Mem.
func (m ReplicaLocalMem) CAS(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	return m.Srv.Region.CompareAndSwap(m.check(p), old, new), nil
}

// FetchAdd implements Mem.
func (m ReplicaLocalMem) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	return m.Srv.Region.FetchAdd(m.check(p), delta), nil
}

// AllocPage implements Mem: new pages come from the local server's own
// slab and are addressed at the local server.
func (m ReplicaLocalMem) AllocPage(level int, n int) (rdma.RemotePtr, error) {
	off, err := m.Srv.Alloc.Alloc(n)
	if err != nil {
		return rdma.NullPtr, err
	}
	return rdma.MakePtr(m.Srv.ID, off), nil
}

// FreePage implements Mem: only locally-allocated pages can be returned;
// mirrored pages of the lost home leak until the group is rebuilt.
func (m ReplicaLocalMem) FreePage(p rdma.RemotePtr, n int) error {
	if p.Server() != m.Srv.ID {
		return nil
	}
	m.Srv.Alloc.Free(p.Offset(), n)
	return nil
}

// ReadPages implements Mem.
func (m ReplicaLocalMem) ReadPages(ps []rdma.RemotePtr, dst [][]uint64, versions []uint64) error {
	for i, p := range ps {
		off := m.check(p)
		m.Srv.Region.Read(off, dst[i])
		versions[i] = m.Srv.Region.Load(off)
	}
	return nil
}
