package btree

import (
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// This file implements the re-balancing half of the epoch garbage collector
// (Sections 3.2/4.2: the GC is "responsible for removing and re-balancing
// the index in regular intervals"): underfull leaves are merged into their
// right sibling, unlinked from the chain and their parent separator removed,
// so that space deleted away is actually reclaimed.
//
// Merging is concurrency-safe under the B-link discipline. The merged-away
// leaf A becomes a *tombstone*: empty, with its fence collapsed to its left
// neighbour's fence and its right pointer intact — any reader still routed
// to A by a stale parent copy or cached pointer finds key > fence and chases
// right into the merge target, which holds A's old entries. The tombstone
// page is only freed an epoch later, when no reader can still hold its
// pointer.

// lockPtr locks exactly the node at p (no move-right), returning a
// consistent locked copy and the pre-lock version.
func (t *Tree) lockPtr(env rdma.Env, st *Stats, p rdma.RemotePtr) (layout.Node, uint64, error) {
	var buf []uint64
	for {
		n, v, err := t.readNode(env, st, p, buf)
		if err != nil {
			return layout.Node{}, 0, err
		}
		buf = n.W
		prev, err := t.M.CAS(p, v, layout.WithLock(v))
		if err != nil {
			return layout.Node{}, 0, err
		}
		st.Atomics++
		st.ExposedRTTs++
		if prev == v {
			return n, v, nil
		}
		st.Restarts++
		st.LockRetries++
		env.Pause()
	}
}

// liveCount counts non-deleted entries of a leaf copy.
func liveCount(n layout.Node) int {
	live := 0
	for i := 0; i < n.Count(); i++ {
		if !n.LeafDeleted(i) {
			live++
		}
	}
	return live
}

// Rebalance walks the leaf chain and merges each leaf with at most minLive
// live entries into its right sibling when the combined live entries fit in
// one page. It returns the number of merges and the tombstone pages to free
// after an epoch. Like the other GC passes it must run on a single
// maintenance thread (but tolerates concurrent readers and writers).
func (t *Tree) Rebalance(env rdma.Env, minLive int) (merged int, retired []rdma.RemotePtr, st Stats, err error) {
	if minLive < 0 {
		minLive = t.L.LeafCap / 4
	}
	pPtr, pNode, _, err := t.descendToLeaf(env, &st, 0)
	if err != nil {
		return 0, nil, st, err
	}
	// Three page buffers rotate through the P/A/B window: on advance the old
	// P buffer is recycled for the next A read.
	pBuf := pNode.W
	var aBuf, bBuf []uint64
	for {
		aPtr := pNode.Right()
		if aPtr.IsNull() {
			return merged, retired, st, nil
		}
		aNode, _, err := t.readNode(env, &st, aPtr, aBuf)
		if err != nil {
			return merged, retired, st, err
		}
		aBuf = aNode.W
		if aNode.IsHead() || pNode.IsHead() {
			// Cannot splice across head nodes; advance.
			pPtr, pNode = aPtr, aNode
			pBuf, aBuf = aBuf, pBuf
			continue
		}
		bPtr := aNode.Right()
		if bPtr.IsNull() {
			return merged, retired, st, nil
		}
		bNode, _, err := t.readNode(env, &st, bPtr, bBuf)
		if err != nil {
			return merged, retired, st, err
		}
		bBuf = bNode.W
		if bNode.IsHead() {
			pPtr, pNode = aPtr, aNode
			pBuf, aBuf = aBuf, pBuf
			continue
		}
		// Cheap pre-check on the consistent copies.
		if liveCount(aNode) > minLive || liveCount(aNode)+liveCount(bNode) > t.L.LeafCap {
			pPtr, pNode = aPtr, aNode
			pBuf, aBuf = aBuf, pBuf
			continue
		}
		ok, err := t.tryMerge(env, &st, pPtr, aPtr, bPtr, minLive, &retired)
		if err != nil {
			return merged, retired, st, err
		}
		if ok {
			merged++
		}
		// Re-read P (its right pointer changed on success, or the race made
		// our copies stale) and continue from it.
		if pNode, _, err = t.readNode(env, &st, pPtr, pBuf); err != nil {
			return merged, retired, st, err
		}
		pBuf = pNode.W
	}
}

// tryMerge locks P -> A -> B (left-to-right; safe against single-node
// lockers), revalidates the topology, and merges A into B.
func (t *Tree) tryMerge(env rdma.Env, st *Stats, pPtr, aPtr, bPtr rdma.RemotePtr, minLive int, retired *[]rdma.RemotePtr) (bool, error) {
	p, pv, err := t.lockPtr(env, st, pPtr)
	if err != nil {
		return false, err
	}
	if p.IsHead() || p.Right() != aPtr {
		return false, t.unlockNoChange(st, pPtr, pv)
	}
	a, av, err := t.lockPtr(env, st, aPtr)
	if err != nil {
		t.abortUnlock(st, pPtr, pv)
		return false, err
	}
	if !a.IsLeaf() || a.Right() != bPtr {
		if err := t.unlockNoChange(st, aPtr, av); err != nil {
			t.abortUnlock(st, pPtr, pv)
			return false, err
		}
		return false, t.unlockNoChange(st, pPtr, pv)
	}
	b, bv, err := t.lockPtr(env, st, bPtr)
	if err != nil {
		t.abortUnlock(st, aPtr, av)
		t.abortUnlock(st, pPtr, pv)
		return false, err
	}
	liveA := liveCount(a)
	if !b.IsLeaf() || liveA > minLive || liveA+liveCount(b) > t.L.LeafCap {
		if err := t.unlockNoChange(st, bPtr, bv); err != nil {
			t.abortUnlock(st, aPtr, av)
			t.abortUnlock(st, pPtr, pv)
			return false, err
		}
		if err := t.unlockNoChange(st, aPtr, av); err != nil {
			t.abortUnlock(st, pPtr, pv)
			return false, err
		}
		return false, t.unlockNoChange(st, pPtr, pv)
	}
	oldHighA := a.HighKey()

	// Build B's merged content: A's live entries then B's live entries.
	mergedNode := t.L.NewNode()
	mergedNode.InitLeaf()
	for i := 0; i < a.Count(); i++ {
		if !a.LeafDeleted(i) {
			mergedNode.LeafAppend(a.LeafKey(i), a.LeafValue(i))
		}
	}
	for i := 0; i < b.Count(); i++ {
		if !b.LeafDeleted(i) {
			mergedNode.LeafAppend(b.LeafKey(i), b.LeafValue(i))
		}
	}
	mergedNode.SetHighKey(b.HighKey())
	mergedNode.SetRight(b.Right())
	mergedNode.SetLeft(pPtr)
	copy(b.W[1:], mergedNode.W[1:])

	// A becomes a tombstone: empty, fence collapsed to P's fence so stale
	// readers chase right into B, chain pointer intact.
	for i := 0; i < a.Count(); i++ {
		a.SetLeafDeleted(i, false)
	}
	a.SetCount(0)
	a.SetHighKey(p.HighKey())

	// Splice A out of the chain.
	p.SetRight(bPtr)

	if err := t.unlockBump(env, st, bPtr, b, bv); err != nil {
		// A's and P's bodies are still unpublished, so restoring their
		// pre-lock version words leaves the chain exactly as found.
		t.abortUnlock(st, aPtr, av)
		t.abortUnlock(st, pPtr, pv)
		return false, err
	}
	if err := t.unlockBump(env, st, aPtr, a, av); err != nil {
		t.abortUnlock(st, pPtr, pv)
		return false, err
	}
	if err := t.unlockBump(env, st, pPtr, p, pv); err != nil {
		return false, err
	}
	// Remove A's separator from the parent level. Only if the parent entry
	// is gone may the tombstone page ever be freed.
	removedPair, err := t.removeSeparator(env, st, 1, oldHighA, aPtr)
	if err != nil {
		return false, err
	}
	if removedPair {
		*retired = append(*retired, aPtr)
	}
	return true, nil
}

// removeSeparator deletes the parent pair pointing at child on the given
// level, located by routing routeKey and walking right. It declines (returns
// false) when the pair's node would become empty — the child then stays
// referenced as a reachable tombstone.
func (t *Tree) removeSeparator(env rdma.Env, st *Stats, level int, routeKey layout.Key, child rdma.RemotePtr) (bool, error) {
	rootPtr, err := t.refreshRoot(st)
	if err != nil {
		return false, err
	}
	n, _, err := t.readNode(env, st, rootPtr, nil)
	if err != nil {
		return false, err
	}
	if n.Level() < level {
		return false, nil
	}
	p := rootPtr
	for n.Level() > level {
		if n.IsHead() || routeKey > n.HighKey() {
			p = n.Right()
		} else if c, ok := n.InnerRoute(routeKey); ok {
			p = c
		} else {
			p = n.Right()
		}
		if p.IsNull() {
			return false, nil
		}
		if n, _, err = t.readNode(env, st, p, n.W); err != nil {
			return false, err
		}
	}
	// Walk right locating the pair with the target child.
	for {
		var pre uint64
		n, pre, err = t.lockPtr(env, st, p)
		if err != nil {
			return false, err
		}
		for i := 0; i < n.Count(); i++ {
			if n.InnerChild(i) == child {
				if n.Count() < 2 {
					return false, t.unlockNoChange(st, p, pre)
				}
				n.InnerRemovePair(i)
				// Removing the last pair shrinks the node's coverage; lower
				// the fence so lastSep == fence stays invariant (searches
				// for the vacated range chase right).
				if last := n.InnerKey(n.Count() - 1); last < n.HighKey() {
					n.SetHighKey(last)
				}
				return true, t.unlockBump(env, st, p, n, pre)
			}
		}
		next := n.Right()
		if err := t.unlockNoChange(st, p, pre); err != nil {
			return false, err
		}
		if next.IsNull() {
			return false, nil
		}
		p = next
	}
}

// CompactFrom runs the delete-bit compaction pass over the leaf chain
// starting at leafPtr — the entry point the hybrid design's global GC uses
// after obtaining a partition's leftmost leaf via the traversal RPC.
func (t *Tree) CompactFrom(env rdma.Env, leafPtr rdma.RemotePtr) (removed int, st Stats, err error) {
	p := leafPtr
	var buf []uint64
	for !p.IsNull() {
		n, _, err := t.readNode(env, &st, p, buf)
		if err != nil {
			return removed, st, err
		}
		buf = n.W
		if n.IsHead() {
			p = n.Right()
			continue
		}
		dirty := false
		for i := 0; i < n.Count(); i++ {
			if n.LeafDeleted(i) {
				dirty = true
				break
			}
		}
		if !dirty {
			p = n.Right()
			continue
		}
		ln, pre, err := t.lockPtr(env, &st, p)
		if err != nil {
			return removed, st, err
		}
		if !ln.IsLeaf() {
			if err := t.unlockNoChange(&st, p, pre); err != nil {
				return removed, st, err
			}
			p = ln.Right()
			continue
		}
		r := ln.LeafCompact()
		removed += r
		if r > 0 {
			err = t.unlockBump(env, &st, p, ln, pre)
		} else {
			err = t.unlockNoChange(&st, p, pre)
		}
		if err != nil {
			return removed, st, err
		}
		p = ln.Right()
	}
	return removed, st, nil
}
