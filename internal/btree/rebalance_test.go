package btree

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

func TestRebalanceMergesUnderfullLeaves(t *testing.T) {
	tr, _ := newRemoteTree(t, 512, 4)
	const n = 20000
	if _, err := tr.Build(env, BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	// Delete 90% of the entries, then compact: most leaves become underfull.
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			continue
		}
		if ok, _, err := tr.Delete(env, uint64(i), uint64(i)); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if _, _, err := tr.Compact(env); err != nil {
		t.Fatal(err)
	}
	merged, retired, _, err := tr.Rebalance(env, -1)
	if err != nil {
		t.Fatal(err)
	}
	if merged < 100 {
		t.Fatalf("merged only %d leaves", merged)
	}
	if len(retired) == 0 {
		t.Fatal("no tombstones retired")
	}
	live, err := tr.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != n/10 {
		t.Fatalf("live = %d; want %d", live, n/10)
	}
	// Every surviving key still found; every deleted key absent.
	for i := 0; i < n; i += 7 {
		vals, _, err := tr.Lookup(env, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if i%10 == 0 {
			want = 1
		}
		if len(vals) != want {
			t.Fatalf("Lookup(%d) = %v; want %d values", i, vals, want)
		}
	}
	// Scans see exactly the survivors, in order.
	count, prev := 0, uint64(0)
	if _, err := tr.Scan(env, 0, layout.MaxKey-1, func(k layout.Key, v uint64) bool {
		if count > 0 && k <= prev {
			t.Fatalf("scan order broken: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n/10 {
		t.Fatalf("scan saw %d; want %d", count, n/10)
	}
	// Freeing the tombstones an epoch later is safe.
	if err := tr.FreeRetired(retired); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceIdempotentWhenFull(t *testing.T) {
	tr := newLocalTree(t, 512)
	const n = 5000
	if _, err := tr.Build(env, BuildConfig{Fill: 0.9}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	merged, _, _, err := tr.Rebalance(env, -1)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 0 {
		t.Fatalf("merged %d well-filled leaves", merged)
	}
}

func TestRebalanceWithHeadNodesSkipsAcrossThem(t *testing.T) {
	tr2, _ := newRemoteTree(t, 512, 4)
	const n = 8000
	if _, err := tr2.Build(env, BuildConfig{HeadEvery: 8}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i%8 != 0 {
			if _, _, err := tr2.Delete(env, uint64(i), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := tr2.Compact(env); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tr2.Rebalance(env, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.CheckInvariants(env); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := tr2.Scan(env, 0, layout.MaxKey-1, func(layout.Key, uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n/8 {
		t.Fatalf("scan saw %d; want %d", count, n/8)
	}
}

// TestRebalanceConcurrentWithClients runs the GC pass while clients keep
// reading and writing.
func TestRebalanceConcurrentWithClients(t *testing.T) {
	f := direct.New(4, testRegion, 64)
	l := layout.New(256)
	root := rdma.MakePtr(0, 0)
	boot := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, 0)}, root)
	const n = 10000
	if _, err := boot.Build(env, BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i * 2), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	// Punch holes so there is something to merge.
	for i := 0; i < n; i++ {
		if i%5 != 0 {
			if _, _, err := boot.Delete(env, uint64(i*2), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := boot.Compact(env); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	inserted := make([]int, 4)
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, c)}, root)
			e := direct.Env{}
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					k := uint64(n*4 + c*1000000 + i) // fresh keys on the right
					if _, err := tr.Insert(e, k, k); err != nil {
						t.Error(err)
						return
					}
					inserted[c]++
				default:
					k := uint64(rng.Intn(n) * 2)
					if _, _, err := tr.Lookup(e, k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	// GC thread: several rebalance passes concurrent with the clients.
	var allRetired []rdma.RemotePtr
	for round := 0; round < 3; round++ {
		_, retired, _, err := boot.Rebalance(env, -1)
		if err != nil {
			t.Fatal(err)
		}
		allRetired = append(allRetired, retired...)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	total := n / 5
	for _, x := range inserted {
		total += x
	}
	live, err := boot.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != total {
		t.Fatalf("live = %d; want %d", live, total)
	}
	// Tombstones freed only after the epoch (i.e. now, when clients are done).
	if err := boot.FreeRetired(allRetired); err != nil {
		t.Fatal(err)
	}
}

func TestCompactFromMatchesCompact(t *testing.T) {
	tr := newLocalTree(t, 512)
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := tr.Insert(env, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		if _, _, err := tr.Delete(env, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	leaf, _, err := tr.FindLeaf(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed, _, err := tr.CompactFrom(env, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if removed != n/2 {
		t.Fatalf("removed = %d; want %d", removed, n/2)
	}
	if _, err := tr.CheckInvariants(env); err != nil {
		t.Fatal(err)
	}
}

// failMem wraps a Mem and injects errors against designated pages: CAS
// failures hit the lock-acquire path, body-write failures hit the publish
// path of unlockBump.
type failMem struct {
	Mem
	failCAS   rdma.RemotePtr
	failWrite rdma.RemotePtr
}

func (m *failMem) CAS(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	if !m.failCAS.IsNull() && p == m.failCAS {
		return 0, errors.New("injected CAS failure")
	}
	return m.Mem.CAS(p, old, new)
}

func (m *failMem) WriteWords(p rdma.RemotePtr, src []uint64) error {
	if !m.failWrite.IsNull() && p == m.failWrite.Add(8) {
		return errors.New("injected write failure")
	}
	return m.Mem.WriteWords(p, src)
}

// adjacentLeaves walks the leaf chain and returns the first three adjacent
// leaf pages P -> A -> B.
func adjacentLeaves(t *testing.T, tr *Tree) (pPtr, aPtr, bPtr rdma.RemotePtr) {
	t.Helper()
	var st Stats
	cur, _, _, err := tr.descendToLeaf(env, &st, 0)
	if err != nil {
		t.Fatal(err)
	}
	for !cur.IsNull() {
		cn, _, err := tr.readNode(env, &st, cur, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cn.IsLeaf() && !cn.Right().IsNull() {
			an, _, err := tr.readNode(env, &st, cn.Right(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if an.IsLeaf() && !an.Right().IsNull() {
				bn, _, err := tr.readNode(env, &st, an.Right(), nil)
				if err != nil {
					t.Fatal(err)
				}
				if bn.IsLeaf() {
					return cur, cn.Right(), an.Right()
				}
			}
		}
		cur = cn.Right()
	}
	t.Fatal("no three adjacent leaves in the chain")
	return
}

// mustUnlocked fails the test when the page's version word still carries the
// lock bit.
func mustUnlocked(t *testing.T, tr *Tree, p rdma.RemotePtr, name string) {
	t.Helper()
	v, err := tr.M.LoadWord(p)
	if err != nil {
		t.Fatal(err)
	}
	if layout.IsLocked(v) {
		t.Fatalf("%s's lock bit leaked after failed merge (version word %#x)", name, v)
	}
}

// Regression for a leak found by rdmavet's lockpaired analyzer: when locking
// A (or publishing B) fails mid-merge, tryMerge returned the error with the
// locks it already held still set, stalling every later writer of those
// pages until its spin budget aborts.
func TestTryMergeReleasesLocksOnError(t *testing.T) {
	tr, _ := newRemoteTree(t, 512, 4)
	const n = 4000
	if _, err := tr.Build(env, BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	// Underfill the leaves so the merge pre-checks pass.
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			continue
		}
		if _, _, err := tr.Delete(env, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pPtr, aPtr, bPtr := adjacentLeaves(t, tr)
	inner := tr.M
	// A leaked lock must surface as ErrSpinBudget, not an infinite spin.
	tr.SpinBudget = 256

	t.Run("lock A fails", func(t *testing.T) {
		tr.M = &failMem{Mem: inner, failCAS: aPtr}
		var st Stats
		ok, err := tr.tryMerge(env, &st, pPtr, aPtr, bPtr, tr.L.LeafCap, new([]rdma.RemotePtr))
		tr.M = inner
		if err == nil || ok {
			t.Fatalf("tryMerge = %v, %v; want injected error", ok, err)
		}
		mustUnlocked(t, tr, pPtr, "P")
		if _, err := tr.CheckInvariants(env); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("publish B fails", func(t *testing.T) {
		tr.M = &failMem{Mem: inner, failWrite: bPtr}
		var st Stats
		ok, err := tr.tryMerge(env, &st, pPtr, aPtr, bPtr, tr.L.LeafCap, new([]rdma.RemotePtr))
		tr.M = inner
		if err == nil || ok {
			t.Fatalf("tryMerge = %v, %v; want injected error", ok, err)
		}
		mustUnlocked(t, tr, pPtr, "P")
		mustUnlocked(t, tr, aPtr, "A")
		mustUnlocked(t, tr, bPtr, "B")
		if _, err := tr.CheckInvariants(env); err != nil {
			t.Fatal(err)
		}
	})
}
