package btree

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

func TestRebalanceMergesUnderfullLeaves(t *testing.T) {
	tr, _ := newRemoteTree(t, 512, 4)
	const n = 20000
	if _, err := tr.Build(env, BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	// Delete 90% of the entries, then compact: most leaves become underfull.
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			continue
		}
		if ok, _, err := tr.Delete(env, uint64(i), uint64(i)); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if _, _, err := tr.Compact(env); err != nil {
		t.Fatal(err)
	}
	merged, retired, _, err := tr.Rebalance(env, -1)
	if err != nil {
		t.Fatal(err)
	}
	if merged < 100 {
		t.Fatalf("merged only %d leaves", merged)
	}
	if len(retired) == 0 {
		t.Fatal("no tombstones retired")
	}
	live, err := tr.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != n/10 {
		t.Fatalf("live = %d; want %d", live, n/10)
	}
	// Every surviving key still found; every deleted key absent.
	for i := 0; i < n; i += 7 {
		vals, _, err := tr.Lookup(env, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if i%10 == 0 {
			want = 1
		}
		if len(vals) != want {
			t.Fatalf("Lookup(%d) = %v; want %d values", i, vals, want)
		}
	}
	// Scans see exactly the survivors, in order.
	count, prev := 0, uint64(0)
	if _, err := tr.Scan(env, 0, layout.MaxKey-1, func(k layout.Key, v uint64) bool {
		if count > 0 && k <= prev {
			t.Fatalf("scan order broken: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n/10 {
		t.Fatalf("scan saw %d; want %d", count, n/10)
	}
	// Freeing the tombstones an epoch later is safe.
	if err := tr.FreeRetired(retired); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceIdempotentWhenFull(t *testing.T) {
	tr := newLocalTree(t, 512)
	const n = 5000
	if _, err := tr.Build(env, BuildConfig{Fill: 0.9}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	merged, _, _, err := tr.Rebalance(env, -1)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 0 {
		t.Fatalf("merged %d well-filled leaves", merged)
	}
}

func TestRebalanceWithHeadNodesSkipsAcrossThem(t *testing.T) {
	tr2, _ := newRemoteTree(t, 512, 4)
	const n = 8000
	if _, err := tr2.Build(env, BuildConfig{HeadEvery: 8}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i%8 != 0 {
			if _, _, err := tr2.Delete(env, uint64(i), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := tr2.Compact(env); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tr2.Rebalance(env, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.CheckInvariants(env); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := tr2.Scan(env, 0, layout.MaxKey-1, func(layout.Key, uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n/8 {
		t.Fatalf("scan saw %d; want %d", count, n/8)
	}
}

// TestRebalanceConcurrentWithClients runs the GC pass while clients keep
// reading and writing.
func TestRebalanceConcurrentWithClients(t *testing.T) {
	f := direct.New(4, testRegion, 64)
	l := layout.New(256)
	root := rdma.MakePtr(0, 0)
	boot := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, 0)}, root)
	const n = 10000
	if _, err := boot.Build(env, BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i * 2), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	// Punch holes so there is something to merge.
	for i := 0; i < n; i++ {
		if i%5 != 0 {
			if _, _, err := boot.Delete(env, uint64(i*2), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := boot.Compact(env); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	inserted := make([]int, 4)
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, c)}, root)
			e := direct.Env{}
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					k := uint64(n*4 + c*1000000 + i) // fresh keys on the right
					if _, err := tr.Insert(e, k, k); err != nil {
						t.Error(err)
						return
					}
					inserted[c]++
				default:
					k := uint64(rng.Intn(n) * 2)
					if _, _, err := tr.Lookup(e, k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	// GC thread: several rebalance passes concurrent with the clients.
	var allRetired []rdma.RemotePtr
	for round := 0; round < 3; round++ {
		_, retired, _, err := boot.Rebalance(env, -1)
		if err != nil {
			t.Fatal(err)
		}
		allRetired = append(allRetired, retired...)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	total := n / 5
	for _, x := range inserted {
		total += x
	}
	live, err := boot.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != total {
		t.Fatalf("live = %d; want %d", live, total)
	}
	// Tombstones freed only after the epoch (i.e. now, when clients are done).
	if err := boot.FreeRetired(allRetired); err != nil {
		t.Fatal(err)
	}
}

func TestCompactFromMatchesCompact(t *testing.T) {
	tr := newLocalTree(t, 512)
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := tr.Insert(env, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		if _, _, err := tr.Delete(env, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	leaf, _, err := tr.FindLeaf(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed, _, err := tr.CompactFrom(env, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if removed != n/2 {
		t.Fatalf("removed = %d; want %d", removed, n/2)
	}
	if _, err := tr.CheckInvariants(env); err != nil {
		t.Fatal(err)
	}
}
