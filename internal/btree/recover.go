package btree

import (
	"fmt"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// RecoverLocks sweeps the tree for lock bits abandoned by clients that died —
// or lost their memory server — between locking a page and completing the
// unlock, and releases them. It must run quiesced (no concurrent clients):
// this is the repair an operator or a recovery process runs after a fault
// episode, before readmitting traffic, and it is what the chaos harness runs
// before its post-run verification sweep.
//
// The sweep reads pages raw (plain ReadWords, no version validation — a
// validating read would spin forever on exactly the pages it is here to
// repair) and releases each held lock by replaying the missing unlock
// FETCH_AND_ADD as a CAS(v, v+1): bit 0 clears and the version advances past
// every snapshot taken before the lock, so a page whose new body was
// published but whose unlock never completed invalidates stale readers
// exactly as the original unlock would have. A page whose body write never
// executed (the fault model guarantees a failed verb never reached memory)
// still carries its old, consistent body; advancing its version is harmless.
//
// Orphan pages — allocated for a split that died before linking them — are
// unreachable from the chains and stay untouched; they leak space, not
// consistency, and the global GC's epoch sweep is the place that reclaims
// them. Returns the number of locks released.
func (t *Tree) RecoverLocks() (cleared int, err error) {
	var st Stats
	rootPtr, err := t.refreshRoot(&st)
	if err != nil {
		return 0, err
	}
	buf := make([]uint64, t.L.Words)
	if err := t.M.ReadWords(rootPtr, buf); err != nil {
		return 0, err
	}
	root := t.L.Wrap(buf)
	levelStart := rootPtr
	for lvl := root.Level(); lvl >= 0; lvl-- {
		p := levelStart
		next := rdma.NullPtr
		for !p.IsNull() {
			if err := t.M.ReadWords(p, buf); err != nil {
				return cleared, err
			}
			n := t.L.Wrap(buf)
			if v := layout.BufVersion(buf); layout.IsLocked(v) {
				prev, cerr := t.M.CAS(p, v, v+1)
				if cerr != nil {
					return cleared, cerr
				}
				if prev != v {
					return cleared, fmt.Errorf("btree: page %v changed under lock recovery (tree not quiesced)", p)
				}
				cleared++
			}
			if next.IsNull() && lvl > 0 && !n.IsHead() && n.Count() > 0 {
				next = n.InnerChild(0)
			}
			p = n.Right()
		}
		if lvl > 0 && next.IsNull() {
			return cleared, fmt.Errorf("btree: lock recovery found no child below level %d", lvl)
		}
		levelStart = next
	}
	return cleared, nil
}
