package btree

import "github.com/namdb/rdmatree/internal/rdma"

// Replicator receives the tree's page post-images at exactly the points
// where they become visible to readers, so a replication layer can mirror
// them onto backup servers. The tree itself stays replication-agnostic: it
// reports *what* committed (pointer, full post-image, published version) and
// the Replicator decides where the copies go and how failover epochs fence
// stale pushes (internal/rdma/repl implements the client-side mirror
// protocol; the coarse/hybrid RPC handlers implement a recording variant
// whose captured images the remote client pushes before acking).
//
// Contract: every method is called by the single goroutine owning the Tree
// handle, after the image is durably published on the primary and before the
// operation acks. The image slice is only valid for the duration of the
// call. A non-nil error makes the surrounding operation fail un-acked (the
// primary copy stays committed — re-running the operation is idempotent
// under core.Recovered's presence check).
type Replicator interface {
	// MirrorPage mirrors the post-image of an in-place page update. img is
	// the full page with the version word already holding the published
	// (post-unlock) version, which the mirror protocol uses to order
	// concurrent pushes of the same page: a backup already at a version
	// >= this one supersedes the push.
	MirrorPage(p rdma.RemotePtr, img []uint64) error

	// MirrorFresh mirrors a freshly allocated page that has never been
	// published (split right halves, new roots, the Init leaf). Fresh pages
	// start at version 0, so the versioned skip of MirrorPage would wrongly
	// treat them as superseded; the mirror writes them blind. Safe because
	// the page is not yet reachable by readers and allocator pointers are
	// unique.
	MirrorFresh(p rdma.RemotePtr, img []uint64) error

	// MirrorWord mirrors a root-pointer word update. Stale root words on
	// backups are benign in a B-link tree (descents recover through
	// right-sibling links), so implementations may apply this blind.
	MirrorWord(p rdma.RemotePtr, val uint64) error
}
