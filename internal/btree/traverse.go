package btree

import (
	"errors"
	"fmt"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// This file implements the sans-I/O side of the asynchronous pipelined
// dataplane: a Traversal is one index operation (lookup, insert or delete)
// expressed as a resumable state machine. Instead of blocking on each verb
// like the serial paths in tree.go, a Traversal *posts* the verbs of its next
// step into a PostSink and suspends; when the completions arrive (typically
// polled in one doorbell batch together with the verbs of many other
// in-flight operations), Step advances the machine by exactly one protocol
// step. The protocol itself — fused validated reads, right-moves past heads
// and outgrown fences, lock CAS on the pre-read version, body write plus
// unlock-and-bump FAA — is the same B-link protocol as the serial paths, and
// the Stats accounting matches verb for verb.
//
// One deliberate divergence, a pure round-trip optimization: the serial
// write paths lock through lockNodeForKey, which re-reads the page even
// though the descent just produced a validated copy. The state machine CASes
// the lock directly on the version of its validated descent copy; a CAS win
// proves the page is unchanged since that copy, so the copy is current —
// exactly the currency guarantee lockNodeForKey's re-read establishes. A CAS
// loss falls back to re-reading, which is the serial path's loop.
//
// Structural changes (leaf splits) are not pipelined: they are rare,
// multi-page critical sections, and the serial path already handles every
// race. A Traversal that would split reports StepNeedSerial *before taking
// the lock*, and the owner runs the whole operation through the serial
// Tree.Insert. Nothing has been published at that point, so the serial rerun
// is exactly-once.

// PostSink receives the verbs a Traversal wants posted. The engine driving
// the traversal implements it by forwarding to an rdma.AsyncEndpoint and
// remembering which traversal posted what; completions must be delivered
// back to Step in posting order. All verbs of one Step call are posted
// consecutively, so one traversal's completions for a step are contiguous.
type PostSink interface {
	PostRead(p rdma.RemotePtr, dst []uint64)
	PostWrite(p rdma.RemotePtr, src []uint64)
	PostCAS(p rdma.RemotePtr, old, new uint64)
	PostFetchAdd(p rdma.RemotePtr, delta uint64)
}

// TraversalOp selects the operation a Traversal performs.
type TraversalOp uint8

const (
	TravLookup TraversalOp = iota + 1
	TravInsert
	TravDelete
)

// StepStatus is the scheduling outcome of one Step call.
type StepStatus uint8

const (
	// StepRunning: verbs were posted; call Step again with their completions.
	StepRunning StepStatus = iota
	// StepDone: the operation completed; results are in Values/Found/St.
	StepDone
	// StepBlocked: a verb failed with rdma.ErrQPError. The owner must
	// re-establish the queue pair to Server (rdma.Reconnector), then call
	// Redo to repost the interrupted step.
	StepBlocked
	// StepNeedSerial: the operation requires a structural change (leaf
	// split). No lock is held and nothing was published; the owner runs the
	// whole operation through the serial path instead.
	StepNeedSerial
	// StepFailed: the operation failed; Err is set. Any lock the traversal
	// held was released (or is unreachable along with its server).
	StepFailed
)

// StepResult is the outcome of one Step/Redo/Abort call.
type StepResult struct {
	Status StepStatus
	// Server is the QP-errored server when Status is StepBlocked.
	Server int
	// Err is set when Status is StepFailed (and carries the triggering verb
	// error when Status is StepBlocked).
	Err error
}

// stepRetryBudget bounds per-step transient-failure reposts. It mirrors the
// serial stack's retry.Policy.MaxAttempts (default 8): there, every blocking
// verb is wrapped in a bounded retry loop; here, the step is the retry unit.
const stepRetryBudget = 8

type travPhase uint8

const (
	phIdle     travPhase = iota
	phStart              // Begin called; nothing posted yet
	phRoot               // root-word read posted
	phPage               // fused page+version-word read posted
	phLock               // lock CAS posted
	phWrite              // body write posted (lock held)
	phUnlock             // unlock-and-bump FAA posted (body published)
	phUnlockNC           // no-change unlock CAS posted (lock held, body unchanged)
)

type travMode uint8

const (
	modeDescend travMode = iota // root-to-leaf descent
	modeCollect                 // lookup: duplicate spill right-walk
	modeChase                   // insert/delete: leaf-chain lock walk
)

// Traversal is one resumable index operation. It is owned by a single
// engine slot; all buffers are pre-allocated at construction so steady-state
// operation is allocation-free. The *Tree handle is shared with the serial
// paths (layout, root cache, spin budget) but the traversal never touches
// the handle's scratch buffers.
type Traversal struct {
	t   *Tree
	env rdma.Env

	// Op/Key/Value identify the current operation (set by Begin).
	Op    TraversalOp
	Key   layout.Key
	Value uint64

	// Results, valid when Step returned StepDone. Values aliases a
	// per-traversal buffer reused by the next Begin.
	Values []uint64
	Found  bool
	St     Stats

	phase     travPhase
	mode      travMode
	p         rdma.RemotePtr // page the current step targets
	depth     int
	ver       uint64 // validated version of pageBuf; pre-lock version once locked
	moveRight bool
	next      rdma.RemotePtr

	stepTries   int
	unlockTries int
	pauseWanted bool

	pageBuf []uint64
	vbuf    [1]uint64
	rootBuf [1]uint64
}

// NewTraversal allocates a traversal slot against the given tree handle.
func NewTraversal(t *Tree, env rdma.Env) *Traversal {
	return &Traversal{
		t:       t,
		env:     env,
		pageBuf: make([]uint64, t.L.Words),
		Values:  make([]uint64, 0, 4),
	}
}

// Begin arms the traversal for a new operation. The previous operation's
// results are invalidated. Call Step with no completions to post the first
// verbs.
func (tr *Traversal) Begin(op TraversalOp, key layout.Key, value uint64) {
	tr.Op = op
	tr.Key = key
	tr.Value = value
	tr.Values = tr.Values[:0]
	tr.Found = false
	tr.St = Stats{}
	tr.phase = phStart
	tr.mode = modeDescend
	tr.depth = 0
	tr.stepTries = 0
	tr.unlockTries = 0
	tr.moveRight = false
}

// TakePause reports whether the traversal wants a backoff pause (it hit a
// consistency restart or a transient verb failure since the last call) and
// clears the flag. The engine coalesces pauses: one env.Pause per scheduling
// round however many traversals requested one.
func (tr *Traversal) TakePause() bool {
	w := tr.pauseWanted
	tr.pauseWanted = false
	return w
}

// Step advances the machine. comps are the completions of exactly the verbs
// the previous Step/Redo posted, in posting order; pass nil on the first
// call after Begin. When the result is StepRunning, new verbs were posted
// into sink.
func (tr *Traversal) Step(comps []rdma.Completion, sink PostSink) StepResult {
	switch tr.phase {
	case phStart:
		if tr.Op == TravInsert && tr.Key == layout.MaxKey {
			return tr.fail(ErrKeyReserved)
		}
		if tr.t.cachedRoot.IsNull() {
			return tr.postRoot(sink)
		}
		tr.p = tr.t.cachedRoot
		tr.depth = 1
		return tr.postPage(sink)
	case phRoot:
		tr.expect(comps, 1)
		return tr.handleRoot(comps[0], sink)
	case phPage:
		tr.expect(comps, 2)
		return tr.handlePage(comps, sink)
	case phLock:
		tr.expect(comps, 1)
		return tr.handleLock(comps[0], sink)
	case phWrite:
		tr.expect(comps, 1)
		return tr.handleWrite(comps[0], sink)
	case phUnlock:
		tr.expect(comps, 1)
		return tr.handleUnlock(comps[0], sink)
	case phUnlockNC:
		tr.expect(comps, 1)
		return tr.handleUnlockNC(comps[0], sink)
	}
	panic("btree: Step on idle traversal")
}

// Redo reposts the interrupted step after the owner handled a StepBlocked
// (queue pair re-established). The retry budget is not reset: a server that
// keeps flushing QPs eventually fails the operation.
func (tr *Traversal) Redo(sink PostSink) StepResult {
	switch tr.phase {
	case phRoot:
		sink.PostRead(tr.t.RootWord, tr.rootBuf[:])
	case phPage:
		sink.PostRead(tr.p, tr.pageBuf)
		sink.PostRead(tr.p, tr.vbuf[:])
	case phLock:
		sink.PostCAS(tr.p, tr.ver, layout.WithLock(tr.ver))
	case phWrite:
		sink.PostWrite(tr.p.Add(8), tr.pageBuf[1:])
	case phUnlock:
		sink.PostFetchAdd(tr.p, 1)
	case phUnlockNC:
		sink.PostCAS(tr.p, layout.WithLock(tr.ver), tr.ver)
	default:
		panic("btree: Redo with no step outstanding")
	}
	return StepResult{Status: StepRunning}
}

// Abort gives up on the operation (the owner exhausted reconnect attempts).
// If the traversal holds a lock on a page whose body it has not modified,
// the lock is released best-effort through the blocking path; once the body
// write is published the page stays locked (same contract as the serial
// unlockBump: restoring the pre-lock version would validate readers'
// pre-write snapshots against the new body).
func (tr *Traversal) Abort(err error) StepResult {
	switch tr.phase {
	case phWrite, phUnlockNC:
		tr.t.abortUnlock(&tr.St, tr.p, tr.ver)
	case phUnlock:
		err = fmt.Errorf("btree: unlock of %v abandoned (page stays locked): %w", tr.p, err)
	}
	return tr.fail(err)
}

// Server returns the memory server the current step targets — the reconnect
// target after StepBlocked.
func (tr *Traversal) Server() int {
	if tr.phase == phRoot {
		return tr.t.RootWord.Server()
	}
	return tr.p.Server()
}

func (tr *Traversal) fail(err error) StepResult {
	tr.phase = phIdle
	return StepResult{Status: StepFailed, Err: err}
}

func (tr *Traversal) done() StepResult {
	tr.phase = phIdle
	return StepResult{Status: StepDone}
}

func (tr *Traversal) needSerial() StepResult {
	tr.phase = phIdle
	return StepResult{Status: StepNeedSerial}
}

func (tr *Traversal) expect(comps []rdma.Completion, n int) {
	if len(comps) != n {
		panic(fmt.Sprintf("btree: step delivered %d completions, want %d", len(comps), n))
	}
}

// stepError classifies a failed completion for the current step: QP errors
// block pending reconnect, other transient failures repost within the step
// budget, permanent failures fail the operation.
func (tr *Traversal) stepError(err error, sink PostSink) StepResult {
	if errors.Is(err, rdma.ErrQPError) {
		return StepResult{Status: StepBlocked, Server: tr.Server(), Err: err}
	}
	if rdma.IsTransient(err) {
		tr.stepTries++
		if tr.stepTries < stepRetryBudget {
			tr.pauseWanted = true
			return tr.Redo(sink)
		}
		return tr.fail(fmt.Errorf("btree: %d attempts exhausted: %w", tr.stepTries, err))
	}
	return tr.fail(err)
}

// --- posting helpers ------------------------------------------------------

func (tr *Traversal) postRoot(sink PostSink) StepResult {
	tr.phase = phRoot
	tr.stepTries = 0
	sink.PostRead(tr.t.RootWord, tr.rootBuf[:])
	return StepResult{Status: StepRunning}
}

// postPage posts the fused consistent-read protocol: the full page copy and
// the version-word re-read back to back on the same QP. In-order execution
// per queue pair guarantees the version word is read after the page copy —
// the same one-exposed-round-trip validation Mem.ReadValidated performs with
// a selectively signalled two-entry batch.
func (tr *Traversal) postPage(sink PostSink) StepResult {
	tr.phase = phPage
	sink.PostRead(tr.p, tr.pageBuf)
	sink.PostRead(tr.p, tr.vbuf[:])
	return StepResult{Status: StepRunning}
}

func (tr *Traversal) postLock(sink PostSink) StepResult {
	tr.phase = phLock
	tr.stepTries = 0
	sink.PostCAS(tr.p, tr.ver, layout.WithLock(tr.ver))
	return StepResult{Status: StepRunning}
}

func (tr *Traversal) postWrite(sink PostSink) StepResult {
	tr.phase = phWrite
	tr.stepTries = 0
	sink.PostWrite(tr.p.Add(8), tr.pageBuf[1:])
	return StepResult{Status: StepRunning}
}

func (tr *Traversal) postUnlock(sink PostSink) StepResult {
	tr.phase = phUnlock
	tr.stepTries = 0
	tr.unlockTries = 0
	sink.PostFetchAdd(tr.p, 1)
	return StepResult{Status: StepRunning}
}

func (tr *Traversal) postUnlockNC(sink PostSink) StepResult {
	tr.phase = phUnlockNC
	tr.stepTries = 0
	sink.PostCAS(tr.p, layout.WithLock(tr.ver), tr.ver)
	return StepResult{Status: StepRunning}
}

// --- completion handlers --------------------------------------------------

func (tr *Traversal) handleRoot(c rdma.Completion, sink PostSink) StepResult {
	if c.Err != nil {
		return tr.stepError(c.Err, sink)
	}
	tr.St.WordReads++
	tr.St.ExposedRTTs++
	p := rdma.RemotePtr(tr.rootBuf[0])
	if p.IsNull() {
		return tr.fail(errors.New("btree: tree not initialized"))
	}
	tr.t.cachedRoot = p
	tr.p = p
	tr.depth = 1
	tr.stepTries = 0
	return tr.postPage(sink)
}

func (tr *Traversal) handlePage(comps []rdma.Completion, sink PostSink) StepResult {
	for i := range comps {
		if comps[i].Err != nil {
			return tr.stepError(comps[i].Err, sink)
		}
	}
	tr.St.PageReads++
	tr.St.WordReads++
	tr.St.ExposedRTTs++
	tr.env.Charge(tr.t.VisitNS)
	tr.stepTries = 0
	v := tr.vbuf[0]
	if v != layout.BufVersion(tr.pageBuf) || layout.IsLocked(v) {
		tr.St.Restarts++
		if layout.IsLocked(layout.BufVersion(tr.pageBuf)) || layout.IsLocked(v) {
			tr.St.LockSpins++
		} else {
			tr.St.VersionAborts++
		}
		if tr.t.overBudget(&tr.St) {
			return tr.fail(fmt.Errorf("btree: %d restarts reading %v: %w", tr.St.Restarts, tr.p, ErrSpinBudget))
		}
		tr.pauseWanted = true
		return tr.postPage(sink)
	}
	tr.ver = v
	n := tr.t.L.Wrap(tr.pageBuf)

	switch tr.mode {
	case modeDescend:
		if n.IsHead() || tr.Key > n.HighKey() {
			// Right-moves stay on the same level and do not deepen the path.
			tr.p = n.Right()
			if tr.p.IsNull() {
				return tr.fail(fmt.Errorf("btree: fell off chain for key %d", tr.Key))
			}
			return tr.postPage(sink)
		}
		if !n.IsLeaf() {
			child, ok := n.InnerRoute(tr.Key)
			if !ok {
				panic("btree: routing failed within fence")
			}
			tr.p = child
			tr.depth++
			return tr.postPage(sink)
		}
		tr.St.Depth = tr.depth
		if tr.Op == TravLookup {
			return tr.collect(n, sink)
		}
		return tr.lockLeaf(n, sink)

	case modeCollect:
		if n.IsHead() {
			tr.p = n.Right()
			if tr.p.IsNull() {
				return tr.done()
			}
			return tr.postPage(sink)
		}
		return tr.collect(n, sink)

	default: // modeChase: insert/delete walking the leaf chain for the lock
		if n.IsHead() || tr.Key > n.HighKey() {
			tr.p = n.Right()
			if tr.p.IsNull() {
				return tr.fail(fmt.Errorf("btree: fell off chain for key %d", tr.Key))
			}
			return tr.postPage(sink)
		}
		return tr.lockLeaf(n, sink)
	}
}

// collect harvests key's values from a consistent leaf copy and follows
// duplicate spill over the fence into right siblings (Tree.Lookup's loop).
func (tr *Traversal) collect(n layout.Node, sink PostSink) StepResult {
	for i := n.LeafLowerBound(tr.Key); i < n.Count() && n.LeafKey(i) == tr.Key; i++ {
		if !n.LeafDeleted(i) {
			tr.Values = append(tr.Values, n.LeafValue(i))
		}
	}
	if n.HighKey() != tr.Key {
		return tr.done()
	}
	tr.p = n.Right()
	if tr.p.IsNull() {
		return tr.done()
	}
	tr.mode = modeCollect
	return tr.postPage(sink)
}

// lockLeaf takes the write lock on the validated leaf copy in pageBuf, or
// diverts a would-split insert to the serial path before locking.
func (tr *Traversal) lockLeaf(n layout.Node, sink PostSink) StepResult {
	if tr.Op == TravInsert && n.Count() >= tr.t.L.LeafCap {
		return tr.needSerial()
	}
	tr.mode = modeChase
	return tr.postLock(sink)
}

func (tr *Traversal) handleLock(c rdma.Completion, sink PostSink) StepResult {
	if c.Err != nil {
		return tr.stepError(c.Err, sink)
	}
	tr.St.Atomics++
	tr.St.ExposedRTTs++
	if c.Val != tr.ver {
		tr.St.Restarts++
		tr.St.LockRetries++
		if tr.t.overBudget(&tr.St) {
			return tr.fail(fmt.Errorf("btree: %d restarts locking %v: %w", tr.St.Restarts, tr.p, ErrSpinBudget))
		}
		tr.pauseWanted = true
		tr.stepTries = 0
		return tr.postPage(sink) // modeChase: re-read, re-chase, re-lock
	}
	// Lock held, and the CAS win proves pageBuf (validated at ver) is still
	// the page's current content.
	n := tr.t.L.Wrap(tr.pageBuf)
	switch tr.Op {
	case TravInsert:
		if !n.LeafInsert(tr.Key, tr.Value) {
			// Capacity was checked on this same validated copy in lockLeaf.
			panic("btree: no space in leaf locked at checked version")
		}
		return tr.postWrite(sink)
	default: // TravDelete
		for i := n.LeafLowerBound(tr.Key); i < n.Count() && n.LeafKey(i) == tr.Key; i++ {
			if n.LeafDeleted(i) || n.LeafValue(i) != tr.Value {
				continue
			}
			n.SetLeafDeleted(i, true)
			tr.Found = true
			return tr.postWrite(sink)
		}
		// Not in this leaf; duplicates may continue right.
		tr.moveRight = n.HighKey() == tr.Key
		tr.next = n.Right()
		return tr.postUnlockNC(sink)
	}
}

func (tr *Traversal) handleWrite(c rdma.Completion, sink PostSink) StepResult {
	if c.Err != nil {
		if errors.Is(c.Err, rdma.ErrQPError) {
			return StepResult{Status: StepBlocked, Server: tr.Server(), Err: c.Err}
		}
		if rdma.IsTransient(c.Err) {
			tr.stepTries++
			if tr.stepTries < stepRetryBudget {
				tr.pauseWanted = true
				return tr.Redo(sink)
			}
		}
		// A failed write was never executed remotely (DESIGN.md §9): the
		// page body is unchanged, release the lock by restoring the
		// pre-lock version — the serial unlockBump's error path.
		tr.t.abortUnlock(&tr.St, tr.p, tr.ver)
		return tr.fail(c.Err)
	}
	tr.St.PageWrites++
	tr.St.ExposedRTTs++
	tr.env.Charge(tr.t.VisitNS)
	return tr.postUnlock(sink)
}

func (tr *Traversal) handleUnlock(c rdma.Completion, sink PostSink) StepResult {
	if c.Err != nil {
		if errors.Is(c.Err, rdma.ErrQPError) {
			return StepResult{Status: StepBlocked, Server: tr.Server(), Err: c.Err}
		}
		if !rdma.IsTransient(c.Err) {
			return tr.fail(c.Err)
		}
		// The body is published: the version MUST move forward, so the FAA
		// is driven to completion exactly like the serial unlockBump loop.
		tr.unlockTries++
		if tr.unlockTries >= unlockCompletionBudget {
			return tr.fail(fmt.Errorf("btree: unlock of %v incomplete after %d attempts (page stays locked): %w",
				tr.p, unlockCompletionBudget, c.Err))
		}
		tr.pauseWanted = true
		return tr.Redo(sink)
	}
	tr.St.Atomics++
	tr.St.ExposedRTTs++
	return tr.done()
}

func (tr *Traversal) handleUnlockNC(c rdma.Completion, sink PostSink) StepResult {
	if c.Err != nil {
		if errors.Is(c.Err, rdma.ErrQPError) {
			return StepResult{Status: StepBlocked, Server: tr.Server(), Err: c.Err}
		}
		if rdma.IsTransient(c.Err) {
			tr.stepTries++
			if tr.stepTries < stepRetryBudget {
				tr.pauseWanted = true
				return tr.Redo(sink)
			}
		}
		return tr.fail(c.Err)
	}
	tr.St.Atomics++
	tr.St.ExposedRTTs++
	if c.Val != layout.WithLock(tr.ver) {
		panic("btree: lock word changed while held")
	}
	if !tr.moveRight || tr.next.IsNull() {
		return tr.done()
	}
	tr.p = tr.next
	tr.mode = modeChase
	tr.stepTries = 0
	return tr.postPage(sink)
}
