package btree

import (
	"errors"
	"fmt"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// ErrKeyReserved is returned when inserting the MaxKey sentinel.
var ErrKeyReserved = errors.New("btree: MaxKey is reserved as the +inf sentinel")

// ErrSpinBudget is returned when an operation exceeds the tree's SpinBudget
// of consistency restarts (lock spins, torn reads, lock-CAS losses). Under a
// healthy fabric restarts are short-lived, so a blown budget indicates a
// page whose lock is starved or stuck (e.g. a writer that died mid-critical
// section under fault injection). Operation-level recovery treats it like a
// transient verb failure: invalidate the cached root and re-traverse.
var ErrSpinBudget = errors.New("btree: consistency-restart budget exhausted")

// Stats counts the memory traffic and synchronization events of one
// operation; on the fine-grained design every traffic unit here is a
// one-sided RDMA verb.
type Stats struct {
	PageReads  int // full-page READs
	WordReads  int // 8-byte validation/root READs
	PageWrites int // page/body WRITEs
	Atomics    int // CAS + FETCH_AND_ADD
	Restarts   int // consistency retries (sum of the three causes below)
	Prefetches int // pages fetched through head-node batches

	// ExposedRTTs counts blocking network interactions: doorbell batches
	// and single verbs whose completion the operation waited on before
	// making progress. Under the fused read protocol a clean descent costs
	// depth exposed round trips plus one per leaf interaction, where the
	// unbatched Listing-2 protocol paid two per level. (The counter
	// reflects the fused protocol's batching; a Mem running the legacy
	// unbatched baseline performs more blocking verbs than counted here —
	// the telemetry verb counters are the authoritative measurement in
	// that mode.)
	ExposedRTTs int

	// Synchronization breakdown of Restarts, plus structural events — the
	// index-protocol counters surfaced by internal/telemetry.
	LockSpins     int // page copy observed a held lock bit (reader waited)
	VersionAborts int // version word changed during a page copy (torn read)
	LockRetries   int // lock-acquisition CAS lost to a concurrent writer
	Splits        int // node splits performed (leaf and inner)
	Depth         int // levels visited by the last root-to-leaf descent
}

// Add accumulates other into s. Depth is taken from other when set (it is a
// per-descent measurement, not a running total).
func (s *Stats) Add(other Stats) {
	s.PageReads += other.PageReads
	s.WordReads += other.WordReads
	s.PageWrites += other.PageWrites
	s.Atomics += other.Atomics
	s.Restarts += other.Restarts
	s.Prefetches += other.Prefetches
	s.ExposedRTTs += other.ExposedRTTs
	s.LockSpins += other.LockSpins
	s.VersionAborts += other.VersionAborts
	s.LockRetries += other.LockRetries
	s.Splits += other.Splits
	if other.Depth > 0 {
		s.Depth = other.Depth
	}
}

// Ops returns the total number of memory/network operations.
func (s *Stats) Ops() int {
	return s.PageReads + s.WordReads + s.PageWrites + s.Atomics
}

// Tree is a B-link tree living in Mem. It is a *client handle*: any number
// of Tree handles (one per compute thread / RPC handler) may operate on the
// same underlying tree concurrently; shared state lives entirely in Mem.
//
// The root pointer is stored at RootWord (installed in the catalog service);
// handles cache it and refresh on miss. A stale cached root stays correct —
// descents recover through sibling links — it only costs extra hops.
type Tree struct {
	L layout.Layout
	M Mem
	// RootWord is the location of the 8-byte word holding the root pointer.
	RootWord rdma.RemotePtr
	// VisitNS is the CPU time charged to the Env per page visited; used by
	// the coarse-grained design's handlers on the simulated fabric.
	VisitNS int64
	// SpinBudget bounds the consistency restarts (Stats.Restarts) one
	// operation may accumulate before failing with ErrSpinBudget; 0 means
	// unlimited (the pre-fault-injection behavior: spin until consistent).
	// Clients running under fault injection set a budget so a stuck page
	// lock surfaces as a typed error instead of a hang.
	SpinBudget int
	// Repl, when non-nil, receives every committed page post-image for
	// mirroring onto backup servers (k-way replication). Nil disables
	// replication with zero cost on the write path.
	Repl Replicator

	cachedRoot rdma.RemotePtr

	// Per-handle scratch. A Tree handle is single-owner (one compute thread
	// or one RPC handler invocation), so the descent/lock paths share one
	// lazily allocated page buffer and Lookup reuses one values buffer —
	// the hot paths run allocation-free in steady state.
	pageBuf   []uint64
	valuesBuf []uint64
}

// scratchPage returns the handle's lazily allocated page buffer. Callers own
// it only until the next operation on this handle; every call site consumes
// the previous user's copy before overwriting (descents, lock acquisitions
// and leaf ops never need two live scratch pages at once).
func (t *Tree) scratchPage() []uint64 {
	if t.pageBuf == nil {
		t.pageBuf = make([]uint64, t.L.Words)
	}
	return t.pageBuf
}

// New returns a handle onto the tree whose root pointer lives at rootWord.
func New(l layout.Layout, m Mem, rootWord rdma.RemotePtr) *Tree {
	return &Tree{L: l, M: m, RootWord: rootWord}
}

// Init creates an empty tree: a single empty root leaf, and publishes it at
// RootWord. It must be called exactly once per tree, before any other
// operation and before concurrent access begins.
func (t *Tree) Init(env rdma.Env) error {
	p, err := t.M.AllocPage(0, t.L.PageBytes)
	if err != nil {
		return err
	}
	n := t.L.NewNode()
	n.InitLeaf()
	if err := t.M.WriteWords(p, n.W); err != nil {
		return err
	}
	if t.Repl != nil {
		if err := t.Repl.MirrorFresh(p, n.W); err != nil {
			return err
		}
	}
	if err := t.M.WriteWords(t.RootWord, []uint64{uint64(p)}); err != nil {
		return err
	}
	if t.Repl != nil {
		if err := t.Repl.MirrorWord(t.RootWord, uint64(p)); err != nil {
			return err
		}
	}
	t.cachedRoot = p
	return nil
}

// InvalidateRoot drops the cached root pointer, forcing the next descent to
// re-read it from RootWord. Operation-level fault recovery calls this before
// an epoch-fenced re-traversal: whatever the interrupted operation cached is
// suspect after a server fault.
func (t *Tree) InvalidateRoot() { t.cachedRoot = rdma.NullPtr }

// overBudget reports whether the operation blew its restart budget.
func (t *Tree) overBudget(st *Stats) bool {
	return t.SpinBudget > 0 && st.Restarts >= t.SpinBudget
}

// root returns the (possibly cached) root pointer.
func (t *Tree) root(st *Stats) (rdma.RemotePtr, error) {
	if !t.cachedRoot.IsNull() {
		return t.cachedRoot, nil
	}
	return t.refreshRoot(st)
}

func (t *Tree) refreshRoot(st *Stats) (rdma.RemotePtr, error) {
	w, err := t.M.LoadWord(t.RootWord)
	if err != nil {
		return rdma.NullPtr, err
	}
	st.WordReads++
	st.ExposedRTTs++
	p := rdma.RemotePtr(w)
	if p.IsNull() {
		return rdma.NullPtr, errors.New("btree: tree not initialized")
	}
	t.cachedRoot = p
	return p, nil
}

// readNode fetches a consistent unlocked copy of the page at p via the fused
// consistent-read protocol: the page copy and the version-word re-read are
// posted as one selectively signalled batch (Mem.ReadValidated), so each
// attempt exposes a single round trip instead of Listing 2's two. A failed
// validation (held lock or torn read) retries. Returns the node and its
// validated version.
func (t *Tree) readNode(env rdma.Env, st *Stats, p rdma.RemotePtr, buf []uint64) (layout.Node, uint64, error) {
	if buf == nil {
		buf = make([]uint64, t.L.Words)
	}
	for {
		st.PageReads++
		st.WordReads++
		st.ExposedRTTs++
		env.Charge(t.VisitNS)
		v, ok, err := t.M.ReadValidated(p, buf)
		if err != nil {
			return layout.Node{}, 0, err
		}
		if ok {
			return t.L.Wrap(buf), v, nil
		}
		st.Restarts++
		if layout.IsLocked(layout.BufVersion(buf)) || layout.IsLocked(v) {
			st.LockSpins++
		} else {
			st.VersionAborts++
		}
		if t.overBudget(st) {
			return layout.Node{}, 0, fmt.Errorf("btree: %d restarts reading %v: %w", st.Restarts, p, ErrSpinBudget)
		}
		env.Pause()
	}
}

// lockNodeForKey locks the node on the chain starting at p that is
// responsible for key: it reads, moves right past head nodes and outgrown
// fences, and CASes the lock bit. On return the copy is consistent, current
// and locked. Returns the final pointer, node copy and the pre-lock version.
func (t *Tree) lockNodeForKey(env rdma.Env, st *Stats, p rdma.RemotePtr, key layout.Key) (rdma.RemotePtr, layout.Node, uint64, error) {
	buf := t.scratchPage()
	for {
		n, v, err := t.readNode(env, st, p, buf)
		if err != nil {
			return rdma.NullPtr, layout.Node{}, 0, err
		}
		buf = n.W
		if n.IsHead() || key > n.HighKey() {
			p = n.Right()
			if p.IsNull() {
				return rdma.NullPtr, layout.Node{}, 0, fmt.Errorf("btree: fell off chain for key %d", key)
			}
			continue
		}
		prev, err := t.M.CAS(p, v, layout.WithLock(v))
		if err != nil {
			return rdma.NullPtr, layout.Node{}, 0, err
		}
		st.Atomics++
		st.ExposedRTTs++
		if prev != v {
			st.Restarts++
			st.LockRetries++
			if t.overBudget(st) {
				return rdma.NullPtr, layout.Node{}, 0, fmt.Errorf("btree: %d restarts locking %v: %w", st.Restarts, p, ErrSpinBudget)
			}
			env.Pause()
			continue
		}
		return p, n, v, nil
	}
}

// unlockBump writes the node body back and releases the lock with a
// FETCH_AND_ADD, bumping the version (Listing 4's remote_writeUnlock, with
// the body write excluding the version word so the FAA both publishes and
// unlocks). preLock is the version observed before the lock CAS; it is the
// restore point when the body write fails.
//
// Fault discipline: a failed verb was never executed remotely (the
// repository's fault model, DESIGN.md §9). A failed body write therefore
// left the page unchanged, and the lock is released by restoring preLock —
// no reader can ever observe a half-published body. Once the body write
// succeeded the version MUST move forward (restoring preLock would validate
// readers' pre-write snapshots against the new body), so the unlock FAA is
// driven to completion: each retry is safe for the same never-executed
// reason. Only a permanent failure (server lost) or an exhausted completion
// budget abandons the page — locked, on a server that is gone or
// unreachable for far longer than any scheduled outage.
func (t *Tree) unlockBump(env rdma.Env, st *Stats, p rdma.RemotePtr, n layout.Node, preLock uint64) error {
	if err := t.M.WriteWords(p.Add(8), n.W[1:]); err != nil {
		t.abortUnlock(st, p, preLock)
		return err
	}
	st.PageWrites++
	st.ExposedRTTs++
	env.Charge(t.VisitNS)
	var err error
	for i := 0; i < unlockCompletionBudget; i++ { //rdmavet:allow retrynaked -- the body is published and the lock must be released; a failed FAA was never executed, so driving it to completion is the only safe exit
		if _, err = t.M.FetchAdd(p, 1); err == nil {
			st.Atomics++
			st.ExposedRTTs++
			if t.Repl != nil {
				// The page is published at version preLock+2 (the lock CAS
				// set preLock|1, the FAA added 1). Stamp the image with the
				// published version and mirror it; a mirror failure leaves
				// the op un-acked but the primary copy committed, which the
				// recovery layer's presence check resolves idempotently.
				layout.SetBufVersion(n.W, preLock+2)
				return t.Repl.MirrorPage(p, n.W)
			}
			return nil
		}
		if !rdma.IsTransient(err) {
			return err
		}
		env.Pause()
	}
	return fmt.Errorf("btree: unlock of %v incomplete after %d attempts (page stays locked): %w",
		p, unlockCompletionBudget, err)
}

// unlockCompletionBudget bounds the unlock-FAA completion loop. Each attempt
// below already carries the verb layer's own bounded retries and reconnects,
// so the budget is generous: it is only ever exhausted by a server that
// stays unreachable for longer than every scheduled outage.
const unlockCompletionBudget = 64

// abortUnlock is the error-path lock release: a verb failed while the page
// was locked and its body still unchanged, so restore the pre-lock version.
// Best-effort — if the release itself fails (server gone) the original
// error is already propagating and the page is unreachable anyway.
func (t *Tree) abortUnlock(st *Stats, p rdma.RemotePtr, preLock uint64) {
	prev, err := t.M.CAS(p, layout.WithLock(preLock), preLock)
	if err == nil && prev == layout.WithLock(preLock) {
		st.Atomics++
	}
}

// unlockNoChange releases the lock restoring the pre-lock version (the node
// was not modified, readers need not be invalidated).
func (t *Tree) unlockNoChange(st *Stats, p rdma.RemotePtr, preLock uint64) error {
	prev, err := t.M.CAS(p, layout.WithLock(preLock), preLock)
	if err != nil {
		return err
	}
	st.Atomics++
	st.ExposedRTTs++
	if prev != layout.WithLock(preLock) {
		panic("btree: lock word changed while held")
	}
	return nil
}

// descendToLeaf walks from the root to the leaf responsible for key,
// chasing right-sibling links where concurrent splits have outgrown a fence.
// It returns a consistent copy of the leaf and its pointer.
func (t *Tree) descendToLeaf(env rdma.Env, st *Stats, key layout.Key) (rdma.RemotePtr, layout.Node, uint64, error) {
	p, err := t.root(st)
	if err != nil {
		return rdma.NullPtr, layout.Node{}, 0, err
	}
	buf := t.scratchPage()
	depth := 1
	for {
		n, v, err := t.readNode(env, st, p, buf)
		if err != nil {
			return rdma.NullPtr, layout.Node{}, 0, err
		}
		buf = n.W
		if n.IsHead() || key > n.HighKey() {
			// Right-moves stay on the same level and do not deepen the path.
			p = n.Right()
			if p.IsNull() {
				return rdma.NullPtr, layout.Node{}, 0, fmt.Errorf("btree: fell off chain for key %d", key)
			}
			continue
		}
		if n.IsLeaf() {
			st.Depth = depth
			return p, n, v, nil
		}
		child, ok := n.InnerRoute(key)
		if !ok {
			// Raced with a split between the fence check and routing on the
			// same copy: cannot happen on a consistent copy.
			panic("btree: routing failed within fence")
		}
		p = child
		depth++
	}
}

// Lookup returns all values stored under key (non-unique index), excluding
// delete-bit entries. found is false when no live entry exists.
//
// The returned slice aliases a per-handle scratch buffer: it is valid only
// until the next operation on this handle. Callers that retain values across
// operations must copy them out.
func (t *Tree) Lookup(env rdma.Env, key layout.Key) (values []uint64, st Stats, err error) {
	p, n, _, err := t.descendToLeaf(env, &st, key)
	if err != nil {
		return nil, st, err
	}
	values = t.valuesBuf[:0]
	for {
		for i := n.LeafLowerBound(key); i < n.Count() && n.LeafKey(i) == key; i++ {
			if !n.LeafDeleted(i) {
				values = append(values, n.LeafValue(i))
			}
		}
		// Duplicates may spill over the fence into right siblings.
		if n.HighKey() != key {
			t.valuesBuf = values
			return values, st, nil
		}
		p = n.Right()
		for {
			if p.IsNull() {
				t.valuesBuf = values
				return values, st, nil
			}
			// Reuse the descent buffer: the previous copy is done with.
			n, _, err = t.readNode(env, &st, p, n.W)
			if err != nil {
				t.valuesBuf = values[:0]
				return nil, st, err
			}
			if !n.IsHead() {
				break
			}
			p = n.Right()
		}
	}
}

// Scan visits all live entries with lo <= key <= hi in key order, calling
// emit for each; emit returning false stops the scan. Head nodes on the leaf
// chain trigger batched prefetch of the leaves they announce (Section 4.3).
func (t *Tree) Scan(env rdma.Env, lo, hi layout.Key, emit func(k layout.Key, v uint64) bool) (st Stats, err error) {
	p, n, _, err := t.descendToLeaf(env, &st, lo)
	if err != nil {
		return st, err
	}
	return t.scanChain(env, &st, p, n, lo, hi, emit)
}

// scanChain runs the leaf-level part of a range scan starting from a
// consistent copy n of the node at p. The caller relinquishes n's buffer to
// the scan, which recycles page buffers through a small free list: copies
// invalidated at prefetch time and copies the scan has finished emitting go
// back on the list and are reused for later nodes, keeping the chain walk
// allocation-free in steady state.
func (t *Tree) scanChain(env rdma.Env, st *Stats, p rdma.RemotePtr, n layout.Node, lo, hi layout.Key, emit func(k layout.Key, v uint64) bool) (Stats, error) {
	prefetched := make(map[rdma.RemotePtr][]uint64)
	cur := n.W // buffer holding the current node's copy; owned by the scan
	var freelist [][]uint64
	grab := func() []uint64 {
		if k := len(freelist) - 1; k >= 0 {
			b := freelist[k]
			freelist = freelist[:k]
			return b
		}
		return make([]uint64, t.L.Words)
	}
	var ptrs []rdma.RemotePtr
	var bufs [][]uint64
	var vers []uint64
	for {
		if n.IsHead() {
			// Prefetch the announced leaves: all page READs and all
			// version-word re-reads go out in ONE selectively signalled
			// doorbell batch (2N entries) — per-server entries execute in
			// posting order, so each version word is read after its page
			// copy, and only the batch's last completion is waited on. One
			// exposed round trip replaces the previous two sequential
			// batches. A copy whose version is unchanged and unlocked is a
			// consistent snapshot; invalidated copies are dropped and
			// re-read on use (the paper's extra remote read for outdated
			// hints).
			ptrs = ptrs[:0]
			bufs = bufs[:0]
			for i := 0; i < n.Count(); i++ {
				hp := n.HeadPtr(i)
				if hp.IsNull() {
					continue
				}
				ptrs = append(ptrs, hp)
				bufs = append(bufs, grab())
			}
			if len(ptrs) > 0 {
				if cap(vers) < len(ptrs) {
					vers = make([]uint64, len(ptrs))
				}
				vers = vers[:len(ptrs)]
				if err := t.M.ReadPages(ptrs, bufs, vers); err != nil {
					return *st, err
				}
				st.Prefetches += len(ptrs)
				st.WordReads += len(ptrs)
				st.ExposedRTTs++
				env.Charge(t.VisitNS * int64(len(ptrs)))
				for i, hp := range ptrs {
					v := layout.BufVersion(bufs[i])
					if layout.IsLocked(v) || vers[i] != v {
						freelist = append(freelist, bufs[i])
						continue
					}
					prefetched[hp] = bufs[i]
				}
			}
		} else {
			for i := n.LeafLowerBound(lo); i < n.Count(); i++ {
				k := n.LeafKey(i)
				if k > hi {
					return *st, nil
				}
				if n.LeafDeleted(i) {
					continue
				}
				if !emit(k, n.LeafValue(i)) {
					return *st, nil
				}
			}
			if n.HighKey() >= hi {
				return *st, nil
			}
		}
		p = n.Right()
		if p.IsNull() {
			return *st, nil
		}
		if buf, ok := prefetched[p]; ok {
			// Already validated at prefetch time: a consistent snapshot.
			delete(prefetched, p)
			freelist = append(freelist, cur)
			cur = buf
			n = t.L.Wrap(buf)
			continue
		}
		var err error
		n, _, err = t.readNode(env, st, p, cur)
		if err != nil {
			return *st, err
		}
		cur = n.W
	}
}

// Insert adds (key, value) to the index. Duplicate keys are allowed.
func (t *Tree) Insert(env rdma.Env, key layout.Key, value uint64) (st Stats, err error) {
	if key == layout.MaxKey {
		return st, ErrKeyReserved
	}
	leafPtr, _, _, err := t.descendToLeaf(env, &st, key)
	if err != nil {
		return st, err
	}
	sp, err := t.leafInsert(env, &st, leafPtr, key, value)
	if err != nil || sp == nil {
		return st, err
	}
	err = t.installSeparator(env, &st, 1, sp.Sep, sp.Left, sp.Right)
	return st, err
}

// leafInsert performs the leaf-level half of an insert: lock the responsible
// leaf (moving right past outgrown fences), insert, and split if full. The
// returned *Split (nil if no split) still needs its separator installed
// upstairs.
func (t *Tree) leafInsert(env rdma.Env, st *Stats, leafPtr rdma.RemotePtr, key layout.Key, value uint64) (*Split, error) {
	p, n, pre, err := t.lockNodeForKey(env, st, leafPtr, key)
	if err != nil {
		return nil, err
	}
	if n.LeafInsert(key, value) {
		return nil, t.unlockBump(env, st, p, n, pre)
	}
	// Leaf full: B-link split. The right half goes to a fresh page (placed
	// by the Mem's policy: round-robin for the fine-grained design), the
	// left half is rewritten in place, then the separator is installed
	// upstairs without holding the leaf lock.
	rightPtr, err := t.M.AllocPage(0, t.L.PageBytes)
	if err != nil {
		t.abortUnlock(st, p, pre)
		return nil, err
	}
	st.ExposedRTTs++
	right := t.L.NewNode()
	right.InitLeaf()
	sep := n.LeafSplit(right)
	right.SetRight(n.Right())
	right.SetLeft(p)
	n.SetRight(rightPtr)
	if key <= sep {
		if !n.LeafInsert(key, value) {
			panic("btree: no space in left half after split")
		}
	} else {
		if !right.LeafInsert(key, value) {
			panic("btree: no space in right half after split")
		}
	}
	if err := t.M.WriteWords(rightPtr, right.W); err != nil {
		// The right half was never published (no pointer to it exists yet):
		// release the leaf unchanged. The allocated page leaks to the GC.
		t.abortUnlock(st, p, pre)
		return nil, err
	}
	if t.Repl != nil {
		// Mirror the unpublished right half before the left half's
		// unlockBump publishes the pointer to it: after the ack, every live
		// backup holds both halves.
		if err := t.Repl.MirrorFresh(rightPtr, right.W); err != nil {
			t.abortUnlock(st, p, pre)
			return nil, err
		}
	}
	st.PageWrites++
	st.ExposedRTTs++
	st.Splits++
	env.Charge(t.VisitNS)
	if err := t.unlockBump(env, st, p, n, pre); err != nil {
		return nil, err
	}
	return &Split{Sep: sep, Left: p, Right: rightPtr}, nil
}

// installSeparator inserts the boundary sep at the given level after a split
// of the in-place (left) node at level-1, repointing the displaced range at
// right. It grows a new root when the tree height increases.
//
// With duplicate keys the separator value alone cannot identify the pair to
// cut (several children may carry equal separators), so the target pair is
// located by *child pointer*: find the pair whose child is left, then
// advance to the first pair of that group whose separator is >= sep — that
// pair's range contains the cut.
func (t *Tree) installSeparator(env rdma.Env, st *Stats, level int, sep layout.Key, left, right rdma.RemotePtr) error {
	routeKey := sep
	var rbuf []uint64
	for {
		rootPtr, err := t.refreshRoot(st)
		if err != nil {
			return err
		}
		rootNode, _, err := t.readNode(env, st, rootPtr, rbuf)
		if err != nil {
			return err
		}
		rbuf = rootNode.W
		if rootNode.Level() < level {
			if rootPtr == left {
				grown, err := t.tryGrowRoot(env, st, level, sep, left, right)
				if err != nil {
					return err
				}
				if grown {
					return nil
				}
			}
			// A concurrent writer is growing the root; wait for it.
			st.Restarts++
			if t.overBudget(st) {
				return fmt.Errorf("btree: %d restarts waiting for root growth: %w", st.Restarts, ErrSpinBudget)
			}
			env.Pause()
			continue
		}
		// Descend to the target level guided by routeKey.
		p, n := rootPtr, rootNode
		for n.Level() > level {
			if n.IsHead() || routeKey > n.HighKey() {
				p = n.Right()
			} else {
				child, ok := n.InnerRoute(routeKey)
				if !ok {
					panic("btree: routing failed within fence")
				}
				p = child
			}
			if p.IsNull() {
				return fmt.Errorf("btree: fell off chain installing sep %d", sep)
			}
			if n, _, err = t.readNode(env, st, p, n.W); err != nil {
				return err
			}
		}
		// Walk right from p looking for the pair whose child is left.
		var pre uint64
		p, n, pre, err = t.lockNodeForKey(env, st, p, routeKey)
		if err != nil {
			return err
		}
		idx := -1
		for {
			for i := 0; i < n.Count(); i++ {
				if n.InnerChild(i) == left {
					idx = i
					break
				}
			}
			if idx >= 0 {
				break
			}
			next := n.Right()
			if err := t.unlockNoChange(st, p, pre); err != nil {
				return err
			}
			if next.IsNull() {
				break
			}
			p = next
			if p, n, pre, err = t.lockNodeForKey(env, st, p, 0); err != nil {
				return err
			}
		}
		if idx < 0 {
			// Two benign races end up here: (a) left is itself the right
			// half of an earlier split whose separator install has not
			// completed yet, so no pair points at it; (b) a racing second
			// split of left already installed a smaller separator for it,
			// left of where routeKey landed us. Rescan from the level's left
			// end, then wait for the pending install and retry.
			if routeKey != 0 {
				routeKey = 0
			} else {
				routeKey = sep
				st.Restarts++
				if t.overBudget(st) {
					return fmt.Errorf("btree: %d restarts installing sep %d: %w", st.Restarts, sep, ErrSpinBudget)
				}
				env.Pause()
			}
			continue
		}
		// Advance to the cut pair: the first pair of left's group with
		// separator >= sep (the group's pairs are contiguous, ascending, and
		// may spill into right siblings if this inner node split).
		for {
			for idx < n.Count() && n.InnerKey(idx) < sep {
				idx++
			}
			if idx < n.Count() {
				break
			}
			next := n.Right()
			if err := t.unlockNoChange(st, p, pre); err != nil {
				return err
			}
			if next.IsNull() {
				// Transient chain state; retry from routing.
				idx = -1
				break
			}
			p = next
			if p, n, pre, err = t.lockNodeForKey(env, st, p, 0); err != nil {
				return err
			}
			idx = 0
		}
		if idx < 0 {
			st.Restarts++
			if t.overBudget(st) {
				return fmt.Errorf("btree: %d restarts installing sep %d: %w", st.Restarts, sep, ErrSpinBudget)
			}
			env.Pause()
			continue
		}
		if n.Count() < t.L.InnerCap {
			n.InnerCutAt(idx, sep, right)
			return t.unlockBump(env, st, p, n, pre)
		}
		// Target inner node full: split it (same B-link discipline), cut in
		// the correct half, then recurse upstairs.
		right2Ptr, err := t.M.AllocPage(level, t.L.PageBytes)
		if err != nil {
			t.abortUnlock(st, p, pre)
			return err
		}
		st.ExposedRTTs++
		right2 := t.L.NewNode()
		right2.InitInner(level)
		sep2 := n.InnerSplit(right2)
		right2.SetRight(n.Right())
		right2.SetLeft(p)
		n.SetRight(right2Ptr)
		if idx < n.Count() {
			n.InnerCutAt(idx, sep, right)
		} else {
			right2.InnerCutAt(idx-n.Count(), sep, right)
		}
		if err := t.M.WriteWords(right2Ptr, right2.W); err != nil {
			t.abortUnlock(st, p, pre)
			return err
		}
		if t.Repl != nil {
			if err := t.Repl.MirrorFresh(right2Ptr, right2.W); err != nil {
				t.abortUnlock(st, p, pre)
				return err
			}
		}
		st.PageWrites++
		st.ExposedRTTs++
		st.Splits++
		env.Charge(t.VisitNS)
		if err := t.unlockBump(env, st, p, n, pre); err != nil {
			return err
		}
		return t.installSeparator(env, st, level+1, sep2, p, right2Ptr)
	}
}

// tryGrowRoot installs a new root above left/right. Returns false if another
// writer grew the root first (the caller re-descends).
func (t *Tree) tryGrowRoot(env rdma.Env, st *Stats, level int, sep layout.Key, left, right rdma.RemotePtr) (bool, error) {
	newRootPtr, err := t.M.AllocPage(level, t.L.PageBytes)
	if err != nil {
		return false, err
	}
	st.ExposedRTTs++
	nr := t.L.NewNode()
	nr.InitInner(level)
	nr.InnerAppend(sep, left)
	nr.InnerAppend(layout.MaxKey, right)
	if err := t.M.WriteWords(newRootPtr, nr.W); err != nil {
		return false, err
	}
	if t.Repl != nil {
		if err := t.Repl.MirrorFresh(newRootPtr, nr.W); err != nil {
			return false, err
		}
	}
	st.PageWrites++
	st.ExposedRTTs++
	env.Charge(t.VisitNS)
	prev, err := t.M.CAS(t.RootWord, uint64(left), uint64(newRootPtr))
	if err != nil {
		return false, err
	}
	st.Atomics++
	st.ExposedRTTs++
	if prev != uint64(left) {
		// Lost the race; the page was never published, safe to free.
		if err := t.M.FreePage(newRootPtr, t.L.PageBytes); err != nil {
			return false, err
		}
		st.ExposedRTTs++
		t.cachedRoot = rdma.NullPtr
		return false, nil
	}
	st.Splits++
	t.cachedRoot = newRootPtr
	if t.Repl != nil {
		if err := t.Repl.MirrorWord(t.RootWord, uint64(newRootPtr)); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Delete marks the first live entry matching (key, value) with the delete
// bit (Section 3.2: deletes set a bit; physical removal is the epoch garbage
// collector's job). It reports whether an entry was marked.
func (t *Tree) Delete(env rdma.Env, key layout.Key, value uint64) (bool, Stats, error) {
	var st Stats
	leafPtr, _, _, err := t.descendToLeaf(env, &st, key)
	if err != nil {
		return false, st, err
	}
	ok, err := t.leafDelete(env, &st, leafPtr, key, value)
	return ok, st, err
}

// leafDelete performs the leaf-level half of a delete starting from the
// chain at leafPtr.
func (t *Tree) leafDelete(env rdma.Env, st *Stats, leafPtr rdma.RemotePtr, key layout.Key, value uint64) (bool, error) {
	p := leafPtr
	for {
		var n layout.Node
		var pre uint64
		var err error
		p, n, pre, err = t.lockNodeForKey(env, st, p, key)
		if err != nil {
			return false, err
		}
		for i := n.LeafLowerBound(key); i < n.Count() && n.LeafKey(i) == key; i++ {
			if n.LeafDeleted(i) {
				continue
			}
			if n.LeafValue(i) != value {
				continue
			}
			n.SetLeafDeleted(i, true)
			return true, t.unlockBump(env, st, p, n, pre)
		}
		// Not in this leaf; duplicates may continue right.
		if n.HighKey() != key {
			return false, t.unlockNoChange(st, p, pre)
		}
		next := n.Right()
		if err := t.unlockNoChange(st, p, pre); err != nil {
			return false, err
		}
		if next.IsNull() {
			return false, nil
		}
		p = next
	}
}

// Height returns the current tree height in levels (1 = a single leaf).
func (t *Tree) Height(env rdma.Env) (int, error) {
	var st Stats
	p, err := t.refreshRoot(&st)
	if err != nil {
		return 0, err
	}
	n, _, err := t.readNode(env, &st, p, nil)
	if err != nil {
		return 0, err
	}
	return n.Level() + 1, nil
}
