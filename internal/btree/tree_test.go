package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

const testRegion = 64 << 20

// newLocalTree creates a tree over one server's local region (the
// coarse-grained access path).
func newLocalTree(t *testing.T, pageBytes int) *Tree {
	t.Helper()
	f := direct.New(1, testRegion, 64)
	tr := New(layout.New(pageBytes), LocalMem{Srv: f.Server(0)}, rdma.MakePtr(0, 0))
	if err := tr.Init(rdma.NopEnv{}); err != nil {
		t.Fatal(err)
	}
	return tr
}

// newRemoteTree creates a tree over one-sided verbs with round-robin page
// placement across servers (the fine-grained access path). The returned
// function makes additional handles (one per concurrent client).
func newRemoteTree(t *testing.T, pageBytes, servers int) (*Tree, func() *Tree) {
	t.Helper()
	f := direct.New(servers, testRegion, 64)
	l := layout.New(pageBytes)
	mk := func() *Tree {
		return New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(servers, rand.Intn(servers))}, rdma.MakePtr(0, 0))
	}
	tr := mk()
	if err := tr.Init(rdma.NopEnv{}); err != nil {
		t.Fatal(err)
	}
	return tr, mk
}

var env = rdma.NopEnv{}

func TestInsertLookupSmall(t *testing.T) {
	for _, mode := range []string{"local", "remote"} {
		t.Run(mode, func(t *testing.T) {
			var tr *Tree
			if mode == "local" {
				tr = newLocalTree(t, 512)
			} else {
				tr, _ = newRemoteTree(t, 512, 4)
			}
			for i := 0; i < 100; i++ {
				if _, err := tr.Insert(env, uint64(i*3), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 100; i++ {
				vals, _, err := tr.Lookup(env, uint64(i*3))
				if err != nil {
					t.Fatal(err)
				}
				if len(vals) != 1 || vals[0] != uint64(i) {
					t.Fatalf("Lookup(%d) = %v; want [%d]", i*3, vals, i)
				}
			}
			// Absent keys.
			for _, k := range []uint64{1, 2, 298, 1000} {
				vals, _, err := tr.Lookup(env, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(vals) != 0 {
					t.Fatalf("Lookup(%d) = %v; want empty", k, vals)
				}
			}
			if _, err := tr.CheckInvariants(env); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInsertSplitsGrowTree(t *testing.T) {
	tr := newLocalTree(t, 256) // tiny pages force deep trees
	const n = 5000
	for i := 0; i < n; i++ {
		if _, err := tr.Insert(env, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	h, err := tr.Height(env)
	if err != nil {
		t.Fatal(err)
	}
	if h < 3 {
		t.Fatalf("height = %d; want >= 3 after %d inserts on tiny pages", h, n)
	}
	live, err := tr.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != n {
		t.Fatalf("live entries = %d; want %d", live, n)
	}
}

func TestInsertRandomOrderAllFound(t *testing.T) {
	tr, _ := newRemoteTree(t, 512, 3)
	rng := rand.New(rand.NewSource(42))
	keys := rng.Perm(3000)
	for _, k := range keys {
		if _, err := tr.Insert(env, uint64(k), uint64(k)*2); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		vals, _, err := tr.Lookup(env, uint64(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != uint64(k)*2 {
			t.Fatalf("Lookup(%d) = %v", k, vals)
		}
	}
	if _, err := tr.CheckInvariants(env); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateKeysAcrossSplits(t *testing.T) {
	tr := newLocalTree(t, 256)
	// Insert enough duplicates of one key to span several leaves.
	const dups = 300
	for i := 0; i < dups; i++ {
		if _, err := tr.Insert(env, 77, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Surround with other keys.
	for i := 0; i < 200; i++ {
		if _, err := tr.Insert(env, uint64(i), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Insert(env, uint64(1000+i), 1); err != nil {
			t.Fatal(err)
		}
	}
	vals, _, err := tr.Lookup(env, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Key 77 was also inserted once by the surrounding loop.
	if len(vals) != dups+1 {
		t.Fatalf("Lookup(77) returned %d values; want %d", len(vals), dups+1)
	}
	if _, err := tr.CheckInvariants(env); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	tr, _ := newRemoteTree(t, 512, 2)
	for i := 0; i < 1000; i++ {
		if _, err := tr.Insert(env, uint64(i*2), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	_, err := tr.Scan(env, 100, 200, func(k layout.Key, v uint64) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 51 {
		t.Fatalf("scan [100,200] returned %d keys; want 51", len(got))
	}
	for i, k := range got {
		if k != uint64(100+2*i) {
			t.Fatalf("scan out of order at %d: %d", i, k)
		}
	}
	// Early termination.
	count := 0
	if _, err := tr.Scan(env, 0, 2000, func(layout.Key, uint64) bool {
		count++
		return count < 10
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("early-terminated scan visited %d; want 10", count)
	}
	// Empty range.
	count = 0
	if _, err := tr.Scan(env, 3001, 4000, func(layout.Key, uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("scan of empty range visited %d", count)
	}
}

func TestDeleteMarksAndLookupSkips(t *testing.T) {
	tr := newLocalTree(t, 512)
	for i := 0; i < 500; i++ {
		if _, err := tr.Insert(env, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 2 {
		ok, _, err := tr.Delete(env, uint64(i), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Delete(%d) found nothing", i)
		}
	}
	for i := 0; i < 500; i++ {
		vals, _, err := tr.Lookup(env, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 && len(vals) != 0 {
			t.Fatalf("deleted key %d still visible: %v", i, vals)
		}
		if i%2 == 1 && len(vals) != 1 {
			t.Fatalf("surviving key %d lost: %v", i, vals)
		}
	}
	// Deleting again finds nothing.
	ok, _, err := tr.Delete(env, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("double delete succeeded")
	}
	// Scans skip deleted entries.
	count := 0
	if _, err := tr.Scan(env, 0, 499, func(layout.Key, uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 250 {
		t.Fatalf("scan saw %d entries; want 250", count)
	}
}

func TestDeleteSpecificValueAmongDuplicates(t *testing.T) {
	tr := newLocalTree(t, 512)
	for v := uint64(0); v < 5; v++ {
		if _, err := tr.Insert(env, 9, v); err != nil {
			t.Fatal(err)
		}
	}
	ok, _, err := tr.Delete(env, 9, 3)
	if err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	vals, _, err := tr.Lookup(env, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("got %d values", len(vals))
	}
	for _, v := range vals {
		if v == 3 {
			t.Fatal("deleted value still visible")
		}
	}
}

func TestCompactRemovesDeleted(t *testing.T) {
	tr := newLocalTree(t, 512)
	for i := 0; i < 1000; i++ {
		if _, err := tr.Insert(env, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 3 {
		if _, _, err := tr.Delete(env, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	removed, _, err := tr.Compact(env)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 334 {
		t.Fatalf("compact removed %d; want 334", removed)
	}
	live, err := tr.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != 666 {
		t.Fatalf("live = %d; want 666", live)
	}
	// Idempotent.
	removed, _, err = tr.Compact(env)
	if err != nil || removed != 0 {
		t.Fatalf("second compact removed %d err=%v", removed, err)
	}
}

func TestInsertMaxKeyRejected(t *testing.T) {
	tr := newLocalTree(t, 512)
	if _, err := tr.Insert(env, layout.MaxKey, 1); err != ErrKeyReserved {
		t.Fatalf("err = %v; want ErrKeyReserved", err)
	}
}

func TestBuildBulkLoadAndQuery(t *testing.T) {
	for _, headEvery := range []int{0, 8} {
		t.Run(fmt.Sprintf("headEvery=%d", headEvery), func(t *testing.T) {
			tr, _ := newRemoteTree(t, 512, 4)
			const n = 20000
			bs, err := tr.Build(env, BuildConfig{Fill: 0.9, HeadEvery: headEvery}, n,
				func(i int) (uint64, uint64) { return uint64(i * 2), uint64(i) })
			if err != nil {
				t.Fatal(err)
			}
			if bs.Leaves == 0 || bs.Height < 2 {
				t.Fatalf("implausible build stats: %+v", bs)
			}
			if headEvery > 0 && bs.Heads == 0 {
				t.Fatal("no head nodes built")
			}
			live, err := tr.CheckInvariants(env)
			if err != nil {
				t.Fatal(err)
			}
			if live != n {
				t.Fatalf("live = %d; want %d", live, n)
			}
			for _, i := range []int{0, 1, 17, n / 2, n - 1} {
				vals, _, err := tr.Lookup(env, uint64(i*2))
				if err != nil {
					t.Fatal(err)
				}
				if len(vals) != 1 || vals[0] != uint64(i) {
					t.Fatalf("Lookup(%d) = %v", i*2, vals)
				}
			}
			// Full scan returns everything in order.
			count, prev := 0, uint64(0)
			st, err := tr.Scan(env, 0, layout.MaxKey-1, func(k layout.Key, v uint64) bool {
				if k < prev {
					t.Fatalf("scan out of order: %d after %d", k, prev)
				}
				prev = k
				count++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Fatalf("scan saw %d; want %d", count, n)
			}
			if headEvery > 0 && st.Prefetches == 0 {
				t.Fatal("scan over head nodes did no prefetching")
			}
			if headEvery == 0 && st.Prefetches != 0 {
				t.Fatal("prefetches without head nodes")
			}
		})
	}
}

func TestBuildThenInsertMore(t *testing.T) {
	tr, _ := newRemoteTree(t, 512, 4)
	const n = 5000
	if _, err := tr.Build(env, BuildConfig{HeadEvery: 4}, n,
		func(i int) (uint64, uint64) { return uint64(i*2 + 1), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	// Fill the gaps with regular inserts (exercises splits of loaded pages
	// and of chains containing head nodes).
	for i := 0; i < n; i++ {
		if _, err := tr.Insert(env, uint64(i*2), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	live, err := tr.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != 2*n {
		t.Fatalf("live = %d; want %d", live, 2*n)
	}
	count := 0
	if _, err := tr.Scan(env, 0, layout.MaxKey-1, func(layout.Key, uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 2*n {
		t.Fatalf("scan saw %d; want %d", count, 2*n)
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	tr, _ := newRemoteTree(t, 512, 2)
	if _, err := tr.Build(env, BuildConfig{}, 0, nil); err != nil {
		t.Fatal(err)
	}
	vals, _, err := tr.Lookup(env, 1)
	if err != nil || len(vals) != 0 {
		t.Fatalf("lookup on empty tree: %v %v", vals, err)
	}
	tr2, _ := newRemoteTree(t, 512, 2)
	if _, err := tr2.Build(env, BuildConfig{}, 1, func(int) (uint64, uint64) { return 5, 50 }); err != nil {
		t.Fatal(err)
	}
	vals, _, err = tr2.Lookup(env, 5)
	if err != nil || len(vals) != 1 || vals[0] != 50 {
		t.Fatalf("lookup on single-item tree: %v %v", vals, err)
	}
}

func TestBuildRejectsUnsorted(t *testing.T) {
	tr := newLocalTree(t, 512)
	keys := []uint64{1, 5, 3}
	_, err := tr.Build(env, BuildConfig{}, len(keys), func(i int) (uint64, uint64) { return keys[i], 0 })
	if err == nil {
		t.Fatal("unsorted build accepted")
	}
}

func TestBuildWithDuplicates(t *testing.T) {
	tr := newLocalTree(t, 256)
	const n = 2000
	if _, err := tr.Build(env, BuildConfig{}, n, func(i int) (uint64, uint64) {
		return uint64(i / 10), uint64(i) // 10 duplicates per key
	}); err != nil {
		t.Fatal(err)
	}
	vals, _, err := tr.Lookup(env, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 10 {
		t.Fatalf("Lookup(7) = %d values; want 10", len(vals))
	}
	if _, err := tr.CheckInvariants(env); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildHeads(t *testing.T) {
	tr, _ := newRemoteTree(t, 512, 4)
	const n = 10000
	if _, err := tr.Build(env, BuildConfig{HeadEvery: 8}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	// Splits make head-node hints stale.
	for i := 0; i < n; i += 2 {
		if _, err := tr.Insert(env, uint64(i)*1000000+500, 1); err != nil {
			t.Fatal(err)
		}
	}
	retired, _, err := tr.RebuildHeads(env, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) == 0 {
		t.Fatal("no heads retired")
	}
	if _, err := tr.CheckInvariants(env); err != nil {
		t.Fatal(err)
	}
	// Scans still complete and prefetch from the new heads.
	count := 0
	st, err := tr.Scan(env, 0, layout.MaxKey-1, func(layout.Key, uint64) bool { count++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if count != n+n/2 {
		t.Fatalf("scan saw %d; want %d", count, n+n/2)
	}
	if st.Prefetches == 0 {
		t.Fatal("no prefetching after rebuild")
	}
	if err := tr.FreeRetired(retired); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertsLocal(t *testing.T) {
	f := direct.New(1, testRegion, 64)
	l := layout.New(256)
	root := rdma.MakePtr(0, 0)
	init := New(l, LocalMem{Srv: f.Server(0)}, root)
	if err := init.Init(env); err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perW = 1500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := New(l, LocalMem{Srv: f.Server(0)}, root)
			e := direct.Env{}
			for i := 0; i < perW; i++ {
				k := uint64(i*writers + w)
				if _, err := tr.Insert(e, k, k); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	live, err := init.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != writers*perW {
		t.Fatalf("live = %d; want %d", live, writers*perW)
	}
}

func TestConcurrentMixedRemote(t *testing.T) {
	f := direct.New(4, testRegion, 64)
	l := layout.New(256)
	root := rdma.MakePtr(0, 0)
	boot := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, 0)}, root)
	const preload = 4000
	if _, err := boot.Build(env, BuildConfig{HeadEvery: 6}, preload,
		func(i int) (uint64, uint64) { return uint64(i * 4), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	const opsPer = 800
	var wg sync.WaitGroup
	var inserted [clients]int
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(4, c)}, root)
			e := direct.Env{}
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(3) {
				case 0: // insert a fresh odd key
					k := uint64(i*2*clients+c*2) + 1
					if _, err := tr.Insert(e, k, k); err != nil {
						t.Error(err)
						return
					}
					inserted[c]++
				case 1: // point lookup of a preloaded key
					k := uint64(rng.Intn(preload) * 4)
					vals, _, err := tr.Lookup(e, k)
					if err != nil {
						t.Error(err)
						return
					}
					if len(vals) == 0 {
						t.Errorf("preloaded key %d disappeared", k)
						return
					}
				case 2: // short scan
					lo := uint64(rng.Intn(preload * 4))
					if _, err := tr.Scan(e, lo, lo+100, func(layout.Key, uint64) bool { return true }); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	total := preload
	for _, n := range inserted {
		total += n
	}
	live, err := boot.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != total {
		t.Fatalf("live = %d; want %d", live, total)
	}
}

func TestConcurrentInsertDeleteSameKeys(t *testing.T) {
	f := direct.New(2, testRegion, 64)
	l := layout.New(256)
	root := rdma.MakePtr(0, 0)
	boot := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(2, 0)}, root)
	if err := boot.Init(env); err != nil {
		t.Fatal(err)
	}
	const pairs = 6
	var wg sync.WaitGroup
	for c := 0; c < pairs; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := New(l, &EndpointMem{Ep: f.Endpoint(), Place: RoundRobin(2, c)}, root)
			e := direct.Env{}
			for i := 0; i < 500; i++ {
				k := uint64(c*1000 + i)
				if _, err := tr.Insert(e, k, k); err != nil {
					t.Error(err)
					return
				}
				ok, _, err := tr.Delete(e, k, k)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					t.Errorf("own insert of %d not found for delete", k)
					return
				}
			}
		}()
	}
	wg.Wait()
	live, err := boot.CheckInvariants(env)
	if err != nil {
		t.Fatal(err)
	}
	if live != 0 {
		t.Fatalf("live = %d; want 0 (all deleted)", live)
	}
}

func TestStatsCounting(t *testing.T) {
	tr, _ := newRemoteTree(t, 512, 4)
	const n = 20000
	if _, err := tr.Build(env, BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	h, err := tr.Height(env)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := tr.Lookup(env, uint64(n/2))
	if err != nil {
		t.Fatal(err)
	}
	// A quiesced point lookup reads exactly height pages.
	if st.PageReads != h {
		t.Fatalf("point lookup read %d pages; height is %d", st.PageReads, h)
	}
	if st.PageWrites != 0 || st.Atomics != 0 {
		t.Fatalf("read-only op wrote: %+v", st)
	}
	st2, err2 := func() (Stats, error) {
		s, e := tr.Insert(env, uint64(n/2), 1)
		return s, e
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
	// Insert without split: height page reads + lock CAS + body write + FAA.
	if st2.Atomics != 2 || st2.PageWrites != 1 {
		t.Fatalf("no-split insert stats: %+v", st2)
	}
}

func TestLookupPropertyAgainstMap(t *testing.T) {
	tr := newLocalTree(t, 256)
	oracle := make(map[uint64][]uint64)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8000; i++ {
		k := uint64(rng.Intn(500))
		v := uint64(i)
		switch rng.Intn(4) {
		case 0, 1, 2:
			if _, err := tr.Insert(env, k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = append(oracle[k], v)
		case 3:
			if vs := oracle[k]; len(vs) > 0 {
				victim := vs[rng.Intn(len(vs))]
				ok, _, err := tr.Delete(env, k, victim)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("oracle value %d/%d missing in tree", k, victim)
				}
				for j, v2 := range vs {
					if v2 == victim {
						oracle[k] = append(vs[:j:j], vs[j+1:]...)
						break
					}
				}
			}
		}
	}
	for k, want := range oracle {
		got, _, err := tr.Lookup(env, k)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		w := append([]uint64(nil), want...)
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
		if len(got) != len(w) {
			t.Fatalf("key %d: %d values; want %d", k, len(got), len(w))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("key %d: values %v; want %v", k, got, w)
			}
		}
	}
	if _, err := tr.CheckInvariants(env); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLocalInsert(b *testing.B) {
	f := direct.New(1, 1<<30, 64)
	tr := New(layout.New(1024), LocalMem{Srv: f.Server(0)}, rdma.MakePtr(0, 0))
	if err := tr.Init(env); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Insert(env, uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalLookup(b *testing.B) {
	f := direct.New(1, 1<<30, 64)
	tr := New(layout.New(1024), LocalMem{Srv: f.Server(0)}, rdma.MakePtr(0, 0))
	const n = 1 << 20
	if _, err := tr.Build(env, BuildConfig{}, n, func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Lookup(env, uint64(i%n)); err != nil {
			b.Fatal(err)
		}
	}
}
