// Package cache implements compute-server-side caching of index pages — the
// Appendix A.4 extension of the paper.
//
// The cache is a btree.Mem decorator with an LRU of validated page copies
// and a consistency policy derived from the B-link structure:
//
// Every cache hit is revalidated with a single 8-byte version read; on a
// mismatch the page is re-fetched and the entry refreshed. A hit therefore
// trades the full page transfer for a tiny read — the bandwidth saving A.4
// anticipates for read-heavy workloads — while remote writes invalidate
// cached copies naturally through the version bump, and the caching layer
// composes transparently with the optimistic protocol above it (which
// re-reads until the version is stable).
//
// Only consistent (unlocked, version-stable) copies are inserted. The cache
// belongs to a single client thread, like the endpoint it wraps.
package cache

import (
	"container/list"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// Stats counts cache activity.
type Stats struct {
	Hits          int64 // served from cache (inner: free; leaf: validated)
	Misses        int64 // full page fetches
	Stale         int64 // leaf revalidations that failed
	Validations   int64 // 8-byte version reads for leaf hits
	Evictions     int64
	Invalidations int64 // cached copies dropped (stale or locally mutated)
	Refreshes     int64 // entries refreshed from validated prefetch batches
}

// Telemetry receives cache events; *telemetry.Recorder satisfies it. The
// interface lives here (not in internal/telemetry) so the dependency points
// from cache to nothing.
type Telemetry interface {
	CacheHit()
	CacheMiss()
	CacheInvalidation()
}

// Events receives per-access cache events with the page pointer — the flight
// recorder's view of the cache, complementing the aggregate Telemetry
// counters. *obs.Log satisfies it. An Events shares the cache's
// single-client-thread ownership.
type Events interface {
	// CacheHitEvent records a revalidated hit on the page at ptr (a raw
	// rdma.RemotePtr).
	CacheHitEvent(ptr uint64)
	// CacheMissEvent records a full-page fetch for ptr.
	CacheMissEvent(ptr uint64)
	// CacheStaleEvent records a revalidation failure dropping ptr's copy.
	CacheStaleEvent(ptr uint64)
}

// Mem decorates a btree.Mem with a page cache.
type Mem struct {
	inner    btree.Mem
	l        layout.Layout
	maxPages int

	lru     *list.List // front = most recent; values are *entry
	entries map[rdma.RemotePtr]*list.Element

	// CacheLeaves enables caching of leaf pages (with revalidation); inner
	// pages are always cached.
	CacheLeaves bool

	// Tel, when non-nil, additionally receives each hit/miss/invalidation.
	Tel Telemetry

	// Events, when non-nil, receives each hit/miss/stale with its page
	// pointer (the flight recorder hook).
	Events Events

	Stats Stats
}

type entry struct {
	ptr   rdma.RemotePtr
	words []uint64
	leaf  bool
}

var _ btree.Mem = (*Mem)(nil)

// New wraps m with a cache of at most maxPages pages.
func New(m btree.Mem, l layout.Layout, maxPages int) *Mem {
	return &Mem{
		inner:       m,
		l:           l,
		maxPages:    maxPages,
		lru:         list.New(),
		entries:     make(map[rdma.RemotePtr]*list.Element),
		CacheLeaves: true,
	}
}

func (m *Mem) lookup(p rdma.RemotePtr) *entry {
	el, ok := m.entries[p]
	if !ok {
		return nil
	}
	m.lru.MoveToFront(el)
	return el.Value.(*entry)
}

func (m *Mem) invalidate(p rdma.RemotePtr) {
	if el, ok := m.entries[p]; ok {
		m.lru.Remove(el)
		delete(m.entries, p)
		m.Stats.Invalidations++
		if m.Tel != nil {
			m.Tel.CacheInvalidation()
		}
	}
}

func (m *Mem) insert(p rdma.RemotePtr, words []uint64, leaf bool) {
	if m.maxPages <= 0 {
		return
	}
	if el, ok := m.entries[p]; ok {
		e := el.Value.(*entry)
		copy(e.words, words)
		e.leaf = leaf
		m.lru.MoveToFront(el)
		return
	}
	for m.lru.Len() >= m.maxPages {
		back := m.lru.Back()
		m.lru.Remove(back)
		delete(m.entries, back.Value.(*entry).ptr)
		m.Stats.Evictions++
	}
	e := &entry{ptr: p, words: append([]uint64(nil), words...), leaf: leaf}
	m.entries[p] = m.lru.PushFront(e)
}

// ReadWords implements btree.Mem. Full-page reads go through the cache;
// other sizes pass through.
func (m *Mem) ReadWords(p rdma.RemotePtr, dst []uint64) error {
	if len(dst) != m.l.Words {
		return m.inner.ReadWords(p, dst)
	}
	if e := m.lookup(p); e != nil {
		// Revalidate the copy with one 8-byte read.
		v, err := m.inner.LoadWord(p)
		if err != nil {
			return err
		}
		m.Stats.Validations++
		if v == layout.BufVersion(e.words) && !layout.IsLocked(v) {
			copy(dst, e.words)
			m.Stats.Hits++
			if m.Tel != nil {
				m.Tel.CacheHit()
			}
			if m.Events != nil {
				m.Events.CacheHitEvent(uint64(p))
			}
			return nil
		}
		m.Stats.Stale++
		if m.Events != nil {
			m.Events.CacheStaleEvent(uint64(p))
		}
		m.invalidate(p)
	}
	// Miss: fetch and insert only a consistent copy (unlocked, version
	// stable across the transfer).
	if err := m.inner.ReadWords(p, dst); err != nil {
		return err
	}
	m.Stats.Misses++
	if m.Tel != nil {
		m.Tel.CacheMiss()
	}
	if m.Events != nil {
		m.Events.CacheMissEvent(uint64(p))
	}
	v := layout.BufVersion(dst)
	if layout.IsLocked(v) {
		return nil
	}
	v2, err := m.inner.LoadWord(p)
	if err != nil {
		return err
	}
	if v2 != v {
		return nil
	}
	m.maybeInsert(p, dst)
	return nil
}

// maybeInsert caches a consistent page copy, honoring the head-node
// exclusion and the CacheLeaves policy. It reports whether the copy was
// inserted.
func (m *Mem) maybeInsert(p rdma.RemotePtr, words []uint64) bool {
	n := m.l.Wrap(words)
	if n.IsHead() {
		// Head nodes are maintenance-rebuilt and retired; don't cache.
		return false
	}
	if n.IsLeaf() && !m.CacheLeaves {
		return false
	}
	m.insert(p, words, n.IsLeaf())
	return true
}

// ReadValidated implements btree.Mem. A cache hit is revalidated with a
// single 8-byte version read (one exposed round trip, no page transfer); a
// miss runs the inner fused batch (also one exposed round trip) and inserts
// the consistent copy.
func (m *Mem) ReadValidated(p rdma.RemotePtr, dst []uint64) (uint64, bool, error) {
	if len(dst) != m.l.Words {
		return m.inner.ReadValidated(p, dst)
	}
	if e := m.lookup(p); e != nil {
		v, err := m.inner.LoadWord(p)
		if err != nil {
			return 0, false, err
		}
		m.Stats.Validations++
		if v == layout.BufVersion(e.words) && !layout.IsLocked(v) {
			copy(dst, e.words)
			m.Stats.Hits++
			if m.Tel != nil {
				m.Tel.CacheHit()
			}
			if m.Events != nil {
				m.Events.CacheHitEvent(uint64(p))
			}
			return v, true, nil
		}
		m.Stats.Stale++
		if m.Events != nil {
			m.Events.CacheStaleEvent(uint64(p))
		}
		m.invalidate(p)
	}
	v, ok, err := m.inner.ReadValidated(p, dst)
	if err != nil {
		return 0, false, err
	}
	m.Stats.Misses++
	if m.Tel != nil {
		m.Tel.CacheMiss()
	}
	if m.Events != nil {
		m.Events.CacheMissEvent(uint64(p))
	}
	if ok {
		m.maybeInsert(p, dst)
	}
	return v, ok, nil
}

// WriteWords implements btree.Mem; writes invalidate the covering page.
func (m *Mem) WriteWords(p rdma.RemotePtr, src []uint64) error {
	m.invalidateCovering(p)
	return m.inner.WriteWords(p, src)
}

// LoadWord implements btree.Mem.
func (m *Mem) LoadWord(p rdma.RemotePtr) (uint64, error) { return m.inner.LoadWord(p) }

// CAS implements btree.Mem; lock-word CAS invalidates the page (it is about
// to change or just changed).
func (m *Mem) CAS(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	m.invalidateCovering(p)
	return m.inner.CAS(p, old, new)
}

// FetchAdd implements btree.Mem.
func (m *Mem) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	m.invalidateCovering(p)
	return m.inner.FetchAdd(p, delta)
}

// invalidateCovering drops the cached page containing p: mutating verbs
// target either the page base (version word) or base+8 (body).
func (m *Mem) invalidateCovering(p rdma.RemotePtr) {
	m.invalidate(p)
	if p.Offset() >= 8 {
		m.invalidate(rdma.MakePtr(p.Server(), p.Offset()-8))
	}
}

// AllocPage implements btree.Mem.
func (m *Mem) AllocPage(level int, n int) (rdma.RemotePtr, error) {
	return m.inner.AllocPage(level, n)
}

// FreePage implements btree.Mem.
func (m *Mem) FreePage(p rdma.RemotePtr, n int) error {
	m.invalidate(p)
	return m.inner.FreePage(p, n)
}

// ReadPages implements btree.Mem; prefetch batches bypass the cache on the
// read side (they are already bandwidth-optimal) but refresh it: every
// prefetched copy whose version word came back unlocked and unchanged is a
// validated snapshot and is inserted under the usual policy (head nodes
// never, leaves only with CacheLeaves).
func (m *Mem) ReadPages(ps []rdma.RemotePtr, dst [][]uint64, versions []uint64) error {
	if err := m.inner.ReadPages(ps, dst, versions); err != nil {
		return err
	}
	for i, p := range ps {
		if len(dst[i]) != m.l.Words {
			continue
		}
		v := versions[i]
		if layout.IsLocked(v) || v != layout.BufVersion(dst[i]) {
			continue
		}
		if m.maybeInsert(p, dst[i]) {
			m.Stats.Refreshes++
		}
	}
	return nil
}

// Len returns the number of cached pages.
func (m *Mem) Len() int { return m.lru.Len() }

// HitRate returns hits / (hits + misses), or 0 when empty.
func (m *Mem) HitRate() float64 {
	t := m.Stats.Hits + m.Stats.Misses
	if t == 0 {
		return 0
	}
	return float64(m.Stats.Hits) / float64(t)
}
