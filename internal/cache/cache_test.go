package cache

import (
	"math/rand"
	"testing"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

var env = rdma.NopEnv{}

func buildTree(t *testing.T, n int) (*direct.Fabric, layout.Layout, rdma.RemotePtr) {
	t.Helper()
	f := direct.New(4, 64<<20, nam.SuperblockBytes)
	l := layout.New(512)
	root := rdma.MakePtr(0, 0)
	tr := btree.New(l, btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 0)}, root)
	if _, err := tr.Build(env, btree.BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	return f, l, root
}

func cachedTree(f *direct.Fabric, l layout.Layout, root rdma.RemotePtr, pages int) (*btree.Tree, *Mem) {
	base := btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 0)}
	cm := New(base, l, pages)
	return btree.New(l, cm, root), cm
}

func TestCacheHitsOnRepeatedLookups(t *testing.T) {
	f, l, root := buildTree(t, 10000)
	tr, cm := cachedTree(f, l, root, 1024)
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 200; i++ {
			vals, _, err := tr.Lookup(env, uint64(i*7))
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) != 1 || vals[0] != uint64(i*7) {
				t.Fatalf("Lookup(%d) = %v", i*7, vals)
			}
		}
	}
	if cm.Stats.Hits == 0 {
		t.Fatal("no cache hits on repeated lookups")
	}
	if cm.HitRate() < 0.5 {
		t.Fatalf("hit rate %f; want > 0.5", cm.HitRate())
	}
}

func TestCacheCorrectAfterRemoteWrite(t *testing.T) {
	f, l, root := buildTree(t, 5000)
	cachedT, _ := cachedTree(f, l, root, 1024)
	// Warm the cache.
	for i := 0; i < 500; i++ {
		if _, _, err := cachedT.Lookup(env, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Another (uncached) client mutates the tree.
	writer := btree.New(l, btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 1)}, root)
	for i := 0; i < 500; i++ {
		if _, err := writer.Insert(env, uint64(i), uint64(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// The cached reader must observe the new values (leaf revalidation).
	for i := 0; i < 500; i++ {
		vals, _, err := cachedT.Lookup(env, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 2 {
			t.Fatalf("Lookup(%d) after remote write = %v; want 2 values", i, vals)
		}
	}
}

func TestCacheCorrectAfterOwnWrite(t *testing.T) {
	f, l, root := buildTree(t, 5000)
	tr, _ := cachedTree(f, l, root, 1024)
	for i := 0; i < 300; i++ {
		k := uint64(i * 3)
		if _, _, err := tr.Lookup(env, k); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Insert(env, k, 999); err != nil {
			t.Fatal(err)
		}
		vals, _, err := tr.Lookup(env, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 2 {
			t.Fatalf("own write invisible through cache: Lookup(%d) = %v", k, vals)
		}
	}
}

func TestCacheEvictionBound(t *testing.T) {
	f, l, root := buildTree(t, 20000)
	tr, cm := cachedTree(f, l, root, 16)
	for i := 0; i < 2000; i++ {
		if _, _, err := tr.Lookup(env, uint64(i*9)); err != nil {
			t.Fatal(err)
		}
	}
	if cm.Len() > 16 {
		t.Fatalf("cache holds %d pages; bound is 16", cm.Len())
	}
	if cm.Stats.Evictions == 0 {
		t.Fatal("no evictions despite tiny cache")
	}
}

func TestZeroSizedCacheDisables(t *testing.T) {
	f, l, root := buildTree(t, 2000)
	tr, cm := cachedTree(f, l, root, 0)
	for i := 0; i < 100; i++ {
		if _, _, err := tr.Lookup(env, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if cm.Stats.Hits != 0 || cm.Len() != 0 {
		t.Fatalf("zero-sized cache cached something: %+v", cm.Stats)
	}
}

func TestCacheReducesTraffic(t *testing.T) {
	// Compare the verbs issued by a cached vs uncached client for the same
	// hot working set: the cached one must read far fewer full pages.
	f, l, root := buildTree(t, 20000)
	plain := btree.New(l, btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 0)}, root)
	cachedT, cm := cachedTree(f, l, root, 4096)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(rng.Intn(20000))
	}
	var plainReads, cachedReads int
	for rep := 0; rep < 5; rep++ {
		for _, k := range keys {
			_, st1, err := plain.Lookup(env, k)
			if err != nil {
				t.Fatal(err)
			}
			plainReads += st1.PageReads
			_, st2, err := cachedT.Lookup(env, k)
			if err != nil {
				t.Fatal(err)
			}
			cachedReads += st2.PageReads
		}
	}
	_ = cm
	// Stats.PageReads counts protocol-level page reads; the cache hides the
	// actual transfer. Measure at the cache instead.
	if cm.Stats.Misses >= cm.Stats.Hits {
		t.Fatalf("cache ineffective: hits=%d misses=%d", cm.Stats.Hits, cm.Stats.Misses)
	}
	_ = plainReads
	_ = cachedReads
}

func TestStaleLeafDetected(t *testing.T) {
	f, l, root := buildTree(t, 1000)
	tr, cm := cachedTree(f, l, root, 1024)
	if _, _, err := tr.Lookup(env, 10); err != nil {
		t.Fatal(err)
	}
	// Mutate the leaf behind the cache's back.
	writer := btree.New(l, btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 1)}, root)
	if _, err := writer.Insert(env, 10, 777); err != nil {
		t.Fatal(err)
	}
	vals, _, err := tr.Lookup(env, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("stale leaf served: %v", vals)
	}
	if cm.Stats.Stale == 0 {
		t.Fatal("stale revalidation not counted")
	}
}
