package cache

import (
	"math/rand"
	"testing"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

var env = rdma.NopEnv{}

func buildTree(t *testing.T, n int) (*direct.Fabric, layout.Layout, rdma.RemotePtr) {
	t.Helper()
	f := direct.New(4, 64<<20, nam.SuperblockBytes)
	l := layout.New(512)
	root := rdma.MakePtr(0, 0)
	tr := btree.New(l, &btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 0)}, root)
	if _, err := tr.Build(env, btree.BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	return f, l, root
}

func cachedTree(f *direct.Fabric, l layout.Layout, root rdma.RemotePtr, pages int) (*btree.Tree, *Mem) {
	base := &btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 0)}
	cm := New(base, l, pages)
	return btree.New(l, cm, root), cm
}

func TestCacheHitsOnRepeatedLookups(t *testing.T) {
	f, l, root := buildTree(t, 10000)
	tr, cm := cachedTree(f, l, root, 1024)
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 200; i++ {
			vals, _, err := tr.Lookup(env, uint64(i*7))
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) != 1 || vals[0] != uint64(i*7) {
				t.Fatalf("Lookup(%d) = %v", i*7, vals)
			}
		}
	}
	if cm.Stats.Hits == 0 {
		t.Fatal("no cache hits on repeated lookups")
	}
	if cm.HitRate() < 0.5 {
		t.Fatalf("hit rate %f; want > 0.5", cm.HitRate())
	}
}

func TestCacheCorrectAfterRemoteWrite(t *testing.T) {
	f, l, root := buildTree(t, 5000)
	cachedT, _ := cachedTree(f, l, root, 1024)
	// Warm the cache.
	for i := 0; i < 500; i++ {
		if _, _, err := cachedT.Lookup(env, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Another (uncached) client mutates the tree.
	writer := btree.New(l, &btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 1)}, root)
	for i := 0; i < 500; i++ {
		if _, err := writer.Insert(env, uint64(i), uint64(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// The cached reader must observe the new values (leaf revalidation).
	for i := 0; i < 500; i++ {
		vals, _, err := cachedT.Lookup(env, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 2 {
			t.Fatalf("Lookup(%d) after remote write = %v; want 2 values", i, vals)
		}
	}
}

func TestCacheCorrectAfterOwnWrite(t *testing.T) {
	f, l, root := buildTree(t, 5000)
	tr, _ := cachedTree(f, l, root, 1024)
	for i := 0; i < 300; i++ {
		k := uint64(i * 3)
		if _, _, err := tr.Lookup(env, k); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Insert(env, k, 999); err != nil {
			t.Fatal(err)
		}
		vals, _, err := tr.Lookup(env, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 2 {
			t.Fatalf("own write invisible through cache: Lookup(%d) = %v", k, vals)
		}
	}
}

func TestCacheEvictionBound(t *testing.T) {
	f, l, root := buildTree(t, 20000)
	tr, cm := cachedTree(f, l, root, 16)
	for i := 0; i < 2000; i++ {
		if _, _, err := tr.Lookup(env, uint64(i*9)); err != nil {
			t.Fatal(err)
		}
	}
	if cm.Len() > 16 {
		t.Fatalf("cache holds %d pages; bound is 16", cm.Len())
	}
	if cm.Stats.Evictions == 0 {
		t.Fatal("no evictions despite tiny cache")
	}
}

func TestZeroSizedCacheDisables(t *testing.T) {
	f, l, root := buildTree(t, 2000)
	tr, cm := cachedTree(f, l, root, 0)
	for i := 0; i < 100; i++ {
		if _, _, err := tr.Lookup(env, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if cm.Stats.Hits != 0 || cm.Len() != 0 {
		t.Fatalf("zero-sized cache cached something: %+v", cm.Stats)
	}
}

func TestCacheReducesTraffic(t *testing.T) {
	// Compare the verbs issued by a cached vs uncached client for the same
	// hot working set: the cached one must read far fewer full pages.
	f, l, root := buildTree(t, 20000)
	plain := btree.New(l, &btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 0)}, root)
	cachedT, cm := cachedTree(f, l, root, 4096)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(rng.Intn(20000))
	}
	var plainReads, cachedReads int
	for rep := 0; rep < 5; rep++ {
		for _, k := range keys {
			_, st1, err := plain.Lookup(env, k)
			if err != nil {
				t.Fatal(err)
			}
			plainReads += st1.PageReads
			_, st2, err := cachedT.Lookup(env, k)
			if err != nil {
				t.Fatal(err)
			}
			cachedReads += st2.PageReads
		}
	}
	_ = cm
	// Stats.PageReads counts protocol-level page reads; the cache hides the
	// actual transfer. Measure at the cache instead.
	if cm.Stats.Misses >= cm.Stats.Hits {
		t.Fatalf("cache ineffective: hits=%d misses=%d", cm.Stats.Hits, cm.Stats.Misses)
	}
	_ = plainReads
	_ = cachedReads
}

func TestStaleLeafDetected(t *testing.T) {
	f, l, root := buildTree(t, 1000)
	tr, cm := cachedTree(f, l, root, 1024)
	if _, _, err := tr.Lookup(env, 10); err != nil {
		t.Fatal(err)
	}
	// Mutate the leaf behind the cache's back.
	writer := btree.New(l, &btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 1)}, root)
	if _, err := writer.Insert(env, 10, 777); err != nil {
		t.Fatal(err)
	}
	vals, _, err := tr.Lookup(env, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("stale leaf served: %v", vals)
	}
	if cm.Stats.Stale == 0 {
		t.Fatal("stale revalidation not counted")
	}
}

// staleMem wraps a Mem and corrupts the versions a prefetch batch returns,
// simulating a writer racing the batch (version bumped, still unlocked).
type staleMem struct {
	btree.Mem
}

func (s staleMem) ReadPages(ps []rdma.RemotePtr, dst [][]uint64, versions []uint64) error {
	if err := s.Mem.ReadPages(ps, dst, versions); err != nil {
		return err
	}
	for i := range versions {
		versions[i] += 2 // mismatch the copy without setting the lock bit
	}
	return nil
}

// buildHeadTree builds a tree whose leaf chain carries head nodes, so scans
// trigger prefetch batches through the cache decorator.
func buildHeadTree(t *testing.T, n int) (*direct.Fabric, layout.Layout, rdma.RemotePtr) {
	t.Helper()
	f := direct.New(4, 64<<20, nam.SuperblockBytes)
	l := layout.New(512)
	root := rdma.MakePtr(0, 0)
	tr := btree.New(l, &btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 0)}, root)
	if _, err := tr.Build(env, btree.BuildConfig{HeadEvery: 4}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		t.Fatal(err)
	}
	return f, l, root
}

// leafPtrFromCache returns a cached leaf entry's pointer (white-box).
func leafPtrFromCache(t *testing.T, cm *Mem) rdma.RemotePtr {
	t.Helper()
	for p, el := range cm.entries {
		if el.Value.(*entry).leaf {
			return p
		}
	}
	t.Fatal("no leaf entry in cache")
	return rdma.NullPtr
}

func TestPrefetchRefreshesCache(t *testing.T) {
	f, l, root := buildHeadTree(t, 5000)
	tr, cm := cachedTree(f, l, root, 4096)

	// A range scan runs head-node prefetch batches through cm.ReadPages;
	// the validated copies must land in the LRU.
	count := 0
	if _, err := tr.Scan(env, 0, 3000, func(k, v uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 3001 {
		t.Fatalf("scan emitted %d entries, want 3001", count)
	}
	if cm.Stats.Refreshes == 0 {
		t.Fatal("prefetch batches refreshed nothing")
	}
	// Head nodes must never be cached.
	for _, el := range cm.entries {
		e := el.Value.(*entry)
		if l.Wrap(e.words).IsHead() {
			t.Fatalf("head node %v cached by prefetch refresh", e.ptr)
		}
	}
	// Point lookups into the scanned range now hit the refreshed leaves.
	h0 := cm.Stats.Hits
	for k := uint64(0); k < 200; k++ {
		if _, _, err := tr.Lookup(env, k); err != nil {
			t.Fatal(err)
		}
	}
	if cm.Stats.Hits == h0 {
		t.Fatal("no hits on leaves the prefetch refreshed")
	}
}

func TestPrefetchRefreshSkipsLockedAndStale(t *testing.T) {
	f, l, root := buildHeadTree(t, 5000)
	tr, cm := cachedTree(f, l, root, 4096)
	if _, err := tr.Scan(env, 0, 3000, func(k, v uint64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	p := leafPtrFromCache(t, cm)
	base := &btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 0)}

	// Locked skip: set the lock bit behind the cache's back, drop the
	// cached copy, and re-run a prefetch batch over the page.
	v, err := base.LoadWord(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.CAS(p, v, layout.WithLock(v)); err != nil {
		t.Fatal(err)
	}
	cm.invalidate(p)
	r0 := cm.Stats.Refreshes
	buf := make([]uint64, l.Words)
	vers := make([]uint64, 1)
	if err := cm.ReadPages([]rdma.RemotePtr{p}, [][]uint64{buf}, vers); err != nil {
		t.Fatal(err)
	}
	if cm.Stats.Refreshes != r0 {
		t.Fatal("locked page refreshed into cache")
	}
	if _, ok := cm.entries[p]; ok {
		t.Fatal("locked page present in cache")
	}
	if _, err := base.CAS(p, layout.WithLock(v), v); err != nil { // unlock
		t.Fatal(err)
	}

	// Stale skip: a batch whose version words mismatch the copies must not
	// refresh anything.
	stale := New(staleMem{base}, l, 64)
	if err := stale.ReadPages([]rdma.RemotePtr{p}, [][]uint64{buf}, vers); err != nil {
		t.Fatal(err)
	}
	if stale.Stats.Refreshes != 0 || stale.Len() != 0 {
		t.Fatalf("stale prefetch refreshed the cache: %+v", stale.Stats)
	}

	// CacheLeaves off: leaf prefetches are not inserted.
	noleaf := New(base, l, 64)
	noleaf.CacheLeaves = false
	if err := noleaf.ReadPages([]rdma.RemotePtr{p}, [][]uint64{buf}, vers); err != nil {
		t.Fatal(err)
	}
	if noleaf.Stats.Refreshes != 0 || noleaf.Len() != 0 {
		t.Fatalf("leaf refreshed despite CacheLeaves=false: %+v", noleaf.Stats)
	}
}
