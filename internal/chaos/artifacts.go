package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/namdb/rdmatree/internal/rdma/faultnet"
)

// WriteArtifacts persists a failed run's forensics under dir/name: the run
// parameters (design, replication factor, full fault schedule with its seed)
// as JSON, the report summary, and every flight-recorder dump as rendered
// text. The CI chaos and recovery jobs upload the directory as a workflow
// artifact on failure, making the failing run replayable — the schedule
// JSON is sufficient to reconstruct the Config, and the dumps hold the
// per-client causal traces.
func WriteArtifacts(dir, name string, cfg Config, rep *Report) error {
	sub := filepath.Join(dir, sanitizeName(name))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	meta := struct {
		Design       string
		Replicas     int
		Servers      int
		Clients      int
		OpsPerClient int
		Preload      int
		SkipVerify   bool
		Schedule     faultnet.Schedule
		Summary      string
	}{
		Design:       cfg.Design,
		Replicas:     cfg.Replicas,
		Servers:      cfg.Servers,
		Clients:      cfg.Clients,
		OpsPerClient: cfg.OpsPerClient,
		Preload:      cfg.Preload,
		SkipVerify:   cfg.SkipVerify,
		Schedule:     cfg.Schedule,
		Summary:      rep.Summary(),
	}
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(sub, "run.json"), append(b, '\n'), 0o644); err != nil {
		return err
	}
	for i, d := range rep.Dumps {
		fn := fmt.Sprintf("dump-%02d-client%d-%s.txt", i, d.Client, sanitizeName(d.Reason))
		if err := os.WriteFile(filepath.Join(sub, fn), []byte(d.Text), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeName maps a test or trigger name onto a safe file-name fragment.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}
