// Package chaos is the fault-injection harness: it deploys one of the three
// index designs on an in-process cluster, runs concurrent client load
// through the full robustness stack (faultnet fault injection → shared retry
// policy → operation-level epoch-fenced recovery), and verifies the
// survivor invariants afterwards through bare, fault-free endpoints:
//
//   - every acked insert is present exactly once (no lost acks, no
//     duplicated retries, no torn pages);
//   - no (key, value) pair appears twice anywhere in the tree;
//   - the tree is structurally well-formed (the engine's CheckInvariants
//     sweep);
//   - per-operation recovery latency stayed bounded;
//   - the injected-fault and retry counts are exported through the
//     telemetry counters.
//
// The per-endpoint fault streams and the scripted crash schedule are
// deterministic for a fixed Schedule.Seed (see faultnet); goroutine
// interleaving on the direct transport is not, so two runs inject the same
// fault pattern per client but may interleave operations differently.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/coarse"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/core/hybrid"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/policy"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/rdma/faultnet"
	"github.com/namdb/rdmatree/internal/rdma/repl"
	"github.com/namdb/rdmatree/internal/rdma/retry"
	"github.com/namdb/rdmatree/internal/telemetry"
)

// Config parameterizes one chaos run.
type Config struct {
	// Design is "coarse", "fine", or "hybrid".
	Design string
	// Servers is the memory-server count (default 4).
	Servers int
	// PageBytes is the index page size (default 512).
	PageBytes int
	// Preload is the number of bulk-loaded entries (default 2000).
	Preload int
	// Clients is the number of concurrent client goroutines (default 6).
	Clients int
	// OpsPerClient is the operation count per client (default 400).
	OpsPerClient int
	// Keyspace bounds the random keys (default 4 * Preload).
	Keyspace uint64
	// Schedule is the fault schedule executed by faultnet.
	Schedule faultnet.Schedule
	// SpinBudget bounds per-operation consistency restarts (default 20000).
	SpinBudget int
	// MaxOpAttempts bounds the operation-level recovery loop (default 8).
	MaxOpAttempts int
	// Recorder receives verb, fault, retry, and recovery counters. Nil
	// allocates a private one (exposed on the Report).
	Recorder *telemetry.Recorder
	// Obs enables the per-client flight recorders: every client's op spans,
	// level reads, retries, reconnects, and epoch fences are recorded into a
	// per-client obs.Log under a deterministic tick clock, and triggered
	// dumps (ErrServerLost, SLO breach, invariant failure) surface on the
	// Report.
	Obs bool
	// SLOTicks, when > 0 with Obs, is the per-op latency SLO in tick-clock
	// units (every recorded event is one tick); an op exceeding it triggers
	// a flight-recorder dump.
	SLOTicks int64
	// Replicas is the page-replication factor k (0 and 1 both mean
	// unreplicated). With k >= 2 every client runs the full replication
	// stack (repl.Router failover re-targeting + repl.Mirrorer
	// mirror-before-ack pushes), a scripted region loss physically wipes
	// the server's region, and the post-run phase promotes, verifies
	// through the surviving copies, and rebuilds the wiped members.
	Replicas int
	// SkipVerify skips the post-run verification and rebuild phases. It is
	// for scenarios asserting genuine unrecoverable loss (every member of a
	// replica group wiped): the surviving state is incomplete by
	// construction, so the invariant sweep is meaningless.
	SkipVerify bool
	// Adaptive runs each hybrid client under its own traversal-policy engine
	// (internal/policy): per-partition strategy decisions fed by the client's
	// own signal window, with promotions and group moves resetting the
	// affected partition's window. Ignored for the other designs.
	Adaptive bool
}

func (c *Config) defaults() {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.PageBytes == 0 {
		c.PageBytes = 512
	}
	if c.Preload == 0 {
		c.Preload = 2000
	}
	if c.Clients == 0 {
		c.Clients = 6
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 400
	}
	if c.Keyspace == 0 {
		c.Keyspace = uint64(4 * c.Preload)
	}
	if c.SpinBudget == 0 {
		c.SpinBudget = 20000
	}
	if c.MaxOpAttempts == 0 {
		c.MaxOpAttempts = 8
	}
}

// Report is the outcome of one chaos run.
type Report struct {
	Design string

	// Client-side outcome.
	AckedInserts  int // inserts acked to clients
	FailedInserts int // inserts surfacing an error (not acked)
	Lookups       int
	FailedOps     int // all operations surfacing an error
	ServerLostOps int // operations that surfaced rdma.ErrServerLost
	MaxOpNS       int64

	// Post-run verification through bare endpoints.
	LocksCleared   int  // abandoned page locks released before verification
	LiveEntries    int  // CheckInvariants' live-entry count
	AckedPresent   bool // every acked insert found exactly once
	NoDuplicates   bool // no (key, value) pair appears twice anywhere
	PreloadIntact  bool // every preloaded entry still present
	MissingAcked   int
	DuplicatePairs int
	MissingPreload int

	// Verified reports whether the post-run verification phase ran (false
	// only under Config.SkipVerify); the invariant verdicts above are
	// meaningful only when it did.
	Verified bool

	// Replication (Config.Replicas >= 2 only).
	Wiped        []int    // servers whose region was lost and wiped mid-run
	GroupEpochs  []uint64 // post-run authoritative epoch per group
	RebuiltWords int      // words recopied into wiped members by the rebuild
	RebuildClean bool     // every rebuilt member byte-identical to its authority

	// Telemetry (the run's Recorder, for counter assertions and reports).
	Recorder *telemetry.Recorder

	// Flight-recorder dumps (Config.Obs only), in client order: triggered
	// during the run by ErrServerLost or SLO breach, and forced for every
	// client when a post-run invariant fails.
	Dumps []obs.Dump
	// ObsEvents is the total number of events recorded across all clients.
	ObsEvents uint64

	// Traversal policy (Config.Adaptive on the hybrid design only).
	PolicySwitches int64 // strategy switches decided across all clients
	PolicyResets   int64 // promotion/group-move window resets across all clients
	// PolicyTrace concatenates every client's rendered decision trace in
	// client order. Decision timestamps come from the injected tick clocks,
	// so single-client runs of the same schedule render byte-identical
	// traces — the replayability contract CI diffs.
	PolicyTrace string
}

// Summary renders the report on a few lines.
func (r *Report) Summary() string {
	s := fmt.Sprintf(
		"design=%s acked_inserts=%d failed_inserts=%d failed_ops=%d server_lost_ops=%d max_op=%s locks_cleared=%d live=%d acked_present=%v no_duplicates=%v preload_intact=%v\n",
		r.Design, r.AckedInserts, r.FailedInserts, r.FailedOps, r.ServerLostOps,
		time.Duration(r.MaxOpNS), r.LocksCleared, r.LiveEntries, r.AckedPresent, r.NoDuplicates, r.PreloadIntact)
	if len(r.Wiped) > 0 {
		s += fmt.Sprintf("wiped=%v group_epochs=%v rebuilt_words=%d rebuild_clean=%v\n",
			r.Wiped, r.GroupEpochs, r.RebuiltWords, r.RebuildClean)
	}
	if r.PolicySwitches > 0 || r.PolicyResets > 0 {
		s += fmt.Sprintf("policy_switches=%d policy_resets=%d\n", r.PolicySwitches, r.PolicyResets)
	}
	return s
}

// kv is one (key, value) pair.
type kv struct{ k, v uint64 }

// deployment is one design on a direct fabric: client factory plus
// fault-free verification hooks. The verification hooks receive the
// verification endpoint (bare, or — replicated — a repl.Router over the bare
// endpoint so home-addressed accesses reach the acting copies) and the
// post-run acting map; unreplicated deployments receive the bare endpoint
// and the identity map.
type deployment struct {
	fab        *direct.Fabric
	cat        *nam.Catalog
	lay        nam.ReplicaLayout // zero value unless replicated
	replicated bool
	mk         func(ep rdma.Endpoint, mir *repl.Mirrorer, id int, log *obs.Log) core.Index
	check      func(ep rdma.Endpoint, acting func(home int) int) (int, error)
	// scan visits every live entry.
	scan func(ep rdma.Endpoint, emit func(k, v uint64) bool) error
	// repair releases page locks abandoned by interrupted clients (nil when
	// the design cannot abandon locks). It runs quiesced, before check/scan —
	// which read validating and would otherwise spin on an abandoned lock.
	repair func(ep rdma.Endpoint) (int, error)
}

func deploy(cfg *Config) (*deployment, error) {
	const region = 64 << 20
	replicated := cfg.Replicas >= 2
	reserved := nam.SuperblockBytes
	var lay nam.ReplicaLayout
	var regionBytes uint64
	if replicated {
		lay = nam.NewReplicaLayout(cfg.Servers, cfg.Replicas, region)
		reserved = int(lay.Reserved())
		regionBytes = region
	}
	fab := direct.New(cfg.Servers, region, reserved)
	if replicated {
		// Identity-offset mirroring needs disjoint per-server slabs: confine
		// each server's allocator to its home slab.
		for i := 0; i < cfg.Servers; i++ {
			fab.Server(i).Alloc = rdma.NewAllocator(lay.SlabLo(i), lay.SlabHi(i))
		}
	}
	spec := core.BuildSpec{
		N: cfg.Preload,
		At: func(i int) (uint64, uint64) {
			step := cfg.Keyspace / uint64(cfg.Preload)
			if step == 0 {
				step = 1
			}
			return uint64(i) * step, uint64(i)
		},
		HeadEvery: 6,
	}
	l := layout.New(cfg.PageBytes)
	var dep *deployment
	switch cfg.Design {
	case "coarse":
		srv := coarse.NewServer(fab, coarse.Options{
			Layout:      l,
			Part:        partition.NewRangeUniform(cfg.Servers, cfg.Keyspace),
			Replicas:    cfg.Replicas,
			RegionBytes: regionBytes,
			SpinBudget:  cfg.SpinBudget,
		})
		cat, err := srv.Build(spec)
		if err != nil {
			return nil, err
		}
		fab.SetHandler(srv.Handler())
		dep = &deployment{
			fab: fab, cat: cat,
			mk: func(ep rdma.Endpoint, mir *repl.Mirrorer, id int, log *obs.Log) core.Index {
				c := coarse.NewClient(ep, direct.Env{}, cat)
				if mir != nil {
					c.SetMirrorer(mir)
				}
				c.SetOpLog(log)
				return c
			},
			// No repair for the acting copies: coarse locks are taken and
			// released inside RPC handlers, and a dropped Call is dropped
			// before execution — a handler is never interrupted
			// mid-operation. (A backup copy can be left locked by an
			// interrupted client-side mirror push; verification reads only
			// acting copies, and the rebuild recopies backups wholesale.)
			check: func(_ rdma.Endpoint, acting func(home int) int) (int, error) {
				return srv.CheckInvariantsAt(acting)
			},
			scan: func(ep rdma.Endpoint, emit func(k, v uint64) bool) error {
				c := coarse.NewClient(ep, direct.Env{}, cat)
				return c.Range(0, ^uint64(0)>>1, emit)
			},
		}
	case "fine":
		cat, err := fine.Build(fab.Endpoint(), fine.Options{
			Layout:      l,
			Replicas:    cfg.Replicas,
			RegionBytes: regionBytes,
		}, spec)
		if err != nil {
			return nil, err
		}
		dep = &deployment{
			fab: fab, cat: cat,
			mk: func(ep rdma.Endpoint, mir *repl.Mirrorer, id int, log *obs.Log) core.Index {
				c := fine.NewClient(ep, direct.Env{}, cat, id)
				if mir != nil {
					c.SetReplicator(mir)
				}
				c.SetSpinBudget(cfg.SpinBudget)
				c.SetOpLog(log)
				return c
			},
			repair: func(ep rdma.Endpoint) (int, error) {
				c := fine.NewClient(ep, direct.Env{}, cat, 0)
				return c.Tree().RecoverLocks()
			},
			check: func(ep rdma.Endpoint, _ func(home int) int) (int, error) {
				c := fine.NewClient(ep, direct.Env{}, cat, 0)
				return c.Tree().CheckInvariants(rdma.NopEnv{})
			},
			scan: func(ep rdma.Endpoint, emit func(k, v uint64) bool) error {
				c := fine.NewClient(ep, direct.Env{}, cat, 0)
				return c.Range(0, ^uint64(0)>>1, emit)
			},
		}
	case "hybrid":
		srv := hybrid.NewServer(fab, hybrid.Options{
			Layout:      l,
			Part:        partition.NewRangeUniform(cfg.Servers, cfg.Keyspace),
			Replicas:    cfg.Replicas,
			RegionBytes: regionBytes,
			SpinBudget:  cfg.SpinBudget,
		})
		cat, err := srv.Build(fab.Endpoint(), spec)
		if err != nil {
			return nil, err
		}
		fab.SetHandler(srv.Handler())
		dep = &deployment{
			fab: fab, cat: cat,
			mk: func(ep rdma.Endpoint, mir *repl.Mirrorer, id int, log *obs.Log) core.Index {
				c := hybrid.NewClient(ep, direct.Env{}, cat, id)
				if mir != nil {
					c.SetMirrorer(mir)
				}
				c.SetSpinBudget(cfg.SpinBudget)
				c.SetOpLog(log)
				return c
			},
			repair: func(ep rdma.Endpoint) (int, error) { return srv.RecoverLocks(ep) },
			check: func(ep rdma.Endpoint, _ func(home int) int) (int, error) {
				return srv.CheckInvariants(ep)
			},
			scan: func(ep rdma.Endpoint, emit func(k, v uint64) bool) error {
				c := hybrid.NewClient(ep, direct.Env{}, cat, 0)
				return c.Range(0, ^uint64(0)>>1, emit)
			},
		}
	default:
		return nil, fmt.Errorf("chaos: unknown design %q", cfg.Design)
	}
	dep.lay, dep.replicated = lay, replicated
	if replicated {
		// Seed the backups with the bulk-loaded image: mirror-before-ack
		// covers only pages written after the clients start.
		repl.SyncReplicas(lay, fab.Server)
	}
	return dep, nil
}

// adaptiveClient is the policy surface of a design client (the hybrid
// clients implement it).
type adaptiveClient interface {
	SetDecider(policy.Decider)
	SetSignalFeed(policy.Feed, policy.Clock)
}

// policyReplEvents fans replication events out to the flight recorder and
// the client's policy engine: a promotion or an adopted group move means the
// partition's signals were measured against the old acting server, so the
// engine resets its window instead of feeding the estimator stale samples.
// Like the Router firing it, it runs on the owning client's goroutine.
type policyReplEvents struct {
	log *obs.Log // nil-safe
	eng *policy.Engine
}

var _ repl.Events = (*policyReplEvents)(nil)

func (p *policyReplEvents) PromotionEvent(home int, epoch uint64, acting int) {
	p.log.PromotionEvent(home, epoch, acting)
	p.eng.ResetPartition(home)
}

func (p *policyReplEvents) GroupMovedEvent(home int, epoch uint64) {
	p.log.GroupMovedEvent(home, epoch)
	p.eng.ResetPartition(home)
}

func (p *policyReplEvents) MemberDeadEvent(home, member int) {
	p.log.MemberDeadEvent(home, member)
}

// chaosPolicyConfig is the engine configuration chaos clients run under:
// Defaults plus a dwell horizon in the client's clock units. With a shared
// flight-recorder tick clock every recorded event is one tick, so 600 ticks
// is roughly 40-100 operations; without one the engine's private TickClock
// advances only at decision points, so the dwell is counted in decisions.
func chaosPolicyConfig(servers int, sharedClock bool) policy.Config {
	cfg := policy.Defaults(servers)
	if sharedClock {
		cfg.MinDwell = 600
	} else {
		cfg.MinDwell = 4
	}
	return cfg
}

// clientResult is one client goroutine's outcome.
type clientResult struct {
	acked      []kv
	lookups    int
	failedIns  int
	failedOps  int
	serverLost int
	maxOpNS    int64
}

// Run executes one chaos run and verifies the post-run invariants. A non-nil
// error means the harness itself failed (deployment, verification scan); the
// invariant verdicts are on the Report.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()
	dep, err := deploy(&cfg)
	if err != nil {
		return nil, err
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = telemetry.NewRecorder(cfg.Servers)
	}
	net := faultnet.New(cfg.Schedule, rec)

	// Region loss becomes real under replication: a scripted Lose zeroes the
	// region's bytes, so recovery must come from the group's surviving
	// copies. (k=1 keeps the legacy lost-registration-only model, where the
	// post-run sweep still sees the old bytes through a bare endpoint.)
	var wipedMu sync.Mutex
	var wiped []int
	if dep.replicated {
		net.OnLose = func(s int) {
			dep.fab.Server(s).Region.Zero()
			wipedMu.Lock()
			wiped = append(wiped, s)
			wipedMu.Unlock()
		}
	}

	// Per-client flight recorders. Each Log is owned by its client goroutine
	// (like the endpoint); the tick clock makes recorded traces a pure causal
	// order, so a single-client run under a fixed seed dumps byte-identical
	// text on every execution.
	var logs []*obs.Log
	if cfg.Obs {
		logs = make([]*obs.Log, cfg.Clients)
		for c := range logs {
			logs[c] = obs.NewLog(0, &obs.TickClock{})
			logs[c].ClientID = c
			logs[c].SLONS = cfg.SLOTicks
		}
	}

	adaptive := cfg.Adaptive && cfg.Design == "hybrid"
	var engines []*policy.Engine
	if adaptive {
		engines = make([]*policy.Engine, cfg.Clients)
	}

	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var log *obs.Log // nil unless cfg.Obs; nil disables recording
			if logs != nil {
				log = logs[c]
			}
			// The client's policy engine and signal window, sharing the
			// flight recorder's tick clock when one exists so decision
			// timestamps interleave causally with the recorded events.
			var eng *policy.Engine
			var win *policy.Window
			var pclk policy.Clock
			if adaptive {
				pclk = &obs.TickClock{}
				if log != nil {
					pclk = log.Clock
				}
				win = policy.NewWindow(cfg.Servers)
				eng = policy.NewEngine(chaosPolicyConfig(cfg.Servers, log != nil), win, pclk)
				if log != nil {
					eng.Events = log
				}
				engines[c] = eng
			}
			// The full robustness stack, built inside the owning goroutine:
			// transport endpoint → fault injection → shared retry policy →
			// design client → operation-level recovery.
			pol := &retry.Policy{
				Seed:     cfg.Schedule.Seed + int64(c),
				Counters: rec,
			}
			if log != nil {
				pol.Events = log
			}
			var base rdma.Endpoint = net.Endpoint(dep.fab.Endpoint(), c)
			var mir *repl.Mirrorer
			if dep.replicated {
				// Replication layers: the Router (failover re-targeting +
				// promotion) sits below the outer retry policy so every
				// attempt re-routes; the Mirrorer shares the Router's view,
				// so promotions observed by either side converge. Both run
				// their own internal policies — promotion and mirror verbs
				// must survive the fault schedule without consuming the
				// failing operation's budget.
				router := repl.NewRouter(base, dep.lay, nil, &retry.Policy{
					Seed:     cfg.Schedule.Seed + 1_000 + int64(c),
					Counters: rec,
				})
				mir = repl.NewMirrorer(router, direct.Env{}, &retry.Policy{
					Seed:     cfg.Schedule.Seed + 2_000 + int64(c),
					Counters: rec,
				})
				if eng != nil {
					// Promotions and group moves reset the policy window on
					// top of the usual flight-recorder events.
					router.Events = &policyReplEvents{log: log, eng: eng}
				} else if log != nil {
					router.Events = log
				}
				if log != nil {
					mir.Events = log
				}
				base = router
			}
			ep := retry.Wrap(base, pol)
			inner := dep.mk(ep, mir, c, log)
			if eng != nil {
				if a, ok := inner.(adaptiveClient); ok {
					a.SetDecider(eng)
					a.SetSignalFeed(win, pclk)
				}
			}
			idx := core.Recover(inner, cfg.MaxOpAttempts, rec)
			if log != nil {
				idx = idx.WithEvents(log)
			}
			res := &results[c]
			rng := rand.New(rand.NewSource(cfg.Schedule.Seed*101 + int64(c)))
			for i := 0; i < cfg.OpsPerClient; i++ {
				k := rng.Uint64() % cfg.Keyspace
				start := time.Now()
				if i%4 == 3 {
					// The harness owns the op span: retries, reconnects, and
					// epoch fences of the recovery wrapper land inside it (the
					// design client's own Begin/End nests).
					log.BeginOp(obs.OpLookup, k, -1)
					_, err := idx.Lookup(k)
					log.EndOp(err)
					res.lookups++
					if err != nil {
						res.failedOps++
						if errors.Is(err, rdma.ErrServerLost) {
							res.serverLost++
						}
					}
				} else {
					// Values are unique per logical insert — the idempotence
					// token the exactly-once recovery contract needs.
					v := uint64(1)<<40 | uint64(c)<<32 | uint64(i)
					log.BeginOp(obs.OpInsert, k, -1)
					err := idx.Insert(k, v)
					log.EndOp(err)
					if err == nil {
						res.acked = append(res.acked, kv{k, v})
					} else {
						res.failedIns++
						res.failedOps++
						if errors.Is(err, rdma.ErrServerLost) {
							res.serverLost++
						}
					}
				}
				if d := time.Since(start).Nanoseconds(); d > res.maxOpNS {
					res.maxOpNS = d
				}
			}
		}(c)
	}
	wg.Wait()

	rep := &Report{Design: cfg.Design, Recorder: rec}
	acked := map[kv]bool{}
	for i := range results {
		res := &results[i]
		rep.AckedInserts += len(res.acked)
		rep.FailedInserts += res.failedIns
		rep.Lookups += res.lookups
		rep.FailedOps += res.failedOps
		rep.ServerLostOps += res.serverLost
		if res.maxOpNS > rep.MaxOpNS {
			rep.MaxOpNS = res.maxOpNS
		}
		for _, p := range res.acked {
			acked[p] = true
		}
	}

	rep.Wiped = append(rep.Wiped, wiped...)
	for _, eng := range engines {
		if eng != nil {
			rep.PolicySwitches += eng.Switches()
			rep.PolicyResets += eng.Resets()
			rep.PolicyTrace += eng.RenderTrace()
		}
	}

	// Post-run verification through fault-free endpoints. Unreplicated,
	// scripted crashes leave the region contents physically intact (faultnet
	// models lost registrations, not lost DRAM), so a bare endpoint sees the
	// whole tree even after crash/restart schedules. Replicated, the wiped
	// regions really are gone: verification first reconstructs the
	// authoritative view from the surviving epoch words — promoting any
	// group whose loss no client happened to observe — and then reads
	// through a repl.Router so every home-addressed access lands on the
	// acting copy.
	bare := dep.fab.Endpoint()
	vep := bare
	acting := func(home int) int { return home }
	var view *repl.View
	if dep.replicated {
		view = postRunView(dep, wiped)
		for h := 0; h < cfg.Servers; h++ {
			rep.GroupEpochs = append(rep.GroupEpochs, view.Epoch(h))
		}
		vep = repl.NewRouter(bare, dep.lay, view, nil)
		acting = view.Acting
	}

	// The harness-level log records post-run recovery actions (the lock
	// sweep, the replica rebuild) under its own tick clock; client logs
	// cannot — their goroutines have quiesced and the sweep is not part of
	// any client op.
	var sweepLog *obs.Log
	if cfg.Obs {
		sweepLog = obs.NewLog(64, &obs.TickClock{})
		sweepLog.ClientID = -1
	}
	if !cfg.SkipVerify {
		rep.Verified = true
		// First release any page lock abandoned by a client that lost its
		// server mid-operation — the recovery pass an operator would run
		// before readmitting traffic; without it, the validating
		// verification reads below would spin on the dead client's lock.
		if dep.repair != nil {
			cleared, err := dep.repair(vep)
			if err != nil {
				return rep, fmt.Errorf("chaos: post-run lock recovery: %w", err)
			}
			rep.LocksCleared = cleared
			sweepLog.SweepEvent(cleared)
		}
		live, err := dep.check(vep, acting)
		if err != nil {
			return rep, fmt.Errorf("chaos: post-run invariant check: %w", err)
		}
		rep.LiveEntries = live

		seen := map[kv]int{}
		if err := dep.scan(vep, func(k, v uint64) bool {
			seen[kv{k, v}]++
			return true
		}); err != nil {
			return rep, fmt.Errorf("chaos: post-run scan: %w", err)
		}
		rep.AckedPresent, rep.NoDuplicates, rep.PreloadIntact = true, true, true
		for p := range acked {
			if seen[p] != 1 {
				rep.AckedPresent = false
				rep.MissingAcked++
			}
		}
		for _, n := range seen {
			if n > 1 {
				rep.NoDuplicates = false
				rep.DuplicatePairs++
			}
		}
		step := cfg.Keyspace / uint64(cfg.Preload)
		if step == 0 {
			step = 1
		}
		for i := 0; i < cfg.Preload; i++ {
			if seen[kv{uint64(i) * step, uint64(i)}] != 1 {
				rep.PreloadIntact = false
				rep.MissingPreload++
			}
		}

		// Re-admit every wiped member: re-register its region (adopting the
		// new incarnation), recopy its groups' slab extents from the acting
		// authorities, and verify the copies byte-identical — the crash
		// rebuild that restores full replication factor k.
		if dep.replicated && len(wiped) > 0 {
			rep.RebuildClean = true
			admin := net.Endpoint(bare, cfg.Clients)
			for _, s := range wiped {
				// Each Reregister attempt advances the fault clock, so a
				// server whose down-window outlived the workload still
				// reaches its scripted restart.
				var rerr error
				for i := 0; i < 100_000; i++ {
					if rerr = admin.Reregister(s); !errors.Is(rerr, rdma.ErrServerDown) {
						break
					}
				}
				if rerr != nil {
					return rep, fmt.Errorf("chaos: reregister server %d: %w", s, rerr)
				}
				words, err := repl.RebuildMember(dep.lay, s, acting, dep.fab.Server)
				if err != nil {
					return rep, fmt.Errorf("chaos: rebuild server %d: %w", s, err)
				}
				rep.RebuiltWords += words
				sweepLog.RebuildEvent(s, words)
				for _, h := range dep.lay.Groups.GroupsOf(s) {
					ref := dep.fab.Server(acting(h))
					if ref == dep.fab.Server(s) {
						continue
					}
					if d := repl.DiffExtent(dep.lay, h, ref, dep.fab.Server(s), dep.fab.Server); d != 0 {
						rep.RebuildClean = false
					}
				}
			}
		}
	}

	// Collect flight-recorder dumps. An invariant failure force-dumps every
	// client's ring (plus the harness sweep log) so the failing run's causal
	// history survives as an artifact even when no client-side trigger fired.
	if logs != nil {
		if rep.Verified && (!rep.AckedPresent || !rep.NoDuplicates || !rep.PreloadIntact) {
			for _, l := range logs {
				l.ForceDump("chaos-failure")
			}
			sweepLog.ForceDump("chaos-failure")
		}
		for _, l := range append(logs, sweepLog) {
			d, _ := l.Dumps()
			rep.Dumps = append(rep.Dumps, d...)
			rep.ObsEvents += l.Events()
		}
	}
	return rep, nil
}

// postRunView reconstructs the authoritative replication view after the
// clients have quiesced: per group, the maximum epoch recorded on any member
// is the truth (epoch words only move forward, under CAS). A group whose
// acting member was wiped but whose epoch words never moved — no surviving
// client happened to touch it after the loss — is promoted here, the step a
// readmission operator performs before serving traffic again.
func postRunView(dep *deployment, wiped []int) *repl.View {
	view := repl.NewView(dep.lay)
	lost := map[int]bool{}
	for _, s := range wiped {
		lost[s] = true
		view.MarkDead(s)
	}
	bare := dep.fab.Endpoint()
	for h := 0; h < dep.lay.Groups.Servers(); h++ {
		members := dep.lay.Groups.Members(h)
		k := uint64(len(members))
		var e uint64
		for _, m := range members {
			var w [1]uint64
			if err := bare.Read(nam.GroupEpochPtr(m, h), w[:]); err == nil && w[0] > e {
				e = w[0]
			}
		}
		promoted := false
		for i := uint64(0); i < k && lost[members[e%k]]; i++ {
			e++
			promoted = true
		}
		if lost[members[e%k]] {
			continue // every member wiped: genuine k-fault loss
		}
		if promoted {
			for _, m := range members {
				if !lost[m] {
					_ = bare.Write(nam.GroupEpochPtr(m, h), []uint64{e}) //rdmavet:allow verberrs -- bare fault-free endpoint on a live member; a failed epoch install surfaces in the verification reads that follow
				}
			}
		}
		view.SetEpoch(h, e)
	}
	return view
}
