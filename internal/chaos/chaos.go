// Package chaos is the fault-injection harness: it deploys one of the three
// index designs on an in-process cluster, runs concurrent client load
// through the full robustness stack (faultnet fault injection → shared retry
// policy → operation-level epoch-fenced recovery), and verifies the
// survivor invariants afterwards through bare, fault-free endpoints:
//
//   - every acked insert is present exactly once (no lost acks, no
//     duplicated retries, no torn pages);
//   - no (key, value) pair appears twice anywhere in the tree;
//   - the tree is structurally well-formed (the engine's CheckInvariants
//     sweep);
//   - per-operation recovery latency stayed bounded;
//   - the injected-fault and retry counts are exported through the
//     telemetry counters.
//
// The per-endpoint fault streams and the scripted crash schedule are
// deterministic for a fixed Schedule.Seed (see faultnet); goroutine
// interleaving on the direct transport is not, so two runs inject the same
// fault pattern per client but may interleave operations differently.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/coarse"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/core/hybrid"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/rdma/faultnet"
	"github.com/namdb/rdmatree/internal/rdma/retry"
	"github.com/namdb/rdmatree/internal/telemetry"
)

// Config parameterizes one chaos run.
type Config struct {
	// Design is "coarse", "fine", or "hybrid".
	Design string
	// Servers is the memory-server count (default 4).
	Servers int
	// PageBytes is the index page size (default 512).
	PageBytes int
	// Preload is the number of bulk-loaded entries (default 2000).
	Preload int
	// Clients is the number of concurrent client goroutines (default 6).
	Clients int
	// OpsPerClient is the operation count per client (default 400).
	OpsPerClient int
	// Keyspace bounds the random keys (default 4 * Preload).
	Keyspace uint64
	// Schedule is the fault schedule executed by faultnet.
	Schedule faultnet.Schedule
	// SpinBudget bounds per-operation consistency restarts (default 20000).
	SpinBudget int
	// MaxOpAttempts bounds the operation-level recovery loop (default 8).
	MaxOpAttempts int
	// Recorder receives verb, fault, retry, and recovery counters. Nil
	// allocates a private one (exposed on the Report).
	Recorder *telemetry.Recorder
	// Obs enables the per-client flight recorders: every client's op spans,
	// level reads, retries, reconnects, and epoch fences are recorded into a
	// per-client obs.Log under a deterministic tick clock, and triggered
	// dumps (ErrServerLost, SLO breach, invariant failure) surface on the
	// Report.
	Obs bool
	// SLOTicks, when > 0 with Obs, is the per-op latency SLO in tick-clock
	// units (every recorded event is one tick); an op exceeding it triggers
	// a flight-recorder dump.
	SLOTicks int64
}

func (c *Config) defaults() {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.PageBytes == 0 {
		c.PageBytes = 512
	}
	if c.Preload == 0 {
		c.Preload = 2000
	}
	if c.Clients == 0 {
		c.Clients = 6
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 400
	}
	if c.Keyspace == 0 {
		c.Keyspace = uint64(4 * c.Preload)
	}
	if c.SpinBudget == 0 {
		c.SpinBudget = 20000
	}
	if c.MaxOpAttempts == 0 {
		c.MaxOpAttempts = 8
	}
}

// Report is the outcome of one chaos run.
type Report struct {
	Design string

	// Client-side outcome.
	AckedInserts  int // inserts acked to clients
	FailedInserts int // inserts surfacing an error (not acked)
	Lookups       int
	FailedOps     int // all operations surfacing an error
	ServerLostOps int // operations that surfaced rdma.ErrServerLost
	MaxOpNS       int64

	// Post-run verification through bare endpoints.
	LocksCleared   int  // abandoned page locks released before verification
	LiveEntries    int  // CheckInvariants' live-entry count
	AckedPresent   bool // every acked insert found exactly once
	NoDuplicates   bool // no (key, value) pair appears twice anywhere
	PreloadIntact  bool // every preloaded entry still present
	MissingAcked   int
	DuplicatePairs int
	MissingPreload int

	// Telemetry (the run's Recorder, for counter assertions and reports).
	Recorder *telemetry.Recorder

	// Flight-recorder dumps (Config.Obs only), in client order: triggered
	// during the run by ErrServerLost or SLO breach, and forced for every
	// client when a post-run invariant fails.
	Dumps []obs.Dump
	// ObsEvents is the total number of events recorded across all clients.
	ObsEvents uint64
}

// Summary renders the report on a few lines.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"design=%s acked_inserts=%d failed_inserts=%d failed_ops=%d server_lost_ops=%d max_op=%s locks_cleared=%d live=%d acked_present=%v no_duplicates=%v preload_intact=%v\n",
		r.Design, r.AckedInserts, r.FailedInserts, r.FailedOps, r.ServerLostOps,
		time.Duration(r.MaxOpNS), r.LocksCleared, r.LiveEntries, r.AckedPresent, r.NoDuplicates, r.PreloadIntact)
}

// kv is one (key, value) pair.
type kv struct{ k, v uint64 }

// deployment is one design on a direct fabric: client factory plus bare
// (fault-free) verification hooks.
type deployment struct {
	fab   *direct.Fabric
	cat   *nam.Catalog
	mk    func(ep rdma.Endpoint, id int, log *obs.Log) core.Index
	check func() (int, error)
	// scan visits every live entry through a bare endpoint.
	scan func(emit func(k, v uint64) bool) error
	// repair releases page locks abandoned by interrupted clients (nil when
	// the design cannot abandon locks). It runs quiesced, before check/scan —
	// which read validating and would otherwise spin on an abandoned lock.
	repair func() (int, error)
}

func deploy(cfg *Config) (*deployment, error) {
	const region = 64 << 20
	fab := direct.New(cfg.Servers, region, nam.SuperblockBytes)
	spec := core.BuildSpec{
		N: cfg.Preload,
		At: func(i int) (uint64, uint64) {
			step := cfg.Keyspace / uint64(cfg.Preload)
			if step == 0 {
				step = 1
			}
			return uint64(i) * step, uint64(i)
		},
		HeadEvery: 6,
	}
	l := layout.New(cfg.PageBytes)
	switch cfg.Design {
	case "coarse":
		srv := coarse.NewServer(fab, coarse.Options{
			Layout: l,
			Part:   partition.NewRangeUniform(cfg.Servers, cfg.Keyspace),
		})
		cat, err := srv.Build(spec)
		if err != nil {
			return nil, err
		}
		fab.SetHandler(srv.Handler())
		return &deployment{
			fab: fab, cat: cat,
			mk: func(ep rdma.Endpoint, id int, log *obs.Log) core.Index {
				c := coarse.NewClient(ep, direct.Env{}, cat)
				c.SetOpLog(log)
				return c
			},
			// No repair: coarse locks are taken and released inside RPC
			// handlers, and a dropped Call is dropped before execution — a
			// handler is never interrupted mid-operation.
			check: srv.CheckInvariants,
			scan: func(emit func(k, v uint64) bool) error {
				c := coarse.NewClient(fab.Endpoint(), direct.Env{}, cat)
				return c.Range(0, ^uint64(0)>>1, emit)
			},
		}, nil
	case "fine":
		cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: l}, spec)
		if err != nil {
			return nil, err
		}
		return &deployment{
			fab: fab, cat: cat,
			mk: func(ep rdma.Endpoint, id int, log *obs.Log) core.Index {
				c := fine.NewClient(ep, direct.Env{}, cat, id)
				c.SetSpinBudget(cfg.SpinBudget)
				c.SetOpLog(log)
				return c
			},
			repair: func() (int, error) {
				c := fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
				return c.Tree().RecoverLocks()
			},
			check: func() (int, error) {
				c := fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
				return c.Tree().CheckInvariants(rdma.NopEnv{})
			},
			scan: func(emit func(k, v uint64) bool) error {
				c := fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
				return c.Range(0, ^uint64(0)>>1, emit)
			},
		}, nil
	case "hybrid":
		srv := hybrid.NewServer(fab, hybrid.Options{
			Layout: l,
			Part:   partition.NewRangeUniform(cfg.Servers, cfg.Keyspace),
		})
		cat, err := srv.Build(fab.Endpoint(), spec)
		if err != nil {
			return nil, err
		}
		fab.SetHandler(srv.Handler())
		return &deployment{
			fab: fab, cat: cat,
			mk: func(ep rdma.Endpoint, id int, log *obs.Log) core.Index {
				c := hybrid.NewClient(ep, direct.Env{}, cat, id)
				c.SetSpinBudget(cfg.SpinBudget)
				c.SetOpLog(log)
				return c
			},
			repair: func() (int, error) { return srv.RecoverLocks(fab.Endpoint()) },
			check:  func() (int, error) { return srv.CheckInvariants(fab.Endpoint()) },
			scan: func(emit func(k, v uint64) bool) error {
				c := hybrid.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
				return c.Range(0, ^uint64(0)>>1, emit)
			},
		}, nil
	default:
		return nil, fmt.Errorf("chaos: unknown design %q", cfg.Design)
	}
}

// clientResult is one client goroutine's outcome.
type clientResult struct {
	acked      []kv
	lookups    int
	failedIns  int
	failedOps  int
	serverLost int
	maxOpNS    int64
}

// Run executes one chaos run and verifies the post-run invariants. A non-nil
// error means the harness itself failed (deployment, verification scan); the
// invariant verdicts are on the Report.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()
	dep, err := deploy(&cfg)
	if err != nil {
		return nil, err
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = telemetry.NewRecorder(cfg.Servers)
	}
	net := faultnet.New(cfg.Schedule, rec)

	// Per-client flight recorders. Each Log is owned by its client goroutine
	// (like the endpoint); the tick clock makes recorded traces a pure causal
	// order, so a single-client run under a fixed seed dumps byte-identical
	// text on every execution.
	var logs []*obs.Log
	if cfg.Obs {
		logs = make([]*obs.Log, cfg.Clients)
		for c := range logs {
			logs[c] = obs.NewLog(0, &obs.TickClock{})
			logs[c].ClientID = c
			logs[c].SLONS = cfg.SLOTicks
		}
	}

	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var log *obs.Log // nil unless cfg.Obs; nil disables recording
			if logs != nil {
				log = logs[c]
			}
			// The full robustness stack, built inside the owning goroutine:
			// transport endpoint → fault injection → shared retry policy →
			// design client → operation-level recovery.
			pol := &retry.Policy{
				Seed:     cfg.Schedule.Seed + int64(c),
				Counters: rec,
			}
			if log != nil {
				pol.Events = log
			}
			ep := retry.Wrap(net.Endpoint(dep.fab.Endpoint(), c), pol)
			idx := core.Recover(dep.mk(ep, c, log), cfg.MaxOpAttempts, rec)
			if log != nil {
				idx = idx.WithEvents(log)
			}
			res := &results[c]
			rng := rand.New(rand.NewSource(cfg.Schedule.Seed*101 + int64(c)))
			for i := 0; i < cfg.OpsPerClient; i++ {
				k := rng.Uint64() % cfg.Keyspace
				start := time.Now()
				if i%4 == 3 {
					// The harness owns the op span: retries, reconnects, and
					// epoch fences of the recovery wrapper land inside it (the
					// design client's own Begin/End nests).
					log.BeginOp(obs.OpLookup, k, -1)
					_, err := idx.Lookup(k)
					log.EndOp(err)
					res.lookups++
					if err != nil {
						res.failedOps++
						if errors.Is(err, rdma.ErrServerLost) {
							res.serverLost++
						}
					}
				} else {
					// Values are unique per logical insert — the idempotence
					// token the exactly-once recovery contract needs.
					v := uint64(1)<<40 | uint64(c)<<32 | uint64(i)
					log.BeginOp(obs.OpInsert, k, -1)
					err := idx.Insert(k, v)
					log.EndOp(err)
					if err == nil {
						res.acked = append(res.acked, kv{k, v})
					} else {
						res.failedIns++
						res.failedOps++
						if errors.Is(err, rdma.ErrServerLost) {
							res.serverLost++
						}
					}
				}
				if d := time.Since(start).Nanoseconds(); d > res.maxOpNS {
					res.maxOpNS = d
				}
			}
		}(c)
	}
	wg.Wait()

	rep := &Report{Design: cfg.Design, Recorder: rec}
	acked := map[kv]bool{}
	for i := range results {
		res := &results[i]
		rep.AckedInserts += len(res.acked)
		rep.FailedInserts += res.failedIns
		rep.Lookups += res.lookups
		rep.FailedOps += res.failedOps
		rep.ServerLostOps += res.serverLost
		if res.maxOpNS > rep.MaxOpNS {
			rep.MaxOpNS = res.maxOpNS
		}
		for _, p := range res.acked {
			acked[p] = true
		}
	}

	// Post-run verification through bare endpoints. Scripted crashes leave
	// the region contents physically intact (faultnet models lost
	// registrations, not lost DRAM), so the sweep sees the whole tree even
	// after crash/restart schedules. First release any page lock abandoned by
	// a client that lost its server mid-operation — the recovery pass an
	// operator would run before readmitting traffic; without it, the
	// validating verification reads below would spin on the dead client's
	// lock.
	// The harness-level log records post-run recovery actions (the lock
	// sweep) under its own tick clock; client logs cannot — their goroutines
	// have quiesced and the sweep is not part of any client op.
	var sweepLog *obs.Log
	if cfg.Obs {
		sweepLog = obs.NewLog(64, &obs.TickClock{})
		sweepLog.ClientID = -1
	}
	if dep.repair != nil {
		cleared, err := dep.repair()
		if err != nil {
			return rep, fmt.Errorf("chaos: post-run lock recovery: %w", err)
		}
		rep.LocksCleared = cleared
		sweepLog.SweepEvent(cleared)
	}
	live, err := dep.check()
	if err != nil {
		return rep, fmt.Errorf("chaos: post-run invariant check: %w", err)
	}
	rep.LiveEntries = live

	seen := map[kv]int{}
	if err := dep.scan(func(k, v uint64) bool {
		seen[kv{k, v}]++
		return true
	}); err != nil {
		return rep, fmt.Errorf("chaos: post-run scan: %w", err)
	}
	rep.AckedPresent, rep.NoDuplicates, rep.PreloadIntact = true, true, true
	for p := range acked {
		if seen[p] != 1 {
			rep.AckedPresent = false
			rep.MissingAcked++
		}
	}
	for _, n := range seen {
		if n > 1 {
			rep.NoDuplicates = false
			rep.DuplicatePairs++
		}
	}
	step := cfg.Keyspace / uint64(cfg.Preload)
	if step == 0 {
		step = 1
	}
	for i := 0; i < cfg.Preload; i++ {
		if seen[kv{uint64(i) * step, uint64(i)}] != 1 {
			rep.PreloadIntact = false
			rep.MissingPreload++
		}
	}

	// Collect flight-recorder dumps. An invariant failure force-dumps every
	// client's ring (plus the harness sweep log) so the failing run's causal
	// history survives as an artifact even when no client-side trigger fired.
	if logs != nil {
		if !rep.AckedPresent || !rep.NoDuplicates || !rep.PreloadIntact {
			for _, l := range logs {
				l.ForceDump("chaos-failure")
			}
			sweepLog.ForceDump("chaos-failure")
		}
		for _, l := range append(logs, sweepLog) {
			d, _ := l.Dumps()
			rep.Dumps = append(rep.Dumps, d...)
			rep.ObsEvents += l.Events()
		}
	}
	return rep, nil
}
