package chaos

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// maxOpWall bounds any single operation's wall-clock latency, recovery
// included. The direct transport completes verbs in nanoseconds and scripted
// outages last verb ticks (which the blocked clients' own retries advance),
// so even heavily faulted operations finish in microseconds; the bound is
// generous for loaded CI machines running the whole scenario matrix in
// parallel under -race.
const maxOpWall = 30 * time.Second

// saveArtifacts persists the failing run's flight-recorder dumps and fault
// schedule when CHAOS_ARTIFACT_DIR is set (the CI chaos and recovery jobs
// set it and upload the directory on failure). Call it deferred, after the
// run, so t.Failed reflects the test's assertions.
func saveArtifacts(t *testing.T, cfg Config, rep *Report) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" || rep == nil || !t.Failed() {
		return
	}
	if err := WriteArtifacts(dir, t.Name(), cfg, rep); err != nil {
		t.Logf("writing chaos artifacts: %v", err)
	}
}

// shrinkForShort shrinks the workload for -short runs.
func shrinkForShort(cfg *Config) {
	if testing.Short() {
		cfg.Clients = 4
		cfg.OpsPerClient = 250
		cfg.Preload = 1000
	}
}

// TestScenarios runs every scripted fault schedule against every design and
// asserts the scenario's declared contract (Scenario.Expect): recovery
// scenarios must keep every acked insert present exactly once with no
// duplicates and the preload intact, while permanent-loss scenarios must
// surface rdma.ErrServerLost instead of silent corruption.
func TestScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, design := range []string{"coarse", "fine", "hybrid"} {
			sc, design := sc, design
			t.Run(sc.Name+"/"+design, func(t *testing.T) {
				t.Parallel()
				cfg := Config{
					Design:     design,
					Schedule:   sc.Schedule,
					Replicas:   sc.Replicas,
					SkipVerify: sc.Expect.PermanentLoss,
					Adaptive:   sc.Adaptive,
					Obs:        true,
				}
				shrinkForShort(&cfg)
				rep, err := Run(cfg)
				if err != nil {
					t.Fatalf("chaos run: %v", err)
				}
				defer saveArtifacts(t, cfg, rep)
				t.Logf("%s", rep.Summary())
				assertScenario(t, sc, design, rep)
			})
		}
	}
}

// assertScenario checks one run's report against its scenario's Expect.
func assertScenario(t *testing.T, sc Scenario, design string, rep *Report) {
	t.Helper()
	if rep.AckedInserts == 0 {
		t.Fatalf("no insert was ever acked under schedule %q", sc.Name)
	}
	// Policy assertions apply only where the engine runs: hybrid + Adaptive.
	if sc.Adaptive && design == "hybrid" {
		if m := sc.Expect.MaxPolicySwitches; m > 0 && rep.PolicySwitches > int64(m) {
			t.Errorf("schedule %q: %d strategy switches exceed the flap bound %d\ntrace:\n%s",
				sc.Name, rep.PolicySwitches, m, rep.PolicyTrace)
		}
		if sc.Expect.PolicyResets && rep.PolicyResets == 0 {
			t.Errorf("schedule %q: promotion never reset a partition's policy window", sc.Name)
		}
	} else if rep.PolicySwitches != 0 || rep.PolicyResets != 0 {
		t.Errorf("schedule %q on %s reported policy activity (%d switches, %d resets) without an engine",
			sc.Name, design, rep.PolicySwitches, rep.PolicyResets)
	}
	// The op-latency bound is a *recovery* latency bound; a permanent-loss
	// scenario's doomed operations legitimately burn their whole retry,
	// reconnect, and promotion budgets before surfacing ErrServerLost, which
	// under -race can take tens of seconds of (slowed) backoff.
	if d := time.Duration(rep.MaxOpNS); d > maxOpWall && !sc.Expect.PermanentLoss {
		t.Errorf("slowest operation took %s; recovery latency unbounded (want < %s)", d, maxOpWall)
	}
	rec := rep.Recorder
	if rec.Faults() == 0 {
		t.Errorf("schedule %q injected no faults", sc.Name)
	}
	if rec.Retries() == 0 {
		t.Errorf("schedule %q drove no verb retries", sc.Name)
	}
	if sc.Expect.Reconnects && rec.Reconnects() == 0 {
		t.Errorf("schedule %q should force QP re-establishment", sc.Name)
	}
	if sc.Expect.ServerLost && rep.ServerLostOps == 0 {
		t.Errorf("schedule %q should surface rdma.ErrServerLost to some client", sc.Name)
	}
	if !sc.Expect.ServerLost && rep.ServerLostOps > 0 {
		t.Errorf("schedule %q surfaced rdma.ErrServerLost on %d operations; expected full recovery", sc.Name, rep.ServerLostOps)
	}
	if sc.Expect.PermanentLoss {
		if rep.Verified {
			t.Errorf("schedule %q expects permanent loss but verification ran", sc.Name)
		}
		return
	}
	if !rep.Verified {
		t.Fatalf("schedule %q: post-run verification did not run", sc.Name)
	}
	if !rep.AckedPresent {
		t.Errorf("%d acked inserts not present exactly once", rep.MissingAcked)
	}
	if !rep.NoDuplicates {
		t.Errorf("%d (key, value) pairs duplicated", rep.DuplicatePairs)
	}
	if !rep.PreloadIntact {
		t.Errorf("%d preloaded entries missing", rep.MissingPreload)
	}
	if sc.Replicas >= 2 {
		if len(sc.Schedule.Steps) > 0 && len(rep.Wiped) == 0 {
			t.Errorf("schedule %q scripted a region loss but no server was wiped", sc.Name)
		}
		if len(rep.Wiped) > 0 {
			if !rep.RebuildClean {
				t.Errorf("schedule %q: rebuilt members differ from their group authorities", sc.Name)
			}
			if rep.RebuiltWords == 0 {
				t.Errorf("schedule %q: rebuild copied no words", sc.Name)
			}
		}
	}
}

// TestReplicationRecoveryMatrix is the CI recovery gate: the replicated
// crash-with-region-loss scenario across every design and several fault
// seeds, asserting the full recovery contract — every acked operation
// survives the loss of a primary's registered region, no operation surfaces
// rdma.ErrServerLost (the group fails over instead), and the post-run crash
// rebuild restores byte-identical replicas.
func TestReplicationRecoveryMatrix(t *testing.T) {
	sc, ok := FindScenario("repl-crash-lose")
	if !ok {
		t.Fatal("repl-crash-lose scenario missing")
	}
	seeds := []int64{101, 202, 303}
	for _, design := range []string{"coarse", "fine", "hybrid"} {
		for _, seed := range seeds {
			design, seed := design, seed
			t.Run(fmt.Sprintf("%s/seed%d", design, seed), func(t *testing.T) {
				t.Parallel()
				sched := sc.Schedule
				sched.Seed = seed
				cfg := Config{
					Design:   design,
					Schedule: sched,
					Replicas: sc.Replicas,
					Obs:      true,
				}
				shrinkForShort(&cfg)
				rep, err := Run(cfg)
				if err != nil {
					t.Fatalf("chaos run: %v", err)
				}
				defer saveArtifacts(t, cfg, rep)
				t.Logf("%s", rep.Summary())
				if rep.AckedInserts == 0 {
					t.Fatal("no insert was ever acked")
				}
				if rep.ServerLostOps != 0 {
					t.Errorf("%d operations surfaced rdma.ErrServerLost; replicated region loss must recover", rep.ServerLostOps)
				}
				if !rep.AckedPresent {
					t.Errorf("%d acked inserts lost", rep.MissingAcked)
				}
				if !rep.NoDuplicates {
					t.Errorf("%d (key, value) pairs duplicated", rep.DuplicatePairs)
				}
				if !rep.PreloadIntact {
					t.Errorf("%d preloaded entries missing", rep.MissingPreload)
				}
				if len(rep.Wiped) == 0 {
					t.Error("the scripted region loss never fired")
					return
				}
				if !rep.RebuildClean {
					t.Error("rebuilt member differs from its group authorities")
				}
				if rep.RebuiltWords == 0 {
					t.Error("rebuild copied no words")
				}
			})
		}
	}
}

// TestPolicyFlapTraceReplay pins the policy engine's replayability contract
// under the policy-flap schedule: a single client (identical verb sequence,
// so identical faults, signals, and tick-clock timestamps) must render a
// byte-identical decision trace across two runs, and the scripted wipe's
// promotion must reset the affected partition's window.
func TestPolicyFlapTraceReplay(t *testing.T) {
	sc, ok := FindScenario("policy-flap")
	if !ok {
		t.Fatal("policy-flap scenario missing")
	}
	var traces [2]string
	var resets [2]int64
	for i := range traces {
		rep, err := Run(Config{
			Design:       "hybrid",
			Clients:      1,
			OpsPerClient: 600,
			Preload:      1000,
			Schedule:     sc.Schedule,
			Replicas:     sc.Replicas,
			Adaptive:     true,
			Obs:          true,
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		traces[i], resets[i] = rep.PolicyTrace, rep.PolicyResets
	}
	if traces[0] != traces[1] {
		t.Errorf("decision traces differ across identical seeded runs:\nrun 0:\n%s\nrun 1:\n%s", traces[0], traces[1])
	}
	if resets[0] == 0 {
		t.Error("the scripted wipe's promotion never reset a policy window")
	}
	if resets[0] != resets[1] {
		t.Errorf("reset counts differ across identical runs: %d vs %d", resets[0], resets[1])
	}
}

// TestDeterministicFaultCounts pins the determinism contract: with a single
// client (no goroutine interleaving, so an identical verb sequence), two runs
// of the same schedule inject the identical number of faults. Multi-client
// runs keep per-endpoint streams deterministic but their verb counts vary
// with lock-contention interleaving, so only the serial case pins an exact
// count.
func TestDeterministicFaultCounts(t *testing.T) {
	sc, ok := FindScenario("drop")
	if !ok {
		t.Fatal("drop scenario missing")
	}
	counts := make([]int64, 2)
	for i := range counts {
		rep, err := Run(Config{Design: "fine", Clients: 1, OpsPerClient: 400, Preload: 500, Schedule: sc.Schedule})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		counts[i] = rep.Recorder.Faults()
		if counts[i] == 0 {
			t.Fatalf("run %d injected no faults", i)
		}
	}
	if counts[0] != counts[1] {
		t.Errorf("fault counts differ across identical runs: %d vs %d", counts[0], counts[1])
	}
}

// TestWriteArtifacts exercises the CI failure-forensics path directly (it
// normally runs only on a red chaos/recovery job): a run's schedule and
// flight-recorder dumps must land as replayable files, with test names
// sanitized into safe paths.
func TestWriteArtifacts(t *testing.T) {
	sc, ok := FindScenario("repl-crash-lose")
	if !ok {
		t.Fatal("repl-crash-lose scenario missing")
	}
	cfg := Config{Design: "fine", Clients: 2, OpsPerClient: 100, Preload: 500,
		Schedule: sc.Schedule, Replicas: sc.Replicas, Obs: true}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	dir := t.TempDir()
	if err := WriteArtifacts(dir, "TestWriteArtifacts/fine/seed 6", cfg, rep); err != nil {
		t.Fatalf("WriteArtifacts: %v", err)
	}
	meta, err := os.ReadFile(dir + "/TestWriteArtifacts_fine_seed_6/run.json")
	if err != nil {
		t.Fatalf("run.json missing: %v", err)
	}
	for _, want := range []string{`"Design": "fine"`, `"Replicas": 2`, `"Seed": 6`} {
		if !strings.Contains(string(meta), want) {
			t.Errorf("run.json missing %s:\n%s", want, meta)
		}
	}
}

// TestUnknownDesign covers the harness's own error path.
func TestUnknownDesign(t *testing.T) {
	if _, err := Run(Config{Design: "sharded"}); err == nil {
		t.Fatal("want error for unknown design")
	}
}
