package chaos

import (
	"testing"
	"time"
)

// maxOpWall bounds any single operation's wall-clock latency, recovery
// included. The direct transport completes verbs in nanoseconds and scripted
// outages last verb ticks (which the blocked clients' own retries advance),
// so even heavily faulted operations finish in microseconds; the bound is
// generous for loaded CI machines.
const maxOpWall = 10 * time.Second

// TestScenarios runs every scripted fault schedule against every design and
// verifies the survivor invariants: acked inserts present exactly once, no
// duplicate pairs, preload intact, tree well-formed, recovery latency
// bounded, and faults/retries visible through telemetry.
func TestScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, design := range []string{"coarse", "fine", "hybrid"} {
			sc, design := sc, design
			t.Run(sc.Name+"/"+design, func(t *testing.T) {
				t.Parallel()
				cfg := Config{Design: design, Schedule: sc.Schedule}
				if testing.Short() {
					cfg.Clients = 4
					cfg.OpsPerClient = 250
					cfg.Preload = 1000
				}
				rep, err := Run(cfg)
				if err != nil {
					t.Fatalf("chaos run: %v", err)
				}
				t.Logf("%s", rep.Summary())
				if rep.AckedInserts == 0 {
					t.Fatalf("no insert was ever acked under schedule %q", sc.Name)
				}
				if !rep.AckedPresent {
					t.Errorf("%d acked inserts not present exactly once", rep.MissingAcked)
				}
				if !rep.NoDuplicates {
					t.Errorf("%d (key, value) pairs duplicated", rep.DuplicatePairs)
				}
				if !rep.PreloadIntact {
					t.Errorf("%d preloaded entries missing", rep.MissingPreload)
				}
				if d := time.Duration(rep.MaxOpNS); d > maxOpWall {
					t.Errorf("slowest operation took %s; recovery latency unbounded (want < %s)", d, maxOpWall)
				}
				rec := rep.Recorder
				if rec.Faults() == 0 {
					t.Errorf("schedule %q injected no faults", sc.Name)
				}
				if rec.Retries() == 0 {
					t.Errorf("schedule %q drove no verb retries", sc.Name)
				}
				switch sc.Name {
				case "qp-error", "crash-restart":
					if rec.Reconnects() == 0 {
						t.Errorf("schedule %q should force QP re-establishment", sc.Name)
					}
				case "crash-lose":
					if rep.ServerLostOps == 0 {
						t.Errorf("losing a server's region should surface rdma.ErrServerLost to some client")
					}
				}
			})
		}
	}
}

// TestDeterministicFaultCounts pins the determinism contract: with a single
// client (no goroutine interleaving, so an identical verb sequence), two runs
// of the same schedule inject the identical number of faults. Multi-client
// runs keep per-endpoint streams deterministic but their verb counts vary
// with lock-contention interleaving, so only the serial case pins an exact
// count.
func TestDeterministicFaultCounts(t *testing.T) {
	sc, ok := FindScenario("drop")
	if !ok {
		t.Fatal("drop scenario missing")
	}
	counts := make([]int64, 2)
	for i := range counts {
		rep, err := Run(Config{Design: "fine", Clients: 1, OpsPerClient: 400, Preload: 500, Schedule: sc.Schedule})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		counts[i] = rep.Recorder.Faults()
		if counts[i] == 0 {
			t.Fatalf("run %d injected no faults", i)
		}
	}
	if counts[0] != counts[1] {
		t.Errorf("fault counts differ across identical runs: %d vs %d", counts[0], counts[1])
	}
}

// TestUnknownDesign covers the harness's own error path.
func TestUnknownDesign(t *testing.T) {
	if _, err := Run(Config{Design: "sharded"}); err == nil {
		t.Fatal("want error for unknown design")
	}
}
