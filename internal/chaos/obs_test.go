package chaos

import (
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/rdma/faultnet"
)

// obsConfig is the acceptance scenario for the flight recorder: one client
// (so goroutine interleaving cannot perturb the trace) running the
// fine-grained design under the crash-lose schedule — server 2 restarts
// without its registered region, and every operation touching it surfaces
// rdma.ErrServerLost after the full retry/recovery ladder runs.
func obsConfig() Config {
	return Config{
		Design:       "fine",
		Clients:      1,
		Preload:      1000,
		OpsPerClient: 300,
		Obs:          true,
		Schedule: faultnet.Schedule{
			Seed: 5,
			Steps: []faultnet.Step{
				{AtTick: 1_600, Server: 2, DownForTicks: 150, Lose: true},
			},
		},
	}
}

func TestObsDumpDeterministic(t *testing.T) {
	a, err := Run(obsConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(obsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Dumps) == 0 {
		t.Fatal("crash-lose run produced no flight-recorder dump")
	}
	if a.ObsEvents == 0 || a.ObsEvents != b.ObsEvents {
		t.Fatalf("ObsEvents = %d vs %d, want equal and non-zero", a.ObsEvents, b.ObsEvents)
	}
	if len(a.Dumps) != len(b.Dumps) {
		t.Fatalf("dump counts differ: %d vs %d", len(a.Dumps), len(b.Dumps))
	}
	for i := range a.Dumps {
		if a.Dumps[i].Reason != b.Dumps[i].Reason {
			t.Fatalf("dump %d reason %q vs %q", i, a.Dumps[i].Reason, b.Dumps[i].Reason)
		}
		if a.Dumps[i].Text != b.Dumps[i].Text {
			t.Fatalf("dump %d text differs between identical runs (dump not byte-stable)", i)
		}
	}
}

// TestObsDumpReconstructsFailure asserts the acceptance criterion: from the
// dump alone, the failing operation's full causal chain is reconstructable —
// the traversal's level reads, the retry storm with backoff against the dead
// server, the failed reconnect attempts, the epoch-fenced re-traversals, and
// the terminal server-lost verdict, in that order inside one op span.
func TestObsDumpReconstructsFailure(t *testing.T) {
	rep, err := Run(obsConfig())
	if err != nil {
		t.Fatal(err)
	}
	var text string
	for _, d := range rep.Dumps {
		if d.Reason == "server-lost" {
			text = d.Text
			break
		}
	}
	if text == "" {
		t.Fatalf("no server-lost dump among %d dumps", len(rep.Dumps))
	}

	// Isolate the failing op's span: the last "op-end err=server-lost" line
	// and its matching top-level op start.
	end := strings.LastIndex(text, "op-end err=server-lost")
	if end < 0 {
		t.Fatalf("dump has no terminal server-lost op-end:\n%s", text)
	}
	start := strings.LastIndex(text[:end], "\n[t=")
	for start > 0 {
		line := text[start+1:]
		if i := strings.IndexByte(line, '\n'); i >= 0 {
			line = line[:i]
		}
		if strings.Contains(line, "] op ") {
			break
		}
		start = strings.LastIndex(text[:start], "\n[t=")
	}
	if start < 0 {
		t.Fatalf("no op start found before the failing op-end:\n%s", text)
	}
	span := text[start : strings.IndexByte(text[end:], '\n')+end]

	// The causal chain, in order. Each marker must appear after the previous
	// one within the span.
	chain := []string{
		"] op ",                  // the operation opens
		"read s",                 // level reads of the traversal
		"retry s2 backoff=",      // verb retries with backoff against the dead server
		"reconnect s2",           // QP re-establishment attempts
		"epoch-fence n=1",        // first epoch-fenced re-traversal
		"nested",                 // the re-run traversal nests in the same span
		"epoch-fence n=2",        // recovery keeps fencing until the budget runs out
		"op-end err=server-lost", // terminal verdict
	}
	pos := 0
	for _, marker := range chain {
		i := strings.Index(span[pos:], marker)
		if i < 0 {
			t.Fatalf("causal chain broken: %q not found after offset %d in failing op span:\n%s", marker, pos, span)
		}
		pos += i
	}
}
