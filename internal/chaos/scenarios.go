package chaos

import "github.com/namdb/rdmatree/internal/rdma/faultnet"

// Scenario is one named, scripted fault schedule.
type Scenario struct {
	Name string
	// What the schedule exercises, for reports.
	Doc      string
	Schedule faultnet.Schedule
}

// Scenarios returns the library of scripted fault schedules the chaos tests
// and the nambench chaos experiment run. Every schedule is deterministic for
// its seed. The tick-scripted crashes are placed to land mid-run for the
// least verb-intensive design (coarse issues ~one Call per operation, so the
// default workload advances the tick counter by only a couple thousand);
// verb-heavy designs just hit the same ticks earlier in their run.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "delay",
			Doc:  "delayed completions: 30% of verbs delayed, roughly half past the deadline (timeout, verb not executed)",
			Schedule: faultnet.Schedule{
				Seed:       1,
				DelayRate:  0.30,
				DeadlineNS: 10_000,
				MaxDelayNS: 20_000,
			},
		},
		{
			Name: "drop",
			Doc:  "dropped completions: 2% of verbs time out without executing",
			Schedule: faultnet.Schedule{
				Seed:     2,
				DropRate: 0.02,
			},
		},
		{
			Name: "qp-error",
			Doc:  "QP error transitions roughly every 250 verbs per client, each requiring reconnect",
			Schedule: faultnet.Schedule{
				Seed:         3,
				QPErrorEvery: 250,
			},
		},
		{
			Name: "crash-restart",
			Doc:  "server 1 crashes twice mid-run and restarts with its region intact, on top of a 0.5% drop rate",
			Schedule: faultnet.Schedule{
				Seed:     4,
				DropRate: 0.005,
				Steps: []faultnet.Step{
					{AtTick: 800, Server: 1, DownForTicks: 150},
					{AtTick: 1_800, Server: 1, DownForTicks: 150},
				},
			},
		},
		{
			Name: "crash-lose",
			Doc:  "server 2 crashes late in the run and restarts without its registered region: operations touching it surface rdma.ErrServerLost",
			Schedule: faultnet.Schedule{
				Seed: 5,
				Steps: []faultnet.Step{
					{AtTick: 1_600, Server: 2, DownForTicks: 150, Lose: true},
				},
			},
		},
	}
}

// Scenario returns the named scenario, or false.
func FindScenario(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
