package chaos

import "github.com/namdb/rdmatree/internal/rdma/faultnet"

// Expect declares a scenario's contract — the outcome the chaos tests
// assert. It is per-scenario data, not code, so the same schedule shape can
// carry different expectations at different replication factors: an
// unreplicated region loss is permanent ErrServerLost, while the same loss
// at k >= 2 must fail over and recover every acked operation.
type Expect struct {
	// Reconnects asserts the run performed at least one QP re-establishment.
	Reconnects bool
	// ServerLost asserts at least one operation surfaced rdma.ErrServerLost
	// to its client. When false, the tests assert *zero* such operations —
	// the recovery contract of replicated region loss.
	ServerLost bool
	// PermanentLoss marks genuine unrecoverable data loss (every member of
	// a replica group wiped, or any wipe at k=1 if one were scripted):
	// post-run verification and rebuild are skipped because the surviving
	// state is incomplete by construction.
	PermanentLoss bool
	// MaxPolicySwitches, when > 0 on an Adaptive scenario, bounds the total
	// strategy-switch count across all clients on the hybrid design — the
	// no-flapping contract: hysteresis and dwell must hold the switch count
	// far below the evaluation count even under pressure that oscillates
	// the cost estimates.
	MaxPolicySwitches int
	// PolicyResets asserts that at least one promotion/group-move reset a
	// partition's policy state and signal window (hybrid + Adaptive only).
	PolicyResets bool
}

// Scenario is one named, scripted fault schedule.
type Scenario struct {
	Name string
	// What the schedule exercises, for reports.
	Doc string
	// Replicas is the page-replication factor the scenario runs at (0 and 1
	// both mean unreplicated).
	Replicas int
	// Adaptive runs the hybrid design's clients under the traversal-policy
	// engine (Config.Adaptive); the other designs ignore it.
	Adaptive bool
	Schedule faultnet.Schedule
	// Expect is the scenario's asserted outcome.
	Expect Expect
}

// Scenarios returns the library of scripted fault schedules the chaos tests
// and the nambench chaos experiment run. Every schedule is deterministic for
// its seed. The tick-scripted crashes are placed to land mid-run for the
// least verb-intensive design (coarse issues ~one Call per operation, so the
// default workload advances the tick counter by only a couple thousand);
// verb-heavy designs just hit the same ticks earlier in their run.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "delay",
			Doc:  "delayed completions: 30% of verbs delayed, roughly half past the deadline (timeout, verb not executed)",
			Schedule: faultnet.Schedule{
				Seed:       1,
				DelayRate:  0.30,
				DeadlineNS: 10_000,
				MaxDelayNS: 20_000,
			},
		},
		{
			Name: "drop",
			Doc:  "dropped completions: 2% of verbs time out without executing",
			Schedule: faultnet.Schedule{
				Seed:     2,
				DropRate: 0.02,
			},
		},
		{
			Name: "qp-error",
			Doc:  "QP error transitions roughly every 250 verbs per client, each requiring reconnect",
			Schedule: faultnet.Schedule{
				Seed:         3,
				QPErrorEvery: 250,
			},
			Expect: Expect{Reconnects: true},
		},
		{
			Name: "crash-restart",
			Doc:  "server 1 crashes twice mid-run and restarts with its region intact, on top of a 0.5% drop rate",
			Schedule: faultnet.Schedule{
				Seed:     4,
				DropRate: 0.005,
				Steps: []faultnet.Step{
					{AtTick: 800, Server: 1, DownForTicks: 150},
					{AtTick: 1_800, Server: 1, DownForTicks: 150},
				},
			},
			Expect: Expect{Reconnects: true},
		},
		{
			Name: "crash-lose",
			Doc:  "unreplicated: server 2 crashes late in the run and restarts without its registered region: operations touching it surface rdma.ErrServerLost",
			Schedule: faultnet.Schedule{
				Seed: 5,
				Steps: []faultnet.Step{
					{AtTick: 1_600, Server: 2, DownForTicks: 150, Lose: true},
				},
			},
			Expect: Expect{ServerLost: true},
		},
		{
			Name:     "repl-crash-lose",
			Doc:      "k=2: server 2 crashes mid-run and restarts with its region wiped; its group fails over to the surviving replica and every acked operation recovers",
			Replicas: 2,
			Schedule: faultnet.Schedule{
				Seed: 6,
				Steps: []faultnet.Step{
					{AtTick: 1_600, Server: 2, DownForTicks: 150, Lose: true},
				},
			},
			// No Reconnects expectation: a reconnect attempt against the
			// wiped server resolves into promotion (ErrGroupMoved) instead
			// of a successful QP re-establishment, and after failover the
			// dead member is never contacted again.
			Expect: Expect{},
		},
		{
			Name:     "repl-crash-split",
			Doc:      "k=2: a primary is wiped early, while bulk growth still drives splits, under a drop rate; interrupted mirror pushes must neither lose nor duplicate acked inserts",
			Replicas: 2,
			Schedule: faultnet.Schedule{
				Seed:     7,
				DropRate: 0.005,
				Steps: []faultnet.Step{
					{AtTick: 500, Server: 1, DownForTicks: 120, Lose: true},
				},
			},
			Expect: Expect{},
		},
		{
			Name:     "repl-double-fault",
			Doc:      "k=2: both members of replica group 2 (servers 2 and 3) are wiped within one run — a genuine k-fault loss that must surface as permanent rdma.ErrServerLost, never as silent corruption",
			Replicas: 2,
			Schedule: faultnet.Schedule{
				Seed: 8,
				Steps: []faultnet.Step{
					{AtTick: 1_200, Server: 2, DownForTicks: 100, Lose: true},
					{AtTick: 2_000, Server: 3, DownForTicks: 100, Lose: true},
				},
			},
			Expect: Expect{ServerLost: true, PermanentLoss: true},
		},
		{
			Name: "policy-flap",
			Doc: "k=2 adaptive hybrid: heavy completion delays proxy server-CPU pressure while server 1 crashes, restarts, and is later wiped; " +
				"the traversal-policy engine may switch strategies but must not flap, and the promotion must reset the affected partition's signal window rather than feed it stale samples",
			Replicas: 2,
			Adaptive: true,
			Schedule: faultnet.Schedule{
				Seed:       9,
				DelayRate:  0.25,
				DeadlineNS: 100_000,
				MaxDelayNS: 25_000,
				Steps: []faultnet.Step{
					{AtTick: 700, Server: 1, DownForTicks: 120},
					{AtTick: 1_500, Server: 1, DownForTicks: 120, Lose: true},
				},
			},
			Expect: Expect{MaxPolicySwitches: 32, PolicyResets: true},
		},
	}
}

// FindScenario returns the named scenario, or false.
func FindScenario(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
