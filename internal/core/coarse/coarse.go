// Package coarse implements Design 1 of the paper (Section 3): the
// coarse-grained / two-sided index.
//
// The key space is partitioned (range- or hash-based) across the memory
// servers; each server holds a complete local B-link tree for its partition.
// Compute servers access the index exclusively through an RPC protocol over
// two-sided verbs (SEND/RECEIVE on reliable connections, dispatched from
// shared receive queues); the server-side handlers traverse their local tree
// with optimistic lock coupling (Listing 1).
package coarse

import (
	"errors"
	"fmt"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/repl"
	"github.com/namdb/rdmatree/internal/telemetry"
)

// Options configures the coarse-grained design.
type Options struct {
	// Layout is the page layout (page size P).
	Layout layout.Layout
	// Part partitions keys across memory servers.
	Part partition.Partitioner
	// VisitNS is the CPU time an RPC handler charges per page visited
	// (performance model of the simulated fabric; 0 elsewhere).
	VisitNS int64
	// Telemetry, when non-nil, receives the per-operation protocol counters
	// of every handler-executed index operation.
	Telemetry *telemetry.Recorder
	// Replicas is the page-replication factor k (0 and 1 both mean
	// unreplicated). Replicated deployments must configure the fabric with
	// the nam.ReplicaLayout slab allocators before building, and their
	// handlers capture committed post-images into the response's Dirty
	// trailer for the client to mirror.
	Replicas int
	// RegionBytes is the uniform registered-region size; required (and
	// recorded in the catalog) when Replicas >= 2.
	RegionBytes uint64
	// SpinBudget bounds each handler-executed tree operation's consistency
	// restarts (btree.Tree.SpinBudget); 0 leaves the waits unbounded.
	// Fault-injected replicated deployments must set it: a handler waiting
	// on tree state lost with a crashed primary otherwise spins forever.
	// With a budget the handler fails the RPC with a StatusRetry response
	// and the client's op-level recovery re-runs the operation.
	SpinBudget int
}

func (o Options) replicated() bool { return o.Replicas >= 2 }

// Server is the server-side state: one local tree per memory server.
type Server struct {
	opts    Options
	fab     rdma.Fabric
	catalog *nam.Catalog
}

// NewServer wires the design's server side onto a fabric. Call Build (or
// Init) before installing the handler.
func NewServer(fab rdma.Fabric, opts Options) *Server {
	if opts.Part.Servers() != fab.NumServers() {
		panic("coarse: partitioner/fabric server count mismatch")
	}
	return &Server{opts: opts, fab: fab}
}

// rootWord returns the root-pointer word of server's tree: the legacy
// superblock word, or — replicated — group server's slot in the reserved
// replica prefix (present on every group member, so it survives failover).
func (s *Server) rootWord(server int) rdma.RemotePtr {
	if s.opts.replicated() {
		return nam.GroupRootPtr(server)
	}
	return nam.RootWordPtr(server)
}

// tree returns a fresh tree handle for one server (handles are cheap and
// per-goroutine; the shared state lives in the region).
func (s *Server) tree(server int) *btree.Tree {
	t := btree.New(s.opts.Layout, btree.LocalMem{Srv: s.fab.Server(server)}, s.rootWord(server))
	t.VisitNS = s.opts.VisitNS
	t.SpinBudget = s.opts.SpinBudget
	return t
}

// treeFor returns the tree handle serving group on server. Before a failover
// group == server and the plain local tree is used; afterwards the handler
// serves a foreign group's mirrored pages out of its own region
// (identity-offset replicas), allocating any new pages from its own slab.
func (s *Server) treeFor(server, group int) *btree.Tree {
	if !s.opts.replicated() || group == server {
		return s.tree(server)
	}
	t := btree.New(s.opts.Layout,
		btree.ReplicaLocalMem{Srv: s.fab.Server(server), Home: group},
		nam.GroupRootPtr(group))
	t.VisitNS = s.opts.VisitNS
	t.SpinBudget = s.opts.SpinBudget
	return t
}

// Init creates empty trees on every server and returns the catalog.
func (s *Server) Init() (*nam.Catalog, error) {
	for i := 0; i < s.fab.NumServers(); i++ {
		if err := s.InitServer(i); err != nil {
			return nil, err
		}
	}
	return s.makeCatalog(), nil
}

// InitServer creates one server's empty tree (distributed deployments).
func (s *Server) InitServer(srv int) error {
	return s.tree(srv).Init(rdma.NopEnv{}) //rdmavet:allow nopenv -- bootstrap: runs once before the fabric serves timed traffic
}

// Build bulk-loads the partitioned trees and returns the catalog. spec.At is
// consumed sequentially once per server (filtered streaming), so hash
// partitioning needs no materialization.
func (s *Server) Build(spec core.BuildSpec) (*nam.Catalog, error) {
	for srv := 0; srv < s.fab.NumServers(); srv++ {
		if err := s.BuildServer(srv, spec); err != nil {
			return nil, err
		}
	}
	return s.makeCatalog(), nil
}

// BuildServer bulk-loads one server's partition only. Distributed
// deployments (one process per memory server, e.g. cmd/namserver over a
// SingleServerFabric) call this with their own server ID; the spec must be
// identical on every process.
func (s *Server) BuildServer(srv int, spec core.BuildSpec) error {
	count := 0
	for i := 0; i < spec.N; i++ {
		k, _ := spec.At(i)
		if s.opts.Part.Server(k) == srv {
			count++
		}
	}
	cursor := 0
	at := func(int) (uint64, uint64) {
		for {
			k, v := spec.At(cursor)
			cursor++
			if s.opts.Part.Server(k) == srv {
				return k, v
			}
		}
	}
	cfg := btree.BuildConfig{Fill: spec.Fill}
	//rdmavet:allow nopenv -- bulk load is an untimed setup path; experiments measure the prebuilt tree
	if _, err := s.tree(srv).Build(rdma.NopEnv{}, cfg, count, at); err != nil {
		return fmt.Errorf("coarse: building server %d: %w", srv, err)
	}
	return nil
}

// Catalog returns the catalog describing this deployment (building it on
// demand for distributed deployments that never call Build).
func (s *Server) Catalog() *nam.Catalog {
	if s.catalog == nil {
		s.makeCatalog()
	}
	return s.catalog
}

func (s *Server) makeCatalog() *nam.Catalog {
	c := &nam.Catalog{
		Design:    nam.CoarseGrained,
		PageBytes: s.opts.Layout.PageBytes,
		Servers:   s.fab.NumServers(),
	}
	c.Replicas = s.opts.Replicas
	c.RegionBytes = s.opts.RegionBytes
	for i := 0; i < s.fab.NumServers(); i++ {
		c.RootWords = append(c.RootWords, s.rootWord(i))
	}
	switch p := s.opts.Part.(type) {
	case *partition.Range:
		c.PartKind = nam.PartRange
		c.RangeBounds = p.Bounds()
	case *partition.Hash:
		c.PartKind = nam.PartHash
	default:
		panic(fmt.Sprintf("coarse: unsupported partitioner %T", s.opts.Part))
	}
	s.catalog = c
	return c
}

// respErr classifies a handler-side tree failure: spin-budget exhaustion is
// op-recoverable at the client (StatusRetry — fence, re-run), anything else
// aborts the operation.
func respErr(err error) *nam.Response {
	if errors.Is(err, btree.ErrSpinBudget) {
		return nam.RetryResponse(err)
	}
	return nam.ErrResponse(err)
}

// Handler returns the RPC handler executing index operations on the local
// trees; install it with fabric.SetHandler.
func (s *Server) Handler() rdma.Handler {
	return func(env rdma.Env, server int, reqBytes []byte) ([]byte, rdma.Work) {
		req, err := nam.DecodeRequest(reqBytes)
		if err != nil {
			return nam.ErrResponse(err).Encode(), rdma.Work{}
		}
		group := server
		if s.opts.replicated() {
			group = int(req.Group)
		}
		t := s.treeFor(server, group)
		var capt *repl.Capture
		if s.opts.replicated() {
			// Memory servers cannot reach each other (NAM keeps them
			// passive): committed post-images are captured and shipped back
			// for the *client* to mirror before it acks.
			capt = &repl.Capture{}
			t.Repl = capt
		}
		var resp *nam.Response
		var st btree.Stats
		switch req.Op {
		case nam.OpLookup:
			vals, stats, err := t.Lookup(env, req.Key)
			st = stats
			switch {
			case err != nil:
				resp = respErr(err)
			case len(vals) == 0:
				resp = &nam.Response{Status: nam.StatusNotFound}
			default:
				resp = &nam.Response{Status: nam.StatusOK, Values: vals}
			}
		case nam.OpRange:
			var pairs []uint64
			stats, err := t.Scan(env, req.Key, req.End, func(k layout.Key, v uint64) bool {
				pairs = append(pairs, k, v)
				return true
			})
			st = stats
			if err != nil {
				resp = respErr(err)
			} else {
				resp = &nam.Response{Status: nam.StatusOK, Pairs: pairs}
			}
		case nam.OpInsert:
			stats, err := t.Insert(env, req.Key, req.Value)
			st = stats
			if err != nil {
				resp = respErr(err)
			} else {
				resp = &nam.Response{Status: nam.StatusOK}
			}
		case nam.OpDelete:
			ok, stats, err := t.Delete(env, req.Key, req.Value)
			st = stats
			switch {
			case err != nil:
				resp = respErr(err)
			case ok:
				resp = &nam.Response{Status: nam.StatusOK}
			default:
				resp = &nam.Response{Status: nam.StatusNotFound}
			}
		case nam.OpCatalog:
			if s.catalog == nil {
				resp = nam.ErrResponse(fmt.Errorf("coarse: no catalog yet"))
			} else {
				resp = &nam.Response{Status: nam.StatusOK, Pairs: bytesToWords(s.catalog.Encode())}
			}
		default:
			resp = nam.ErrResponse(fmt.Errorf("coarse: bad op %d", req.Op))
		}
		if s.opts.Telemetry != nil && st.Ops() > 0 {
			s.opts.Telemetry.RecordIndexOp(st)
		}
		if capt != nil && len(capt.Pages) > 0 {
			// Error responses carry the trailer too: a handler that
			// committed pages and then failed still needs them mirrored.
			resp.Dirty = capt.Pages
		}
		return resp.Encode(), rdma.Work{PagesTouched: st.PageReads + st.PageWrites}
	}
}

// bytesToWords packs a byte payload into the Pairs field (length-prefixed).
func bytesToWords(b []byte) []uint64 { return nam.PackBytes(b) }

// WordsToBytes unpacks a payload packed by bytesToWords.
func WordsToBytes(w []uint64) []byte { return nam.UnpackBytes(w) }

// CheckInvariants verifies every server-local tree (tests only) and returns
// the total number of live entries.
func (s *Server) CheckInvariants() (int, error) {
	total := 0
	for i := 0; i < s.fab.NumServers(); i++ {
		n, err := s.tree(i).CheckInvariants(rdma.NopEnv{}) //rdmavet:allow nopenv -- test-only invariant sweep, never on the timed path
		if err != nil {
			return 0, fmt.Errorf("server %d: %w", i, err)
		}
		total += n
	}
	return total, nil
}

// CheckInvariantsAt is CheckInvariants for a (possibly) failed-over
// replicated deployment: acting maps each group home to the member currently
// serving it, and each group's tree is verified through that member's
// identity-offset copy. With the identity mapping it degenerates to
// CheckInvariants.
func (s *Server) CheckInvariantsAt(acting func(home int) int) (int, error) {
	total := 0
	for g := 0; g < s.fab.NumServers(); g++ {
		n, err := s.treeFor(acting(g), g).CheckInvariants(rdma.NopEnv{}) //rdmavet:allow nopenv -- test-only invariant sweep, never on the timed path
		if err != nil {
			return 0, fmt.Errorf("group %d (acting server %d): %w", g, acting(g), err)
		}
		total += n
	}
	return total, nil
}

// Compact runs the per-server epoch GC pass (Section 3.2), executed locally
// on each memory server.
func (s *Server) Compact() (removed int, err error) {
	for i := 0; i < s.fab.NumServers(); i++ {
		r, _, err := s.tree(i).Compact(rdma.NopEnv{}) //rdmavet:allow nopenv -- maintenance entry point invoked outside the simulated run (no handler Env in scope)
		if err != nil {
			return removed, err
		}
		removed += r
	}
	return removed, nil
}

// Client is one compute thread's handle onto a coarse-grained index.
type Client struct {
	ep   rdma.Endpoint
	env  rdma.Env
	cat  *nam.Catalog
	part partition.Partitioner
	log  *obs.Log
	mir  nam.DirtyPusher
}

var _ core.Index = (*Client)(nil)

// NewClient binds a client to an endpoint. env is the client's execution
// environment (rdma.NopEnv on real transports).
func NewClient(ep rdma.Endpoint, env rdma.Env, cat *nam.Catalog) *Client {
	return &Client{ep: ep, env: env, cat: cat, part: cat.Partitioner()}
}

// SetOpLog threads the per-operation span tracer through the client: op
// boundaries carry the owning partition (the coarse design routes every op
// to its key's partition server) and every RPC records its destination and
// outcome. A nil log disables tracing.
func (c *Client) SetOpLog(log *obs.Log) { c.log = log }

// SetMirrorer installs the client's replication pusher (repl.Mirrorer):
// post-images the handler committed on the partition's acting primary are
// replayed onto the group's backups before the operation acks. A nil m
// disables pushing (unreplicated deployments).
func (c *Client) SetMirrorer(m nam.DirtyPusher) { c.mir = m }

func (c *Client) call(server int, req *nam.Request) (*nam.Response, error) {
	if c.cat.Replicated() {
		req.Group = uint8(server)
	}
	raw, err := c.ep.Call(server, req.Encode())
	if err != nil {
		c.log.RPCEvent(server, req.Op, err)
		return nil, err
	}
	resp, err := nam.DecodeResponse(raw)
	if err == nil && c.mir != nil && len(resp.Dirty) > 0 {
		// Mirror the handler's committed pages before acking; a failed push
		// leaves the op un-acked (mirror-before-ack is the acked-data
		// durability invariant).
		if perr := c.mir.Push(resp.Dirty); perr != nil {
			c.log.RPCEvent(server, req.Op, perr)
			return nil, perr
		}
	}
	if err == nil {
		err = resp.AsError()
	}
	c.log.RPCEvent(server, req.Op, err)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Lookup implements core.Index: one RPC to the partition owner.
func (c *Client) Lookup(key uint64) ([]uint64, error) {
	c.log.BeginOp(obs.OpLookup, key, c.part.Server(key))
	resp, err := c.call(c.part.Server(key), &nam.Request{Op: nam.OpLookup, Key: key})
	c.log.EndOp(err)
	if err != nil {
		return nil, err
	}
	return resp.Values, nil
}

// Range implements core.Index: one RPC per partition intersecting [lo, hi].
// With hash partitioning every server must be queried (Table 2) and results
// arrive in per-server runs rather than globally sorted.
func (c *Client) Range(lo, hi uint64, emit func(k, v uint64) bool) error {
	c.log.BeginOp(obs.OpRange, lo, -1)
	err := c.doRange(lo, hi, emit)
	c.log.EndOp(err)
	return err
}

func (c *Client) doRange(lo, hi uint64, emit func(k, v uint64) bool) error {
	for _, srv := range c.part.CoversRange(lo, hi) {
		resp, err := c.call(srv, &nam.Request{Op: nam.OpRange, Key: lo, End: hi})
		if err != nil {
			return err
		}
		for i := 0; i+1 < len(resp.Pairs); i += 2 {
			if !emit(resp.Pairs[i], resp.Pairs[i+1]) {
				return nil
			}
		}
	}
	return nil
}

// Insert implements core.Index.
func (c *Client) Insert(key, value uint64) error {
	c.log.BeginOp(obs.OpInsert, key, c.part.Server(key))
	_, err := c.call(c.part.Server(key), &nam.Request{Op: nam.OpInsert, Key: key, Value: value})
	c.log.EndOp(err)
	return err
}

// Delete implements core.Index.
func (c *Client) Delete(key, value uint64) (bool, error) {
	c.log.BeginOp(obs.OpDelete, key, c.part.Server(key))
	resp, err := c.call(c.part.Server(key), &nam.Request{Op: nam.OpDelete, Key: key, Value: value})
	c.log.EndOp(err)
	if err != nil {
		return false, err
	}
	return resp.Status == nam.StatusOK, nil
}
