package coarse

import (
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

func deploy(t *testing.T, part partition.Partitioner, n int) (*Server, *Client) {
	t.Helper()
	fab := direct.New(part.Servers(), 64<<20, nam.SuperblockBytes)
	srv := NewServer(fab, Options{Layout: layout.New(512), Part: part})
	cat, err := srv.Build(core.BuildSpec{
		N:  n,
		At: func(i int) (uint64, uint64) { return uint64(i), uint64(i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	fab.SetHandler(srv.Handler())
	return srv, NewClient(fab.Endpoint(), direct.Env{}, cat)
}

func TestBuildDistributesByPartition(t *testing.T) {
	part := partition.NewRangeUniform(4, 1000)
	srv, c := deploy(t, part, 1000)
	live, err := srv.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if live != 1000 {
		t.Fatalf("live = %d", live)
	}
	// Every key must be found through its partition's server.
	for _, k := range []uint64{0, 249, 250, 999} {
		vals, err := c.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != k {
			t.Fatalf("Lookup(%d) = %v", k, vals)
		}
	}
}

func TestRangeOrderedUnderRangePartitioning(t *testing.T) {
	_, c := deploy(t, partition.NewRangeUniform(4, 2000), 2000)
	var prev uint64
	count := 0
	if err := c.Range(100, 1900, func(k, v uint64) bool {
		if count > 0 && k < prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1801 {
		t.Fatalf("count = %d", count)
	}
}

func TestRangeBroadcastUnderHashPartitioning(t *testing.T) {
	_, c := deploy(t, partition.NewHash(4), 2000)
	seen := map[uint64]bool{}
	if err := c.Range(100, 199, func(k, v uint64) bool {
		seen[k] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Fatalf("hash-partitioned range returned %d distinct keys; want 100", len(seen))
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	srv, c := deploy(t, partition.NewRangeUniform(2, 100), 100)
	if err := c.Insert(50, 5000); err != nil {
		t.Fatal(err)
	}
	vals, err := c.Lookup(50)
	if err != nil || len(vals) != 2 {
		t.Fatalf("lookup after insert: %v %v", vals, err)
	}
	ok, err := c.Delete(50, 5000)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	ok, err = c.Delete(50, 5000)
	if err != nil || ok {
		t.Fatalf("double delete: %v %v", ok, err)
	}
	if removed, err := srv.Compact(); err != nil || removed != 1 {
		t.Fatalf("compact removed %d err %v", removed, err)
	}
}

func TestEmptyPartition(t *testing.T) {
	// All keys land on server 0; servers 1..3 hold empty trees.
	part := partition.NewRangeWeighted(1000, 1, 1, 1, 1)
	fab := direct.New(4, 64<<20, nam.SuperblockBytes)
	srv := NewServer(fab, Options{Layout: layout.New(512), Part: part})
	cat, err := srv.Build(core.BuildSpec{
		N:  10,
		At: func(i int) (uint64, uint64) { return uint64(i), uint64(i) }, // all < 250
	})
	if err != nil {
		t.Fatal(err)
	}
	fab.SetHandler(srv.Handler())
	c := NewClient(fab.Endpoint(), direct.Env{}, cat)
	vals, err := c.Lookup(999) // routes to the empty server 3
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 {
		t.Fatalf("empty partition returned %v", vals)
	}
}

func TestWordsBytesRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100} {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i * 7)
		}
		got := WordsToBytes(bytesToWords(b))
		if len(got) != n {
			t.Fatalf("len %d -> %d", n, len(got))
		}
		for i := range b {
			if got[i] != b[i] {
				t.Fatalf("byte %d differs", i)
			}
		}
	}
}

func TestCatalogViaRPC(t *testing.T) {
	fab := direct.New(2, 64<<20, nam.SuperblockBytes)
	srv := NewServer(fab, Options{Layout: layout.New(512), Part: partition.NewRangeUniform(2, 100)})
	if _, err := srv.Build(core.BuildSpec{N: 10, At: func(i int) (uint64, uint64) { return uint64(i), 0 }}); err != nil {
		t.Fatal(err)
	}
	fab.SetHandler(srv.Handler())
	ep := fab.Endpoint()
	resp, err := ep.Call(0, (&nam.Request{Op: nam.OpCatalog}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := nam.DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := nam.DecodeCatalog(WordsToBytes(dec.Pairs))
	if err != nil {
		t.Fatal(err)
	}
	if cat.Design != nam.CoarseGrained || cat.Servers != 2 {
		t.Fatalf("catalog: %+v", cat)
	}
}

func TestBadOpRejected(t *testing.T) {
	_, c := deploy(t, partition.NewRangeUniform(2, 100), 100)
	_ = c
	fab := direct.New(1, 1<<20, nam.SuperblockBytes)
	srv := NewServer(fab, Options{Layout: layout.New(512), Part: partition.NewRangeUniform(1, 10)})
	if _, err := srv.Init(); err != nil {
		t.Fatal(err)
	}
	fab.SetHandler(srv.Handler())
	resp, err := fab.Endpoint().Call(0, (&nam.Request{Op: 200}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := nam.DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if dec.AsError() == nil {
		t.Fatal("bad op accepted")
	}
}
