package coarse

import (
	"fmt"

	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
)

// PipelinedClient is the asynchronous variant of Client: up to inflight RPCs
// are outstanding at once, their SENDs sharing doorbell batches
// (DESIGN.md §11). The coarse design's pipelining is shallow — every
// operation is exactly one RPC to its key's partition owner — so the engine
// here is a simple ring of call slots: each round doorbells every newly
// submitted request, polls the batch, and completes each slot from its
// response. RPCs to *different* servers overlap their round trips; the paper's
// depth-proportional latency disappears behind the pipeline exactly as in
// the fine-grained design.
//
// RPC failures surface in the callback; compose with the retry/faultnet
// stack by wrapping the endpoint before binding the client (a wrapped
// endpoint without a native async surface still works through the generic
// adapter, trading overlap for fault transparency).
//
// Like the serial Client, a PipelinedClient is owned by a single goroutine.
type PipelinedClient struct {
	ep   rdma.AsyncEndpoint
	env  rdma.Env
	part partition.Partitioner
	log  *obs.Log

	slots  []*callSlot
	free   []int32
	active int
	// order[i] is the slot that posted the i-th call of the round being
	// delivered; nextOrder accumulates the next round.
	order, nextOrder []int32
	comps            []rdma.Completion
}

func opKind(op uint8) obs.OpKind {
	switch op {
	case nam.OpLookup:
		return obs.OpLookup
	case nam.OpInsert:
		return obs.OpInsert
	default:
		return obs.OpDelete
	}
}

type callSlot struct {
	idx    int32
	op     uint8
	key    uint64
	server int
	start  int64

	onLookup func(values []uint64, err error)
	onInsert func(err error)
	onDelete func(found bool, err error)
}

// NewPipelinedClient binds an asynchronous client to an endpoint;
// inflight <= 0 selects a default of 16 slots.
func NewPipelinedClient(ep rdma.Endpoint, env rdma.Env, cat *nam.Catalog, inflight int) *PipelinedClient {
	if inflight <= 0 {
		inflight = 16
	}
	c := &PipelinedClient{ep: rdma.Async(ep), env: env, part: cat.Partitioner()}
	c.slots = make([]*callSlot, inflight)
	c.free = make([]int32, 0, inflight)
	for i := range c.slots {
		c.slots[i] = &callSlot{idx: int32(i)}
		c.free = append(c.free, int32(i))
	}
	return c
}

// SetOpLog attaches the flight recorder: completed operations land as
// retroactive spans carrying their partition, and every RPC records its
// destination and outcome. A nil log disables tracing.
func (c *PipelinedClient) SetOpLog(log *obs.Log) { c.log = log }

// Lookup submits an asynchronous lookup; cb runs when the RPC completes
// (possibly within this call, if the client pumps rounds to free a slot).
func (c *PipelinedClient) Lookup(key uint64, cb func(values []uint64, err error)) {
	s := c.take()
	s.op, s.key = nam.OpLookup, key
	s.onLookup = cb
	c.post(s, &nam.Request{Op: nam.OpLookup, Key: key})
}

// Insert submits an asynchronous insert of (key, value).
func (c *PipelinedClient) Insert(key, value uint64, cb func(err error)) {
	s := c.take()
	s.op, s.key = nam.OpInsert, key
	s.onInsert = cb
	c.post(s, &nam.Request{Op: nam.OpInsert, Key: key, Value: value})
}

// Delete submits an asynchronous delete of one entry matching (key, value).
func (c *PipelinedClient) Delete(key, value uint64, cb func(found bool, err error)) {
	s := c.take()
	s.op, s.key = nam.OpDelete, key
	s.onDelete = cb
	c.post(s, &nam.Request{Op: nam.OpDelete, Key: key, Value: value})
}

// Drain blocks until every submitted operation has completed.
func (c *PipelinedClient) Drain() {
	for c.active > 0 {
		c.pumpRound()
	}
}

// Inflight returns the number of call slots.
func (c *PipelinedClient) Inflight() int { return len(c.slots) }

func (c *PipelinedClient) take() *callSlot {
	for len(c.free) == 0 {
		c.pumpRound()
	}
	idx := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.active++
	return c.slots[idx]
}

func (c *PipelinedClient) post(s *callSlot, req *nam.Request) {
	if c.log != nil {
		s.start = c.log.Clock.Now()
	}
	s.server = c.part.Server(s.key)
	c.ep.PostCall(s.server, req.Encode())
	c.nextOrder = append(c.nextOrder, s.idx)
}

func (c *PipelinedClient) pumpRound() {
	c.order, c.nextOrder = c.nextOrder, c.order[:0]
	if len(c.order) == 0 {
		if c.active == 0 {
			return
		}
		panic("coarse: active operations with no posted calls")
	}
	c.ep.Flush()
	c.comps = c.ep.Poll(c.comps[:0])
	if len(c.comps) != len(c.order) {
		panic(fmt.Sprintf("coarse: %d completions for %d posted calls", len(c.comps), len(c.order)))
	}
	for i, idx := range c.order {
		c.finish(c.slots[idx], c.comps[i])
	}
}

// finish decodes one slot's response exactly as the serial client does and
// releases the slot before the callback runs (callbacks may resubmit).
func (c *PipelinedClient) finish(s *callSlot, comp rdma.Completion) {
	var resp nam.Response
	err := comp.Err
	if err == nil {
		resp, err = nam.DecodeResponse(comp.Resp)
		if err == nil {
			err = resp.AsError()
		}
	}
	c.log.RPCEvent(s.server, s.op, err)
	if c.log != nil {
		c.log.OpSpan(opKind(s.op), s.key, s.server, c.log.Clock.Now()-s.start, err)
	}
	c.active--
	c.free = append(c.free, s.idx)
	switch s.op {
	case nam.OpLookup:
		cb := s.onLookup
		s.onLookup = nil
		if err != nil {
			cb(nil, err)
			return
		}
		cb(resp.Values, nil)
	case nam.OpInsert:
		cb := s.onInsert
		s.onInsert = nil
		cb(err)
	default:
		cb := s.onDelete
		s.onDelete = nil
		cb(err == nil && resp.Status == nam.StatusOK, err)
	}
}
