// Package core defines the distributed-index abstraction shared by the three
// designs of the paper (coarse-grained/two-sided, fine-grained/one-sided,
// hybrid) and a sequential reference implementation used as a correctness
// oracle by integration tests.
//
// The concrete designs live in the subpackages core/coarse, core/fine and
// core/hybrid. Each provides:
//
//   - a Build function that bulk-loads the index onto a cluster's memory
//     servers and returns the catalog compute servers need,
//   - a server-side RPC handler (where the design uses two-sided verbs),
//   - a Client implementing Index, bound to one compute thread's endpoint.
package core

import (
	"sort"
	"sync"
)

// Index is the operation surface of a distributed secondary index: keys are
// non-unique, values are the payload (e.g. primary keys).
type Index interface {
	// Lookup returns all values stored under key.
	Lookup(key uint64) ([]uint64, error)
	// Range visits all entries with lo <= key <= hi in key order (per
	// partition; hash-partitioned coarse-grained indexes emit per-server
	// runs). emit returning false stops the scan.
	Range(lo, hi uint64, emit func(k, v uint64) bool) error
	// Insert adds (key, value).
	Insert(key, value uint64) error
	// Delete removes one entry matching (key, value); it reports whether an
	// entry was found.
	Delete(key, value uint64) (bool, error)
}

// BuildSpec parameterizes index construction, shared by all designs.
type BuildSpec struct {
	// N is the number of items; At(i) must return them in non-decreasing
	// key order and is called sequentially.
	N  int
	At func(i int) (key, value uint64)
	// Fill is the node fill factor (default 0.9).
	Fill float64
	// HeadEvery enables head nodes every n leaves for the designs with
	// fine-grained leaves (fine, hybrid); 0 disables.
	HeadEvery int
}

// Reference is an in-memory single-node ordered index used as the
// correctness oracle. It is safe for concurrent use.
type Reference struct {
	mu   sync.RWMutex
	keys []uint64            // sorted distinct keys
	vals map[uint64][]uint64 // key -> values (insertion order)
}

// NewReference returns an empty oracle.
func NewReference() *Reference {
	return &Reference{vals: make(map[uint64][]uint64)}
}

var _ Index = (*Reference)(nil)

// Lookup implements Index.
func (r *Reference) Lookup(key uint64) ([]uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]uint64(nil), r.vals[key]...), nil
}

// Range implements Index.
func (r *Reference) Range(lo, hi uint64, emit func(k, v uint64) bool) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= lo })
	for ; i < len(r.keys) && r.keys[i] <= hi; i++ {
		k := r.keys[i]
		for _, v := range r.vals[k] {
			if !emit(k, v) {
				return nil
			}
		}
	}
	return nil
}

// Insert implements Index.
func (r *Reference) Insert(key, value uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vals[key]; !ok {
		i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= key })
		r.keys = append(r.keys, 0)
		copy(r.keys[i+1:], r.keys[i:])
		r.keys[i] = key
	}
	r.vals[key] = append(r.vals[key], value)
	return nil
}

// Delete implements Index.
func (r *Reference) Delete(key, value uint64) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs, ok := r.vals[key]
	if !ok {
		return false, nil
	}
	for i, v := range vs {
		if v == value {
			r.vals[key] = append(vs[:i:i], vs[i+1:]...)
			if len(r.vals[key]) == 0 {
				delete(r.vals, key)
				j := sort.Search(len(r.keys), func(j int) bool { return r.keys[j] >= key })
				r.keys = append(r.keys[:j], r.keys[j+1:]...)
			}
			return true, nil
		}
	}
	return false, nil
}

// Count returns the number of live entries (for tests).
func (r *Reference) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, vs := range r.vals {
		n += len(vs)
	}
	return n
}
