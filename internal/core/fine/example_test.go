package fine_test

import (
	"fmt"
	"log"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

// Example builds a fine-grained index on an in-process NAM cluster and runs
// the basic operations of the Index interface.
func Example() {
	// Four memory servers with 64 MiB registered regions.
	fab := direct.New(4, 64<<20, nam.SuperblockBytes)

	// Bulk-load 10,000 keys (value = key squared), pages placed round-robin.
	cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: layout.New(1024)}, core.BuildSpec{
		N:         10_000,
		At:        func(i int) (uint64, uint64) { return uint64(i), uint64(i) * uint64(i) },
		HeadEvery: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A compute thread's client: every operation below is pure one-sided
	// verbs; the memory servers' CPUs are never involved.
	idx := fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)

	vals, _ := idx.Lookup(12)
	fmt.Println("lookup:", vals)

	_ = idx.Insert(12, 999) // non-unique secondary index
	vals, _ = idx.Lookup(12)
	fmt.Println("after insert:", vals)

	sum := uint64(0)
	_ = idx.Range(1, 4, func(k, v uint64) bool { sum += v; return true })
	fmt.Println("range sum:", sum)

	ok, _ := idx.Delete(12, 999)
	fmt.Println("deleted:", ok)

	// Output:
	// lookup: [144]
	// after insert: [144 999]
	// range sum: 30
	// deleted: true
}

// ExampleGC shows the global epoch garbage collector: deletes set a bit;
// the GC compacts, merges underfull leaves and refreshes head nodes.
func ExampleGC() {
	fab := direct.New(2, 64<<20, nam.SuperblockBytes)
	cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: layout.New(512)}, core.BuildSpec{
		N:         5_000,
		At:        func(i int) (uint64, uint64) { return uint64(i), uint64(i) },
		HeadEvery: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
	for i := 0; i < 5_000; i++ {
		if i%10 != 0 {
			if _, err := c.Delete(uint64(i), uint64(i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	gc := fine.NewGC(c, 16)
	removed, err := gc.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("physically removed:", removed)
	// Output:
	// physically removed: 4500
}
