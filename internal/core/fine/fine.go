// Package fine implements Design 2 of the paper (Section 4): the
// fine-grained / one-sided index.
//
// A single global B-link tree spans the whole key space; its pages (inner
// nodes, leaves, and the head nodes of the Section 4.3 prefetch
// optimization) are distributed round-robin across all memory servers and
// connected by remote pointers. Compute servers execute every operation
// themselves with one-sided verbs only (READ, WRITE, CAS, FETCH_AND_ADD,
// RDMA_ALLOC) — the memory servers' CPUs are never involved (Listing 2/4).
package fine

import (
	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/cache"
	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/telemetry"
)

// Options configures the fine-grained design.
type Options struct {
	// Layout is the page layout (page size P).
	Layout layout.Layout
	// Replicas is the page-replication factor k (0 and 1 both mean
	// unreplicated). Replicated deployments must configure the fabric with
	// the nam.ReplicaLayout slab allocators before building.
	Replicas int
	// RegionBytes is the uniform registered-region size; required (and
	// recorded in the catalog) when Replicas >= 2.
	RegionBytes uint64
}

// Build bulk-loads the global tree through setupEp (an untimed endpoint on
// the simulated fabric) with round-robin page placement, and returns the
// catalog. The root-pointer word lives in server 0's superblock —
// replicated deployments use group 0's root word in the reserved replica
// prefix instead, so the word itself survives a failover of server 0.
func Build(setupEp rdma.Endpoint, opts Options, spec core.BuildSpec) (*nam.Catalog, error) {
	servers := setupEp.NumServers()
	rootWord := nam.RootWordPtr(0)
	if opts.Replicas >= 2 {
		rootWord = nam.GroupRootPtr(0)
	}
	t := btree.New(opts.Layout, &btree.EndpointMem{
		Ep:    setupEp,
		Place: btree.RoundRobin(servers, 0),
	}, rootWord)
	cfg := btree.BuildConfig{Fill: spec.Fill, HeadEvery: spec.HeadEvery}
	if spec.N == 0 {
		if err := t.Init(rdma.NopEnv{}); err != nil { //rdmavet:allow nopenv -- bootstrap: runs once before timed traffic
			return nil, err
		}
	} else if _, err := t.Build(rdma.NopEnv{}, cfg, spec.N, spec.At); err != nil { //rdmavet:allow nopenv -- bulk load is an untimed setup path
		return nil, err
	}
	return &nam.Catalog{
		Design:      nam.FineGrained,
		PageBytes:   opts.Layout.PageBytes,
		Servers:     servers,
		RootWords:   []rdma.RemotePtr{rootWord},
		Replicas:    opts.Replicas,
		RegionBytes: opts.RegionBytes,
	}, nil
}

// Client is one compute thread's handle onto the fine-grained index. All
// operations run on the client over one-sided verbs.
type Client struct {
	tree *btree.Tree
	env  rdma.Env
	rec  *telemetry.Recorder
	log  *obs.Log
}

var _ core.Index = (*Client)(nil)

// NewClient binds a client to an endpoint. rrStart staggers the round-robin
// placement of pages the client allocates on splits (pass the client ID).
func NewClient(ep rdma.Endpoint, env rdma.Env, cat *nam.Catalog, rrStart int) *Client {
	l := layout.New(cat.PageBytes)
	t := btree.New(l, &btree.EndpointMem{
		Ep:    ep,
		Place: btree.RoundRobin(cat.Servers, rrStart),
	}, cat.RootWords[0])
	return &Client{tree: t, env: env}
}

// NewUnbatchedClient is NewClient running the paper's original Listing-2
// read protocol: the page READ and the version-validation READ are issued as
// two separate blocking verbs per level instead of one fused
// selectively-signalled batch. It exists as the measured baseline for the
// doorbell-batching experiment (and for figure reproductions that pin the
// paper's verb sequence); production clients should use NewClient.
func NewUnbatchedClient(ep rdma.Endpoint, env rdma.Env, cat *nam.Catalog, rrStart int) *Client {
	l := layout.New(cat.PageBytes)
	t := btree.New(l, &btree.EndpointMem{
		Ep:        ep,
		Place:     btree.RoundRobin(cat.Servers, rrStart),
		Unbatched: true,
	}, cat.RootWords[0])
	return &Client{tree: t, env: env}
}

// SetRecorder directs the client's per-operation protocol counters
// (traversal depth, restarts, splits, ...) into rec. A nil rec disables
// recording.
func (c *Client) SetRecorder(rec *telemetry.Recorder) { c.rec = rec }

// SetOpLog threads the per-operation span tracer through the client: every
// op records its boundaries into log and the tree's memory accesses are
// decorated so each level read, CAS, and unlock lands in the flight
// recorder. The fine design has no key partitioning (pages are spread
// round-robin), so op spans carry no partition. A nil log disables tracing.
func (c *Client) SetOpLog(log *obs.Log) {
	c.log = log
	c.tree.M = obs.WrapMem(c.tree.M, log)
}

func (c *Client) record(st btree.Stats) {
	if c.rec != nil {
		c.rec.RecordIndexOp(st)
	}
}

// Lookup implements core.Index (Listing 2's remoteLookup).
func (c *Client) Lookup(key uint64) ([]uint64, error) {
	c.log.BeginOp(obs.OpLookup, key, -1)
	vals, st, err := c.tree.Lookup(c.env, key)
	c.record(st)
	c.log.EndOp(err)
	return vals, err
}

// Range implements core.Index: a one-sided leaf-level scan with head-node
// prefetching.
func (c *Client) Range(lo, hi uint64, emit func(k, v uint64) bool) error {
	c.log.BeginOp(obs.OpRange, lo, -1)
	st, err := c.tree.Scan(c.env, lo, hi, emit)
	c.record(st)
	c.log.EndOp(err)
	return err
}

// Insert implements core.Index (Listing 2's remoteInsert; splits install new
// pages with RDMA_ALLOC + WRITE and propagate separators with the same
// one-sided protocol).
func (c *Client) Insert(key, value uint64) error {
	c.log.BeginOp(obs.OpInsert, key, -1)
	st, err := c.tree.Insert(c.env, key, value)
	c.record(st)
	c.log.EndOp(err)
	return err
}

// Delete implements core.Index: the delete bit is set through the one-sided
// write protocol; physical removal is the global garbage collector's job.
func (c *Client) Delete(key, value uint64) (bool, error) {
	c.log.BeginOp(obs.OpDelete, key, -1)
	ok, st, err := c.tree.Delete(c.env, key, value)
	c.record(st)
	c.log.EndOp(err)
	return ok, err
}

// Tree exposes the underlying engine (stats, invariant checks).
func (c *Client) Tree() *btree.Tree { return c.tree }

// SetReplicator installs the client's replication engine (repl.Mirrorer):
// every page the tree commits is pushed to the page's group backups before
// the operation acks. A nil r disables replication.
func (c *Client) SetReplicator(r btree.Replicator) { c.tree.Repl = r }

// InvalidateRoot implements core.RootInvalidator: operation-level fault
// recovery drops the cached root pointer before an epoch-fenced
// re-traversal.
func (c *Client) InvalidateRoot() { c.tree.InvalidateRoot() }

// SetSpinBudget bounds the tree's consistency restarts per operation
// (btree.Tree.SpinBudget); clients running under fault injection set it so a
// stuck page lock surfaces as btree.ErrSpinBudget instead of a hang.
func (c *Client) SetSpinBudget(n int) { c.tree.SpinBudget = n }

// NewCachedClient is NewClient with a compute-side page cache of maxPages
// pages in front of the one-sided reads (the Appendix A.4 extension). The
// returned cache exposes hit/miss statistics.
func NewCachedClient(ep rdma.Endpoint, env rdma.Env, cat *nam.Catalog, rrStart, maxPages int) (*Client, *cache.Mem) {
	l := layout.New(cat.PageBytes)
	base := &btree.EndpointMem{
		Ep:    ep,
		Place: btree.RoundRobin(cat.Servers, rrStart),
	}
	cm := cache.New(base, l, maxPages)
	t := btree.New(l, cm, cat.RootWords[0])
	return &Client{tree: t, env: env}, cm
}

// GC is the global epoch garbage collector of the fine-grained design: it
// runs on a compute server (Section 4.2 — it must use the same one-sided
// protocol as writers, since mixing remote atomics with server-local atomics
// would break atomicity) and periodically compacts delete-bit entries and
// refreshes head nodes.
type GC struct {
	c *Client
	// HeadEvery is the head-node spacing to maintain; 0 disables head
	// maintenance.
	HeadEvery int
	retired   []rdma.RemotePtr
}

// NewGC creates a garbage collector driving the index through client c.
func NewGC(c *Client, headEvery int) *GC {
	return &GC{c: c, HeadEvery: headEvery}
}

// RunEpoch performs one epoch: frees pages retired in the previous epoch (no
// reader can still hold them), compacts deleted entries, merges underfull
// leaves, and rebuilds head nodes. It returns the number of entries
// physically removed.
func (g *GC) RunEpoch() (removed int, err error) {
	// Pages retired an epoch ago are now unreachable by any reader.
	if err := g.c.tree.FreeRetired(g.retired); err != nil {
		return 0, err
	}
	g.retired = nil
	removed, _, err = g.c.tree.Compact(g.c.env)
	if err != nil {
		return removed, err
	}
	_, tombstones, _, err := g.c.tree.Rebalance(g.c.env, -1)
	if err != nil {
		return removed, err
	}
	g.retired = append(g.retired, tombstones...)
	if g.HeadEvery > 1 {
		heads, _, err := g.c.tree.RebuildHeads(g.c.env, g.HeadEvery)
		if err != nil {
			return removed, err
		}
		g.retired = append(g.retired, heads...)
	}
	return removed, nil
}
