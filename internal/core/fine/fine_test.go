package fine

import (
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

func deploy(t *testing.T, servers, n, headEvery int) (*direct.Fabric, *nam.Catalog) {
	t.Helper()
	fab := direct.New(servers, 64<<20, nam.SuperblockBytes)
	cat, err := Build(fab.Endpoint(), Options{Layout: layout.New(512)}, core.BuildSpec{
		N:         n,
		At:        func(i int) (uint64, uint64) { return uint64(i), uint64(i) },
		HeadEvery: headEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fab, cat
}

func TestBuildSpreadsPagesAcrossServers(t *testing.T) {
	fab, _ := deploy(t, 4, 50_000, 0)
	// Round-robin placement must consume memory on every server.
	for s := 0; s < 4; s++ {
		if used := fab.Server(s).Alloc.Used(); used == 0 {
			t.Fatalf("server %d holds no index pages", s)
		}
	}
	// Rough balance: no server holds more than 2x the minimum.
	min, max := ^uint64(0), uint64(0)
	for s := 0; s < 4; s++ {
		u := fab.Server(s).Alloc.Used()
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max > 2*min {
		t.Fatalf("page distribution imbalanced: min=%d max=%d", min, max)
	}
}

func TestClientOperations(t *testing.T) {
	fab, cat := deploy(t, 4, 10_000, 16)
	c := NewClient(fab.Endpoint(), direct.Env{}, cat, 0)

	vals, err := c.Lookup(1234)
	if err != nil || len(vals) != 1 || vals[0] != 1234 {
		t.Fatalf("lookup: %v %v", vals, err)
	}
	if err := c.Insert(1234, 9999); err != nil {
		t.Fatal(err)
	}
	vals, err = c.Lookup(1234)
	if err != nil || len(vals) != 2 {
		t.Fatalf("after insert: %v %v", vals, err)
	}
	ok, err := c.Delete(1234, 9999)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	count := 0
	if err := c.Range(100, 199, func(k, v uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("range count = %d", count)
	}
}

func TestGCReclaimsAndKeepsHeads(t *testing.T) {
	fab, cat := deploy(t, 2, 5000, 8)
	c := NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
	for i := 0; i < 1000; i++ {
		if _, err := c.Delete(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	gc := NewGC(c, 8)
	removed, err := gc.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1000 {
		t.Fatalf("removed = %d", removed)
	}
	// A second epoch frees the previous epoch's retired pages and finds
	// nothing new.
	removed, err = gc.RunEpoch()
	if err != nil || removed != 0 {
		t.Fatalf("second epoch: %d %v", removed, err)
	}
	live, err := c.Tree().CheckInvariants(rdma.NopEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if live != 4000 {
		t.Fatalf("live = %d", live)
	}
}

func TestCachedClientAgrees(t *testing.T) {
	fab, cat := deploy(t, 4, 20_000, 16)
	plain := NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
	cached, cm := NewCachedClient(fab.Endpoint(), direct.Env{}, cat, 1, 512)
	for rep := 0; rep < 2; rep++ {
		for i := 0; i < 500; i++ {
			k := uint64(i * 31 % 20000)
			a, err := plain.Lookup(k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := cached.Lookup(k)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("cached/plain diverge on %d: %v vs %v", k, a, b)
			}
		}
	}
	if cm.Stats.Hits == 0 {
		t.Fatal("cache unused")
	}
	// Writes through the cached client stay visible.
	if err := cached.Insert(7, 70707); err != nil {
		t.Fatal(err)
	}
	vals, err := cached.Lookup(7)
	if err != nil || len(vals) != 2 {
		t.Fatalf("cached write invisible: %v %v", vals, err)
	}
}

func TestCatalogHasSingleGlobalRoot(t *testing.T) {
	_, cat := deploy(t, 4, 100, 0)
	if cat.Design != nam.FineGrained {
		t.Fatalf("design = %v", cat.Design)
	}
	if len(cat.RootWords) != 1 || cat.RootWords[0] != nam.RootWordPtr(0) {
		t.Fatalf("root words = %v", cat.RootWords)
	}
}
