package fine

import (
	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/pipeline"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/telemetry"
)

// PipelinedClient is the asynchronous variant of Client: one compute thread
// keeps up to inflight operations outstanding on its endpoint, and the
// traversal steps of all in-flight operations share doorbell batches
// (DESIGN.md §11). Operations complete through callbacks, in whatever order
// the protocol resolves them; submission blocks only when every slot is
// busy. The client embeds the same operation-level recovery as
// core.Recovered, so it needs no Recovered wrapper.
//
// Like the serial Client, a PipelinedClient is owned by a single goroutine.
type PipelinedClient struct {
	eng  *pipeline.Engine
	tree *btree.Tree
}

// NewPipelinedClient binds an asynchronous client to an endpoint. rrStart
// staggers split-page placement (pass the client ID); inflight <= 0 selects
// pipeline.DefaultInflight. When the endpoint can re-establish queue pairs
// (it implements rdma.Reconnector, e.g. faultnet), QP errors on one
// in-flight operation are recovered without disturbing the others.
func NewPipelinedClient(ep rdma.Endpoint, env rdma.Env, cat *nam.Catalog, rrStart, inflight int) *PipelinedClient {
	l := layout.New(cat.PageBytes)
	t := btree.New(l, &btree.EndpointMem{
		Ep:    ep,
		Place: btree.RoundRobin(cat.Servers, rrStart),
	}, cat.RootWords[0])
	rc, _ := ep.(rdma.Reconnector)
	eng := pipeline.New(pipeline.Config{
		Tree:        t,
		Ep:          ep,
		Env:         env,
		Inflight:    inflight,
		Reconnector: rc,
	})
	return &PipelinedClient{eng: eng, tree: t}
}

// Lookup submits an asynchronous lookup; cb runs when it completes (possibly
// within this call, if the engine pumps rounds to free a slot). values
// aliases engine scratch and is valid only inside the callback.
func (c *PipelinedClient) Lookup(key uint64, cb func(values []uint64, err error)) {
	c.eng.Lookup(key, cb)
}

// Insert submits an asynchronous insert of (key, value).
func (c *PipelinedClient) Insert(key, value uint64, cb func(err error)) {
	c.eng.Insert(key, value, cb)
}

// Delete submits an asynchronous delete of one entry matching (key, value).
func (c *PipelinedClient) Delete(key, value uint64, cb func(found bool, err error)) {
	c.eng.Delete(key, value, cb)
}

// Range drains the pipeline and runs a blocking one-sided leaf-level scan
// with head-node prefetching (scans chain pointers and gain nothing from
// overlapping with point operations).
func (c *PipelinedClient) Range(lo, hi uint64, emit func(k, v uint64) bool) error {
	return c.eng.Range(lo, hi, emit)
}

// Drain blocks until every submitted operation has completed.
func (c *PipelinedClient) Drain() { c.eng.Drain() }

// Inflight returns the number of operation slots.
func (c *PipelinedClient) Inflight() int { return c.eng.Inflight() }

// SetRecorder directs the per-operation protocol counters and the
// pipeline-shape counters (doorbell coalescing, in-flight depth) into rec.
func (c *PipelinedClient) SetRecorder(rec *telemetry.Recorder) { c.eng.SetRecorder(rec) }

// SetOpLog attaches the flight recorder: completed operations land as
// retroactive spans. The serial clients' per-access tracing does not apply
// to the async dataplane (wrap the endpoint with telemetry.Wrap for verb-
// level spans).
func (c *PipelinedClient) SetOpLog(log *obs.Log) { c.eng.SetLog(log) }

// SetSpinBudget bounds consistency restarts per traversal attempt, exactly
// as on the serial client.
func (c *PipelinedClient) SetSpinBudget(n int) { c.tree.SpinBudget = n }

// Tree exposes the underlying engine (stats, invariant checks).
func (c *PipelinedClient) Tree() *btree.Tree { return c.tree }
