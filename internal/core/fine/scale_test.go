package fine

import (
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/workload"
)

// TestTenMillionKeyBuild exercises the bulk loader and query paths at 10M
// keys (one tenth of paper scale) — the memory-budget and depth regime the
// sim-scale tests never reach (tree height 5 at 512 B pages).
func TestTenMillionKeyBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-key build")
	}
	const n = 10_000_000
	fab := direct.New(4, 192<<20, nam.SuperblockBytes)
	cat, err := Build(fab.Endpoint(), Options{Layout: layout.New(512)}, core.BuildSpec{
		N:         n,
		At:        workload.DataItem,
		HeadEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
	h, err := c.Tree().Height(rdma.NopEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if h < 5 {
		t.Fatalf("height = %d; want >= 5 at 10M keys and 512B pages", h)
	}
	for _, k := range []uint64{0, 1, 999_999, n / 2, n - 1} {
		vals, err := c.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != k {
			t.Fatalf("Lookup(%d) = %v", k, vals)
		}
	}
	count := 0
	if err := c.Range(5_000_000, 5_000_999, func(k, v uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Fatalf("range count = %d", count)
	}
	// Inserts and splits still work at depth.
	if err := c.Insert(5_000_000, 42); err != nil {
		t.Fatal(err)
	}
	vals, err := c.Lookup(5_000_000)
	if err != nil || len(vals) != 2 {
		t.Fatalf("after insert: %v %v", vals, err)
	}
}
