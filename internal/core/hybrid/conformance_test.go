package hybrid_test

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/hybrid"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/policy"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/rdma/tcpnet"
)

// The adaptive conformance scripts pin the policy-driven hybrid client
// byte-identical to both static strategies: whatever the decider returns —
// always RPC, always one-sided, or a forced flip mid-run — the same
// operation sequence must transcribe to the same results, serial and
// pipelined at in-flight 1 and 8, on the direct and tcpnet transports.
// Strategy only moves the upper-level descent between the traverse RPC and
// client-side fused reads of the same inner nodes; the B-link right-links
// make both reach the same leaf.

const confKeys = 5000

// flipDecider forces a strategy flip every `every` consultations — the
// scripted stand-in for an engine switching mid-run (and, pipelined,
// mid-pipeline: the flip lands inside a full submission window).
type flipDecider struct {
	n, every int
}

func (d *flipDecider) Strategy(int) policy.Strategy {
	d.n++
	if (d.n/d.every)%2 == 1 {
		return policy.StrategyOneSided
	}
	return policy.StrategyRPC
}

// driveSerial runs the fixed script against a serial client.
func driveSerial(t *testing.T, idx core.Index) string {
	t.Helper()
	var b strings.Builder
	for k := uint64(0); k < 600; k += 7 {
		vals, err := idx.Lookup(k)
		fmt.Fprintf(&b, "get %d -> %v %v\n", k, vals, err)
	}
	for k := uint64(2000); k < 2080; k++ {
		fmt.Fprintf(&b, "put %d %v\n", k, idx.Insert(k, k*3))
	}
	for k := uint64(2000); k < 2030; k++ {
		ok, err := idx.Delete(k, k*3)
		fmt.Fprintf(&b, "del %d %v %v\n", k, ok, err)
	}
	for k := uint64(1990); k < 2090; k += 3 {
		vals, err := idx.Lookup(k)
		fmt.Fprintf(&b, "chk %d -> %v %v\n", k, vals, err)
	}
	return b.String()
}

// drivePipelined runs the same script through the async surface, keeping the
// window full within each section and draining at section boundaries.
// Results are transcribed in submission order.
func drivePipelined(t *testing.T, c *hybrid.PipelinedClient) string {
	t.Helper()
	type getRes struct {
		vals []uint64
		err  error
	}
	var gets []getRes
	var getKeys []uint64
	submitGet := func(k uint64) {
		i := len(gets)
		gets = append(gets, getRes{})
		getKeys = append(getKeys, k)
		c.Lookup(k, func(vals []uint64, err error) {
			gets[i] = getRes{vals: append([]uint64(nil), vals...), err: err}
		})
	}

	var b strings.Builder
	for k := uint64(0); k < 600; k += 7 {
		submitGet(k)
	}
	c.Drain()
	for i, r := range gets {
		fmt.Fprintf(&b, "get %d -> %v %v\n", getKeys[i], r.vals, r.err)
	}

	putErrs := make([]error, 80)
	for i := range putErrs {
		i := i
		k := uint64(2000 + i)
		c.Insert(k, k*3, func(err error) { putErrs[i] = err })
	}
	c.Drain()
	for i, err := range putErrs {
		fmt.Fprintf(&b, "put %d %v\n", 2000+i, err)
	}

	type delRes struct {
		ok  bool
		err error
	}
	delRess := make([]delRes, 30)
	for i := range delRess {
		i := i
		k := uint64(2000 + i)
		c.Delete(k, k*3, func(ok bool, err error) { delRess[i] = delRes{ok, err} })
	}
	c.Drain()
	for i, r := range delRess {
		fmt.Fprintf(&b, "del %d %v %v\n", 2000+i, r.ok, r.err)
	}

	gets, getKeys = nil, nil
	for k := uint64(1990); k < 2090; k += 3 {
		submitGet(k)
	}
	c.Drain()
	for i, r := range gets {
		fmt.Fprintf(&b, "chk %d -> %v %v\n", getKeys[i], r.vals, r.err)
	}
	return b.String()
}

// variants enumerates the decider configurations every transport is pinned
// across. A fresh decider is constructed per run (flipDecider is stateful).
var variants = []struct {
	name string
	dec  func() policy.Decider
}{
	{"none", func() policy.Decider { return nil }},
	{"static-rpc", func() policy.Decider { return policy.Static(policy.StrategyRPC) }},
	{"static-one-sided", func() policy.Decider { return policy.Static(policy.StrategyOneSided) }},
	{"flip", func() policy.Decider { return &flipDecider{every: 13} }},
}

func buildDirect(t *testing.T, servers int) (*direct.Fabric, *nam.Catalog) {
	t.Helper()
	fab := direct.New(servers, 64<<20, nam.SuperblockBytes)
	srv := hybrid.NewServer(fab, hybrid.Options{
		Layout: layout.New(512),
		Part:   partition.NewRangeUniform(servers, confKeys),
	})
	cat, err := srv.Build(fab.Endpoint(), core.BuildSpec{
		N:         confKeys,
		At:        func(i int) (uint64, uint64) { return uint64(i), uint64(i) },
		HeadEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	fab.SetHandler(srv.Handler())
	return fab, cat
}

// TestAdaptiveConformanceDirect pins every decider variant — serial and
// pipelined at in-flight 1 and 8 — to the undecided serial baseline on the
// direct transport.
func TestAdaptiveConformanceDirect(t *testing.T) {
	fab, cat := buildDirect(t, 4)
	baseline := driveSerial(t, hybrid.NewClient(fab.Endpoint(), direct.Env{}, cat, 0))

	for _, v := range variants {
		fab, cat := buildDirect(t, 4)
		c := hybrid.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
		c.SetDecider(v.dec())
		if got := driveSerial(t, c); got != baseline {
			t.Errorf("serial %s diverged from baseline:\nbaseline:\n%s\ngot:\n%s", v.name, baseline, got)
		}
		for _, inflight := range []int{1, 8} {
			fab, cat := buildDirect(t, 4)
			p := hybrid.NewPipelinedClient(fab.Endpoint(), direct.Env{}, cat, 0, inflight)
			p.SetDecider(v.dec())
			if got := drivePipelined(t, p); got != baseline {
				t.Errorf("pipelined %s in-flight %d diverged from baseline:\nbaseline:\n%s\ngot:\n%s",
					v.name, inflight, baseline, got)
			}
		}
	}
}

// TestAdaptiveConformanceTCP repeats the pin over real TCP connections to
// in-process memory-server agents, the deployment model of cmd/namserver:
// one hybrid.Server per agent over its SingleServerFabric.
func TestAdaptiveConformanceTCP(t *testing.T) {
	const servers = 2
	spec := core.BuildSpec{
		N:         2000,
		At:        func(i int) (uint64, uint64) { return uint64(i), uint64(i) },
		HeadEvery: 8,
	}
	deploy := func() (*nam.Catalog, []string) {
		var addrs []string
		var hss []*hybrid.Server
		for i := 0; i < servers; i++ {
			srv := rdma.NewServer(i, 64<<20, nam.SuperblockBytes)
			hs := hybrid.NewServer(&rdma.SingleServerFabric{Srv: srv, Total: servers}, hybrid.Options{
				Layout: layout.New(512),
				Part:   partition.NewRangeUniform(servers, 2000),
			})
			agent := tcpnet.NewAgent(srv, hs.Handler())
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, l.Addr().String())
			go agent.Serve(l)
			t.Cleanup(agent.Close)
			hss = append(hss, hs)
		}
		setup := tcpnet.Dial(addrs)
		for i, hs := range hss {
			if err := hs.BuildServer(setup, i, spec); err != nil {
				t.Fatal(err)
			}
		}
		setup.Close()
		return hss[0].Catalog(), addrs
	}
	dial := func(addrs []string) rdma.Endpoint {
		ep := tcpnet.Dial(addrs)
		t.Cleanup(ep.Close)
		return ep
	}

	cat, addrs := deploy()
	baseline := driveSerial(t, hybrid.NewClient(dial(addrs), rdma.NopEnv{}, cat, 0))

	for _, v := range variants {
		cat, addrs := deploy()
		c := hybrid.NewClient(dial(addrs), rdma.NopEnv{}, cat, 0)
		c.SetDecider(v.dec())
		if got := driveSerial(t, c); got != baseline {
			t.Errorf("TCP serial %s diverged:\nbaseline:\n%s\ngot:\n%s", v.name, baseline, got)
		}
		for _, inflight := range []int{1, 8} {
			cat, addrs := deploy()
			p := hybrid.NewPipelinedClient(dial(addrs), rdma.NopEnv{}, cat, 0, inflight)
			p.SetDecider(v.dec())
			if got := drivePipelined(t, p); got != baseline {
				t.Errorf("TCP pipelined %s in-flight %d diverged:\nbaseline:\n%s\ngot:\n%s",
					v.name, inflight, baseline, got)
			}
		}
	}
}
