// Package hybrid implements Design 3 of the paper (Section 5): the hybrid
// index.
//
// The upper levels (root and inner nodes) are partitioned coarse-grained:
// each memory server owns the inner levels for its key range and traverses
// them on behalf of clients via an RPC that returns a *remote pointer to the
// responsible leaf*. The leaf level is distributed fine-grained: leaves are
// placed round-robin across all memory servers and accessed by compute
// servers with the one-sided protocol, including head-node prefetching for
// range scans. A leaf split is performed one-sided by the compute server,
// which then reports the new separator upstairs with a second RPC; the
// owning memory server installs it into its local inner levels (Listing 1's
// second phase).
package hybrid

import (
	"errors"
	"fmt"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/policy"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/repl"
	"github.com/namdb/rdmatree/internal/telemetry"
)

// Options configures the hybrid design.
type Options struct {
	// Layout is the page layout (page size P).
	Layout layout.Layout
	// Part partitions the key space across the servers owning upper levels.
	Part partition.Partitioner
	// VisitNS is the CPU time an RPC handler charges per page visited
	// (performance model of the simulated fabric).
	VisitNS int64
	// Telemetry, when non-nil, receives the per-operation protocol counters
	// of the handler-executed traversals and installs.
	Telemetry *telemetry.Recorder
	// Replicas is the page-replication factor k (0 and 1 both mean
	// unreplicated). Replicated deployments must configure the fabric with
	// the nam.ReplicaLayout slab allocators before building; install
	// handlers then capture committed post-images into the response's Dirty
	// trailer for the client to mirror.
	Replicas int
	// RegionBytes is the uniform registered-region size; required (and
	// recorded in the catalog) when Replicas >= 2.
	RegionBytes uint64
	// SpinBudget bounds each handler-executed tree operation's consistency
	// restarts (btree.Tree.SpinBudget); 0 leaves the waits unbounded.
	// Fault-injected replicated deployments must set it: an install that
	// waits for split state lost with a crashed primary otherwise spins
	// forever (the writer it waits for is dead). With a budget the handler
	// fails the RPC with a StatusRetry response instead, and the client
	// re-runs the operation — the half-split leaf stays reachable through
	// its right link, so the re-run's presence check can ack it.
	SpinBudget int
}

func (o Options) replicated() bool { return o.Replicas >= 2 }

// Server is the server side: per-server upper-level trees.
type Server struct {
	opts    Options
	fab     rdma.Fabric
	catalog *nam.Catalog
	// load, when non-nil, supplies each server's handler-CPU utilization in
	// [0,1]; the handler piggybacks it on every reply (nam.Response.Load).
	load func(server int) float64
}

// SetLoadProbe installs a per-server CPU-utilization probe; replies then
// carry the load signal the adaptive traversal policy consumes (the
// crossover between RPC offload and one-sided traversal moves with server
// load, so clients need to see it). The deployment supplies the probe —
// simnet.Fabric.ServerCoreLoad on the simulated fabric — keeping this
// package free of any dependency on the fabric's implementation.
func (s *Server) SetLoadProbe(probe func(server int) float64) {
	s.load = probe
}

// NewServer wires the design's server side onto a fabric.
func NewServer(fab rdma.Fabric, opts Options) *Server {
	if opts.Part.Servers() != fab.NumServers() {
		panic("hybrid: partitioner/fabric server count mismatch")
	}
	return &Server{opts: opts, fab: fab}
}

// rootWord returns the root-pointer word of server's upper levels: the
// legacy superblock word, or — replicated — group server's slot in the
// reserved replica prefix (present on every member, surviving failover).
func (s *Server) rootWord(server int) rdma.RemotePtr {
	if s.opts.replicated() {
		return nam.GroupRootPtr(server)
	}
	return nam.RootWordPtr(server)
}

// tree returns a fresh server-side handle for one server's upper levels.
// Handlers only ever touch inner nodes, which are all local.
func (s *Server) tree(server int) *btree.Tree {
	t := btree.New(s.opts.Layout, btree.LocalMem{Srv: s.fab.Server(server)}, s.rootWord(server))
	t.VisitNS = s.opts.VisitNS
	t.SpinBudget = s.opts.SpinBudget
	return t
}

// treeFor returns the handle serving group's upper levels on server. Before
// a failover group == server; afterwards the handler traverses the foreign
// group's mirrored inner nodes out of its own region (identity-offset
// replicas), allocating any new inner pages from its own slab.
func (s *Server) treeFor(server, group int) *btree.Tree {
	if !s.opts.replicated() || group == server {
		return s.tree(server)
	}
	t := btree.New(s.opts.Layout,
		btree.ReplicaLocalMem{Srv: s.fab.Server(server), Home: group},
		nam.GroupRootPtr(group))
	t.VisitNS = s.opts.VisitNS
	t.SpinBudget = s.opts.SpinBudget
	return t
}

// Build bulk-loads the index: for every server's partition, the leaf level
// (with head nodes) is placed round-robin across *all* servers through
// setupEp, while the inner levels stay on the owning server. Partitions are
// guaranteed an inner root even when tiny, so server-side traversal never
// touches a foreign leaf.
func (s *Server) Build(setupEp rdma.Endpoint, spec core.BuildSpec) (*nam.Catalog, error) {
	for srv := 0; srv < s.fab.NumServers(); srv++ {
		if err := s.BuildServer(setupEp, srv, spec); err != nil {
			return nil, err
		}
	}
	return s.makeCatalog(), nil
}

// BuildServer bulk-loads one partition only: its leaves are spread over all
// servers (written through setupEp, which must reach the whole cluster — on
// a distributed deployment this is a TCP endpoint to the peers), its inner
// levels stay on the owning server. Distributed deployments (cmd/namserver
// -design hybrid) call this with their own server ID after all peers are
// listening; the spec must be identical on every process.
func (s *Server) BuildServer(setupEp rdma.Endpoint, srv int, spec core.BuildSpec) error {
	servers := s.fab.NumServers()
	rr := srv // stagger leaf placement across independently-built partitions
	place := func(level int) int {
		if level == 0 {
			p := rr
			rr = (rr + 1) % servers
			return p
		}
		return srv
	}
	t := btree.New(s.opts.Layout, &btree.EndpointMem{Ep: setupEp, Place: place}, s.rootWord(srv))
	count := 0
	for i := 0; i < spec.N; i++ {
		k, _ := spec.At(i)
		if s.opts.Part.Server(k) == srv {
			count++
		}
	}
	cursor := 0
	at := func(int) (uint64, uint64) {
		for {
			k, v := spec.At(cursor)
			cursor++
			if s.opts.Part.Server(k) == srv {
				return k, v
			}
		}
	}
	cfg := btree.BuildConfig{Fill: spec.Fill, HeadEvery: spec.HeadEvery}
	if count == 0 {
		if err := t.Init(rdma.NopEnv{}); err != nil { //rdmavet:allow nopenv -- bootstrap: runs once before timed traffic
			return err
		}
	} else if _, err := t.Build(rdma.NopEnv{}, cfg, count, at); err != nil { //rdmavet:allow nopenv -- bulk load is an untimed setup path
		return fmt.Errorf("hybrid: building server %d: %w", srv, err)
	}
	// Guarantee the root is an inner node on the owning server: wrap a
	// single-leaf tree in a one-entry inner root.
	return ensureInnerRoot(setupEp, s.opts.Layout, srv, s.rootWord(srv))
}

// Catalog returns the catalog describing this deployment (building it on
// demand for distributed deployments that never call Build).
func (s *Server) Catalog() *nam.Catalog {
	if s.catalog == nil {
		s.makeCatalog()
	}
	return s.catalog
}

// ensureInnerRoot wraps a leaf root in a local inner root (the hybrid
// invariant: server-side traversal only touches local inner nodes).
func ensureInnerRoot(ep rdma.Endpoint, l layout.Layout, srv int, rootWord rdma.RemotePtr) error {
	var w [1]uint64
	if err := ep.Read(rootWord, w[:]); err != nil {
		return err
	}
	rootPtr := rdma.RemotePtr(w[0])
	buf := make([]uint64, l.Words)
	if err := ep.Read(rootPtr, buf); err != nil {
		return err
	}
	n := l.Wrap(buf)
	if !n.IsLeaf() {
		if rootPtr.Server() != srv {
			return fmt.Errorf("hybrid: inner root of server %d placed on server %d", srv, rootPtr.Server())
		}
		return nil
	}
	innerPtr, err := ep.Alloc(srv, l.PageBytes)
	if err != nil {
		return err
	}
	inner := l.NewNode()
	inner.InitInner(1)
	inner.InnerAppend(layout.MaxKey, rootPtr)
	if err := ep.Write(innerPtr, inner.W); err != nil {
		return err
	}
	return ep.Write(rootWord, []uint64{uint64(innerPtr)})
}

func (s *Server) makeCatalog() *nam.Catalog {
	c := &nam.Catalog{
		Design:    nam.Hybrid,
		PageBytes: s.opts.Layout.PageBytes,
		Servers:   s.fab.NumServers(),
	}
	c.Replicas = s.opts.Replicas
	c.RegionBytes = s.opts.RegionBytes
	for i := 0; i < s.fab.NumServers(); i++ {
		c.RootWords = append(c.RootWords, s.rootWord(i))
	}
	switch p := s.opts.Part.(type) {
	case *partition.Range:
		c.PartKind = nam.PartRange
		c.RangeBounds = p.Bounds()
	case *partition.Hash:
		c.PartKind = nam.PartHash
	default:
		panic(fmt.Sprintf("hybrid: unsupported partitioner %T", s.opts.Part))
	}
	s.catalog = c
	return c
}

// respErr classifies a handler-side tree failure: spin-budget exhaustion is
// op-recoverable at the client (StatusRetry — fence, re-traverse, re-run),
// anything else aborts the operation.
func respErr(err error) *nam.Response {
	if errors.Is(err, btree.ErrSpinBudget) {
		return nam.RetryResponse(err)
	}
	return nam.ErrResponse(err)
}

// Handler returns the RPC handler serving OpTraverse and OpInstall.
func (s *Server) Handler() rdma.Handler {
	return func(env rdma.Env, server int, reqBytes []byte) ([]byte, rdma.Work) {
		req, err := nam.DecodeRequest(reqBytes)
		if err != nil {
			return nam.ErrResponse(err).Encode(), rdma.Work{}
		}
		group := server
		if s.opts.replicated() {
			group = int(req.Group)
		}
		t := s.treeFor(server, group)
		var capt *repl.Capture
		if s.opts.replicated() {
			// Servers are passive toward each other (NAM): committed inner
			// pages are captured and shipped back for the client to mirror.
			capt = &repl.Capture{}
			t.Repl = capt
		}
		var resp *nam.Response
		var st btree.Stats
		switch req.Op {
		case nam.OpTraverse:
			leaf, stats, err := t.FindLeaf(env, req.Key)
			st = stats
			if err != nil {
				resp = respErr(err)
			} else {
				resp = &nam.Response{Status: nam.StatusOK, Ptr: leaf}
			}
		case nam.OpInstall:
			stats, err := t.Install(env, 1, req.End, req.Left, req.Right)
			st = stats
			if err != nil {
				resp = respErr(err)
			} else {
				resp = &nam.Response{Status: nam.StatusOK}
			}
		default:
			resp = nam.ErrResponse(fmt.Errorf("hybrid: bad op %d", req.Op))
		}
		if s.opts.Telemetry != nil && st.Ops() > 0 {
			s.opts.Telemetry.RecordIndexOp(st)
		}
		if capt != nil && len(capt.Pages) > 0 {
			// Error responses carry the trailer too: an install that
			// committed pages before failing still needs them mirrored.
			resp.Dirty = capt.Pages
		}
		if s.load != nil {
			if u := s.load(server); u > 0 {
				if u > 1 {
					u = 1
				}
				resp.Load = uint8(u*100 + 0.5)
			}
		}
		return resp.Encode(), rdma.Work{PagesTouched: st.PageReads + st.PageWrites}
	}
}

// CheckInvariants verifies every partition's tree through a global view
// (tests only) and returns total live entries.
func (s *Server) CheckInvariants(ep rdma.Endpoint) (int, error) {
	total := 0
	for i := 0; i < s.fab.NumServers(); i++ {
		t := btree.New(s.opts.Layout, &btree.EndpointMem{Ep: ep, Place: btree.Fixed(i)}, s.rootWord(i))
		n, err := t.CheckInvariants(rdma.NopEnv{}) //rdmavet:allow nopenv -- test-only invariant sweep, never on the timed path
		if err != nil {
			return 0, fmt.Errorf("server %d: %w", i, err)
		}
		total += n
	}
	return total, nil
}

// RecoverLocks sweeps every partition's tree for page locks abandoned by
// clients interrupted mid-operation (btree.Tree.RecoverLocks) and releases
// them. Only the fine-grained leaf level can hold abandoned locks — inner
// levels are locked exclusively by the owning server's handlers, which run to
// completion — but the sweep walks whole partitions, which costs nothing
// extra and asserts that invariant. Must run quiesced.
func (s *Server) RecoverLocks(ep rdma.Endpoint) (cleared int, err error) {
	for i := 0; i < s.fab.NumServers(); i++ {
		t := btree.New(s.opts.Layout, &btree.EndpointMem{Ep: ep, Place: btree.Fixed(i)}, s.rootWord(i))
		n, err := t.RecoverLocks()
		if err != nil {
			return cleared, fmt.Errorf("server %d: %w", i, err)
		}
		cleared += n
	}
	return cleared, nil
}

// GC is the hybrid design's split garbage collection (Section 5): a global
// thread on a compute server compacts the fine-grained leaf level through
// the one-sided protocol, while each memory server compacts nothing locally
// (upper levels hold no delete bits; separator removal is not needed because
// merges are left to the global thread too, which reports them upstairs just
// like splits). This implementation performs leaf compaction per partition.
type GC struct {
	c *Client
}

// NewGC creates the global garbage collector driving the index through
// client c.
func NewGC(c *Client) *GC { return &GC{c: c} }

// RunEpoch compacts delete-bit entries in every partition's leaf chain and
// returns the number of entries removed.
func (g *GC) RunEpoch() (removed int, err error) {
	for srv := 0; srv < g.c.cat.Servers; srv++ {
		leaf, err := g.c.traverse(srv, 0)
		if err != nil {
			return removed, err
		}
		r, _, err := g.c.leaf.CompactFrom(g.c.env, leaf)
		if err != nil {
			return removed, err
		}
		removed += r
	}
	return removed, nil
}

// Client is one compute thread's handle onto a hybrid index.
type Client struct {
	ep   rdma.Endpoint
	env  rdma.Env
	cat  *nam.Catalog
	part partition.Partitioner
	// leaf drives the one-sided leaf-level protocol; its placement policy
	// spreads split pages round-robin (leaves stay fine-grained).
	leaf *btree.Tree
	rec  *telemetry.Recorder
	log  *obs.Log
	mir  nam.DirtyPusher

	// dec, when non-nil, selects the traversal strategy per operation
	// (policy.Decider); upper[srv] is the client-side handle onto server
	// srv's inner levels for one-sided traversal, built on SetDecider.
	dec    policy.Decider
	upper  []*btree.Tree
	feed   policy.Feed
	pclock policy.Clock
}

// Mirrorer is the client-side replication engine (repl.Mirrorer): the leaf
// tree mirrors its own one-sided commits through the btree.Replicator half,
// and server-captured post-images from traverse/install RPCs are replayed
// through the Push half.
type Mirrorer interface {
	btree.Replicator
	nam.DirtyPusher
}

var _ core.Index = (*Client)(nil)

// NewClient binds a client to an endpoint; rrStart staggers split placement.
func NewClient(ep rdma.Endpoint, env rdma.Env, cat *nam.Catalog, rrStart int) *Client {
	l := layout.New(cat.PageBytes)
	leaf := btree.New(l, &btree.EndpointMem{
		Ep:    ep,
		Place: btree.RoundRobin(cat.Servers, rrStart),
	}, rdma.NullPtr)
	return &Client{ep: ep, env: env, cat: cat, part: cat.Partitioner(), leaf: leaf}
}

// SetRecorder directs the client-side (one-sided leaf level) protocol
// counters into rec. The server-side traversal counters are recorded by the
// handler through Options.Telemetry.
func (c *Client) SetRecorder(rec *telemetry.Recorder) { c.rec = rec }

// SetOpLog threads the per-operation span tracer through the client: op
// boundaries carry the partition owning the key's inner levels, traverse and
// install RPCs record their destination and outcome, and the one-sided leaf
// engine's memory accesses are decorated into the flight recorder. A nil log
// disables tracing.
func (c *Client) SetOpLog(log *obs.Log) {
	c.log = log
	c.leaf.M = obs.WrapMem(c.leaf.M, log)
	for _, t := range c.upper {
		t.M = obs.WrapMem(t.M, log)
	}
}

// SetDecider installs the traversal-policy hook consulted once per operation:
// policy.StrategyOneSided routes the upper-level descent through one-sided
// fused reads of the owner's inner nodes (the B-link right-links make that
// correct against concurrent handler-side installs), policy.StrategyRPC keeps
// the traverse offloaded. Splits always report upstairs via the install RPC
// regardless of strategy — only the read path is policy-driven. A nil d
// restores the static RPC design.
func (c *Client) SetDecider(d policy.Decider) {
	c.dec = d
	if d == nil {
		return
	}
	if c.upper == nil {
		l := layout.New(c.cat.PageBytes)
		c.upper = make([]*btree.Tree, c.cat.Servers)
		for srv := range c.upper {
			t := btree.New(l, &btree.EndpointMem{Ep: c.ep, Place: btree.Fixed(srv)}, c.cat.RootWords[srv])
			t.SpinBudget = c.leaf.SpinBudget
			if c.log != nil {
				t.M = obs.WrapMem(t.M, c.log)
			}
			c.upper[srv] = t
		}
	}
}

// SetSignalFeed directs per-traversal and per-leaf-access observations into
// f, timestamped off clock — the measurement half of the adaptive loop (the
// decision half is SetDecider). Both must be non-nil, or both nil.
func (c *Client) SetSignalFeed(f policy.Feed, clock policy.Clock) {
	c.feed, c.pclock = f, clock
}

// InvalidateRoot implements core.RootInvalidator. The hybrid client caches
// no descent state itself (every operation starts from a traversal RPC), but
// the one-sided leaf engine — and, adaptive, each upper-level handle — keeps
// the usual root-word cache; drop them so a post-fault retry starts from
// fresh state.
func (c *Client) InvalidateRoot() {
	c.leaf.InvalidateRoot()
	for _, t := range c.upper {
		t.InvalidateRoot()
	}
}

// SetSpinBudget bounds the leaf engine's consistency restarts per operation
// (btree.Tree.SpinBudget); clients running under fault injection set it so a
// stuck leaf lock surfaces as btree.ErrSpinBudget instead of a hang.
func (c *Client) SetSpinBudget(n int) {
	c.leaf.SpinBudget = n
	for _, t := range c.upper {
		t.SpinBudget = n
	}
}

func (c *Client) record(st btree.Stats) {
	if c.rec != nil {
		c.rec.RecordIndexOp(st)
	}
}

// SetMirrorer installs the client's replication engine: both the one-sided
// leaf level and the handler-committed inner pages mirror through it before
// any operation acks. A nil m disables replication.
func (c *Client) SetMirrorer(m Mirrorer) {
	if m == nil {
		c.mir = nil
		c.leaf.Repl = nil
		return
	}
	c.mir = m
	c.leaf.Repl = m
}

func (c *Client) call(server int, req *nam.Request) (*nam.Response, error) {
	if c.cat.Replicated() {
		req.Group = uint8(server)
	}
	raw, err := c.ep.Call(server, req.Encode())
	if err != nil {
		c.log.RPCEvent(server, req.Op, err)
		return nil, err
	}
	resp, err := nam.DecodeResponse(raw)
	if err == nil && c.mir != nil && len(resp.Dirty) > 0 {
		// Mirror the handler's committed pages before acking; a failed push
		// leaves the op un-acked (mirror-before-ack is the acked-data
		// durability invariant).
		if perr := c.mir.Push(resp.Dirty); perr != nil {
			c.log.RPCEvent(server, req.Op, perr)
			return nil, perr
		}
	}
	if err == nil {
		err = resp.AsError()
	}
	c.log.RPCEvent(server, req.Op, err)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// traverse locates the leaf responsible for key: an RPC to the partition
// owner, or — when the policy engine says the crossover favors it — a
// one-sided descent of the owner's inner levels.
func (c *Client) traverse(server int, key uint64) (rdma.RemotePtr, error) {
	if c.dec != nil && c.dec.Strategy(server) == policy.StrategyOneSided {
		return c.traverseOneSided(server, key)
	}
	var t0 int64
	if c.feed != nil {
		t0 = c.pclock.Now()
	}
	resp, err := c.call(server, &nam.Request{Op: nam.OpTraverse, Key: key})
	if err != nil {
		return rdma.NullPtr, err
	}
	if c.feed != nil {
		c.feed.ObserveTraverse(server, policy.StrategyRPC, c.pclock.Now()-t0, 0)
		c.feed.ObserveCPU(server, float64(resp.Load)/100)
	}
	if resp.Ptr.IsNull() {
		return rdma.NullPtr, fmt.Errorf("hybrid: traverse returned null leaf")
	}
	return resp.Ptr, nil
}

// traverseOneSided walks server's upper levels with fused reads. The descent
// is read-only (inner-level writes happen only in the owner's install
// handlers), so it needs no mirroring; under replication c.ep is already the
// group-routing endpoint and the group root word resolves to the acting
// primary.
func (c *Client) traverseOneSided(server int, key uint64) (rdma.RemotePtr, error) {
	var t0 int64
	if c.feed != nil {
		t0 = c.pclock.Now()
	}
	leaf, st, err := c.upper[server].FindLeaf(c.env, key)
	c.record(st)
	if err != nil {
		return rdma.NullPtr, err
	}
	if c.feed != nil {
		c.feed.ObserveTraverse(server, policy.StrategyOneSided, c.pclock.Now()-t0, st.Depth)
	}
	if leaf.IsNull() {
		return rdma.NullPtr, fmt.Errorf("hybrid: traverse returned null leaf")
	}
	return leaf, nil
}

// Lookup implements core.Index: RPC traversal + one-sided leaf read.
func (c *Client) Lookup(key uint64) ([]uint64, error) {
	c.log.BeginOp(obs.OpLookup, key, c.part.Server(key))
	vals, err := c.doLookup(key)
	c.log.EndOp(err)
	return vals, err
}

func (c *Client) doLookup(key uint64) ([]uint64, error) {
	srv := c.part.Server(key)
	leaf, err := c.traverse(srv, key)
	if err != nil {
		return nil, err
	}
	var t0 int64
	if c.feed != nil {
		t0 = c.pclock.Now()
	}
	vals, st, err := c.leaf.LeafLookup(c.env, leaf, key)
	c.record(st)
	if c.feed != nil && err == nil {
		c.feed.ObserveLeaf(srv, c.pclock.Now()-t0, st.ExposedRTTs, 8*len(vals))
	}
	return vals, err
}

// Range implements core.Index: per intersecting partition, RPC traversal to
// the start leaf, then a one-sided leaf-level scan with head-node prefetch.
func (c *Client) Range(lo, hi uint64, emit func(k, v uint64) bool) error {
	c.log.BeginOp(obs.OpRange, lo, -1)
	err := c.doRange(lo, hi, emit)
	c.log.EndOp(err)
	return err
}

func (c *Client) doRange(lo, hi uint64, emit func(k, v uint64) bool) error {
	stopped := false
	emitted := 0
	wrapped := func(k, v uint64) bool {
		if !emit(k, v) {
			stopped = true
			return false
		}
		emitted++
		return true
	}
	for _, srv := range c.part.CoversRange(lo, hi) {
		leaf, err := c.traverse(srv, lo)
		if err != nil {
			return err
		}
		var t0 int64
		if c.feed != nil {
			t0 = c.pclock.Now()
			emitted = 0
		}
		st, err := c.leaf.LeafScan(c.env, leaf, lo, hi, wrapped)
		c.record(st)
		if c.feed != nil && err == nil {
			c.feed.ObserveLeaf(srv, c.pclock.Now()-t0, st.ExposedRTTs, 16*emitted)
		}
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// Insert implements core.Index: RPC traversal, one-sided leaf insert/split,
// and — on split — a second RPC installing the separator upstairs.
func (c *Client) Insert(key, value uint64) error {
	c.log.BeginOp(obs.OpInsert, key, c.part.Server(key))
	err := c.doInsert(key, value)
	c.log.EndOp(err)
	return err
}

func (c *Client) doInsert(key, value uint64) error {
	srv := c.part.Server(key)
	leaf, err := c.traverse(srv, key)
	if err != nil {
		return err
	}
	var t0 int64
	if c.feed != nil {
		t0 = c.pclock.Now()
	}
	sp, st, err := c.leaf.LeafInsertAt(c.env, leaf, key, value)
	c.record(st)
	if c.feed != nil && err == nil {
		c.feed.ObserveLeaf(srv, c.pclock.Now()-t0, st.ExposedRTTs, 8)
	}
	if err != nil {
		return err
	}
	if sp == nil {
		return nil
	}
	_, err = c.call(srv, &nam.Request{Op: nam.OpInstall, End: sp.Sep, Left: sp.Left, Right: sp.Right})
	return err
}

// Delete implements core.Index.
func (c *Client) Delete(key, value uint64) (bool, error) {
	c.log.BeginOp(obs.OpDelete, key, c.part.Server(key))
	ok, err := c.doDelete(key, value)
	c.log.EndOp(err)
	return ok, err
}

func (c *Client) doDelete(key, value uint64) (bool, error) {
	srv := c.part.Server(key)
	leaf, err := c.traverse(srv, key)
	if err != nil {
		return false, err
	}
	var t0 int64
	if c.feed != nil {
		t0 = c.pclock.Now()
	}
	ok, st, err := c.leaf.LeafDeleteAt(c.env, leaf, key, value)
	c.record(st)
	if c.feed != nil && err == nil {
		c.feed.ObserveLeaf(srv, c.pclock.Now()-t0, st.ExposedRTTs, 8)
	}
	return ok, err
}
