package hybrid

import (
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

func deploy(t *testing.T, servers, n int) (*direct.Fabric, *Server, *Client) {
	t.Helper()
	fab := direct.New(servers, 64<<20, nam.SuperblockBytes)
	srv := NewServer(fab, Options{
		Layout: layout.New(512),
		Part:   partition.NewRangeUniform(servers, uint64(max(n, 1))),
	})
	cat, err := srv.Build(fab.Endpoint(), core.BuildSpec{
		N:         n,
		At:        func(i int) (uint64, uint64) { return uint64(i), uint64(i) },
		HeadEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	fab.SetHandler(srv.Handler())
	return fab, srv, NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestInnerNodesLocalLeavesSpread verifies the hybrid placement invariant:
// every server's inner levels live on that server while leaves are spread.
func TestInnerNodesLocalLeavesSpread(t *testing.T) {
	fab, srv, _ := deploy(t, 4, 40_000)
	_ = srv
	// Walk each partition's tree from its root word and check inner pages.
	l := layout.New(512)
	ep := fab.Endpoint()
	for s := 0; s < 4; s++ {
		var w [1]uint64
		if err := ep.Read(nam.RootWordPtr(s), w[:]); err != nil {
			t.Fatal(err)
		}
		root := rdma.RemotePtr(w[0])
		if root.Server() != s {
			t.Fatalf("server %d root on server %d", s, root.Server())
		}
		// BFS over inner levels.
		leafServers := map[int]bool{}
		queue := []rdma.RemotePtr{root}
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			buf := make([]uint64, l.Words)
			if err := ep.Read(p, buf); err != nil {
				t.Fatal(err)
			}
			n := l.Wrap(buf)
			if n.IsLeaf() {
				leafServers[p.Server()] = true
				continue
			}
			if p.Server() != s {
				t.Fatalf("inner node of partition %d on server %d", s, p.Server())
			}
			for i := 0; i < n.Count(); i++ {
				queue = append(queue, n.InnerChild(i))
			}
		}
		if len(leafServers) < 2 {
			t.Fatalf("partition %d leaves not spread: %v", s, leafServers)
		}
	}
}

func TestClientOperations(t *testing.T) {
	fab, srv, c := deploy(t, 4, 20_000)
	vals, err := c.Lookup(777)
	if err != nil || len(vals) != 1 || vals[0] != 777 {
		t.Fatalf("lookup: %v %v", vals, err)
	}
	if err := c.Insert(777, 42); err != nil {
		t.Fatal(err)
	}
	vals, err = c.Lookup(777)
	if err != nil || len(vals) != 2 {
		t.Fatalf("after insert: %v %v", vals, err)
	}
	ok, err := c.Delete(777, 42)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	count := 0
	// Cross-partition range (partitions split at 5000, 10000, 15000).
	if err := c.Range(4990, 5009, func(k, v uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("cross-partition range = %d entries; want 20", count)
	}
	live, err := srv.CheckInvariants(fab.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	if live != 20_000 {
		t.Fatalf("live = %d", live)
	}
}

// TestSplitInstallsThroughRPC drives enough inserts into one partition to
// force leaf splits (client-side) and separator installs (server-side),
// including inner-node splits and root growth.
func TestSplitInstallsThroughRPC(t *testing.T) {
	fab, srv, c := deploy(t, 2, 100)
	for i := 0; i < 20_000; i++ {
		if err := c.Insert(uint64(i%50), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	live, err := srv.CheckInvariants(fab.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	if live != 20_100 {
		t.Fatalf("live = %d", live)
	}
	vals, err := c.Lookup(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 401 { // 400 duplicates + initial
		t.Fatalf("Lookup(7) = %d values; want 401", len(vals))
	}
}

func TestGlobalGCCompactsAllPartitions(t *testing.T) {
	fab, srv, c := deploy(t, 4, 8000)
	for i := 0; i < 8000; i += 2 {
		ok, err := c.Delete(uint64(i), uint64(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	gc := NewGC(c)
	removed, err := gc.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4000 {
		t.Fatalf("removed = %d; want 4000", removed)
	}
	live, err := srv.CheckInvariants(fab.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	if live != 4000 {
		t.Fatalf("live = %d", live)
	}
	// Second epoch is a no-op.
	removed, err = gc.RunEpoch()
	if err != nil || removed != 0 {
		t.Fatalf("second epoch: %d %v", removed, err)
	}
}

func TestEmptyIndex(t *testing.T) {
	_, _, c := deploy(t, 4, 0)
	vals, err := c.Lookup(5)
	if err != nil || len(vals) != 0 {
		t.Fatalf("empty lookup: %v %v", vals, err)
	}
	if err := c.Insert(5, 50); err != nil {
		t.Fatal(err)
	}
	vals, err = c.Lookup(5)
	if err != nil || len(vals) != 1 {
		t.Fatalf("after insert: %v %v", vals, err)
	}
}
