package hybrid

import (
	"fmt"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/policy"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/telemetry"
)

// PipelinedClient is the asynchronous variant of Client: up to inflight
// traverse RPCs are outstanding at once, their SENDs sharing doorbell
// batches (DESIGN.md §11). The hybrid design splits each operation into a
// server-side upper-level traversal (one RPC) and a one-sided leaf access;
// the RPC dominates the exposed latency and is what this client pipelines.
// When a traverse completes, the slot's leaf access runs through the serial
// one-sided protocol between rounds — blocking verbs are safe there because
// delivery happens with no completions outstanding — and a split's install
// RPC likewise runs serially (splits are rare; pipelining them would buy
// nothing and complicate the exactly-once argument).
//
// Like the serial Client, a PipelinedClient is owned by a single goroutine.
type PipelinedClient struct {
	ep   rdma.AsyncEndpoint
	env  rdma.Env
	cat  *nam.Catalog
	part partition.Partitioner
	leaf *btree.Tree
	rec  *telemetry.Recorder
	log  *obs.Log

	// dec, when non-nil, selects the traversal strategy per operation; a
	// slot decided one-sided posts nothing and runs its descent at the next
	// round boundary (see pumpRound — the boundary is the ordering fence
	// that makes a mid-pipeline strategy switch safe).
	dec    policy.Decider
	upper  []*btree.Tree
	feed   policy.Feed
	pclock policy.Clock

	slots  []*travSlot
	free   []int32
	active int
	// order[i] is the slot that posted the i-th traverse of the round being
	// delivered; nextOrder accumulates the next round.
	order, nextOrder []int32
	comps            []rdma.Completion
}

type travSlot struct {
	idx        int32
	op         uint8 // nam.OpLookup / nam.OpInsert / nam.OpDelete
	key, value uint64
	server     int
	start      int64
	strat      policy.Strategy
	t0         int64 // signal-feed timestamp (posting time, RPC strategy)

	onLookup func(values []uint64, err error)
	onInsert func(err error)
	onDelete func(found bool, err error)
}

// NewPipelinedClient binds an asynchronous client to an endpoint; rrStart
// staggers split-page placement, inflight <= 0 selects a default of 16
// slots.
func NewPipelinedClient(ep rdma.Endpoint, env rdma.Env, cat *nam.Catalog, rrStart, inflight int) *PipelinedClient {
	if inflight <= 0 {
		inflight = 16
	}
	l := layout.New(cat.PageBytes)
	leaf := btree.New(l, &btree.EndpointMem{
		Ep:    ep,
		Place: btree.RoundRobin(cat.Servers, rrStart),
	}, rdma.NullPtr)
	c := &PipelinedClient{
		ep:   rdma.Async(ep),
		env:  env,
		cat:  cat,
		part: cat.Partitioner(),
		leaf: leaf,
	}
	c.slots = make([]*travSlot, inflight)
	c.free = make([]int32, 0, inflight)
	for i := range c.slots {
		c.slots[i] = &travSlot{idx: int32(i)}
		c.free = append(c.free, int32(i))
	}
	return c
}

// SetRecorder directs the client-side (one-sided leaf level) protocol
// counters into rec; server-side traversal counters come from the handler's
// Options.Telemetry as in the serial client.
func (c *PipelinedClient) SetRecorder(rec *telemetry.Recorder) { c.rec = rec }

// SetOpLog attaches the flight recorder: completed operations land as
// retroactive spans carrying their partition, and traverse/install RPCs
// record destination and outcome. A nil log disables tracing.
func (c *PipelinedClient) SetOpLog(log *obs.Log) { c.log = log }

// SetSpinBudget bounds the leaf engine's consistency restarts per operation.
func (c *PipelinedClient) SetSpinBudget(n int) {
	c.leaf.SpinBudget = n
	for _, t := range c.upper {
		t.SpinBudget = n
	}
}

// SetDecider installs the traversal-policy hook, exactly as on the serial
// Client. The decider is consulted at submission time; operations decided
// one-sided skip the doorbell batch entirely and run their fused-read
// descent at the round boundary.
func (c *PipelinedClient) SetDecider(d policy.Decider) {
	c.dec = d
	if d == nil {
		return
	}
	if c.upper == nil {
		l := layout.New(c.cat.PageBytes)
		c.upper = make([]*btree.Tree, c.cat.Servers)
		for srv := range c.upper {
			t := btree.New(l, &btree.EndpointMem{Ep: c.ep, Place: btree.Fixed(srv)}, c.cat.RootWords[srv])
			t.SpinBudget = c.leaf.SpinBudget
			c.upper[srv] = t
		}
	}
}

// SetSignalFeed directs traversal observations into f, timestamped off
// clock. RPC traverses are measured post-to-delivery (their exposed,
// pipelined cost); one-sided traverses around the descent itself.
func (c *PipelinedClient) SetSignalFeed(f policy.Feed, clock policy.Clock) {
	c.feed, c.pclock = f, clock
}

// Lookup submits an asynchronous lookup; cb runs when the operation
// completes (possibly within this call, if the client pumps rounds to free
// a slot).
func (c *PipelinedClient) Lookup(key uint64, cb func(values []uint64, err error)) {
	s := c.take()
	s.op, s.key = nam.OpLookup, key
	s.onLookup = cb
	c.post(s)
}

// Insert submits an asynchronous insert of (key, value).
func (c *PipelinedClient) Insert(key, value uint64, cb func(err error)) {
	s := c.take()
	s.op, s.key, s.value = nam.OpInsert, key, value
	s.onInsert = cb
	c.post(s)
}

// Delete submits an asynchronous delete of one entry matching (key, value).
func (c *PipelinedClient) Delete(key, value uint64, cb func(found bool, err error)) {
	s := c.take()
	s.op, s.key, s.value = nam.OpDelete, key, value
	s.onDelete = cb
	c.post(s)
}

// Drain blocks until every submitted operation has completed.
func (c *PipelinedClient) Drain() {
	for c.active > 0 {
		c.pumpRound()
	}
}

// Inflight returns the number of operation slots.
func (c *PipelinedClient) Inflight() int { return len(c.slots) }

func (c *PipelinedClient) take() *travSlot {
	for len(c.free) == 0 {
		c.pumpRound()
	}
	idx := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.active++
	return c.slots[idx]
}

func (c *PipelinedClient) post(s *travSlot) {
	if c.log != nil {
		s.start = c.log.Clock.Now()
	}
	s.server = c.part.Server(s.key)
	s.strat = policy.StrategyRPC
	if c.dec != nil {
		s.strat = c.dec.Strategy(s.server)
	}
	if c.feed != nil {
		s.t0 = c.pclock.Now()
	}
	c.nextOrder = append(c.nextOrder, s.idx)
	if s.strat == policy.StrategyOneSided {
		// Nothing to post: the one-sided descent runs when this round is
		// pumped. The slot still occupies its position in the round's
		// delivery order, so results stay in submission order.
		return
	}
	req := nam.Request{Op: nam.OpTraverse, Key: s.key}
	c.ep.PostCall(s.server, req.Encode())
}

// pumpRound flushes the round's doorbell batch, reaps exactly its RPC
// completions, and delivers every slot in posting order. Slots decided
// one-sided execute here, between Poll and the next doorbell — the round
// boundary is an ordering fence (nothing is outstanding), which is why a
// strategy switch between rounds can never reorder or orphan a completion.
func (c *PipelinedClient) pumpRound() {
	c.order, c.nextOrder = c.nextOrder, c.order[:0]
	if len(c.order) == 0 {
		if c.active == 0 {
			return
		}
		panic("hybrid: active operations with no posted calls")
	}
	posted := 0
	for _, idx := range c.order {
		if c.slots[idx].strat != policy.StrategyOneSided {
			posted++
		}
	}
	if posted > 0 {
		c.ep.Flush()
		c.comps = c.ep.Poll(c.comps[:0])
	} else {
		c.comps = c.comps[:0]
	}
	if len(c.comps) != posted {
		panic(fmt.Sprintf("hybrid: %d completions for %d posted calls", len(c.comps), posted))
	}
	ci := 0
	for _, idx := range c.order {
		s := c.slots[idx]
		if s.strat == policy.StrategyOneSided {
			c.deliverOneSided(s)
			continue
		}
		c.deliver(s, c.comps[ci])
		ci++
	}
}

// deliverOneSided runs a slot's one-sided upper-level descent and its leaf
// access. Blocking verbs are safe here for the same reason as the install
// RPC in deliver: delivery happens with no completions outstanding.
func (c *PipelinedClient) deliverOneSided(s *travSlot) {
	var t0 int64
	if c.feed != nil {
		t0 = c.pclock.Now()
	}
	leaf, st, err := c.upper[s.server].FindLeaf(c.env, s.key)
	c.record(st)
	if err == nil && c.feed != nil {
		c.feed.ObserveTraverse(s.server, policy.StrategyOneSided, c.pclock.Now()-t0, st.Depth)
	}
	if err == nil && leaf.IsNull() {
		err = fmt.Errorf("hybrid: traverse returned null leaf")
	}
	if err != nil {
		c.finish(s, nil, false, err)
		return
	}
	c.leafAccess(s, leaf)
}

// deliver consumes one slot's traverse response and runs its leaf access.
func (c *PipelinedClient) deliver(s *travSlot, comp rdma.Completion) {
	leaf, load, err := decodeTraverse(comp)
	c.log.RPCEvent(s.server, nam.OpTraverse, err)
	if err != nil {
		c.finish(s, nil, false, err)
		return
	}
	if c.feed != nil {
		c.feed.ObserveTraverse(s.server, policy.StrategyRPC, c.pclock.Now()-s.t0, 0)
		c.feed.ObserveCPU(s.server, float64(load)/100)
	}
	c.leafAccess(s, leaf)
}

// leafAccess runs the slot's one-sided leaf operation against leaf and
// finishes the slot.
func (c *PipelinedClient) leafAccess(s *travSlot, leaf rdma.RemotePtr) {
	switch s.op {
	case nam.OpLookup:
		vals, st, err := c.leaf.LeafLookup(c.env, leaf, s.key)
		c.record(st)
		c.finish(s, vals, false, err)
	case nam.OpInsert:
		sp, st, err := c.leaf.LeafInsertAt(c.env, leaf, s.key, s.value)
		c.record(st)
		if err == nil && sp != nil {
			// Report the split upstairs; the serial round trip is fine
			// mid-delivery (nothing outstanding, later slots' traverses are
			// buffered until the next doorbell).
			req := nam.Request{Op: nam.OpInstall, End: sp.Sep, Left: sp.Left, Right: sp.Right}
			var raw []byte
			raw, err = c.ep.Call(s.server, req.Encode())
			if err == nil {
				var resp nam.Response
				resp, err = nam.DecodeResponse(raw)
				if err == nil {
					err = resp.AsError()
				}
			}
			c.log.RPCEvent(s.server, nam.OpInstall, err)
		}
		c.finish(s, nil, false, err)
	default:
		ok, st, err := c.leaf.LeafDeleteAt(c.env, leaf, s.key, s.value)
		c.record(st)
		c.finish(s, nil, ok, err)
	}
}

func decodeTraverse(comp rdma.Completion) (rdma.RemotePtr, uint8, error) {
	if comp.Err != nil {
		return rdma.NullPtr, 0, comp.Err
	}
	resp, err := nam.DecodeResponse(comp.Resp)
	if err == nil {
		err = resp.AsError()
	}
	if err != nil {
		return rdma.NullPtr, 0, err
	}
	if resp.Ptr.IsNull() {
		return rdma.NullPtr, 0, fmt.Errorf("hybrid: traverse returned null leaf")
	}
	return resp.Ptr, resp.Load, nil
}

func (c *PipelinedClient) record(st btree.Stats) {
	if c.rec != nil {
		c.rec.RecordIndexOp(st)
	}
}

// finish releases the slot before the callback runs (callbacks may
// resubmit).
func (c *PipelinedClient) finish(s *travSlot, vals []uint64, found bool, err error) {
	if c.log != nil {
		c.log.OpSpan(opKind(s.op), s.key, s.server, c.log.Clock.Now()-s.start, err)
	}
	c.active--
	c.free = append(c.free, s.idx)
	switch s.op {
	case nam.OpLookup:
		cb := s.onLookup
		s.onLookup = nil
		cb(vals, err)
	case nam.OpInsert:
		cb := s.onInsert
		s.onInsert = nil
		cb(err)
	default:
		cb := s.onDelete
		s.onDelete = nil
		cb(found, err)
	}
}

func opKind(op uint8) obs.OpKind {
	switch op {
	case nam.OpLookup:
		return obs.OpLookup
	case nam.OpInsert:
		return obs.OpInsert
	default:
		return obs.OpDelete
	}
}
