package core_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/coarse"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/core/hybrid"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

const (
	testServers = 4
	testRegion  = 64 << 20
	testPage    = 512
)

// cluster bundles one design deployed on a direct fabric.
type cluster struct {
	name    string
	fab     *direct.Fabric
	cat     *nam.Catalog
	mk      func(clientID int) core.Index
	check   func() (int, error) // invariant check, -1 if unsupported
	ordered bool                // Range emits globally sorted results
}

func deployAll(t *testing.T, spec core.BuildSpec, keyspace uint64) []*cluster {
	t.Helper()
	var out []*cluster

	// Coarse-grained, range partitioned.
	{
		fab := direct.New(testServers, testRegion, nam.SuperblockBytes)
		opts := coarse.Options{
			Layout: layout.New(testPage),
			Part:   partition.NewRangeUniform(testServers, keyspace),
		}
		srv := coarse.NewServer(fab, opts)
		cat, err := srv.Build(spec)
		if err != nil {
			t.Fatalf("coarse build: %v", err)
		}
		fab.SetHandler(srv.Handler())
		out = append(out, &cluster{
			name: "coarse-range", fab: fab, cat: cat,
			mk: func(id int) core.Index {
				return coarse.NewClient(fab.Endpoint(), direct.Env{}, cat)
			},
			check:   srv.CheckInvariants,
			ordered: true,
		})
	}
	// Coarse-grained, hash partitioned.
	{
		fab := direct.New(testServers, testRegion, nam.SuperblockBytes)
		opts := coarse.Options{
			Layout: layout.New(testPage),
			Part:   partition.NewHash(testServers),
		}
		srv := coarse.NewServer(fab, opts)
		cat, err := srv.Build(spec)
		if err != nil {
			t.Fatalf("coarse-hash build: %v", err)
		}
		fab.SetHandler(srv.Handler())
		out = append(out, &cluster{
			name: "coarse-hash", fab: fab, cat: cat,
			mk: func(id int) core.Index {
				return coarse.NewClient(fab.Endpoint(), direct.Env{}, cat)
			},
			check:   srv.CheckInvariants,
			ordered: false,
		})
	}
	// Fine-grained.
	{
		fab := direct.New(testServers, testRegion, nam.SuperblockBytes)
		cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: layout.New(testPage)}, spec)
		if err != nil {
			t.Fatalf("fine build: %v", err)
		}
		out = append(out, &cluster{
			name: "fine", fab: fab, cat: cat,
			mk: func(id int) core.Index {
				return fine.NewClient(fab.Endpoint(), direct.Env{}, cat, id)
			},
			check: func() (int, error) {
				c := fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
				return c.Tree().CheckInvariants(rdma.NopEnv{})
			},
			ordered: true,
		})
	}
	// Hybrid.
	{
		fab := direct.New(testServers, testRegion, nam.SuperblockBytes)
		opts := hybrid.Options{
			Layout: layout.New(testPage),
			Part:   partition.NewRangeUniform(testServers, keyspace),
		}
		srv := hybrid.NewServer(fab, opts)
		cat, err := srv.Build(fab.Endpoint(), spec)
		if err != nil {
			t.Fatalf("hybrid build: %v", err)
		}
		fab.SetHandler(srv.Handler())
		out = append(out, &cluster{
			name: "hybrid", fab: fab, cat: cat,
			mk: func(id int) core.Index {
				return hybrid.NewClient(fab.Endpoint(), direct.Env{}, cat, id)
			},
			check:   func() (int, error) { return srv.CheckInvariants(fab.Endpoint()) },
			ordered: true,
		})
	}
	return out
}

func sortedCopy(v []uint64) []uint64 {
	out := append([]uint64(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalVals(a, b []uint64) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAllDesignsAgainstOracle runs an identical randomized operation stream
// on all designs and the reference oracle and compares every result.
func TestAllDesignsAgainstOracle(t *testing.T) {
	const preload = 5000
	const keyspace = 10000
	spec := core.BuildSpec{
		N:         preload,
		At:        func(i int) (uint64, uint64) { return uint64(i * 2), uint64(i) },
		HeadEvery: 6,
	}
	clusters := deployAll(t, spec, keyspace)
	oracle := core.NewReference()
	for i := 0; i < preload; i++ {
		k, v := spec.At(i)
		if err := oracle.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}

	for _, cl := range clusters {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			idx := cl.mk(0)
			rng := rand.New(rand.NewSource(1234))
			mirror := core.NewReference()
			// Mirror starts as a copy of the oracle.
			if err := oracle.Range(0, keyspace*2, func(k, v uint64) bool {
				mirror.Insert(k, v)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			var nextVal uint64 = 1 << 50
			for op := 0; op < 4000; op++ {
				k := uint64(rng.Intn(keyspace))
				switch rng.Intn(10) {
				case 0, 1, 2: // insert
					nextVal++
					if err := idx.Insert(k, nextVal); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					mirror.Insert(k, nextVal)
				case 3: // delete
					vs, _ := mirror.Lookup(k)
					if len(vs) > 0 {
						victim := vs[rng.Intn(len(vs))]
						ok, err := idx.Delete(k, victim)
						if err != nil {
							t.Fatalf("op %d delete: %v", op, err)
						}
						if !ok {
							t.Fatalf("op %d: delete(%d,%d) not found", op, k, victim)
						}
						mirror.Delete(k, victim)
					}
				case 4, 5, 6, 7: // lookup
					got, err := idx.Lookup(k)
					if err != nil {
						t.Fatalf("op %d lookup: %v", op, err)
					}
					want, _ := mirror.Lookup(k)
					if !equalVals(got, want) {
						t.Fatalf("op %d: Lookup(%d) = %v; want %v", op, k, got, want)
					}
				default: // range
					lo := uint64(rng.Intn(keyspace))
					hi := lo + uint64(rng.Intn(200))
					var got [][2]uint64
					if err := idx.Range(lo, hi, func(k, v uint64) bool {
						got = append(got, [2]uint64{k, v})
						return true
					}); err != nil {
						t.Fatalf("op %d range: %v", op, err)
					}
					var want [][2]uint64
					mirror.Range(lo, hi, func(k, v uint64) bool {
						want = append(want, [2]uint64{k, v})
						return true
					})
					if len(got) != len(want) {
						t.Fatalf("op %d: Range(%d,%d) returned %d entries; want %d",
							op, lo, hi, len(got), len(want))
					}
					if !cl.ordered {
						sort.Slice(got, func(i, j int) bool {
							return got[i][0] < got[j][0] || (got[i][0] == got[j][0] && got[i][1] < got[j][1])
						})
						sort.Slice(want, func(i, j int) bool {
							return want[i][0] < want[j][0] || (want[i][0] == want[j][0] && want[i][1] < want[j][1])
						})
					}
					for i := range got {
						if cl.ordered && got[i][0] != want[i][0] {
							t.Fatalf("op %d: range key order diverges at %d: %v vs %v", op, i, got[i], want[i])
						}
					}
				}
			}
			live, err := cl.check()
			if err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if live != mirror.Count() {
				t.Fatalf("live entries %d; oracle has %d", live, mirror.Count())
			}
		})
	}
}

// TestAllDesignsConcurrentClients hammers each design with concurrent
// clients and validates the final entry count and invariants.
func TestAllDesignsConcurrentClients(t *testing.T) {
	const preload = 2000
	const keyspace = 8000
	spec := core.BuildSpec{
		N:         preload,
		At:        func(i int) (uint64, uint64) { return uint64(i * 4), uint64(i) },
		HeadEvery: 5,
	}
	clusters := deployAll(t, spec, keyspace)
	for _, cl := range clusters {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			const clients = 6
			const opsPer = 500
			var insertCount, deleteCount sync.Map
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					idx := cl.mk(c)
					rng := rand.New(rand.NewSource(int64(c) * 77))
					ins, del := 0, 0
					for i := 0; i < opsPer; i++ {
						k := uint64(rng.Intn(keyspace))
						v := uint64(c)<<40 | uint64(i)
						switch rng.Intn(4) {
						case 0, 1:
							if err := idx.Insert(k, v); err != nil {
								t.Errorf("insert: %v", err)
								return
							}
							ins++
							// Delete own insert half the time.
							if rng.Intn(2) == 0 {
								ok, err := idx.Delete(k, v)
								if err != nil {
									t.Errorf("delete: %v", err)
									return
								}
								if !ok {
									t.Errorf("own insert (%d,%d) not found", k, v)
									return
								}
								del++
							}
						case 2:
							if _, err := idx.Lookup(k); err != nil {
								t.Errorf("lookup: %v", err)
								return
							}
						case 3:
							if err := idx.Range(k, k+50, func(uint64, uint64) bool { return true }); err != nil {
								t.Errorf("range: %v", err)
								return
							}
						}
					}
					insertCount.Store(c, ins)
					deleteCount.Store(c, del)
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			expected := preload
			insertCount.Range(func(_, v any) bool { expected += v.(int); return true })
			deleteCount.Range(func(_, v any) bool { expected -= v.(int); return true })
			live, err := cl.check()
			if err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if live != expected {
				t.Fatalf("live = %d; want %d", live, expected)
			}
		})
	}
}

// TestFineGCUnderUse runs the fine-grained global GC between operation
// bursts and checks nothing is lost.
func TestFineGCUnderUse(t *testing.T) {
	fab := direct.New(testServers, testRegion, nam.SuperblockBytes)
	spec := core.BuildSpec{
		N:         3000,
		At:        func(i int) (uint64, uint64) { return uint64(i), uint64(i) },
		HeadEvery: 8,
	}
	cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: layout.New(testPage)}, spec)
	if err != nil {
		t.Fatal(err)
	}
	c := fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
	gc := fine.NewGC(c, 8)
	for round := 0; round < 3; round++ {
		for i := 0; i < 500; i++ {
			k := uint64(round*500 + i)
			if _, err := c.Delete(k, k); err != nil {
				t.Fatal(err)
			}
		}
		removed, err := gc.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if removed != 500 {
			t.Fatalf("round %d: removed %d; want 500", round, removed)
		}
	}
	live, err := c.Tree().CheckInvariants(rdma.NopEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if live != 1500 {
		t.Fatalf("live = %d; want 1500", live)
	}
}

// TestReferenceOracle sanity-checks the oracle itself.
func TestReferenceOracle(t *testing.T) {
	r := core.NewReference()
	r.Insert(5, 50)
	r.Insert(5, 51)
	r.Insert(3, 30)
	vs, _ := r.Lookup(5)
	if len(vs) != 2 {
		t.Fatalf("lookup: %v", vs)
	}
	ok, _ := r.Delete(5, 50)
	if !ok {
		t.Fatal("delete failed")
	}
	ok, _ = r.Delete(5, 50)
	if ok {
		t.Fatal("double delete succeeded")
	}
	var keys []uint64
	r.Range(0, 100, func(k, v uint64) bool { keys = append(keys, k); return true })
	if fmt.Sprint(keys) != "[3 5]" {
		t.Fatalf("range keys: %v", keys)
	}
	if r.Count() != 2 {
		t.Fatalf("count = %d", r.Count())
	}
}

// TestEmptyBuilds verifies every design handles an empty initial load.
func TestEmptyBuilds(t *testing.T) {
	spec := core.BuildSpec{N: 0}
	clusters := deployAll(t, spec, 1000)
	for _, cl := range clusters {
		idx := cl.mk(0)
		if vs, err := idx.Lookup(5); err != nil || len(vs) != 0 {
			t.Fatalf("%s: lookup on empty: %v %v", cl.name, vs, err)
		}
		if err := idx.Insert(5, 50); err != nil {
			t.Fatalf("%s: insert on empty: %v", cl.name, err)
		}
		vs, err := idx.Lookup(5)
		if err != nil || len(vs) != 1 {
			t.Fatalf("%s: lookup after insert: %v %v", cl.name, vs, err)
		}
	}
}
