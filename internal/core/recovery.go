package core

import (
	"errors"
	"fmt"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
)

// RootInvalidator is implemented by clients that cache tree root (or
// traversal) state which must be dropped before a post-fault re-traversal.
type RootInvalidator interface {
	InvalidateRoot()
}

// RecoveryCounters receives operation-recovery events; telemetry.Recorder
// implements it. Implementations must be safe for concurrent use.
type RecoveryCounters interface {
	// CountOpRecovery records one epoch-fenced operation re-traversal.
	CountOpRecovery()
}

// RecoveryEvents receives per-fence recovery events — the flight recorder's
// view of the recovery loop, complementing the aggregate RecoveryCounters.
// obs.Log implements it. A RecoveryEvents belongs to the same single client
// goroutine as the Recovered wrapper holding it.
type RecoveryEvents interface {
	// EpochFence records one epoch fence: the cached root was invalidated
	// and the operation re-traverses.
	EpochFence()
}

// Recovered wraps an index client with operation-level fault recovery: when
// an operation fails with a transient verb error that survived the verb
// layer's bounded retries (or with btree.ErrSpinBudget from a starved page
// lock — locally from the client's own leaf engine, or relayed from an RPC
// handler's tree as nam.ErrRemoteRetry), the wrapper fences a new epoch — it invalidates the client's cached
// root so the next descent re-reads it — and re-runs the operation from the
// root, up to MaxOpAttempts times.
//
// The re-run is exactly-once for inserts under one contract: each logical
// insert carries a (key, value) pair that is not already present in the
// index (values act as idempotence tokens; the chaos harness and the bench
// workloads satisfy this by construction). Before re-running an interrupted
// insert, the wrapper looks the key up and treats a visible (key, value) as
// the interrupted attempt having committed — so an insert whose unlock
// published the entry but whose split bookkeeping failed is acked once, not
// re-applied. (A committed-but-uninstalled separator leaves the B-link tree
// slower, not wrong: descents recover through right-sibling links.)
//
// Lookups are read-only and deletes mark exactly the first live matching
// (key, value), so both re-run safely as-is. A recovered Range restarts the
// scan from lo — the emit callback may see entries again and must be
// idempotent under recovery (collect into a set, as the harnesses do).
//
// rdma.ErrServerLost is permanent by definition and is returned immediately:
// the index lost pages with the server's region, and no re-traversal can
// repair that client-side.
//
// Recovered is bound to a single client goroutine, like the client it wraps.
type Recovered struct {
	idx Index
	// MaxOpAttempts bounds how often one operation is run (first run
	// included).
	MaxOpAttempts int
	counters      RecoveryCounters
	events        RecoveryEvents
}

var _ Index = (*Recovered)(nil)

// Recover wraps idx. counters may be nil.
func Recover(idx Index, maxOpAttempts int, counters RecoveryCounters) *Recovered {
	if maxOpAttempts <= 0 {
		maxOpAttempts = 6
	}
	return &Recovered{idx: idx, MaxOpAttempts: maxOpAttempts, counters: counters}
}

// Unwrap returns the wrapped client (invariant checks, stats).
func (r *Recovered) Unwrap() Index { return r.idx }

// WithEvents installs ev as the per-fence event hook and returns r (chains
// after Recover). ev may be nil.
func (r *Recovered) WithEvents(ev RecoveryEvents) *Recovered {
	r.events = ev
	return r
}

// recoverable reports whether a new epoch and a re-traversal can be expected
// to clear err.
//
// rdma.ErrGroupMoved is the replication failover signal: it is deliberately
// not verb-transient (re-driving the *same* verb against the promoted
// primary is unsound — see the sentinel's doc), but the *operation* is fully
// recoverable: the fence invalidates cached state and the re-run traverses
// from the root under the post-failover routing.
func recoverable(err error) bool {
	if errors.Is(err, rdma.ErrServerLost) {
		return false
	}
	return rdma.IsTransient(err) ||
		errors.Is(err, rdma.ErrGroupMoved) ||
		errors.Is(err, btree.ErrSpinBudget) ||
		errors.Is(err, nam.ErrRemoteRetry)
}

// fence opens a new epoch: the cached descent state of the wrapped client is
// dropped so the retry traverses from the current root.
func (r *Recovered) fence() {
	if inv, ok := r.idx.(RootInvalidator); ok {
		inv.InvalidateRoot()
	}
	if r.counters != nil {
		r.counters.CountOpRecovery()
	}
	if r.events != nil {
		r.events.EpochFence()
	}
}

// Lookup implements Index.
func (r *Recovered) Lookup(key uint64) ([]uint64, error) {
	var vals []uint64
	err := r.do(func() error {
		var oerr error
		vals, oerr = r.idx.Lookup(key)
		return oerr
	})
	return vals, err
}

// Range implements Index.
func (r *Recovered) Range(lo, hi uint64, emit func(k, v uint64) bool) error {
	return r.do(func() error {
		return r.idx.Range(lo, hi, emit)
	})
}

// Insert implements Index.
func (r *Recovered) Insert(key, value uint64) error {
	err := r.idx.Insert(key, value)
	for attempt := 1; recoverable(err) && attempt < r.MaxOpAttempts; attempt++ {
		r.fence()
		// Epoch-fenced presence check: if the interrupted attempt published
		// (key, value), the insert committed — re-running it would create a
		// duplicate. The check must complete before the insert may be
		// re-applied; while it cannot (the fault persists), the attempt is
		// consumed and the operation stays un-acked rather than risking a
		// duplicate.
		vals, lerr := r.idx.Lookup(key)
		if lerr != nil {
			if !recoverable(lerr) {
				return lerr
			}
			continue
		}
		for _, v := range vals {
			if v == value {
				return nil
			}
		}
		err = r.idx.Insert(key, value)
	}
	if recoverable(err) {
		return fmt.Errorf("core: insert(%d) unrecovered after %d attempts: %w", key, r.MaxOpAttempts, err)
	}
	return err
}

// Delete implements Index.
func (r *Recovered) Delete(key, value uint64) (bool, error) {
	var ok bool
	err := r.do(func() error {
		var oerr error
		ok, oerr = r.idx.Delete(key, value)
		return oerr
	})
	return ok, err
}

// do runs an idempotent operation under the recovery loop.
func (r *Recovered) do(op func() error) error {
	err := op()
	for attempt := 1; recoverable(err) && attempt < r.MaxOpAttempts; attempt++ {
		r.fence()
		err = op()
	}
	if recoverable(err) {
		return fmt.Errorf("core: operation unrecovered after %d attempts: %w", r.MaxOpAttempts, err)
	}
	return err
}
