// Package layout defines the on-"wire"/in-region binary format of B-link
// tree pages and implements a codec over raw 64-bit word buffers.
//
// Every page — inner node, leaf node, or head node (the Section 4.3 prefetch
// optimization) — occupies a fixed-size block of a memory server's region
// and has this word layout:
//
//	word 0   version/lock word: bit 0 is the lock bit, bits 1..63 the
//	         version (even word value = unlocked, odd = locked)
//	word 1   meta: count (bits 0..15), isLeaf (bit 16), isHead (bit 17),
//	         level (bits 24..31)
//	word 2   high key: inclusive upper bound of the key range this node is
//	         responsible for (B-link fence key; MaxKey in the rightmost
//	         node of a level)
//	word 3   right sibling RemotePtr
//	word 4   left sibling RemotePtr
//	word 5+  payload
//
// Payloads:
//
//	inner:  count pairs (separatorKey_i, childPtr_i), keys ascending; child
//	        i is responsible for keys in (separatorKey_{i-1}, separatorKey_i],
//	        and separatorKey_{count-1} == high key.
//	leaf:   a delete bitmap of DelWords words (one bit per slot, the
//	        delete-bit of Section 3.2), then count pairs (key_i, value_i),
//	        keys ascending, duplicates allowed (non-unique index).
//	head:   count remote pointers to the leaves following this head node.
//
// All multi-word access goes through copies of pages; concurrency is the
// responsibility of the optimistic-lock-coupling protocols built on top
// (internal/btree for local access, internal/core/fine for one-sided remote
// access).
package layout

import (
	"fmt"

	"github.com/namdb/rdmatree/internal/rdma"
)

// Key is an index key (the paper indexes 64-bit integer keys; values are the
// payload, e.g. primary keys).
type Key = uint64

// MaxKey is the +infinity sentinel used as the high key of the rightmost
// node on each level. It is not a legal key.
const MaxKey Key = ^uint64(0)

const (
	wordVersion = 0
	wordMeta    = 1
	wordHighKey = 2
	wordRight   = 3
	wordLeft    = 4
	// HeaderWords is the number of header words before the payload.
	HeaderWords = 5
)

const (
	metaCountMask  = 0xffff
	metaLeafBit    = 1 << 16
	metaHeadBit    = 1 << 17
	metaLevelShift = 24
	metaLevelMask  = 0xff
)

// LockBit is bit 0 of the version word.
const LockBit uint64 = 1

// IsLocked reports whether a version word has the lock bit set.
func IsLocked(v uint64) bool { return v&LockBit != 0 }

// BufVersion returns the version/lock word of a raw page buffer without
// requiring a full Layout (validation paths peek at it before a copy is
// known to be consistent). It is the only sanctioned way to read a header
// word from a raw buffer outside this package — rdmavet's layoutwords
// analyzer rejects direct constant indexing so a header reordering cannot
// silently desynchronize call sites.
func BufVersion(w []uint64) uint64 { return w[wordVersion] }

// SetBufVersion stores the version/lock word of a raw page buffer — the
// write-side counterpart of BufVersion, used by the replication mirror path
// to stamp a post-image with its published version before pushing it to
// backups. Same sanctioning rationale as BufVersion.
func SetBufVersion(w []uint64, v uint64) { w[wordVersion] = v }

// WithLock returns the version word with the lock bit set.
func WithLock(v uint64) uint64 { return v | LockBit }

// Layout captures the derived capacities of a page format for a given page
// size.
type Layout struct {
	// PageBytes is the page size P (Table 1); pages are allocated in blocks
	// of exactly this many bytes.
	PageBytes int
	// Words is PageBytes/8.
	Words int
	// InnerCap is the maximum number of (separator, child) pairs of an
	// inner node — the paper's fanout M.
	InnerCap int
	// LeafCap is the maximum number of (key, value) pairs of a leaf.
	LeafCap int
	// DelWords is the size of the leaf delete bitmap in words.
	DelWords int
	// HeadCap is the number of leaf pointers a head node holds.
	HeadCap int
}

// New computes the layout for the given page size in bytes. Page sizes must
// be multiples of 8 and large enough for at least two entries per node.
func New(pageBytes int) Layout {
	if pageBytes%8 != 0 {
		panic(fmt.Sprintf("layout: page size %d not a multiple of 8", pageBytes))
	}
	w := pageBytes / 8
	l := Layout{PageBytes: pageBytes, Words: w}
	l.InnerCap = (w - HeaderWords) / 2
	// Largest c such that HeaderWords + ceil(c/64) + 2c <= w.
	for c := (w - HeaderWords) / 2; c > 0; c-- {
		if HeaderWords+(c+63)/64+2*c <= w {
			l.LeafCap = c
			break
		}
	}
	l.DelWords = (l.LeafCap + 63) / 64
	l.HeadCap = w - HeaderWords
	if l.InnerCap < 2 || l.LeafCap < 2 {
		panic(fmt.Sprintf("layout: page size %d too small", pageBytes))
	}
	if l.InnerCap > metaCountMask || l.LeafCap > metaCountMask {
		panic(fmt.Sprintf("layout: page size %d exceeds 16-bit count field", pageBytes))
	}
	return l
}

// NewNode returns a zeroed page buffer wrapped as a Node.
func (l Layout) NewNode() Node { return Node{L: l, W: make([]uint64, l.Words)} }

// Wrap views an existing buffer (len >= l.Words) as a Node.
func (l Layout) Wrap(w []uint64) Node {
	if len(w) < l.Words {
		panic(fmt.Sprintf("layout: buffer of %d words too small for page of %d", len(w), l.Words))
	}
	return Node{L: l, W: w[:l.Words]}
}

// Node is a decoded view over one page buffer.
type Node struct {
	L Layout
	W []uint64
}

// Reset zeroes the page.
func (n Node) Reset() {
	for i := range n.W {
		n.W[i] = 0
	}
}

// Version returns the raw version/lock word.
func (n Node) Version() uint64 { return n.W[wordVersion] }

// SetVersion stores the raw version/lock word.
func (n Node) SetVersion(v uint64) { n.W[wordVersion] = v }

// Count returns the number of entries (pairs or head pointers).
func (n Node) Count() int { return int(n.W[wordMeta] & metaCountMask) }

// SetCount stores the entry count.
func (n Node) SetCount(c int) {
	n.W[wordMeta] = n.W[wordMeta]&^uint64(metaCountMask) | uint64(c)
}

// IsLeaf reports whether the page is a leaf.
func (n Node) IsLeaf() bool { return n.W[wordMeta]&metaLeafBit != 0 }

// IsHead reports whether the page is a head node (Section 4.3).
func (n Node) IsHead() bool { return n.W[wordMeta]&metaHeadBit != 0 }

// Level returns the node's level: 0 for leaves, increasing towards the root.
func (n Node) Level() int { return int(n.W[wordMeta] >> metaLevelShift & metaLevelMask) }

// InitLeaf initializes the page as an empty leaf.
func (n Node) InitLeaf() {
	n.Reset()
	n.W[wordMeta] = metaLeafBit
	n.SetHighKey(MaxKey)
}

// InitInner initializes the page as an empty inner node at the given level.
func (n Node) InitInner(level int) {
	if level < 1 || level > metaLevelMask {
		panic(fmt.Sprintf("layout: bad inner level %d", level))
	}
	n.Reset()
	n.W[wordMeta] = uint64(level) << metaLevelShift
	n.SetHighKey(MaxKey)
}

// InitHead initializes the page as an empty head node.
func (n Node) InitHead() {
	n.Reset()
	n.W[wordMeta] = metaHeadBit
	n.SetHighKey(MaxKey)
}

// HighKey returns the node's inclusive upper fence key.
func (n Node) HighKey() Key { return n.W[wordHighKey] }

// SetHighKey stores the fence key.
func (n Node) SetHighKey(k Key) { n.W[wordHighKey] = k }

// Right returns the right sibling pointer.
func (n Node) Right() rdma.RemotePtr { return rdma.RemotePtr(n.W[wordRight]) }

// SetRight stores the right sibling pointer.
func (n Node) SetRight(p rdma.RemotePtr) { n.W[wordRight] = uint64(p) }

// Left returns the left sibling pointer.
func (n Node) Left() rdma.RemotePtr { return rdma.RemotePtr(n.W[wordLeft]) }

// SetLeft stores the left sibling pointer.
func (n Node) SetLeft(p rdma.RemotePtr) { n.W[wordLeft] = uint64(p) }

// ---------- Leaf accessors ----------

func (n Node) leafEntry(i int) int { return HeaderWords + n.L.DelWords + 2*i }

// LeafKey returns the key of leaf entry i.
func (n Node) LeafKey(i int) Key { return n.W[n.leafEntry(i)] }

// LeafValue returns the value of leaf entry i.
func (n Node) LeafValue(i int) uint64 { return n.W[n.leafEntry(i)+1] }

// SetLeafEntry stores entry i.
func (n Node) SetLeafEntry(i int, k Key, v uint64) {
	e := n.leafEntry(i)
	n.W[e] = k
	n.W[e+1] = v
}

// LeafDeleted reports whether entry i carries the delete bit.
func (n Node) LeafDeleted(i int) bool {
	return n.W[HeaderWords+i/64]&(1<<(uint(i)%64)) != 0
}

// SetLeafDeleted sets or clears the delete bit of entry i.
func (n Node) SetLeafDeleted(i int, del bool) {
	w := HeaderWords + i/64
	bit := uint64(1) << (uint(i) % 64)
	if del {
		n.W[w] |= bit
	} else {
		n.W[w] &^= bit
	}
}

// LeafLowerBound returns the first index i with LeafKey(i) >= k, or Count()
// if none.
func (n Node) LeafLowerBound(k Key) int {
	lo, hi := 0, n.Count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.LeafKey(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LeafInsert inserts (k, v) keeping keys sorted. Duplicate keys are allowed;
// the new entry is placed after existing equal keys. It returns false if the
// leaf is full.
func (n Node) LeafInsert(k Key, v uint64) bool {
	c := n.Count()
	if c >= n.L.LeafCap {
		return false
	}
	// Insert after equal keys: first index with key > k.
	i := n.LeafLowerBound(k + 1)
	if k == MaxKey {
		i = c
	}
	// Shift entries and delete bits up by one.
	for j := c; j > i; j-- {
		e := n.leafEntry(j)
		n.W[e] = n.W[e-2]
		n.W[e+1] = n.W[e-1]
		n.SetLeafDeleted(j, n.LeafDeleted(j-1))
	}
	n.SetLeafEntry(i, k, v)
	n.SetLeafDeleted(i, false)
	n.SetCount(c + 1)
	return true
}

// LeafRemoveAt physically removes entry i (used by compaction/GC).
func (n Node) LeafRemoveAt(i int) {
	c := n.Count()
	for j := i; j < c-1; j++ {
		e := n.leafEntry(j)
		n.W[e] = n.W[e+2]
		n.W[e+1] = n.W[e+3]
		n.SetLeafDeleted(j, n.LeafDeleted(j+1))
	}
	n.SetLeafDeleted(c-1, false)
	n.SetCount(c - 1)
}

// LeafCompact physically removes all entries with the delete bit set and
// returns how many were removed.
func (n Node) LeafCompact() int {
	c := n.Count()
	out := 0
	for i := 0; i < c; i++ {
		if n.LeafDeleted(i) {
			continue
		}
		if out != i {
			k, v := n.LeafKey(i), n.LeafValue(i)
			n.SetLeafEntry(out, k, v)
		}
		out++
	}
	for i := out; i < c; i++ {
		n.SetLeafDeleted(i, false)
	}
	for i := 0; i < out; i++ {
		n.SetLeafDeleted(i, false)
	}
	n.SetCount(out)
	return c - out
}

// LeafAppend appends (k, v) without searching; the caller guarantees
// ascending key order (bulk build). Returns false if full.
func (n Node) LeafAppend(k Key, v uint64) bool {
	c := n.Count()
	if c >= n.L.LeafCap {
		return false
	}
	n.SetLeafEntry(c, k, v)
	n.SetCount(c + 1)
	return true
}

// LeafSplit moves the upper half of n's entries into right (which must be an
// initialized empty leaf) and returns the separator key: the new high key of
// n. Sibling pointers are the caller's responsibility.
func (n Node) LeafSplit(right Node) Key {
	c := n.Count()
	h := c / 2
	for i := h; i < c; i++ {
		right.SetLeafEntry(i-h, n.LeafKey(i), n.LeafValue(i))
		right.SetLeafDeleted(i-h, n.LeafDeleted(i))
		n.SetLeafDeleted(i, false)
	}
	right.SetCount(c - h)
	right.SetHighKey(n.HighKey())
	n.SetCount(h)
	sep := n.LeafKey(h - 1)
	n.SetHighKey(sep)
	return sep
}

// ---------- Inner accessors ----------

func (n Node) innerEntry(i int) int { return HeaderWords + 2*i }

// InnerKey returns separator key i.
func (n Node) InnerKey(i int) Key { return n.W[n.innerEntry(i)] }

// InnerChild returns child pointer i.
func (n Node) InnerChild(i int) rdma.RemotePtr { return rdma.RemotePtr(n.W[n.innerEntry(i)+1]) }

// SetInnerEntry stores pair i.
func (n Node) SetInnerEntry(i int, k Key, child rdma.RemotePtr) {
	e := n.innerEntry(i)
	n.W[e] = k
	n.W[e+1] = uint64(child)
}

// InnerRouteIndex returns the first index i with InnerKey(i) >= k, or
// Count() if k is beyond the high key (the caller must then follow the right
// sibling link).
func (n Node) InnerRouteIndex(k Key) int {
	lo, hi := 0, n.Count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.InnerKey(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// InnerRoute returns the child responsible for k, or (NullPtr, false) if k
// lies beyond this node's high key and the search must follow the right
// sibling link (the B-link "link" move).
func (n Node) InnerRoute(k Key) (rdma.RemotePtr, bool) {
	i := n.InnerRouteIndex(k)
	if i >= n.Count() {
		return rdma.NullPtr, false
	}
	return n.InnerChild(i), true
}

// InnerAppend appends a (separator, child) pair without searching (bulk
// build; ascending separators). Returns false if full.
func (n Node) InnerAppend(k Key, child rdma.RemotePtr) bool {
	c := n.Count()
	if c >= n.L.InnerCap {
		return false
	}
	n.SetInnerEntry(c, k, child)
	n.SetCount(c + 1)
	return true
}

// InnerInstallSplit installs a child split into this inner node: the child
// that covered the range containing sep was split in place at sep, with the
// upper part moved to the new node right. The range of the pair at the route
// index is cut at sep — a pair (sep, existing child) is inserted and the
// displaced pair's child is repointed at right. Using the *existing* child
// pointer (rather than one remembered by the caller) keeps installs correct
// when the same node split repeatedly and the installs arrive out of order.
// Returns false if the node is full (the caller must split it and retry).
func (n Node) InnerInstallSplit(sep Key, right rdma.RemotePtr) bool {
	c := n.Count()
	if c >= n.L.InnerCap {
		return false
	}
	i := n.InnerRouteIndex(sep)
	if i >= c {
		panic("layout: InnerInstallSplit beyond high key")
	}
	n.InnerCutAt(i, sep, right)
	return true
}

// InnerCutAt cuts the range of pair i at sep: a pair (sep, child_i) is
// inserted at i and the displaced pair (now i+1) is repointed at right. The
// caller must have verified i is the correct pair and that the node has
// space.
func (n Node) InnerCutAt(i int, sep Key, right rdma.RemotePtr) {
	c := n.Count()
	if c >= n.L.InnerCap {
		panic("layout: InnerCutAt on full node")
	}
	if i >= c {
		panic("layout: InnerCutAt index out of range")
	}
	cur := n.InnerChild(i)
	for j := c; j > i; j-- {
		e := n.innerEntry(j)
		n.W[e] = n.W[e-2]
		n.W[e+1] = n.W[e-1]
	}
	n.SetInnerEntry(i, sep, cur)
	// The displaced pair (now at i+1) keeps its old separator but must point
	// at the new right node.
	e := n.innerEntry(i + 1)
	n.W[e+1] = uint64(right)
	n.SetCount(c + 1)
}

// InnerRemovePair removes pair i (used when the garbage collector merges a
// child away). Removing the last pair lowers the node's effective coverage;
// searches for the vacated range recover through the right-sibling chase.
func (n Node) InnerRemovePair(i int) {
	c := n.Count()
	if i < 0 || i >= c {
		panic("layout: InnerRemovePair index out of range")
	}
	for j := i; j < c-1; j++ {
		e := n.innerEntry(j)
		n.W[e] = n.W[e+2]
		n.W[e+1] = n.W[e+3]
	}
	n.SetCount(c - 1)
}

// InnerSplit moves the upper half of n's pairs into right (an initialized
// empty inner node of the same level) and returns the separator: the new
// high key of n. Sibling pointers are the caller's responsibility.
func (n Node) InnerSplit(right Node) Key {
	c := n.Count()
	h := c / 2
	for i := h; i < c; i++ {
		right.SetInnerEntry(i-h, n.InnerKey(i), n.InnerChild(i))
	}
	right.SetCount(c - h)
	right.SetHighKey(n.HighKey())
	n.SetCount(h)
	sep := n.InnerKey(h - 1)
	n.SetHighKey(sep)
	return sep
}

// ---------- Head node accessors ----------

// HeadPtr returns leaf pointer i of a head node.
func (n Node) HeadPtr(i int) rdma.RemotePtr { return rdma.RemotePtr(n.W[HeaderWords+i]) }

// SetHeadPtr stores leaf pointer i.
func (n Node) SetHeadPtr(i int, p rdma.RemotePtr) { n.W[HeaderWords+i] = uint64(p) }

// HeadAppend appends a leaf pointer; returns false if full.
func (n Node) HeadAppend(p rdma.RemotePtr) bool {
	c := n.Count()
	if c >= n.L.HeadCap {
		return false
	}
	n.SetHeadPtr(c, p)
	n.SetCount(c + 1)
	return true
}
