package layout

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/namdb/rdmatree/internal/rdma"
)

func TestLayoutCapacities(t *testing.T) {
	l := New(1024)
	if l.Words != 128 {
		t.Fatalf("Words = %d", l.Words)
	}
	if l.InnerCap != (128-HeaderWords)/2 {
		t.Fatalf("InnerCap = %d", l.InnerCap)
	}
	// Leaf capacity must satisfy header + bitmap + 2*cap <= words, maximally.
	if HeaderWords+l.DelWords+2*l.LeafCap > l.Words {
		t.Fatalf("leaf layout overflows page: cap=%d del=%d", l.LeafCap, l.DelWords)
	}
	if HeaderWords+(l.LeafCap+1+63)/64+2*(l.LeafCap+1) <= l.Words {
		t.Fatalf("leaf capacity %d not maximal", l.LeafCap)
	}
	if l.HeadCap != l.Words-HeaderWords {
		t.Fatalf("HeadCap = %d", l.HeadCap)
	}
}

func TestLayoutCapacitiesProperty(t *testing.T) {
	f := func(raw uint16) bool {
		pageBytes := (int(raw)%4096 + 256) &^ 7
		l := New(pageBytes)
		fits := HeaderWords+l.DelWords+2*l.LeafCap <= l.Words
		innerFits := HeaderWords+2*l.InnerCap <= l.Words
		return fits && innerFits && l.LeafCap >= 2 && l.InnerCap >= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVersionLockWord(t *testing.T) {
	if IsLocked(0) || IsLocked(4) {
		t.Fatal("even versions must be unlocked")
	}
	if !IsLocked(WithLock(4)) {
		t.Fatal("WithLock did not set the lock bit")
	}
	n := New(512).NewNode()
	n.SetVersion(42)
	if n.Version() != 42 {
		t.Fatalf("Version = %d", n.Version())
	}
}

func TestNodeHeaders(t *testing.T) {
	l := New(512)
	n := l.NewNode()
	n.InitInner(3)
	if n.IsLeaf() || n.IsHead() {
		t.Fatal("inner node misclassified")
	}
	if n.Level() != 3 {
		t.Fatalf("Level = %d", n.Level())
	}
	if n.HighKey() != MaxKey {
		t.Fatalf("fresh high key = %d", n.HighKey())
	}
	r := rdma.MakePtr(2, 512)
	le := rdma.MakePtr(1, 1024)
	n.SetRight(r)
	n.SetLeft(le)
	if n.Right() != r || n.Left() != le {
		t.Fatal("sibling pointers corrupted")
	}

	n.InitLeaf()
	if !n.IsLeaf() || n.IsHead() || n.Level() != 0 {
		t.Fatal("leaf misclassified")
	}
	if !n.Right().IsNull() {
		t.Fatal("InitLeaf did not reset siblings")
	}

	n.InitHead()
	if !n.IsHead() || n.IsLeaf() {
		t.Fatal("head misclassified")
	}
}

func TestLeafInsertSorted(t *testing.T) {
	l := New(1024)
	n := l.NewNode()
	n.InitLeaf()
	keys := []Key{5, 1, 9, 3, 7, 2, 8}
	for i, k := range keys {
		if !n.LeafInsert(k, uint64(100+i)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if n.Count() != len(keys) {
		t.Fatalf("Count = %d", n.Count())
	}
	for i := 1; i < n.Count(); i++ {
		if n.LeafKey(i-1) > n.LeafKey(i) {
			t.Fatalf("keys unsorted at %d", i)
		}
	}
	// Values travel with keys.
	i := n.LeafLowerBound(9)
	if n.LeafKey(i) != 9 || n.LeafValue(i) != 102 {
		t.Fatalf("entry for 9: key=%d value=%d", n.LeafKey(i), n.LeafValue(i))
	}
}

func TestLeafInsertDuplicatesAfterEqual(t *testing.T) {
	l := New(1024)
	n := l.NewNode()
	n.InitLeaf()
	n.LeafInsert(5, 1)
	n.LeafInsert(5, 2)
	n.LeafInsert(5, 3)
	if n.Count() != 3 {
		t.Fatalf("Count = %d", n.Count())
	}
	// Non-unique index: all three present, insertion order preserved.
	for i := 0; i < 3; i++ {
		if n.LeafKey(i) != 5 || n.LeafValue(i) != uint64(i+1) {
			t.Fatalf("entry %d = (%d,%d)", i, n.LeafKey(i), n.LeafValue(i))
		}
	}
}

func TestLeafInsertFull(t *testing.T) {
	l := New(256)
	n := l.NewNode()
	n.InitLeaf()
	for i := 0; i < l.LeafCap; i++ {
		if !n.LeafInsert(Key(i), uint64(i)) {
			t.Fatalf("insert %d failed before capacity %d", i, l.LeafCap)
		}
	}
	if n.LeafInsert(999, 999) {
		t.Fatal("insert into full leaf succeeded")
	}
}

func TestLeafDeleteBits(t *testing.T) {
	l := New(1024)
	n := l.NewNode()
	n.InitLeaf()
	for i := 0; i < 10; i++ {
		n.LeafInsert(Key(i), uint64(i))
	}
	n.SetLeafDeleted(3, true)
	n.SetLeafDeleted(7, true)
	if !n.LeafDeleted(3) || !n.LeafDeleted(7) || n.LeafDeleted(4) {
		t.Fatal("delete bits wrong")
	}
	// Insert shifting moves delete bits with their entries.
	n.LeafInsert(2, 99) // shifts entries at index >= 3 up by one
	if n.LeafDeleted(3) {
		t.Fatal("new slot inherited a stale delete bit")
	}
	if !n.LeafDeleted(4) || !n.LeafDeleted(8) {
		t.Fatal("delete bits did not shift with entries")
	}
	removed := n.LeafCompact()
	if removed != 2 {
		t.Fatalf("compact removed %d; want 2", removed)
	}
	if n.Count() != 9 {
		t.Fatalf("Count after compact = %d", n.Count())
	}
	for i := 0; i < n.Count(); i++ {
		if n.LeafDeleted(i) {
			t.Fatalf("entry %d still deleted after compact", i)
		}
		if n.LeafKey(i) == 3 || n.LeafKey(i) == 7 {
			t.Fatalf("deleted key %d survived compact", n.LeafKey(i))
		}
	}
}

func TestLeafRemoveAt(t *testing.T) {
	l := New(1024)
	n := l.NewNode()
	n.InitLeaf()
	for i := 0; i < 5; i++ {
		n.LeafInsert(Key(i*10), uint64(i))
	}
	n.LeafRemoveAt(2)
	if n.Count() != 4 {
		t.Fatalf("Count = %d", n.Count())
	}
	want := []Key{0, 10, 30, 40}
	for i, k := range want {
		if n.LeafKey(i) != k {
			t.Fatalf("keys after remove: got %d at %d; want %d", n.LeafKey(i), i, k)
		}
	}
}

func TestLeafSplit(t *testing.T) {
	l := New(512)
	left := l.NewNode()
	left.InitLeaf()
	for i := 0; i < l.LeafCap; i++ {
		left.LeafInsert(Key(i*2), uint64(i))
	}
	left.SetHighKey(1000)
	right := l.NewNode()
	right.InitLeaf()
	sep := left.LeafSplit(right)

	if left.Count()+right.Count() != l.LeafCap {
		t.Fatalf("entries lost: %d + %d != %d", left.Count(), right.Count(), l.LeafCap)
	}
	if left.HighKey() != sep {
		t.Fatalf("left high key %d != sep %d", left.HighKey(), sep)
	}
	if right.HighKey() != 1000 {
		t.Fatalf("right high key %d; want 1000", right.HighKey())
	}
	if left.LeafKey(left.Count()-1) != sep {
		t.Fatal("sep is not the max key of left")
	}
	if right.LeafKey(0) <= sep {
		t.Fatal("right's min key <= sep")
	}
	// Order preserved across the split.
	prev := Key(0)
	for i := 0; i < left.Count(); i++ {
		if k := left.LeafKey(i); k < prev {
			t.Fatal("left unsorted")
		} else {
			prev = k
		}
	}
	for i := 0; i < right.Count(); i++ {
		if k := right.LeafKey(i); k < prev {
			t.Fatal("right unsorted or overlapping left")
		} else {
			prev = k
		}
	}
}

func TestLeafInsertProperty(t *testing.T) {
	l := New(1024)
	f := func(keys []uint16) bool {
		n := l.NewNode()
		n.InitLeaf()
		if len(keys) > l.LeafCap {
			keys = keys[:l.LeafCap]
		}
		for i, k := range keys {
			if !n.LeafInsert(Key(k), uint64(i)) {
				return false
			}
		}
		if n.Count() != len(keys) {
			return false
		}
		sorted := append([]uint16(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if n.LeafKey(i) != Key(sorted[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInnerRoute(t *testing.T) {
	l := New(512)
	n := l.NewNode()
	n.InitInner(1)
	// Children: c0 covers <=10, c1 covers (10,20], c2 covers (20,30].
	c := []rdma.RemotePtr{rdma.MakePtr(0, 8), rdma.MakePtr(1, 8), rdma.MakePtr(2, 8)}
	n.InnerAppend(10, c[0])
	n.InnerAppend(20, c[1])
	n.InnerAppend(30, c[2])
	n.SetHighKey(30)

	cases := []struct {
		k    Key
		want rdma.RemotePtr
		ok   bool
	}{
		{0, c[0], true}, {10, c[0], true}, {11, c[1], true},
		{20, c[1], true}, {21, c[2], true}, {30, c[2], true},
		{31, rdma.NullPtr, false},
	}
	for _, tc := range cases {
		got, ok := n.InnerRoute(tc.k)
		if got != tc.want || ok != tc.ok {
			t.Fatalf("Route(%d) = (%v,%v); want (%v,%v)", tc.k, got, ok, tc.want, tc.ok)
		}
	}
}

func TestInnerInstallSplit(t *testing.T) {
	l := New(512)
	n := l.NewNode()
	n.InitInner(1)
	c0 := rdma.MakePtr(0, 8)
	c1 := rdma.MakePtr(1, 8)
	n.InnerAppend(10, c0)
	n.InnerAppend(MaxKey, c1)
	// c1 (covering (10, MaxKey]) split at 50: left stays c1, right is new.
	right := rdma.MakePtr(2, 8)
	if !n.InnerInstallSplit(50, right) {
		t.Fatal("install failed")
	}
	if n.Count() != 3 {
		t.Fatalf("Count = %d", n.Count())
	}
	// Now: (10,c0) (50,c1) (MaxKey,right).
	if got, _ := n.InnerRoute(30); got != c1 {
		t.Fatalf("Route(30) = %v; want c1", got)
	}
	if got, _ := n.InnerRoute(50); got != c1 {
		t.Fatalf("Route(50) = %v; want c1", got)
	}
	if got, _ := n.InnerRoute(51); got != right {
		t.Fatalf("Route(51) = %v; want right", got)
	}
	if got, _ := n.InnerRoute(5); got != c0 {
		t.Fatalf("Route(5) = %v; want c0", got)
	}
}

func TestInnerInstallSplitFull(t *testing.T) {
	l := New(256)
	n := l.NewNode()
	n.InitInner(1)
	for i := 0; i < l.InnerCap; i++ {
		n.InnerAppend(Key((i+1)*10), rdma.MakePtr(0, uint64(i+1)*8))
	}
	if n.InnerInstallSplit(5, rdma.MakePtr(1, 8)) {
		t.Fatal("install into full node succeeded")
	}
}

func TestInnerSplit(t *testing.T) {
	l := New(512)
	left := l.NewNode()
	left.InitInner(2)
	for i := 0; i < l.InnerCap; i++ {
		left.InnerAppend(Key((i+1)*10), rdma.MakePtr(0, uint64(i+1)*8))
	}
	oldHigh := Key(l.InnerCap * 10)
	left.SetHighKey(oldHigh)
	right := l.NewNode()
	right.InitInner(2)
	sep := left.InnerSplit(right)
	if left.Count()+right.Count() != l.InnerCap {
		t.Fatal("pairs lost in split")
	}
	if left.HighKey() != sep || left.InnerKey(left.Count()-1) != sep {
		t.Fatal("left fence wrong")
	}
	if right.HighKey() != oldHigh {
		t.Fatal("right fence wrong")
	}
	if right.Level() != 2 {
		t.Fatalf("right level = %d", right.Level())
	}
}

func TestHeadNode(t *testing.T) {
	l := New(256)
	n := l.NewNode()
	n.InitHead()
	var ptrs []rdma.RemotePtr
	for i := 0; i < l.HeadCap; i++ {
		p := rdma.MakePtr(i%4, uint64(i+1)*8)
		ptrs = append(ptrs, p)
		if !n.HeadAppend(p) {
			t.Fatalf("append %d failed", i)
		}
	}
	if n.HeadAppend(rdma.MakePtr(0, 8)) {
		t.Fatal("append into full head succeeded")
	}
	for i, p := range ptrs {
		if n.HeadPtr(i) != p {
			t.Fatalf("HeadPtr(%d) = %v; want %v", i, n.HeadPtr(i), p)
		}
	}
}

func TestWrapChecksSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(512).Wrap(make([]uint64, 10))
}

func TestLeafSplitRandomizedInvariant(t *testing.T) {
	l := New(1024)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := l.NewNode()
		n.InitLeaf()
		// Distinct keys: duplicates may legally span a split (non-unique
		// index), which is covered by the sibling-chase logic, not here.
		perm := rng.Perm(1 << 12)
		var keys []Key
		for i := 0; i < l.LeafCap; i++ {
			k := Key(perm[i])
			keys = append(keys, k)
			n.LeafInsert(k, uint64(i))
		}
		n.SetHighKey(MaxKey)
		right := l.NewNode()
		right.InitLeaf()
		sep := n.LeafSplit(right)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		idx := 0
		for i := 0; i < n.Count(); i++ {
			if n.LeafKey(i) != keys[idx] {
				t.Fatal("left keys diverge from sorted input")
			}
			if n.LeafKey(i) > sep {
				t.Fatal("left contains key > sep")
			}
			idx++
		}
		for i := 0; i < right.Count(); i++ {
			if right.LeafKey(i) != keys[idx] {
				t.Fatal("right keys diverge from sorted input")
			}
			if right.LeafKey(i) <= sep {
				t.Fatal("right contains key <= sep")
			}
			idx++
		}
	}
}
