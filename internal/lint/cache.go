package lint

// Package-result cache for the rdmavet driver. A package's suite result is a
// pure function of (a) the suite — analyzer set and the lint tool's own
// sources — and (b) the package's files plus every module-internal package it
// transitively imports (analyzers resolve types across the module, e.g. the
// rdma.Endpoint interface, so a dependency edit can change a dependent's
// diagnostics). Both are captured by content hashing: no mtimes, no
// invalidation protocol, and a hit skips the package's type-check entirely —
// which is where essentially all of a lint run's wall-clock goes.
//
// Misses and IO failures degrade to analyzing normally; the cache is never
// load-bearing for correctness.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// cacheVersion invalidates every entry when the cache's own format or keying
// scheme changes.
const cacheVersion = "rdmavet-cache-v1"

// Cache is a directory of per-package suite results.
type Cache struct {
	dir         string
	fingerprint string
	fileHashes  map[string]string // abs file path -> content hash (memoized)
}

// NewCache returns a cache rooted at dir, keyed under the given suite
// fingerprint (see SuiteFingerprint). The directory is created on first Put.
func NewCache(dir, fingerprint string) *Cache {
	return &Cache{dir: dir, fingerprint: fingerprint, fileHashes: make(map[string]string)}
}

// SuiteFingerprint hashes everything besides the analyzed package that can
// change a result: the Go toolchain, the analyzer names and docs, and the
// full source of the lint tool packages themselves (module-relative paths,
// e.g. "internal/lint"). Bumping any analyzer's logic invalidates the whole
// cache — coarse, but the tool is small and correctness is cheap here.
func SuiteFingerprint(prog *Program, analyzers []*Analyzer, toolPkgs []string) string {
	h := sha256.New()
	fmt.Fprintln(h, cacheVersion)
	fmt.Fprintln(h, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s: %s\n", a.Name, a.Doc)
	}
	for _, rel := range toolPkgs {
		path := rel
		if !strings.HasPrefix(path, prog.ModulePath) {
			path = prog.ModulePath + "/" + rel
		}
		meta, ok := prog.metas[path]
		if !ok {
			fmt.Fprintf(h, "missing %s\n", path)
			continue
		}
		files := append([]string(nil), meta.GoFiles...)
		sort.Strings(files)
		for _, f := range files {
			data, err := os.ReadFile(filepath.Join(meta.Dir, f))
			if err != nil {
				fmt.Fprintf(h, "unreadable %s\n", f)
				continue
			}
			sum := sha256.Sum256(data)
			fmt.Fprintf(h, "tool %s %s\n", f, hex.EncodeToString(sum[:]))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fileHash returns (memoized) the content hash of one file.
func (c *Cache) fileHash(path string) (string, bool) {
	if h, ok := c.fileHashes[path]; ok {
		return h, h != ""
	}
	data, err := os.ReadFile(path)
	if err != nil {
		c.fileHashes[path] = ""
		return "", false
	}
	sum := sha256.Sum256(data)
	h := hex.EncodeToString(sum[:])
	c.fileHashes[path] = h
	return h, true
}

// key computes the cache key of one package: the suite fingerprint plus the
// content hashes of every file of the package and of its module-internal
// transitive imports. ok is false when the package (or a dependency) cannot
// be resolved — the caller then analyzes without the cache.
func (c *Cache) key(prog *Program, path string) (string, bool) {
	internal := func(p string) bool {
		return p == prog.ModulePath || strings.HasPrefix(p, prog.ModulePath+"/")
	}
	visited := map[string]bool{}
	stack := []string{path}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[p] {
			continue
		}
		visited[p] = true
		meta, ok := prog.metas[p]
		if !ok || meta.Error != nil {
			return "", false
		}
		for _, imp := range meta.Imports {
			if internal(imp) && !visited[imp] {
				stack = append(stack, imp)
			}
		}
	}
	closure := make([]string, 0, len(visited))
	for p := range visited {
		closure = append(closure, p)
	}
	sort.Strings(closure)

	h := sha256.New()
	fmt.Fprintln(h, c.fingerprint)
	fmt.Fprintln(h, path)
	for _, p := range closure {
		meta := prog.metas[p]
		files := append([]string(nil), meta.GoFiles...)
		sort.Strings(files)
		for _, f := range files {
			fh, ok := c.fileHash(filepath.Join(meta.Dir, f))
			if !ok {
				return "", false
			}
			fmt.Fprintf(h, "%s/%s %s\n", p, f, fh)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// Get returns the cached suite result of one package, if present.
func (c *Cache) Get(prog *Program, path string) (*SuiteResult, bool) {
	k, ok := c.key(prog, path)
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, k+".json"))
	if err != nil {
		return nil, false
	}
	var res SuiteResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// Put stores one package's suite result. Best-effort: IO failures only cost
// the next run a re-analysis.
func (c *Cache) Put(prog *Program, path string, res *SuiteResult) {
	k, ok := c.key(prog, path)
	if !ok {
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp := filepath.Join(c.dir, k+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(c.dir, k+".json"))
}
