package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func cacheTestProgram(t *testing.T) *Program {
	t.Helper()
	prog, err := NewProgram(".")
	if err != nil {
		t.Fatalf("NewProgram: %v", err)
	}
	return prog
}

func TestCacheRoundTrip(t *testing.T) {
	prog := cacheTestProgram(t)
	path := prog.ModulePath + "/internal/layout"
	res := &SuiteResult{
		Diags: []Diagnostic{{
			Analyzer: "caschecked",
			Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
			Message:  "synthetic",
		}},
		Unused: []Diagnostic{{
			Analyzer: UnusedAllowName,
			Pos:      token.Position{Filename: "x.go", Line: 1, Column: 1},
			Message:  "stale",
		}},
	}

	c := NewCache(t.TempDir(), "fp-a")
	if _, ok := c.Get(prog, path); ok {
		t.Fatalf("Get on empty cache hit")
	}
	c.Put(prog, path, res)
	got, ok := c.Get(prog, path)
	if !ok {
		t.Fatalf("Get after Put missed")
	}
	if len(got.Diags) != 1 || got.Diags[0] != res.Diags[0] {
		t.Errorf("Diags round-trip mismatch: %+v", got.Diags)
	}
	if len(got.Unused) != 1 || got.Unused[0] != res.Unused[0] {
		t.Errorf("Unused round-trip mismatch: %+v", got.Unused)
	}
}

// A different suite fingerprint must miss even over the same entries: stale
// results from an older analyzer version can never be served.
func TestCacheFingerprintInvalidates(t *testing.T) {
	prog := cacheTestProgram(t)
	path := prog.ModulePath + "/internal/layout"
	dir := t.TempDir()
	NewCache(dir, "fp-a").Put(prog, path, &SuiteResult{})
	if _, ok := NewCache(dir, "fp-b").Get(prog, path); ok {
		t.Fatalf("cache hit across different fingerprints")
	}
	if _, ok := NewCache(dir, "fp-a").Get(prog, path); !ok {
		t.Fatalf("cache miss under the original fingerprint")
	}
}

func TestCacheUnknownPackage(t *testing.T) {
	prog := cacheTestProgram(t)
	c := NewCache(t.TempDir(), "fp")
	c.Put(prog, "no/such/pkg", &SuiteResult{})
	if _, ok := c.Get(prog, "no/such/pkg"); ok {
		t.Fatalf("unknown package produced a cache hit")
	}
}

func TestSuiteFingerprintDependsOnInputs(t *testing.T) {
	prog := cacheTestProgram(t)
	a := []*Analyzer{{Name: "one", Doc: "doc"}}
	b := []*Analyzer{{Name: "two", Doc: "doc"}}
	tool := []string{"internal/lint"}
	if SuiteFingerprint(prog, a, tool) == SuiteFingerprint(prog, b, tool) {
		t.Errorf("fingerprint ignores analyzer names")
	}
	if SuiteFingerprint(prog, a, tool) != SuiteFingerprint(prog, a, tool) {
		t.Errorf("fingerprint not deterministic")
	}
}

func TestWriteSARIF(t *testing.T) {
	analyzers := []*Analyzer{{Name: "caschecked", Doc: "check CAS results"}}
	diags := []Diagnostic{{
		Analyzer: "caschecked",
		Pos:      token.Position{Filename: "/mod/internal/btree/tree.go", Line: 42, Column: 5},
		Message:  "CAS result ignored",
	}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/mod", analyzers, diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "rdmavet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the unusedallow pseudo-rule.
	if len(run.Tool.Driver.Rules) != 2 || run.Tool.Driver.Rules[0].ID != "caschecked" || run.Tool.Driver.Rules[1].ID != UnusedAllowName {
		t.Errorf("rules = %+v", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "caschecked" || r.Message.Text != "CAS result ignored" {
		t.Errorf("result = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/btree/tree.go" {
		t.Errorf("uri = %q, want module-relative slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 {
		t.Errorf("startLine = %d", loc.Region.StartLine)
	}
	if strings.Contains(buf.String(), "\\\\") {
		t.Errorf("output contains escaped backslashes (non-slash URI?):\n%s", buf.String())
	}
}
