package lint

// This file builds intra-function control-flow graphs over go/ast, the
// substrate of the flow-sensitive rdmavet analyzers (lockpaired, occvalidate,
// tokenflow). The builder is dependency-free by design: like the rest of the
// framework it mirrors the shape of its x/tools counterpart
// (golang.org/x/tools/go/cfg) closely enough that a port to the real package
// is mechanical, without importing it.
//
// Shape of the graph:
//
//   - A Block holds the nodes that execute unconditionally in order once the
//     block is entered: simple statements (assignments, calls, sends, defers,
//     returns, ...) and the leaf operands of branch conditions. Compound
//     statements (if/for/switch/select) never appear as nodes; they are
//     expanded into blocks and edges.
//   - Short-circuit conditions are expanded: `if a && b` produces a block
//     evaluating `a` with a false-edge bypassing `b`, so dataflow facts can be
//     refined per operand (the lock-acquire analyses depend on `err != nil`
//     and `prev != old` edges individually).
//   - Every Edge out of a condition carries the condition expression and its
//     polarity (Neg = the edge taken when the condition is false); multi-way
//     transfers (switch tags, type switches, select, range) carry a nil Cond.
//   - Explicit returns (and falling off the end) edge to Exit; explicit
//     `panic(...)` statements edge to Panic, so analyses that must hold on
//     every *returning* path (lock release, token reaping) can exempt
//     panicking exits, which abandon the whole client anyway.
//   - A DeferStmt is an ordinary node in the block where it executes.
//     Analyses apply a deferred call's effect immediately (the lostcancel
//     convention): sound for must-release properties, since the deferred call
//     runs on every exit reached after the defer.
//   - A RangeStmt contributes only its ranged operand (X) as a node; the
//     per-iteration key/value binding is not modeled.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Edge is one control transfer between blocks. Cond, when non-nil, is the
// branch condition the transfer depends on; Neg marks the edge taken when
// Cond evaluates false.
type Edge struct {
	To   *Block
	Cond ast.Expr
	Neg  bool
}

// Block is one basic block of a CFG.
type Block struct {
	Index int
	// Kind is a descriptive tag ("entry", "if.then", "for.head", ...) used
	// by tests and debug dumps; analyses should not depend on it.
	Kind  string
	Nodes []ast.Node
	Succs []Edge
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	// Exit collects every normal return: explicit return statements and
	// falling off the end of the body.
	Exit *Block
	// Panic collects explicit panic(...) statements.
	Panic  *Block
	Blocks []*Block
}

// BuildCFG builds the control-flow graph of one function body. Function
// literals nested inside the body are ordinary expression operands of the
// statements that mention them; their own bodies get separate CFGs.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: make(map[string]*Block)}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.g.Panic = b.newBlock("panic")
	if end := b.stmts(b.g.Entry, body.List); end != nil {
		b.edge(end, b.g.Exit, nil, false)
	}
	return b.g
}

type cfgBuilder struct {
	g      *CFG
	frames []ctrlFrame
	labels map[string]*Block // label name -> block (goto/labeled-statement targets)
	// fallthroughTo is the next case body while building a switch case.
	fallthroughTo *Block
}

// ctrlFrame is one enclosing breakable construct (loop, switch or select).
// cont is nil for switch/select frames.
type ctrlFrame struct {
	label string
	brk   *Block
	cont  *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, neg bool) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Neg: neg})
}

// labelBlock returns (creating on demand) the block a label names, so gotos
// may target labels not yet seen.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) breakTarget(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		if label == "" || b.frames[i].label == label {
			return b.frames[i].brk
		}
	}
	return nil
}

func (b *cfgBuilder) continueTarget(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].cont == nil {
			continue
		}
		if label == "" || b.frames[i].label == label {
			return b.frames[i].cont
		}
	}
	return nil
}

// stmts builds a statement list starting in cur, returning the continuation
// block (nil when control cannot fall through). Statements after a
// terminating one are dead code and skipped — except labeled statements,
// which may be re-entered by goto.
func (b *cfgBuilder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			if _, ok := s.(*ast.LabeledStmt); !ok {
				continue
			}
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)
	case *ast.EmptyStmt:
		return cur
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(cur, lb, nil, false)
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			return b.forStmt(lb, inner, s.Label.Name)
		case *ast.RangeStmt:
			return b.rangeStmt(lb, inner, s.Label.Name)
		case *ast.SwitchStmt:
			return b.switchStmt(lb, inner, s.Label.Name)
		case *ast.TypeSwitchStmt:
			return b.typeSwitchStmt(lb, inner, s.Label.Name)
		case *ast.SelectStmt:
			return b.selectStmt(lb, inner, s.Label.Name)
		default:
			return b.stmt(lb, s.Stmt)
		}
	case *ast.ReturnStmt:
		if cur == nil {
			return nil
		}
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.g.Exit, nil, false)
		return nil
	case *ast.BranchStmt:
		if cur == nil {
			return nil
		}
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			b.edge(cur, b.breakTarget(label), nil, false)
		case token.CONTINUE:
			b.edge(cur, b.continueTarget(label), nil, false)
		case token.GOTO:
			b.edge(cur, b.labelBlock(label), nil, false)
		case token.FALLTHROUGH:
			b.edge(cur, b.fallthroughTo, nil, false)
		}
		return nil
	case *ast.IfStmt:
		if cur == nil {
			return nil
		}
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		then := b.newBlock("if.then")
		join := b.newBlock("if.join")
		els := join
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.cond(cur, s.Cond, then, els)
		if end := b.stmt(then, s.Body); end != nil {
			b.edge(end, join, nil, false)
		}
		if s.Else != nil {
			if end := b.stmt(els, s.Else); end != nil {
				b.edge(end, join, nil, false)
			}
		}
		return join
	case *ast.ForStmt:
		return b.forStmt(cur, s, "")
	case *ast.RangeStmt:
		return b.rangeStmt(cur, s, "")
	case *ast.SwitchStmt:
		return b.switchStmt(cur, s, "")
	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(cur, s, "")
	case *ast.SelectStmt:
		return b.selectStmt(cur, s, "")
	case *ast.ExprStmt:
		if cur == nil {
			return nil
		}
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.edge(cur, b.g.Panic, nil, false)
				return nil
			}
		}
		return cur
	default:
		// Simple statements: assign, declare, inc/dec, send, go, defer.
		if cur == nil {
			return nil
		}
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// cond wires the control transfer for condition e out of cur: to t when e is
// true, to f when false. Short-circuit operators and negations are expanded
// so every emitted edge tests exactly one leaf operand.
func (b *cfgBuilder) cond(cur *Block, e ast.Expr, t, f *Block) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(cur, x.X, mid, f)
			b.cond(mid, x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(cur, x.X, t, mid)
			b.cond(mid, x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(cur, x.X, f, t)
			return
		}
	}
	cur.Nodes = append(cur.Nodes, e)
	b.edge(cur, t, e, false)
	b.edge(cur, f, e, true)
}

func (b *cfgBuilder) forStmt(cur *Block, s *ast.ForStmt, label string) *Block {
	if cur == nil {
		return nil
	}
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	b.edge(cur, head, nil, false)
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head, nil, false)
	}
	if s.Cond != nil {
		b.cond(head, s.Cond, body, after)
	} else {
		b.edge(head, body, nil, false)
	}
	b.frames = append(b.frames, ctrlFrame{label: label, brk: after, cont: post})
	end := b.stmt(body, s.Body)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(end, post, nil, false)
	return after
}

func (b *cfgBuilder) rangeStmt(cur *Block, s *ast.RangeStmt, label string) *Block {
	if cur == nil {
		return nil
	}
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	// Only the ranged operand is modeled; the key/value binding is not.
	head.Nodes = append(head.Nodes, s.X)
	b.edge(cur, head, nil, false)
	b.edge(head, body, nil, false)
	b.edge(head, after, nil, false)
	b.frames = append(b.frames, ctrlFrame{label: label, brk: after, cont: head})
	end := b.stmt(body, s.Body)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(end, head, nil, false)
	return after
}

func (b *cfgBuilder) switchStmt(cur *Block, s *ast.SwitchStmt, label string) *Block {
	if cur == nil {
		return nil
	}
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	after := b.newBlock("switch.after")
	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	defaultIdx := -1
	var caseIdxs []int
	for i, c := range clauses {
		bodies[i] = b.newBlock("case.body")
		if c.List == nil {
			defaultIdx = i
		} else {
			caseIdxs = append(caseIdxs, i)
		}
	}

	if s.Tag != nil {
		// Tag switch: a multi-way transfer on the tag value. Case selection
		// is not condition-refinable, so every edge is unconditional.
		cur.Nodes = append(cur.Nodes, s.Tag)
		for i := range clauses {
			b.edge(cur, bodies[i], nil, false)
		}
		if defaultIdx < 0 {
			b.edge(cur, after, nil, false)
		}
	} else {
		// Tagless switch: an if/else-if chain over the case expressions,
		// with `case a, b:` testing a || b.
		test := cur
		noMatch := after
		if defaultIdx >= 0 {
			noMatch = bodies[defaultIdx]
		}
		for k, i := range caseIdxs {
			next := noMatch
			if k < len(caseIdxs)-1 {
				next = b.newBlock("case.test")
			}
			exprs := clauses[i].List
			for j, e := range exprs {
				if j < len(exprs)-1 {
					mid := b.newBlock("case.or")
					b.cond(test, e, bodies[i], mid)
					test = mid
				} else {
					b.cond(test, e, bodies[i], next)
				}
			}
			test = next
		}
		if len(caseIdxs) == 0 {
			b.edge(test, noMatch, nil, false)
		}
	}

	b.frames = append(b.frames, ctrlFrame{label: label, brk: after})
	for i := range clauses {
		saved := b.fallthroughTo
		b.fallthroughTo = nil
		if i+1 < len(clauses) {
			b.fallthroughTo = bodies[i+1]
		}
		if end := b.stmts(bodies[i], clauses[i].Body); end != nil {
			b.edge(end, after, nil, false)
		}
		b.fallthroughTo = saved
	}
	b.frames = b.frames[:len(b.frames)-1]
	return after
}

func (b *cfgBuilder) typeSwitchStmt(cur *Block, s *ast.TypeSwitchStmt, label string) *Block {
	if cur == nil {
		return nil
	}
	if s.Init != nil {
		cur.Nodes = append(cur.Nodes, s.Init)
	}
	cur.Nodes = append(cur.Nodes, s.Assign)
	after := b.newBlock("typeswitch.after")
	hasDefault := false
	b.frames = append(b.frames, ctrlFrame{label: label, brk: after})
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		body := b.newBlock("typecase.body")
		b.edge(cur, body, nil, false)
		if end := b.stmts(body, cc.Body); end != nil {
			b.edge(end, after, nil, false)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(cur, after, nil, false)
	}
	return after
}

func (b *cfgBuilder) selectStmt(cur *Block, s *ast.SelectStmt, label string) *Block {
	if cur == nil {
		return nil
	}
	after := b.newBlock("select.after")
	b.frames = append(b.frames, ctrlFrame{label: label, brk: after})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		body := b.newBlock("select.comm")
		b.edge(cur, body, nil, false)
		if cc.Comm != nil {
			body.Nodes = append(body.Nodes, cc.Comm)
		}
		if end := b.stmts(body, cc.Body); end != nil {
			b.edge(end, after, nil, false)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	// A select with no clauses blocks forever: cur keeps no successor.
	return after
}

// DebugString renders the graph for tests and debugging: one line per block,
// `b<i> <kind> [<n> nodes] -> b<j>(cond)[!] ...`, with ! marking a
// false-polarity edge.
func (g *CFG) DebugString() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			fmt.Fprintf(&sb, " [%d]", len(blk.Nodes))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, e := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", e.To.Index)
				if e.Cond != nil {
					fmt.Fprintf(&sb, "(%s", types.ExprString(e.Cond))
					if e.Neg {
						sb.WriteString("!")
					}
					sb.WriteString(")")
				}
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
