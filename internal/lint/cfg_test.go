package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFromSrc parses src (a file containing one function f) and builds the
// CFG of f's body.
func buildFromSrc(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatalf("no func f in src")
	return nil
}

// The expected dumps pin the builder's exact block/edge structure: block
// creation order, condition expressions with polarity (! = false edge), and
// node counts. A want of "b0 entry" means the entry block has no nodes and
// no successors.
func TestBuildCFG(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "defer with multiple returns",
			src: `func f(x int) error {
				defer cleanup()
				if x > 0 {
					return errA
				}
				return errB
			}`,
			want: `b0 entry [2] -> b3(x > 0) b4(x > 0!)
b1 exit
b2 panic
b3 if.then [1] -> b1
b4 if.join [1] -> b1
`,
		},
		{
			name: "labeled break out of select",
			src: `func f(ch chan int) {
				var n int
			loop:
				for {
					select {
					case v := <-ch:
						n += v
					default:
						break loop
					}
				}
				use(n)
			}`,
			want: `b0 entry [1] -> b3
b1 exit
b2 panic
b3 label.loop -> b4
b4 for.head -> b5
b5 for.body -> b8 b9
b6 for.after [1] -> b1
b7 select.after -> b4
b8 select.comm [2] -> b7
b9 select.comm -> b6
`,
		},
		{
			name: "short-circuit and-or-not",
			src: `func f(a, b, c bool) int {
				if a && (b || !c) {
					return 1
				}
				return 0
			}`,
			// The ! is expanded by swapping edge targets: when c is true the
			// or-operand !c is false, so the c-true edge goes to the join.
			want: `b0 entry [1] -> b5(a) b4(a!)
b1 exit
b2 panic
b3 if.then [1] -> b1
b4 if.join [1] -> b1
b5 cond.and [1] -> b3(b) b6(b!)
b6 cond.or [1] -> b4(c) b3(c!)
`,
		},
		{
			name: "goto forward and back",
			src: `func f(x int) {
			start:
				x--
				if x < 0 {
					goto done
				}
				goto start
			done:
				use(x)
			}`,
			want: `b0 entry -> b3
b1 exit
b2 panic
b3 label.start [2] -> b4(x < 0) b5(x < 0!)
b4 if.then -> b6
b5 if.join -> b3
b6 label.done [1] -> b1
`,
		},
		{
			name: "for with post and continue",
			src: `func f(n int) int {
				s := 0
				for i := 0; i < n; i++ {
					if skip(i) {
						continue
					}
					s += i
				}
				return s
			}`,
			want: `b0 entry [2] -> b3
b1 exit
b2 panic
b3 for.head [1] -> b4(i < n) b5(i < n!)
b4 for.body [1] -> b7(skip(i)) b8(skip(i)!)
b5 for.after [1] -> b1
b6 for.post [1] -> b3
b7 if.then -> b6
b8 if.join [1] -> b6
`,
		},
		{
			name: "tagless switch with multi-expr case and fallthrough",
			src: `func f(x int) int {
				switch {
				case x == 1, x == 2:
					x++
					fallthrough
				case x == 3:
					x--
				default:
					x = 0
				}
				return x
			}`,
			// b4 -> b5 is the fallthrough edge into the second case body.
			want: `b0 entry [1] -> b4(x == 1) b8(x == 1!)
b1 exit
b2 panic
b3 switch.after [1] -> b1
b4 case.body [1] -> b5
b5 case.body [1] -> b3
b6 case.body [1] -> b3
b7 case.test [1] -> b5(x == 3) b6(x == 3!)
b8 case.or [1] -> b4(x == 2) b7(x == 2!)
`,
		},
		{
			name: "tag switch without default",
			src: `func f(x int) {
				switch x {
				case 1:
					one()
				case 2:
					two()
				}
			}`,
			want: `b0 entry [1] -> b4 b5 b3
b1 exit
b2 panic
b3 switch.after -> b1
b4 case.body [1] -> b3
b5 case.body [1] -> b3
`,
		},
		{
			name: "type switch",
			src: `func f(x any) {
				switch v := x.(type) {
				case int:
					useInt(v)
				default:
					other()
				}
			}`,
			want: `b0 entry [1] -> b4 b5
b1 exit
b2 panic
b3 typeswitch.after -> b1
b4 typecase.body [1] -> b3
b5 typecase.body [1] -> b3
`,
		},
		{
			name: "range with labeled continue",
			src: `func f(xs []int) {
			outer:
				for _, x := range xs {
					for {
						if done(x) {
							continue outer
						}
						step()
					}
				}
			}`,
			want: `b0 entry -> b3
b1 exit
b2 panic
b3 label.outer -> b4
b4 range.head [1] -> b5 b6
b5 range.body -> b7
b6 range.after -> b1
b7 for.head -> b8
b8 for.body [1] -> b10(done(x)) b11(done(x)!)
b9 for.after -> b4
b10 if.then -> b4
b11 if.join [1] -> b7
`,
		},
		{
			name: "panic exit",
			src: `func f(x int) int {
				if x < 0 {
					panic("negative")
				}
				return x
			}`,
			want: `b0 entry [1] -> b3(x < 0) b4(x < 0!)
b1 exit
b2 panic
b3 if.then [1] -> b2
b4 if.join [1] -> b1
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildFromSrc(t, tc.src)
			if got := g.DebugString(); got != tc.want {
				t.Errorf("CFG mismatch\n got:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

// TestSolveForward exercises the worklist solver on a loop with a branch,
// using a reaching-marks analysis: the fact is the set of marker call names
// seen on some path, so the loop's back edge must propagate marks until the
// fixpoint.
func TestSolveForward(t *testing.T) {
	g := buildFromSrc(t, `func f(n int) {
		mark1()
		for i := 0; i < n; i++ {
			if odd(i) {
				mark2()
			}
		}
		mark3()
	}`)
	in, ok := SolveForward(g, marksAnalysis{})
	if !ok {
		t.Fatalf("solver exhausted its budget")
	}
	exitFact, found := in[g.Exit]
	if !found {
		t.Fatalf("exit block never reached")
	}
	got := exitFact.(map[string]bool)
	for _, want := range []string{"mark1", "mark2", "mark3"} {
		if !got[want] {
			t.Errorf("exit fact missing %s (got %v)", want, got)
		}
	}
	// The loop head must see mark2 via the back edge even though it precedes
	// the if in block order.
	for _, blk := range g.Blocks {
		if blk.Kind != "for.head" {
			continue
		}
		f, reached := in[blk]
		if !reached {
			t.Fatalf("for.head unreachable")
		}
		if !f.(map[string]bool)["mark2"] {
			t.Errorf("for.head fact missing mark2 from back edge: %v", f)
		}
	}
}

type marksAnalysis struct{}

func (marksAnalysis) Entry() any { return map[string]bool{} }

func (marksAnalysis) Transfer(fact any, n ast.Node) any {
	m := fact.(map[string]bool)
	out := m
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || len(id.Name) < 4 || id.Name[:4] != "mark" {
			return true
		}
		if out[id.Name] {
			return true
		}
		cp := make(map[string]bool, len(out)+1)
		for k := range out {
			cp[k] = true
		}
		cp[id.Name] = true
		out = cp
		return true
	})
	return out
}

func (marksAnalysis) EdgeTransfer(fact any, cond ast.Expr, neg bool) any { return fact }

func (marksAnalysis) Join(a, b any) any {
	am, bm := a.(map[string]bool), b.(map[string]bool)
	out := make(map[string]bool, len(am)+len(bm))
	for k := range am {
		out[k] = true
	}
	for k := range bm {
		out[k] = true
	}
	return out
}

func (marksAnalysis) Equal(a, b any) bool {
	am, bm := a.(map[string]bool), b.(map[string]bool)
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		if !bm[k] {
			return false
		}
	}
	return true
}
