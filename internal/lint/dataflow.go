package lint

// This file is the forward-dataflow companion of cfg.go: a worklist solver
// parameterized over an analyzer-supplied lattice. Analyzers define the fact
// domain (a FlowAnalysis), solve for the fact at entry to every reachable
// block, and then re-fold Transfer over a block's nodes to recover per-node
// facts where diagnostics are emitted.

import "go/ast"

// FlowAnalysis is one forward dataflow problem. Facts must be treated as
// immutable values: Transfer/EdgeTransfer/Join return fresh facts (or the
// input unchanged), never mutate their arguments in place.
type FlowAnalysis interface {
	// Entry is the fact at function entry.
	Entry() any
	// Transfer applies the effect of one block node.
	Transfer(fact any, n ast.Node) any
	// EdgeTransfer refines a fact along a conditional edge: cond is the
	// branch condition, neg true when the edge is taken on cond == false.
	EdgeTransfer(fact any, cond ast.Expr, neg bool) any
	// Join merges the facts of two incoming edges.
	Join(a, b any) any
	// Equal reports whether two facts are equal (the fixpoint test).
	Equal(a, b any) bool
}

// solveBudgetPerBlock bounds worklist iterations per block. A lattice whose
// Join/Transfer do not converge would otherwise loop forever; analyzers skip
// the function when the solver bails (ok == false).
const solveBudgetPerBlock = 256

// SolveForward computes the fact at entry to every block reachable from
// g.Entry. Unreachable blocks have no entry in the result map. ok is false
// when the iteration budget was exhausted before a fixpoint.
func SolveForward(g *CFG, a FlowAnalysis) (in map[*Block]any, ok bool) {
	in = make(map[*Block]any, len(g.Blocks))
	in[g.Entry] = a.Entry()
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	budget := (len(g.Blocks) + 1) * solveBudgetPerBlock
	for len(work) > 0 {
		if budget--; budget < 0 {
			return in, false
		}
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		fact := in[blk]
		for _, n := range blk.Nodes {
			fact = a.Transfer(fact, n)
		}
		for _, e := range blk.Succs {
			f := fact
			if e.Cond != nil {
				f = a.EdgeTransfer(fact, e.Cond, e.Neg)
			}
			old, seen := in[e.To]
			merged := f
			if seen {
				merged = a.Join(old, f)
			}
			if !seen || !a.Equal(old, merged) {
				in[e.To] = merged
				if !queued[e.To] {
					queued[e.To] = true
					work = append(work, e.To)
				}
			}
		}
	}
	return in, true
}
