// Package lint is a minimal, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis. It exists because the verbs
// protocols in this repository are correct only under invariants the Go
// compiler cannot see (an ibverbs CAS "succeeds iff returned value == old",
// single-goroutine Endpoint ownership, no wall-clock reads under simulated
// virtual time, ...). The rdmavet suite (internal/lint/rdmavet) expresses
// each invariant as an Analyzer; this package supplies the Analyzer/Pass
// plumbing, the module loader (load.go) and diagnostic suppression via
// //rdmavet:allow directives.
//
// The framework intentionally mirrors the x/tools API shape (Analyzer with
// Name/Doc/Run, Pass with Fset/Files/Pkg/Info/Reportf) so the suite can be
// ported to the real go/analysis driver mechanically if the dependency ever
// becomes available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rdmavet:allow directives.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and why.
	Doc string
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test Go files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
	// Path is the package's import path ("fixture/..." for test fixtures).
	Path string
	// ModulePath is the path of the enclosing module; analyzers use it to
	// compute module-relative package paths for scoping decisions.
	ModulePath string
	// Prog lets analyzers resolve types from other packages of the module
	// (e.g. the rdma.Endpoint interface) even when the analyzed package does
	// not import them directly.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RelPath returns the package path relative to the module root
// ("internal/btree"), or the path unchanged when it is not under the module
// (fixture packages).
func (p *Pass) RelPath() string {
	if p.Path == p.ModulePath {
		return "."
	}
	return strings.TrimPrefix(p.Path, p.ModulePath+"/")
}

// TypeOf is a nil-tolerant shortcut for p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// NamedType resolves the named type pkgPath.name via the program's package
// cache, loading pkgPath on demand. Returns nil if the package or name does
// not exist (analyzers then skip, never crash).
func (p *Pass) NamedType(pkgPath, name string) types.Type {
	pi, err := p.Prog.Package(pkgPath)
	if err != nil || pi == nil || pi.Pkg == nil {
		return nil
	}
	obj := pi.Pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// Interface resolves pkgPath.name and returns its underlying interface, or
// nil when the name is not an interface type.
func (p *Pass) Interface(pkgPath, name string) *types.Interface {
	t := p.NamedType(pkgPath, name)
	if t == nil {
		return nil
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// directive is one parsed //rdmavet:allow comment.
type directive struct {
	line      int
	analyzers []string // empty = all analyzers
}

// allows reports whether the directive suppresses the named analyzer.
func (d directive) allows(name string) bool {
	if len(d.analyzers) == 0 {
		return true
	}
	for _, a := range d.analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// DirectivePrefix introduces a suppression comment:
//
//	//rdmavet:allow <analyzer>[,<analyzer>...] -- <justification>
//
// A directive suppresses matching diagnostics reported on its own line or on
// the line directly below (directive-above-statement style). The
// justification after " -- " is free text but should always be present: the
// suite exists to replace comment-enforced invariants with machine-enforced
// ones, and an unexplained suppression reintroduces the former.
const DirectivePrefix = "rdmavet:allow"

// parseDirectives extracts all //rdmavet:allow directives of a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var ds []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			if cut := strings.Index(rest, "--"); cut >= 0 {
				rest = rest[:cut]
			}
			var names []string
			for _, fld := range strings.FieldsFunc(rest, func(r rune) bool {
				return r == ',' || r == ' ' || r == '\t'
			}) {
				if fld != "" {
					names = append(names, fld)
				}
			}
			ds = append(ds, directive{
				line:      fset.Position(c.Pos()).Line,
				analyzers: names,
			})
		}
	}
	return ds
}

// suppress filters diagnostics covered by //rdmavet:allow directives in the
// given files.
func suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// filename -> line -> directives
	byFile := make(map[string]map[int][]directive)
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		m := byFile[name]
		if m == nil {
			m = make(map[int][]directive)
			byFile[name] = m
		}
		for _, d := range parseDirectives(fset, f) {
			m[d.line] = append(m[d.line], d)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		m := byFile[d.Pos.Filename]
		allowed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range m[line] {
				if dir.allows(d.Analyzer) {
					allowed = true
				}
			}
		}
		if !allowed {
			kept = append(kept, d)
		}
	}
	return kept
}

// RunAnalyzers applies every analyzer to every listed package and returns
// the surviving (non-suppressed) diagnostics in file/line order.
func RunAnalyzers(prog *Program, paths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, path := range paths {
		pi, err := prog.Package(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		diags, err := AnalyzePackage(prog, pi, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// AnalyzePackage applies the analyzers to one loaded package, honoring
// //rdmavet:allow directives.
func AnalyzePackage(prog *Program, pi *PackageInfo, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       prog.Fset,
			Files:      pi.Files,
			Pkg:        pi.Pkg,
			Info:       pi.Info,
			Path:       pi.Path,
			ModulePath: prog.ModulePath,
			Prog:       prog,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pi.Path, err)
		}
		all = append(all, pass.diags...)
	}
	return suppress(prog.Fset, pi.Files, all), nil
}
