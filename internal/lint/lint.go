// Package lint is a minimal, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis. It exists because the verbs
// protocols in this repository are correct only under invariants the Go
// compiler cannot see (an ibverbs CAS "succeeds iff returned value == old",
// single-goroutine Endpoint ownership, no wall-clock reads under simulated
// virtual time, ...). The rdmavet suite (internal/lint/rdmavet) expresses
// each invariant as an Analyzer; this package supplies the Analyzer/Pass
// plumbing, the module loader (load.go) and diagnostic suppression via
// //rdmavet:allow directives.
//
// The framework intentionally mirrors the x/tools API shape (Analyzer with
// Name/Doc/Run, Pass with Fset/Files/Pkg/Info/Reportf) so the suite can be
// ported to the real go/analysis driver mechanically if the dependency ever
// becomes available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rdmavet:allow directives.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and why.
	Doc string
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test Go files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
	// Path is the package's import path ("fixture/..." for test fixtures).
	Path string
	// ModulePath is the path of the enclosing module; analyzers use it to
	// compute module-relative package paths for scoping decisions.
	ModulePath string
	// Prog lets analyzers resolve types from other packages of the module
	// (e.g. the rdma.Endpoint interface) even when the analyzed package does
	// not import them directly.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RelPath returns the package path relative to the module root
// ("internal/btree"), or the path unchanged when it is not under the module
// (fixture packages).
func (p *Pass) RelPath() string {
	if p.Path == p.ModulePath {
		return "."
	}
	return strings.TrimPrefix(p.Path, p.ModulePath+"/")
}

// TypeOf is a nil-tolerant shortcut for p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// NamedType resolves the named type pkgPath.name via the program's package
// cache, loading pkgPath on demand. Returns nil if the package or name does
// not exist (analyzers then skip, never crash).
func (p *Pass) NamedType(pkgPath, name string) types.Type {
	pi, err := p.Prog.Package(pkgPath)
	if err != nil || pi == nil || pi.Pkg == nil {
		return nil
	}
	obj := pi.Pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// Interface resolves pkgPath.name and returns its underlying interface, or
// nil when the name is not an interface type.
func (p *Pass) Interface(pkgPath, name string) *types.Interface {
	t := p.NamedType(pkgPath, name)
	if t == nil {
		return nil
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// directive is one parsed //rdmavet:allow comment.
type directive struct {
	pos       token.Position
	line      int
	analyzers []string // empty = all analyzers
	used      bool     // suppressed at least one diagnostic this run
}

// allows reports whether the directive suppresses the named analyzer.
func (d directive) allows(name string) bool {
	if len(d.analyzers) == 0 {
		return true
	}
	for _, a := range d.analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// DirectivePrefix introduces a suppression comment:
//
//	//rdmavet:allow <analyzer>[,<analyzer>...] -- <justification>
//
// A directive suppresses matching diagnostics reported on its own line or on
// the line directly below (directive-above-statement style). The
// justification after " -- " is free text but should always be present: the
// suite exists to replace comment-enforced invariants with machine-enforced
// ones, and an unexplained suppression reintroduces the former.
const DirectivePrefix = "rdmavet:allow"

// parseDirectives extracts all //rdmavet:allow directives of a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []*directive {
	var ds []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			if cut := strings.Index(rest, "--"); cut >= 0 {
				rest = rest[:cut]
			}
			var names []string
			for _, fld := range strings.FieldsFunc(rest, func(r rune) bool {
				return r == ',' || r == ' ' || r == '\t'
			}) {
				if fld != "" {
					names = append(names, fld)
				}
			}
			pos := fset.Position(c.Pos())
			ds = append(ds, &directive{
				pos:       pos,
				line:      pos.Line,
				analyzers: names,
			})
		}
	}
	return ds
}

// directiveIndex maps filename -> line -> directives for one package.
type directiveIndex struct {
	byFile map[string]map[int][]*directive
	all    []*directive
}

func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byFile: make(map[string]map[int][]*directive)}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		m := idx.byFile[name]
		if m == nil {
			m = make(map[int][]*directive)
			idx.byFile[name] = m
		}
		for _, d := range parseDirectives(fset, f) {
			m[d.line] = append(m[d.line], d)
			idx.all = append(idx.all, d)
		}
	}
	return idx
}

// suppress filters diagnostics covered by //rdmavet:allow directives, marking
// every directive that suppressed something as used.
func (idx *directiveIndex) suppress(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		m := idx.byFile[d.Pos.Filename]
		allowed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range m[line] {
				if dir.allows(d.Analyzer) {
					allowed = true
					dir.used = true
				}
			}
		}
		if !allowed {
			kept = append(kept, d)
		}
	}
	return kept
}

// UnusedAllowName is the pseudo-analyzer name under which stale
// //rdmavet:allow directives are reported. It is intentionally not
// suppressible: a waiver for the waiver-checker would defeat it.
const UnusedAllowName = "unusedallow"

// unused reports the directives that suppressed nothing. ranNames is the set
// of analyzers that actually ran: a directive naming only analyzers outside
// that set is skipped (a partial run cannot judge it), while a bare
// directive (no names) is judged — callers only ask for unused reporting on
// full-suite runs. A directive naming an analyzer that does not exist at all
// is always reported: it can never suppress anything.
func (idx *directiveIndex) unused(ranNames, knownNames map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range idx.all {
		if d.used {
			continue
		}
		var unknown []string
		judgeable := len(d.analyzers) == 0
		for _, name := range d.analyzers {
			if !knownNames[name] {
				unknown = append(unknown, name)
				judgeable = true
			} else if ranNames[name] {
				judgeable = true
			}
		}
		if !judgeable {
			continue
		}
		msg := "//rdmavet:allow suppresses no diagnostic: stale waiver (the finding was fixed or the analyzer no longer fires here); remove it"
		if len(unknown) > 0 {
			msg = fmt.Sprintf("//rdmavet:allow names unknown analyzer(s) %s: the directive can never suppress anything", strings.Join(unknown, ", "))
		}
		out = append(out, Diagnostic{Analyzer: UnusedAllowName, Pos: d.pos, Message: msg})
	}
	return out
}

// RunAnalyzers applies every analyzer to every listed package and returns
// the surviving (non-suppressed) diagnostics in file/line order.
func RunAnalyzers(prog *Program, paths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, path := range paths {
		pi, err := prog.Package(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		diags, err := AnalyzePackage(prog, pi, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	SortDiagnostics(all)
	return all, nil
}

// SortDiagnostics orders diagnostics by file, line, column and analyzer.
func SortDiagnostics(all []Diagnostic) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
}

// AnalyzePackage applies the analyzers to one loaded package, honoring
// //rdmavet:allow directives.
func AnalyzePackage(prog *Program, pi *PackageInfo, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := AnalyzePackageChecked(prog, pi, analyzers)
	return diags, err
}

// AnalyzePackageChecked applies the analyzers to one loaded package and
// additionally reports stale //rdmavet:allow directives: waivers that
// suppressed no diagnostic of the run. Unused-directive judgement assumes the
// analyzer set is the full suite (a bare `//rdmavet:allow` is only stale when
// nothing in the whole suite fires on its line); callers doing partial runs
// should use AnalyzePackage or ignore unused.
func AnalyzePackageChecked(prog *Program, pi *PackageInfo, analyzers []*Analyzer) (diags, unused []Diagnostic, err error) {
	ran := make(map[string]bool, len(analyzers))
	var all []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       prog.Fset,
			Files:      pi.Files,
			Pkg:        pi.Pkg,
			Info:       pi.Info,
			Path:       pi.Path,
			ModulePath: prog.ModulePath,
			Prog:       prog,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s on %s: %w", a.Name, pi.Path, err)
		}
		all = append(all, pass.diags...)
		ran[a.Name] = true
	}
	idx := indexDirectives(prog.Fset, pi.Files)
	kept := idx.suppress(all)
	return kept, idx.unused(ran, ran), nil
}

// SuiteResult is the outcome of a full-suite run over a set of packages.
type SuiteResult struct {
	// Diags are the surviving (non-suppressed) analyzer diagnostics.
	Diags []Diagnostic
	// Unused are stale //rdmavet:allow directives (Analyzer ==
	// UnusedAllowName); populated only when SuiteOptions.ReportUnused is set.
	Unused []Diagnostic
}

// SuiteOptions configures RunSuite.
type SuiteOptions struct {
	// ReportUnused includes stale //rdmavet:allow directives in the result.
	// Only meaningful when analyzers is the full suite: a partial run cannot
	// tell a stale waiver from one owned by an analyzer that did not run.
	ReportUnused bool
	// Cache, when non-nil, memoizes per-package results keyed on the content
	// of the package's files, its module-internal dependency closure, and
	// the cache's suite fingerprint (see NewCache).
	Cache *Cache
}

// RunSuite applies the analyzer suite to every listed package, consulting the
// optional package-result cache, and returns diagnostics plus stale-waiver
// reports in file/line order.
func RunSuite(prog *Program, paths []string, analyzers []*Analyzer, opts SuiteOptions) (*SuiteResult, error) {
	res := &SuiteResult{}
	for _, path := range paths {
		if opts.Cache != nil {
			if cached, ok := opts.Cache.Get(prog, path); ok {
				res.Diags = append(res.Diags, cached.Diags...)
				res.Unused = append(res.Unused, cached.Unused...)
				continue
			}
		}
		pi, err := prog.Package(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		diags, unused, err := AnalyzePackageChecked(prog, pi, analyzers)
		if err != nil {
			return nil, err
		}
		if opts.Cache != nil {
			opts.Cache.Put(prog, path, &SuiteResult{Diags: diags, Unused: unused})
		}
		res.Diags = append(res.Diags, diags...)
		res.Unused = append(res.Unused, unused...)
	}
	if !opts.ReportUnused {
		res.Unused = nil
	}
	SortDiagnostics(res.Diags)
	SortDiagnostics(res.Unused)
	return res, nil
}
