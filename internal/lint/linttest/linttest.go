// Package linttest runs lint analyzers against fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture files mark
// each line where a diagnostic is expected with a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// and the runner fails the test on any missing or unexpected diagnostic.
// Fixtures live under testdata/ (invisible to go build) and may import real
// packages of the enclosing module, so analyzers are exercised against the
// actual rdma.Endpoint / btree.Mem types they guard.
package linttest

import (
	"go/ast"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/lint"
)

var (
	progOnce sync.Once
	prog     *lint.Program
	progErr  error
)

// Program returns a module-wide *lint.Program shared by all tests in the
// process (indexing the module and type-checking shared dependencies once).
func Program(t *testing.T) *lint.Program {
	t.Helper()
	progOnce.Do(func() {
		prog, progErr = lint.NewProgram(".")
	})
	if progErr != nil {
		t.Fatalf("loading module: %v", progErr)
	}
	return prog
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want-regexp at one file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads fixtureDir as a package named asPath, applies the analyzer, and
// compares its diagnostics against the fixture's want comments.
func Run(t *testing.T, fixtureDir, asPath string, a *lint.Analyzer) {
	t.Helper()
	p := Program(t)
	pi, err := p.LoadDir(fixtureDir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	diags, err := lint.AnalyzePackage(p, pi, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, f := range pi.Files {
		wants = append(wants, parseWants(t, p, f)...)
	}

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func parseWants(t *testing.T, p *lint.Program, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			ms := wantRE.FindAllStringSubmatch(text[len("want "):], -1)
			if len(ms) == 0 {
				t.Fatalf("%s: malformed want comment %q", pos, c.Text)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}
