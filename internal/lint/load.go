package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// PackageInfo is one loaded, type-checked package.
type PackageInfo struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Program indexes and lazily type-checks the packages of one Go module.
// Packages are loaded on demand (Package), so a caller analyzing a single
// fixture package only pays for that package's dependency cone. Module
// packages are enumerated with `go list` (which honors build tags and skips
// testdata directories); standard-library dependencies are type-checked from
// GOROOT source via go/importer, keeping the loader free of external
// dependencies and network access.
//
// Only non-test files are loaded: the rdmavet invariants guard protocol and
// production code, and several analyzers (nopenv, wallclock) explicitly
// exempt tests.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	RootDir    string

	metas   map[string]*listPackage // import path -> go list metadata
	pkgs    map[string]*PackageInfo // import path -> loaded package
	loading map[string]bool         // cycle guard
	std     types.Importer          // GOROOT source importer
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// NewProgram indexes the module rooted at rootDir (a directory containing
// go.mod, or any directory below one).
func NewProgram(rootDir string) (*Program, error) {
	root, err := findModuleRoot(rootDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	p := &Program{
		Fset:    fset,
		RootDir: root,
		metas:   make(map[string]*listPackage),
		pkgs:    make(map[string]*PackageInfo),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	out, err := p.goList("-m")
	if err != nil {
		return nil, fmt.Errorf("resolving module path: %w", err)
	}
	p.ModulePath = strings.TrimSpace(string(out))
	if err := p.index("./..."); err != nil {
		return nil, err
	}
	return p, nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

func (p *Program) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = p.RootDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// index records `go list -json` metadata for the given patterns.
func (p *Program) index(patterns ...string) error {
	out, err := p.goList(append([]string{"-e", "-json"}, patterns...)...)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("decoding go list output: %w", err)
		}
		p.metas[lp.ImportPath] = &lp
	}
	return nil
}

// List expands go package patterns (e.g. "./...") to import paths, keeping
// only packages that belong to this module and contain Go files.
func (p *Program) List(patterns ...string) ([]string, error) {
	out, err := p.goList(append([]string{"-e"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if m, ok := p.metas[line]; ok && len(m.GoFiles) > 0 {
			paths = append(paths, line)
		}
	}
	return paths, nil
}

// Package loads (and caches) the type-checked package at the given import
// path. Module-internal dependencies are loaded recursively; standard
// library imports are satisfied from GOROOT source.
func (p *Program) Package(path string) (*PackageInfo, error) {
	if pi, ok := p.pkgs[path]; ok {
		return pi, nil
	}
	meta, ok := p.metas[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s is not part of module %s", path, p.ModulePath)
	}
	if meta.Error != nil {
		return nil, fmt.Errorf("lint: go list error for %s: %s", path, meta.Error.Err)
	}
	if p.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	var files []string
	for _, f := range meta.GoFiles {
		files = append(files, filepath.Join(meta.Dir, f))
	}
	pi, err := p.check(path, meta.Dir, files)
	if err != nil {
		return nil, err
	}
	p.pkgs[path] = pi
	return pi, nil
}

// LoadDir parses and type-checks every .go file of one directory as a
// package with the given synthetic import path. It is the entry point for
// analyzer test fixtures, which live under testdata/ where `go list` does
// not see them; fixtures may import real packages of the enclosing module.
func (p *Program) LoadDir(dir, asPath string) (*PackageInfo, error) {
	if pi, ok := p.pkgs[asPath]; ok {
		return pi, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pi, err := p.check(asPath, dir, files)
	if err != nil {
		return nil, err
	}
	p.pkgs[asPath] = pi
	return pi, nil
}

// check parses and type-checks one package from explicit file paths.
func (p *Program) check(path, dir string, filenames []string) (*PackageInfo, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(p.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importFunc(func(ipath string) (*types.Package, error) {
			if ipath == "unsafe" {
				return types.Unsafe, nil
			}
			if ipath == p.ModulePath || strings.HasPrefix(ipath, p.ModulePath+"/") {
				pi, err := p.Package(ipath)
				if err != nil {
					return nil, err
				}
				return pi.Pkg, nil
			}
			return p.std.Import(ipath)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, p.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	return &PackageInfo{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}

// importFunc adapts a function to types.Importer.
type importFunc func(path string) (*types.Package, error)

func (f importFunc) Import(path string) (*types.Package, error) { return f(path) }
