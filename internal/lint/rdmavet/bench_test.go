package rdmavet_test

import (
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/lint"
	"github.com/namdb/rdmatree/internal/lint/rdmavet"
)

// benchProg shares one loaded+typechecked module across iterations (loading
// is the driver's job and is cached in real runs; the benchmark isolates the
// analyzers themselves, dominated by the flow-sensitive passes).
var benchProg struct {
	once  sync.Once
	p     *lint.Program
	paths []string
	err   error
}

func BenchmarkRdmavet(b *testing.B) {
	benchProg.once.Do(func() {
		benchProg.p, benchProg.err = lint.NewProgram(".")
		if benchProg.err == nil {
			benchProg.paths, benchProg.err = benchProg.p.List("./...")
		}
	})
	if benchProg.err != nil {
		b.Fatal(benchProg.err)
	}
	suite := rdmavet.Suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lint.RunSuite(benchProg.p, benchProg.paths, suite, lint.SuiteOptions{ReportUnused: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Diags)+len(res.Unused) != 0 {
			b.Fatalf("suite not clean: %v %v", res.Diags, res.Unused)
		}
	}
}
