package rdmavet

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// NewCASChecked builds the caschecked analyzer.
//
// An ibverbs compare-and-swap does not fail loudly: it returns the value
// observed before the operation, and the swap happened iff that value equals
// the old argument (Listing 3 of the paper — lock acquisition is exactly
// this comparison). Code that drops the returned prior value has no way to
// know whether it holds the lock, and on a one-sided protocol no server-side
// check will ever catch it.
//
// The analyzer inspects every call of Endpoint.CompareAndSwap, btree.Mem.CAS
// and Region.CompareAndSwap and requires the returned prior value to be
//
//   - compared with == or != (e.g. `if prev != v { retry }`),
//   - or propagated to the caller via return (wrappers and Mem adapters),
//   - or switched on,
//
// within the enclosing function. Everything else — discarding it with `_`,
// an expression statement, or an assignment whose variable is never
// compared — is a diagnostic. Transport relays that forward the prior value
// to a remote comparer are annotated //rdmavet:allow caschecked in place.
func NewCASChecked() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "caschecked",
		Doc:  "first result of a verbs CAS must be compared against old (ibverbs: swap succeeded iff returned value == old)",
	}
	a.Run = func(pass *lint.Pass) error {
		epIface := endpointIface(pass)
		mIface := memIface(pass)
		rdmaPkg := rdmaPath(pass)
		walkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			_, recvType, name, ok := methodCall(pass, call)
			if !ok || len(call.Args) != 3 {
				return
			}
			var kind string
			switch {
			case name == "CompareAndSwap" && implementsIface(recvType, epIface):
				kind = "Endpoint.CompareAndSwap"
			case name == "CAS" && implementsIface(recvType, mIface):
				kind = "Mem.CAS"
			case name == "CompareAndSwap" && isNamed(recvType, rdmaPkg, "Region"):
				kind = "Region.CompareAndSwap"
			default:
				return
			}
			if !casResultChecked(pass, call, stack) {
				pass.Reportf(call.Pos(),
					"result of %s is not compared against the old argument %q: an ibverbs CAS succeeds iff the returned value equals old, so ignoring it drops lock-acquire failures",
					kind, types.ExprString(call.Args[1]))
			}
		})
		return nil
	}
	return a
}

// casResultChecked reports whether the prior-value result of the CAS call is
// observably checked in its enclosing function.
func casResultChecked(pass *lint.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	switch parent := parentOf(stack).(type) {
	case *ast.ReturnStmt:
		// Wrapper: the caller receives (prior, err) and is checked itself.
		return true
	case *ast.BinaryExpr:
		// Inline comparison. (Only possible for the error-free
		// Region.CompareAndSwap; multi-valued calls cannot appear here.)
		return parent.Op == token.EQL || parent.Op == token.NEQ
	case *ast.AssignStmt:
		if len(parent.Rhs) != 1 {
			return false
		}
		return lhsResultChecked(pass, parent.Lhs, stack)
	case *ast.ValueSpec:
		ids := make([]ast.Expr, len(parent.Names))
		for i, n := range parent.Names {
			ids[i] = n
		}
		return lhsResultChecked(pass, ids, stack)
	}
	return false
}

// lhsResultChecked inspects the assignment target of the CAS's first result.
func lhsResultChecked(pass *lint.Pass, lhs []ast.Expr, stack []ast.Node) bool {
	if len(lhs) == 0 {
		return false
	}
	id, ok := ast.Unparen(lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	var obj types.Object
	if d, ok := pass.Info.Defs[id]; ok && d != nil {
		obj = d
	} else if u, ok := pass.Info.Uses[id]; ok {
		obj = u
	}
	if obj == nil {
		return false
	}
	body := enclosingFuncBody(stack)
	if body == nil {
		return false
	}
	checked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if checked {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if sid, ok := ast.Unparen(side).(*ast.Ident); ok && sameObject(pass, sid, obj) {
					checked = true
				}
			}
		case *ast.ReturnStmt:
			// Propagation counts only when the value is returned as-is;
			// `return prev + 1` is arithmetic, not a success check.
			for _, res := range n.Results {
				if rid, ok := ast.Unparen(res).(*ast.Ident); ok && sameObject(pass, rid, obj) {
					checked = true
				}
			}
		case *ast.SwitchStmt:
			if sid, ok := ast.Unparen(n.Tag).(*ast.Ident); ok && sameObject(pass, sid, obj) {
				checked = true
			}
		}
		return !checked
	})
	return checked
}
