package rdmavet

import (
	"go/ast"
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// postVerbs are the rdma.AsyncEndpoint methods that enqueue a verb and
// allocate a completion the poster must later reap.
var postVerbs = map[string]bool{
	"PostRead":     true,
	"PostWrite":    true,
	"PostCAS":      true,
	"PostFetchAdd": true,
	"PostCall":     true,
}

// NewCompletionLeak builds the completionleak analyzer.
//
// The async contract (internal/rdma/async.go) is that Post* never reports an
// error: a posted verb's outcome — including its failure — exists only as a
// Completion reaped by Poll. A function that posts on an endpoint it owns and
// returns without polling therefore abandons outcomes in flight: verb errors
// are silently dropped (the async analogue of verberrs) and, on a real NIC,
// completion-queue entries leak until the QP drowns in them. The analyzer
// flags every Post* call in a function that contains no matching Poll on the
// same endpoint.
//
// Two receiver shapes are exempt, because there the completions are consumed
// on a path the per-function analysis cannot see:
//
//   - the endpoint is a struct field (e.sel.Post...): posting and polling are
//     split across methods of the owning object (the pipelined engine's
//     shape), and single-owner discipline ties them together;
//   - the endpoint escapes the function in a non-verb position (passed to a
//     call, returned, stored): whoever received it owns the outstanding
//     completions.
//
// Flush is not consumption — it only rings the doorbell; a post+Flush with
// no Poll still leaks every completion of the batch.
func NewCompletionLeak() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "completionleak",
		Doc:  "every posted verb's completion must be reaped by Poll on all paths",
	}
	a.Run = func(pass *lint.Pass) error {
		asyncIface := pass.Interface(rdmaPath(pass), "AsyncEndpoint")
		if asyncIface == nil {
			return nil
		}

		type post struct {
			call *ast.CallExpr
			name string
			obj  types.Object
		}
		type fnState struct {
			posts     []post
			polled    map[types.Object]bool
			polledAny bool
			escaped   map[types.Object]bool
		}
		fns := make(map[ast.Node]*fnState)
		var order []ast.Node
		state := func(region ast.Node) *fnState {
			s := fns[region]
			if s == nil {
				s = &fnState{polled: map[types.Object]bool{}, escaped: map[types.Object]bool{}}
				fns[region] = s
				order = append(order, region)
			}
			return s
		}
		// region is the outermost function declaration or literal: nested
		// closures share their enclosing function's post/poll accounting
		// (objects still match per endpoint variable).
		region := func(stack []ast.Node) ast.Node {
			for _, n := range stack {
				switch n.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					return n
				}
			}
			return nil
		}
		identObj := func(e ast.Expr) types.Object {
			id, ok := ast.Unparen(e).(*ast.Ident)
			if !ok {
				return nil
			}
			return pass.Info.Uses[id]
		}

		walkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
			r := region(stack)
			if r == nil {
				return
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				recv, recvType, name, ok := methodCall(pass, n)
				if !ok || !implementsIface(recvType, asyncIface) {
					return
				}
				switch {
				case postVerbs[name]:
					state(r).posts = append(state(r).posts, post{call: n, name: name, obj: identObj(recv)})
				case name == "Poll":
					if obj := identObj(recv); obj != nil {
						state(r).polled[obj] = true
					} else {
						state(r).polledAny = true
					}
				}
			case *ast.Ident:
				obj := pass.Info.Uses[n]
				if obj == nil || !implementsIface(obj.Type(), asyncIface) {
					return
				}
				// A use as the receiver of a method call is verb traffic; any
				// other use hands the endpoint (and its outstanding
				// completions) to someone else.
				if sel, ok := parentOf(stack).(*ast.SelectorExpr); ok && ast.Unparen(sel.X) == ast.Node(n) {
					if len(stack) >= 2 {
						if call, ok := parentOf(stack[:len(stack)-1]).(*ast.CallExpr); ok && ast.Unparen(call.Fun) == ast.Node(sel) {
							return
						}
					}
				}
				state(r).escaped[obj] = true
			}
		})

		for _, r := range order {
			s := fns[r]
			for _, p := range s.posts {
				if p.obj == nil {
					// Field-selector receiver: post and Poll live in
					// different methods of the owning object.
					continue
				}
				if s.polledAny || s.polled[p.obj] || s.escaped[p.obj] {
					continue
				}
				pass.Reportf(p.call.Pos(),
					"completion of %s is never polled: a posted verb's outcome (including its error) exists only as a Completion, so returning without Poll abandons it in flight",
					p.name)
			}
		}
		return nil
	}
	return a
}
