package rdmavet

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// NewEndpointShare builds the endpointshare analyzer.
//
// An rdma.Endpoint models one compute thread's queue pairs: per the contract
// in internal/rdma/verbs.go it is owned by a single goroutine and must never
// be used from two concurrently (the paper's one-QP-per-client connection
// model; EndpointMem additionally keeps per-endpoint scratch buffers that
// would race). The analyzer flags the ways an endpoint value crosses a
// goroutine boundary:
//
//   - captured by the function literal of a `go` statement,
//   - passed as an argument (or receiver) of a `go` call,
//   - sent on a channel.
//
// Deliberate ownership hand-offs (create, then give to exactly one worker)
// are annotated //rdmavet:allow endpointshare at the hand-off site. The
// check is capture-based: an endpoint smuggled across inside a struct field
// is only caught when the endpoint-typed expression itself appears in the
// escaping code, so constructors storing endpoints into client structs are
// (intentionally) not flagged.
func NewEndpointShare() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "endpointshare",
		Doc:  "an rdma.Endpoint is owned by one goroutine: no goroutine capture, go-call argument, or channel send",
	}
	a.Run = func(pass *lint.Pass) error {
		iface := endpointIface(pass)
		if iface == nil {
			return nil
		}
		reported := make(map[token.Pos]bool)
		report := func(pos token.Pos, format string, args ...any) {
			if !reported[pos] {
				reported[pos] = true
				pass.Reportf(pos, format, args...)
			}
		}
		isEndpoint := func(t types.Type) bool { return implementsIface(t, iface) }
		walkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.SendStmt:
				if isEndpoint(pass.TypeOf(n.Value)) {
					report(n.Value.Pos(),
						"rdma.Endpoint sent on a channel: endpoints are owned by a single goroutine (see rdma.Endpoint doc)")
				}
			case *ast.GoStmt:
				checkGoStmt(pass, n, isEndpoint, report)
			}
		})
		return nil
	}
	return a
}

func checkGoStmt(pass *lint.Pass, g *ast.GoStmt, isEndpoint func(types.Type) bool, report func(token.Pos, string, ...any)) {
	if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		if isEndpoint(pass.TypeOf(sel.X)) {
			report(sel.X.Pos(),
				"rdma.Endpoint method launched on a new goroutine: endpoints are owned by a single goroutine")
		}
	}
	for _, arg := range g.Call.Args {
		if isEndpoint(pass.TypeOf(arg)) {
			report(arg.Pos(),
				"rdma.Endpoint passed to a goroutine: endpoints are owned by a single goroutine (annotate deliberate ownership transfer with //rdmavet:allow endpointshare)")
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || !isEndpoint(obj.Type()) {
			return true
		}
		// Declared outside the literal => captured from the spawning
		// goroutine's scope.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			report(id.Pos(),
				"rdma.Endpoint %q captured by a goroutine: endpoints are owned by a single goroutine (create the endpoint inside the goroutine, or annotate a deliberate ownership transfer with //rdmavet:allow endpointshare)", id.Name)
		}
		return true
	})
}
