package rdmavet

// Shared plumbing for the flow-sensitive analyzers (lockpaired, occvalidate,
// tokenflow): per-function regions over which a CFG is built, and small
// expression predicates. Each function declaration and each function literal
// is analyzed as its own region — a closure's body executes at call time, not
// where it is written, so its effects must not leak into the enclosing
// function's flow facts (enclosing analyses skip FuncLit subtrees).

import (
	"go/ast"
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// funcRegion is one independently analyzed function body.
type funcRegion struct {
	name string // for diagnostics: "f" or "f literal"
	sig  *types.Signature
	body *ast.BlockStmt
}

// funcRegions returns every function declaration and function literal of the
// package as a separate analysis region.
func funcRegions(pass *lint.Pass) []funcRegion {
	var out []funcRegion
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				fn, _ := pass.Info.Defs[n.Name].(*types.Func)
				if fn == nil {
					return true
				}
				out = append(out, funcRegion{
					name: n.Name.Name,
					sig:  fn.Type().(*types.Signature),
					body: n.Body,
				})
			case *ast.FuncLit:
				sig, _ := pass.TypeOf(n).(*types.Signature)
				if sig == nil {
					return true
				}
				out = append(out, funcRegion{name: "function literal", sig: sig, body: n.Body})
			}
			return true
		})
	}
	return out
}

// inspectShallow walks n without descending into function literals: their
// bodies run at call time and are analyzed as their own regions.
func inspectShallow(n ast.Node, fn func(n ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, isLit := c.(*ast.FuncLit); isLit && c != n {
			return false
		}
		return fn(c)
	})
}

// refersTo reports whether e mentions obj outside nested function literals.
func refersTo(pass *lint.Pass, e ast.Expr, obj types.Object) bool {
	if e == nil || obj == nil {
		return false
	}
	found := false
	inspectShallow(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// errorLastResult reports whether the signature's final result is error.
func errorLastResult(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// layoutPath returns the import path of the page-layout package.
func layoutPath(pass *lint.Pass) string { return pass.ModulePath + "/internal/layout" }

// layoutCall reports whether e is a call to internal/layout's function name,
// returning the call.
func layoutCall(pass *lint.Pass, e ast.Expr, name string) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn := lint.StaticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != layoutPath(pass) || fn.Name() != name {
		return nil, false
	}
	return call, true
}

// isRemotePtr reports whether t is rdma.RemotePtr.
func isRemotePtr(pass *lint.Pass, t types.Type) bool {
	return isNamed(t, rdmaPath(pass), "RemotePtr")
}

// identUse resolves e to the object of a plain identifier use, or nil.
func identUse(pass *lint.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[id]
}

// identDefOrUse resolves e to a plain identifier's object via Defs (for :=)
// or Uses (for =), or nil. The blank identifier resolves to nil.
func identDefOrUse(pass *lint.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if d := pass.Info.Defs[id]; d != nil {
		return d
	}
	return pass.Info.Uses[id]
}
