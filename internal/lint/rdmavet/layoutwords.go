package rdmavet

import (
	"go/ast"
	"go/constant"
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// DefaultLayoutWordsScope covers the packages that handle raw page buffers.
var DefaultLayoutWordsScope = Scope{Deny: protocolPackages}

// NewLayoutWords builds the layoutwords analyzer.
//
// internal/layout owns the word layout of index pages (version word, meta
// word, fence keys, sibling pointers, payload — see the package comment
// there). A call site outside layout that indexes a page buffer with a
// constant — `buf[0]` to peek at the version word, say — hard-codes the
// layout at that line: reorder one header word and the site silently reads
// the wrong field, with no compiler or runtime check on any transport. The
// analyzer flags every constant-index access of a []uint64 in protocol
// packages; call sites go through the layout codec instead
// (layout.BufVersion, layout.Node accessors). Non-page uint64 slices
// indexed by constants are annotated //rdmavet:allow layoutwords in place.
func NewLayoutWords(scope Scope) *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "layoutwords",
		Doc:  "no constant indexing of []uint64 page buffers outside internal/layout (use the layout codec)",
	}
	a.Run = func(pass *lint.Pass) error {
		if !scope.Match(pass.RelPath()) {
			return nil
		}
		walkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return
			}
			slice, ok := pass.TypeOf(ix.X).(*types.Slice)
			if !ok {
				return
			}
			// Exactly []uint64 (or an alias like []layout.Key): defined types
			// over uint64 — e.g. []rdma.RemotePtr — are not page buffers.
			basic, ok := types.Unalias(slice.Elem()).(*types.Basic)
			if !ok || basic.Kind() != types.Uint64 {
				return
			}
			tv, ok := pass.Info.Types[ix.Index]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return
			}
			pass.Reportf(ix.Pos(),
				"constant index %s into []uint64 outside internal/layout: header words must go through the layout codec (layout.BufVersion / layout.Node accessors) so a layout change cannot desynchronize this site",
				tv.Value.ExactString())
		})
		return nil
	}
	return a
}
