package rdmavet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/namdb/rdmatree/internal/lint"
)

// DefaultLockPairedScope covers the packages executing the OCC write
// protocol.
var DefaultLockPairedScope = Scope{Deny: protocolPackages}

// lockpaired is a flow-sensitive check of the lock-coupling discipline
// (Listings 3-4 of the paper): a page lock is acquired by CASing the
// version word to its locked image — CAS(p, v, layout.WithLock(v)) — and
// MUST be released on every path that gives up on the operation, by one of
//
//   - FetchAdd on the version word (unlock-and-bump, publishes a new body),
//   - CAS(p, layout.WithLock(pre), pre) (restore, nothing was published),
//   - a same-package helper that transitively performs one of the above
//     (unlockBump / abortUnlock / unlockNoChange), found by call summaries.
//
// Nothing at runtime catches a leaked lock: the remote CPU is passive, so a
// page whose lock bit is left set blocks every future writer and spins every
// reader until the spin budget aborts them. The classic leak is an
// error-return between acquire and release — exactly what a flow-insensitive
// check cannot see.
//
// The analysis runs per function over the lint CFG. Lock identity is the
// source text of the pointer expression (types.ExprString), which is exact
// for the repository's style of naming page pointers (p, aPtr, leafPtr).
//
// Acquire forms tracked:
//
//   - the raw CAS above: the lock is conditional until the flow refines it —
//     the err != nil edge and the prev != old edge both kill it, their
//     complements confirm it;
//   - a call to a same-package *acquirer*: a function that, on its own
//     nil-error return, still holds a must-held lock (lockNodeForKey,
//     lockPtr). The lock's identity at the call site is the corresponding
//     result (when the acquirer returns the pointer) or argument (when it
//     locks exactly the pointer it was given); the assigned error variable
//     conditions it.
//
// Releases are matched by pointer text against any rdma.RemotePtr argument
// of the releasing call; a release whose pointer matches no tracked lock
// conservatively clears all of them (aliasing). A function value bound to a
// closure that releases a lock releases it when the value is called or
// passed to a call.
//
// Join semantics are MUST-held: a lock held on only one incoming path joins
// as held-but-not-must and is never reported. This is deliberately
// conservative — protocol loops correlate lock state with scalar flags
// across break joins (installSeparator's idx), and a may-analysis would
// flag their error returns. The price is a documented miss:
// "if cond { unlock() }; return err" is not reported.
//
// Diagnostics fire at return statements whose final result is not the nil
// literal (error paths and error passthroughs) while a must-held,
// unconditional lock remains. Nil-error returns holding a lock are the
// acquirer pattern and are legal; panic paths are exempt (the process is
// gone, tooling cannot help the cluster).
func NewLockPaired(scope Scope) *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "lockpaired",
		Doc:  "every acquired page lock must be released on all error-return paths",
	}
	a.Run = func(pass *lint.Pass) error {
		if !scope.Match(pass.RelPath()) {
			return nil
		}
		memIf, epIf := memIface(pass), endpointIface(pass)
		if memIf == nil && epIf == nil {
			return nil
		}
		lp := &lockPairedPass{pass: pass, memIf: memIf, epIf: epIf}

		// Releaser summaries: same-package functions that (transitively)
		// contain a release primitive.
		var files []*ast.File
		files = append(files, pass.Files...)
		lp.releasers = lint.Summarize(files, pass.Info, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			return ok && lp.isReleasePrimitive(call)
		})

		// Acquirer summaries need lock analysis, which needs acquirer
		// summaries: iterate to a fixpoint (the repository's helpers are one
		// level deep, so this converges immediately; the bound is a guard).
		lp.acquirers = make(map[*types.Func]acquirerInfo)
		regions := funcRegions(pass)
		for round := 0; round < 4; round++ {
			if !lp.discoverAcquirers(pass.Files) {
				break
			}
		}

		for _, r := range regions {
			lp.checkRegion(r)
		}
		return nil
	}
	return a
}

// acquirerInfo describes where a lock-acquiring function exposes the locked
// pointer: as result resultIdx (preferred), or as its own argument paramIdx.
type acquirerInfo struct {
	resultIdx int
	paramIdx  int
}

// lockState is the per-lock dataflow fact. A lock with pending objects is
// conditional: acquisition succeeded only if the error is nil (errObj) and
// the CAS returned the expected prior value (prevObj == oldStr).
type lockState struct {
	must    bool
	errObj  types.Object
	prevObj types.Object
	oldStr  string
}

func (s lockState) pending() bool { return s.errObj != nil || s.prevObj != nil }

type lockFact map[string]lockState

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

type lockPairedPass struct {
	pass      *lint.Pass
	memIf     *types.Interface
	epIf      *types.Interface
	releasers map[*types.Func]bool
	acquirers map[*types.Func]acquirerInfo
}

// verbIface reports whether t implements Mem or Endpoint (the two surfaces
// carrying the version-word verbs).
func (lp *lockPairedPass) verbIface(t types.Type) bool {
	return implementsIface(t, lp.memIf) || implementsIface(t, lp.epIf)
}

// isAcquirePrimitive matches CAS(p, v, layout.WithLock(v)) on a verb surface
// and returns the pointer and old-version expressions.
func (lp *lockPairedPass) isAcquirePrimitive(call *ast.CallExpr) (ptr, old ast.Expr, ok bool) {
	_, recvType, name, isM := methodCall(lp.pass, call)
	if !isM || (name != "CAS" && name != "CompareAndSwap") || len(call.Args) != 3 {
		return nil, nil, false
	}
	if !lp.verbIface(recvType) {
		return nil, nil, false
	}
	if _, isLock := layoutCall(lp.pass, call.Args[2], "WithLock"); !isLock {
		return nil, nil, false
	}
	return call.Args[0], call.Args[1], true
}

// isReleasePrimitive matches the two unlock verbs: FetchAdd on the version
// word, and CAS whose OLD image is the locked word (restore).
func (lp *lockPairedPass) isReleasePrimitive(call *ast.CallExpr) bool {
	_, recvType, name, isM := methodCall(lp.pass, call)
	if !isM || !lp.verbIface(recvType) {
		return false
	}
	switch name {
	case "FetchAdd":
		return len(call.Args) == 2
	case "CAS", "CompareAndSwap":
		if len(call.Args) != 3 {
			return false
		}
		_, isLock := layoutCall(lp.pass, call.Args[1], "WithLock")
		return isLock
	}
	return false
}

// isReleaseCall reports whether call releases a lock (primitive or
// summarized helper) and returns the candidate pointer expressions.
func (lp *lockPairedPass) isReleaseCall(call *ast.CallExpr) ([]ast.Expr, bool) {
	release := lp.isReleasePrimitive(call)
	if !release {
		if fn := lint.StaticCallee(lp.pass.Info, call); fn != nil && lp.releasers[fn] {
			release = true
		}
	}
	if !release {
		return nil, false
	}
	var ptrs []ast.Expr
	for _, arg := range call.Args {
		if isRemotePtr(lp.pass, lp.pass.TypeOf(arg)) {
			ptrs = append(ptrs, arg)
		}
	}
	return ptrs, true
}

// killMatching removes the locks released through the given pointer
// expressions. When none of them matches a tracked lock, every lock is
// cleared: the release went through an alias the text-based identity cannot
// see, and a stale must-held entry would be a false positive.
func killMatching(fact lockFact, ptrs []ast.Expr) lockFact {
	if len(fact) == 0 {
		return fact
	}
	out, cloned := fact, false
	for _, p := range ptrs {
		key := types.ExprString(ast.Unparen(p))
		if _, ok := out[key]; ok {
			if !cloned {
				out, cloned = out.clone(), true
			}
			delete(out, key)
		}
	}
	if !cloned {
		return lockFact{}
	}
	return out
}

// closureReleases maps function-value variables to the pointer-expression
// keys their bound closure releases (empty slice = releases something
// unidentifiable, treated as release-all).
type closureReleases map[types.Object][]string

// scanClosures finds `name := func(...) ... { ...release... }` bindings in
// body. Calling such a value — or passing it to a call — counts as the
// release, since the callee may invoke it.
func (lp *lockPairedPass) scanClosures(body *ast.BlockStmt) closureReleases {
	out := closureReleases{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok {
				continue
			}
			obj := identDefOrUse(lp.pass, assign.Lhs[i])
			if obj == nil {
				continue
			}
			var keys []string
			releases := false
			inspectShallow(lit.Body, func(c ast.Node) bool {
				call, isCall := c.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if ptrs, ok := lp.isReleaseCall(call); ok {
					releases = true
					for _, p := range ptrs {
						keys = append(keys, types.ExprString(ast.Unparen(p)))
					}
				}
				return true
			})
			if releases {
				out[obj] = keys
			}
		}
		return true
	})
	return out
}

// lockAnalysis is the FlowAnalysis over one function body.
type lockAnalysis struct {
	lp       *lockPairedPass
	closures closureReleases
	// report, when set, receives (fact before the check, return statement);
	// nil while solving.
	report func(fact lockFact, ret *ast.ReturnStmt)
}

func (la *lockAnalysis) Entry() any { return lockFact{} }

func (la *lockAnalysis) Equal(a, b any) bool {
	am, bm := a.(lockFact), b.(lockFact)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	return true
}

// Join implements must-held semantics: a lock missing on one side survives
// with must=false, and disagreeing pending state degrades the same way (the
// lock can still be released, never reported).
func (la *lockAnalysis) Join(a, b any) any {
	am, bm := a.(lockFact), b.(lockFact)
	out := make(lockFact, len(am)+len(bm))
	for k, av := range am {
		bv, ok := bm[k]
		switch {
		case !ok:
			av.must = false
			out[k] = av
		case av == bv:
			out[k] = av
		default:
			out[k] = lockState{must: false}
		}
	}
	for k, bv := range bm {
		if _, ok := am[k]; !ok {
			bv.must = false
			out[k] = bv
		}
	}
	return out
}

func (la *lockAnalysis) Transfer(fact any, n ast.Node) any {
	lp := la.lp
	out := fact.(lockFact)

	// 1. Releases anywhere in the node (statement, init clause, condition,
	// deferred call — defers release "immediately", which is sound for a
	// must-release property).
	inspectShallow(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ptrs, isRel := lp.isReleaseCall(call); isRel {
			out = killMatching(out, ptrs)
			return true
		}
		// A bound releasing closure, called directly or handed to a call.
		if obj := identUse(lp.pass, call.Fun); obj != nil {
			if keys, ok := la.closures[obj]; ok {
				out = killByKeys(out, keys)
			}
		}
		for _, arg := range call.Args {
			if obj := identUse(lp.pass, arg); obj != nil {
				if keys, ok := la.closures[obj]; ok {
					out = killByKeys(out, keys)
				}
			}
		}
		return true
	})

	ret, isReturn := n.(*ast.ReturnStmt)
	if isReturn && la.report != nil {
		la.report(out, ret)
	}

	assign, isAssign := n.(*ast.AssignStmt)
	if !isAssign {
		return out
	}

	// 2. Reassignment invalidates: a pending error/prev variable that is
	// overwritten can no longer refine the lock, and a pointer variable that
	// is overwritten no longer names it. Acquires below re-establish state.
	cloned := false
	for _, lhs := range assign.Lhs {
		obj := identDefOrUse(lp.pass, lhs)
		key := types.ExprString(ast.Unparen(lhs))
		for k, ls := range out {
			demote := k == key
			if obj != nil && (ls.errObj == obj || ls.prevObj == obj) {
				demote = true
			}
			if demote {
				if !cloned {
					out, cloned = out.clone(), true
				}
				out[k] = lockState{must: false}
			}
		}
	}

	// 3. Acquires: single-call RHS only (the repository's style; a CAS in a
	// multi-value context has no checkable prev/err binding anyway).
	if len(assign.Rhs) != 1 {
		return out
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return out
	}
	if ptrE, oldE, isAcq := lp.isAcquirePrimitive(call); isAcq {
		ls := lockState{must: true, oldStr: types.ExprString(ast.Unparen(oldE))}
		if len(assign.Lhs) == 2 {
			ls.prevObj = identDefOrUse(lp.pass, assign.Lhs[0])
			ls.errObj = identDefOrUse(lp.pass, assign.Lhs[1])
		}
		out = out.clone()
		out[types.ExprString(ast.Unparen(ptrE))] = ls
		return out
	}
	if fn := lint.StaticCallee(lp.pass.Info, call); fn != nil {
		if info, isAcq := lp.acquirers[fn]; isAcq {
			var keyExpr ast.Expr
			if info.resultIdx >= 0 && info.resultIdx < len(assign.Lhs) {
				keyExpr = assign.Lhs[info.resultIdx]
			} else if info.paramIdx >= 0 && info.paramIdx < len(call.Args) {
				keyExpr = call.Args[info.paramIdx]
			}
			if keyExpr == nil || types.ExprString(ast.Unparen(keyExpr)) == "_" {
				return out
			}
			ls := lockState{must: true}
			if n := len(assign.Lhs); n > 0 {
				ls.errObj = identDefOrUse(lp.pass, assign.Lhs[n-1])
			}
			out = out.clone()
			out[types.ExprString(ast.Unparen(keyExpr))] = ls
		}
	}
	return out
}

func killByKeys(fact lockFact, keys []string) lockFact {
	if len(fact) == 0 {
		return fact
	}
	out, cloned := fact, false
	for _, k := range keys {
		if _, ok := out[k]; ok {
			if !cloned {
				out, cloned = out.clone(), true
			}
			delete(out, k)
		}
	}
	if !cloned {
		return lockFact{}
	}
	return out
}

// EdgeTransfer refines conditional locks along branch edges:
// the err != nil edge and the prev != old edge kill the acquisition (the
// verb failed / the CAS lost), their complements confirm it.
func (la *lockAnalysis) EdgeTransfer(fact any, cond ast.Expr, neg bool) any {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return fact
	}
	f := fact.(lockFact)
	// equalityHolds: on this edge, the two operands are known equal.
	equalityHolds := (be.Op == token.EQL) != neg
	out, cloned := f, false
	touch := func() {
		if !cloned {
			out, cloned = out.clone(), true
		}
	}

	// Error refinement: <errObj> ==/!= nil.
	var errSide ast.Expr
	if isNilExpr(la.lp.pass, be.Y) {
		errSide = be.X
	} else if isNilExpr(la.lp.pass, be.X) {
		errSide = be.Y
	}
	if errSide != nil {
		if obj := identUse(la.lp.pass, errSide); obj != nil {
			for k, ls := range f {
				if ls.errObj != obj {
					continue
				}
				touch()
				if equalityHolds { // err == nil: the verb executed
					ls.errObj = nil
					out[k] = ls
				} else { // err != nil: the verb never executed, no lock taken
					delete(out, k)
				}
			}
		}
		return out
	}

	// Prev refinement: <prevObj> ==/!= <old expression>.
	xs, ys := types.ExprString(ast.Unparen(be.X)), types.ExprString(ast.Unparen(be.Y))
	xo, yo := identUse(la.lp.pass, be.X), identUse(la.lp.pass, be.Y)
	for k, ls := range f {
		if ls.prevObj == nil {
			continue
		}
		hit := (xo == ls.prevObj && ys == ls.oldStr) || (yo == ls.prevObj && xs == ls.oldStr)
		if !hit {
			continue
		}
		touch()
		if equalityHolds { // prev == old: the CAS won
			ls.prevObj = nil
			out[k] = ls
		} else { // prev != old: another writer holds the lock
			delete(out, k)
		}
	}
	return out
}

// solveRegion builds the CFG and runs the lock analysis, returning block-in
// facts (nil when the solver gave up).
func (lp *lockPairedPass) solveRegion(r funcRegion, la *lockAnalysis) (*lint.CFG, map[*lint.Block]any) {
	g := lint.BuildCFG(r.body)
	in, ok := lint.SolveForward(g, la)
	if !ok {
		return nil, nil
	}
	return g, in
}

// replay folds the transfer function over each block from its solved in-fact
// so that la.report sees the exact fact at each return statement.
func replayBlocks(g *lint.CFG, in map[*lint.Block]any, la *lockAnalysis) {
	for _, b := range g.Blocks {
		fact, reached := in[b]
		if !reached {
			continue
		}
		for _, n := range b.Nodes {
			fact = la.Transfer(fact, n)
		}
	}
}

// discoverAcquirers runs the analysis over every function declaration and
// records those that still hold a must-held lock at a nil-error return.
// Reports true when the acquirer set grew.
func (lp *lockPairedPass) discoverAcquirers(files []*ast.File) bool {
	grew := false
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := lp.pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if _, known := lp.acquirers[fn]; known {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if !errorLastResult(sig) {
				continue
			}
			info, isAcq := lp.acquirerShape(fd, sig)
			if isAcq {
				lp.acquirers[fn] = info
				grew = true
			}
		}
	}
	return grew
}

// acquirerShape analyzes one declaration and, when a nil-error return leaves
// a must-held lock whose key is a parameter or returned pointer, reports the
// acquirer info.
func (lp *lockPairedPass) acquirerShape(fd *ast.FuncDecl, sig *types.Signature) (acquirerInfo, bool) {
	la := &lockAnalysis{lp: lp, closures: lp.scanClosures(fd.Body)}
	g, in := lp.solveRegion(funcRegion{name: fd.Name.Name, sig: sig, body: fd.Body}, la)
	if g == nil {
		return acquirerInfo{}, false
	}
	found := acquirerInfo{resultIdx: -1, paramIdx: -1}
	ok := false
	la.report = func(fact lockFact, ret *ast.ReturnStmt) {
		if len(ret.Results) == 0 || !isNilExpr(lp.pass, ret.Results[len(ret.Results)-1]) {
			return
		}
		for key, ls := range fact {
			if !ls.must || ls.pending() {
				continue
			}
			for i, res := range ret.Results {
				if types.ExprString(ast.Unparen(res)) == key && isRemotePtr(lp.pass, lp.pass.TypeOf(res)) {
					found.resultIdx = i
					ok = true
				}
			}
			params := sig.Params()
			for i := 0; i < params.Len(); i++ {
				if params.At(i).Name() == key && isRemotePtr(lp.pass, params.At(i).Type()) {
					if found.paramIdx < 0 {
						found.paramIdx = i
					}
					ok = true
				}
			}
		}
	}
	replayBlocks(g, in, la)
	return found, ok
}

// checkRegion reports leaked locks at the error returns of one function.
func (lp *lockPairedPass) checkRegion(r funcRegion) {
	if !errorLastResult(r.sig) {
		return
	}
	la := &lockAnalysis{lp: lp, closures: lp.scanClosures(r.body)}
	g, in := lp.solveRegion(r, la)
	if g == nil {
		return
	}
	la.report = func(fact lockFact, ret *ast.ReturnStmt) {
		if len(ret.Results) == 0 || isNilExpr(lp.pass, ret.Results[len(ret.Results)-1]) {
			return
		}
		var leaked []string
		for key, ls := range fact {
			if ls.must && !ls.pending() {
				leaked = append(leaked, key)
			}
		}
		if len(leaked) == 0 {
			return
		}
		lp.pass.Reportf(ret.Pos(),
			"page lock on %s is still held on this error-return path: every writer and reader of the page will spin until its budget aborts; release it (unlockBump / unlockNoChange / abortUnlock) before returning",
			strings.Join(sortedKeys(leaked), ", "))
	}
	replayBlocks(g, in, la)
}

func sortedKeys(ks []string) []string {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return ks
}
