package rdmavet

import (
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// DefaultNopEnvScope covers the packages whose code runs (also) on simulated
// server CPUs and must account work through rdma.Env.Charge.
var DefaultNopEnvScope = Scope{Deny: protocolPackages}

// NewNopEnv builds the nopenv analyzer.
//
// On the simulated fabric every handler and protocol step charges its CPU
// cost through rdma.Env, which advances virtual time while occupying a
// handler core — that is the calibrated cost model the paper's simulated
// experiments rest on. rdma.NopEnv performs no accounting; it is meant for
// real-time transports and untimed setup paths. If a NopEnv leaks into
// timed protocol code, that code executes for free in simulated time and
// every downstream measurement is quietly wrong.
//
// The analyzer flags every reference to the rdma.NopEnv type inside
// protocol packages. Tests are exempt by construction (the loader only
// analyzes non-test files); legitimate untimed paths — bulk build,
// bootstrap, invariant checks — carry a //rdmavet:allow nopenv annotation
// with a one-line justification.
func NewNopEnv(scope Scope) *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "nopenv",
		Doc:  "rdma.NopEnv only in setup/build paths and tests, never in timed handler code",
	}
	a.Run = func(pass *lint.Pass) error {
		if !scope.Match(pass.RelPath()) {
			return nil
		}
		rdmaPkg := rdmaPath(pass)
		for id, obj := range pass.Info.Uses {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.Pkg() == nil || tn.Pkg().Path() != rdmaPkg || tn.Name() != "NopEnv" {
				continue
			}
			pass.Reportf(id.Pos(),
				"rdma.NopEnv in protocol package %s: timed code must account CPU via its rdma.Env (annotate untimed setup/build paths with //rdmavet:allow nopenv -- reason)",
				pass.RelPath())
		}
		return nil
	}
	return a
}
