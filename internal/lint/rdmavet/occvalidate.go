package rdmavet

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// DefaultOCCValidateScope covers the packages consuming raw page copies.
var DefaultOCCValidateScope = Scope{Deny: protocolPackages}

// occvalidate enforces the optimistic-read discipline (Listing 2 of the
// paper): a page copy fetched from remote memory is a *candidate* snapshot
// until its version word is revalidated — re-read after the copy, unlocked,
// and equal to the copy's own first word. A copy that escapes the reading
// function before that check can be torn (a concurrent writer was mid-WRITE)
// and nothing at runtime will ever notice: the remote CPU is passive and the
// bytes look fine.
//
// The analysis taints the destination buffer of every raw read verb
// (Mem.ReadWords / Mem.ReadPages, Endpoint.Read / Endpoint.ReadMulti,
// AsyncEndpoint.PostRead) and tracks the taint through the lint CFG. Taint
// is cleared on branch edges where validation is known to hold:
//
//   - the ok-true edge of Mem.ReadValidated's ok result (the fused
//     read+validate verb);
//   - the equality-holds edge of any ==/!= comparison against
//     layout.BufVersion(buf) — directly or through a variable bound to it
//     (v := layout.BufVersion(buf); ... vers[i] != v);
//   - the ok-true edge of a same-package validator helper: a function whose
//     last result is bool and whose body compares layout.BufVersion of a
//     parameter (btree's validated()).
//
// A diagnostic fires where still-tainted data escapes: returned (in a
// non-error, non-scalar position), written back to remote memory
// (Write/WriteWords/PostWrite), stored into a struct field or package
// variable, or sent on a channel. Purely local inspection of a tainted copy
// is legal — that is exactly how the validation code itself must work.
//
// Taint lives on identifier objects; buffers reached only through fields or
// index expressions are not tracked (the EndpointMem scratch-buffer pattern
// validates internally and stays clean by construction).
func NewOCCValidate(scope Scope) *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "occvalidate",
		Doc:  "a raw page copy must be version-validated before it escapes",
	}
	a.Run = func(pass *lint.Pass) error {
		if !scope.Match(pass.RelPath()) {
			return nil
		}
		memIf, epIf := memIface(pass), endpointIface(pass)
		asyncIf := pass.Interface(rdmaPath(pass), "AsyncEndpoint")
		if memIf == nil && epIf == nil {
			return nil
		}
		op := &occPass{pass: pass, memIf: memIf, epIf: epIf, asyncIf: asyncIf}
		op.findValidators()
		for _, r := range funcRegions(pass) {
			op.checkRegion(r)
		}
		return nil
	}
	return a
}

type occPass struct {
	pass       *lint.Pass
	memIf      *types.Interface
	epIf       *types.Interface
	asyncIf    *types.Interface
	validators map[*types.Func]bool
}

// findValidators collects same-package helpers that encapsulate the version
// check: last result bool, body comparing layout.BufVersion(...) with ==/!=.
func (op *occPass) findValidators() {
	op.validators = map[*types.Func]bool{}
	for _, f := range op.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := op.pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			res := sig.Results()
			if res.Len() == 0 || !types.Identical(res.At(res.Len()-1).Type(), types.Typ[types.Bool]) {
				continue
			}
			compares := false
			inspectShallow(fd.Body, func(n ast.Node) bool {
				be, isBin := n.(*ast.BinaryExpr)
				if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if _, isBV := layoutCall(op.pass, be.X, "BufVersion"); isBV {
					compares = true
				}
				if _, isBV := layoutCall(op.pass, be.Y, "BufVersion"); isBV {
					compares = true
				}
				return true
			})
			if compares {
				op.validators[fn] = true
			}
		}
	}
}

// occFact is the taint state: tainted buffer objects with the verb that
// produced them, ok-variables guarding sets of buffers, and version
// variables bound to layout.BufVersion(buffer).
type occFact struct {
	tainted map[types.Object]string        // buffer -> source verb name
	guards  map[types.Object][]types.Object // ok var -> buffers it validates
	vers    map[types.Object]types.Object   // version var -> buffer sampled
}

func newOccFact() occFact {
	return occFact{
		tainted: map[types.Object]string{},
		guards:  map[types.Object][]types.Object{},
		vers:    map[types.Object]types.Object{},
	}
}

func (f occFact) clone() occFact {
	out := newOccFact()
	for k, v := range f.tainted {
		out.tainted[k] = v
	}
	for k, v := range f.guards {
		out.guards[k] = v
	}
	for k, v := range f.vers {
		out.vers[k] = v
	}
	return out
}

type occAnalysis struct {
	op     *occPass
	report func(pos ast.Node, source, how string)
}

func (oa *occAnalysis) Entry() any { return newOccFact() }

func (oa *occAnalysis) Equal(a, b any) bool {
	af, bf := a.(occFact), b.(occFact)
	if len(af.tainted) != len(bf.tainted) || len(af.guards) != len(bf.guards) || len(af.vers) != len(bf.vers) {
		return false
	}
	for k, v := range af.tainted {
		if bf.tainted[k] != v {
			return false
		}
	}
	for k, v := range af.vers {
		if bf.vers[k] != v {
			return false
		}
	}
	for k, v := range af.guards {
		bv, ok := bf.guards[k]
		if !ok || len(bv) != len(v) {
			return false
		}
		for i := range v {
			if v[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// Join is a may-taint union: tainted on either path means unvalidated on
// some path, which is exactly what must not escape.
func (oa *occAnalysis) Join(a, b any) any {
	af, bf := a.(occFact), b.(occFact)
	out := af.clone()
	for k, v := range bf.tainted {
		if _, ok := out.tainted[k]; !ok {
			out.tainted[k] = v
		}
	}
	for k, v := range bf.guards {
		if _, ok := out.guards[k]; !ok {
			out.guards[k] = v
		}
	}
	for k, v := range bf.vers {
		if _, ok := out.vers[k]; !ok {
			out.vers[k] = v
		}
	}
	return out
}

// taintedRootOf returns the tainted object that e mentions, if any.
func (oa *occAnalysis) taintedRootOf(f occFact, e ast.Expr) (types.Object, string, bool) {
	for obj, src := range f.tainted {
		if refersTo(oa.op.pass, e, obj) {
			return obj, src, true
		}
	}
	return nil, "", false
}

// isEscapeCapable reports whether a returned expression of this type can
// carry page data out of the function: errors and scalar values cannot.
func (oa *occAnalysis) isEscapeCapable(e ast.Expr) bool {
	t := oa.op.pass.TypeOf(e)
	if t == nil {
		return false
	}
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return false
	}
	_, basic := t.Underlying().(*types.Basic)
	return !basic
}

func (oa *occAnalysis) Transfer(fact any, n ast.Node) any {
	op := oa.op
	out := fact.(occFact)
	cloned := false
	touch := func() {
		if !cloned {
			out, cloned = out.clone(), true
		}
	}

	// Escapes and raw-read sources anywhere in the node.
	inspectShallow(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, recvType, name, isM := methodCall(op.pass, call)
		if !isM {
			return true
		}
		switch {
		case (name == "ReadWords" || name == "ReadPages") && implementsIface(recvType, op.memIf),
			(name == "Read" || name == "ReadMulti") && implementsIface(recvType, op.epIf),
			name == "PostRead" && implementsIface(recvType, op.asyncIf):
			if len(call.Args) >= 2 {
				if obj := identUse(op.pass, call.Args[1]); obj != nil {
					touch()
					out.tainted[obj] = name
				}
			}
		case (name == "WriteWords" && implementsIface(recvType, op.memIf)) ||
			(name == "Write" && implementsIface(recvType, op.epIf)) ||
			(name == "PostWrite" && implementsIface(recvType, op.asyncIf)):
			if len(call.Args) >= 2 {
				if _, src, hit := oa.taintedRootOf(out, call.Args[1]); hit && oa.report != nil {
					oa.report(call, src, "written back to remote memory")
				}
			}
		}
		return true
	})

	switch n := n.(type) {
	case *ast.ReturnStmt:
		if oa.report != nil {
			for _, res := range n.Results {
				if !oa.isEscapeCapable(res) {
					continue
				}
				if _, src, hit := oa.taintedRootOf(out, res); hit {
					oa.report(n, src, "returned to the caller")
				}
			}
		}
	case *ast.SendStmt:
		if oa.report != nil {
			if _, src, hit := oa.taintedRootOf(out, n.Value); hit {
				oa.report(n, src, "sent on a channel")
			}
		}
	case *ast.AssignStmt:
		oa.transferAssign(&out, touch, n)
	}
	return out
}

// transferAssign handles taint introduction (ReadValidated, validator
// helpers), propagation, clearing and field-store escapes.
func (oa *occAnalysis) transferAssign(out *occFact, touch func(), n *ast.AssignStmt) {
	op := oa.op

	// Single-call RHS: bind validation guards.
	if len(n.Rhs) == 1 {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			_, recvType, name, isM := methodCall(op.pass, call)
			if isM && name == "ReadValidated" && implementsIface(recvType, op.memIf) && len(call.Args) >= 2 && len(n.Lhs) == 3 {
				// v, ok, err := m.ReadValidated(p, buf): buf is tainted, ok
				// guards it, v is its version sample.
				if buf := identUse(op.pass, call.Args[1]); buf != nil {
					touch()
					(*out).tainted[buf] = name
					if okObj := identDefOrUse(op.pass, n.Lhs[1]); okObj != nil {
						(*out).guards[okObj] = []types.Object{buf}
					}
					if vObj := identDefOrUse(op.pass, n.Lhs[0]); vObj != nil {
						(*out).vers[vObj] = buf
					}
				}
				return
			}
			if fn := lint.StaticCallee(op.pass.Info, call); fn != nil && op.validators[fn] && len(n.Lhs) > 0 {
				// ver, ok := validated(v, buf): ok guards every tainted
				// buffer mentioned by the arguments (directly or via a bound
				// version variable).
				var guarded []types.Object
				for _, arg := range call.Args {
					if obj, _, hit := oa.taintedRootOf(*out, arg); hit {
						guarded = append(guarded, obj)
					}
					if vObj := identUse(op.pass, arg); vObj != nil {
						if buf, ok := (*out).vers[vObj]; ok {
							guarded = append(guarded, buf)
						}
					}
				}
				if okObj := identDefOrUse(op.pass, n.Lhs[len(n.Lhs)-1]); okObj != nil && len(guarded) > 0 {
					touch()
					(*out).guards[okObj] = guarded
				}
				return
			}
		}
	}

	// Element-wise assignments: propagation, version binding, clearing.
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		rhs := n.Rhs[i]

		// v := layout.BufVersion(buf) binds v as buf's version sample.
		if bv, isBV := layoutCall(op.pass, rhs, "BufVersion"); isBV && len(bv.Args) == 1 {
			if buf, _, hit := oa.taintedRootOf(*out, bv.Args[0]); hit {
				if vObj := identDefOrUse(op.pass, lhs); vObj != nil {
					touch()
					(*out).vers[vObj] = buf
				}
				continue
			}
		}

		_, src, rhsTainted := oa.taintedRootOf(*out, rhs)
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := identDefOrUse(op.pass, l)
			if obj == nil {
				continue
			}
			if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				// Package-level variable: outlives the function.
				if rhsTainted && oa.report != nil {
					oa.report(n, src, "stored into a field or package variable")
				}
				continue
			}
			if rhsTainted {
				// Taint flows into aliasing locals (slices, wrapped nodes)
				// but not into scalars extracted from the copy.
				if _, basic := obj.Type().Underlying().(*types.Basic); !basic {
					touch()
					(*out).tainted[obj] = src
				}
			} else if _, was := (*out).tainted[obj]; was {
				touch()
				delete((*out).tainted, obj)
			}
		case *ast.SelectorExpr:
			// Field of a struct (or a qualified package variable): the copy
			// outlives the frame that was supposed to validate it.
			if rhsTainted && oa.report != nil {
				oa.report(n, src, "stored into a field or package variable")
			}
		}
	}
}

// EdgeTransfer clears taint on edges where validation is known to hold.
func (oa *occAnalysis) EdgeTransfer(fact any, cond ast.Expr, neg bool) any {
	op := oa.op
	f := fact.(occFact)
	out, cloned := f, false
	sanitize := func(buf types.Object) {
		if _, ok := out.tainted[buf]; !ok {
			return
		}
		if !cloned {
			out, cloned = out.clone(), true
		}
		delete(out.tainted, buf)
	}

	switch c := ast.Unparen(cond).(type) {
	case *ast.Ident:
		// ok-true edge of a guard variable.
		if neg {
			return out
		}
		if obj := identUse(op.pass, c); obj != nil {
			for _, buf := range f.guards[obj] {
				sanitize(buf)
			}
		}
	case *ast.UnaryExpr:
		// !ok: the false edge of the negation is the ok-true edge.
		if c.Op != token.NOT || !neg {
			return out
		}
		if obj := identUse(op.pass, c.X); obj != nil {
			for _, buf := range f.guards[obj] {
				sanitize(buf)
			}
		}
	case *ast.BinaryExpr:
		if c.Op != token.EQL && c.Op != token.NEQ {
			return out
		}
		equalityHolds := (c.Op == token.EQL) != neg
		if !equalityHolds {
			return out
		}
		// Comparison against BufVersion(buf) or a bound version variable.
		for _, side := range []ast.Expr{c.X, c.Y} {
			if bv, isBV := layoutCall(op.pass, side, "BufVersion"); isBV && len(bv.Args) == 1 {
				if buf, _, hit := oa.taintedRootOf(f, bv.Args[0]); hit {
					sanitize(buf)
				}
			}
			if vObj := identUse(op.pass, side); vObj != nil {
				if buf, ok := f.vers[vObj]; ok {
					sanitize(buf)
				}
			}
		}
	}
	return out
}

// checkRegion solves the taint analysis over one function and replays it
// with reporting enabled.
func (op *occPass) checkRegion(r funcRegion) {
	oa := &occAnalysis{op: op}
	g := lint.BuildCFG(r.body)
	in, ok := lint.SolveForward(g, oa)
	if !ok {
		return
	}
	oa.report = func(at ast.Node, source, how string) {
		op.pass.Reportf(at.Pos(),
			"page copy from %s is %s without version validation: a concurrent writer can tear it and nothing at runtime will notice; check layout.BufVersion/IsLocked (or use ReadValidated's ok) first",
			source, how)
	}
	for _, b := range g.Blocks {
		fact, reached := in[b]
		if !reached {
			continue
		}
		for _, n := range b.Nodes {
			fact = oa.Transfer(fact, n)
		}
	}
}
