// Package rdmavet is the static-analysis suite enforcing the verbs-protocol
// invariants of this repository. The index protocols (Listings 1-4 of the
// paper) are correct only under contracts the Go compiler cannot check:
//
//   - an ibverbs CompareAndSwap reports success only through its returned
//     prior value — ignoring it silently drops lock-acquire failures
//     (caschecked);
//   - an rdma.Endpoint is owned by exactly one compute thread
//     (endpointshare);
//   - code running under simnet's discrete-event clock must never read the
//     wall clock (wallclock);
//   - verb errors carry RNR/retry conditions and must not be discarded
//     (verberrs);
//   - the word layout of index pages is owned by internal/layout
//     (layoutwords);
//   - server-side handler code must account CPU through its rdma.Env, so
//     rdma.NopEnv{} may not leak into timed protocol paths (nopenv);
//   - transient verb failures are retried by the shared policy in
//     internal/rdma/retry, never by hand-rolled loops in client code
//     (retrynaked);
//   - on the non-blocking surface, a posted verb's outcome exists only as a
//     Completion, so every Post* must be paired with a Poll that reaps it
//     (completionleak).
//
// Three further analyzers are flow-sensitive: they run per function over the
// lint package's CFG and dataflow solver, so they can distinguish paths the
// syntactic checks above cannot:
//
//   - an acquired page lock — CAS(p, v, layout.WithLock(v)) — must be
//     released on every error-return path; a leaked lock bit stalls every
//     future writer and spins every reader of the page (lockpaired);
//   - a raw page copy read from remote memory is a candidate snapshot until
//     its version word is revalidated, and must not escape — returned,
//     written back, stored, or sent — before that check (occvalidate);
//   - an async Token follows posted -> Flush -> Poll, and every token of a
//     superseded batch dies on a traversal Redo/Abort (tokenflow).
//
// One-sided RDMA designs make these contracts load-bearing: the remote CPU
// never validates a request, so nothing at runtime catches a client that
// ignores a CAS result or tears a page layout. rdmavet moves the contracts
// from doc comments into machine-checked diagnostics.
//
// Run the suite with `go run ./cmd/rdmavet ./...`. Intentional exceptions
// are annotated in place:
//
//	//rdmavet:allow <analyzer> -- <one-line justification>
package rdmavet

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/namdb/rdmatree/internal/lint"
)

// Scope restricts an analyzer to module-relative package path prefixes.
// A package is in scope when it matches a Deny prefix and no Allow prefix
// (Allow carves exceptions out of broader Deny entries).
type Scope struct {
	Deny  []string
	Allow []string
}

// Match reports whether the module-relative package path is in scope.
func (s Scope) Match(rel string) bool {
	return matchPrefix(s.Deny, rel) && !matchPrefix(s.Allow, rel)
}

func matchPrefix(prefixes []string, rel string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// protocolPackages are the packages executing the paper's index protocols:
// the scope of the layout- and environment-ownership analyzers.
var protocolPackages = []string{
	"internal/btree",
	"internal/core",
	"internal/cache",
	"internal/bench",
}

// Suite returns the default rdmavet analyzer suite as run by cmd/rdmavet.
func Suite() []*lint.Analyzer {
	return []*lint.Analyzer{
		NewCASChecked(),
		NewEndpointShare(),
		NewWallclock(DefaultWallclockScope),
		NewVerbErrs(),
		NewLayoutWords(DefaultLayoutWordsScope),
		NewNopEnv(DefaultNopEnvScope),
		NewRetryNaked(DefaultRetryNakedScope),
		NewCompletionLeak(),
		NewLockPaired(DefaultLockPairedScope),
		NewOCCValidate(DefaultOCCValidateScope),
		NewTokenFlow(),
	}
}

// rdmaPath returns the import path of the rdma verbs package within the
// analyzed module.
func rdmaPath(pass *lint.Pass) string { return pass.ModulePath + "/internal/rdma" }

// btreePath returns the import path of the tree engine package.
func btreePath(pass *lint.Pass) string { return pass.ModulePath + "/internal/btree" }

// endpointIface resolves the rdma.Endpoint interface (nil when the module
// under analysis does not define it).
func endpointIface(pass *lint.Pass) *types.Interface {
	return pass.Interface(rdmaPath(pass), "Endpoint")
}

// memIface resolves the btree.Mem interface.
func memIface(pass *lint.Pass) *types.Interface {
	return pass.Interface(btreePath(pass), "Mem")
}

// implementsIface reports whether t (or *t) satisfies the interface.
func implementsIface(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}

// isNamed reports whether t is (a pointer to) the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// methodCall decomposes call into (receiver expression, receiver type,
// method name). ok is false for plain function and package-qualified calls.
func methodCall(pass *lint.Pass, call *ast.CallExpr) (recv ast.Expr, recvType types.Type, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, "", false
	}
	if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
		if _, isPkg := pass.Info.Uses[id].(*types.PkgName); isPkg {
			return nil, nil, "", false
		}
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return nil, nil, "", false
	}
	return sel.X, t, sel.Sel.Name, true
}

// walkStack traverses every top-level declaration of every file, calling fn
// with each node and the stack of its ancestors (outermost first, not
// including the node itself).
func walkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// parentOf returns the nearest ancestor that is not a ParenExpr.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, isParen := stack[i].(*ast.ParenExpr); isParen {
			continue
		}
		return stack[i]
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// sameObject reports whether the identifier resolves to obj.
func sameObject(pass *lint.Pass, id *ast.Ident, obj types.Object) bool {
	if obj == nil {
		return false
	}
	if u, ok := pass.Info.Uses[id]; ok && u == obj {
		return true
	}
	if d, ok := pass.Info.Defs[id]; ok && d == obj {
		return true
	}
	return false
}
