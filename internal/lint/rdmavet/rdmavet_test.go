package rdmavet_test

import (
	"testing"

	"github.com/namdb/rdmatree/internal/lint"
	"github.com/namdb/rdmatree/internal/lint/linttest"
	"github.com/namdb/rdmatree/internal/lint/rdmavet"
)

// fixtureScope puts the synthetic fixture packages in scope of the
// scope-gated analyzers (their default scopes name real module packages).
var fixtureScope = rdmavet.Scope{Deny: []string{"fixture"}}

func TestCASChecked(t *testing.T) {
	linttest.Run(t, "testdata/caschecked", "fixture/caschecked", rdmavet.NewCASChecked())
}

func TestEndpointShare(t *testing.T) {
	linttest.Run(t, "testdata/endpointshare", "fixture/endpointshare", rdmavet.NewEndpointShare())
}

func TestWallclock(t *testing.T) {
	linttest.Run(t, "testdata/wallclock", "fixture/wallclock", rdmavet.NewWallclock(fixtureScope))
}

func TestVerbErrs(t *testing.T) {
	linttest.Run(t, "testdata/verberrs", "fixture/verberrs", rdmavet.NewVerbErrs())
}

func TestLayoutWords(t *testing.T) {
	linttest.Run(t, "testdata/layoutwords", "fixture/layoutwords", rdmavet.NewLayoutWords(fixtureScope))
}

func TestNopEnv(t *testing.T) {
	linttest.Run(t, "testdata/nopenv", "fixture/nopenv", rdmavet.NewNopEnv(fixtureScope))
}

func TestRetryNaked(t *testing.T) {
	linttest.Run(t, "testdata/retrynaked", "fixture/retrynaked", rdmavet.NewRetryNaked(fixtureScope))
}

func TestCompletionLeak(t *testing.T) {
	linttest.Run(t, "testdata/completionleak", "fixture/completionleak", rdmavet.NewCompletionLeak())
}

func TestLockPaired(t *testing.T) {
	linttest.Run(t, "testdata/lockpaired", "fixture/lockpaired", rdmavet.NewLockPaired(fixtureScope))
}

func TestOCCValidate(t *testing.T) {
	linttest.Run(t, "testdata/occvalidate", "fixture/occvalidate", rdmavet.NewOCCValidate(fixtureScope))
}

func TestTokenFlow(t *testing.T) {
	linttest.Run(t, "testdata/tokenflow", "fixture/tokenflow", rdmavet.NewTokenFlow())
}

// TestWallclockOutOfScope pins the scoping mechanism itself: the same
// violating fixture produces no diagnostics when analyzed under the default
// (real-package) scope.
func TestWallclockOutOfScope(t *testing.T) {
	p := linttest.Program(t)
	pi, err := p.LoadDir("testdata/wallclock", "fixture-outofscope/wallclock")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := lint.AnalyzePackage(p, pi, []*lint.Analyzer{
		rdmavet.NewWallclock(rdmavet.DefaultWallclockScope),
	})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", diags)
	}
}

func TestScopeMatch(t *testing.T) {
	s := rdmavet.Scope{
		Deny:  []string{"internal/rdma", "internal/btree"},
		Allow: []string{"internal/rdma/tcpnet"},
	}
	cases := []struct {
		rel  string
		want bool
	}{
		{"internal/rdma", true},
		{"internal/rdma/simnet", true},
		{"internal/rdma/tcpnet", false},     // carved out
		{"internal/rdma/tcpnet/sub", false}, // carve-outs cover subtrees
		{"internal/rdmaother", false},       // prefix match is per path segment
		{"internal/btree", true},
		{"internal/telemetry", false},
		{"cmd/rdmavet", false},
	}
	for _, c := range cases {
		if got := s.Match(c.rel); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.rel, got, c.want)
		}
	}
}

// TestDefaultScopes pins the load-bearing entries of the shipped scopes: the
// virtual-time packages are covered, the real-time transports and the
// telemetry wall clock are not.
func TestDefaultScopes(t *testing.T) {
	w := rdmavet.DefaultWallclockScope
	for _, rel := range []string{"internal/btree", "internal/core/fine", "internal/rdma/simnet", "internal/sim", "internal/bench"} {
		if !w.Match(rel) {
			t.Errorf("wallclock scope must cover %s", rel)
		}
	}
	for _, rel := range []string{"internal/rdma/tcpnet", "internal/rdma/direct", "internal/telemetry", "cmd/namserver", "examples/kvstore"} {
		if w.Match(rel) {
			t.Errorf("wallclock scope must not cover %s", rel)
		}
	}
}

// TestSuite pins the suite composition: CI runs exactly these analyzers.
func TestSuite(t *testing.T) {
	want := []string{"caschecked", "endpointshare", "wallclock", "verberrs", "layoutwords", "nopenv", "retrynaked", "completionleak", "lockpaired", "occvalidate", "tokenflow"}
	suite := rdmavet.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
	}
}
