package rdmavet

import (
	"go/ast"
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// DefaultRetryNakedScope covers the code that issues verbs on behalf of
// clients: the index protocols plus the chaos harness and the command-line
// binaries. The shared policy itself (internal/rdma/retry) and the
// transports live outside these prefixes.
var DefaultRetryNakedScope = Scope{
	Deny: append([]string{
		"internal/chaos",
		"cmd",
	}, protocolPackages...),
}

// transientSentinels are the rdma error variables whose presence in an
// errors.Is test marks a loop as retrying on transient verb failures.
var transientSentinels = map[string]bool{
	"ErrTimeout":    true,
	"ErrQPError":    true,
	"ErrServerDown": true,
}

// NewRetryNaked builds the retrynaked analyzer.
//
// Transient-fault handling lives in internal/rdma/retry: one policy owns the
// backoff bounds, the jitter seeding, the per-verb deadlines and the QP
// re-establishment protocol, and exports every retry through telemetry. A
// hand-rolled loop that re-issues verbs on rdma.IsTransient (or errors.Is
// against the transient sentinels) silently forks that policy: it retries
// unbounded or unjittered, skips reconnects, and its retries are invisible
// to the fault counters. The analyzer flags any for-loop in client code that
// both issues a verb and tests error transience — the signature of a naked
// retry loop. (Loops that re-issue verbs for protocol reasons — optimistic
// read validation, lock acquisition — never test transience and stay legal.)
// The rare principled exception carries an //rdmavet:allow retrynaked
// annotation, like the tree engine's unlock-completion loop.
func NewRetryNaked(scope Scope) *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "retrynaked",
		Doc:  "no hand-rolled verb retry loops outside the shared retry policy (internal/rdma/retry)",
	}
	a.Run = func(pass *lint.Pass) error {
		if !scope.Match(pass.RelPath()) {
			return nil
		}
		epIface := endpointIface(pass)
		mIface := memIface(pass)

		// issuesVerb reports whether the subtree contains an Endpoint or
		// btree.Mem verb call.
		issuesVerb := func(body ast.Node) bool {
			found := false
			ast.Inspect(body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				_, recvType, name, ok := methodCall(pass, call)
				if !ok {
					return true
				}
				if endpointVerbs[name] && implementsIface(recvType, epIface) {
					found = true
				}
				if memVerbs[name] && implementsIface(recvType, mIface) {
					found = true
				}
				return !found
			})
			return found
		}

		// testsTransience reports whether the subtree classifies an error as
		// transient: rdma.IsTransient(err) or errors.Is(err, rdma.Err...).
		testsTransience := func(body ast.Node) bool {
			found := false
			ast.Inspect(body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == rdmaPath(pass) && fn.Name() == "IsTransient":
					found = true
				case fn.Pkg().Path() == "errors" && fn.Name() == "Is" && len(call.Args) == 2:
					if target, ok := ast.Unparen(call.Args[1]).(*ast.SelectorExpr); ok {
						if v, ok := pass.Info.Uses[target.Sel].(*types.Var); ok &&
							v.Pkg() != nil && v.Pkg().Path() == rdmaPath(pass) && transientSentinels[v.Name()] {
							found = true
						}
					}
				}
				return !found
			})
			return found
		}

		loopBody := func(n ast.Node) *ast.BlockStmt {
			switch l := n.(type) {
			case *ast.ForStmt:
				return l.Body
			case *ast.RangeStmt:
				return l.Body
			}
			return nil
		}
		// naked reports whether the loop body itself hand-rolls a retry. The
		// check recurses so an outer loop is not blamed for an inner loop's
		// violation (the inner loop gets its own diagnostic).
		naked := func(body *ast.BlockStmt) bool {
			inner := false
			ast.Inspect(body, func(n ast.Node) bool {
				if b := loopBody(n); b != nil && issuesVerb(b) && testsTransience(b) {
					inner = true
				}
				return !inner
			})
			if inner {
				return false
			}
			return issuesVerb(body) && testsTransience(body)
		}

		walkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
			body := loopBody(n)
			if body == nil || !naked(body) {
				return
			}
			pass.Reportf(n.Pos(),
				"loop re-issues verbs on transient errors: a hand-rolled retry bypasses the shared retry policy (use internal/rdma/retry, which owns backoff, reconnects and telemetry)")
		})
		return nil
	}
	return a
}
