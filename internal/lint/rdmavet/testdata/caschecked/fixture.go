// Fixture for the caschecked analyzer: the first result of a verbs CAS
// (the observed prior value) must be compared against the old argument,
// returned to the caller, or explicitly allowed.
package fixture

import (
	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/rdma"
)

// lockAcquire is the Listing-3 idiom: CAS the lock bit, compare the prior
// value against the expected version.
func lockAcquire(ep rdma.Endpoint, p rdma.RemotePtr, v uint64) (bool, error) {
	prev, err := ep.CompareAndSwap(p, v, v|1) // ok: prev compared below
	if err != nil {
		return false, err
	}
	return prev == v, nil
}

// wrapper propagates the prior value; the caller is responsible (and is
// itself checked at its own call site).
func wrapper(ep rdma.Endpoint, p rdma.RemotePtr, old, new uint64) (uint64, error) {
	return ep.CompareAndSwap(p, old, new) // ok: returned to caller
}

func discardedBlank(ep rdma.Endpoint, p rdma.RemotePtr, v uint64) {
	_, _ = ep.CompareAndSwap(p, v, v|1) // want "not compared against the old argument"
}

func assignedNeverCompared(ep rdma.Endpoint, p rdma.RemotePtr, v uint64) uint64 {
	prev, _ := ep.CompareAndSwap(p, v, v|1) // want "not compared against the old argument"
	return prev + 1                         // arithmetic is not a success check
}

func memCASDropped(m btree.Mem, p rdma.RemotePtr, v uint64) {
	_, _ = m.CAS(p, v, v|1) // want "not compared against the old argument"
}

func memCASChecked(m btree.Mem, p rdma.RemotePtr, v uint64) error {
	prev, err := m.CAS(p, v, v|1) // ok: compared
	if err != nil {
		return err
	}
	if prev != v {
		return nil
	}
	return nil
}

func regionInline(r *rdma.Region, old uint64) bool {
	return r.CompareAndSwap(8, old, old+1) == old // ok: inline comparison
}

func regionDropped(r *rdma.Region, old uint64) {
	r.CompareAndSwap(8, old, old+1) // want "not compared against the old argument"
}

func allowedRelay(ep rdma.Endpoint, p rdma.RemotePtr, v uint64) uint64 {
	prev, _ := ep.CompareAndSwap(p, v, v|1) //rdmavet:allow caschecked -- fixture: prior value is relayed to a remote comparer
	return prev * 2
}
