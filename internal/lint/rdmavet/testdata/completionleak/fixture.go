// Fixture for the completionleak analyzer: every posted verb's completion
// must be reaped by Poll on all paths.
package fixture

import (
	"github.com/namdb/rdmatree/internal/rdma"
)

func leakSinglePost(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) {
	ep.PostRead(p, dst) // want "completion of PostRead is never polled"
}

func leakFlushedBatch(ep rdma.AsyncEndpoint, p rdma.RemotePtr, src []uint64) {
	// Flush only rings the doorbell; the batch's completions still leak.
	ep.PostWrite(p, src) // want "completion of PostWrite is never polled"
	ep.PostCAS(p, 0, 1)  // want "completion of PostCAS is never polled"
	ep.Flush()
}

func leakTokenKept(ep rdma.AsyncEndpoint, p rdma.RemotePtr) rdma.Token {
	// Holding the token does not consume the completion.
	return ep.PostFetchAdd(p, 1) // want "completion of PostFetchAdd is never polled"
}

func leakCall(ep rdma.AsyncEndpoint, server int, req []byte) {
	_ = ep.PostCall(server, req) // want "completion of PostCall is never polled"
}

func okPolled(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) error {
	ep.PostRead(p, dst)
	ep.Flush()
	comps := ep.Poll(nil)
	return comps[0].Err
}

func okPolledInLoop(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) {
	var comps []rdma.Completion
	for i := 0; i < 4; i++ {
		ep.PostRead(p, dst)
		ep.Flush()
		comps = ep.Poll(comps[:0])
	}
	_ = comps
}

func okClosureSharesOwner(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) {
	post := func() { ep.PostRead(p, dst) }
	post()
	ep.Flush()
	_ = ep.Poll(nil)
}

func okEscapesAsArgument(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) {
	// Whoever received the endpoint owns the outstanding completions.
	ep.PostRead(p, dst)
	drain(ep)
}

func okEscapesByReturn(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) rdma.AsyncEndpoint {
	ep.PostRead(p, dst)
	return ep
}

func okEscapesIntoStruct(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) *ring {
	ep.PostRead(p, dst)
	return &ring{ep: ep}
}

type ring struct {
	ep rdma.AsyncEndpoint
}

// okFieldReceiver posts on a struct field: posting and polling are split
// across methods of the owning object, tied together by single-owner
// discipline (the pipelined engine's shape).
func (r *ring) okFieldReceiver(p rdma.RemotePtr, dst []uint64) {
	r.ep.PostRead(p, dst)
	r.ep.Flush()
}

func (r *ring) pump(out []rdma.Completion) []rdma.Completion {
	return r.ep.Poll(out)
}

func allowedFireAndForget(ep rdma.AsyncEndpoint, p rdma.RemotePtr, src []uint64) {
	ep.PostWrite(p, src) //rdmavet:allow completionleak -- fixture: endpoint is torn down right after, completions reaped by Close
}

func drain(ep rdma.AsyncEndpoint) {
	_ = ep.Poll(nil)
}
