// Fixture for the endpointshare analyzer: an rdma.Endpoint is owned by one
// goroutine and must not cross a goroutine boundary.
package fixture

import "github.com/namdb/rdmatree/internal/rdma"

func spawnCapture(ep rdma.Endpoint) {
	go func() {
		_ = ep.NumServers() // want "captured by a goroutine"
	}()
}

func spawnArg(ep rdma.Endpoint, worker func(rdma.Endpoint)) {
	go worker(ep) // want "passed to a goroutine"
}

func spawnMethod(ep rdma.Endpoint, p rdma.RemotePtr, dst []uint64) {
	go ep.Read(p, dst) // want "method launched on a new goroutine"
}

func channelSend(ch chan rdma.Endpoint, ep rdma.Endpoint) {
	ch <- ep // want "sent on a channel"
}

func nestedCapture(ep rdma.Endpoint) {
	go func() {
		f := func() int {
			return ep.NumServers() // want "captured by a goroutine"
		}
		_ = f()
	}()
}

// okCreateInside is the sanctioned pattern: every goroutine dials or is
// handed its own endpoint at birth and remains its sole owner.
func okCreateInside(mk func() rdma.Endpoint) {
	go func() {
		ep := mk()
		_ = ep.NumServers()
	}()
}

// okSameGoroutine: plain use in the owning goroutine is fine.
func okSameGoroutine(ep rdma.Endpoint) int {
	return ep.NumServers()
}

func allowedTransfer(ep rdma.Endpoint) {
	go func() {
		_ = ep.NumServers() //rdmavet:allow endpointshare -- fixture: caller hands ownership to exactly this goroutine and never touches ep again
	}()
}
