// Fixture for the layoutwords analyzer: raw page buffers may only be
// decoded through the internal/layout codec.
package fixture

import (
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

func peekVersion(buf []uint64) uint64 {
	return buf[0] // want "constant index 0 into \[\]uint64"
}

func peekMeta(page []uint64) uint64 {
	return page[1] // want "constant index 1 into \[\]uint64"
}

func pokeHighKey(page []uint64) {
	page[2] = 7 // want "constant index 2 into \[\]uint64"
}

func keyAlias(ks []layout.Key) layout.Key {
	return ks[0] // want "constant index 0 into \[\]uint64"
}

func okComputed(buf []uint64, i int) uint64 {
	return buf[i] // computed index: bounds are the caller's problem, not a layout hazard
}

func okCodec(buf []uint64) uint64 {
	return layout.BufVersion(buf)
}

func okNode(l layout.Layout, buf []uint64) uint64 {
	return l.Wrap(buf).HighKey()
}

func okDefinedElem(ptrs []rdma.RemotePtr) rdma.RemotePtr {
	return ptrs[0] // []RemotePtr is not a raw page buffer
}

func allowedNotAPage(histogram []uint64) uint64 {
	return histogram[0] //rdmavet:allow layoutwords -- fixture: plain counter slice, not a page buffer
}
