// Fixture for the lockpaired analyzer: an acquired page lock must be
// released on every error-return path.
package fixture

import (
	"errors"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

var errBoom = errors.New("boom")

// Raw acquire, leaked on the write-error path.
func leakRawAcquire(m btree.Mem, p rdma.RemotePtr, v uint64, body []uint64) error {
	prev, err := m.CAS(p, v, layout.WithLock(v))
	if err != nil {
		return err // the CAS verb failed: no lock was taken
	}
	if prev != v {
		return nil // lost the race: no lock was taken
	}
	if err := m.WriteWords(p, body); err != nil {
		return err // want "page lock on p is still held"
	}
	_, err = m.FetchAdd(p, 1)
	return err
}

// The Endpoint surface carries the same protocol.
func leakEndpointAcquire(ep rdma.Endpoint, p rdma.RemotePtr, v uint64) error {
	prev, err := ep.CompareAndSwap(p, v, layout.WithLock(v))
	if err != nil {
		return err
	}
	if prev != v {
		return nil
	}
	return errBoom // want "page lock on p is still held"
}

// lockPage is discovered as an acquirer: its nil-error return holds the lock
// on its pointer argument.
func lockPage(m btree.Mem, p rdma.RemotePtr) (uint64, error) {
	for {
		v, err := m.LoadWord(p)
		if err != nil {
			return 0, err
		}
		prev, err := m.CAS(p, v, layout.WithLock(v))
		if err != nil {
			return 0, err
		}
		if prev == v {
			return v, nil
		}
	}
}

// unlockRestore is summarized as a releaser: it restores the pre-lock word.
func unlockRestore(m btree.Mem, p rdma.RemotePtr, pre uint64) error {
	_, err := m.CAS(p, layout.WithLock(pre), pre)
	return err
}

// A lock taken through the helper leaks the same way.
func leakViaHelper(m btree.Mem, p rdma.RemotePtr, body []uint64) error {
	pre, err := lockPage(m, p)
	if err != nil {
		return err
	}
	_ = pre
	if err := m.WriteWords(p, body); err != nil {
		return err // want "page lock on p is still held"
	}
	_, err = m.FetchAdd(p, 1)
	return err
}

// Releasing through the helper on every exit is clean.
func okHelperRelease(m btree.Mem, p rdma.RemotePtr, body []uint64) error {
	pre, err := lockPage(m, p)
	if err != nil {
		return err
	}
	if err := m.WriteWords(p, body); err != nil {
		unlockRestore(m, p, pre)
		return err
	}
	return unlockRestore(m, p, pre)
}

// A release in the return expression itself counts.
func okReleaseInReturn(m btree.Mem, p rdma.RemotePtr, pre uint64) error {
	prev, err := m.CAS(p, pre, layout.WithLock(pre))
	if err != nil || prev != pre {
		return err
	}
	return unlockRestore(m, p, pre)
}

// A bound closure that releases the lock counts when called or handed off.
func okClosureRelease(m btree.Mem, p rdma.RemotePtr, v uint64, body []uint64) error {
	prev, err := m.CAS(p, v, layout.WithLock(v))
	if err != nil || prev != v {
		return err
	}
	unlock := func() { _, _ = m.FetchAdd(p, 1) }
	if err := m.WriteWords(p, body); err != nil {
		unlock()
		return err
	}
	unlock()
	return nil
}

// A lock held on only one joining path is not must-held and never reported
// (the analyzer's deliberate conservatism for flag-correlated protocol loops).
func okConditionalAcquire(m btree.Mem, p rdma.RemotePtr, v uint64, lockIt bool) error {
	locked := false
	if lockIt {
		prev, err := m.CAS(p, v, layout.WithLock(v))
		if err != nil {
			return err
		}
		if prev == v {
			locked = true
		}
	}
	if v == 0 {
		return errBoom
	}
	if locked {
		_, _ = m.FetchAdd(p, 1)
	}
	return nil
}

// The allow directive suppresses an acknowledged leak.
func allowLeak(m btree.Mem, p rdma.RemotePtr, v uint64) error {
	prev, err := m.CAS(p, v, layout.WithLock(v))
	if err != nil || prev != v {
		return err
	}
	//rdmavet:allow lockpaired -- fixture: leak acknowledged to exercise the allow directive
	return errBoom
}
