// Fixture for the nopenv analyzer: timed protocol code must account CPU
// through its rdma.Env; the no-op environment is reserved for setup paths
// and tests.
package fixture

import "github.com/namdb/rdmatree/internal/rdma"

// okTimedHandler is the correct shape: the handler environment arrives as a
// parameter and all work is charged through it.
func okTimedHandler(env rdma.Env) {
	env.Charge(100)
}

func badLiteral() rdma.Env {
	return rdma.NopEnv{} // want "rdma.NopEnv in protocol package"
}

func badVar() {
	var env rdma.NopEnv // want "rdma.NopEnv in protocol package"
	env.Charge(100)
}

func allowedSetup() rdma.Env {
	return rdma.NopEnv{} //rdmavet:allow nopenv -- fixture: untimed bootstrap path, runs before the simulated clock starts
}
