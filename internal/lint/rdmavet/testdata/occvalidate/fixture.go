// Fixture for the occvalidate analyzer: a raw page copy must be
// version-validated before it escapes the reading function.
package fixture

import (
	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// An unvalidated copy escaping by return.
func leakReturn(m btree.Mem, p rdma.RemotePtr) ([]uint64, error) {
	buf := make([]uint64, 64)
	if err := m.ReadWords(p, buf); err != nil {
		return nil, err
	}
	return buf, nil // want "page copy from ReadWords is returned to the caller"
}

// The Endpoint read surface taints the same way.
func leakEndpointRead(ep rdma.Endpoint, p rdma.RemotePtr) ([]uint64, error) {
	buf := make([]uint64, 64)
	if err := ep.Read(p, buf); err != nil {
		return nil, err
	}
	return buf, nil // want "page copy from Read is returned to the caller"
}

// An unvalidated copy written back to remote memory.
func leakWriteBack(m btree.Mem, src, dst rdma.RemotePtr) error {
	buf := make([]uint64, 64)
	if err := m.ReadWords(src, buf); err != nil {
		return err
	}
	return m.WriteWords(dst, buf) // want "page copy from ReadWords is written back to remote memory"
}

type holder struct{ w []uint64 }

// An unvalidated copy stored into a field outlives its frame.
func leakFieldStore(m btree.Mem, p rdma.RemotePtr, h *holder) error {
	buf := make([]uint64, 64)
	if err := m.ReadWords(p, buf); err != nil {
		return err
	}
	h.w = buf // want "stored into a field or package variable"
	return nil
}

// An unvalidated copy sent on a channel.
func leakChannelSend(m btree.Mem, p rdma.RemotePtr, out chan []uint64) error {
	buf := make([]uint64, 64)
	if err := m.ReadWords(p, buf); err != nil {
		return err
	}
	out <- buf // want "sent on a channel"
	return nil
}

// ReadValidated whose ok result is discarded validated nothing.
func leakIgnoredOK(m btree.Mem, p rdma.RemotePtr) ([]uint64, error) {
	buf := make([]uint64, 64)
	_, _, err := m.ReadValidated(p, buf)
	if err != nil {
		return nil, err
	}
	return buf, nil // want "page copy from ReadValidated is returned to the caller"
}

// A direct BufVersion comparison sanitizes on the equality edge.
func okManualValidate(m btree.Mem, p rdma.RemotePtr, v uint64) ([]uint64, error) {
	buf := make([]uint64, 64)
	if err := m.ReadWords(p, buf); err != nil {
		return nil, err
	}
	if layout.BufVersion(buf) != v {
		return nil, nil
	}
	return buf, nil
}

// A version variable bound to BufVersion carries the validation.
func okVersionVar(m btree.Mem, p rdma.RemotePtr, want uint64) ([]uint64, error) {
	buf := make([]uint64, 64)
	if err := m.ReadWords(p, buf); err != nil {
		return nil, err
	}
	v := layout.BufVersion(buf)
	if v == want {
		return buf, nil
	}
	return nil, nil
}

// ReadValidated's ok result guards the copy on its true edge.
func okReadValidated(m btree.Mem, p rdma.RemotePtr) ([]uint64, error) {
	buf := make([]uint64, 64)
	_, ok, err := m.ReadValidated(p, buf)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return buf, nil
}

// validSnapshot is recognized as a validator helper (bool result comparing
// layout.BufVersion).
func validSnapshot(v uint64, buf []uint64) bool {
	return v == layout.BufVersion(buf) && !layout.IsLocked(v)
}

func okValidatorHelper(m btree.Mem, p rdma.RemotePtr, v uint64) ([]uint64, error) {
	buf := make([]uint64, 64)
	if err := m.ReadWords(p, buf); err != nil {
		return nil, err
	}
	ok := validSnapshot(v, buf)
	if !ok {
		return nil, nil
	}
	return buf, nil
}

// Local scalar extraction cannot carry the torn copy.
func okLocalInspection(m btree.Mem, p rdma.RemotePtr) (uint64, error) {
	buf := make([]uint64, 64)
	if err := m.ReadWords(p, buf); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// The allow directive suppresses an acknowledged escape.
func allowEscape(m btree.Mem, p rdma.RemotePtr) ([]uint64, error) {
	buf := make([]uint64, 64)
	if err := m.ReadWords(p, buf); err != nil {
		return nil, err
	}
	//rdmavet:allow occvalidate -- fixture: single-writer phase, nothing can tear this copy
	return buf, nil
}
