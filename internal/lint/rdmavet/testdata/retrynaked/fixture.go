// Fixture for the retrynaked analyzer: transient-fault retries belong to
// the shared policy (internal/rdma/retry); a loop that both issues a verb
// and tests error transience is a hand-rolled retry and is flagged.
package fixture

import (
	"errors"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/rdma"
)

// nakedIsTransient is the canonical violation: re-issue the verb while the
// error is transient.
func nakedIsTransient(ep rdma.Endpoint, p rdma.RemotePtr, dst []uint64) error {
	for { // want "hand-rolled retry bypasses the shared retry policy"
		err := ep.Read(p, dst)
		if err == nil || !rdma.IsTransient(err) {
			return err
		}
	}
}

// nakedSentinel retries on one specific transient sentinel via errors.Is.
func nakedSentinel(ep rdma.Endpoint, p rdma.RemotePtr, src []uint64) error {
	for i := 0; i < 8; i++ { // want "hand-rolled retry bypasses the shared retry policy"
		err := ep.Write(p, src)
		if !errors.Is(err, rdma.ErrTimeout) {
			return err
		}
	}
	return rdma.ErrTimeout
}

// nakedMemVerb shows the Mem surface is covered too.
func nakedMemVerb(m btree.Mem, p rdma.RemotePtr, v uint64) {
	for { // want "hand-rolled retry bypasses the shared retry policy"
		_, err := m.FetchAdd(p, v)
		if !errors.Is(err, rdma.ErrServerDown) {
			return
		}
	}
}

// nakedRange covers range-loop retries over a batch of pointers.
func nakedRange(ep rdma.Endpoint, ps []rdma.RemotePtr, dst []uint64) {
	for _, p := range ps { // want "hand-rolled retry bypasses the shared retry policy"
		if err := ep.Read(p, dst); rdma.IsTransient(err) {
			continue
		}
	}
}

// okOCCLoop is the optimistic-read idiom: it loops on a verb for protocol
// reasons (validation failure) but never classifies errors as transient —
// exactly the loops the analyzer must not flag.
func okOCCLoop(m btree.Mem, p rdma.RemotePtr, dst []uint64) (uint64, error) {
	for {
		v, ok, err := m.ReadValidated(p, dst)
		if err != nil {
			return 0, err
		}
		if ok {
			return v, nil
		}
	}
}

// okTransienceOutsideLoop classifies transience once, after a straight-line
// verb: no loop, no violation.
func okTransienceOutsideLoop(ep rdma.Endpoint, p rdma.RemotePtr, dst []uint64) bool {
	err := ep.Read(p, dst)
	return rdma.IsTransient(err)
}

// okLoopWithoutVerb inspects accumulated errors in a loop but issues no
// verb inside it.
func okLoopWithoutVerb(errs []error) int {
	n := 0
	for _, err := range errs {
		if rdma.IsTransient(err) {
			n++
		}
	}
	return n
}

// okOuterLoop wraps a violating inner loop: only the inner loop (the actual
// retry) is blamed, not the operation loop around it.
func okOuterLoop(ep rdma.Endpoint, ps []rdma.RemotePtr, dst []uint64) {
	for _, p := range ps {
		for { // want "hand-rolled retry bypasses the shared retry policy"
			err := ep.Read(p, dst)
			if err == nil || !rdma.IsTransient(err) {
				break
			}
		}
	}
}

// allowedException carries the in-place justification, like the tree
// engine's unlock-completion loop.
func allowedException(m btree.Mem, p rdma.RemotePtr) {
	for { //rdmavet:allow retrynaked -- fixture: completion-critical unlock
		_, err := m.FetchAdd(p, 1)
		if !rdma.IsTransient(err) {
			return
		}
	}
}

// okPermanentCheck loops on a verb but only tests the permanent sentinel —
// not a transient retry.
func okPermanentCheck(ep rdma.Endpoint, ps []rdma.RemotePtr, dst []uint64) int {
	lost := 0
	for _, p := range ps {
		if err := ep.Read(p, dst); errors.Is(err, rdma.ErrServerLost) {
			lost++
		}
	}
	return lost
}
