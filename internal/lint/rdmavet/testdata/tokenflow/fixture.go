// Fixture for the tokenflow analyzer: async tokens follow
// posted -> Flush -> Poll and die on a traversal Redo/Abort.
package fixture

import (
	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/rdma"
)

func stash(rdma.Token) {}

func hand(rdma.AsyncEndpoint) {}

// Poll before the doorbell was rung forfeits the cross-op batch.
func leakPollWithoutFlush(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) {
	tok := ep.PostRead(p, dst)
	ep.Poll(nil) // want "Poll reaps PostRead's token without a Flush"
	_ = tok
}

// Returning with the token still in flight leaks its completion.
func leakInFlightReturn(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) error {
	tok := ep.PostRead(p, dst)
	ep.Flush()
	_ = tok
	return nil // want "returning while PostRead's token is still in flight"
}

// A token outliving an Abort matches no completion of the reposted step.
func leakStaleAfterAbort(ep rdma.AsyncEndpoint, tv *btree.Traversal, p rdma.RemotePtr, dst []uint64) {
	tok := ep.PostRead(p, dst)
	ep.Flush()
	tv.Abort(nil)
	_ = tok // want "token tok outlived a Redo/Abort"
	ep.Poll(nil)
}

// Redo kills tokens the same way, even already-reaped ones handed onward.
func leakStaleAfterRedo(ep rdma.AsyncEndpoint, tv *btree.Traversal, p rdma.RemotePtr, dst []uint64) {
	tok := ep.PostRead(p, dst)
	ep.Flush()
	ep.Poll(nil)
	tv.Redo(nil)
	stash(tok) // want "token tok outlived a Redo/Abort"
}

// The full lifecycle is clean.
func okLifecycle(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) error {
	tok := ep.PostRead(p, dst)
	ep.Flush()
	comps := ep.Poll(nil)
	_ = tok
	return comps[0].Err
}

// A token handed to another function transfers ownership.
func okTokenHandedOff(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) error {
	tok := ep.PostRead(p, dst)
	stash(tok)
	return nil
}

// A returned token transfers ownership to the caller.
func okTokenReturned(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) rdma.Token {
	tok := ep.PostRead(p, dst)
	ep.Flush()
	return tok
}

// Posts on an endpoint that escapes the function are owned elsewhere.
func okEscapedEndpoint(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) error {
	tok := ep.PostRead(p, dst)
	hand(ep)
	_ = tok
	return nil
}

// Join-path disagreement is tracked but never reported (conservatism).
func okJoinDisagreement(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64, cond bool) error {
	tok := ep.PostRead(p, dst)
	if cond {
		ep.Flush()
	}
	_ = tok
	return nil
}

// The allow directive suppresses an acknowledged in-flight return.
func allowInFlight(ep rdma.AsyncEndpoint, p rdma.RemotePtr, dst []uint64) error {
	tok := ep.PostRead(p, dst)
	ep.Flush()
	_ = tok
	//rdmavet:allow tokenflow -- fixture: the caller's poll loop reaps this batch
	return nil
}
