// Fixture for the verberrs analyzer: no verb call may have its error
// discarded.
package fixture

import (
	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/rdma"
)

func dropStatement(ep rdma.Endpoint, p rdma.RemotePtr, dst []uint64) {
	ep.Read(p, dst) // want "error of Endpoint.Read is discarded"
}

func dropBlank(ep rdma.Endpoint, p rdma.RemotePtr, src []uint64) {
	_ = ep.Write(p, src) // want "error of Endpoint.Write is assigned to _"
}

func dropLastBlank(ep rdma.Endpoint, p rdma.RemotePtr) uint64 {
	v, _ := ep.FetchAdd(p, 1) // want "error of Endpoint.FetchAdd is assigned to _"
	return v
}

func dropGo(ep rdma.Endpoint, p rdma.RemotePtr, dst []uint64) {
	go ep.Read(p, dst) // want "error of Endpoint.Read is discarded \(verb launched with go\)"
}

func dropDefer(ep rdma.Endpoint, p rdma.RemotePtr) {
	defer ep.Free(p, 64) // want "error of Endpoint.Free is discarded \(verb deferred\)"
}

func dropVar(ep rdma.Endpoint, server int, req []byte) []byte {
	var resp, _ = ep.Call(server, req) // want "error of Endpoint.Call is assigned to _"
	return resp
}

func memDrop(m btree.Mem, p rdma.RemotePtr, dst []uint64) {
	m.ReadWords(p, dst) // want "error of Mem.ReadWords is discarded"
}

func okHandled(ep rdma.Endpoint, p rdma.RemotePtr, dst []uint64) error {
	if err := ep.Read(p, dst); err != nil {
		return err
	}
	_, err := ep.Alloc(0, 64)
	return err
}

func okPropagated(m btree.Mem, p rdma.RemotePtr, src []uint64) error {
	return m.WriteWords(p, src)
}

func allowedBestEffort(ep rdma.Endpoint, p rdma.RemotePtr, src []uint64) {
	_ = ep.Write(p, src) //rdmavet:allow verberrs -- fixture: best-effort hint write, loss is tolerated by design
}
