// Fixture for the wallclock analyzer: packages running under simnet
// virtual time must not observe or wait on the machine clock.
package fixture

import "time"

// tick shows that time.Duration values and arithmetic stay legal — only
// clock observations are forbidden.
const tick = 10 * time.Millisecond

func badNow() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func badSleep() {
	time.Sleep(tick) // want "time.Sleep reads the wall clock"
}

func badAfter() <-chan time.Time {
	return time.After(tick) // want "time.After reads the wall clock"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func badTicker() *time.Ticker {
	return time.NewTicker(tick) // want "time.NewTicker reads the wall clock"
}

func okDurationMath(d time.Duration) time.Duration {
	return 3*d + tick
}

func allowedException() time.Time {
	return time.Now() //rdmavet:allow wallclock -- fixture: explicitly exempted clock source
}
