package rdmavet

import (
	"go/ast"
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// tokenflow enforces the pipeline token discipline of the async dataplane
// (internal/rdma/async.go): a Token returned by Post* names one in-flight
// verb of the CURRENT doorbell batch. The contract gives tokens a strict
// lifecycle —
//
//	posted --Flush--> flushed --Poll--> reaped
//
// and the cross-op batching engine adds one more transition: when a
// traversal step is reposted (btree Traversal.Redo / Abort), every token
// handed out for the superseded batch is dead — the new batch re-issues the
// verbs under new tokens, and matching completions against the old ones
// silently pairs results with the wrong verbs.
//
// The analyzer tracks token variables through the lint CFG and reports:
//
//   - Poll on an endpoint with a posted-but-never-Flushed token: the
//     cross-op batching discipline is that the doorbell is rung explicitly
//     once per batch — Poll without Flush works on the in-process adapters
//     but posts verb-by-verb on a doorbell-batching transport, silently
//     forfeiting the batching the async surface exists to provide;
//   - any use of a stale token (one outlived by a Redo/Abort);
//   - returning while a token is still in flight (posted or flushed but not
//     reaped) — the path-sensitive sibling of completionleak, which only
//     sees functions with no Poll at all.
//
// Mirroring completionleak's ownership model, posts on struct-field
// endpoints and on endpoints that escape the function are exempt: their
// completions are owned elsewhere. A token that itself escapes (returned,
// passed on, stored, sent) transfers ownership and stops being tracked; a
// token whose state differs between joining paths is tracked but never
// reported.
func NewTokenFlow() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "tokenflow",
		Doc:  "async tokens follow posted -> Flush -> Poll and die on Redo/Abort",
	}
	a.Run = func(pass *lint.Pass) error {
		asyncIf := pass.Interface(rdmaPath(pass), "AsyncEndpoint")
		if asyncIf == nil {
			return nil
		}
		tp := &tokenPass{pass: pass, asyncIf: asyncIf}
		for _, r := range funcRegions(pass) {
			tp.checkRegion(r)
		}
		return nil
	}
	return a
}

type tokenPass struct {
	pass    *lint.Pass
	asyncIf *types.Interface
}

type tokStage uint8

const (
	tokPosted tokStage = iota
	tokFlushed
	tokReaped
	tokStale
)

type tokInfo struct {
	stage tokStage
	ep    types.Object
	// maybe marks join-path disagreement: still tracked, never reported.
	maybe bool
	// postName is the verb that produced the token, for diagnostics.
	postName string
}

type tokFact map[types.Object]tokInfo

func (f tokFact) clone() tokFact {
	out := make(tokFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

type tokenAnalysis struct {
	tp      *tokenPass
	escaped map[types.Object]bool // endpoints escaping the function
	report  func(at ast.Node, format string, args ...any)
}

func (ta *tokenAnalysis) Entry() any { return tokFact{} }

func (ta *tokenAnalysis) Equal(a, b any) bool {
	am, bm := a.(tokFact), b.(tokFact)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	return true
}

func (ta *tokenAnalysis) Join(a, b any) any {
	am, bm := a.(tokFact), b.(tokFact)
	out := make(tokFact, len(am)+len(bm))
	for k, av := range am {
		bv, ok := bm[k]
		switch {
		case !ok:
			av.maybe = true
			out[k] = av
		case av == bv:
			out[k] = av
		default:
			if bv.stage > av.stage {
				av.stage = bv.stage
			}
			av.maybe = true
			out[k] = av
		}
	}
	for k, bv := range bm {
		if _, ok := am[k]; !ok {
			bv.maybe = true
			out[k] = bv
		}
	}
	return out
}

func (ta *tokenAnalysis) EdgeTransfer(fact any, cond ast.Expr, neg bool) any { return fact }

func (ta *tokenAnalysis) Transfer(fact any, n ast.Node) any {
	tp := ta.tp
	out := fact.(tokFact)
	cloned := false
	touch := func() {
		if !cloned {
			out, cloned = out.clone(), true
		}
	}

	// LHS identifiers of this assignment are (re)definitions, not uses.
	var lhsIdents map[*ast.Ident]bool
	if assign, ok := n.(*ast.AssignStmt); ok {
		lhsIdents = map[*ast.Ident]bool{}
		for _, l := range assign.Lhs {
			if id, isID := ast.Unparen(l).(*ast.Ident); isID {
				lhsIdents[id] = true
			}
		}
	}

	inspectShallow(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.CallExpr:
			recv, recvType, name, isM := methodCall(tp.pass, c)
			if isM {
				switch {
				case name == "Flush" && implementsIface(recvType, tp.asyncIf):
					epObj := identUse(tp.pass, recv)
					for tok, info := range out {
						if info.stage == tokPosted && (epObj == nil || info.ep == epObj) {
							touch()
							info.stage = tokFlushed
							out[tok] = info
						}
					}
				case name == "Poll" && implementsIface(recvType, tp.asyncIf):
					epObj := identUse(tp.pass, recv)
					for tok, info := range out {
						if epObj != nil && info.ep != epObj {
							continue
						}
						if info.stage == tokPosted && !info.maybe && ta.report != nil {
							ta.report(c, "Poll reaps %s's token without a Flush: the doorbell was never rung, so a batching transport posts this verb alone and the cross-op batch is silently forfeited", info.postName)
						}
						if info.stage == tokPosted || info.stage == tokFlushed {
							touch()
							info.stage = tokReaped
							out[tok] = info
						}
					}
				case (name == "Redo" || name == "Abort") && isNamed(recvType, btreePath(tp.pass), "Traversal"):
					for tok, info := range out {
						if info.stage != tokStale {
							touch()
							info.stage = tokStale
							out[tok] = info
						}
					}
				}
			}
			// Token arguments escape to the callee.
			for _, arg := range c.Args {
				if obj := identUse(tp.pass, arg); obj != nil {
					if info, tracked := out[obj]; tracked {
						ta.checkStale(c, obj, info)
						touch()
						delete(out, obj)
					}
				}
			}
		case *ast.Ident:
			if lhsIdents[c] {
				return true
			}
			obj := tp.pass.Info.Uses[c]
			if obj == nil {
				return true
			}
			if info, tracked := out[obj]; tracked {
				ta.checkStale(c, obj, info)
			}
		}
		return true
	})

	switch n := n.(type) {
	case *ast.ReturnStmt:
		// Returned tokens transfer ownership to the caller.
		for _, res := range n.Results {
			if obj := identUse(tp.pass, res); obj != nil {
				if _, tracked := out[obj]; tracked {
					touch()
					delete(out, obj)
				}
			}
		}
		if ta.report != nil {
			for _, info := range out {
				if (info.stage == tokPosted || info.stage == tokFlushed) && !info.maybe {
					ta.report(n, "returning while %s's token is still in flight on this path: its completion is never reaped — Poll the endpoint before returning", info.postName)
				}
			}
		}
	case *ast.SendStmt:
		if obj := identUse(tp.pass, n.Value); obj != nil {
			if _, tracked := out[obj]; tracked {
				touch()
				delete(out, obj)
			}
		}
	case *ast.AssignStmt:
		// Field/element stores transfer ownership.
		for i, lhs := range n.Lhs {
			if len(n.Rhs) != len(n.Lhs) {
				break
			}
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				if obj := identUse(tp.pass, n.Rhs[i]); obj != nil {
					if _, tracked := out[obj]; tracked {
						touch()
						delete(out, obj)
					}
				}
			}
		}
		// New posts: tok := ep.PostX(...).
		if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				recv, recvType, name, isM := methodCall(tp.pass, call)
				if isM && postVerbs[name] && implementsIface(recvType, tp.asyncIf) {
					epObj := identUse(tp.pass, recv)
					// Field-receiver and escaped-endpoint posts are owned
					// elsewhere (completionleak's exemptions).
					if epObj != nil && !ta.escaped[epObj] {
						if tokObj := identDefOrUse(tp.pass, n.Lhs[0]); tokObj != nil {
							touch()
							out[tokObj] = tokInfo{stage: tokPosted, ep: epObj, postName: name}
						}
					}
				}
			}
		}
	}
	return out
}

func (ta *tokenAnalysis) checkStale(at ast.Node, obj types.Object, info tokInfo) {
	if info.stage == tokStale && !info.maybe && ta.report != nil {
		ta.report(at, "token %s outlived a Redo/Abort: the superseded batch's tokens no longer match any completion — use the tokens of the reposted step", obj.Name())
	}
}

// checkRegion analyzes one function body.
func (tp *tokenPass) checkRegion(r funcRegion) {
	// Quick pre-scan: skip functions with no Post* on an identifier-held
	// AsyncEndpoint, and collect escaped endpoints (completionleak's rules).
	posts := false
	escaped := map[types.Object]bool{}
	var stack []ast.Node
	ast.Inspect(r.body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			recv, recvType, name, ok := methodCall(tp.pass, n)
			if ok && postVerbs[name] && implementsIface(recvType, tp.asyncIf) && identUse(tp.pass, recv) != nil {
				posts = true
			}
		case *ast.Ident:
			obj := tp.pass.Info.Uses[n]
			if obj == nil || !implementsIface(obj.Type(), tp.asyncIf) {
				break
			}
			if sel, ok := parentOf(stack).(*ast.SelectorExpr); ok && ast.Unparen(sel.X) == ast.Node(n) {
				if len(stack) >= 2 {
					if call, ok := parentOf(stack[:len(stack)-1]).(*ast.CallExpr); ok && ast.Unparen(call.Fun) == ast.Node(sel) {
						break
					}
				}
			}
			escaped[obj] = true
		}
		stack = append(stack, n)
		return true
	})
	if !posts {
		return
	}

	ta := &tokenAnalysis{tp: tp, escaped: escaped}
	g := lint.BuildCFG(r.body)
	in, ok := lint.SolveForward(g, ta)
	if !ok {
		return
	}
	ta.report = func(at ast.Node, format string, args ...any) {
		tp.pass.Reportf(at.Pos(), format, args...)
	}
	for _, b := range g.Blocks {
		fact, reached := in[b]
		if !reached {
			continue
		}
		for _, n := range b.Nodes {
			fact = ta.Transfer(fact, n)
		}
	}
}
