package rdmavet

import (
	"go/ast"

	"github.com/namdb/rdmatree/internal/lint"
)

// endpointVerbs are the rdma.Endpoint methods whose error return reports
// transport failures (and, for Alloc, region exhaustion).
var endpointVerbs = map[string]bool{
	"Read":           true,
	"ReadMulti":      true,
	"Write":          true,
	"CompareAndSwap": true,
	"FetchAdd":       true,
	"Alloc":          true,
	"Free":           true,
	"Call":           true,
}

// memVerbs are the btree.Mem methods — the same verb surface one
// abstraction level up, used by all protocol code.
var memVerbs = map[string]bool{
	"ReadWords":     true,
	"ReadValidated": true,
	"WriteWords":    true,
	"LoadWord":      true,
	"CAS":           true,
	"FetchAdd":      true,
	"AllocPage":     true,
	"FreePage":      true,
	"ReadPages":     true,
}

// NewVerbErrs builds the verberrs analyzer.
//
// Every verb can fail — a broken connection, an exhausted region, a
// transport shutdown — and on one-sided protocols a dropped error means the
// client continues against memory it never read or wrote, typically
// corrupting its traversal state far from the root cause. The analyzer
// flags any Endpoint verb or Mem operation whose error result is discarded:
// an expression statement, a `go`/`defer` of the call, or an assignment of
// the error position to `_`.
func NewVerbErrs() *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "verberrs",
		Doc:  "no verb call (Endpoint or btree.Mem) may have its error discarded",
	}
	a.Run = func(pass *lint.Pass) error {
		epIface := endpointIface(pass)
		mIface := memIface(pass)
		walkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			_, recvType, name, ok := methodCall(pass, call)
			if !ok {
				return
			}
			var kind string
			switch {
			case endpointVerbs[name] && implementsIface(recvType, epIface):
				kind = "Endpoint." + name
			case memVerbs[name] && implementsIface(recvType, mIface):
				kind = "Mem." + name
			default:
				return
			}
			if how := errDiscarded(parentOf(stack), call); how != "" {
				pass.Reportf(call.Pos(),
					"error of %s %s: verb failures must be handled or propagated (a dropped transport error lets the protocol run on against memory it never accessed)",
					kind, how)
			}
		})
		return nil
	}
	return a
}

// errDiscarded classifies how the call's error result is dropped; "" means
// it is not (visibly) dropped.
func errDiscarded(parent ast.Node, call *ast.CallExpr) string {
	switch p := parent.(type) {
	case *ast.ExprStmt:
		return "is discarded (call used as a statement)"
	case *ast.GoStmt:
		return "is discarded (verb launched with go)"
	case *ast.DeferStmt:
		return "is discarded (verb deferred)"
	case *ast.AssignStmt:
		if len(p.Rhs) != 1 || p.Rhs[0] == nil || ast.Unparen(p.Rhs[0]) != call {
			return ""
		}
		if last, ok := ast.Unparen(p.Lhs[len(p.Lhs)-1]).(*ast.Ident); ok && last.Name == "_" {
			return "is assigned to _"
		}
	case *ast.ValueSpec:
		if len(p.Values) == 1 && ast.Unparen(p.Values[0]) == call {
			if p.Names[len(p.Names)-1].Name == "_" {
				return "is assigned to _"
			}
		}
	}
	return ""
}
