package rdmavet

import (
	"go/types"

	"github.com/namdb/rdmatree/internal/lint"
)

// DefaultWallclockScope lists the packages that execute under simnet's
// discrete-event virtual clock (or are linked into code that does): the
// index protocols, the tree engine, the simulator itself and the verbs core.
// The real-time transports (tcpnet, direct) and internal/telemetry's
// wallClock tracer legitimately read the machine clock and are carved out.
var DefaultWallclockScope = Scope{
	Deny: []string{
		"internal/btree",
		"internal/cache",
		"internal/core",
		"internal/bench",
		"internal/layout",
		"internal/partition",
		"internal/workload",
		"internal/stats",
		"internal/sim",
		"internal/rdma",
		// The policy engine's decisions must be byte-stable and replayable:
		// all timestamps come from its injected Clock, never the wall.
		"internal/policy",
		// The flight recorder runs inside traced clients under virtual time;
		// its one wall clock (obs.Wall, for real transports) carries an
		// explicit //rdmavet:allow suppression.
		"internal/obs",
	},
	Allow: []string{
		"internal/rdma/tcpnet",
		"internal/rdma/direct",
	},
}

// wallclockFuncs are the package time entry points that observe or wait on
// the machine clock. time.Duration arithmetic and constants stay allowed.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// NewWallclock builds the wallclock analyzer.
//
// simnet (and the benchmarks built on it) run protocol code under a
// calibrated discrete-event cost model: every delay is virtual time advanced
// by the scheduler, every CPU charge goes through rdma.Env. A single
// time.Now or time.Sleep in that code silently mixes wall-clock durations
// into simulated measurements — results stay plausible and wrong. The
// analyzer forbids the clock-observing entry points of package time in every
// package that runs under virtual time.
func NewWallclock(scope Scope) *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "wallclock",
		Doc:  "no time.Now/Sleep/After/... in packages that run under simnet virtual time",
	}
	a.Run = func(pass *lint.Pass) error {
		if !scope.Match(pass.RelPath()) {
			return nil
		}
		for id, obj := range pass.Info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
				continue
			}
			pass.Reportf(id.Pos(),
				"time.%s reads the wall clock inside a package running under simnet virtual time; use the rdma.Env / sim clock instead (a stray wall-clock read corrupts the discrete-event cost model)",
				fn.Name())
		}
		return nil
	}
	return a
}
