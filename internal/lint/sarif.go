package lint

// Minimal SARIF 2.1.0 output (https://docs.oasis-open.org/sarif/sarif/v2.1.0)
// so CI can publish rdmavet findings as a machine-readable artifact. Only the
// subset consumed by common SARIF viewers is emitted: the tool driver with
// one rule per analyzer, and one result per diagnostic with a physical
// location.

import (
	"encoding/json"
	"io"
	"path/filepath"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the diagnostics as a SARIF 2.1.0 log. rootDir anchors the
// artifact URIs (module-root-relative, slash-separated); analyzers supply the
// rule table, with the unusedallow pseudo-rule appended for stale-waiver
// findings.
func WriteSARIF(w io.Writer, rootDir string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               UnusedAllowName,
		ShortDescription: sarifMessage{Text: "//rdmavet:allow directives must suppress at least one diagnostic"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(rootDir, uri); err == nil {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rdmavet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
