package lint

// This file computes lightweight call summaries: package-local boolean
// properties of functions, closed transitively over same-package static
// calls. The flow-sensitive analyzers use them to see through one level of
// helper indirection — e.g. lockpaired summarizes btree's unlockBump /
// abortUnlock / unlockNoChange as "releases a page lock" because each
// (directly or through a helper) contains a release primitive, so a call to
// any of them discharges the caller's obligation without interprocedural
// dataflow.

import (
	"go/ast"
	"go/types"
)

// Summarize computes, for every function declared in the package, whether
// pred matches any node of its body, transitively: a function has the
// property when pred matches directly, or when it statically calls a
// same-package function that has it. Calls through interfaces, function
// values and closures are not followed.
func Summarize(files []*ast.File, info *types.Info, pred func(n ast.Node) bool) map[*types.Func]bool {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	has := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func)
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if pred(n) {
				has[fn] = true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := StaticCallee(info, call); callee != nil {
					if _, local := decls[callee]; local {
						calls[fn] = append(calls[fn], callee)
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if has[fn] {
				continue
			}
			for _, c := range callees {
				if has[c] {
					has[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return has
}

// StaticCallee resolves the function or method a call statically invokes, or
// nil for calls through function values, built-ins and type conversions.
// Interface method calls resolve to the interface's method object (which is
// never a same-package declaration, so summaries do not follow them).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Fn.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
