package nam

import (
	"encoding/binary"
	"fmt"

	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
)

// Design enumerates the three index designs of the paper.
type Design int

// The three designs.
const (
	// CoarseGrained is Design 1 (Section 3): per-server partitioned trees,
	// two-sided RPC access.
	CoarseGrained Design = iota
	// FineGrained is Design 2 (Section 4): one global tree with nodes
	// round-robin across servers, one-sided access.
	FineGrained
	// Hybrid is Design 3 (Section 5): partitioned upper levels accessed by
	// RPC, fine-grained leaves accessed one-sided.
	Hybrid
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case CoarseGrained:
		return "coarse-grained"
	case FineGrained:
		return "fine-grained"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// PartitionKind names the coarse-grained partitioning function.
type PartitionKind int

// Partitioning schemes (Section 2.2).
const (
	PartRange PartitionKind = iota
	PartHash
)

// Catalog is the metadata a compute server needs to access one distributed
// index — in the paper this is served by the catalog service consulted
// during query compilation. Root pointers are per memory server for the
// coarse-grained and hybrid designs (one tree per server) and a single
// global entry for the fine-grained design.
type Catalog struct {
	Design    Design
	PageBytes int
	// RootWords holds the location of each tree's root-pointer word:
	// indexed by server for CoarseGrained/Hybrid, a single entry for
	// FineGrained.
	RootWords []rdma.RemotePtr
	// Partition describes the coarse-grained key partitioning; nil for
	// FineGrained.
	PartKind PartitionKind
	// RangeBounds are the split points of range partitioning (PartRange).
	RangeBounds []uint64
	// Servers is the number of memory servers.
	Servers int
	// Replicas is the page-replication factor k (0 and 1 both mean
	// unreplicated). With k >= 2 every server's pages are mirrored onto the
	// k-1 following servers per the ReplicaLayout slab scheme.
	Replicas int
	// RegionBytes is the uniform registered-region size, needed by clients
	// to reconstruct the replicated slab geometry. Zero when unreplicated.
	RegionBytes uint64
}

// Replicated reports whether the deployment runs with page replication.
func (c *Catalog) Replicated() bool { return c.Replicas >= 2 }

// Layout reconstructs the replicated slab layout from the catalog. It
// panics if the catalog is unreplicated; check Replicated first.
func (c *Catalog) Layout() ReplicaLayout {
	return NewReplicaLayout(c.Servers, c.Replicas, c.RegionBytes)
}

// Partitioner materializes the catalog's partitioning function.
func (c *Catalog) Partitioner() partition.Partitioner {
	switch c.PartKind {
	case PartHash:
		return partition.NewHash(c.Servers)
	default:
		return rangeFromBounds(c.RangeBounds)
	}
}

// rangeFromBounds rebuilds a range partitioner from serialized bounds.
func rangeFromBounds(bounds []uint64) partition.Partitioner {
	// partition.Range has no exported constructor from raw bounds; rebuild
	// via weighted construction on the bounds themselves.
	return partition.NewRangeFromBounds(bounds)
}

// Encode serializes the catalog (for the OpCatalog RPC of the TCP transport).
func (c *Catalog) Encode() []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(c.Design), byte(c.PartKind))
	buf = order.AppendUint32(buf, uint32(c.PageBytes))
	buf = order.AppendUint32(buf, uint32(c.Servers))
	buf = order.AppendUint32(buf, uint32(len(c.RootWords)))
	for _, p := range c.RootWords {
		buf = order.AppendUint64(buf, uint64(p))
	}
	buf = order.AppendUint32(buf, uint32(len(c.RangeBounds)))
	for _, b := range c.RangeBounds {
		buf = order.AppendUint64(buf, b)
	}
	// Replication trailer (appended so pre-replication decoders, which stop
	// after the bounds, still parse the prefix).
	buf = order.AppendUint32(buf, uint32(c.Replicas))
	buf = order.AppendUint64(buf, c.RegionBytes)
	return buf
}

// DecodeCatalog parses a serialized catalog.
func DecodeCatalog(b []byte) (*Catalog, error) {
	if len(b) < 2+4+4+4 {
		return nil, fmt.Errorf("nam: short catalog")
	}
	c := &Catalog{Design: Design(b[0]), PartKind: PartitionKind(b[1])}
	c.PageBytes = int(order.Uint32(b[2:]))
	c.Servers = int(order.Uint32(b[6:]))
	off := 10
	nr := int(order.Uint32(b[off:]))
	off += 4
	if len(b) < off+8*nr+4 {
		return nil, fmt.Errorf("nam: truncated catalog roots")
	}
	for i := 0; i < nr; i++ {
		c.RootWords = append(c.RootWords, rdma.RemotePtr(binary.LittleEndian.Uint64(b[off:])))
		off += 8
	}
	nb := int(order.Uint32(b[off:]))
	off += 4
	if len(b) < off+8*nb {
		return nil, fmt.Errorf("nam: truncated catalog bounds")
	}
	for i := 0; i < nb; i++ {
		c.RangeBounds = append(c.RangeBounds, binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	// Optional replication trailer: absent in catalogs encoded before page
	// replication existed, so tolerate truncation here.
	if len(b) >= off+4 {
		c.Replicas = int(order.Uint32(b[off:]))
		off += 4
		if len(b) >= off+8 {
			c.RegionBytes = order.Uint64(b[off:])
		}
	}
	return c, nil
}

// SuperblockBytes is the reserved region at the start of every memory
// server: word 0 holds the root-pointer word of the server's tree (or of the
// global tree on server 0 for the fine-grained design).
const SuperblockBytes = 64

// RootWordPtr returns the conventional root-word location on a server.
func RootWordPtr(server int) rdma.RemotePtr { return rdma.MakePtr(server, 0) }
