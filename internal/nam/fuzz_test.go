package nam

import (
	"testing"

	"github.com/namdb/rdmatree/internal/rdma"
)

// FuzzDecodeRequest ensures arbitrary bytes never panic the request decoder
// and that valid encodings round-trip.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Request{Op: OpLookup, Key: 42}).Encode())
	f.Add((&Request{Op: OpInstall, End: 7, Left: rdma.MakePtr(1, 8), Right: rdma.MakePtr(2, 16)}).Encode())
	f.Add((&Request{Op: OpInsert, Key: 9, Value: 10, Group: 3}).Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeRequest(b)
		if err != nil {
			return
		}
		// Decoded requests re-encode to a decodable form.
		if _, err := DecodeRequest(req.Encode()); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzDecodeResponse ensures arbitrary bytes never panic the response
// decoder.
func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Response{Status: StatusOK, Values: []uint64{1, 2}}).Encode())
	f.Add((&Response{Status: StatusErr, Err: "x"}).Encode())
	f.Add((&Response{Status: StatusOK, Pairs: []uint64{1, 2, 3, 4}}).Encode())
	f.Add((&Response{Status: StatusOK, Dirty: []DirtyPage{
		{Kind: DirtyFull, Ptr: rdma.MakePtr(1, 128), Words: []uint64{6, 7}},
		{Kind: DirtyWord, Ptr: rdma.MakePtr(0, 64), Words: []uint64{9}},
	}}).Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		resp, err := DecodeResponse(b)
		if err != nil {
			return
		}
		if _, err := DecodeResponse(resp.Encode()); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzDecodeCatalog ensures arbitrary bytes never panic the catalog decoder.
func FuzzDecodeCatalog(f *testing.F) {
	f.Add([]byte{})
	c := &Catalog{Design: Hybrid, PageBytes: 1024, Servers: 4,
		RootWords:   []rdma.RemotePtr{RootWordPtr(0)},
		RangeBounds: []uint64{10, 20}}
	f.Add(c.Encode())
	r := &Catalog{Design: FineGrained, PageBytes: 512, Servers: 4,
		RootWords:   []rdma.RemotePtr{GroupRootPtr(0)},
		Replicas:    2,
		RegionBytes: 1 << 20}
	f.Add(r.Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		cat, err := DecodeCatalog(b)
		if err != nil {
			return
		}
		if _, err := DecodeCatalog(cat.Encode()); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
