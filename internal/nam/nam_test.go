package nam

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/namdb/rdmatree/internal/rdma"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpLookup, Key: 42},
		{Op: OpRange, Key: 10, End: 99},
		{Op: OpInsert, Key: 7, Value: 70},
		{Op: OpDelete, Key: 7, Value: 70},
		{Op: OpTraverse, Key: 123456789},
		{Op: OpInstall, End: 55, Left: rdma.MakePtr(1, 512), Right: rdma.MakePtr(2, 1024)},
		{Op: OpCatalog},
	}
	for _, r := range reqs {
		got, err := DecodeRequest(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(op uint8, key, end, value uint64, ls, rs uint8, lo, ro uint64) bool {
		r := Request{
			Op: op, Key: key, End: end, Value: value,
			Left:  rdma.MakePtr(int(ls%rdma.MaxServers), lo%rdma.MaxOffset),
			Right: rdma.MakePtr(int(rs%rdma.MaxServers), ro%rdma.MaxOffset),
		}
		got, err := DecodeRequest(r.Encode())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRequestShort(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK},
		{Status: StatusNotFound},
		{Status: StatusOK, Ptr: rdma.MakePtr(3, 4096)},
		{Status: StatusOK, Values: []uint64{1, 2, 3}},
		{Status: StatusOK, Pairs: []uint64{10, 100, 11, 110}},
		{Status: StatusErr, Err: "boom"},
		{Status: StatusOK, Values: []uint64{9}, Pairs: []uint64{1, 2}, Err: ""},
		{Status: StatusOK, Ptr: rdma.MakePtr(1, 64), Load: 87},
		{Status: StatusOK, Load: 100},
	}
	for _, r := range resps {
		got, err := DecodeResponse(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != r.Status || got.Ptr != r.Ptr || got.Err != r.Err {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
		if got.Load != r.Load {
			t.Fatalf("round trip load: got %d want %d", got.Load, r.Load)
		}
		if len(got.Values) != len(r.Values) || len(got.Pairs) != len(r.Pairs) {
			t.Fatalf("round trip lengths: got %+v want %+v", got, r)
		}
		for i := range r.Values {
			if got.Values[i] != r.Values[i] {
				t.Fatalf("values differ: %v vs %v", got.Values, r.Values)
			}
		}
		for i := range r.Pairs {
			if got.Pairs[i] != r.Pairs[i] {
				t.Fatalf("pairs differ: %v vs %v", got.Pairs, r.Pairs)
			}
		}
	}
}

// TestDecodeResponseNoLoadTrailer pins backward compatibility: a response
// encoded before the load trailer existed (bytes end after the dirty-page
// trailer) decodes with Load 0.
func TestDecodeResponseNoLoadTrailer(t *testing.T) {
	r := Response{Status: StatusOK, Ptr: rdma.MakePtr(2, 128), Load: 55}
	b := r.Encode()
	got, err := DecodeResponse(b[:len(b)-1])
	if err != nil {
		t.Fatal(err)
	}
	if got.Load != 0 || got.Ptr != r.Ptr {
		t.Fatalf("pre-load decode: got Load=%d Ptr=%v, want Load=0 Ptr=%v", got.Load, got.Ptr, r.Ptr)
	}
}

func TestDecodeResponseTruncated(t *testing.T) {
	r := Response{Status: StatusOK, Values: []uint64{1, 2, 3, 4}}
	b := r.Encode()
	for cut := 1; cut < len(b); cut += 7 {
		if _, err := DecodeResponse(b[:cut]); err == nil && cut < len(b)-1 {
			// Some prefixes may decode if counts are zeroed; only the full
			// buffer must decode losslessly. Just ensure no panic.
			continue
		}
	}
}

func TestErrResponseHelpers(t *testing.T) {
	r := ErrResponse(errTest("x failed"))
	if r.Status != StatusErr {
		t.Fatal("status")
	}
	dec, err := DecodeResponse(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.AsError() == nil {
		t.Fatal("AsError returned nil for error response")
	}
	ok := Response{Status: StatusOK}
	if ok.AsError() != nil {
		t.Fatal("AsError non-nil for OK")
	}
}

func TestRetryResponseRoundTrip(t *testing.T) {
	r := RetryResponse(errTest("handler out of budget"))
	if r.Status != StatusRetry {
		t.Fatal("status")
	}
	dec, err := DecodeResponse(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	aerr := dec.AsError()
	if !errors.Is(aerr, ErrRemoteRetry) {
		t.Fatalf("decoded retry response does not wrap ErrRemoteRetry: %v", aerr)
	}
	if errors.Is(ErrResponse(errTest("opaque")).AsError(), ErrRemoteRetry) {
		t.Fatal("opaque error response must not read as retryable")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestCatalogRoundTrip(t *testing.T) {
	c := &Catalog{
		Design:      Hybrid,
		PageBytes:   1024,
		Servers:     4,
		PartKind:    PartRange,
		RootWords:   []rdma.RemotePtr{RootWordPtr(0), RootWordPtr(1), RootWordPtr(2), RootWordPtr(3)},
		RangeBounds: []uint64{100, 200, 300},
	}
	got, err := DecodeCatalog(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Design != c.Design || got.PageBytes != c.PageBytes || got.Servers != c.Servers || got.PartKind != c.PartKind {
		t.Fatalf("catalog header: %+v", got)
	}
	if len(got.RootWords) != 4 || got.RootWords[2] != RootWordPtr(2) {
		t.Fatalf("roots: %v", got.RootWords)
	}
	if len(got.RangeBounds) != 3 || got.RangeBounds[1] != 200 {
		t.Fatalf("bounds: %v", got.RangeBounds)
	}
	p := got.Partitioner()
	if p.Server(50) != 0 || p.Server(150) != 1 || p.Server(250) != 2 || p.Server(350) != 3 {
		t.Fatal("partitioner from catalog wrong")
	}
}

func TestCatalogHashPartitioner(t *testing.T) {
	c := &Catalog{Design: CoarseGrained, Servers: 4, PartKind: PartHash}
	p := c.Partitioner()
	if p.Servers() != 4 {
		t.Fatalf("servers = %d", p.Servers())
	}
	if got := p.CoversRange(1, 2); len(got) != 4 {
		t.Fatal("hash partitioner must cover all servers for ranges")
	}
}

func TestTopology(t *testing.T) {
	top := PaperTopology(4, 6, 40)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.MemMachines() != 2 {
		t.Fatalf("MemMachines = %d", top.MemMachines())
	}
	if top.Clients() != 240 {
		t.Fatalf("Clients = %d", top.Clients())
	}
	if top.MachineOfServer(0) != 0 || top.MachineOfServer(1) != 0 || top.MachineOfServer(2) != 1 {
		t.Fatal("server machine mapping wrong")
	}
	if top.ServerCrossesQPI(0) || !top.ServerCrossesQPI(1) {
		t.Fatal("QPI mapping wrong")
	}
	if top.LocalServer(0) != -1 {
		t.Fatal("non-colocated topology has local servers")
	}
}

func TestTopologyCoLocated(t *testing.T) {
	top := Topology{
		MemServers: 4, MemServersPerMachine: 1,
		ComputeMachines: 4, ClientsPerMachine: 20,
		CoLocated: true,
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < top.Clients(); c++ {
		s := top.LocalServer(c)
		if s != c%4 {
			t.Fatalf("client %d local server = %d", c, s)
		}
	}
	bad := top
	bad.ComputeMachines = 3
	if bad.Validate() == nil {
		t.Fatal("mismatched co-location accepted")
	}
}

func TestTopologyValidation(t *testing.T) {
	bad := []Topology{
		{},
		{MemServers: 1, MemServersPerMachine: 0, ComputeMachines: 1, ClientsPerMachine: 1},
		{MemServers: 1, MemServersPerMachine: 1, ComputeMachines: 0, ClientsPerMachine: 1},
	}
	for i, tp := range bad {
		if tp.Validate() == nil {
			t.Fatalf("topology %d accepted: %+v", i, tp)
		}
	}
}
