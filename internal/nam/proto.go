// Package nam implements the Network-Attached-Memory runtime pieces shared
// by the index designs: the binary RPC wire protocol spoken over two-sided
// verbs, the catalog service that hands compute servers the metadata they
// need to reach an index (root pointers, partitioning scheme, page layout),
// and the cluster topology description (machines, co-location) used by the
// simulated fabric and the benchmark harness.
package nam

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/namdb/rdmatree/internal/rdma"
)

// Op codes of the RPC protocol.
const (
	// OpLookup is a point query against a server-local tree (coarse-grained).
	OpLookup = iota + 1
	// OpRange is a range query against a server-local tree (coarse-grained);
	// the response carries the qualifying entries.
	OpRange
	// OpInsert inserts into a server-local tree (coarse-grained).
	OpInsert
	// OpDelete marks an entry deleted in a server-local tree (coarse-grained).
	OpDelete
	// OpTraverse walks the server-resident upper levels and returns the
	// pointer of the leaf responsible for a key (hybrid).
	OpTraverse
	// OpInstall installs a separator for a leaf split a compute server
	// performed one-sided (hybrid).
	OpInstall
	// OpCatalog fetches the serialized catalog (used by the TCP transport).
	OpCatalog
	// OpStats fetches the server's live telemetry counters as JSON, packed
	// into the response's Pairs field (answered by the telemetry handler
	// wrapper on any design).
	OpStats
)

// OpName returns a human-readable name for an op code.
func OpName(op uint8) string {
	switch op {
	case OpLookup:
		return "lookup"
	case OpRange:
		return "range"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpTraverse:
		return "traverse"
	case OpInstall:
		return "install"
	case OpCatalog:
		return "catalog"
	case OpStats:
		return "stats"
	}
	return fmt.Sprintf("op%d", op)
}

// PackBytes packs a byte payload into a length-prefixed word slice, the
// shape carried by the response Pairs/Values fields for blob payloads
// (catalogs, telemetry JSON).
func PackBytes(b []byte) []uint64 {
	out := make([]uint64, 1+(len(b)+7)/8)
	out[0] = uint64(len(b))
	for i, c := range b {
		out[1+i/8] |= uint64(c) << uint(8*(i%8))
	}
	return out
}

// UnpackBytes unpacks a payload packed by PackBytes.
func UnpackBytes(w []uint64) []byte {
	if len(w) == 0 {
		return nil
	}
	n := int(w[0])
	if max := 8 * (len(w) - 1); n > max {
		n = max
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(w[1+i/8] >> uint(8*(i%8)))
	}
	return out
}

// Response status codes.
const (
	StatusOK = iota
	StatusNotFound
	// StatusErr carries an opaque remote failure; the operation aborts.
	StatusErr
	// StatusRetry carries a remote failure that an epoch fence and an
	// operation re-run can be expected to clear — the handler's tree
	// exhausted its consistency-restart budget, typically waiting on split
	// state that was lost with a crashed group member. AsError wraps
	// ErrRemoteRetry so the op-level recovery loop re-runs the operation.
	StatusRetry
)

var order = binary.LittleEndian

// Request is the decoded form of an RPC request.
type Request struct {
	Op    uint8
	Key   uint64
	End   uint64         // OpRange: inclusive end; OpInstall: separator
	Value uint64         // OpInsert/OpDelete payload
	Left  rdma.RemotePtr // OpInstall
	Right rdma.RemotePtr // OpInstall
	// Group is the replica group the request addresses (replicated
	// deployments only): after a failover the RPC lands on a backup server
	// that serves several groups' mirrored trees, and Group tells it which
	// one. Unreplicated clients leave it 0 and handlers ignore it.
	Group uint8
}

// Encode serializes r.
func (r *Request) Encode() []byte {
	buf := make([]byte, 1+5*8+1)
	buf[0] = r.Op
	order.PutUint64(buf[1:], r.Key)
	order.PutUint64(buf[9:], r.End)
	order.PutUint64(buf[17:], r.Value)
	order.PutUint64(buf[25:], uint64(r.Left))
	order.PutUint64(buf[33:], uint64(r.Right))
	buf[41] = r.Group
	return buf
}

// DecodeRequest parses a request. The Group byte is an appended extension:
// requests encoded before replication existed are one byte shorter and
// decode with Group 0.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 1+5*8 {
		return Request{}, fmt.Errorf("nam: short request (%d bytes)", len(b))
	}
	r := Request{
		Op:    b[0],
		Key:   order.Uint64(b[1:]),
		End:   order.Uint64(b[9:]),
		Value: order.Uint64(b[17:]),
		Left:  rdma.RemotePtr(order.Uint64(b[25:])),
		Right: rdma.RemotePtr(order.Uint64(b[33:])),
	}
	if len(b) >= 1+5*8+1 {
		r.Group = b[41]
	}
	return r, nil
}

// DirtyKind classifies a replicated post-image carried by a response.
type DirtyKind uint8

// Dirty-page kinds, mirroring the btree.Replicator methods.
const (
	// DirtyFull is an in-place page update: the image carries its
	// published version word, and the mirror push is versioned.
	DirtyFull DirtyKind = iota
	// DirtyFresh is a never-published page (split right half, new root):
	// mirrored blind.
	DirtyFresh
	// DirtyWord is a root-pointer word update: Words holds one word.
	DirtyWord
)

// DirtyPage is one page (or word) post-image a server-side tree committed
// while handling an RPC. In replicated deployments the *client* pushes
// these to the group's backups before acking — the memory servers never
// talk to each other, keeping the NAM separation of compute and memory.
type DirtyPage struct {
	Kind  DirtyKind
	Ptr   rdma.RemotePtr
	Words []uint64
}

// DirtyPusher replays server-captured post-images onto a group's backups
// before the client acks the operation (implemented by repl.Mirrorer). The
// designs depend on this interface rather than the replication package so
// unreplicated deployments carry no replication code on their hot path.
type DirtyPusher interface {
	Push(dirty []DirtyPage) error
}

// Response is the decoded form of an RPC response.
type Response struct {
	Status uint8
	// Ptr carries the leaf pointer for OpTraverse.
	Ptr rdma.RemotePtr
	// Values carries point-lookup results.
	Values []uint64
	// Pairs carries (key, value) pairs for OpRange, flattened.
	Pairs []uint64
	// Err carries a message when Status == StatusErr.
	Err string
	// Dirty carries the page post-images the handler committed (replicated
	// deployments only), for the client to mirror before acking. Attached
	// to error responses too: a handler that committed pages and then
	// failed still needs those pages mirrored.
	Dirty []DirtyPage
	// Load is the responding server's handler-pool CPU utilization in
	// percent [0,100], piggybacked on every reply so clients see the load
	// signal without extra round trips (the adaptive traversal policy feeds
	// it to its crossover estimator). 0 when the server has no load probe
	// installed.
	Load uint8
}

// Encode serializes the response.
func (r *Response) Encode() []byte {
	n := 1 + 8 + 4 + 8*len(r.Values) + 4 + 8*len(r.Pairs) + 2 + len(r.Err)
	buf := make([]byte, 0, n)
	buf = append(buf, r.Status)
	buf = order.AppendUint64(buf, uint64(r.Ptr))
	buf = order.AppendUint32(buf, uint32(len(r.Values)))
	for _, v := range r.Values {
		buf = order.AppendUint64(buf, v)
	}
	buf = order.AppendUint32(buf, uint32(len(r.Pairs)))
	for _, v := range r.Pairs {
		buf = order.AppendUint64(buf, v)
	}
	buf = order.AppendUint16(buf, uint16(len(r.Err)))
	buf = append(buf, r.Err...)
	// Dirty-page trailer (appended so pre-replication decoders, which stop
	// after the error string, still parse the prefix).
	buf = order.AppendUint16(buf, uint16(len(r.Dirty)))
	for _, d := range r.Dirty {
		buf = append(buf, byte(d.Kind))
		buf = order.AppendUint64(buf, uint64(d.Ptr))
		buf = order.AppendUint32(buf, uint32(len(d.Words)))
		for _, w := range d.Words {
			buf = order.AppendUint64(buf, w)
		}
	}
	// Load trailer byte (appended after the dirty pages for the same
	// backward-compatibility reason).
	buf = append(buf, r.Load)
	return buf
}

// DecodeResponse parses a response.
func DecodeResponse(b []byte) (Response, error) {
	var r Response
	if len(b) < 1+8+4 {
		return r, fmt.Errorf("nam: short response (%d bytes)", len(b))
	}
	r.Status = b[0]
	r.Ptr = rdma.RemotePtr(order.Uint64(b[1:]))
	off := 9
	nv := int(order.Uint32(b[off:]))
	off += 4
	if len(b) < off+8*nv+4 {
		return r, fmt.Errorf("nam: truncated values")
	}
	if nv > 0 {
		r.Values = make([]uint64, nv)
		for i := range r.Values {
			r.Values[i] = order.Uint64(b[off:])
			off += 8
		}
	} else {
		off += 0
	}
	np := int(order.Uint32(b[off:]))
	off += 4
	if len(b) < off+8*np+2 {
		return r, fmt.Errorf("nam: truncated pairs")
	}
	if np > 0 {
		r.Pairs = make([]uint64, np)
		for i := range r.Pairs {
			r.Pairs[i] = order.Uint64(b[off:])
			off += 8
		}
	}
	ne := int(order.Uint16(b[off:]))
	off += 2
	if len(b) < off+ne {
		return r, fmt.Errorf("nam: truncated error string")
	}
	r.Err = string(b[off : off+ne])
	off += ne
	// Optional dirty-page trailer (absent in pre-replication encodings).
	if len(b) < off+2 {
		return r, nil
	}
	nd := int(order.Uint16(b[off:]))
	off += 2
	for i := 0; i < nd; i++ {
		if len(b) < off+1+8+4 {
			return r, fmt.Errorf("nam: truncated dirty page header")
		}
		d := DirtyPage{Kind: DirtyKind(b[off]), Ptr: rdma.RemotePtr(order.Uint64(b[off+1:]))}
		nw := int(order.Uint32(b[off+9:]))
		off += 13
		if len(b) < off+8*nw {
			return r, fmt.Errorf("nam: truncated dirty page words")
		}
		d.Words = make([]uint64, nw)
		for j := range d.Words {
			d.Words[j] = order.Uint64(b[off:])
			off += 8
		}
		r.Dirty = append(r.Dirty, d)
	}
	// Optional load trailer byte (absent in pre-policy encodings).
	if len(b) > off {
		r.Load = b[off]
	}
	return r, nil
}

// ErrRemoteRetry reports a remote handler failure that is expected to clear
// under an epoch fence and an operation re-run from the root (the remote
// tree ran out of its restart budget — e.g. waiting for a split install
// that died with the old primary). core.Recovered treats this error as
// op-recoverable; the exactly-once contract holds because the re-run's
// presence check acks an insert whose leaf commit already published.
var ErrRemoteRetry = errors.New("nam: remote handler exhausted its restart budget")

// ErrResponse builds an error response.
func ErrResponse(err error) *Response {
	return &Response{Status: StatusErr, Err: err.Error()}
}

// RetryResponse builds an op-recoverable error response (StatusRetry).
func RetryResponse(err error) *Response {
	return &Response{Status: StatusRetry, Err: err.Error()}
}

// AsError converts an error response to a Go error (nil for OK/NotFound).
func (r *Response) AsError() error {
	switch r.Status {
	case StatusErr:
		return fmt.Errorf("nam: remote error: %s", r.Err)
	case StatusRetry:
		return fmt.Errorf("nam: remote error: %s: %w", r.Err, ErrRemoteRetry)
	}
	return nil
}
