package nam

import (
	"fmt"

	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma"
)

// Replicated region layout.
//
// k-way page replication mirrors every page of a memory server onto the
// k-1 following servers at the *same byte offset*. To make identity-offset
// mirroring possible, each server's allocator is confined to a private slab
// of the (uniformly sized) region:
//
//	[0, SuperblockBytes)            legacy superblock (unreplicated root word)
//	[SuperblockBytes, reserved)     16 bytes per group g: root word, epoch word
//	[reserved, reserved+S*slab)     slab i = pages homed at server i
//
// Server i allocates only inside slab i, so a page at (server i, offset o)
// can be mirrored to (backup b, offset o) without any address translation
// and without the backups' own allocations ever colliding with the mirror.
// The group root and epoch words are likewise group-unique offsets, present
// at the same offset on every member.
type ReplicaLayout struct {
	// Groups maps group homes to members and acting primaries.
	Groups partition.Groups
	// RegionBytes is the (uniform) registered-region size of every server.
	RegionBytes uint64
}

// NewReplicaLayout builds the slab layout for S servers of regionBytes each
// at replication factor k.
func NewReplicaLayout(servers, replicas int, regionBytes uint64) ReplicaLayout {
	l := ReplicaLayout{Groups: partition.NewGroups(servers, replicas), RegionBytes: regionBytes}
	if l.SlabBytes() == 0 {
		panic(fmt.Sprintf("nam: region %d too small for %d replicated slabs", regionBytes, servers))
	}
	return l
}

// ReplReservedBytes returns the reserved prefix of a replicated region:
// the legacy superblock followed by one 16-byte (root word, epoch word)
// slot per group.
func ReplReservedBytes(servers int) uint64 {
	return uint64(SuperblockBytes + 16*servers)
}

// GroupRootOff returns the byte offset of group home's root-pointer word.
// The offset is group-unique, so the word lives at the same offset on every
// member of the group.
func GroupRootOff(home int) uint64 { return uint64(SuperblockBytes + 16*home) }

// GroupEpochOff returns the byte offset of group home's epoch word.
func GroupEpochOff(home int) uint64 { return GroupRootOff(home) + 8 }

// GroupRootPtr returns the canonical (home-addressed) pointer to group
// home's root word. Replication-aware endpoints re-target it to the acting
// primary after a failover.
func GroupRootPtr(home int) rdma.RemotePtr { return rdma.MakePtr(home, GroupRootOff(home)) }

// GroupEpochPtr returns the pointer to group home's epoch word as stored on
// member. Epoch reads and CAS bumps address members explicitly — they are
// the failover mechanism itself and must not be re-targeted.
func GroupEpochPtr(member, home int) rdma.RemotePtr {
	return rdma.MakePtr(member, GroupEpochOff(home))
}

// Reserved returns the reserved prefix for this layout.
func (l ReplicaLayout) Reserved() uint64 { return ReplReservedBytes(l.Groups.Servers()) }

// SlabBytes returns the per-server slab size (8-byte aligned).
func (l ReplicaLayout) SlabBytes() uint64 {
	r := l.Reserved()
	if l.RegionBytes <= r {
		return 0
	}
	return (l.RegionBytes - r) / uint64(l.Groups.Servers()) &^ 7
}

// SlabLo returns the first byte offset of server home's slab.
func (l ReplicaLayout) SlabLo(home int) uint64 {
	return l.Reserved() + uint64(home)*l.SlabBytes()
}

// SlabHi returns one past the last byte offset of server home's slab.
func (l ReplicaLayout) SlabHi(home int) uint64 { return l.SlabLo(home) + l.SlabBytes() }

// HomeOf returns the home group of the page containing byte offset off, or
// -1 for offsets in the legacy superblock (which is not group-addressed).
func (l ReplicaLayout) HomeOf(off uint64) int {
	if off < uint64(SuperblockBytes) {
		return -1
	}
	if r := l.Reserved(); off < r {
		return int((off - uint64(SuperblockBytes)) / 16)
	} else {
		h := int((off - r) / l.SlabBytes())
		if h >= l.Groups.Servers() {
			h = l.Groups.Servers() - 1 // tail remainder belongs to the last slab
		}
		return h
	}
}
