package nam

import (
	"testing"

	"github.com/namdb/rdmatree/internal/rdma"
)

func TestReplicaLayoutOffsets(t *testing.T) {
	const S = 4
	lay := NewReplicaLayout(S, 2, 1<<20)
	if got, want := lay.Reserved(), uint64(SuperblockBytes+16*S); got != want {
		t.Fatalf("Reserved() = %d, want %d", got, want)
	}
	seen := map[uint64]bool{}
	for g := 0; g < S; g++ {
		ro, eo := GroupRootOff(g), GroupEpochOff(g)
		if eo != ro+8 {
			t.Fatalf("group %d: epoch offset %d not root+8 (%d)", g, eo, ro)
		}
		if ro < uint64(SuperblockBytes) || eo+8 > lay.Reserved() {
			t.Fatalf("group %d: metadata [%d, %d) outside reserved prefix", g, ro, eo+8)
		}
		for _, off := range []uint64{ro, eo} {
			if seen[off] {
				t.Fatalf("group %d: offset %d reused by another group", g, off)
			}
			seen[off] = true
		}
		if p := GroupRootPtr(g); p.Server() != g || p.Offset() != ro {
			t.Fatalf("GroupRootPtr(%d) = %v", g, p)
		}
		for m := 0; m < S; m++ {
			if p := GroupEpochPtr(m, g); p.Server() != m || p.Offset() != eo {
				t.Fatalf("GroupEpochPtr(%d, %d) = %v", m, g, p)
			}
		}
	}
}

func TestReplicaLayoutSlabs(t *testing.T) {
	const S = 4
	lay := NewReplicaLayout(S, 2, 1<<20)
	if lay.SlabBytes()%8 != 0 || lay.SlabBytes() == 0 {
		t.Fatalf("SlabBytes() = %d, want nonzero multiple of 8", lay.SlabBytes())
	}
	for i := 0; i < S; i++ {
		lo, hi := lay.SlabLo(i), lay.SlabHi(i)
		if lo < lay.Reserved() || hi > lay.RegionBytes {
			t.Fatalf("slab %d [%d, %d) outside region", i, lo, hi)
		}
		if i > 0 && lo != lay.SlabHi(i-1) {
			t.Fatalf("slab %d does not abut slab %d", i, i-1)
		}
		// Every offset in the slab maps back to its home.
		for _, off := range []uint64{lo, lo + 8, hi - 8} {
			if h := lay.HomeOf(off); h != i {
				t.Fatalf("HomeOf(%d) = %d, want %d", off, h, i)
			}
		}
	}
}

func TestReplicaLayoutHomeOf(t *testing.T) {
	lay := NewReplicaLayout(4, 2, 1<<20)
	if h := lay.HomeOf(0); h != -1 {
		t.Fatalf("HomeOf(0) = %d, want -1 (legacy superblock)", h)
	}
	if h := lay.HomeOf(uint64(SuperblockBytes) - 8); h != -1 {
		t.Fatalf("superblock tail: HomeOf = %d, want -1", h)
	}
	for g := 0; g < 4; g++ {
		if h := lay.HomeOf(GroupRootOff(g)); h != g {
			t.Fatalf("HomeOf(root %d) = %d", g, h)
		}
		if h := lay.HomeOf(GroupEpochOff(g)); h != g {
			t.Fatalf("HomeOf(epoch %d) = %d", g, h)
		}
	}
	// Region tail remainder (past the last whole slab) clamps to last slab.
	if h := lay.HomeOf(lay.RegionBytes - 8); h != 3 {
		t.Fatalf("HomeOf(tail) = %d, want 3", h)
	}
}

func TestReplicaLayoutTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReplicaLayout with tiny region did not panic")
		}
	}()
	NewReplicaLayout(4, 2, ReplReservedBytes(4))
}

func TestCatalogReplicationRoundTrip(t *testing.T) {
	c := &Catalog{
		Design:      FineGrained,
		PageBytes:   512,
		Servers:     4,
		RootWords:   []rdma.RemotePtr{GroupRootPtr(0)},
		Replicas:    2,
		RegionBytes: 1 << 20,
	}
	if !c.Replicated() {
		t.Fatal("Replicated() = false at k=2")
	}
	got, err := DecodeCatalog(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Replicas != 2 || got.RegionBytes != 1<<20 {
		t.Fatalf("round trip lost replication fields: %+v", got)
	}
	lay := got.Layout()
	if lay.Groups.Replicas() != 2 || lay.RegionBytes != 1<<20 {
		t.Fatalf("Layout() = %+v", lay)
	}

	// A pre-replication encoding (trailer chopped off) still decodes, with
	// replication off.
	legacy := c.Encode()
	legacy = legacy[:len(legacy)-12] // u32 Replicas + u64 RegionBytes
	old, err := DecodeCatalog(legacy)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if old.Replicated() || old.Replicas != 0 {
		t.Fatalf("legacy decode grew replication: %+v", old)
	}
}

func TestRequestGroupRoundTrip(t *testing.T) {
	r := &Request{Op: OpInsert, Key: 1, Value: 2, Group: 3}
	got, err := DecodeRequest(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Group != 3 {
		t.Fatalf("Group = %d, want 3", got.Group)
	}
	// Legacy 41-byte requests decode with Group 0.
	old, err := DecodeRequest(r.Encode()[:41])
	if err != nil {
		t.Fatal(err)
	}
	if old.Group != 0 {
		t.Fatalf("legacy Group = %d, want 0", old.Group)
	}
}

func TestResponseDirtyRoundTrip(t *testing.T) {
	r := &Response{
		Status: StatusOK,
		Dirty: []DirtyPage{
			{Kind: DirtyFull, Ptr: rdma.MakePtr(1, 128), Words: []uint64{6, 7, 8}},
			{Kind: DirtyFresh, Ptr: rdma.MakePtr(2, 256), Words: []uint64{2}},
			{Kind: DirtyWord, Ptr: rdma.MakePtr(0, 64), Words: []uint64{99}},
		},
	}
	got, err := DecodeResponse(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Dirty) != 3 {
		t.Fatalf("Dirty count = %d", len(got.Dirty))
	}
	for i, d := range got.Dirty {
		want := r.Dirty[i]
		if d.Kind != want.Kind || d.Ptr != want.Ptr || len(d.Words) != len(want.Words) {
			t.Fatalf("dirty %d: got %+v want %+v", i, d, want)
		}
		for j := range d.Words {
			if d.Words[j] != want.Words[j] {
				t.Fatalf("dirty %d word %d: %d != %d", i, j, d.Words[j], want.Words[j])
			}
		}
	}
	// Error responses carry the trailer too.
	e := ErrResponse(errLike("boom"))
	e.Dirty = r.Dirty
	got2, err := DecodeResponse(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Dirty) != 3 || got2.AsError() == nil {
		t.Fatalf("error response lost dirty trailer: %+v", got2)
	}
	// Pre-replication encodings (no trailer) decode with no Dirty.
	plain := (&Response{Status: StatusOK, Values: []uint64{5}}).Encode()
	old, err := DecodeResponse(plain[:len(plain)-2])
	if err != nil || old.Dirty != nil {
		t.Fatalf("legacy response decode: %+v, %v", old, err)
	}
}

type errLike string

func (e errLike) Error() string { return string(e) }
