package nam

import "fmt"

// Topology describes the physical cluster layout of a NAM deployment: how
// memory servers map onto physical machines and where compute servers run.
// The paper's setup (Section 6): 8 machines, 4 memory servers on 2 physical
// machines (2 per machine, one per NIC port, the second crossing the QPI
// link), and up to 6 compute machines with 40 client threads each.
type Topology struct {
	// MemServers is the number of memory servers S.
	MemServers int
	// MemServersPerMachine is how many memory servers share one physical
	// machine (the paper uses 2, one per NIC port; the second pays the QPI
	// crossing on every RPC because the NIC is attached to one socket).
	MemServersPerMachine int
	// ComputeMachines is the number of physical machines running clients.
	ComputeMachines int
	// ClientsPerMachine is the number of client threads per compute machine
	// (the paper uses 40).
	ClientsPerMachine int
	// CoLocated places compute and memory servers on the same physical
	// machines (Appendix A.3): compute machine i shares machine i's NIC
	// with its memory server(s), and accesses to the local memory server
	// bypass the network entirely.
	CoLocated bool
}

// Validate checks the topology.
func (t *Topology) Validate() error {
	if t.MemServers < 1 {
		return fmt.Errorf("nam: need at least one memory server")
	}
	if t.MemServersPerMachine < 1 {
		return fmt.Errorf("nam: need at least one memory server per machine")
	}
	if t.ComputeMachines < 1 || t.ClientsPerMachine < 1 {
		return fmt.Errorf("nam: need at least one compute machine and client")
	}
	if t.CoLocated && t.ComputeMachines != t.MemMachines() {
		return fmt.Errorf("nam: co-location requires compute machines (%d) == memory machines (%d)",
			t.ComputeMachines, t.MemMachines())
	}
	return nil
}

// MemMachines returns the number of physical machines hosting memory
// servers.
func (t *Topology) MemMachines() int {
	return (t.MemServers + t.MemServersPerMachine - 1) / t.MemServersPerMachine
}

// MachineOfServer returns the physical machine hosting memory server s.
func (t *Topology) MachineOfServer(s int) int { return s / t.MemServersPerMachine }

// ServerCrossesQPI reports whether memory server s is the second (or later)
// server on its machine and therefore reaches the NIC over the inter-socket
// link (Section 6.1's explanation for coarse-grained saturating at 20
// clients per machine).
func (t *Topology) ServerCrossesQPI(s int) bool { return s%t.MemServersPerMachine != 0 }

// MachineOfClient returns the physical compute machine of client c.
func (t *Topology) MachineOfClient(c int) int {
	return c % t.ComputeMachines
}

// Clients returns the total number of client threads.
func (t *Topology) Clients() int { return t.ComputeMachines * t.ClientsPerMachine }

// LocalServer returns the memory server co-located with client c's machine,
// or -1 when the deployment is not co-located. With multiple memory servers
// per machine the first one (the non-QPI one) is considered local.
func (t *Topology) LocalServer(c int) int {
	if !t.CoLocated {
		return -1
	}
	m := t.MachineOfClient(c)
	s := m * t.MemServersPerMachine
	if s >= t.MemServers {
		return -1
	}
	return s
}

// PaperTopology returns the evaluation setup of Section 6: S memory servers
// packed two per machine, computeMachines client machines with 40 threads.
func PaperTopology(memServers, computeMachines, clientsPerMachine int) Topology {
	return Topology{
		MemServers:           memServers,
		MemServersPerMachine: 2,
		ComputeMachines:      computeMachines,
		ClientsPerMachine:    clientsPerMachine,
	}
}
