package obs

import (
	"testing"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

// The flight recorder is always on: its record path must not allocate in
// steady state, or every traced verb pays a GC tax. These tests gate that
// the way the btree micro-benchmarks gate the read path.

func TestRecordPathZeroAllocs(t *testing.T) {
	l := NewLog(0, &TickClock{})
	l.Metrics = NewMetrics("fine", 0)
	ptr := uint64(rdma.MakePtr(1, 0x640))
	allocs := testing.AllocsPerRun(1000, func() {
		l.BeginOp(OpInsert, 42, -1)
		l.BeginOp(OpInsert, 42, 1) // nested (design client under recovery)
		l.Event(EvRead, ptr, outOK)
		l.Event(EvCAS, ptr, outOK)
		l.RetryEvent(1, 2048)
		l.ReconnectEvent(1, true)
		l.EpochFence()
		l.CacheHitEvent(ptr)
		l.RPCEvent(1, 2, nil)
		l.EndOp(nil)
		l.EndOp(nil)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v allocs/op in steady state, want 0", allocs)
	}
}

func TestRecordPathZeroAllocsAfterWrap(t *testing.T) {
	// Ring wrap-around must not change the allocation profile.
	l := NewLog(64, &TickClock{})
	for i := 0; i < 1000; i++ {
		l.Event(EvRead, 0, 0)
	}
	allocs := testing.AllocsPerRun(1000, func() { l.Event(EvRead, 0, 0) })
	if allocs != 0 {
		t.Fatalf("wrapped ring allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkRecordEvent(b *testing.B) {
	l := NewLog(0, &TickClock{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Event(EvRead, uint64(i), outOK)
	}
}

func BenchmarkRecordOpSpan(b *testing.B) {
	l := NewLog(0, &TickClock{})
	l.Metrics = NewMetrics("fine", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.BeginOp(OpLookup, uint64(i), -1)
		l.Event(EvRead, 0, outOK)
		l.EndOp(nil)
	}
}

// BenchmarkTracedLookup measures the recorder's overhead on the real read
// path: a fine-grained tree on the direct transport with the Mem decorator
// and an op span around every lookup. Compare against the btree package's
// BenchmarkLookup for the untraced baseline; the delta should be a few ns
// and zero additional allocations.
func BenchmarkTracedLookup(b *testing.B) {
	const n = 100000
	f := direct.New(4, 256<<20, nam.SuperblockBytes)
	l := layout.New(512)
	tr := btree.New(l, &btree.EndpointMem{Ep: f.Endpoint(), Place: btree.RoundRobin(4, 0)}, rdma.MakePtr(0, 0))
	if _, err := tr.Build(rdma.NopEnv{}, btree.BuildConfig{}, n,
		func(i int) (uint64, uint64) { return uint64(i), uint64(i) }); err != nil {
		b.Fatal(err)
	}
	log := NewLog(0, &TickClock{})
	tr.M = WrapMem(tr.M, log)
	env := rdma.NopEnv{}
	if _, _, err := tr.Lookup(env, 1); err != nil { // warm the root pointer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i*2654435761) % n
		log.BeginOp(OpLookup, k, -1)
		vals, _, err := tr.Lookup(env, k)
		log.EndOp(err)
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) != 1 {
			b.Fatalf("Lookup(%d) = %v", k, vals)
		}
	}
}
