package obs

import (
	"fmt"
	"strings"
)

// DefaultRingEvents is the flight-recorder capacity unless overridden: enough
// for the last handful of operations even under heavy retry storms, small
// enough (32 B/event) to keep per client always-on.
const DefaultRingEvents = 1024

// DefaultMaxDumps bounds how many rendered dumps one Log retains; further
// triggers only count. Dump rendering is the exceptional path — the bound
// keeps a pathological run (every op breaching its SLO) from ballooning.
const DefaultMaxDumps = 4

// Dump is one rendered flight-recorder dump.
type Dump struct {
	// Client is the owning client's ID (-1 for harness-level logs).
	Client int
	// Reason is the trigger: "server-lost", "slo-breach", "chaos-failure", ...
	Reason string
	// Text is the rendered trace (see Render).
	Text string
}

// Log is one client's op context and flight recorder: a fixed-size ring of
// encoded events that every instrumentation seam of the client stack records
// into. It belongs to a single client goroutine, like the endpoint and the
// index client it observes; dumps are read after the goroutine quiesces.
//
// All methods are nil-receiver-safe, so call sites thread a possibly-nil
// *Log unconditionally; a nil Log disables recording. The record path
// (BeginOp/Event/EndOp and every hook method) allocates nothing in steady
// state — only a triggered dump renders text.
type Log struct {
	// Clock supplies timestamps; NewLog requires it (Wall, *sim.Proc, or a
	// TickClock for deterministic harnesses).
	Clock Clock
	// ClientID labels dumps (-1 for harness-level logs).
	ClientID int
	// SLONS, when > 0, is the per-op latency SLO in Clock units; an op
	// exceeding it triggers a dump with reason "slo-breach".
	SLONS int64
	// Metrics, when non-nil, receives each completed top-level op's kind,
	// partition, and duration.
	Metrics *Metrics
	// MaxDumps bounds retained dumps (0 means DefaultMaxDumps).
	MaxDumps int

	ring []Event
	mask uint64
	head uint64 // total events recorded; ring index = head & mask

	// Current top-level op context.
	depth   int
	opKind  OpKind
	opKey   uint64
	opPart  int
	opStart int64
	fences  uint64

	dumps        []Dump
	dumpsDropped int
}

// NewLog creates a flight recorder with the given ring capacity (rounded up
// to a power of two; 0 means DefaultRingEvents).
func NewLog(events int, clock Clock) *Log {
	if events <= 0 {
		events = DefaultRingEvents
	}
	size := 1
	for size < events {
		size <<= 1
	}
	return &Log{Clock: clock, ring: make([]Event, size), mask: uint64(size - 1), opPart: -1}
}

// Event records one raw event. Zero-alloc; the oldest entry is overwritten
// once the ring is full.
func (l *Log) Event(k EventKind, a, b uint64) {
	if l == nil {
		return
	}
	e := &l.ring[l.head&l.mask]
	e.T = l.Clock.Now()
	e.Kind = k
	e.A = a
	e.B = b
	l.head++
}

// BeginOp opens a client-visible operation. Nested calls (the design client
// under the recovery wrapper, or recovery's own presence check) record an
// EvNested marker instead of opening a new span, so one logical operation —
// including its epoch-fenced re-runs — forms a single trace. part is the
// partition owner serving the op, or -1 when the design has none (fine
// spreads pages round-robin); a nested call may fill in a partition the
// outer caller did not know.
func (l *Log) BeginOp(kind OpKind, key uint64, part int) {
	if l == nil {
		return
	}
	l.depth++
	if l.depth > 1 {
		if l.opPart < 0 && part >= 0 {
			l.opPart = part
		}
		l.Event(EvNested, key, uint64(kind))
		return
	}
	l.opKind, l.opKey, l.opPart = kind, key, part
	l.fences = 0
	l.Event(EvOpStart, key, uint64(kind)|uint64(part+1)<<8)
	l.opStart = l.ring[(l.head-1)&l.mask].T
}

// EndOp closes the operation opened by the matching BeginOp. At the top
// level it records the outcome and duration, feeds Metrics, and triggers a
// dump when the op surfaced rdma.ErrServerLost or breached the latency SLO.
func (l *Log) EndOp(err error) {
	if l == nil {
		return
	}
	if l.depth > 1 {
		l.depth--
		return
	}
	l.depth = 0
	code := errCode(err)
	l.Event(EvOpEnd, code, 0)
	dur := l.ring[(l.head-1)&l.mask].T - l.opStart
	l.ring[(l.head-1)&l.mask].B = uint64(dur)
	if l.Metrics != nil {
		l.Metrics.RecordOp(l.opKind, l.opPart, dur)
	}
	if l.SLONS > 0 && dur > l.SLONS {
		l.Event(EvSLO, uint64(dur), 0)
		l.trigger("slo-breach")
	}
	if code == ecServerLost {
		l.trigger("server-lost")
	}
}

// OpSpan records one completed client-visible operation retroactively. The
// pipelined dataplane keeps many operations in flight on one client, so the
// depth-counted BeginOp/EndOp pair (which assumes one op at a time) cannot
// bracket them; instead the engine measures each op itself and lands the
// whole span — start marker, end marker, duration, metrics — at completion
// time. SLO breaches and server-lost outcomes trigger dumps exactly as with
// EndOp. Zero-alloc.
func (l *Log) OpSpan(kind OpKind, key uint64, part int, durNS int64, err error) {
	if l == nil {
		return
	}
	l.Event(EvOpStart, key, uint64(kind)|uint64(part+1)<<8)
	code := errCode(err)
	l.Event(EvOpEnd, code, uint64(durNS))
	if l.Metrics != nil {
		l.Metrics.RecordOp(kind, part, durNS)
	}
	if l.SLONS > 0 && durNS > l.SLONS {
		l.Event(EvSLO, uint64(durNS), 0)
		l.trigger("slo-breach")
	}
	if code == ecServerLost {
		l.trigger("server-lost")
	}
}

// Hook methods: each satisfies one producer-side consumer interface
// (retry.Events, core.RecoveryEvents, cache.Events), keeping every
// dependency pointing from the protocol packages to nothing.

// RPCEvent records one two-sided call (the coarse ops, hybrid's traverse and
// install) with its destination server, request op code, and outcome.
func (l *Log) RPCEvent(server int, op byte, err error) {
	if l == nil {
		return
	}
	l.Event(EvRPC, uint64(server), uint64(op)|errCode(err)<<8)
}

// RetryEvent implements retry.Events.
func (l *Log) RetryEvent(server int, backoffNS int64) {
	l.Event(EvRetry, uint64(server), uint64(backoffNS))
}

// ReconnectEvent implements retry.Events.
func (l *Log) ReconnectEvent(server int, ok bool) {
	b := uint64(1)
	if ok {
		b = 0
	}
	l.Event(EvReconnect, uint64(server), b)
}

// EpochFence implements core.RecoveryEvents: the recovery layer opened a new
// epoch and re-traverses from the root.
func (l *Log) EpochFence() {
	if l == nil {
		return
	}
	l.fences++
	l.Event(EvFence, l.fences, 0)
}

// CacheHitEvent implements cache.Events.
func (l *Log) CacheHitEvent(ptr uint64) { l.Event(EvCacheHit, ptr, 0) }

// CacheMissEvent implements cache.Events.
func (l *Log) CacheMissEvent(ptr uint64) { l.Event(EvCacheMiss, ptr, 0) }

// CacheStaleEvent implements cache.Events.
func (l *Log) CacheStaleEvent(ptr uint64) { l.Event(EvCacheStale, ptr, 0) }

// SweepEvent records a post-run lock sweep that cleared n abandoned locks.
func (l *Log) SweepEvent(n int) { l.Event(EvSweep, uint64(n), 0) }

// PromotionEvent implements repl.Events: group home failed over to epoch
// with acting as the newly acting primary.
func (l *Log) PromotionEvent(home int, epoch uint64, acting int) {
	l.Event(EvPromote, uint64(home), epoch&0xffffffff|uint64(acting)<<32)
}

// GroupMovedEvent implements repl.Events: this client adopted a newer group
// epoch mid-operation and aborted with rdma.ErrGroupMoved.
func (l *Log) GroupMovedEvent(home int, epoch uint64) {
	l.Event(EvGroupMoved, uint64(home), epoch)
}

// MemberDeadEvent implements repl.Events: this client marked a group member
// lost; its mirror pushes are skipped from now on (degraded ack).
func (l *Log) MemberDeadEvent(home, member int) {
	l.Event(EvReplDead, uint64(home), uint64(member))
}

// RebuildEvent records a post-run replica rebuild of member (words copied).
func (l *Log) RebuildEvent(member, words int) {
	l.Event(EvRebuild, uint64(member), uint64(words))
}

// PolicyEvent implements policy.Events: the traversal-policy engine switched
// partition to strategy to (or reset it on a promotion), so every policy
// decision appears in flight-recorder dumps alongside the ops around it.
func (l *Log) PolicyEvent(partition int, to uint8, reason uint8) {
	l.Event(EvPolicy, uint64(partition), uint64(to)|uint64(reason)<<8)
}

// trigger renders and retains a dump, bounded by MaxDumps.
func (l *Log) trigger(reason string) {
	max := l.MaxDumps
	if max == 0 {
		max = DefaultMaxDumps
	}
	if len(l.dumps) >= max {
		l.dumpsDropped++
		return
	}
	l.dumps = append(l.dumps, Dump{Client: l.ClientID, Reason: reason, Text: l.Render(0)})
}

// ForceDump renders the current ring under the given reason and retains it —
// the chaos harness calls this on every client when a scenario's post-run
// invariants fail.
func (l *Log) ForceDump(reason string) {
	if l == nil {
		return
	}
	l.trigger(reason)
}

// Dumps returns the dumps triggered so far and how many further triggers
// were dropped past MaxDumps.
func (l *Log) Dumps() ([]Dump, int) {
	if l == nil {
		return nil, 0
	}
	return l.dumps, l.dumpsDropped
}

// Events returns the number of events recorded (including overwritten ones).
func (l *Log) Events() uint64 {
	if l == nil {
		return 0
	}
	return l.head
}

// Render renders the ring's surviving events as text: the last maxOps
// complete op traces (0 means all that survive in the ring), with every
// event on one line in causal order. The format is deterministic — with a
// TickClock and seeded fault schedules, two runs render byte-identical
// dumps.
func (l *Log) Render(maxOps int) string {
	if l == nil {
		return ""
	}
	lo := uint64(0)
	if l.head > uint64(len(l.ring)) {
		lo = l.head - uint64(len(l.ring))
	}
	// Limit to the last maxOps op spans: advance lo to the Nth-from-last
	// EvOpStart (events before it have scrolled out of interest).
	if maxOps > 0 {
		starts := 0
		for i := l.head; i > lo; i-- {
			if l.ring[(i-1)&l.mask].Kind == EvOpStart {
				starts++
				if starts == maxOps {
					lo = i - 1
					break
				}
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder client=%d events=%d window=%d\n", l.ClientID, l.head, l.head-lo)
	for i := lo; i < l.head; i++ {
		renderEvent(&b, &l.ring[i&l.mask])
	}
	return b.String()
}

// renderEvent renders one event line. Indentation separates op boundaries
// from the protocol events inside them.
func renderEvent(b *strings.Builder, e *Event) {
	switch e.Kind {
	case EvOpStart:
		kind := OpKind(e.B & 0xff)
		part := int(e.B>>8) - 1
		if part >= 0 {
			fmt.Fprintf(b, "[t=%d] op %s key=%d part=%d\n", e.T, kind, e.A, part)
		} else {
			fmt.Fprintf(b, "[t=%d] op %s key=%d\n", e.T, kind, e.A)
		}
	case EvOpEnd:
		fmt.Fprintf(b, "[t=%d] op-end err=%s dur=%d\n", e.T, errName(e.A), e.B)
	case EvNested:
		fmt.Fprintf(b, "  [t=%d] nested %s key=%d\n", e.T, OpKind(e.B), e.A)
	case EvRead, EvWordRead:
		fmt.Fprintf(b, "  [t=%d] %s %s %s\n", e.T, e.Kind, ptrName(e.A), outName(e.B))
	case EvWrite:
		fmt.Fprintf(b, "  [t=%d] write %s words=%d\n", e.T, ptrName(e.A), e.B)
	case EvCAS, EvUnlock:
		fmt.Fprintf(b, "  [t=%d] %s %s %s\n", e.T, e.Kind, ptrName(e.A), outName(e.B))
	case EvAlloc, EvFree:
		fmt.Fprintf(b, "  [t=%d] %s %s\n", e.T, e.Kind, ptrName(e.A))
	case EvPrefetch:
		fmt.Fprintf(b, "  [t=%d] prefetch pages=%d\n", e.T, e.A)
	case EvCacheHit, EvCacheMiss, EvCacheStale:
		fmt.Fprintf(b, "  [t=%d] %s %s\n", e.T, e.Kind, ptrName(e.A))
	case EvRPC:
		fmt.Fprintf(b, "  [t=%d] rpc s%d op=%d err=%s\n", e.T, e.A, e.B&0xff, errName(e.B>>8))
	case EvRetry:
		fmt.Fprintf(b, "  [t=%d] retry s%d backoff=%dns\n", e.T, e.A, e.B)
	case EvReconnect:
		verdict := "ok"
		if e.B != 0 {
			verdict = "failed"
		}
		fmt.Fprintf(b, "  [t=%d] reconnect s%d %s\n", e.T, e.A, verdict)
	case EvFence:
		fmt.Fprintf(b, "  [t=%d] epoch-fence n=%d\n", e.T, e.A)
	case EvSweep:
		fmt.Fprintf(b, "[t=%d] lock-sweep cleared=%d\n", e.T, e.A)
	case EvSLO:
		fmt.Fprintf(b, "[t=%d] slo-breach dur=%d\n", e.T, e.A)
	case EvPromote:
		fmt.Fprintf(b, "  [t=%d] repl-promote g%d epoch=%d acting=s%d\n",
			e.T, e.A, e.B&0xffffffff, e.B>>32)
	case EvGroupMoved:
		fmt.Fprintf(b, "  [t=%d] repl-group-moved g%d epoch=%d\n", e.T, e.A, e.B)
	case EvReplDead:
		fmt.Fprintf(b, "  [t=%d] repl-member-dead g%d s%d\n", e.T, e.A, e.B)
	case EvRebuild:
		fmt.Fprintf(b, "[t=%d] repl-rebuild s%d words=%d\n", e.T, e.A, e.B)
	case EvPolicy:
		fmt.Fprintf(b, "  [t=%d] policy part=%d to=%s reason=%s\n",
			e.T, e.A, policyStratName(e.B&0xff), policyReasonName(e.B>>8))
	case EvNone:
		// Unwritten slot (ring not yet full); skip.
	default:
		fmt.Fprintf(b, "  [t=%d] %s a=%d b=%d\n", e.T, e.Kind, e.A, e.B)
	}
}

func errName(code uint64) string {
	if int(code) < len(errNames) {
		return errNames[code]
	}
	return "error"
}

// Policy strategy/reason labels, duplicated from internal/policy (like the
// out*/ec* name tables) so obs keeps importing nothing above the protocol
// layers.
var policyStratNames = [...]string{"rpc", "one-sided"}
var policyReasonNames = [...]string{"?", "enter", "exit", "reset", "dwell-hold"}

func policyStratName(code uint64) string {
	if int(code) < len(policyStratNames) {
		return policyStratNames[code]
	}
	return "strategy?"
}

func policyReasonName(code uint64) string {
	if int(code) < len(policyReasonNames) {
		return policyReasonNames[code]
	}
	return "reason?"
}

func outName(code uint64) string {
	if int(code) < len(outcomeNames) {
		return outcomeNames[code]
	}
	return "out?"
}

// ptrName renders a remote pointer as server+offset ("s2+0x1a40").
func ptrName(raw uint64) string {
	// rdma.RemotePtr packs server in the top byte; render through the real
	// accessors so the format tracks the pointer layout.
	p := ptrOf(raw)
	return fmt.Sprintf("s%d+0x%x", p.Server(), p.Offset())
}
