package obs

import (
	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/rdma"
)

// ptrOf recovers a RemotePtr from its in-ring encoding (the raw uint64).
func ptrOf(raw uint64) rdma.RemotePtr { return rdma.RemotePtr(raw) }

// Mem decorates a btree.Mem with flight-recorder events: every level read
// (with its validation outcome), word read, write, lock CAS, unlock
// fetch-add, page allocation/free, and prefetch batch lands in the log. Like
// cache.Mem it stacks on any underlying Mem, so the fine and hybrid designs
// trace the same protocol whether or not a cache sits in between.
type Mem struct {
	Inner btree.Mem
	Log   *Log
}

// WrapMem returns m instrumented to record into log; a nil log returns m
// unchanged.
func WrapMem(m btree.Mem, log *Log) btree.Mem {
	if log == nil {
		return m
	}
	return &Mem{Inner: m, Log: log}
}

var _ btree.Mem = (*Mem)(nil)

// readOutcome classifies a ReadValidated result for the event's B word.
func readOutcome(version uint64, ok bool, err error) uint64 {
	switch {
	case err != nil:
		return outErr
	case ok:
		return outOK
	case layout.IsLocked(version):
		return outLocked
	default:
		return outTorn
	}
}

// ReadWords implements btree.Mem.
func (m *Mem) ReadWords(p rdma.RemotePtr, dst []uint64) error {
	err := m.Inner.ReadWords(p, dst)
	out := uint64(outOK)
	if err != nil {
		out = outErr
	}
	m.Log.Event(EvRead, uint64(p), out)
	return err
}

// ReadValidated implements btree.Mem, recording the validation outcome
// (ok / locked / torn / err) — the signal that distinguishes a clean descent
// from one spinning on a writer's lock.
func (m *Mem) ReadValidated(p rdma.RemotePtr, dst []uint64) (uint64, bool, error) {
	version, ok, err := m.Inner.ReadValidated(p, dst)
	m.Log.Event(EvRead, uint64(p), readOutcome(version, ok, err))
	return version, ok, err
}

// WriteWords implements btree.Mem.
func (m *Mem) WriteWords(p rdma.RemotePtr, src []uint64) error {
	err := m.Inner.WriteWords(p, src)
	m.Log.Event(EvWrite, uint64(p), uint64(len(src)))
	return err
}

// LoadWord implements btree.Mem.
func (m *Mem) LoadWord(p rdma.RemotePtr) (uint64, error) {
	v, err := m.Inner.LoadWord(p)
	out := uint64(outOK)
	if err != nil {
		out = outErr
	}
	m.Log.Event(EvWordRead, uint64(p), out)
	return v, err
}

// CAS implements btree.Mem, recording whether the lock CAS won or lost.
func (m *Mem) CAS(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	prev, err := m.Inner.CAS(p, old, new)
	out := uint64(outOK)
	switch {
	case err != nil:
		out = outErr
	case prev != old:
		out = casLost
	}
	m.Log.Event(EvCAS, uint64(p), out)
	return prev, err
}

// FetchAdd implements btree.Mem. In the lock-coupling protocol every
// fetch-add is the unlock-and-bump release, so it records as EvUnlock.
func (m *Mem) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	prev, err := m.Inner.FetchAdd(p, delta)
	out := uint64(outOK)
	if err != nil {
		out = outErr
	}
	m.Log.Event(EvUnlock, uint64(p), out)
	return prev, err
}

// AllocPage implements btree.Mem.
func (m *Mem) AllocPage(level int, n int) (rdma.RemotePtr, error) {
	p, err := m.Inner.AllocPage(level, n)
	m.Log.Event(EvAlloc, uint64(p), uint64(level))
	return p, err
}

// FreePage implements btree.Mem.
func (m *Mem) FreePage(p rdma.RemotePtr, n int) error {
	err := m.Inner.FreePage(p, n)
	m.Log.Event(EvFree, uint64(p), uint64(n))
	return err
}

// ReadPages implements btree.Mem, recording the prefetch batch as one event.
func (m *Mem) ReadPages(ps []rdma.RemotePtr, dst [][]uint64, versions []uint64) error {
	err := m.Inner.ReadPages(ps, dst, versions)
	out := uint64(outOK)
	if err != nil {
		out = outErr
	}
	m.Log.Event(EvPrefetch, uint64(len(ps)), out)
	return err
}
