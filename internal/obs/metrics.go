package obs

import (
	"sort"
	"sync"

	"github.com/namdb/rdmatree/internal/stats"
)

// Metrics aggregates per-op-type latency histograms for one index design:
// one histogram per op kind over all ops, plus one per (partition, op kind)
// when the design partitions keys (coarse and hybrid; the fine design
// spreads pages round-robin and reports only the aggregate). Histograms are
// atomic, so any number of client Logs may share one Metrics.
type Metrics struct {
	// Design labels the exported series ("coarse", "fine", "hybrid").
	Design string

	all  [NumOpKinds]stats.Histogram
	part []*[NumOpKinds]stats.Histogram
}

// NewMetrics creates a Metrics for a design with the given partition count
// (0 for unpartitioned designs).
func NewMetrics(design string, partitions int) *Metrics {
	m := &Metrics{Design: design}
	for i := 0; i < partitions; i++ {
		m.part = append(m.part, &[NumOpKinds]stats.Histogram{})
	}
	return m
}

// RecordOp records one completed op's duration (in clock units) under its
// kind and owning partition (-1 for none).
func (m *Metrics) RecordOp(kind OpKind, part int, dur int64) {
	if m == nil || kind >= NumOpKinds {
		return
	}
	m.all[kind].Record(dur)
	if part >= 0 && part < len(m.part) {
		m.part[part][kind].Record(dur)
	}
}

// Hist returns the aggregate histogram for one op kind.
func (m *Metrics) Hist(kind OpKind) *stats.Histogram { return &m.all[kind] }

// PartHist returns the histogram for one (partition, op kind) pair, or nil.
func (m *Metrics) PartHist(part int, kind OpKind) *stats.Histogram {
	if part < 0 || part >= len(m.part) {
		return nil
	}
	return &m.part[part][kind]
}

// Partitions returns the partition count m was created with.
func (m *Metrics) Partitions() int { return len(m.part) }

// MetricsSet is a process-wide registry of per-design Metrics, the source
// the OpenMetrics exporter renders from. Get is cheap enough for setup paths
// but not for the record path — clients hold the *Metrics directly.
type MetricsSet struct {
	mu sync.Mutex
	m  map[string]*Metrics
}

// Get returns the Metrics registered for design, creating it (with the given
// partition count) on first use. An existing entry's partition count wins.
func (s *MetricsSet) Get(design string, partitions int) *Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*Metrics)
	}
	if m, ok := s.m[design]; ok {
		return m
	}
	m := NewMetrics(design, partitions)
	s.m[design] = m
	return m
}

// All returns the registered Metrics sorted by design name, for stable
// export order.
func (s *MetricsSet) All() []*Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Metrics, 0, len(s.m))
	for _, m := range s.m {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Design < out[j].Design })
	return out
}
