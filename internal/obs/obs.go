// Package obs is the per-operation observability layer of the index designs:
// a span tracer that threads a lightweight op context through every client
// operation, an always-on flight recorder (a fixed-size, zero-alloc ring of
// encoded protocol events per client), and an OpenMetrics exporter unifying
// the verb counters of internal/telemetry with per-op-type latency
// histograms.
//
// The aggregate counters of internal/telemetry answer "how many" — this
// package answers "what exactly did operation X do": the causal chain of
// level reads, validation outcomes, lock CASes, verb retries with their
// backoffs, QP reconnects, and epoch-fenced re-traversals inside one
// traversal. When a chaos scenario fails, an operation surfaces
// rdma.ErrServerLost, or an op breaches its latency SLO, the recorder dumps
// the last complete op traces — making the failure replayable from the
// artifact alone.
//
// Everything here follows the repository's decorator discipline: protocol
// code is instrumented through the existing hook seams (btree.Mem,
// retry.Policy.Events, core.RecoveryEvents, cache.Events), a nil *Log
// disables recording with a nil-check, and the record path performs no
// allocation in steady state (asserted by a benchmark-gated test).
package obs

import (
	"errors"
	"time"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
)

// Clock supplies event timestamps in nanoseconds (or abstract ticks). On the
// simulated fabric this is a process's virtual clock (*sim.Proc satisfies
// Clock directly); deterministic harnesses use a TickClock so recorded traces
// are byte-stable across runs.
type Clock interface {
	Now() int64
}

type wallClock struct{}

func (wallClock) Now() int64 {
	return time.Now().UnixNano() //rdmavet:allow wallclock -- the real-time clock source itself; virtual-time paths inject *sim.Proc or TickClock instead
}

// Wall is the real-time Clock for clients on the direct and tcpnet
// transports.
var Wall Clock = wallClock{}

// TickClock is a deterministic logical clock: every Now advances by one tick.
// Timestamps then encode causal order only, which is exactly what a
// reproducible flight-recorder dump needs — two runs with the same seeds
// produce byte-identical traces. A TickClock belongs to one client goroutine,
// like the Log holding it.
type TickClock struct {
	t int64
}

// Now implements Clock.
func (c *TickClock) Now() int64 {
	c.t++
	return c.t
}

// OpKind enumerates the client-visible index operations.
type OpKind uint8

// Op kinds, one per core.Index method.
const (
	OpLookup OpKind = iota
	OpRange
	OpInsert
	OpDelete
	NumOpKinds
)

var opNames = [NumOpKinds]string{"lookup", "range", "insert", "delete"}

// String returns the op kind's label ("lookup", "insert", ...).
func (k OpKind) String() string {
	if k >= NumOpKinds {
		return "op?"
	}
	return opNames[k]
}

// EventKind enumerates the structured events an op context records.
type EventKind uint8

// Event kinds. The A/B payload words are interpreted per kind; see the
// renderer in log.go for the encoding of each.
const (
	// EvNone marks an empty ring slot.
	EvNone EventKind = iota
	// EvOpStart opens a client-visible operation: A = key,
	// B = kind | (partition+1)<<8.
	EvOpStart
	// EvOpEnd closes it: A = error code, B = duration in clock units.
	EvOpEnd
	// EvNested marks an operation issued inside another one (the epoch-fenced
	// presence check of insert recovery): A = key, B = kind.
	EvNested
	// EvRead is one page read — a level read of the descent: A = remote
	// pointer, B = outcome (see the out* codes).
	EvRead
	// EvWordRead is an 8-byte word read (root-pointer refresh): A = pointer,
	// B = outcome.
	EvWordRead
	// EvWrite is a page or in-page write: A = pointer, B = word count.
	EvWrite
	// EvCAS is a lock-word compare-and-swap: A = pointer, B = outcome
	// (casWon/casLost/outErr).
	EvCAS
	// EvUnlock is the unlock-and-bump fetch-add: A = pointer, B = outcome.
	EvUnlock
	// EvAlloc is a split's page allocation: A = new pointer.
	EvAlloc
	// EvFree is a page free: A = pointer.
	EvFree
	// EvPrefetch is one head-node prefetch batch: A = page count.
	EvPrefetch
	// EvCacheHit is a cache hit serving a level read: A = pointer.
	EvCacheHit
	// EvCacheMiss is a cache miss: A = pointer.
	EvCacheMiss
	// EvCacheStale is a revalidation failure dropping a cached copy: A =
	// pointer.
	EvCacheStale
	// EvRPC is a two-sided call (coarse op, hybrid traverse/install): A =
	// server, B = request op code | error code<<8.
	EvRPC
	// EvRetry is one verb re-attempt after a transient failure: A = server,
	// B = backoff in nanoseconds.
	EvRetry
	// EvReconnect is a QP re-establishment attempt: A = server, B = 0 ok /
	// 1 failed.
	EvReconnect
	// EvFence is an epoch fence: the recovery layer invalidated the cached
	// root and re-traverses. A = fence count within this op.
	EvFence
	// EvSweep is a post-run lock sweep: A = locks cleared.
	EvSweep
	// EvSLO marks an op that breached the latency SLO: A = duration.
	EvSLO
	// EvPromote is a completed replica-group promotion: A = group home,
	// B = new epoch | acting server<<32.
	EvPromote
	// EvGroupMoved is this client observing (and adopting) a newer group
	// epoch — the ErrGroupMoved operation abort: A = group home, B = epoch.
	EvGroupMoved
	// EvReplDead is this client marking a group member lost (mirror pushes
	// to it stop — degraded ack): A = group home, B = member.
	EvReplDead
	// EvRebuild is a post-run replica rebuild: A = rebuilt member, B = words
	// copied.
	EvRebuild
	// EvPolicy is a traversal-policy engine decision — a strategy switch or
	// a promotion-triggered reset: A = partition, B = strategy | reason<<8
	// (policy.Strategy / policy.Reason* codes).
	EvPolicy
	numEventKinds
)

var eventNames = [numEventKinds]string{
	"none", "op-start", "op-end", "nested-op", "read", "word-read", "write",
	"cas", "unlock", "alloc", "free", "prefetch", "cache-hit", "cache-miss",
	"cache-stale", "rpc", "retry", "reconnect", "epoch-fence", "lock-sweep",
	"slo-breach", "repl-promote", "repl-group-moved", "repl-member-dead",
	"repl-rebuild", "policy",
}

// String returns the event kind's label.
func (k EventKind) String() string {
	if k >= numEventKinds {
		return "ev?"
	}
	return eventNames[k]
}

// Read / CAS outcome codes (the B word of EvRead, EvWordRead, EvCAS,
// EvUnlock).
const (
	outOK     = 0 // consistent read / CAS won the lock
	outLocked = 1 // validation saw the lock bit set
	outTorn   = 2 // version changed across the transfer
	outErr    = 3 // the verb itself failed
	casLost   = 4 // CAS lost the race (prev != old)
)

var outcomeNames = [...]string{"ok", "locked", "torn", "err", "lost"}

// Error codes (the A word of EvOpEnd, and the high byte of EvRPC's B word).
const (
	ecNone = iota
	ecTimeout
	ecQPError
	ecServerDown
	ecServerLost
	ecSpinBudget
	ecOther
)

var errNames = [...]string{"ok", "timeout", "qp-error", "server-down", "server-lost", "spin-budget", "error"}

// errCode classifies err into a compact code for in-ring encoding. It
// allocates nothing.
func errCode(err error) uint64 {
	switch {
	case err == nil:
		return ecNone
	case errors.Is(err, rdma.ErrServerLost):
		return ecServerLost
	case errors.Is(err, rdma.ErrTimeout):
		return ecTimeout
	case errors.Is(err, rdma.ErrQPError):
		return ecQPError
	case errors.Is(err, rdma.ErrServerDown):
		return ecServerDown
	case errors.Is(err, btree.ErrSpinBudget), errors.Is(err, nam.ErrRemoteRetry):
		return ecSpinBudget
	default:
		return ecOther
	}
}

// Event is one encoded flight-recorder entry: a timestamp, a kind, and two
// payload words interpreted per kind. The fixed-size value encoding is what
// keeps the record path allocation-free — the ring holds events by value and
// rendering to text happens only on a dump trigger.
type Event struct {
	T    int64
	A, B uint64
	Kind EventKind
}
