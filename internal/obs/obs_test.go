package obs

import (
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/rdma"
)

func TestRingCapacityAndOverwrite(t *testing.T) {
	l := NewLog(100, &TickClock{}) // rounds up to 128
	for i := 0; i < 300; i++ {
		l.Event(EvRead, uint64(i), 0)
	}
	if got := l.Events(); got != 300 {
		t.Fatalf("Events() = %d, want 300 (overwritten events still counted)", got)
	}
	text := l.Render(0)
	if want := "window=128"; !strings.Contains(text, want) {
		t.Fatalf("Render header missing %q:\n%s", want, text)
	}
	// 300 events carry ticks 1..300; only the newest 128 (t=173..300) survive.
	if !strings.Contains(text, "[t=173]") {
		t.Fatalf("oldest surviving event missing:\n%s", text)
	}
	if strings.Contains(text, "[t=172]") {
		t.Fatalf("overwritten event still rendered:\n%s", text)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.BeginOp(OpLookup, 1, -1)
	l.Event(EvRead, 0, 0)
	l.RPCEvent(0, 1, nil)
	l.RetryEvent(0, 10)
	l.ReconnectEvent(0, true)
	l.EpochFence()
	l.CacheHitEvent(0)
	l.CacheMissEvent(0)
	l.CacheStaleEvent(0)
	l.SweepEvent(1)
	l.EndOp(nil)
	l.ForceDump("x")
	if d, dropped := l.Dumps(); d != nil || dropped != 0 {
		t.Fatalf("nil log Dumps() = %v, %d", d, dropped)
	}
	if l.Events() != 0 {
		t.Fatalf("nil log recorded events")
	}
	if l.Render(0) != "" {
		t.Fatalf("nil log rendered text")
	}
}

func TestNestedSpansFormOneTrace(t *testing.T) {
	l := NewLog(0, &TickClock{})
	l.BeginOp(OpInsert, 7, -1) // harness-owned span
	l.BeginOp(OpInsert, 7, 2)  // design client nests, fills the partition
	l.Event(EvRead, 0, outOK)
	l.EndOp(nil)
	l.BeginOp(OpLookup, 7, -1) // recovery's presence check nests too
	l.EndOp(nil)
	l.EndOp(nil)

	text := l.Render(0)
	if got := strings.Count(text, "op insert"); got != 1 {
		t.Fatalf("want exactly one top-level op span, got %d:\n%s", got, text)
	}
	if got := strings.Count(text, "nested"); got != 2 {
		t.Fatalf("want two nested markers, got %d:\n%s", got, text)
	}
	if got := strings.Count(text, "op-end"); got != 1 {
		t.Fatalf("want one op-end, got %d:\n%s", got, text)
	}
}

func TestNestedPartitionFeedsMetrics(t *testing.T) {
	m := NewMetrics("hybrid", 4)
	l := NewLog(0, &TickClock{})
	l.Metrics = m
	l.BeginOp(OpInsert, 7, -1) // harness does not know the partition
	l.BeginOp(OpInsert, 7, 2)  // the design client does
	l.EndOp(nil)
	l.EndOp(nil)
	if got := m.PartHist(2, OpInsert).Count(); got != 1 {
		t.Fatalf("partition 2 insert count = %d, want 1", got)
	}
	if got := m.Hist(OpInsert).Count(); got != 1 {
		t.Fatalf("aggregate insert count = %d, want 1", got)
	}
}

func TestServerLostTriggersDump(t *testing.T) {
	l := NewLog(0, &TickClock{})
	l.ClientID = 3
	l.BeginOp(OpLookup, 42, -1)
	l.Event(EvRead, uint64(rdma.MakePtr(2, 0x40)), outErr)
	l.EndOp(rdma.ErrServerLost)
	dumps, dropped := l.Dumps()
	if len(dumps) != 1 || dropped != 0 {
		t.Fatalf("dumps = %d dropped = %d, want 1/0", len(dumps), dropped)
	}
	d := dumps[0]
	if d.Client != 3 || d.Reason != "server-lost" {
		t.Fatalf("dump = client %d reason %q", d.Client, d.Reason)
	}
	for _, want := range []string{"op lookup key=42", "read s2+0x40 err", "op-end err=server-lost"} {
		if !strings.Contains(d.Text, want) {
			t.Fatalf("dump missing %q:\n%s", want, d.Text)
		}
	}
}

func TestSLOBreachTriggersDump(t *testing.T) {
	l := NewLog(0, &TickClock{})
	l.SLONS = 3
	l.BeginOp(OpRange, 1, -1)
	for i := 0; i < 10; i++ {
		l.Event(EvRead, 0, outOK)
	}
	l.EndOp(nil)
	dumps, _ := l.Dumps()
	if len(dumps) != 1 || dumps[0].Reason != "slo-breach" {
		t.Fatalf("dumps = %+v, want one slo-breach", dumps)
	}
	if !strings.Contains(dumps[0].Text, "slo-breach dur=11") {
		t.Fatalf("dump missing breach marker:\n%s", dumps[0].Text)
	}
	// A fast op must not trigger.
	l2 := NewLog(0, &TickClock{})
	l2.SLONS = 100
	l2.BeginOp(OpLookup, 1, -1)
	l2.EndOp(nil)
	if d, _ := l2.Dumps(); len(d) != 0 {
		t.Fatalf("fast op triggered a dump")
	}
}

func TestDumpBoundAndDropCount(t *testing.T) {
	l := NewLog(0, &TickClock{})
	l.MaxDumps = 2
	for i := 0; i < 5; i++ {
		l.ForceDump("x")
	}
	dumps, dropped := l.Dumps()
	if len(dumps) != 2 || dropped != 3 {
		t.Fatalf("dumps = %d dropped = %d, want 2/3", len(dumps), dropped)
	}
}

func TestRenderDeterministic(t *testing.T) {
	run := func() string {
		l := NewLog(0, &TickClock{})
		l.BeginOp(OpInsert, 9, 1)
		l.Event(EvRead, uint64(rdma.MakePtr(1, 0x640)), outOK)
		l.Event(EvCAS, uint64(rdma.MakePtr(1, 0x640)), casLost)
		l.RetryEvent(1, 1234)
		l.EpochFence()
		l.RPCEvent(1, 2, nil)
		l.ReconnectEvent(1, false)
		l.EndOp(nil)
		return l.Render(0)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs rendered differently:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{
		"op insert key=9 part=1",
		"read s1+0x640 ok",
		"cas s1+0x640 lost",
		"retry s1 backoff=1234ns",
		"epoch-fence n=1",
		"rpc s1 op=2 err=ok",
		"reconnect s1 failed",
		"op-end err=ok",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("render missing %q:\n%s", want, a)
		}
	}
}

func TestRenderMaxOpsWindow(t *testing.T) {
	l := NewLog(0, &TickClock{})
	for op := 0; op < 5; op++ {
		l.BeginOp(OpLookup, uint64(op), -1)
		l.Event(EvRead, 0, outOK)
		l.EndOp(nil)
	}
	text := l.Render(2)
	if got := strings.Count(text, "op lookup"); got != 2 {
		t.Fatalf("Render(2) kept %d op spans, want 2:\n%s", got, text)
	}
	if !strings.Contains(text, "key=4") || !strings.Contains(text, "key=3") {
		t.Fatalf("Render(2) missing the two newest ops:\n%s", text)
	}
}

func TestEpochFenceCountsPerOp(t *testing.T) {
	l := NewLog(0, &TickClock{})
	l.BeginOp(OpInsert, 1, -1)
	l.EpochFence()
	l.EpochFence()
	l.EndOp(nil)
	l.BeginOp(OpInsert, 2, -1)
	l.EpochFence()
	l.EndOp(nil)
	text := l.Render(0)
	if !strings.Contains(text, "epoch-fence n=2") {
		t.Fatalf("first op's second fence not numbered 2:\n%s", text)
	}
	// The counter resets per op: the second op's fence is n=1 again.
	if got := strings.Count(text, "epoch-fence n=1"); got != 2 {
		t.Fatalf("fence numbering not per-op (n=1 appears %d times):\n%s", got, text)
	}
}
