package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/namdb/rdmatree/internal/telemetry"
)

// ContentType is the OpenMetrics text media type served on /metrics.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders the unified metrics export as OpenMetrics text:
// the per-verb counters and latency summaries of rec, its fault / retry /
// recovery counters, and the per-op-type latency summaries of every design
// in set (aggregate and per partition). Either source may be nil. The output
// always ends with the required "# EOF" terminator.
func WriteOpenMetrics(w io.Writer, rec *telemetry.Recorder, set *MetricsSet) error {
	b := &strings.Builder{}
	if rec != nil {
		writeVerbMetrics(b, rec)
		writeFaultMetrics(b, rec)
	}
	if set != nil {
		writeOpMetrics(b, set)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeVerbMetrics(b *strings.Builder, rec *telemetry.Recorder) {
	b.WriteString("# TYPE nam_verb_ops counter\n")
	b.WriteString("# HELP nam_verb_ops Completed verbs by type.\n")
	for v := telemetry.Verb(0); v < telemetry.NumVerbs; v++ {
		fmt.Fprintf(b, "nam_verb_ops_total{verb=%q} %d\n", v.String(), rec.VerbOps(v))
	}
	b.WriteString("# TYPE nam_verb_bytes counter\n")
	b.WriteString("# HELP nam_verb_bytes Payload bytes moved by verb type.\n")
	for v := telemetry.Verb(0); v < telemetry.NumVerbs; v++ {
		fmt.Fprintf(b, "nam_verb_bytes_total{verb=%q} %d\n", v.String(), rec.VerbBytes(v))
	}
	b.WriteString("# TYPE nam_verb_latency_ns summary\n")
	b.WriteString("# HELP nam_verb_latency_ns Per-verb latency distribution in nanoseconds.\n")
	for v := telemetry.Verb(0); v < telemetry.NumVerbs; v++ {
		snap := rec.VerbLatency(v)
		if snap.N == 0 {
			continue
		}
		writeSummary(b, "nam_verb_latency_ns", fmt.Sprintf("verb=%q", v.String()),
			snap.Percentile(50), snap.Percentile(99), snap.Percentile(99.9), snap.Sum, snap.N)
	}
}

func writeFaultMetrics(b *strings.Builder, rec *telemetry.Recorder) {
	b.WriteString("# TYPE nam_faults counter\n")
	b.WriteString("# HELP nam_faults Injected faults observed, by kind.\n")
	fmt.Fprintf(b, "nam_faults_total %d\n", rec.Faults())
	b.WriteString("# TYPE nam_verb_retries counter\n")
	b.WriteString("# HELP nam_verb_retries Verb re-attempts after transient failures.\n")
	fmt.Fprintf(b, "nam_verb_retries_total %d\n", rec.Retries())
	b.WriteString("# TYPE nam_qp_reconnects counter\n")
	b.WriteString("# HELP nam_qp_reconnects Successful QP re-establishments.\n")
	fmt.Fprintf(b, "nam_qp_reconnects_total %d\n", rec.Reconnects())
	b.WriteString("# TYPE nam_op_recoveries counter\n")
	b.WriteString("# HELP nam_op_recoveries Epoch-fenced operation re-traversals.\n")
	fmt.Fprintf(b, "nam_op_recoveries_total %d\n", rec.OpRecoveries())
}

func writeOpMetrics(b *strings.Builder, set *MetricsSet) {
	all := set.All()
	if len(all) == 0 {
		return
	}
	b.WriteString("# TYPE nam_op_latency summary\n")
	b.WriteString("# HELP nam_op_latency Client-observed per-operation latency by design and op type (clock units).\n")
	for _, m := range all {
		for k := OpKind(0); k < NumOpKinds; k++ {
			h := m.Hist(k)
			if h.Count() == 0 {
				continue
			}
			labels := fmt.Sprintf("design=%q,op=%q", m.Design, k.String())
			writeSummary(b, "nam_op_latency", labels,
				h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.Sum(), h.Count())
		}
	}
	if !anyPartitioned(all) {
		return
	}
	b.WriteString("# TYPE nam_op_partition_latency summary\n")
	b.WriteString("# HELP nam_op_partition_latency Per-partition operation latency for partitioned designs (clock units).\n")
	for _, m := range all {
		for p := 0; p < m.Partitions(); p++ {
			for k := OpKind(0); k < NumOpKinds; k++ {
				h := m.PartHist(p, k)
				if h.Count() == 0 {
					continue
				}
				labels := fmt.Sprintf("design=%q,partition=%q,op=%q", m.Design, fmt.Sprint(p), k.String())
				writeSummary(b, "nam_op_partition_latency", labels,
					h.Percentile(50), h.Percentile(99), h.Percentile(99.9), h.Sum(), h.Count())
			}
		}
	}
}

func anyPartitioned(ms []*Metrics) bool {
	for _, m := range ms {
		if m.Partitions() > 0 {
			return true
		}
	}
	return false
}

// writeSummary emits one OpenMetrics summary series: the p50/p99/p999
// quantiles plus the _sum and _count samples.
func writeSummary(b *strings.Builder, family, labels string, p50, p99, p999, sum, count int64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	fmt.Fprintf(b, "%s{%s%squantile=\"0.5\"} %d\n", family, labels, sep, p50)
	fmt.Fprintf(b, "%s{%s%squantile=\"0.99\"} %d\n", family, labels, sep, p99)
	fmt.Fprintf(b, "%s{%s%squantile=\"0.999\"} %d\n", family, labels, sep, p999)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %d\n", family, sum)
		fmt.Fprintf(b, "%s_count %d\n", family, count)
		return
	}
	fmt.Fprintf(b, "%s_sum{%s} %d\n", family, labels, sum)
	fmt.Fprintf(b, "%s_count{%s} %d\n", family, labels, count)
}

// MetricsHandler serves the OpenMetrics export over HTTP — the /metrics
// endpoint of namserver and nambench. Either source may be nil.
func MetricsHandler(rec *telemetry.Recorder, set *MetricsSet) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = WriteOpenMetrics(w, rec, set)
	})
}

// LintOpenMetrics validates text against the OpenMetrics text-format rules
// this exporter relies on: every sample belongs to a family declared by a
// preceding # TYPE line, counter samples use the _total suffix, summary
// samples are quantile/_sum/_count series, sample lines parse as
// name{labels} value, and the exposition ends with exactly one # EOF line.
// It returns nil when text is well-formed. The CI smoke job runs this over a
// live /metrics scrape.
func LintOpenMetrics(text string) error {
	lines := strings.Split(text, "\n")
	// Trailing newline yields one empty final element.
	if n := len(lines); n < 2 || lines[n-1] != "" || lines[n-2] != "# EOF" {
		return fmt.Errorf("openmetrics: exposition must end with a single %q line", "# EOF")
	}
	types := map[string]string{} // family -> counter|summary|gauge|...
	sawEOF := false
	for ln, line := range lines[:len(lines)-1] {
		lineNo := ln + 1
		if line == "" {
			return fmt.Errorf("openmetrics: line %d: empty line inside exposition", lineNo)
		}
		if sawEOF {
			return fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("openmetrics: line %d: malformed TYPE line %q", lineNo, line)
			}
			family, kind := parts[2], parts[3]
			switch kind {
			case "counter", "gauge", "summary", "histogram", "info", "stateset", "unknown":
			default:
				return fmt.Errorf("openmetrics: line %d: unknown metric type %q", lineNo, kind)
			}
			if _, dup := types[family]; dup {
				return fmt.Errorf("openmetrics: line %d: duplicate TYPE for family %q", lineNo, family)
			}
			types[family] = kind
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("openmetrics: line %d: unknown comment %q", lineNo, line)
		}
		name, err := sampleName(line)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", lineNo, err)
		}
		family, ok := matchFamily(name, types)
		if !ok {
			return fmt.Errorf("openmetrics: line %d: sample %q has no preceding TYPE declaration", lineNo, name)
		}
		if types[family] == "counter" && !strings.HasSuffix(name, "_total") &&
			!strings.HasSuffix(name, "_created") {
			return fmt.Errorf("openmetrics: line %d: counter sample %q must use the _total suffix", lineNo, name)
		}
	}
	if !sawEOF {
		return fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	return nil
}

// sampleName parses a sample line ("name{labels} value [timestamp]") and
// returns the metric name, validating the basic shape.
func sampleName(line string) (string, error) {
	rest := line
	name := rest
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", fmt.Errorf("unterminated label set in %q", line)
		}
		if err := lintLabels(rest[i+1 : j]); err != nil {
			return "", err
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else if i := strings.IndexByte(rest, ' '); i >= 0 {
		name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	} else {
		return "", fmt.Errorf("sample %q has no value", line)
	}
	if name == "" || !validMetricName(name) {
		return "", fmt.Errorf("invalid metric name %q", name)
	}
	if rest == "" {
		return "", fmt.Errorf("sample %q has no value", line)
	}
	value := strings.Fields(rest)[0]
	if _, err := parseFloat(value); err != nil {
		return "", fmt.Errorf("sample value %q is not a number", value)
	}
	return name, nil
}

func lintLabels(s string) error {
	if s == "" {
		return nil
	}
	// Labels are name="value" pairs separated by commas; values are quoted
	// and our exporter never emits embedded quotes, so a quote-aware split
	// suffices.
	inQuote := false
	start := 0
	var pairs []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case ',':
			if !inQuote {
				pairs = append(pairs, s[start:i])
				start = i + 1
			}
		}
	}
	if inQuote {
		return fmt.Errorf("unterminated label value in %q", s)
	}
	pairs = append(pairs, s[start:])
	for _, p := range pairs {
		eq := strings.IndexByte(p, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", p)
		}
		v := p[eq+1:]
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value in %q must be quoted", p)
		}
	}
	return nil
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(name) > 0
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}

// matchFamily resolves a sample name to its declared family, stripping the
// suffixes the declared type allows (_total/_created for counters,
// _sum/_count for summaries and histograms, _bucket for histograms).
func matchFamily(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suf := range []string{"_total", "_created", "_sum", "_count", "_bucket"} {
		if base, found := strings.CutSuffix(name, suf); found {
			if _, ok := types[base]; ok {
				return base, true
			}
		}
	}
	return "", false
}
