package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/telemetry"
)

func exportText(t *testing.T, rec *telemetry.Recorder, set *MetricsSet) string {
	t.Helper()
	var b strings.Builder
	if err := WriteOpenMetrics(&b, rec, set); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestWriteOpenMetricsLintsClean(t *testing.T) {
	rec := telemetry.NewRecorder(4)
	rec.RecordVerb(telemetry.VerbRead, 1, 512, 900)
	rec.RecordVerb(telemetry.VerbCAS, 0, 8, 1100)
	rec.CountRetry()
	rec.CountReconnect()
	rec.CountOpRecovery()
	rec.CountFault("drop")

	set := &MetricsSet{}
	fine := set.Get("fine", 0)
	fine.RecordOp(OpLookup, -1, 7)
	fine.RecordOp(OpInsert, -1, 12)
	coarse := set.Get("coarse", 4)
	coarse.RecordOp(OpLookup, 2, 3)

	text := exportText(t, rec, set)
	if err := LintOpenMetrics(text); err != nil {
		t.Fatalf("exporter output fails its own lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		`nam_verb_ops_total{verb="READ"} 1`,
		`nam_verb_retries_total 1`,
		`nam_qp_reconnects_total 1`,
		`nam_op_recoveries_total 1`,
		`nam_faults_total 1`,
		`nam_op_latency{design="fine",op="lookup",quantile="0.5"}`,
		`nam_op_latency_count{design="fine",op="insert"} 1`,
		`nam_op_partition_latency{design="coarse",partition="2",op="lookup",quantile="0.99"}`,
		"# EOF\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("export missing %q:\n%s", want, text)
		}
	}
	// The fine design is unpartitioned: no per-partition series for it.
	if strings.Contains(text, `nam_op_partition_latency{design="fine"`) {
		t.Fatalf("unpartitioned design exported partition series:\n%s", text)
	}
}

func TestWriteOpenMetricsNilSources(t *testing.T) {
	text := exportText(t, nil, nil)
	if text != "# EOF\n" {
		t.Fatalf("empty export = %q", text)
	}
	if err := LintOpenMetrics(text); err != nil {
		t.Fatal(err)
	}
	// One-sided variants stay valid too.
	if err := LintOpenMetrics(exportText(t, telemetry.NewRecorder(2), nil)); err != nil {
		t.Fatal(err)
	}
	if err := LintOpenMetrics(exportText(t, nil, &MetricsSet{})); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsHandler(t *testing.T) {
	rec := telemetry.NewRecorder(2)
	rec.RecordVerb(telemetry.VerbCall, 0, 64, 500)
	srv := httptest.NewServer(MetricsHandler(rec, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, ContentType)
	}
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := LintOpenMetrics(b.String()); err != nil {
		t.Fatalf("handler output fails lint: %v", err)
	}
	if !strings.Contains(b.String(), `nam_verb_ops_total{verb="CALL"} 1`) {
		t.Fatalf("handler output missing CALL counter:\n%s", b.String())
	}
}

func TestLintOpenMetricsRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"missing EOF", "# TYPE a counter\na_total 1\n"},
		{"no trailing newline", "# TYPE a counter\na_total 1\n# EOF"},
		{"content after EOF", "# EOF\nx 1\n"},
		{"empty line", "# TYPE a counter\n\na_total 1\n# EOF\n"},
		{"undeclared family", "sample_x 1\n# EOF\n"},
		{"counter without _total", "# TYPE a counter\na 1\n# EOF\n"},
		{"duplicate TYPE", "# TYPE a counter\n# TYPE a counter\na_total 1\n# EOF\n"},
		{"unknown type", "# TYPE a sometype\na_total 1\n# EOF\n"},
		{"malformed TYPE", "# TYPE a\n# EOF\n"},
		{"unknown comment", "# FOO bar\n# EOF\n"},
		{"bad value", "# TYPE a counter\na_total x\n# EOF\n"},
		{"no value", "# TYPE a counter\na_total\n# EOF\n"},
		{"bad name", "# TYPE 9a counter\n9a_total 1\n# EOF\n"},
		{"unterminated labels", "# TYPE a counter\na_total{x=\"1 2\n# EOF\n"},
		{"unquoted label value", "# TYPE a counter\na_total{x=1} 2\n# EOF\n"},
	}
	for _, tc := range cases {
		if err := LintOpenMetrics(tc.text); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", tc.name, tc.text)
		}
	}
}

func TestLintOpenMetricsAcceptsSuffixes(t *testing.T) {
	text := "# TYPE s summary\n" +
		"s{quantile=\"0.5\"} 1\n" +
		"s_sum 10\n" +
		"s_count 2\n" +
		"# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 1\n" +
		"h_sum 1\n" +
		"h_count 1\n" +
		"# TYPE c counter\n" +
		"c_total 1\n" +
		"c_created 1.5e9\n" +
		"# EOF\n"
	if err := LintOpenMetrics(text); err != nil {
		t.Fatalf("lint rejected valid exposition: %v", err)
	}
}
