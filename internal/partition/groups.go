package partition

// Groups describes the k-way replica groups of a replicated memory tier.
// Every memory server s is the *home* of one group whose members are the k
// consecutive servers starting at s (mod S). The home server is the group's
// primary at epoch 0; each promotion advances the group's epoch by one and
// rotates the acting primary to the next member, so the acting primary is a
// pure function of (home, epoch) — deterministic across every client that
// has observed the same epoch, with no coordination beyond the epoch word
// itself.
//
// k = 1 degenerates to the unreplicated layout: every group is its home
// server alone and promotion is impossible (a lost region stays lost).
type Groups struct {
	servers  int
	replicas int
}

// NewGroups builds the replica-group map for S servers at replication factor
// k. k is clamped to [1, S]: more replicas than servers would put two copies
// of a page on one region, which protects nothing.
func NewGroups(servers, replicas int) Groups {
	if servers < 1 {
		panic("partition: need at least one server")
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > servers {
		replicas = servers
	}
	return Groups{servers: servers, replicas: replicas}
}

// Servers returns the number of memory servers (= number of groups).
func (g Groups) Servers() int { return g.servers }

// Replicas returns the replication factor k.
func (g Groups) Replicas() int { return g.replicas }

// Members returns the member servers of the group homed at server home, in
// promotion order: Members(h) = [h, (h+1) mod S, ..., (h+k-1) mod S]. The
// slice is freshly allocated.
func (g Groups) Members(home int) []int {
	out := make([]int, g.replicas)
	for i := range out {
		out[i] = (home + i) % g.servers
	}
	return out
}

// Backups returns the group's members minus the home server.
func (g Groups) Backups(home int) []int {
	return g.Members(home)[1:]
}

// PrimaryAt returns the acting primary of the group homed at home when the
// group epoch is epoch: member number epoch mod k. Epoch 0 is the home
// server itself; every promotion rotates one member forward.
func (g Groups) PrimaryAt(home int, epoch uint64) int {
	return (home + int(epoch%uint64(g.replicas))) % g.servers
}

// Member reports whether server is a member of the group homed at home.
func (g Groups) Member(home, server int) bool {
	d := server - home
	if d < 0 {
		d += g.servers
	}
	return d < g.replicas
}

// GroupsOf returns the homes of every group that server is a member of:
// server backs the k groups homed at [server-k+1, server] (mod S). The home
// group is listed first.
func (g Groups) GroupsOf(server int) []int {
	out := make([]int, g.replicas)
	for i := range out {
		h := server - i
		if h < 0 {
			h += g.servers
		}
		out[i] = h
	}
	return out
}
