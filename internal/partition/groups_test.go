package partition

import (
	"reflect"
	"testing"
)

func TestGroupsMembersDeterministic(t *testing.T) {
	g := NewGroups(4, 2)
	for home := 0; home < 4; home++ {
		a := g.Members(home)
		b := g.Members(home)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Members(%d) not deterministic: %v vs %v", home, a, b)
		}
	}
	want := map[int][]int{
		0: {0, 1},
		1: {1, 2},
		2: {2, 3},
		3: {3, 0},
	}
	for home, w := range want {
		if got := g.Members(home); !reflect.DeepEqual(got, w) {
			t.Errorf("Members(%d) = %v, want %v", home, got, w)
		}
	}
}

func TestGroupsPromotionOrdering(t *testing.T) {
	g := NewGroups(5, 3)
	// At epoch e the acting primary is member e mod k, rotating through the
	// membership in order and wrapping back to the home server.
	home := 3
	members := g.Members(home) // [3 4 0]
	for e := uint64(0); e < 10; e++ {
		want := members[e%3]
		if got := g.PrimaryAt(home, e); got != want {
			t.Errorf("PrimaryAt(%d, %d) = %d, want %d", home, e, got, want)
		}
	}
	// Epoch 0 is always the home server.
	for h := 0; h < 5; h++ {
		if got := g.PrimaryAt(h, 0); got != h {
			t.Errorf("PrimaryAt(%d, 0) = %d, want home", h, got)
		}
	}
}

func TestGroupsMembership(t *testing.T) {
	g := NewGroups(4, 2)
	for home := 0; home < 4; home++ {
		in := map[int]bool{}
		for _, m := range g.Members(home) {
			in[m] = true
		}
		for s := 0; s < 4; s++ {
			if got := g.Member(home, s); got != in[s] {
				t.Errorf("Member(%d, %d) = %v, want %v", home, s, got, in[s])
			}
		}
	}
}

func TestGroupsOf(t *testing.T) {
	g := NewGroups(4, 2)
	// Server 0 is home of group 0 and backup of group 3.
	if got := g.GroupsOf(0); !reflect.DeepEqual(got, []int{0, 3}) {
		t.Errorf("GroupsOf(0) = %v, want [0 3]", got)
	}
	// Every group that lists s as a member must appear in GroupsOf(s).
	for s := 0; s < 4; s++ {
		seen := map[int]bool{}
		for _, h := range g.GroupsOf(s) {
			seen[h] = true
			if !g.Member(h, s) {
				t.Errorf("GroupsOf(%d) lists %d but Member(%d,%d) is false", s, h, h, s)
			}
		}
		for h := 0; h < 4; h++ {
			if g.Member(h, s) && !seen[h] {
				t.Errorf("Member(%d,%d) true but GroupsOf(%d) = %v omits it", h, s, s, g.GroupsOf(s))
			}
		}
	}
}

func TestGroupsClamp(t *testing.T) {
	g := NewGroups(2, 5)
	if g.Replicas() != 2 {
		t.Fatalf("replicas clamped to %d, want 2", g.Replicas())
	}
	g = NewGroups(3, 0)
	if g.Replicas() != 1 {
		t.Fatalf("replicas floored to %d, want 1", g.Replicas())
	}
	// k=1: every group is its home alone; promotion cannot move the primary.
	for e := uint64(0); e < 4; e++ {
		if got := g.PrimaryAt(2, e); got != 2 {
			t.Errorf("k=1 PrimaryAt(2,%d) = %d, want 2", e, got)
		}
	}
}

func TestGroupsBackups(t *testing.T) {
	g := NewGroups(4, 3)
	if got := g.Backups(2); !reflect.DeepEqual(got, []int{3, 0}) {
		t.Errorf("Backups(2) = %v, want [3 0]", got)
	}
	if got := NewGroups(4, 1).Backups(1); len(got) != 0 {
		t.Errorf("k=1 Backups = %v, want empty", got)
	}
}
