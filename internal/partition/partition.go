// Package partition implements the key-partitioning schemes of the
// coarse-grained index distribution (Section 2.2): range-based, hash-based
// and round-robin assignment of keys to memory servers, plus the paper's
// skewed range assignment used to model attribute-value skew in the
// evaluation (80/12/5/3 across four servers, Section 6.1).
package partition

import (
	"fmt"
	"sort"
)

// Partitioner maps a key to the memory server storing it.
type Partitioner interface {
	// Server returns the memory server responsible for key.
	Server(key uint64) int
	// Servers returns the number of partitions.
	Servers() int
	// CoversRange returns the servers whose partitions intersect [lo, hi].
	// For hash partitioning this is all servers (range queries must be
	// broadcast — the S-fold traversal cost of Table 2).
	CoversRange(lo, hi uint64) []int
}

// Range partitions the key space by explicit split points: server i covers
// keys in [bounds[i-1], bounds[i]) with bounds[-1] = 0 and the last server
// covering everything from bounds[len-1] on.
type Range struct {
	// bounds[i] is the first key NOT covered by server i; len = servers-1.
	bounds []uint64
}

// NewRangeUniform builds a range partitioner splitting [0, keyspace) evenly
// across servers.
func NewRangeUniform(servers int, keyspace uint64) *Range {
	if servers < 1 {
		panic("partition: need at least one server")
	}
	bounds := make([]uint64, servers-1)
	for i := range bounds {
		bounds[i] = keyspace / uint64(servers) * uint64(i+1)
	}
	return &Range{bounds: bounds}
}

// NewRangeWeighted builds a range partitioner assigning fractions of
// [0, keyspace) to servers proportionally to weights. The paper's skewed
// assignment is NewRangeWeighted(keyspace, 80, 12, 5, 3).
func NewRangeWeighted(keyspace uint64, weights ...float64) *Range {
	if len(weights) < 1 {
		panic("partition: need at least one weight")
	}
	var total float64
	for _, w := range weights {
		if w <= 0 {
			panic("partition: weights must be positive")
		}
		total += w
	}
	bounds := make([]uint64, len(weights)-1)
	var acc float64
	for i := 0; i < len(weights)-1; i++ {
		acc += weights[i]
		bounds[i] = uint64(acc / total * float64(keyspace))
	}
	return &Range{bounds: bounds}
}

// NewRangeFromBounds rebuilds a range partitioner from split points
// previously obtained via Bounds (catalog deserialization).
func NewRangeFromBounds(bounds []uint64) *Range {
	return &Range{bounds: append([]uint64(nil), bounds...)}
}

// Server implements Partitioner.
func (r *Range) Server(key uint64) int {
	return sort.Search(len(r.bounds), func(i int) bool { return key < r.bounds[i] })
}

// Servers implements Partitioner.
func (r *Range) Servers() int { return len(r.bounds) + 1 }

// CoversRange implements Partitioner: the contiguous run of partitions
// intersecting [lo, hi].
func (r *Range) CoversRange(lo, hi uint64) []int {
	if hi < lo {
		return nil
	}
	first, last := r.Server(lo), r.Server(hi)
	out := make([]int, 0, last-first+1)
	for s := first; s <= last; s++ {
		out = append(out, s)
	}
	return out
}

// Bounds returns the split points (for catalog metadata).
func (r *Range) Bounds() []uint64 { return append([]uint64(nil), r.bounds...) }

// Hash partitions keys by a 64-bit mix hash modulo the server count.
type Hash struct {
	servers int
}

// NewHash builds a hash partitioner over the given number of servers.
func NewHash(servers int) *Hash {
	if servers < 1 {
		panic("partition: need at least one server")
	}
	return &Hash{servers: servers}
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Server implements Partitioner.
func (h *Hash) Server(key uint64) int { return int(mix64(key) % uint64(h.servers)) }

// Servers implements Partitioner.
func (h *Hash) Servers() int { return h.servers }

// CoversRange implements Partitioner: hash partitioning scatters every range
// over all servers.
func (h *Hash) CoversRange(lo, hi uint64) []int {
	out := make([]int, h.servers)
	for i := range out {
		out[i] = i
	}
	return out
}

// RoundRobin assigns key k to server k mod servers — the per-key analogue of
// the fine-grained scheme's per-node distribution; useful as a baseline.
type RoundRobin struct {
	servers int
}

// NewRoundRobin builds a round-robin partitioner.
func NewRoundRobin(servers int) *RoundRobin {
	if servers < 1 {
		panic("partition: need at least one server")
	}
	return &RoundRobin{servers: servers}
}

// Server implements Partitioner.
func (r *RoundRobin) Server(key uint64) int { return int(key % uint64(r.servers)) }

// Servers implements Partitioner.
func (r *RoundRobin) Servers() int { return r.servers }

// CoversRange implements Partitioner.
func (r *RoundRobin) CoversRange(lo, hi uint64) []int {
	if hi < lo {
		return nil
	}
	n := r.servers
	if hi-lo+1 < uint64(n) {
		n = int(hi - lo + 1)
	}
	out := make([]int, 0, n)
	for s := 0; s < r.servers && uint64(len(out)) < hi-lo+1; s++ {
		out = append(out, s)
	}
	return out
}

// String names for diagnostics.
func (r *Range) String() string      { return fmt.Sprintf("range(%d)", r.Servers()) }
func (h *Hash) String() string       { return fmt.Sprintf("hash(%d)", h.servers) }
func (r *RoundRobin) String() string { return fmt.Sprintf("rr(%d)", r.servers) }
