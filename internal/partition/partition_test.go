package partition

import (
	"testing"
	"testing/quick"
)

func TestRangeUniformBalance(t *testing.T) {
	p := NewRangeUniform(4, 1000)
	counts := make([]int, 4)
	for k := uint64(0); k < 1000; k++ {
		counts[p.Server(k)]++
	}
	for s, c := range counts {
		if c != 250 {
			t.Fatalf("server %d got %d keys; want 250 (%v)", s, c, counts)
		}
	}
	// Ordering: servers cover contiguous ascending ranges.
	prev := 0
	for k := uint64(0); k < 1000; k++ {
		s := p.Server(k)
		if s < prev {
			t.Fatalf("range partitioning not monotone at key %d", k)
		}
		prev = s
	}
}

func TestRangeWeightedSkew(t *testing.T) {
	// The paper's 80/12/5/3 attribute-value-skew assignment (Section 6.1).
	p := NewRangeWeighted(100000, 80, 12, 5, 3)
	counts := make([]int, 4)
	for k := uint64(0); k < 100000; k++ {
		counts[p.Server(k)]++
	}
	want := []int{80000, 12000, 5000, 3000}
	for s := range want {
		diff := counts[s] - want[s]
		if diff < -2 || diff > 2 {
			t.Fatalf("server %d got %d keys; want ~%d", s, counts[s], want[s])
		}
	}
}

func TestRangeCoversRange(t *testing.T) {
	p := NewRangeUniform(4, 1000)
	cases := []struct {
		lo, hi uint64
		want   []int
	}{
		{0, 100, []int{0}},
		{0, 250, []int{0, 1}},
		{200, 800, []int{0, 1, 2, 3}},
		{600, 700, []int{2}},
		{900, 2000, []int{3}},
		{5, 4, nil},
	}
	for _, c := range cases {
		got := p.CoversRange(c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Fatalf("CoversRange(%d,%d) = %v; want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("CoversRange(%d,%d) = %v; want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
}

func TestHashCoversAllAndBalance(t *testing.T) {
	p := NewHash(4)
	if got := p.CoversRange(10, 20); len(got) != 4 {
		t.Fatalf("hash CoversRange = %v; want all 4", got)
	}
	counts := make([]int, 4)
	for k := uint64(0); k < 100000; k++ {
		counts[p.Server(k)]++
	}
	for s, c := range counts {
		if c < 23000 || c > 27000 {
			t.Fatalf("hash server %d got %d of 100000; poor balance %v", s, c, counts)
		}
	}
}

func TestRoundRobin(t *testing.T) {
	p := NewRoundRobin(3)
	for k := uint64(0); k < 30; k++ {
		if p.Server(k) != int(k%3) {
			t.Fatalf("Server(%d) = %d", k, p.Server(k))
		}
	}
	if got := p.CoversRange(0, 1); len(got) != 2 {
		t.Fatalf("rr CoversRange(0,1) = %v; want 2 servers", got)
	}
	if got := p.CoversRange(0, 100); len(got) != 3 {
		t.Fatalf("rr CoversRange(0,100) = %v; want 3 servers", got)
	}
}

func TestPartitionerInRangeProperty(t *testing.T) {
	parts := []Partitioner{
		NewRangeUniform(5, 1<<40),
		NewRangeWeighted(1<<40, 80, 12, 5, 3),
		NewHash(7),
		NewRoundRobin(6),
	}
	f := func(key uint64) bool {
		for _, p := range parts {
			s := p.Server(key)
			if s < 0 || s >= p.Servers() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeCoversContainsServerProperty(t *testing.T) {
	p := NewRangeWeighted(1<<30, 80, 12, 5, 3)
	f := func(a, b uint64) bool {
		a %= 1 << 30
		b %= 1 << 30
		if a > b {
			a, b = b, a
		}
		covered := p.CoversRange(a, b)
		has := func(s int) bool {
			for _, c := range covered {
				if c == s {
					return true
				}
			}
			return false
		}
		// The servers of both endpoints and the midpoint must be covered.
		return has(p.Server(a)) && has(p.Server(b)) && has(p.Server((a+b)/2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
