package pipeline_test

import (
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

func buildPipelined(tb testing.TB, inflight int) *fine.PipelinedClient {
	tb.Helper()
	fab := direct.New(4, 256<<20, nam.SuperblockBytes)
	cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: layout.New(512)},
		core.BuildSpec{N: 100000, At: func(i int) (uint64, uint64) { return uint64(i), uint64(i) }})
	if err != nil {
		tb.Fatal(err)
	}
	return fine.NewPipelinedClient(fab.Endpoint(), direct.Env{}, cat, 0, inflight)
}

// TestPipelinedLookupZeroAllocs is the steady-state allocation gate of the
// async dataplane: once the engine's slots, scratch pages, and ring buffers
// are warm, submitting and completing pipelined lookups must not allocate.
// The callback must be a pre-bound func value — a closure literal in the
// submission loop would itself allocate per op and has no place on a hot
// path.
func TestPipelinedLookupZeroAllocs(t *testing.T) {
	const n = 100000
	pc := buildPipelined(t, 16)
	bad := 0
	cb := func(vals []uint64, err error) {
		if err != nil || len(vals) != 1 {
			bad++
		}
	}
	for i := 0; i < 64; i++ { // warm slots, scratch, ring capacities
		pc.Lookup(uint64(i*2654435761)%n, cb)
	}
	pc.Drain()
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		pc.Lookup(uint64(i*2654435761)%n, cb)
		i++
	})
	pc.Drain()
	if bad != 0 {
		t.Fatalf("%d lookups failed or returned the wrong number of values", bad)
	}
	if allocs != 0 {
		t.Fatalf("pipelined lookup allocates %v allocs/op in steady state, want 0", allocs)
	}
}

// BenchmarkPipelinedLookup reports the engine's per-op cost on the direct
// (zero-latency) transport at several in-flight depths. On direct the
// pipeline buys no latency overlap — this measures pure engine overhead
// next to BenchmarkLookup in internal/btree; the latency win is measured on
// the simulated fabric by nambench -exp pipeline.
func BenchmarkPipelinedLookup(b *testing.B) {
	const n = 100000
	for _, inflight := range []int{1, 8, 16} {
		b.Run(map[int]string{1: "inflight=1", 8: "inflight=8", 16: "inflight=16"}[inflight], func(b *testing.B) {
			pc := buildPipelined(b, inflight)
			bad := 0
			cb := func(vals []uint64, err error) {
				if err != nil || len(vals) != 1 {
					bad++
				}
			}
			for i := 0; i < 64; i++ {
				pc.Lookup(uint64(i*2654435761)%n, cb)
			}
			pc.Drain()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pc.Lookup(uint64(i*2654435761)%n, cb)
			}
			pc.Drain()
			b.StopTimer()
			if bad != 0 {
				b.Fatalf("%d lookups failed", bad)
			}
		})
	}
}
