package pipeline_test

import (
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/rdma/faultnet"
)

// TestChaosPipelined is the recovery-composition gate: three clients each
// keep eight operations in flight through the engine while a deterministic
// fault schedule injects verb drops, QP errors, and one scripted server
// crash/restart (registrations survive: Lose=false). A transient fault on
// one in-flight operation must not stall or corrupt its neighbours — the
// engine retries the affected step, re-establishes the QP, or runs the
// epoch-fenced operation-level recovery, while the other slots keep
// advancing. Afterwards the tree must verify and every acknowledged insert
// must be present exactly once (unique values are the idempotence tokens of
// the exactly-once contract). Run under -race in CI: the three engines share
// the fabric and the fault state, so data races in the dataplane surface
// here.
func TestChaosPipelined(t *testing.T) {
	const (
		servers      = 3
		clients      = 3
		inflight     = 8
		opsPerClient = 600
		preload      = 3000
		keyspace     = 1 << 16
	)
	fab := direct.New(servers, 64<<20, nam.SuperblockBytes)
	step := uint64(keyspace / preload)
	cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: layout.New(512)},
		core.BuildSpec{
			N:         preload,
			At:        func(i int) (uint64, uint64) { return uint64(i) * step, uint64(i) },
			HeadEvery: 6,
		})
	if err != nil {
		t.Fatal(err)
	}

	net := faultnet.New(faultnet.Schedule{
		Seed:         7,
		DropRate:     0.02,
		QPErrorEvery: 300,
		Steps: []faultnet.Step{
			// One crash/restart mid-run; the region's registrations survive
			// (Lose=false), so interrupted clients reconnect and resume.
			{AtTick: 4000, Server: 1, DownForTicks: 600},
		},
	}, nil)

	type kv struct{ k, v uint64 }
	acked := make([][]kv, clients)
	var failed [clients]int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each engine owns its endpoint; the faultnet decorator is the
			// Reconnector the engine uses to clear QP errors.
			ep := net.Endpoint(fab.Endpoint(), c)
			pc := fine.NewPipelinedClient(ep, direct.Env{}, cat, c, inflight)
			pc.SetSpinBudget(64)
			// Deterministic multiplicative-hash key walk, disjoint per client.
			for i := 0; i < opsPerClient; i++ {
				k := (uint64(i)*2654435761 + uint64(c)) % keyspace
				if i%4 == 3 {
					pc.Lookup(k, func(vals []uint64, err error) {
						if err != nil {
							failed[c]++
						}
					})
					continue
				}
				// Unique per logical insert: the idempotence token.
				v := uint64(1)<<40 | uint64(c)<<32 | uint64(i)
				pc.Insert(k, v, func(err error) {
					if err != nil {
						failed[c]++
						return
					}
					acked[c] = append(acked[c], kv{k, v})
				})
			}
			pc.Drain()
		}(c)
	}
	wg.Wait()

	// Post-run verification through a bare endpoint: release any lock
	// abandoned by an operation that exhausted its recovery budget, then
	// verify the tree and sweep the whole keyspace.
	bare := fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0)
	if _, err := bare.Tree().RecoverLocks(); err != nil {
		t.Fatalf("post-run lock recovery: %v", err)
	}
	if _, err := bare.Tree().CheckInvariants(rdma.NopEnv{}); err != nil {
		t.Fatalf("post-run invariant check: %v", err)
	}
	seen := map[kv]int{}
	if err := bare.Range(0, ^uint64(0)>>1, func(k, v uint64) bool {
		seen[kv{k, v}]++
		return true
	}); err != nil {
		t.Fatalf("post-run scan: %v", err)
	}

	nAcked := 0
	for c := range acked {
		nAcked += len(acked[c])
		for _, p := range acked[c] {
			if seen[p] != 1 {
				t.Errorf("client %d: acked insert (%d, %x) present %d times, want 1", c, p.k, p.v, seen[p])
			}
		}
	}
	for p, n := range seen {
		if n > 1 {
			t.Errorf("pair (%d, %x) present %d times", p.k, p.v, n)
		}
	}
	for i := 0; i < preload; i++ {
		if seen[kv{uint64(i) * step, uint64(i)}] != 1 {
			t.Errorf("preload entry (%d, %d) lost", uint64(i)*step, i)
		}
	}
	if nAcked == 0 {
		t.Fatal("no insert was ever acknowledged — the schedule starved the run")
	}
	t.Logf("acked=%d failed=%v", nAcked, failed)
}
