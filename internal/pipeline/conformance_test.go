package pipeline_test

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/rdma/tcpnet"
	"github.com/namdb/rdmatree/internal/workload"
)

// The conformance scripts pin the pipelined dataplane to the serial fused
// client: the same operation sequence must produce byte-identical results
// whether it runs blocking one-at-a-time or through the engine with 1 or 8
// operations in flight. Results are transcribed in submission order (the
// engine completes operations in protocol order, so the scripts index
// results by operation, not by completion).

// driveSerial runs the fixed script against a serial client.
func driveSerial(t *testing.T, idx core.Index) string {
	t.Helper()
	var b strings.Builder
	for k := uint64(0); k < 600; k += 7 {
		vals, err := idx.Lookup(k)
		fmt.Fprintf(&b, "get %d -> %v %v\n", k, vals, err)
	}
	for k := uint64(2000); k < 2080; k++ {
		fmt.Fprintf(&b, "put %d %v\n", k, idx.Insert(k, k*3))
	}
	for k := uint64(2000); k < 2030; k++ {
		ok, err := idx.Delete(k, k*3)
		fmt.Fprintf(&b, "del %d %v %v\n", k, ok, err)
	}
	for k := uint64(1990); k < 2090; k += 3 {
		vals, err := idx.Lookup(k)
		fmt.Fprintf(&b, "chk %d -> %v %v\n", k, vals, err)
	}
	return b.String()
}

// drivePipelined runs the same script through the async surface, keeping the
// engine's submission window full within each script section and draining at
// section boundaries (the serial script's sections are order-dependent:
// inserts must land before the deletes that target them).
func drivePipelined(t *testing.T, c *fine.PipelinedClient) string {
	t.Helper()
	type getRes struct {
		vals []uint64
		err  error
	}
	var gets []getRes
	var getKeys []uint64
	submitGet := func(k uint64) {
		i := len(gets)
		gets = append(gets, getRes{})
		getKeys = append(getKeys, k)
		c.Lookup(k, func(vals []uint64, err error) {
			// vals aliases engine scratch: copy before the callback returns.
			gets[i] = getRes{vals: append([]uint64(nil), vals...), err: err}
		})
	}

	var b strings.Builder
	for k := uint64(0); k < 600; k += 7 {
		submitGet(k)
	}
	c.Drain()
	for i, r := range gets {
		fmt.Fprintf(&b, "get %d -> %v %v\n", getKeys[i], r.vals, r.err)
	}

	putErrs := make([]error, 80)
	for i := range putErrs {
		i := i
		k := uint64(2000 + i)
		c.Insert(k, k*3, func(err error) { putErrs[i] = err })
	}
	c.Drain()
	for i, err := range putErrs {
		fmt.Fprintf(&b, "put %d %v\n", 2000+i, err)
	}

	type delRes struct {
		ok  bool
		err error
	}
	delRess := make([]delRes, 30)
	for i := range delRess {
		i := i
		k := uint64(2000 + i)
		c.Delete(k, k*3, func(ok bool, err error) { delRess[i] = delRes{ok, err} })
	}
	c.Drain()
	for i, r := range delRess {
		fmt.Fprintf(&b, "del %d %v %v\n", 2000+i, r.ok, r.err)
	}

	gets, getKeys = nil, nil
	for k := uint64(1990); k < 2090; k += 3 {
		submitGet(k)
	}
	c.Drain()
	for i, r := range gets {
		fmt.Fprintf(&b, "chk %d -> %v %v\n", getKeys[i], r.vals, r.err)
	}
	return b.String()
}

// TestConformanceDirect pins pipelined == serial on the direct transport at
// in-flight depths 1 and 8.
func TestConformanceDirect(t *testing.T) {
	build := func() (*direct.Fabric, *nam.Catalog) {
		fab := direct.New(3, 64<<20, nam.SuperblockBytes)
		cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: layout.New(512)},
			core.BuildSpec{N: 5000, At: workload.DataItem, HeadEvery: 16})
		if err != nil {
			t.Fatal(err)
		}
		return fab, cat
	}
	fab, cat := build()
	serial := driveSerial(t, fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0))

	for _, inflight := range []int{1, 8} {
		fab, cat := build()
		pipelined := drivePipelined(t, fine.NewPipelinedClient(fab.Endpoint(), direct.Env{}, cat, 0, inflight))
		if serial != pipelined {
			t.Errorf("in-flight %d diverged from serial:\nserial:\n%s\npipelined:\n%s",
				inflight, serial, pipelined)
		}
	}
}

// TestConformanceTCP repeats the pin over real TCP connections to in-process
// memory-server agents — the transport whose native async surface actually
// interleaves wire traffic of different in-flight operations.
func TestConformanceTCP(t *testing.T) {
	run := func(inflight int) string {
		var addrs []string
		for i := 0; i < 2; i++ {
			srv := rdma.NewServer(i, 64<<20, nam.SuperblockBytes)
			agent := tcpnet.NewAgent(srv, nil)
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, l.Addr().String())
			go agent.Serve(l)
			t.Cleanup(agent.Close)
		}
		setup := tcpnet.Dial(addrs)
		cat, err := fine.Build(setup, fine.Options{Layout: layout.New(1024)},
			core.BuildSpec{N: 2000, At: workload.DataItem, HeadEvery: 16})
		setup.Close()
		if err != nil {
			t.Fatal(err)
		}
		ep := tcpnet.Dial(addrs)
		t.Cleanup(ep.Close)
		if inflight == 0 {
			return driveSerial(t, fine.NewClient(ep, rdma.NopEnv{}, cat, 0))
		}
		return drivePipelined(t, fine.NewPipelinedClient(ep, rdma.NopEnv{}, cat, 0, inflight))
	}

	serial := run(0)
	for _, inflight := range []int{1, 8} {
		if pipelined := run(inflight); serial != pipelined {
			t.Errorf("in-flight %d diverged from serial over TCP:\nserial:\n%s\npipelined:\n%s",
				inflight, serial, pipelined)
		}
	}
}
