package pipeline_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/coarse"
	"github.com/namdb/rdmatree/internal/core/hybrid"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/partition"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/workload"
)

// asyncIndex is the callback surface shared by all three designs' pipelined
// clients.
type asyncIndex interface {
	Lookup(key uint64, cb func(values []uint64, err error))
	Insert(key, value uint64, cb func(err error))
	Delete(key, value uint64, cb func(found bool, err error))
	Drain()
}

var (
	_ asyncIndex = (*coarse.PipelinedClient)(nil)
	_ asyncIndex = (*hybrid.PipelinedClient)(nil)
)

// driveAsync mirrors driveSerial through the callback surface, draining at
// section boundaries.
func driveAsync(t *testing.T, c asyncIndex) string {
	t.Helper()
	type getRes struct {
		vals []uint64
		err  error
	}
	var b strings.Builder

	runGets := func(format string, keys []uint64) {
		res := make([]getRes, len(keys))
		for i, k := range keys {
			i := i
			c.Lookup(k, func(vals []uint64, err error) {
				res[i] = getRes{vals: append([]uint64(nil), vals...), err: err}
			})
		}
		c.Drain()
		for i, r := range res {
			fmt.Fprintf(&b, format, keys[i], r.vals, r.err)
		}
	}

	var keys []uint64
	for k := uint64(0); k < 600; k += 7 {
		keys = append(keys, k)
	}
	runGets("get %d -> %v %v\n", keys)

	putErrs := make([]error, 80)
	for i := range putErrs {
		i := i
		k := uint64(2000 + i)
		c.Insert(k, k*3, func(err error) { putErrs[i] = err })
	}
	c.Drain()
	for i, err := range putErrs {
		fmt.Fprintf(&b, "put %d %v\n", 2000+i, err)
	}

	type delRes struct {
		ok  bool
		err error
	}
	delRess := make([]delRes, 30)
	for i := range delRess {
		i := i
		k := uint64(2000 + i)
		c.Delete(k, k*3, func(ok bool, err error) { delRess[i] = delRes{ok, err} })
	}
	c.Drain()
	for i, r := range delRess {
		fmt.Fprintf(&b, "del %d %v %v\n", 2000+i, r.ok, r.err)
	}

	keys = nil
	for k := uint64(1990); k < 2090; k += 3 {
		keys = append(keys, k)
	}
	runGets("chk %d -> %v %v\n", keys)
	return b.String()
}

// TestConformanceCoarse pins the coarse pipelined client (outstanding RPC
// ring) to the serial RPC client at in-flight 1 and 8.
func TestConformanceCoarse(t *testing.T) {
	const keyspace = 1 << 16
	build := func() (*direct.Fabric, *nam.Catalog) {
		fab := direct.New(3, 64<<20, nam.SuperblockBytes)
		srv := coarse.NewServer(fab, coarse.Options{
			Layout: layout.New(512),
			Part:   partition.NewRangeUniform(3, keyspace),
		})
		cat, err := srv.Build(core.BuildSpec{N: 5000, At: workload.DataItem})
		if err != nil {
			t.Fatal(err)
		}
		fab.SetHandler(srv.Handler())
		return fab, cat
	}
	fab, cat := build()
	serial := driveSerial(t, coarse.NewClient(fab.Endpoint(), direct.Env{}, cat))
	for _, inflight := range []int{1, 8} {
		fab, cat := build()
		got := driveAsync(t, coarse.NewPipelinedClient(fab.Endpoint(), direct.Env{}, cat, inflight))
		if serial != got {
			t.Errorf("coarse in-flight %d diverged from serial:\nserial:\n%s\npipelined:\n%s",
				inflight, serial, got)
		}
	}
}

// TestConformanceHybrid pins the hybrid pipelined client (outstanding
// traverse RPCs + serial one-sided leaf accesses) to the serial client at
// in-flight 1 and 8.
func TestConformanceHybrid(t *testing.T) {
	const keyspace = 1 << 16
	build := func() (*direct.Fabric, *nam.Catalog) {
		fab := direct.New(3, 64<<20, nam.SuperblockBytes)
		srv := hybrid.NewServer(fab, hybrid.Options{
			Layout: layout.New(512),
			Part:   partition.NewRangeUniform(3, keyspace),
		})
		cat, err := srv.Build(fab.Endpoint(), core.BuildSpec{N: 5000, At: workload.DataItem, HeadEvery: 16})
		if err != nil {
			t.Fatal(err)
		}
		fab.SetHandler(srv.Handler())
		return fab, cat
	}
	fab, cat := build()
	serial := driveSerial(t, hybrid.NewClient(fab.Endpoint(), direct.Env{}, cat, 0))
	for _, inflight := range []int{1, 8} {
		fab, cat := build()
		got := driveAsync(t, hybrid.NewPipelinedClient(fab.Endpoint(), direct.Env{}, cat, 0, inflight))
		if serial != got {
			t.Errorf("hybrid in-flight %d diverged from serial:\nserial:\n%s\npipelined:\n%s",
				inflight, serial, got)
		}
	}
}
