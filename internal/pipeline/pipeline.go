// Package pipeline implements the asynchronous pipelined client dataplane:
// one Engine keeps up to Inflight index operations outstanding on a single
// endpoint (one queue pair per memory server), advancing each operation as a
// resumable state machine (btree.Traversal) driven by verb completions.
//
// Scheduling is bulk-synchronous rounds. In each round the engine flushes
// everything the in-flight traversals posted — verbs from *different*
// operations coalesce into the same doorbell batch — polls the batch, and
// delivers each traversal its own completions, which makes it post its next
// step. One exposed round trip therefore advances every in-flight operation
// by one protocol step: point-lookup throughput approaches
// depth-independent RTT amortization instead of paying depth round trips per
// operation (the Storm-style dataplane; see DESIGN.md §11).
//
// Correctness under reordering rests on two properties:
//
//   - Per-QP ordering. All verbs to one server run in posting order, so a
//     traversal's fused page+version read pair validates exactly as the
//     serial Mem.ReadValidated batch does, even with other operations'
//     verbs interleaved around it.
//   - Step isolation. A traversal only ever has one step outstanding, and a
//     step's verbs target one page. Verbs of different in-flight operations
//     are mutually unordered — which is exactly the concurrency the B-link
//     protocol already tolerates between different clients.
//
// Fault handling composes with the client-side recovery stack: transient
// verb failures repost the step (the serial retry.Policy budget), QP errors
// park the traversal until the engine re-establishes the queue pair
// (neighbouring operations keep flowing), and operation-level failures run
// the same epoch-fenced re-traversal as core.Recovered — including the
// insert presence check that makes re-runs exactly-once. A fault on one
// in-flight operation never stalls or corrupts its neighbours: its slot
// retries independently while every other slot advances each round.
package pipeline

import (
	"errors"
	"fmt"

	"github.com/namdb/rdmatree/internal/btree"
	"github.com/namdb/rdmatree/internal/obs"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/telemetry"
)

const (
	// DefaultInflight is the default number of operation slots.
	DefaultInflight = 16
	// DefaultMaxOpAttempts mirrors core.DefaultMaxOpAttempts: how often one
	// operation is run (first run included) across epoch-fenced recoveries.
	DefaultMaxOpAttempts = 6
	// reconnectBudget bounds reconnect attempts per QP-error episode,
	// mirroring retry.Policy.MaxAttempts.
	reconnectBudget = 8
)

// Config configures an Engine. Tree, Ep and Env are required; everything
// else is optional.
type Config struct {
	// Tree is the client's handle onto the fine-grained index. The engine
	// uses it for layout and root-cache state, and to run rare structural
	// operations (leaf splits) through the serial path.
	Tree *btree.Tree
	// Ep is the client's endpoint. Its non-blocking surface (rdma.Async) is
	// the dataplane; its blocking surface runs serial fallbacks between
	// rounds.
	Ep rdma.Endpoint
	// Env is the client's execution environment (time charging, backoff).
	Env rdma.Env
	// Inflight is the number of operation slots (default DefaultInflight).
	Inflight int
	// MaxOpAttempts bounds epoch-fenced re-runs per operation (default
	// DefaultMaxOpAttempts).
	MaxOpAttempts int
	// Reconnector re-establishes queue pairs after rdma.ErrQPError. Leave
	// nil for transports that recover by teardown + lazy redial (tcpnet) or
	// cannot fail (direct, simnet without faults).
	Reconnector rdma.Reconnector
	// Rec receives per-verb, per-op and pipeline counters. May be shared.
	Rec *telemetry.Recorder
	// Log is the flight recorder: each completed operation lands as a
	// retroactive span (obs.Log.OpSpan), fences and reconnects as events.
	Log *obs.Log
}

// slot is one operation slot: a traversal state machine plus the operation's
// recovery bookkeeping. Slots and their buffers live for the engine's
// lifetime, so steady-state operation allocates nothing.
type slot struct {
	idx int32
	tr  *btree.Traversal

	op         btree.TraversalOp
	key, value uint64
	attempts   int
	insRecover bool // insert recovery: presence-check lookup in flight
	start      int64
	st         btree.Stats

	blockedOn   int
	blockedErr  error
	reconnTries int

	onLookup func(values []uint64, err error)
	onInsert func(err error)
	onDelete func(found bool, err error)
}

// Engine is a per-client submission/completion core. Like the endpoint it
// drives, an Engine is owned by a single client goroutine.
type Engine struct {
	cfg Config
	ep  rdma.AsyncEndpoint

	slots  []*slot
	free   []int32
	active int

	// posting is the slot whose traversal is currently being advanced; the
	// PostSink methods tag every posted verb with it.
	posting int32
	// postOrder[i] is the slot that posted the i-th verb of the current
	// round; completions arrive in posting order, and each slot's verbs for
	// one step are contiguous, so delivery walks contiguous runs. nextOrder
	// accumulates the following round while the current one is delivered.
	postOrder, nextOrder []int32
	comps                []rdma.Completion
	blocked              []int32
	pauseWanted          bool
}

var _ btree.PostSink = (*Engine)(nil)

// New creates an engine. The endpoint's native non-blocking surface is used
// when it has one (all bundled transports and the telemetry decorator);
// otherwise the generic adapter provides the same contract.
func New(cfg Config) *Engine {
	if cfg.Inflight <= 0 {
		cfg.Inflight = DefaultInflight
	}
	if cfg.MaxOpAttempts <= 0 {
		cfg.MaxOpAttempts = DefaultMaxOpAttempts
	}
	e := &Engine{cfg: cfg, ep: rdma.Async(cfg.Ep)}
	e.slots = make([]*slot, cfg.Inflight)
	e.free = make([]int32, 0, cfg.Inflight)
	for i := range e.slots {
		e.slots[i] = &slot{idx: int32(i), tr: btree.NewTraversal(cfg.Tree, cfg.Env)}
		e.free = append(e.free, int32(i))
	}
	return e
}

// Inflight returns the engine's slot count.
func (e *Engine) Inflight() int { return len(e.slots) }

// SetRecorder directs telemetry (verb counters come from the endpoint
// decorator; the engine contributes per-op index stats and pipeline-shape
// counters). A nil rec disables recording.
func (e *Engine) SetRecorder(rec *telemetry.Recorder) { e.cfg.Rec = rec }

// SetLog attaches the flight recorder. Unlike the serial clients' depth-
// counted BeginOp/EndOp bracketing — which cannot express interleaved
// operations — the engine records each operation as a retroactive span when
// it completes (obs.Log.OpSpan). A nil log disables tracing.
func (e *Engine) SetLog(l *obs.Log) { e.cfg.Log = l }

// --- btree.PostSink -------------------------------------------------------

// PostRead implements btree.PostSink.
func (e *Engine) PostRead(p rdma.RemotePtr, dst []uint64) {
	e.ep.PostRead(p, dst)
	e.nextOrder = append(e.nextOrder, e.posting)
}

// PostWrite implements btree.PostSink.
func (e *Engine) PostWrite(p rdma.RemotePtr, src []uint64) {
	e.ep.PostWrite(p, src)
	e.nextOrder = append(e.nextOrder, e.posting)
}

// PostCAS implements btree.PostSink.
func (e *Engine) PostCAS(p rdma.RemotePtr, old, new uint64) {
	e.ep.PostCAS(p, old, new)
	e.nextOrder = append(e.nextOrder, e.posting)
}

// PostFetchAdd implements btree.PostSink.
func (e *Engine) PostFetchAdd(p rdma.RemotePtr, delta uint64) {
	e.ep.PostFetchAdd(p, delta)
	e.nextOrder = append(e.nextOrder, e.posting)
}

// --- submission -----------------------------------------------------------

// Lookup submits a lookup. cb runs when the operation completes (possibly
// within this call, when the engine had to pump rounds to free a slot). The
// values slice aliases slot scratch: it is valid only inside the callback.
// Callbacks may submit new operations.
func (e *Engine) Lookup(key uint64, cb func(values []uint64, err error)) {
	s := e.take()
	s.op, s.key, s.value = btree.TravLookup, key, 0
	s.onLookup = cb
	e.begin(s)
}

// Insert submits an insert of (key, value).
func (e *Engine) Insert(key, value uint64, cb func(err error)) {
	s := e.take()
	s.op, s.key, s.value = btree.TravInsert, key, value
	s.onInsert = cb
	e.begin(s)
}

// Delete submits a delete of one entry matching (key, value); the callback
// reports whether an entry was marked.
func (e *Engine) Delete(key, value uint64, cb func(found bool, err error)) {
	s := e.take()
	s.op, s.key, s.value = btree.TravDelete, key, value
	s.onDelete = cb
	e.begin(s)
}

// Drain runs rounds until every in-flight operation completed.
func (e *Engine) Drain() {
	for e.active > 0 {
		e.pumpRound()
	}
}

// Range drains the pipeline and executes a blocking one-sided range scan.
// Scans are not pipelined: a scan is a pointer chain (each leaf names the
// next), so overlapping its steps with point operations buys no round trips,
// and the serial scan already prefetches via head nodes.
func (e *Engine) Range(lo, hi uint64, emit func(k, v uint64) bool) error {
	e.Drain()
	var start int64
	if e.cfg.Log != nil {
		start = e.cfg.Log.Clock.Now()
	}
	st, err := e.cfg.Tree.Scan(e.cfg.Env, lo, hi, emit)
	if e.cfg.Rec != nil {
		e.cfg.Rec.RecordIndexOp(st)
	}
	if e.cfg.Log != nil {
		e.cfg.Log.OpSpan(obs.OpRange, lo, -1, e.cfg.Log.Clock.Now()-start, err)
	}
	return err
}

// take claims a free slot, pumping rounds until one completes if all are
// busy (submission backpressure).
func (e *Engine) take() *slot {
	for len(e.free) == 0 {
		e.pumpRound()
	}
	idx := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	e.active++
	return e.slots[idx]
}

func (e *Engine) begin(s *slot) {
	s.attempts = 1
	s.insRecover = false
	s.st = btree.Stats{}
	if e.cfg.Log != nil {
		s.start = e.cfg.Log.Clock.Now()
	}
	e.advance(s, s.op)
}

// advance (re)arms s's traversal for op and runs its first step.
func (e *Engine) advance(s *slot, op btree.TraversalOp) {
	value := s.value
	if op == btree.TravLookup {
		value = 0
	}
	s.tr.Begin(op, s.key, value)
	e.posting = s.idx
	res := s.tr.Step(nil, e)
	e.handle(s, res)
}

// --- the round loop -------------------------------------------------------

// pumpRound runs one scheduling round: doorbell the verbs posted since the
// last round, poll their completions, and deliver each traversal its run.
func (e *Engine) pumpRound() {
	e.postOrder, e.nextOrder = e.nextOrder, e.postOrder[:0]
	if e.pauseWanted {
		// Coalesced backoff: however many traversals hit a consistency
		// restart or transient fault last round, the engine pays one pause.
		e.cfg.Env.Pause()
		e.pauseWanted = false
	}
	if len(e.postOrder) == 0 {
		if len(e.blocked) > 0 {
			e.retryBlocked()
			return
		}
		if e.active == 0 {
			return
		}
		panic("pipeline: active operations with no posted verbs")
	}
	e.ep.Flush()
	if e.cfg.Rec != nil {
		e.cfg.Rec.RecordPipelineRound(int64(e.active))
	}
	e.comps = e.ep.Poll(e.comps[:0])
	if len(e.comps) != len(e.postOrder) {
		panic(fmt.Sprintf("pipeline: %d completions for %d posted verbs", len(e.comps), len(e.postOrder)))
	}
	for i := 0; i < len(e.comps); {
		idx := e.postOrder[i]
		j := i + 1
		for j < len(e.comps) && e.postOrder[j] == idx {
			j++
		}
		s := e.slots[idx]
		e.posting = idx
		res := s.tr.Step(e.comps[i:j], e)
		e.handle(s, res)
		i = j
	}
	e.retryBlocked()
}

// handle dispatches one step result.
func (e *Engine) handle(s *slot, res btree.StepResult) {
	if s.tr.TakePause() {
		e.pauseWanted = true
	}
	switch res.Status {
	case btree.StepRunning:
		// Verbs queued for the next round.
	case btree.StepDone:
		s.st.Add(s.tr.St)
		if s.insRecover {
			e.presenceResult(s)
			return
		}
		e.finish(s, nil)
	case btree.StepNeedSerial:
		s.st.Add(s.tr.St)
		e.runSerial(s)
	case btree.StepBlocked:
		s.blockedOn = res.Server
		s.blockedErr = res.Err
		s.reconnTries = 0
		e.blocked = append(e.blocked, s.idx)
	case btree.StepFailed:
		s.st.Add(s.tr.St)
		e.opError(s, res.Err)
	}
}

// runSerial executes the whole operation through the serial path — reached
// only for inserts that need a leaf split. The traversal reported
// StepNeedSerial before locking anything, so the serial re-run is
// exactly-once. Blocking verbs are safe here: delivery happens with no
// completions outstanding, and the unflushed posts of other slots are
// buffered client-side until the next doorbell.
func (e *Engine) runSerial(s *slot) {
	st, err := e.cfg.Tree.Insert(e.cfg.Env, s.key, s.value)
	s.st.Add(st)
	if err != nil {
		e.opError(s, err)
		return
	}
	e.finish(s, nil)
}

// presenceResult consumes the epoch-fenced presence check of an interrupted
// insert (core.Recovered's exactly-once contract: values act as idempotence
// tokens).
func (e *Engine) presenceResult(s *slot) {
	s.insRecover = false
	for _, v := range s.tr.Values {
		if v == s.value {
			// The interrupted attempt published (key, value): committed.
			e.finish(s, nil)
			return
		}
	}
	e.advance(s, btree.TravInsert)
}

// recoverable mirrors core.Recovered: a new epoch and a re-traversal can be
// expected to clear transient verb failures and blown spin budgets, but not
// a lost region.
func recoverable(err error) bool {
	if errors.Is(err, rdma.ErrServerLost) {
		return false
	}
	return rdma.IsTransient(err) || errors.Is(err, btree.ErrSpinBudget)
}

// opError applies operation-level recovery to a failed attempt.
func (e *Engine) opError(s *slot, err error) {
	if !recoverable(err) {
		e.finish(s, err)
		return
	}
	if s.attempts >= e.cfg.MaxOpAttempts {
		e.finish(s, fmt.Errorf("pipeline: %s(%d) unrecovered after %d attempts: %w",
			opName(s.op), s.key, e.cfg.MaxOpAttempts, err))
		return
	}
	s.attempts++
	e.fence()
	if s.op == btree.TravInsert {
		// Presence check before the re-run; see presenceResult.
		s.insRecover = true
		e.advance(s, btree.TravLookup)
		return
	}
	e.advance(s, s.op)
}

// fence opens a new epoch for one slot's re-traversal: drop the shared root
// cache (whatever the interrupted attempt cached is suspect) and record the
// fence. Other slots' in-flight steps are unaffected — they hold validated
// copies and their own page pointers, which stay correct under B-link
// semantics; at worst their next restart re-reads the fresh root too.
func (e *Engine) fence() {
	e.cfg.Tree.InvalidateRoot()
	if e.cfg.Rec != nil {
		e.cfg.Rec.CountOpRecovery()
	}
	e.cfg.Log.EpochFence()
}

// retryBlocked attempts one reconnect per blocked slot. Success reposts the
// interrupted step; ErrServerDown re-parks the slot (bounded attempts, with
// the engine's coalesced pause as backoff — faultnet's Reconnect advances
// the fault schedule, so a scripted restart always arrives); anything else
// aborts the step into operation-level recovery.
func (e *Engine) retryBlocked() {
	if len(e.blocked) == 0 {
		return
	}
	pending := e.blocked
	e.blocked = e.blocked[:0]
	for _, idx := range pending {
		s := e.slots[idx]
		err := e.reconnect(s)
		if e.cfg.Log != nil && e.cfg.Reconnector != nil {
			e.cfg.Log.ReconnectEvent(s.blockedOn, err == nil)
		}
		if err == nil {
			if e.cfg.Rec != nil {
				e.cfg.Rec.CountReconnect()
			}
			e.posting = s.idx
			res := s.tr.Redo(e)
			e.handle(s, res)
			continue
		}
		if errors.Is(err, rdma.ErrServerDown) {
			s.reconnTries++
			if s.reconnTries < reconnectBudget {
				e.blocked = append(e.blocked, idx)
				e.pauseWanted = true
				continue
			}
			err = fmt.Errorf("pipeline: server %d down after %d reconnect attempts: %w",
				s.blockedOn, s.reconnTries, err)
		}
		res := s.tr.Abort(err)
		e.handle(s, res)
	}
}

func (e *Engine) reconnect(s *slot) error {
	if e.cfg.Reconnector == nil {
		// No reconnect surface (tcpnet recovers by teardown + lazy redial;
		// direct/simnet QPs cannot error): surface the verb error so the
		// step aborts into operation-level recovery.
		return s.blockedErr
	}
	return e.cfg.Reconnector.Reconnect(s.blockedOn)
}

// finish completes s's operation: telemetry, flight-recorder span, slot
// release, then the callback (which may immediately submit a new operation).
func (e *Engine) finish(s *slot, err error) {
	if e.cfg.Rec != nil {
		e.cfg.Rec.RecordIndexOp(s.st)
		e.cfg.Rec.CountPipelineOp()
	}
	if e.cfg.Log != nil {
		e.cfg.Log.OpSpan(obsKind(s.op), s.key, -1, e.cfg.Log.Clock.Now()-s.start, err)
	}
	e.active--
	e.free = append(e.free, s.idx)
	switch s.op {
	case btree.TravLookup:
		cb := s.onLookup
		s.onLookup = nil
		if cb != nil {
			cb(s.tr.Values, err)
		}
	case btree.TravInsert:
		cb := s.onInsert
		s.onInsert = nil
		if cb != nil {
			cb(err)
		}
	default:
		cb := s.onDelete
		s.onDelete = nil
		if cb != nil {
			cb(s.tr.Found, err)
		}
	}
}

func opName(op btree.TraversalOp) string {
	switch op {
	case btree.TravLookup:
		return "lookup"
	case btree.TravInsert:
		return "insert"
	default:
		return "delete"
	}
}

func obsKind(op btree.TraversalOp) obs.OpKind {
	switch op {
	case btree.TravLookup:
		return obs.OpLookup
	case btree.TravInsert:
		return obs.OpInsert
	default:
		return obs.OpDelete
	}
}
