package policy

import (
	"fmt"
	"strings"
)

// Decision is one retained trace entry: at T, partition Part moved (or was
// held) From→To for Reason, with the estimator's two costs at that point.
// The trace is rendered deterministically — under an injected clock two
// seeded runs produce byte-identical traces, which is what the CI diff and
// the golden-replay test pin.
type Decision struct {
	T        int64
	Part     int
	From, To Strategy
	Reason   uint8
	OneCost  float64
	RPCCost  float64
}

func (d Decision) String() string {
	return fmt.Sprintf("[t=%d] part=%d %s->%s reason=%s one=%.1f rpc=%.1f",
		d.T, d.Part, d.From, d.To, ReasonString(d.Reason), d.OneCost, d.RPCCost)
}

// partState is the engine's per-partition decision state.
type partState struct {
	cur        Strategy
	calls      int64
	lastSwitch int64
	switched   bool // lastSwitch is meaningful (dwell applies after the first switch only)
}

// Engine is the per-partition policy engine: a Decider that re-runs the
// crossover estimator every EvalEvery operations per partition, applies the
// hysteresis band and dwell timer, and records every decision. An Engine is
// owned by a single client goroutine, like the client consulting it.
type Engine struct {
	cfg   Config
	src   SignalSource
	clock Clock
	// Events, when non-nil, receives every switch and reset (obs.Log
	// implements it; switches then appear in flight-recorder dumps).
	Events Events

	parts    []partState
	trace    []Decision
	dropped  int64
	switches int64
	resets   int64
}

var _ Decider = (*Engine)(nil)

// NewEngine builds an engine deciding over cfg.Partitions partitions, polling
// src at evaluation points and timestamping decisions off clock.
func NewEngine(cfg Config, src SignalSource, clock Clock) *Engine {
	e := &Engine{cfg: cfg, src: src, clock: clock}
	e.parts = make([]partState, cfg.Partitions)
	for i := range e.parts {
		e.parts[i].cur = cfg.Default
	}
	return e
}

// Strategy implements Decider: the per-operation hook. Between evaluation
// points it is a counter bump and a field read; every EvalEvery-th call per
// partition re-runs the estimator, and every ProbeEvery-th call routes the
// operation through the non-current strategy to keep both sides measured.
func (e *Engine) Strategy(partition int) Strategy {
	if partition < 0 || partition >= len(e.parts) {
		return e.cfg.Default
	}
	st := &e.parts[partition]
	st.calls++
	if e.cfg.EvalEvery > 0 && st.calls%e.cfg.EvalEvery == 0 {
		e.evaluate(partition, st)
	}
	if e.cfg.ProbeEvery > 0 && st.calls%e.cfg.ProbeEvery == 0 {
		if st.cur == StrategyRPC {
			return StrategyOneSided
		}
		return StrategyRPC
	}
	return st.cur
}

// Current returns partition's strategy without ticking the call counter
// (assertions and reports).
func (e *Engine) Current(partition int) Strategy {
	if partition < 0 || partition >= len(e.parts) {
		return e.cfg.Default
	}
	return e.parts[partition].cur
}

// evaluate runs one estimator pass for partition. The clock is read only
// here (and in ResetPartition), never on the per-op fast path, so the
// decision trace of a run is a pure function of the observation stream.
func (e *Engine) evaluate(partition int, st *partState) {
	sig, ok := e.src.Snapshot(partition)
	if !ok || sig.Ops < e.cfg.MinOps {
		return // cold start: hold the default, record nothing
	}
	one, rpc := Estimate(e.cfg, sig)
	if one <= 0 || rpc <= 0 {
		return // unestimable: hold
	}
	score := rpc / one
	var want Strategy
	var reason uint8
	switch st.cur {
	case StrategyRPC:
		if score <= e.cfg.EnterRatio {
			return
		}
		want, reason = StrategyOneSided, ReasonEnter
	default: // StrategyOneSided
		if score >= e.cfg.ExitRatio {
			return
		}
		want, reason = StrategyRPC, ReasonExit
	}
	now := e.clock.Now()
	if st.switched && e.cfg.MinDwell > 0 && now-st.lastSwitch < e.cfg.MinDwell {
		e.record(Decision{T: now, Part: partition, From: st.cur, To: st.cur,
			Reason: ReasonDwell, OneCost: one, RPCCost: rpc})
		return
	}
	from := st.cur
	st.cur = want
	st.lastSwitch = now
	st.switched = true
	e.switches++
	e.record(Decision{T: now, Part: partition, From: from, To: want,
		Reason: reason, OneCost: one, RPCCost: rpc})
	if e.Events != nil {
		e.Events.PolicyEvent(partition, uint8(want), reason)
	}
}

// ResetPartition drops partition back to the default strategy and resets its
// decision state and signal window (when the source supports it). The
// replication layer calls this on promotion and group-move events: the
// window's samples were measured against the old acting server and must not
// feed the estimator as stale signals.
func (e *Engine) ResetPartition(partition int) {
	if partition < 0 || partition >= len(e.parts) {
		return
	}
	st := &e.parts[partition]
	from := st.cur
	*st = partState{cur: e.cfg.Default}
	if r, ok := e.src.(WindowResetter); ok {
		r.Reset(partition)
	}
	e.resets++
	now := e.clock.Now()
	e.record(Decision{T: now, Part: partition, From: from, To: e.cfg.Default,
		Reason: ReasonReset})
	if e.Events != nil {
		e.Events.PolicyEvent(partition, uint8(e.cfg.Default), ReasonReset)
	}
}

func (e *Engine) record(d Decision) {
	if e.cfg.TraceCap > 0 && len(e.trace) >= e.cfg.TraceCap {
		e.dropped++
		return
	}
	e.trace = append(e.trace, d)
}

// Switches returns the total number of strategy switches decided (dwell
// holds and probes excluded).
func (e *Engine) Switches() int64 { return e.switches }

// Resets returns the number of ResetPartition calls.
func (e *Engine) Resets() int64 { return e.resets }

// Trace returns the retained decision trace (shared slice; callers must not
// mutate it).
func (e *Engine) Trace() []Decision { return e.trace }

// RenderTrace renders the decision trace deterministically, one decision per
// line, with a trailing truncation marker when TraceCap dropped entries.
func (e *Engine) RenderTrace() string {
	var b strings.Builder
	for _, d := range e.trace {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	if e.dropped > 0 {
		fmt.Fprintf(&b, "... %d decisions dropped (trace cap %d)\n", e.dropped, e.cfg.TraceCap)
	}
	return b.String()
}
