package policy

import (
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/obs"
)

// fakeClock is a directly-settable Clock for dwell arithmetic.
type fakeClock struct{ t int64 }

func (c *fakeClock) Now() int64 { return c.t }

// stubSource replays a fixed Signals value (or a scripted sequence) for
// every partition.
type stubSource struct {
	sig    Signals
	ok     bool
	script []Signals // when non-empty, consumed one per Snapshot call
	i      int
	resets []int
}

func (s *stubSource) Snapshot(int) (Signals, bool) {
	if len(s.script) > 0 {
		sig := s.script[s.i%len(s.script)]
		s.i++
		return sig, true
	}
	return s.sig, s.ok
}

func (s *stubSource) Reset(part int) { s.resets = append(s.resets, part) }

// eventRec records Events calls.
type eventRec struct {
	parts, tos, reasons []int
}

func (r *eventRec) PolicyEvent(part int, to uint8, reason uint8) {
	r.parts = append(r.parts, part)
	r.tos = append(r.tos, int(to))
	r.reasons = append(r.reasons, int(reason))
}

// testConfig is the unit-test engine configuration: evaluate on every call,
// no probing, no dwell unless a case sets one.
func testConfig() Config {
	cfg := Defaults(1)
	cfg.MinOps = 1
	cfg.EvalEvery = 1
	cfg.ProbeEvery = 0
	return cfg
}

// measured builds a both-sides-measured snapshot with the given costs.
func measured(one, rpc int64) Signals {
	return Signals{Ops: 100, RPCOps: 10, OneSidedOps: 10,
		RPCTraverseP99: rpc, OneSidedTraverseP99: one, ReadP99: one / 2}
}

func withCPU(sig Signals, util float64) Signals {
	sig.ServerCPU = util
	return sig
}

func TestEstimate(t *testing.T) {
	cfg := Defaults(1)
	cfg.PageBytes = 512
	cases := []struct {
		name     string
		sig      Signals
		one, rpc float64
	}{
		{"measured both sides wins over models",
			measured(1000, 1700), 1000, 1700},
		{"measured rpc is charged its congestion externality",
			withCPU(measured(1000, 1700), 0.5), 1000, 1700 * 1.5},
		{"externality multiplier is bounded at 2x",
			withCPU(measured(1000, 1700), 1.7), 1000, 1700 * 2},
		{"cold one-sided falls back to depth x read proxy",
			Signals{Ops: 50, RPCOps: 10, RPCTraverseP99: 900, ReadP99: 400},
			2 * 400, 900},
		{"cold one-sided uses observed depth when present",
			Signals{Ops: 50, RPCOps: 10, RPCTraverseP99: 900, ReadP99: 400, Depth: 3},
			3 * 400, 900},
		{"cold rpc inflates the proxy by server load",
			Signals{Ops: 50, OneSidedOps: 10, OneSidedTraverseP99: 800, ReadP99: 400, ServerCPU: 0.5},
			800, 400 / 0.5},
		{"cold rpc caps runaway load at 0.95",
			Signals{Ops: 50, OneSidedOps: 10, OneSidedTraverseP99: 800, ReadP99: 400, ServerCPU: 0.999},
			800, 400 / 0.05},
		{"fat values discount the rpc model's payload fraction",
			Signals{Ops: 50, OneSidedOps: 10, OneSidedTraverseP99: 800, ReadP99: 400, AvgValueBytes: 128},
			800, 400 * (1 - 128.0/512)},
		{"payload discount is capped at half the proxy",
			Signals{Ops: 50, OneSidedOps: 10, OneSidedTraverseP99: 800, ReadP99: 400, AvgValueBytes: 4096},
			800, 400 * 0.5},
		{"empty window estimates nothing",
			Signals{Ops: 50}, 0, 0},
	}
	approx := func(got, want float64) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d <= 1e-9*(1+want)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			one, rpc := Estimate(cfg, tc.sig)
			if !approx(one, tc.one) || !approx(rpc, tc.rpc) {
				t.Fatalf("Estimate() = (%v, %v), want (%v, %v)", one, rpc, tc.one, tc.rpc)
			}
		})
	}
}

// TestCrossoverTable drives synthetic signal windows through the engine and
// checks the decided strategy, including both hysteresis boundaries.
func TestCrossoverTable(t *testing.T) {
	cases := []struct {
		name  string
		start Strategy
		sig   Signals
		want  Strategy
	}{
		{"rpc holds when clearly cheaper", StrategyRPC, measured(1000, 500), StrategyRPC},
		{"rpc holds inside the band", StrategyRPC, measured(1000, 1100), StrategyRPC},
		{"rpc holds exactly at the enter boundary", StrategyRPC, measured(1000, 1150), StrategyRPC},
		{"rpc leaves just past the enter boundary", StrategyRPC, measured(1000, 1151), StrategyOneSided},
		{"one-sided holds inside the band", StrategyOneSided, measured(1000, 1000), StrategyOneSided},
		{"one-sided holds exactly at the exit boundary", StrategyOneSided, measured(1000, 900), StrategyOneSided},
		{"one-sided leaves just past the exit boundary", StrategyOneSided, measured(1000, 899), StrategyRPC},
		{"unestimable window holds", StrategyRPC, Signals{Ops: 100}, StrategyRPC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Default = tc.start
			e := NewEngine(cfg, &stubSource{sig: tc.sig, ok: true}, &fakeClock{})
			if got := e.Strategy(0); got != tc.want {
				t.Fatalf("Strategy(0) = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestColdStartDefaults(t *testing.T) {
	cfg := testConfig()
	cfg.MinOps = 32
	src := &stubSource{}
	e := NewEngine(cfg, src, &fakeClock{})

	// No window at all: hold the default.
	if got := e.Strategy(0); got != StrategyRPC {
		t.Fatalf("empty window: Strategy = %v, want rpc", got)
	}
	// A window below the MinOps gate: still the default, even with a signal
	// that would otherwise switch.
	src.sig, src.ok = measured(1000, 5000), true
	src.sig.Ops = 31
	if got := e.Strategy(0); got != StrategyRPC {
		t.Fatalf("below MinOps: Strategy = %v, want rpc", got)
	}
	if len(e.Trace()) != 0 {
		t.Fatalf("cold start recorded %d decisions, want 0", len(e.Trace()))
	}
	// Crossing the gate unlocks the switch.
	src.sig.Ops = 32
	if got := e.Strategy(0); got != StrategyOneSided {
		t.Fatalf("at MinOps: Strategy = %v, want one-sided", got)
	}
	// An out-of-range partition never panics and holds the default.
	if got := e.Strategy(7); got != StrategyRPC {
		t.Fatalf("out-of-range partition: Strategy = %v, want rpc", got)
	}
}

func TestDwellSuppression(t *testing.T) {
	cfg := testConfig()
	cfg.MinDwell = 100
	clk := &fakeClock{t: 10}
	src := &stubSource{sig: measured(1000, 5000), ok: true}
	rec := &eventRec{}
	e := NewEngine(cfg, src, clk)
	e.Events = rec

	// The first switch is unconstrained (no prior switch to dwell from).
	if got := e.Strategy(0); got != StrategyOneSided {
		t.Fatalf("first switch: Strategy = %v, want one-sided", got)
	}
	// Immediately reversing signal: suppressed until MinDwell has elapsed.
	src.sig = measured(1000, 100)
	clk.t = 10 + 99
	if got := e.Strategy(0); got != StrategyOneSided {
		t.Fatalf("inside dwell: Strategy = %v, want one-sided held", got)
	}
	clk.t = 10 + 100
	if got := e.Strategy(0); got != StrategyRPC {
		t.Fatalf("past dwell: Strategy = %v, want rpc", got)
	}
	if e.Switches() != 2 {
		t.Fatalf("Switches = %d, want 2", e.Switches())
	}
	// The suppression left a dwell-hold decision in the trace but no event.
	var dwells int
	for _, d := range e.Trace() {
		if d.Reason == ReasonDwell {
			dwells++
		}
	}
	if dwells != 1 {
		t.Fatalf("trace has %d dwell-hold entries, want 1", dwells)
	}
	if len(rec.reasons) != 2 {
		t.Fatalf("events: %d, want 2 (switches only)", len(rec.reasons))
	}
}

func TestProbeRoutesAlternative(t *testing.T) {
	cfg := testConfig()
	cfg.EvalEvery = 0 // isolate probing
	cfg.ProbeEvery = 4
	e := NewEngine(cfg, &stubSource{}, &fakeClock{})
	want := []Strategy{StrategyRPC, StrategyRPC, StrategyRPC, StrategyOneSided,
		StrategyRPC, StrategyRPC, StrategyRPC, StrategyOneSided}
	for i, w := range want {
		if got := e.Strategy(0); got != w {
			t.Fatalf("call %d: Strategy = %v, want %v", i+1, got, w)
		}
	}
	if e.Switches() != 0 || len(e.Trace()) != 0 {
		t.Fatalf("probes recorded decisions: switches=%d trace=%d", e.Switches(), len(e.Trace()))
	}
}

func TestResetPartition(t *testing.T) {
	cfg := testConfig()
	src := &stubSource{sig: measured(1000, 5000), ok: true}
	rec := &eventRec{}
	e := NewEngine(cfg, src, &fakeClock{t: 5})
	e.Events = rec
	if got := e.Strategy(0); got != StrategyOneSided {
		t.Fatalf("setup switch failed: %v", got)
	}
	e.ResetPartition(0)
	if got := e.Current(0); got != StrategyRPC {
		t.Fatalf("after reset: Current = %v, want default rpc", got)
	}
	if len(src.resets) != 1 || src.resets[0] != 0 {
		t.Fatalf("window resets = %v, want [0]", src.resets)
	}
	if e.Resets() != 1 {
		t.Fatalf("Resets = %d, want 1", e.Resets())
	}
	last := e.Trace()[len(e.Trace())-1]
	if last.Reason != ReasonReset || last.From != StrategyOneSided || last.To != StrategyRPC {
		t.Fatalf("reset trace entry = %+v", last)
	}
	if rec.reasons[len(rec.reasons)-1] != int(ReasonReset) {
		t.Fatalf("reset event missing: %v", rec.reasons)
	}
	// The reset also cleared the dwell state: the very next evaluation may
	// switch again without suppression.
	if got := e.Strategy(0); got != StrategyOneSided {
		t.Fatalf("post-reset re-switch: Strategy = %v, want one-sided", got)
	}
}

// TestGoldenTraceReplay replays a scripted signal sequence under a TickClock
// twice and pins the rendered decision trace byte-for-byte: same seed (here,
// same script) implies byte-identical traces.
func TestGoldenTraceReplay(t *testing.T) {
	script := []Signals{
		measured(1000, 2000), // switch to one-sided
		measured(1000, 1000), // hold (inside band)
		measured(1000, 800),  // wants rpc: dwell-held
		measured(1000, 2000), // hold
		measured(1000, 2000), // hold
		measured(1000, 800),  // wants rpc: dwell-held
		measured(1000, 800),  // dwell elapsed: switch back
	}
	run := func() string {
		cfg := testConfig()
		cfg.MinDwell = 3
		e := NewEngine(cfg, &stubSource{script: script}, &obs.TickClock{})
		for range script {
			e.Strategy(0)
		}
		return e.RenderTrace()
	}
	const golden = "[t=1] part=0 rpc->one-sided reason=enter one=1000.0 rpc=2000.0\n" +
		"[t=2] part=0 one-sided->one-sided reason=dwell-hold one=1000.0 rpc=800.0\n" +
		"[t=3] part=0 one-sided->one-sided reason=dwell-hold one=1000.0 rpc=800.0\n" +
		"[t=4] part=0 one-sided->rpc reason=exit one=1000.0 rpc=800.0\n"
	first, second := run(), run()
	if first != second {
		t.Fatalf("trace not byte-stable:\n--- run 1\n%s--- run 2\n%s", first, second)
	}
	if first != golden {
		t.Fatalf("trace diverged from golden:\n--- got\n%s--- want\n%s", first, golden)
	}
}

// TestPolicyEventsInFlightRecorder pins the obs integration: a switch driven
// through an Engine with an obs.Log as its Events sink appears in the
// rendered flight-recorder dump.
func TestPolicyEventsInFlightRecorder(t *testing.T) {
	log := obs.NewLog(64, &obs.TickClock{})
	cfg := testConfig()
	e := NewEngine(cfg, &stubSource{sig: measured(1000, 5000), ok: true}, &obs.TickClock{})
	e.Events = log
	if got := e.Strategy(0); got != StrategyOneSided {
		t.Fatalf("Strategy = %v, want one-sided", got)
	}
	e.ResetPartition(0)
	text := log.Render(0)
	if !strings.Contains(text, "policy part=0 to=one-sided reason=enter") {
		t.Fatalf("dump missing switch event:\n%s", text)
	}
	if !strings.Contains(text, "policy part=0 to=rpc reason=reset") {
		t.Fatalf("dump missing reset event:\n%s", text)
	}
}

func TestTraceCap(t *testing.T) {
	cfg := testConfig()
	cfg.TraceCap = 2
	src := &stubSource{sig: measured(1000, 5000), ok: true}
	e := NewEngine(cfg, src, &fakeClock{})
	for i := 0; i < 5; i++ {
		e.Strategy(0)
		// Flip the signal so every evaluation switches.
		if src.sig.RPCTraverseP99 == 5000 {
			src.sig = measured(5000, 1000)
		} else {
			src.sig = measured(1000, 5000)
		}
	}
	if len(e.Trace()) != 2 {
		t.Fatalf("trace length %d, want cap 2", len(e.Trace()))
	}
	if !strings.Contains(e.RenderTrace(), "decisions dropped (trace cap 2)") {
		t.Fatalf("render missing truncation marker:\n%s", e.RenderTrace())
	}
}

func TestStaticDecider(t *testing.T) {
	if Static(StrategyOneSided).Strategy(3) != StrategyOneSided {
		t.Fatal("Static(one-sided) did not pin one-sided")
	}
	if Static(StrategyRPC).Strategy(0) != StrategyRPC {
		t.Fatal("Static(rpc) did not pin rpc")
	}
}
