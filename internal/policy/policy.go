// Package policy is the self-tuning traversal-policy layer of the hybrid
// design: a per-partition engine that decides, at runtime, whether a client
// should traverse a partition's upper levels with one-sided fused reads or
// offload the descent to the owning server's RPC handler.
//
// The paper's central observation (Section 7, and Brock et al. in PAPERS.md)
// is that neither strategy wins everywhere: RPC offload amortizes the descent
// into a single round trip but burns server CPU, so it loses under skew when
// the hot partition's server saturates; one-sided traversal costs one fused
// read per level but leaves the server idle. The crossover moves with the op
// mix, the value-size mix, and the server's load — so the engine consumes
// exactly those signals, windowed per partition, through a pluggable
// SignalSource, and switches strategy only when the measured (or, cold,
// modeled) cost ratio leaves a hysteresis band and the current strategy has
// held for a minimum dwell time. The engine never reads the wall clock: all
// decision timestamps come from an injected Clock (a *sim.Proc on the
// simulated fabric, an obs.TickClock in deterministic tests), so a decision
// trace is byte-stable across seeded runs and replayable from the artifact
// alone.
//
// The package follows the repository's decorator discipline: it defines its
// producer-side hook interfaces (Decider, SignalSource, Feed, Events, Clock)
// locally and imports nothing from the protocol layers, so the hybrid client
// depends on policy but never the reverse.
package policy

// Strategy selects how a client traverses one partition's upper levels.
type Strategy uint8

const (
	// StrategyRPC offloads the descent to the partition owner's traverse
	// handler: one round trip, server CPU proportional to depth.
	StrategyRPC Strategy = iota
	// StrategyOneSided walks the owner's inner levels with one-sided fused
	// reads: one round trip per level, no server CPU.
	StrategyOneSided
	numStrategies
)

var strategyNames = [numStrategies]string{"rpc", "one-sided"}

// String returns the strategy's label ("rpc", "one-sided").
func (s Strategy) String() string {
	if s >= numStrategies {
		return "strategy?"
	}
	return strategyNames[s]
}

// Clock supplies decision timestamps in nanoseconds or abstract ticks. It is
// structurally identical to obs.Clock so *sim.Proc and *obs.TickClock satisfy
// it directly; the package defines its own copy to import nothing.
type Clock interface {
	Now() int64
}

// Decider is the hook the hybrid client consults once per operation, before
// posting the traversal: which strategy serves this partition right now? A
// Decider is owned by a single client goroutine, like the client itself.
type Decider interface {
	Strategy(partition int) Strategy
}

// Static is the trivial Decider pinning every partition to one strategy; the
// conformance tests use it to hold the adaptive client against both static
// designs.
type Static Strategy

// Strategy implements Decider.
func (s Static) Strategy(int) Strategy { return Strategy(s) }

// Signals is one windowed telemetry snapshot for one partition — everything
// the crossover estimator consumes. Costs are in the deployment's clock units
// (virtual nanoseconds on the simulated fabric, ticks under a TickClock);
// only ratios between them matter.
type Signals struct {
	// Ops counts traversals observed for this partition since the window was
	// created or last reset (cold-start gate: below Config.MinOps the engine
	// keeps the default strategy).
	Ops int64
	// RPCOps / OneSidedOps count the windowed traversal samples per strategy
	// backing the two p99s below; a zero count marks that side unmeasured.
	RPCOps, OneSidedOps int64
	// RPCTraverseP99 / OneSidedTraverseP99 are windowed p99 costs of one
	// upper-level traversal under each strategy, as observed by this client.
	RPCTraverseP99, OneSidedTraverseP99 int64
	// RPCTraverseMean / OneSidedTraverseMean are the windowed mean costs of
	// the same series. The estimator scores on means when present: a closed
	// loop's throughput is set by mean latency, and the p99 of a small window
	// degrades to its max — too tail-noisy to compare strategies by. The p99s
	// above stay in the snapshot for traces and telemetry.
	RPCTraverseMean, OneSidedTraverseMean float64
	// ReadP99 is the windowed p99 cost of one exposed round trip of the
	// one-sided leaf protocol — the per-RTT unit the cold-start models scale.
	ReadP99 int64
	// ReadMean is the windowed mean of the same per-RTT series, preferred by
	// the cold-start models for the reason above.
	ReadMean float64
	// RTTsPerOp is the windowed mean of exposed round trips per leaf
	// operation (context for traces; the estimator's models work per RTT).
	RTTsPerOp float64
	// ServerCPU is the partition owner's utilization in [0,1] (or a proxy:
	// queueing-induced latency inflation normalized the same way).
	ServerCPU float64
	// AvgValueBytes is the windowed mean payload returned per leaf lookup —
	// the value-size mix. Fat values inflate the fused-read proxy ReadP99;
	// the RPC model discounts them because a traverse reply carries a
	// pointer, not a page.
	AvgValueBytes float64
	// Depth is the windowed mean upper-level depth observed by one-sided
	// traversals (0 when that side is unmeasured; models fall back to
	// Config.AssumedDepth).
	Depth float64
}

// SignalSource supplies windowed snapshots; the engine polls it at
// evaluation points only. Snapshot returns ok=false when the source has no
// window for the partition yet (the cold-start case).
type SignalSource interface {
	Snapshot(partition int) (sig Signals, ok bool)
}

// WindowResetter is the optional reset seam of a SignalSource: a promotion
// moves a partition to a different acting server, so its window must be
// dropped rather than fed to the estimator as stale signals. Engine.
// ResetPartition forwards to it when the source implements it.
type WindowResetter interface {
	Reset(partition int)
}

// Feed is the observation side the hybrid client drives: one call per
// traversal and per leaf access. It is what the concrete Window implements;
// clients hold the interface so tests can substitute recorders.
type Feed interface {
	// ObserveTraverse records one upper-level traversal of partition under
	// strat costing costNS clock units and visiting depth levels (0 when the
	// strategy does not expose a depth, i.e. RPC).
	ObserveTraverse(partition int, strat Strategy, costNS int64, depth int)
	// ObserveLeaf records one leaf-level access on partition: its cost, the
	// exposed round trips it took, and the payload bytes it returned.
	ObserveLeaf(partition int, costNS int64, rtts, valueBytes int)
	// ObserveCPU records a server-utilization sample for partition's owner.
	ObserveCPU(partition int, util float64)
}

// Events is the decision-event hook, defined producer-side like the
// repository's other hook seams; *obs.Log implements it structurally (a nil
// log is safe). The reason codes are the Reason* constants.
type Events interface {
	PolicyEvent(partition int, to uint8, reason uint8)
}

// Decision reason codes (the trace's and Events' reason byte).
const (
	// ReasonEnter: the cost ratio left the band upward — switch to one-sided.
	ReasonEnter uint8 = 1
	// ReasonExit: the ratio left the band downward — switch back to RPC.
	ReasonExit uint8 = 2
	// ReasonReset: a promotion reset the partition to the default strategy.
	ReasonReset uint8 = 3
	// ReasonDwell: a switch wanted by the estimator was suppressed because
	// the current strategy has not held for MinDwell yet.
	ReasonDwell uint8 = 4
)

var reasonNames = [...]string{"?", "enter", "exit", "reset", "dwell-hold"}

// ReasonString returns the reason code's label.
func ReasonString(r uint8) string {
	if int(r) >= len(reasonNames) {
		return "reason?"
	}
	return reasonNames[r]
}

// Config tunes the engine. The zero value is unusable; start from Defaults.
// One global configuration serves every workload — the acceptance bar for the
// adaptive experiment is tracking the best static design with zero per-cell
// tuning.
type Config struct {
	// Partitions is the number of partitions (memory servers) decided over.
	Partitions int
	// Default is the strategy a cold or reset partition starts on.
	Default Strategy
	// MinOps is the cold-start gate: below this many observed traversals the
	// engine holds Default and records nothing.
	MinOps int64
	// EvalEvery re-runs the estimator every n-th Strategy call per partition;
	// between evaluations the hook is a field read, keeping the per-op cost
	// negligible.
	EvalEvery int64
	// EnterRatio and ExitRatio bound the hysteresis band on
	// score = rpcCost / oneSidedCost. From RPC the engine switches when
	// score > EnterRatio (one-sided clearly cheaper); from one-sided it
	// returns when score < ExitRatio (RPC clearly cheaper). Between the two
	// it holds, so a score oscillating around 1.0 never flaps.
	EnterRatio, ExitRatio float64
	// MinDwell is the minimum time (Clock units) a strategy must hold after
	// a switch before the engine may switch again; wanted-but-early switches
	// are recorded as ReasonDwell trace entries instead.
	MinDwell int64
	// ProbeEvery routes every n-th operation per partition through the
	// non-current strategy so the estimator keeps both sides measured (a
	// bounded 1/n overhead); 0 disables probing. Probes are not switches:
	// they record no decision and do not touch the dwell timer.
	ProbeEvery int64
	// AssumedDepth is the upper-level depth the cold-start model charges the
	// one-sided strategy before any one-sided traversal has been observed.
	AssumedDepth float64
	// PageBytes, when set, lets the cold-start RPC model discount the
	// value-payload fraction of the fused-read proxy (a traverse reply
	// carries a pointer, not a page).
	PageBytes int
	// TraceCap bounds the retained decision trace; beyond it decisions are
	// counted but not retained.
	TraceCap int
}

// Defaults returns the engine configuration used by every harness in this
// repository: band [0.90, 1.15], evaluation every 8 ops per partition, probe
// every 64. The cadence is deliberately quick off the cold start — windows
// are per client per partition, so a slow cell (few ops per client) must
// still reach its first evaluation inside a bench warmup window; hysteresis
// and dwell, not a slow cadence, are what prevent flapping. MinDwell is
// expressed in the caller's clock units, so it is the one field deployments
// override (virtual nanoseconds on the simulated fabric, event ticks under a
// TickClock).
func Defaults(partitions int) Config {
	return Config{
		Partitions:   partitions,
		Default:      StrategyRPC,
		MinOps:       8,
		EvalEvery:    8,
		EnterRatio:   1.15,
		ExitRatio:    0.90,
		MinDwell:     0,
		ProbeEvery:   64,
		AssumedDepth: 2,
		TraceCap:     512,
	}
}

// Estimate returns the modeled-or-measured cost of one upper-level traversal
// under each strategy, in the window's clock units. A zero return marks that
// side unestimable (no samples and no proxy), in which case the engine holds.
//
// Measured costs win when present — they already embed queueing, value-size,
// and depth effects. Each series scores by its windowed mean when the source
// supplies one (falling back to p99): throughput of a closed loop tracks mean
// latency, and small-window p99s degrade to the max sample, whose ratio is
// too noisy to steer on.
//
// The measured RPC cost is additionally charged its congestion externality:
// it is multiplied by (1 + ServerCPU), up to 2x at saturation. A client's own
// observed RPC latency prices only the queueing it suffers, not the queueing
// its offload imposes on every other client of a saturated handler pool — so
// a fleet of greedy clients can sit in a stable all-RPC equilibrium whose
// per-traversal costs look even while system throughput is well below the
// all-one-sided optimum (the classic selfish-routing gap). The one-sided side
// carries no such charge on purpose: its resource is the NIC, which the
// paper's central measurement (Section 6.1) shows saturates an order of
// magnitude later than handler cores, and under low load the multiplier
// vanishes, so RPC still wins the regimes where it is genuinely cheaper.
//
// Cold sides fall back to models scaled off the leaf protocol's per-RTT
// proxy:
//
//   - one-sided: depth fused reads, one exposed RTT each.
//   - RPC: one round trip inflated by M/M/1-style queueing 1/(1-cpu), with
//     the payload fraction of the proxy discounted (the reply is a pointer,
//     not a page): fat values push the estimate toward RPC exactly as the
//     crossover measurements in PAPERS.md predict.
func Estimate(cfg Config, sig Signals) (oneSided, rpc float64) {
	cost := func(mean float64, p99 int64) float64 {
		if mean > 0 {
			return mean
		}
		return float64(p99)
	}
	read := cost(sig.ReadMean, sig.ReadP99)
	if sig.OneSidedOps > 0 && cost(sig.OneSidedTraverseMean, sig.OneSidedTraverseP99) > 0 {
		oneSided = cost(sig.OneSidedTraverseMean, sig.OneSidedTraverseP99)
	} else if read > 0 {
		depth := sig.Depth
		if depth <= 0 {
			depth = cfg.AssumedDepth
		}
		oneSided = depth * read
	}
	if sig.RPCOps > 0 && cost(sig.RPCTraverseMean, sig.RPCTraverseP99) > 0 {
		rpc = cost(sig.RPCTraverseMean, sig.RPCTraverseP99)
		ext := sig.ServerCPU
		if ext > 1 {
			ext = 1
		}
		if ext > 0 {
			rpc *= 1 + ext
		}
	} else if read > 0 {
		load := sig.ServerCPU
		if load > 0.95 {
			load = 0.95
		}
		if load < 0 {
			load = 0
		}
		payload := 0.0
		if cfg.PageBytes > 0 && sig.AvgValueBytes > 0 {
			payload = sig.AvgValueBytes / float64(cfg.PageBytes)
			if payload > 0.5 {
				payload = 0.5
			}
		}
		rpc = read * (1 - payload) / (1 - load)
	}
	return oneSided, rpc
}
