package policy

import "sort"

// windowCap is the per-ring sample capacity: the window is the last
// windowCap samples of each series. Snapshots sort a copy, which is fine —
// the engine snapshots every EvalEvery operations, not per operation.
const windowCap = 128

// ring is a fixed-capacity sample ring.
type ring struct {
	buf [windowCap]int64
	n   int   // live samples (<= windowCap)
	w   int   // next write position
	sum int64 // running sum of live samples
}

func (r *ring) add(v int64) {
	if r.n == windowCap {
		r.sum -= r.buf[r.w]
	} else {
		r.n++
	}
	r.buf[r.w] = v
	r.sum += v
	r.w = (r.w + 1) % windowCap
}

func (r *ring) mean() float64 {
	if r.n == 0 {
		return 0
	}
	return float64(r.sum) / float64(r.n)
}

// p99 returns the windowed 99th-percentile sample (the max for windows under
// 100 samples — deliberately pessimistic, tail-sensitive behavior).
func (r *ring) p99() int64 {
	if r.n == 0 {
		return 0
	}
	var tmp [windowCap]int64
	s := tmp[:r.n]
	copy(s, r.buf[:r.n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*r.n + 99) / 100 // ceil(0.99 n), 1-based
	if idx > r.n {
		idx = r.n
	}
	return s[idx-1]
}

// partWindow holds one partition's sample rings.
type partWindow struct {
	ops        int64 // traversals since creation/reset (cold-start gate)
	rpcTrav    ring  // RPC traverse costs
	oneTrav    ring  // one-sided traverse costs
	oneDepth   ring  // one-sided traverse depths
	readPerRTT ring  // leaf cost per exposed RTT (the fused-read proxy)
	rtts       ring  // exposed RTTs per leaf op
	valBytes   ring  // payload bytes per leaf op
	cpu        float64
	cpuSampled bool
}

// Window is the concrete SignalSource/Feed pair: per-partition rings over
// the most recent samples of each signal series. Like the engine and the
// client feeding it, a Window belongs to a single goroutine.
type Window struct {
	parts []partWindow
}

var (
	_ SignalSource   = (*Window)(nil)
	_ Feed           = (*Window)(nil)
	_ WindowResetter = (*Window)(nil)
)

// NewWindow builds a window over partitions partitions.
func NewWindow(partitions int) *Window {
	return &Window{parts: make([]partWindow, partitions)}
}

// ObserveTraverse implements Feed.
func (w *Window) ObserveTraverse(partition int, strat Strategy, costNS int64, depth int) {
	if partition < 0 || partition >= len(w.parts) {
		return
	}
	p := &w.parts[partition]
	p.ops++
	if strat == StrategyOneSided {
		p.oneTrav.add(costNS)
		if depth > 0 {
			p.oneDepth.add(int64(depth))
		}
		return
	}
	p.rpcTrav.add(costNS)
}

// ObserveLeaf implements Feed.
func (w *Window) ObserveLeaf(partition int, costNS int64, rtts, valueBytes int) {
	if partition < 0 || partition >= len(w.parts) {
		return
	}
	p := &w.parts[partition]
	if rtts < 1 {
		rtts = 1
	}
	p.readPerRTT.add(costNS / int64(rtts))
	p.rtts.add(int64(rtts))
	p.valBytes.add(int64(valueBytes))
}

// ObserveCPU implements Feed: the latest utilization sample wins.
func (w *Window) ObserveCPU(partition int, util float64) {
	if partition < 0 || partition >= len(w.parts) {
		return
	}
	w.parts[partition].cpu = util
	w.parts[partition].cpuSampled = true
}

// Snapshot implements SignalSource.
func (w *Window) Snapshot(partition int) (Signals, bool) {
	if partition < 0 || partition >= len(w.parts) {
		return Signals{}, false
	}
	p := &w.parts[partition]
	if p.ops == 0 {
		return Signals{}, false
	}
	return Signals{
		Ops:                  p.ops,
		RPCOps:               int64(p.rpcTrav.n),
		OneSidedOps:          int64(p.oneTrav.n),
		RPCTraverseP99:       p.rpcTrav.p99(),
		OneSidedTraverseP99:  p.oneTrav.p99(),
		RPCTraverseMean:      p.rpcTrav.mean(),
		OneSidedTraverseMean: p.oneTrav.mean(),
		ReadP99:              p.readPerRTT.p99(),
		ReadMean:             p.readPerRTT.mean(),
		RTTsPerOp:            p.rtts.mean(),
		ServerCPU:            p.cpu,
		AvgValueBytes:        p.valBytes.mean(),
		Depth:                p.oneDepth.mean(),
	}, true
}

// Reset implements WindowResetter: drop every sample the partition has
// accumulated (promotion moved it to a different acting server).
func (w *Window) Reset(partition int) {
	if partition < 0 || partition >= len(w.parts) {
		return
	}
	w.parts[partition] = partWindow{}
}
