package policy

import "testing"

func TestWindowSnapshot(t *testing.T) {
	w := NewWindow(2)
	if _, ok := w.Snapshot(0); ok {
		t.Fatal("empty window returned ok")
	}
	if _, ok := w.Snapshot(-1); ok {
		t.Fatal("out-of-range partition returned ok")
	}

	w.ObserveTraverse(0, StrategyRPC, 900, 0)
	w.ObserveTraverse(0, StrategyRPC, 1100, 0)
	w.ObserveTraverse(0, StrategyOneSided, 700, 2)
	w.ObserveTraverse(0, StrategyOneSided, 500, 4)
	w.ObserveLeaf(0, 600, 2, 16)
	w.ObserveLeaf(0, 400, 0, 8) // rtts clamps to 1
	w.ObserveCPU(0, 0.75)

	sig, ok := w.Snapshot(0)
	if !ok {
		t.Fatal("Snapshot not ok after samples")
	}
	if sig.Ops != 4 {
		t.Fatalf("Ops = %d, want 4 (traversals)", sig.Ops)
	}
	if sig.RPCOps != 2 || sig.OneSidedOps != 2 {
		t.Fatalf("per-strategy counts = %d/%d, want 2/2", sig.RPCOps, sig.OneSidedOps)
	}
	// Small windows: p99 degrades to the max sample.
	if sig.RPCTraverseP99 != 1100 || sig.OneSidedTraverseP99 != 700 {
		t.Fatalf("p99s = %d/%d, want 1100/700", sig.RPCTraverseP99, sig.OneSidedTraverseP99)
	}
	if sig.ReadP99 != 400 { // max(600/2, 400/1)
		t.Fatalf("ReadP99 = %d, want 400", sig.ReadP99)
	}
	if sig.RPCTraverseMean != 1000 || sig.OneSidedTraverseMean != 600 {
		t.Fatalf("traverse means = %.1f/%.1f, want 1000/600", sig.RPCTraverseMean, sig.OneSidedTraverseMean)
	}
	if sig.ReadMean != 350 { // mean(600/2, 400/1)
		t.Fatalf("ReadMean = %.1f, want 350", sig.ReadMean)
	}
	if sig.Depth != 3 {
		t.Fatalf("Depth = %.1f, want 3", sig.Depth)
	}
	if sig.AvgValueBytes != 12 {
		t.Fatalf("AvgValueBytes = %.1f, want 12", sig.AvgValueBytes)
	}
	if sig.RTTsPerOp != 1.5 {
		t.Fatalf("RTTsPerOp = %.2f, want 1.5", sig.RTTsPerOp)
	}
	if sig.ServerCPU != 0.75 {
		t.Fatalf("ServerCPU = %.2f, want 0.75", sig.ServerCPU)
	}

	// Partition isolation.
	if _, ok := w.Snapshot(1); ok {
		t.Fatal("partition 1 inherited partition 0's samples")
	}

	// Reset drops everything.
	w.Reset(0)
	if _, ok := w.Snapshot(0); ok {
		t.Fatal("Snapshot ok after Reset")
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(1)
	// Fill past capacity with a high plateau, then overwrite with a low one:
	// the window must forget the old samples entirely.
	for i := 0; i < windowCap; i++ {
		w.ObserveTraverse(0, StrategyRPC, 10_000, 0)
	}
	for i := 0; i < windowCap; i++ {
		w.ObserveTraverse(0, StrategyRPC, 100, 0)
	}
	sig, _ := w.Snapshot(0)
	if sig.RPCTraverseP99 != 100 {
		t.Fatalf("p99 after eviction = %d, want 100", sig.RPCTraverseP99)
	}
	if sig.RPCOps != windowCap {
		t.Fatalf("windowed count = %d, want %d", sig.RPCOps, windowCap)
	}
	if sig.Ops != 2*windowCap {
		t.Fatalf("cumulative ops = %d, want %d", sig.Ops, 2*windowCap)
	}
}

func TestRingP99(t *testing.T) {
	var r ring
	for v := int64(1); v <= 100; v++ {
		r.add(v)
	}
	if got := r.p99(); got != 99 {
		t.Fatalf("p99 of 1..100 = %d, want 99", got)
	}
	r.add(1000)
	if got := r.p99(); got != 100 {
		t.Fatalf("p99 after outlier = %d, want 100", got)
	}
}
