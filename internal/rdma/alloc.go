package rdma

import (
	"fmt"
	"sync"
)

// Allocator manages allocation of page-sized blocks inside one memory
// server's Region. It backs the RDMA_ALLOC verb used by the fine-grained
// index protocol (Listing 4 of the paper) to install new pages after splits,
// and the epoch garbage collector's frees.
//
// The allocator is a bump allocator with per-size free lists. It is safe for
// concurrent use: on the direct and tcpnet transports multiple compute
// threads allocate concurrently.
type Allocator struct {
	mu    sync.Mutex
	start uint64
	end   uint64
	next  uint64
	free  map[int][]uint64 // size in bytes -> free offsets (LIFO)
}

// ErrOutOfMemory is returned when a server's region is exhausted.
var ErrOutOfMemory = fmt.Errorf("rdma: region out of memory")

// NewAllocator creates an allocator managing bytes [start, end) of a region.
// Offsets are rounded to 8-byte alignment.
func NewAllocator(start, end uint64) *Allocator {
	start = (start + 7) &^ 7
	end = end &^ 7
	if end < start {
		end = start
	}
	return &Allocator{start: start, end: end, next: start, free: make(map[int][]uint64)}
}

func blockSize(n int) int {
	if n <= 0 {
		panic("rdma: alloc of non-positive size")
	}
	return (n + 7) &^ 7
}

// Alloc returns the offset of a block of at least n bytes.
func (a *Allocator) Alloc(n int) (uint64, error) {
	size := blockSize(n)
	a.mu.Lock()
	defer a.mu.Unlock()
	if lst := a.free[size]; len(lst) > 0 {
		off := lst[len(lst)-1]
		a.free[size] = lst[:len(lst)-1]
		return off, nil
	}
	if a.next+uint64(size) > a.end {
		return 0, ErrOutOfMemory
	}
	off := a.next
	a.next += uint64(size)
	return off, nil
}

// Free returns a block of n bytes at offset off to the allocator. The caller
// must pass the same size it allocated with. Free panics on offsets the
// allocator never handed out — misaligned, before the managed range, or past
// the bump pointer — because accepting one would hand the same words to two
// owners on the next Alloc and corrupt a remote page silently.
func (a *Allocator) Free(off uint64, n int) {
	size := blockSize(n)
	a.mu.Lock()
	defer a.mu.Unlock()
	if off%8 != 0 {
		panic(fmt.Sprintf("rdma: free of misaligned offset %#x", off))
	}
	if off < a.start || off+uint64(size) > a.next {
		panic(fmt.Sprintf("rdma: free of [%#x,%#x) outside allocated range [%#x,%#x)",
			off, off+uint64(size), a.start, a.next))
	}
	a.free[size] = append(a.free[size], off)
}

// Used returns the number of bytes handed out and never freed, for
// instrumentation. It over-counts by freed-then-unreused blocks' fragmentation
// only in the bump area.
func (a *Allocator) Used() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	used := a.next - a.start
	for size, lst := range a.free {
		used -= uint64(size) * uint64(len(lst))
	}
	return used
}

// Remaining returns the bytes still available in the bump area.
func (a *Allocator) Remaining() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.end - a.next
}

// Watermark returns the bump pointer: one past the highest byte offset ever
// handed out. The extent [start, Watermark()) covers every allocation this
// allocator has made (including since-freed ones), which is exactly what a
// replica rebuild must copy to reconstruct a lost slab.
func (a *Allocator) Watermark() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}
