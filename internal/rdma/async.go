package rdma

// This file defines the non-blocking post/poll surface of an endpoint: the
// dataplane contract behind the pipelined client engine (internal/pipeline).
//
// The blocking Endpoint methods expose one verb (or one intra-op batch) per
// round trip. The async surface decouples posting from completion so verbs
// from *different* operations issued in the same scheduling quantum share one
// doorbell: a client posts any number of verbs (PostRead/PostWrite/PostCAS/
// PostFetchAdd/PostCall), rings the doorbell once (Flush), and later reaps
// every completion in one call (Poll). On an RC transport the verbs posted to
// one QP between two doorbells execute in posting order, so the same
// in-order argument that lets the fused read protocol validate a page copy
// with a trailing version READ (DESIGN.md §7) holds across operations too —
// coalescing is free, correctness-wise.
//
// Contract:
//
//   - Tokens are assigned per endpoint, monotonically from 0, in posting
//     order. A posted verb's outcome is delivered exactly once, as a
//     Completion carrying its token.
//   - Post* never reports an error; every failure (including malformed
//     arguments such as a null pointer) surfaces in the verb's Completion.
//     This is what makes "every token must be polled" a checkable invariant
//     (rdmavet's completionleak analyzer).
//   - Flush rings the doorbell: everything posted since the previous Flush
//     forms one doorbell batch. Implementations use the boundary for
//     batching and accounting; semantically Poll alone is enough.
//   - Poll is bulk-synchronous: it blocks until every posted verb has
//     completed and appends the completions to out in posting order,
//     returning the extended slice. Callers reuse out across rounds to stay
//     allocation-free.
//   - Like the blocking surface, the async surface is single-owner: one
//     goroutine posts, flushes and polls. Blocking verbs may be interleaved
//     freely while no posted verb is outstanding (i.e. between a Poll return
//     and the next Post), which is how serial fallback paths (splits, bulk
//     setup) coexist with the pipelined hot path.
type AsyncEndpoint interface {
	Endpoint
	// PostRead posts a READ of len(dst) words from p into dst.
	PostRead(p RemotePtr, dst []uint64) Token
	// PostWrite posts a WRITE of src to p.
	PostWrite(p RemotePtr, src []uint64) Token
	// PostCAS posts a compare-and-swap of the word at p; the Completion's
	// Val is the prior value (ibverbs semantics: success iff Val == old).
	PostCAS(p RemotePtr, old, new uint64) Token
	// PostFetchAdd posts a fetch-and-add on the word at p; the Completion's
	// Val is the prior value.
	PostFetchAdd(p RemotePtr, delta uint64) Token
	// PostCall posts a two-sided RPC; the Completion's Resp is the response.
	PostCall(server int, req []byte) Token
	// Flush rings the doorbell for everything posted since the last Flush.
	Flush()
	// Poll blocks until every posted verb completed, appends the
	// completions to out in posting order, and returns the extended slice.
	Poll(out []Completion) []Completion
}

// Token identifies one posted, not-yet-completed verb on an AsyncEndpoint.
type Token uint64

// Completion reports the outcome of one posted verb.
type Completion struct {
	Token Token
	// Val is the prior value returned by PostCAS / PostFetchAdd.
	Val uint64
	// Resp is the response of a PostCall.
	Resp []byte
	// Err is the verb's failure, if any; the fault model (a failed verb was
	// never executed remotely) applies per completion, so one failed verb
	// says nothing about its batch neighbours.
	Err error
}

// Async returns the async surface of ep: ep itself when the transport
// implements AsyncEndpoint natively, otherwise a generic adapter that
// buffers posted verbs and executes them through the blocking interface at
// Poll time, one completion per verb.
//
// The adapter preserves the contract exactly — per-verb completions in
// posting order, errors delivered per completion, zero allocations in steady
// state — but not the overlap: verbs execute sequentially, so it offers
// correctness (conformance and chaos testing on any transport) rather than
// pipelining. Transports with a performance model or real sockets implement
// the surface natively.
func Async(ep Endpoint) AsyncEndpoint {
	if a, ok := ep.(AsyncEndpoint); ok {
		return a
	}
	return &asyncAdapter{Endpoint: ep}
}

// PostOp discriminates buffered posted verbs.
type PostOp uint8

// Posted verb kinds.
const (
	PostOpRead PostOp = iota + 1
	PostOpWrite
	PostOpCAS
	PostOpFetchAdd
	PostOpCall
)

// Posted is one buffered posted verb. A and B hold the CAS operands
// (old, new); A holds the FetchAdd delta.
type Posted struct {
	Op     PostOp
	Tok    Token
	P      RemotePtr
	A, B   uint64
	Dst    []uint64
	Src    []uint64
	Server int
	Req    []byte
}

// PostQueue buffers posted verbs and assigns their tokens; the building
// block shared by every AsyncEndpoint implementation. The pending slice's
// capacity is reused across Clear, keeping steady state allocation-free.
type PostQueue struct {
	pending []Posted
	next    Token
}

// Post buffers v, assigns the next token, and returns it.
func (q *PostQueue) Post(v Posted) Token {
	v.Tok = q.next
	q.next++
	q.pending = append(q.pending, v)
	return v.Tok
}

// Pending returns the buffered verbs in posting order. The slice is
// invalidated by Clear.
func (q *PostQueue) Pending() []Posted { return q.pending }

// Len returns the number of buffered verbs.
func (q *PostQueue) Len() int { return len(q.pending) }

// Clear drops the buffered verbs, keeping the backing capacity.
func (q *PostQueue) Clear() { q.pending = q.pending[:0] }

// asyncAdapter is the generic blocking-at-poll AsyncEndpoint described at
// Async.
type asyncAdapter struct {
	Endpoint
	q PostQueue
}

func (a *asyncAdapter) PostRead(p RemotePtr, dst []uint64) Token {
	return a.q.Post(Posted{Op: PostOpRead, P: p, Dst: dst})
}

func (a *asyncAdapter) PostWrite(p RemotePtr, src []uint64) Token {
	return a.q.Post(Posted{Op: PostOpWrite, P: p, Src: src})
}

func (a *asyncAdapter) PostCAS(p RemotePtr, old, new uint64) Token {
	return a.q.Post(Posted{Op: PostOpCAS, P: p, A: old, B: new})
}

func (a *asyncAdapter) PostFetchAdd(p RemotePtr, delta uint64) Token {
	return a.q.Post(Posted{Op: PostOpFetchAdd, P: p, A: delta})
}

func (a *asyncAdapter) PostCall(server int, req []byte) Token {
	return a.q.Post(Posted{Op: PostOpCall, Server: server, Req: req})
}

func (a *asyncAdapter) Flush() {}

func (a *asyncAdapter) Poll(out []Completion) []Completion {
	pending := a.q.Pending()
	for i := range pending {
		v := &pending[i]
		c := Completion{Token: v.Tok}
		switch v.Op {
		case PostOpRead:
			c.Err = a.Endpoint.Read(v.P, v.Dst)
		case PostOpWrite:
			c.Err = a.Endpoint.Write(v.P, v.Src)
		case PostOpCAS:
			//rdmavet:allow caschecked -- transport executes the posted CAS; the prior value is delivered in Completion.Val for the poster to compare
			c.Val, c.Err = a.Endpoint.CompareAndSwap(v.P, v.A, v.B)
		case PostOpFetchAdd:
			c.Val, c.Err = a.Endpoint.FetchAdd(v.P, v.A)
		case PostOpCall:
			c.Resp, c.Err = a.Endpoint.Call(v.Server, v.Req)
		}
		out = append(out, c)
	}
	a.q.Clear()
	return out
}
