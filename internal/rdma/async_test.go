package rdma_test

import (
	"errors"
	"testing"

	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
)

// blockingOnly hides a transport's native async surface so rdma.Async is
// forced onto the generic adapter.
type blockingOnly struct {
	rdma.Endpoint
}

func asyncFixture(t *testing.T) (rdma.Endpoint, rdma.RemotePtr) {
	t.Helper()
	f := direct.New(2, 1<<20, 4096)
	ep := f.Endpoint()
	p, err := ep.Alloc(0, 64)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if err := ep.Write(p, []uint64{10, 20, 30, 40}); err != nil {
		t.Fatalf("write: %v", err)
	}
	return ep, p
}

// contractCheck drives one AsyncEndpoint through a mixed batch and verifies
// the posting-order completion contract.
func contractCheck(t *testing.T, a rdma.AsyncEndpoint, p rdma.RemotePtr) {
	t.Helper()
	dst := make([]uint64, 2)
	t0 := a.PostRead(p, dst)
	t1 := a.PostCAS(p, 10, 11)
	t2 := a.PostCAS(p, 999, 12) // loses: prior != old
	t3 := a.PostFetchAdd(p.Add(8), 5)
	t4 := a.PostRead(rdma.NullPtr, dst) // must fail via its completion
	t5 := a.PostWrite(p.Add(16), []uint64{77})
	a.Flush()
	comps := a.Poll(nil)

	if want := []rdma.Token{0, 1, 2, 3, 4, 5}; len(comps) != len(want) {
		t.Fatalf("got %d completions, want %d", len(comps), len(want))
	}
	for i, tok := range []rdma.Token{t0, t1, t2, t3, t4, t5} {
		if tok != rdma.Token(i) {
			t.Fatalf("token %d assigned %d, want monotonic from 0", i, tok)
		}
		if comps[i].Token != tok {
			t.Fatalf("completion %d carries token %d, want posting order", i, comps[i].Token)
		}
	}
	if comps[0].Err != nil || dst[0] != 10 || dst[1] != 20 {
		t.Fatalf("posted read: dst=%v err=%v", dst, comps[0].Err)
	}
	if comps[1].Err != nil || comps[1].Val != 10 {
		t.Fatalf("winning CAS: val=%d err=%v", comps[1].Val, comps[1].Err)
	}
	if comps[2].Err != nil || comps[2].Val != 11 {
		t.Fatalf("losing CAS: val=%d err=%v (want prior 11, no error)", comps[2].Val, comps[2].Err)
	}
	if comps[3].Err != nil || comps[3].Val != 20 {
		t.Fatalf("FAA: val=%d err=%v", comps[3].Val, comps[3].Err)
	}
	if comps[4].Err == nil {
		t.Fatalf("null-pointer read completed without error")
	}
	if comps[5].Err != nil {
		t.Fatalf("posted write: %v", comps[5].Err)
	}

	// The batch's memory effects are visible to a subsequent blocking verb.
	after := make([]uint64, 3)
	if err := a.Read(p, after); err != nil {
		t.Fatalf("read-after-poll: %v", err)
	}
	if after[0] != 11 || after[1] != 25 || after[2] != 77 {
		t.Fatalf("post-batch state = %v, want [11 25 77]", after)
	}

	// Second batch: tokens continue monotonically, queue state was reset.
	if tok := a.PostRead(p, dst); tok != 6 {
		t.Fatalf("second-batch token = %d, want 6", tok)
	}
	comps = a.Poll(comps[:0])
	if len(comps) != 1 || comps[0].Token != 6 || comps[0].Err != nil {
		t.Fatalf("second batch: %+v", comps)
	}
}

func TestAsyncAdapterContract(t *testing.T) {
	ep, p := asyncFixture(t)
	a := rdma.Async(blockingOnly{ep})
	if _, native := interface{}(a).(*direct.Fabric); native {
		t.Fatal("expected the generic adapter")
	}
	contractCheck(t, a, p)
}

func TestAsyncNativeDirect(t *testing.T) {
	ep, p := asyncFixture(t)
	a := rdma.Async(ep)
	if any(a) != any(ep) {
		t.Fatal("rdma.Async must return a native AsyncEndpoint unchanged")
	}
	contractCheck(t, a, p)
}

func TestAsyncPollEmpty(t *testing.T) {
	ep, _ := asyncFixture(t)
	a := rdma.Async(blockingOnly{ep})
	if comps := a.Poll(nil); comps != nil {
		t.Fatalf("empty poll returned %v", comps)
	}
}

func TestAsyncCallCompletion(t *testing.T) {
	f := direct.New(1, 1<<20, 4096)
	f.SetHandler(func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		resp := append([]byte{0xab}, req...)
		return resp, rdma.Work{}
	})
	a := rdma.Async(blockingOnly{f.Endpoint()})
	a.PostCall(0, []byte{1, 2})
	a.PostCall(7, nil) // unknown server: error completion
	comps := a.Poll(nil)
	if len(comps) != 2 {
		t.Fatalf("got %d completions", len(comps))
	}
	if comps[0].Err != nil || string(comps[0].Resp) != string([]byte{0xab, 1, 2}) {
		t.Fatalf("call completion: resp=%v err=%v", comps[0].Resp, comps[0].Err)
	}
	if comps[1].Err == nil {
		t.Fatal("call to unknown server completed without error")
	}
}

// TestAsyncErrorIsolation pins the per-completion fault model: a failing verb
// in the middle of a batch must not disturb its neighbours.
func TestAsyncErrorIsolation(t *testing.T) {
	ep, p := asyncFixture(t)
	a := rdma.Async(blockingOnly{ep})
	d0, d2 := make([]uint64, 1), make([]uint64, 1)
	a.PostRead(p, d0)
	a.PostRead(rdma.NullPtr, nil)
	a.PostRead(p.Add(8), d2)
	comps := a.Poll(nil)
	if comps[0].Err != nil || comps[2].Err != nil {
		t.Fatalf("neighbour completions failed: %v / %v", comps[0].Err, comps[2].Err)
	}
	if comps[1].Err == nil {
		t.Fatal("middle verb should have failed")
	}
	if d0[0] != 10 || d2[0] != 20 {
		t.Fatalf("neighbour reads corrupted: %d %d", d0[0], d2[0])
	}
	if errors.Is(comps[1].Err, rdma.ErrTimeout) {
		t.Fatal("null pointer must not masquerade as a transient fault")
	}
}

// TestAsyncSteadyStateAllocs gates the adapter's zero-allocation steady
// state: posting into caller-owned buffers and polling into a reused slice
// must not allocate.
func TestAsyncSteadyStateAllocs(t *testing.T) {
	ep, p := asyncFixture(t)
	a := rdma.Async(blockingOnly{ep})
	dst := make([]uint64, 2)
	comps := make([]rdma.Completion, 0, 8)
	// Warm the queue and completion capacities.
	for i := 0; i < 3; i++ {
		a.PostRead(p, dst)
		a.PostFetchAdd(p.Add(8), 1)
		a.Flush()
		comps = a.Poll(comps[:0])
	}
	avg := testing.AllocsPerRun(100, func() {
		a.PostRead(p, dst)
		a.PostFetchAdd(p.Add(8), 1)
		a.Flush()
		comps = a.Poll(comps[:0])
	})
	if avg != 0 {
		t.Fatalf("async steady state allocates %.1f allocs/round, want 0", avg)
	}
}
