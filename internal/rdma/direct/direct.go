// Package direct implements the rdma verbs API as immediate in-process
// operations backed by real atomics.
//
// It has no performance model: verbs complete instantly on the calling
// goroutine and RPC handlers execute on the caller. It exists so the index
// protocols can be exercised functionally — including under the race
// detector with many concurrent compute threads — and so examples run
// without a simulation harness.
package direct

import (
	"fmt"
	"runtime"

	"github.com/namdb/rdmatree/internal/rdma"
)

// Fabric is an in-process NAM cluster: a set of memory servers reachable
// from any number of client endpoints.
type Fabric struct {
	servers []*rdma.Server
	handler rdma.Handler
}

var _ rdma.Fabric = (*Fabric)(nil)

// New creates a fabric with numServers memory servers, each with a region of
// regionBytes bytes (reservedBytes of which are left for superblock
// metadata, see rdma.NewServer).
func New(numServers, regionBytes, reservedBytes int) *Fabric {
	if numServers < 1 || numServers > rdma.MaxServers {
		panic(fmt.Sprintf("direct: invalid server count %d", numServers))
	}
	f := &Fabric{}
	for i := 0; i < numServers; i++ {
		f.servers = append(f.servers, rdma.NewServer(i, regionBytes, reservedBytes))
	}
	return f
}

// NumServers implements rdma.Fabric.
func (f *Fabric) NumServers() int { return len(f.servers) }

// Server implements rdma.Fabric.
func (f *Fabric) Server(i int) *rdma.Server { return f.servers[i] }

// SetHandler implements rdma.Fabric.
func (f *Fabric) SetHandler(h rdma.Handler) { f.handler = h }

// Endpoint returns a client endpoint. Each concurrent client must use its
// own endpoint: the blocking verbs are stateless here, but the post/poll
// queue is per-endpoint state like on every other transport.
func (f *Fabric) Endpoint() rdma.Endpoint { return &endpoint{f: f} }

type endpoint struct {
	f *Fabric
	q rdma.PostQueue
}

var _ rdma.Endpoint = (*endpoint)(nil)

func (e *endpoint) server(p rdma.RemotePtr) (*rdma.Server, error) {
	if p.IsNull() {
		return nil, fmt.Errorf("direct: null remote pointer")
	}
	id := p.Server()
	if id >= len(e.f.servers) {
		return nil, fmt.Errorf("direct: pointer to unknown server %d", id)
	}
	return e.f.servers[id], nil
}

func (e *endpoint) Read(p rdma.RemotePtr, dst []uint64) error {
	s, err := e.server(p)
	if err != nil {
		return err
	}
	s.Region.Read(p.Offset(), dst)
	return nil
}

func (e *endpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	for i, p := range ps {
		if err := e.Read(p, dst[i]); err != nil {
			return err
		}
	}
	return nil
}

func (e *endpoint) Write(p rdma.RemotePtr, src []uint64) error {
	s, err := e.server(p)
	if err != nil {
		return err
	}
	s.Region.Write(p.Offset(), src)
	return nil
}

func (e *endpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	s, err := e.server(p)
	if err != nil {
		return 0, err
	}
	return s.Region.CompareAndSwap(p.Offset(), old, new), nil
}

func (e *endpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	s, err := e.server(p)
	if err != nil {
		return 0, err
	}
	return s.Region.FetchAdd(p.Offset(), delta), nil
}

func (e *endpoint) Alloc(server int, n int) (rdma.RemotePtr, error) {
	if server < 0 || server >= len(e.f.servers) {
		return rdma.NullPtr, fmt.Errorf("direct: alloc on unknown server %d", server)
	}
	off, err := e.f.servers[server].Alloc.Alloc(n)
	if err != nil {
		return rdma.NullPtr, err
	}
	return rdma.MakePtr(server, off), nil
}

func (e *endpoint) Free(p rdma.RemotePtr, n int) error {
	s, err := e.server(p)
	if err != nil {
		return err
	}
	s.Alloc.Free(p.Offset(), n)
	return nil
}

func (e *endpoint) Call(server int, req []byte) ([]byte, error) {
	if e.f.handler == nil {
		return nil, fmt.Errorf("direct: no RPC handler installed")
	}
	if server < 0 || server >= len(e.f.servers) {
		return nil, fmt.Errorf("direct: call to unknown server %d", server)
	}
	resp, _ := e.f.handler(Env{}, server, req)
	return resp, nil
}

func (e *endpoint) NumServers() int { return len(e.f.servers) }

// --- non-blocking post/poll surface (rdma.AsyncEndpoint) -----------------
//
// direct has no performance model, so buffered verbs simply execute through
// the blocking methods at Poll time, one completion per verb in posting
// order. Implementing the surface natively (rather than falling back to the
// generic adapter) keeps the endpoint self-contained and lets race-detector
// runs cover the same code paths the pipelined engine drives elsewhere.

var _ rdma.AsyncEndpoint = (*endpoint)(nil)

func (e *endpoint) PostRead(p rdma.RemotePtr, dst []uint64) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpRead, P: p, Dst: dst})
}

func (e *endpoint) PostWrite(p rdma.RemotePtr, src []uint64) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpWrite, P: p, Src: src})
}

func (e *endpoint) PostCAS(p rdma.RemotePtr, old, new uint64) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpCAS, P: p, A: old, B: new})
}

func (e *endpoint) PostFetchAdd(p rdma.RemotePtr, delta uint64) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpFetchAdd, P: p, A: delta})
}

func (e *endpoint) PostCall(server int, req []byte) rdma.Token {
	return e.q.Post(rdma.Posted{Op: rdma.PostOpCall, Server: server, Req: req})
}

func (e *endpoint) Flush() {}

func (e *endpoint) Poll(out []rdma.Completion) []rdma.Completion {
	pending := e.q.Pending()
	for i := range pending {
		v := &pending[i]
		c := rdma.Completion{Token: v.Tok}
		switch v.Op {
		case rdma.PostOpRead:
			c.Err = e.Read(v.P, v.Dst)
		case rdma.PostOpWrite:
			c.Err = e.Write(v.P, v.Src)
		case rdma.PostOpCAS:
			//rdmavet:allow caschecked -- transport executes the posted CAS; the prior value is delivered in Completion.Val for the poster to compare
			c.Val, c.Err = e.CompareAndSwap(v.P, v.A, v.B)
		case rdma.PostOpFetchAdd:
			c.Val, c.Err = e.FetchAdd(v.P, v.A)
		case rdma.PostOpCall:
			c.Resp, c.Err = e.Call(v.Server, v.Req)
		}
		out = append(out, c)
	}
	e.q.Clear()
	return out
}

// Env is the execution environment handed to RPC handlers on the direct
// transport: CPU accounting is a no-op and spin-wait backoff yields the
// processor so lock holders on other goroutines can progress.
type Env struct{}

// Charge implements rdma.Env.
func (Env) Charge(int64) {}

// Pause implements rdma.Env.
func (Env) Pause() { runtime.Gosched() }
