package direct

import (
	"bytes"
	"sync"
	"testing"

	"github.com/namdb/rdmatree/internal/rdma"
)

func TestOneSidedVerbs(t *testing.T) {
	f := New(2, 4096, 0)
	ep := f.Endpoint()

	p := rdma.MakePtr(1, 64)
	if err := ep.Write(p, []uint64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 3)
	if err := ep.Read(p, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 7 || dst[1] != 8 || dst[2] != 9 {
		t.Fatalf("read %v", dst)
	}

	if old, err := ep.CompareAndSwap(p, 7, 100); err != nil || old != 7 {
		t.Fatalf("CAS old=%d err=%v", old, err)
	}
	if old, err := ep.FetchAdd(p, 1); err != nil || old != 100 {
		t.Fatalf("FetchAdd old=%d err=%v", old, err)
	}
	if err := ep.Read(p, dst[:1]); err != nil || dst[0] != 101 {
		t.Fatalf("after atomics value=%d err=%v", dst[0], err)
	}
}

func TestVerbsCrossServerIsolation(t *testing.T) {
	f := New(2, 4096, 0)
	ep := f.Endpoint()
	if err := ep.Write(rdma.MakePtr(0, 0), []uint64{11}); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 1)
	if err := ep.Read(rdma.MakePtr(1, 0), dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 {
		t.Fatalf("server 1 saw server 0's write: %d", dst[0])
	}
}

func TestNullPointerRejected(t *testing.T) {
	f := New(1, 4096, 0)
	ep := f.Endpoint()
	if err := ep.Read(rdma.NullPtr, make([]uint64, 1)); err == nil {
		t.Fatal("Read(null) succeeded")
	}
	if err := ep.Write(rdma.NullPtr, []uint64{1}); err == nil {
		t.Fatal("Write(null) succeeded")
	}
}

func TestAllocFree(t *testing.T) {
	f := New(2, 4096, 128)
	ep := f.Endpoint()
	p, err := ep.Alloc(1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if p.Server() != 1 {
		t.Fatalf("alloc on server %d; want 1", p.Server())
	}
	if err := ep.Write(p, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := ep.Free(p, 256); err != nil {
		t.Fatal(err)
	}
	p2, err := ep.Alloc(1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatalf("freed block not reused: %v vs %v", p2, p)
	}
}

func TestRPCEcho(t *testing.T) {
	f := New(3, 4096, 0)
	f.SetHandler(func(env rdma.Env, server int, req []byte) ([]byte, rdma.Work) {
		resp := append([]byte{byte(server)}, req...)
		return resp, rdma.Work{PagesTouched: 1}
	})
	ep := f.Endpoint()
	for s := 0; s < 3; s++ {
		resp, err := ep.Call(s, []byte("hello"))
		if err != nil {
			t.Fatal(err)
		}
		if resp[0] != byte(s) || !bytes.Equal(resp[1:], []byte("hello")) {
			t.Fatalf("server %d: resp %q", s, resp)
		}
	}
}

func TestCallWithoutHandlerFails(t *testing.T) {
	f := New(1, 4096, 0)
	if _, err := f.Endpoint().Call(0, []byte("x")); err == nil {
		t.Fatal("Call without handler succeeded")
	}
}

func TestConcurrentClientsAtomicCounter(t *testing.T) {
	f := New(1, 4096, 0)
	const clients = 16
	const perClient = 2000
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := f.Endpoint()
			p := rdma.MakePtr(0, 0)
			for i := 0; i < perClient; i++ {
				if _, err := ep.FetchAdd(p, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := f.Server(0).Region.Load(0); got != clients*perClient {
		t.Fatalf("counter = %d; want %d", got, clients*perClient)
	}
}
