package rdma

import "errors"

// Typed verb failures. Real verbs surfaces (ibverbs work completions, QP
// state transitions) report failures the index protocols must distinguish:
// a completion that never arrived can be retried, a queue pair in the error
// state must be torn down and re-established, and a memory server that lost
// its registered region is gone for good — its rkeys are invalid and no
// amount of retrying brings the pages back. Transports and the fault
// injector wrap these sentinels so clients can classify with errors.Is.
var (
	// ErrTimeout reports a verb whose completion did not arrive within the
	// deadline (a delayed or dropped completion). Under this repository's
	// fault model a timed-out verb was never executed by the remote side:
	// the RC transport retries the WQE transparently and signals failure
	// only after exhausting NIC-level retries, before the request is acked
	// (see DESIGN.md §9). Retrying it is therefore safe for every verb.
	ErrTimeout = errors.New("rdma: verb timed out")

	// ErrQPError reports a queue pair in the error state: every posted and
	// future work request on it is flushed. The connection to that server
	// must be re-established (Reconnector) before verbs can succeed.
	ErrQPError = errors.New("rdma: queue pair in error state")

	// ErrServerDown reports a memory server that is currently unreachable
	// (crashed, restarting). It may come back; retrying with backoff is the
	// right response.
	ErrServerDown = errors.New("rdma: memory server unreachable")

	// ErrServerLost reports a memory server that restarted and lost its
	// registered region: the remote pointers and rkeys held by this client
	// are permanently invalid. Not retryable — the operation must surface
	// the loss to its caller.
	ErrServerLost = errors.New("rdma: memory server lost registered region")

	// ErrGroupMoved reports that a replica group failed over while the verb
	// was in flight: the target server is no longer the group's acting
	// primary (or a mirror push observed a newer group epoch). The verb was
	// not (or must be treated as not) applied.
	//
	// Deliberately NOT transient: blindly re-driving the same verb against
	// the newly promoted primary is unsound — e.g. replaying an
	// unlock FETCH_AND_ADD against the promoted copy would *lock* its page
	// with no unlock ever coming. The whole operation must instead abort,
	// cross an epoch fence, and re-run from the root under the new routing
	// (core.Recovered treats this error as op-recoverable).
	ErrGroupMoved = errors.New("rdma: replica group moved (primary failed over)")
)

// IsTransient reports whether err is a verb failure that a bounded retry
// (plus, for QP errors, a reconnect) can be expected to clear. ErrServerLost
// is deliberately not transient.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrQPError) ||
		errors.Is(err, ErrServerDown)
}

// Reconnector is implemented by endpoints that can tear down and
// re-establish the queue pair to one server after an ErrQPError. Reconnect
// returns nil when the new QP is usable, ErrServerDown while the server is
// unreachable (retry later), and ErrServerLost when the server came back
// without its registered region.
type Reconnector interface {
	Reconnect(server int) error
}
