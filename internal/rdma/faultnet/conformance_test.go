package faultnet_test

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/namdb/rdmatree/internal/core"
	"github.com/namdb/rdmatree/internal/core/fine"
	"github.com/namdb/rdmatree/internal/layout"
	"github.com/namdb/rdmatree/internal/nam"
	"github.com/namdb/rdmatree/internal/rdma"
	"github.com/namdb/rdmatree/internal/rdma/direct"
	"github.com/namdb/rdmatree/internal/rdma/faultnet"
	"github.com/namdb/rdmatree/internal/rdma/retry"
	"github.com/namdb/rdmatree/internal/rdma/tcpnet"
	"github.com/namdb/rdmatree/internal/workload"
)

// driveIndex runs a fixed mixed script against idx and returns a transcript
// of every result, so two runs can be compared byte for byte.
func driveIndex(t *testing.T, idx core.Index) string {
	t.Helper()
	var b strings.Builder
	for k := uint64(0); k < 400; k += 7 {
		vals, err := idx.Lookup(k)
		fmt.Fprintf(&b, "get %d -> %v %v\n", k, vals, err)
	}
	for k := uint64(1000); k < 1050; k++ {
		fmt.Fprintf(&b, "put %d %v\n", k, idx.Insert(k, k*3))
	}
	for k := uint64(1000); k < 1020; k++ {
		ok, err := idx.Delete(k, k*3)
		fmt.Fprintf(&b, "del %d %v %v\n", k, ok, err)
	}
	err := idx.Range(50, 90, func(k, v uint64) bool {
		fmt.Fprintf(&b, "scan %d %d\n", k, v)
		return true
	})
	fmt.Fprintf(&b, "range %v\n", err)
	return b.String()
}

// stack wraps ep the way the chaos harness does — fault injection under the
// shared retry policy — with a zero (fault-free) schedule.
func stack(ep rdma.Endpoint) rdma.Endpoint {
	n := faultnet.New(faultnet.Schedule{}, nil)
	return retry.Wrap(n.Endpoint(ep, 0), &retry.Policy{})
}

// TestConformanceDirect checks that a fault-free faultnet (and the retry
// decorator over it) is functionally invisible on the direct transport: the
// same operation script produces a byte-identical transcript with and
// without the robustness stack.
func TestConformanceDirect(t *testing.T) {
	build := func() (*direct.Fabric, *nam.Catalog) {
		fab := direct.New(2, 64<<20, nam.SuperblockBytes)
		cat, err := fine.Build(fab.Endpoint(), fine.Options{Layout: layout.New(512)},
			core.BuildSpec{N: 5000, At: workload.DataItem, HeadEvery: 16})
		if err != nil {
			t.Fatal(err)
		}
		return fab, cat
	}
	fab, cat := build()
	plain := driveIndex(t, fine.NewClient(fab.Endpoint(), direct.Env{}, cat, 0))

	fab2, cat2 := build()
	wrapped := driveIndex(t, fine.NewClient(stack(fab2.Endpoint()), direct.Env{}, cat2, 0))

	if plain != wrapped {
		t.Fatalf("fault-free stack diverged:\nplain:\n%s\nwrapped:\n%s", plain, wrapped)
	}
}

// TestConformanceTCP repeats the invisibility check over real TCP
// connections to in-process memory-server agents.
func TestConformanceTCP(t *testing.T) {
	runScript := func(wrap bool) string {
		var addrs []string
		for i := 0; i < 2; i++ {
			srv := rdma.NewServer(i, 64<<20, nam.SuperblockBytes)
			agent := tcpnet.NewAgent(srv, nil)
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, l.Addr().String())
			go agent.Serve(l)
			t.Cleanup(agent.Close)
		}
		setup := tcpnet.Dial(addrs)
		cat, err := fine.Build(setup, fine.Options{Layout: layout.New(1024)},
			core.BuildSpec{N: 2000, At: workload.DataItem, HeadEvery: 16})
		setup.Close()
		if err != nil {
			t.Fatal(err)
		}
		tep := tcpnet.Dial(addrs)
		t.Cleanup(tep.Close)
		var ep rdma.Endpoint = tep
		if wrap {
			ep = stack(tep)
		}
		return driveIndex(t, fine.NewClient(ep, rdma.NopEnv{}, cat, 0))
	}

	plain := runScript(false)
	wrapped := runScript(true)
	if plain != wrapped {
		t.Fatalf("fault-free stack diverged over TCP:\nplain:\n%s\nwrapped:\n%s", plain, wrapped)
	}
}
