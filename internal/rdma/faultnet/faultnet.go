// Package faultnet injects deterministic, seeded fault schedules into any
// rdma.Endpoint — the chaos layer of this repository.
//
// A Net holds the scripted server-level fault state of one cluster (crashes,
// restarts, registered-region loss) and hands out per-client Endpoint
// decorators that additionally execute a per-endpoint probabilistic schedule
// (dropped completions, delayed completions, QP error transitions) driven by
// a PRNG seeded from (Schedule.Seed, client id). The decorator stacks on any
// transport (direct, tcpnet, simnet) and composes with the telemetry
// decorator; with a zero Schedule it is transparent — every verb is a plain
// delegation.
//
// # Fault model
//
// A verb that fails was never executed by the remote side. This models the
// conservative failure of a reliable-connection NIC: the HCA retransmits a
// WQE transparently and reports an error only after exhausting its retry
// budget, i.e. before the request was acked. (The executed-but-unacked
// window of a real fabric collapses onto the crash cases: a request that
// reached a server which then crashed is indistinguishable, to the client,
// from one that never arrived — and the client-side recovery protocol
// re-verifies state before re-applying mutations either way; see
// DESIGN.md §9.) This property is what makes bounded verb-level retries safe
// for every verb including CAS and two-sided Calls.
//
// Fault kinds:
//
//   - delayed completion: the verb executes, the extra latency is counted;
//     a delay past Schedule.DeadlineNS instead surfaces rdma.ErrTimeout
//     (the completion missed its deadline; the WQE is flushed unexecuted).
//   - dropped completion: rdma.ErrTimeout, verb not executed.
//   - QP error: the queue pair to one server transitions to the error
//     state; every verb to it fails with rdma.ErrQPError until the client
//     re-establishes it through Reconnect.
//   - server crash/restart: scripted at the Net level in global verb ticks.
//     While down, verbs to the server break the QP (rdma.ErrQPError) and
//     Reconnect reports rdma.ErrServerDown. On restart the region either
//     survived (process restart, contents re-registered) or was lost — in
//     the loss case the server's incarnation advances and every verb from a
//     client holding old rkeys fails permanently with rdma.ErrServerLost.
//
// Time is counted in verb ticks, not wall clock: the schedule is
// deterministic for a fixed seed regardless of host speed, and a crashed
// server restarts after a fixed amount of cluster-wide verb traffic, so
// retrying clients always make progress toward the restart.
package faultnet

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/namdb/rdmatree/internal/rdma"
)

// Fault kind labels passed to Counters.CountFault.
const (
	FaultDrop         = "drop"          // completion dropped, verb timed out
	FaultDelay        = "delay"         // completion delayed within deadline
	FaultDelayTimeout = "delay-timeout" // completion delayed past deadline
	FaultQPError      = "qp-error"      // queue pair transitioned to error
	FaultServerDown   = "server-down"   // verb hit a crashed server
	FaultServerLost   = "server-lost"   // verb hit a server that lost its region
)

// Counters receives one call per injected fault; telemetry.Recorder
// implements it. Implementations must be safe for concurrent use.
type Counters interface {
	CountFault(kind string)
}

// Step is one scripted server-level fault: at global verb tick AtTick,
// Server crashes; it restarts once the cluster has issued DownForTicks
// further verbs. If Lose is set the restart loses the registered region
// (incarnation bump): clients holding pointers into it get
// rdma.ErrServerLost from then on.
type Step struct {
	AtTick       int64
	Server       int
	DownForTicks int64
	Lose         bool
}

// Schedule is one deterministic fault schedule. The zero value injects
// nothing.
type Schedule struct {
	// Seed drives every probabilistic choice; per-endpoint streams are
	// derived from (Seed, client id), so a schedule is reproducible for a
	// fixed seed and client count.
	Seed int64
	// DropRate is the per-verb probability of a dropped completion.
	DropRate float64
	// DelayRate is the per-verb probability of a delayed completion; the
	// delay is sampled uniformly from [1, MaxDelayNS].
	DelayRate float64
	// MaxDelayNS bounds sampled completion delays (default 2*DeadlineNS).
	MaxDelayNS int64
	// DeadlineNS is the per-verb completion deadline: a sampled delay
	// beyond it surfaces as rdma.ErrTimeout (default 10µs).
	DeadlineNS int64
	// QPErrorEvery, when > 0, transitions the QP carrying the current verb
	// into the error state roughly every QPErrorEvery verbs per endpoint
	// (exact spacing is seeded jitter in [N, 2N)).
	QPErrorEvery int
	// Steps are the scripted server crashes, ordered by AtTick.
	Steps []Step
}

func (s *Schedule) deadline() int64 {
	if s.DeadlineNS > 0 {
		return s.DeadlineNS
	}
	return 10_000
}

func (s *Schedule) maxDelay() int64 {
	if s.MaxDelayNS > 0 {
		return s.MaxDelayNS
	}
	return 2 * s.deadline()
}

// serverState is the Net-level view of one memory server.
type serverState struct {
	down        bool
	restartAt   int64 // global tick at which the server comes back
	loseOnUp    bool
	incarnation int
}

// Net is the shared fault state of one cluster: the global verb tick and
// per-server crash/incarnation state. One Net is shared by every endpoint of
// a run; derive per-client endpoints with Endpoint.
type Net struct {
	sched    Schedule
	counters Counters

	// OnLose, when set before the run starts, is invoked once each time a
	// server restarts without its registered region (the incarnation bump).
	// The replication chaos harness uses it to actually zero the lost
	// server's region, so "recovery" is exercised against genuinely
	// destroyed data rather than a region that conveniently survived. The
	// hook runs outside the Net lock and must not call back into Net.
	OnLose func(server int)

	mu      sync.Mutex
	tick    int64
	stepIdx int
	servers map[int]*serverState
}

// New creates the shared fault state for a cluster running sched. counters
// may be nil.
func New(sched Schedule, counters Counters) *Net {
	return &Net{sched: sched, counters: counters, servers: map[int]*serverState{}}
}

func (n *Net) count(kind string) {
	if n.counters != nil {
		n.counters.CountFault(kind)
	}
}

func (n *Net) state(server int) *serverState {
	st, ok := n.servers[server]
	if !ok {
		st = &serverState{}
		n.servers[server] = st
	}
	return st
}

// advance bumps the global verb tick, fires due scripted steps, restarts
// servers whose downtime elapsed, and returns the observed (down,
// incarnation) of server. Called once per verb attempt (and per reconnect
// attempt, so blocked clients still drive scripted restarts forward).
func (n *Net) advance(server int) (down bool, incarnation int) {
	n.mu.Lock()
	var lost []int
	n.tick++
	for n.stepIdx < len(n.sched.Steps) && n.sched.Steps[n.stepIdx].AtTick <= n.tick {
		step := n.sched.Steps[n.stepIdx]
		n.stepIdx++
		st := n.state(step.Server)
		st.down = true
		st.restartAt = n.tick + step.DownForTicks
		st.loseOnUp = step.Lose
		n.count("crash")
	}
	for s, st := range n.servers {
		if st.down && n.tick >= st.restartAt {
			st.down = false
			if st.loseOnUp {
				st.incarnation++
				st.loseOnUp = false
				lost = append(lost, s)
			}
		}
	}
	st := n.state(server)
	down, incarnation = st.down, st.incarnation
	hook := n.OnLose
	n.mu.Unlock()
	if hook != nil {
		for _, s := range lost {
			hook(s)
		}
	}
	return down, incarnation
}

// Tick returns the current global verb tick (tests, reports).
func (n *Net) Tick() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tick
}

// Endpoint wraps inner in this Net's fault schedule for one client. Like
// every endpoint it must be owned by a single goroutine.
func (n *Net) Endpoint(inner rdma.Endpoint, client int) *Endpoint {
	e := &Endpoint{
		inner: inner,
		net:   n,
		// splitmix-style stream separation so each client draws an
		// independent deterministic sequence from the shared seed.
		rng:      rand.New(rand.NewSource(n.sched.Seed*0x9e3779b9 + int64(client)*0x85ebca6b + 1)),
		qpBroken: map[int]bool{},
		reg:      map[int]int{},
	}
	if n.sched.QPErrorEvery > 0 {
		e.nextQPError = int64(n.sched.QPErrorEvery) + e.rng.Int63n(int64(n.sched.QPErrorEvery))
	}
	return e
}

// Endpoint is the per-client fault-injecting decorator.
type Endpoint struct {
	inner rdma.Endpoint
	net   *Net
	rng   *rand.Rand

	verbs       int64
	nextQPError int64
	qpBroken    map[int]bool
	reg         map[int]int // incarnation this client's rkeys were registered against

	// DelayedNS accumulates injected within-deadline completion delays, so
	// harnesses can report how much latency the schedule added.
	DelayedNS int64

	// Async post/poll state (see Poll).
	async      rdma.AsyncEndpoint
	posted     []asyncPost
	nextTok    rdma.Token
	innerComps []rdma.Completion
}

var _ rdma.Endpoint = (*Endpoint)(nil)
var _ rdma.Reconnector = (*Endpoint)(nil)
var _ rdma.AsyncEndpoint = (*Endpoint)(nil)

// gate runs the fault schedule for one verb targeting the given servers.
// A non-nil error means the verb must not execute.
func (e *Endpoint) gate(servers ...int) error {
	for _, s := range servers {
		down, inc := e.net.advance(s)
		if inc != e.reg[s] {
			e.net.count(FaultServerLost)
			return fmt.Errorf("faultnet: server %d: %w", s, rdma.ErrServerLost)
		}
		if down {
			// A crashed server flushes the QP: the client sees the
			// connection break and must reconnect (which reports
			// ErrServerDown until the restart).
			e.qpBroken[s] = true
			e.net.count(FaultServerDown)
			return fmt.Errorf("faultnet: server %d crashed: %w", s, rdma.ErrQPError)
		}
		if e.qpBroken[s] {
			return fmt.Errorf("faultnet: server %d: %w", s, rdma.ErrQPError)
		}
	}
	e.verbs++
	sched := &e.net.sched
	if sched.QPErrorEvery > 0 && e.verbs >= e.nextQPError && len(servers) > 0 {
		e.nextQPError = e.verbs + int64(sched.QPErrorEvery) + e.rng.Int63n(int64(sched.QPErrorEvery))
		s := servers[0]
		e.qpBroken[s] = true
		e.net.count(FaultQPError)
		return fmt.Errorf("faultnet: server %d: %w", s, rdma.ErrQPError)
	}
	if sched.DropRate > 0 && e.rng.Float64() < sched.DropRate {
		e.net.count(FaultDrop)
		return fmt.Errorf("faultnet: completion dropped: %w", rdma.ErrTimeout)
	}
	if sched.DelayRate > 0 && e.rng.Float64() < sched.DelayRate {
		d := 1 + e.rng.Int63n(sched.maxDelay())
		if d > sched.deadline() {
			e.net.count(FaultDelayTimeout)
			return fmt.Errorf("faultnet: completion delayed %dns past the %dns deadline: %w",
				d, sched.deadline(), rdma.ErrTimeout)
		}
		e.DelayedNS += d
		e.net.count(FaultDelay)
	}
	return nil
}

// Reconnect implements rdma.Reconnector: it re-establishes the QP to server,
// reporting ErrServerDown while the server is crashed and ErrServerLost when
// it came back without its region. Reconnect attempts advance the global
// tick, so clients blocked on a crashed server still drive its scripted
// restart forward.
func (e *Endpoint) Reconnect(server int) error {
	down, inc := e.net.advance(server)
	if down {
		return fmt.Errorf("faultnet: server %d still down: %w", server, rdma.ErrServerDown)
	}
	if inc != e.reg[server] {
		e.net.count(FaultServerLost)
		return fmt.Errorf("faultnet: server %d restarted without its region: %w", server, rdma.ErrServerLost)
	}
	if r, ok := e.inner.(rdma.Reconnector); ok {
		if err := r.Reconnect(server); err != nil {
			return err
		}
	}
	delete(e.qpBroken, server)
	return nil
}

// Reregister adopts server's current incarnation: the client obtains fresh
// rkeys for the restarted server's (empty) region, after which verbs stop
// reporting ErrServerLost. This is the first step of a replica rebuild — the
// rebuilt region is blank until survivors re-replicate onto it. Returns
// ErrServerDown while the server is still crashed.
func (e *Endpoint) Reregister(server int) error {
	down, inc := e.net.advance(server)
	if down {
		return fmt.Errorf("faultnet: server %d still down: %w", server, rdma.ErrServerDown)
	}
	if r, ok := e.inner.(rdma.Reconnector); ok {
		if err := r.Reconnect(server); err != nil {
			return err
		}
	}
	e.reg[server] = inc
	delete(e.qpBroken, server)
	return nil
}

// Read implements rdma.Endpoint.
func (e *Endpoint) Read(p rdma.RemotePtr, dst []uint64) error {
	if err := e.gate(p.Server()); err != nil {
		return err
	}
	return e.inner.Read(p, dst)
}

// ReadMulti implements rdma.Endpoint. The batch waits on one completion, so
// it draws one fault decision; a crashed or lost server anywhere in the
// batch fails the whole batch.
func (e *Endpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	servers := make([]int, 0, len(ps))
	seen := map[int]bool{}
	for _, p := range ps {
		if s := p.Server(); !seen[s] {
			seen[s] = true
			servers = append(servers, s)
		}
	}
	if err := e.gate(servers...); err != nil {
		return err
	}
	return e.inner.ReadMulti(ps, dst)
}

// Write implements rdma.Endpoint.
func (e *Endpoint) Write(p rdma.RemotePtr, src []uint64) error {
	if err := e.gate(p.Server()); err != nil {
		return err
	}
	return e.inner.Write(p, src)
}

// CompareAndSwap implements rdma.Endpoint.
func (e *Endpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	if err := e.gate(p.Server()); err != nil {
		return 0, err
	}
	return e.inner.CompareAndSwap(p, old, new)
}

// FetchAdd implements rdma.Endpoint.
func (e *Endpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	if err := e.gate(p.Server()); err != nil {
		return 0, err
	}
	return e.inner.FetchAdd(p, delta)
}

// Alloc implements rdma.Endpoint.
func (e *Endpoint) Alloc(server int, n int) (rdma.RemotePtr, error) {
	if err := e.gate(server); err != nil {
		return rdma.NullPtr, err
	}
	return e.inner.Alloc(server, n)
}

// Free implements rdma.Endpoint.
func (e *Endpoint) Free(p rdma.RemotePtr, n int) error {
	if err := e.gate(p.Server()); err != nil {
		return err
	}
	return e.inner.Free(p, n)
}

// Call implements rdma.Endpoint. A dropped Call is a request lost before the
// server processed it (same not-executed model as the one-sided verbs).
func (e *Endpoint) Call(server int, req []byte) ([]byte, error) {
	if err := e.gate(server); err != nil {
		return nil, err
	}
	return e.inner.Call(server, req)
}

// NumServers implements rdma.Endpoint.
func (e *Endpoint) NumServers() int { return e.inner.NumServers() }

// --- non-blocking post/poll surface (rdma.AsyncEndpoint) -----------------
//
// Each posted verb draws its fault decision at Post time, in posting order,
// so a schedule remains deterministic regardless of how the inner transport
// overlaps the batch. A gated verb is never forwarded — it completes with the
// injected error at Poll, while its surviving batch neighbours proceed
// untouched on the inner async surface (rdma.Async of the wrapped endpoint):
// the per-verb not-executed fault model holds within a doorbell batch.

// asyncPost records one posted verb's gate outcome: err != nil means the verb
// was swallowed by the schedule and owes its caller an error completion.
type asyncPost struct {
	tok rdma.Token
	err error
}

// ensureAsync resolves the inner async surface on first use.
func (e *Endpoint) ensureAsync() rdma.AsyncEndpoint {
	if e.async == nil {
		e.async = rdma.Async(e.inner)
	}
	return e.async
}

// record assigns the next token and stores the gate outcome.
func (e *Endpoint) record(err error) rdma.Token {
	tok := e.nextTok
	e.nextTok++
	e.posted = append(e.posted, asyncPost{tok: tok, err: err})
	return tok
}

// PostRead implements rdma.AsyncEndpoint.
func (e *Endpoint) PostRead(p rdma.RemotePtr, dst []uint64) rdma.Token {
	err := e.gate(p.Server())
	if err == nil {
		e.ensureAsync().PostRead(p, dst)
	}
	return e.record(err)
}

// PostWrite implements rdma.AsyncEndpoint.
func (e *Endpoint) PostWrite(p rdma.RemotePtr, src []uint64) rdma.Token {
	err := e.gate(p.Server())
	if err == nil {
		e.ensureAsync().PostWrite(p, src)
	}
	return e.record(err)
}

// PostCAS implements rdma.AsyncEndpoint.
func (e *Endpoint) PostCAS(p rdma.RemotePtr, old, new uint64) rdma.Token {
	err := e.gate(p.Server())
	if err == nil {
		e.ensureAsync().PostCAS(p, old, new)
	}
	return e.record(err)
}

// PostFetchAdd implements rdma.AsyncEndpoint.
func (e *Endpoint) PostFetchAdd(p rdma.RemotePtr, delta uint64) rdma.Token {
	err := e.gate(p.Server())
	if err == nil {
		e.ensureAsync().PostFetchAdd(p, delta)
	}
	return e.record(err)
}

// PostCall implements rdma.AsyncEndpoint.
func (e *Endpoint) PostCall(server int, req []byte) rdma.Token {
	err := e.gate(server)
	if err == nil {
		e.ensureAsync().PostCall(server, req)
	}
	return e.record(err)
}

// Flush implements rdma.AsyncEndpoint.
func (e *Endpoint) Flush() {
	if e.async != nil {
		e.async.Flush()
	}
}

// Poll implements rdma.AsyncEndpoint: the inner surface's completions (in
// forwarding order) are merged with the injected failures back into posting
// order under this decorator's tokens.
func (e *Endpoint) Poll(out []rdma.Completion) []rdma.Completion {
	if len(e.posted) == 0 {
		return out
	}
	e.innerComps = e.innerComps[:0]
	if e.async != nil {
		e.innerComps = e.async.Poll(e.innerComps)
	}
	j := 0
	for _, p := range e.posted {
		c := rdma.Completion{Token: p.tok, Err: p.err}
		if p.err == nil {
			ic := &e.innerComps[j]
			j++
			c.Val, c.Resp, c.Err = ic.Val, ic.Resp, ic.Err
		}
		out = append(out, c)
	}
	e.posted = e.posted[:0]
	return out
}
