package faultnet

import (
	"errors"
	"testing"

	"github.com/namdb/rdmatree/internal/rdma"
)

// nopEndpoint is an always-succeeding rdma.Endpoint: the tests below pin the
// decorator's fault decisions, not the inner transport.
type nopEndpoint struct{ verbs int }

func (n *nopEndpoint) Read(p rdma.RemotePtr, dst []uint64) error { n.verbs++; return nil }
func (n *nopEndpoint) ReadMulti(ps []rdma.RemotePtr, dst [][]uint64) error {
	n.verbs++
	return nil
}
func (n *nopEndpoint) Write(p rdma.RemotePtr, src []uint64) error { n.verbs++; return nil }
func (n *nopEndpoint) CompareAndSwap(p rdma.RemotePtr, old, new uint64) (uint64, error) {
	n.verbs++
	return old, nil
}
func (n *nopEndpoint) FetchAdd(p rdma.RemotePtr, delta uint64) (uint64, error) {
	n.verbs++
	return 0, nil
}
func (n *nopEndpoint) Alloc(server int, sz int) (rdma.RemotePtr, error) {
	n.verbs++
	return rdma.MakePtr(server, 64), nil
}
func (n *nopEndpoint) Free(p rdma.RemotePtr, sz int) error { n.verbs++; return nil }
func (n *nopEndpoint) Call(server int, req []byte) ([]byte, error) {
	n.verbs++
	return nil, nil
}
func (n *nopEndpoint) NumServers() int { return 4 }

// countingCounters records fault kinds.
type countingCounters map[string]int

func (c countingCounters) CountFault(kind string) { c[kind]++ }

// faultTrace runs verbs against a fresh endpoint for (sched, client) and
// records which of them failed.
func faultTrace(sched Schedule, client, verbs int) []bool {
	net := New(sched, nil)
	ep := net.Endpoint(&nopEndpoint{}, client)
	p := rdma.MakePtr(1, 64)
	trace := make([]bool, verbs)
	for i := range trace {
		trace[i] = ep.Read(p, nil) != nil
	}
	return trace
}

// TestDeterministicStreams pins the seeding contract: the same (seed,
// client) draws the identical fault sequence, a different client or seed a
// different one.
func TestDeterministicStreams(t *testing.T) {
	sched := Schedule{Seed: 42, DropRate: 0.2}
	a := faultTrace(sched, 3, 500)
	b := faultTrace(sched, 3, 500)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verb %d: same (seed, client) diverged", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("20% drop rate injected nothing in 500 verbs")
	}
	c := faultTrace(sched, 4, 500)
	d := faultTrace(Schedule{Seed: 43, DropRate: 0.2}, 3, 500)
	same := func(x []bool) bool {
		for i := range a {
			if a[i] != x[i] {
				return false
			}
		}
		return true
	}
	if same(c) {
		t.Error("different clients drew identical fault streams")
	}
	if same(d) {
		t.Error("different seeds drew identical fault streams")
	}
}

// TestDropSurfacesTimeout pins the error type of a dropped completion.
func TestDropSurfacesTimeout(t *testing.T) {
	cnt := countingCounters{}
	net := New(Schedule{Seed: 1, DropRate: 1}, cnt)
	ep := net.Endpoint(&nopEndpoint{}, 0)
	err := ep.Write(rdma.MakePtr(0, 64), nil)
	if !errors.Is(err, rdma.ErrTimeout) {
		t.Fatalf("drop surfaced %v, want ErrTimeout", err)
	}
	if !rdma.IsTransient(err) {
		t.Fatal("timeout must be transient")
	}
	if cnt[FaultDrop] != 1 {
		t.Fatalf("drop counter = %d, want 1", cnt[FaultDrop])
	}
}

// TestDelayAccountsOrTimesOut pins the two delay outcomes: within the
// deadline the verb executes and the latency is accumulated; past it the
// verb times out unexecuted.
func TestDelayAccountsOrTimesOut(t *testing.T) {
	cnt := countingCounters{}
	net := New(Schedule{Seed: 7, DelayRate: 1, DeadlineNS: 1000, MaxDelayNS: 2000}, cnt)
	inner := &nopEndpoint{}
	ep := net.Endpoint(inner, 0)
	p := rdma.MakePtr(2, 64)
	timeouts := 0
	for i := 0; i < 200; i++ {
		if err := ep.Read(p, nil); err != nil {
			if !errors.Is(err, rdma.ErrTimeout) {
				t.Fatalf("delayed verb surfaced %v, want ErrTimeout", err)
			}
			timeouts++
		}
	}
	if timeouts == 0 || timeouts == 200 {
		t.Fatalf("delays in [1, 2000]ns vs 1000ns deadline should mix outcomes, got %d/200 timeouts", timeouts)
	}
	if ep.DelayedNS <= 0 {
		t.Fatal("within-deadline delays not accumulated")
	}
	if inner.verbs != 200-timeouts {
		t.Fatalf("inner saw %d verbs, want %d (timed-out verbs must not execute)", inner.verbs, 200-timeouts)
	}
	if cnt[FaultDelay] == 0 || cnt[FaultDelayTimeout] != timeouts {
		t.Fatalf("counters delay=%d delay-timeout=%d, want >0 and %d", cnt[FaultDelay], cnt[FaultDelayTimeout], timeouts)
	}
}

// TestQPErrorUntilReconnect pins the QP state machine: after a scheduled QP
// error every verb to that server fails until Reconnect, and other servers
// stay reachable.
func TestQPErrorUntilReconnect(t *testing.T) {
	net := New(Schedule{Seed: 5, QPErrorEvery: 10}, nil)
	inner := &nopEndpoint{}
	ep := net.Endpoint(inner, 0)
	p := rdma.MakePtr(1, 64)
	var qpErr error
	for i := 0; i < 100 && qpErr == nil; i++ {
		qpErr = ep.Read(p, nil)
	}
	if !errors.Is(qpErr, rdma.ErrQPError) {
		t.Fatalf("QPErrorEvery=10 never broke the QP in 100 verbs (last err %v)", qpErr)
	}
	if err := ep.Read(p, nil); !errors.Is(err, rdma.ErrQPError) {
		t.Fatalf("broken QP must keep failing, got %v", err)
	}
	if err := ep.Read(rdma.MakePtr(2, 64), nil); err != nil {
		t.Fatalf("other servers must stay reachable, got %v", err)
	}
	if err := ep.Reconnect(1); err != nil {
		t.Fatalf("reconnect to healthy server: %v", err)
	}
	if err := ep.Read(p, nil); err != nil {
		t.Fatalf("verb after reconnect: %v", err)
	}
}

// TestScriptedCrashRestart pins the crash window: while down verbs fail with
// ErrQPError and Reconnect with ErrServerDown; reconnect attempts advance
// the tick, so a blocked client alone reaches the restart.
func TestScriptedCrashRestart(t *testing.T) {
	cnt := countingCounters{}
	net := New(Schedule{Seed: 9, Steps: []Step{{AtTick: 5, Server: 1, DownForTicks: 20}}}, cnt)
	ep := net.Endpoint(&nopEndpoint{}, 0)
	p := rdma.MakePtr(1, 64)
	for i := 0; i < 4; i++ {
		if err := ep.Read(p, nil); err != nil {
			t.Fatalf("verb %d before the crash: %v", i, err)
		}
	}
	if err := ep.Read(p, nil); !errors.Is(err, rdma.ErrQPError) {
		t.Fatalf("verb into the crash window got %v, want ErrQPError", err)
	}
	sawDown := false
	for i := 0; i < 50; i++ {
		err := ep.Reconnect(1)
		if err == nil {
			break
		}
		if !errors.Is(err, rdma.ErrServerDown) {
			t.Fatalf("reconnect while down got %v, want ErrServerDown", err)
		}
		sawDown = true
	}
	if !sawDown {
		t.Fatal("never observed the down window")
	}
	if err := ep.Read(p, nil); err != nil {
		t.Fatalf("verb after restart: %v", err)
	}
	if cnt["crash"] != 1 || cnt[FaultServerDown] == 0 {
		t.Fatalf("counters crash=%d server-down=%d, want 1 and >0", cnt["crash"], cnt[FaultServerDown])
	}
}

// TestRegionLossIsPermanent pins the Lose semantics: after a restart without
// the region, verbs and reconnects fail with the permanent ErrServerLost.
func TestRegionLossIsPermanent(t *testing.T) {
	net := New(Schedule{Seed: 11, Steps: []Step{{AtTick: 2, Server: 2, DownForTicks: 3, Lose: true}}}, nil)
	ep := net.Endpoint(&nopEndpoint{}, 0)
	p := rdma.MakePtr(2, 64)
	var err error
	for i := 0; i < 20; i++ {
		if err = ep.Read(p, nil); errors.Is(err, rdma.ErrServerLost) {
			break
		}
		if err != nil {
			err = ep.Reconnect(2)
			if errors.Is(err, rdma.ErrServerLost) {
				break
			}
		}
	}
	if !errors.Is(err, rdma.ErrServerLost) {
		t.Fatalf("region loss never surfaced ErrServerLost (last err %v)", err)
	}
	if rdma.IsTransient(err) {
		t.Fatal("ErrServerLost must not be transient")
	}
	if err := ep.Read(rdma.MakePtr(1, 64), nil); err != nil {
		t.Fatalf("surviving servers must stay reachable, got %v", err)
	}
}

// TestZeroScheduleIsTransparent pins the pass-through contract used by the
// conformance tests: a zero schedule never fails or delays a verb.
func TestZeroScheduleIsTransparent(t *testing.T) {
	net := New(Schedule{}, nil)
	inner := &nopEndpoint{}
	ep := net.Endpoint(inner, 0)
	for i := 0; i < 1000; i++ {
		if err := ep.Read(rdma.MakePtr(i%4, 64), nil); err != nil {
			t.Fatalf("zero schedule injected a fault: %v", err)
		}
	}
	if inner.verbs != 1000 || ep.DelayedNS != 0 {
		t.Fatalf("zero schedule must delegate everything undelayed (verbs=%d delayed=%d)", inner.verbs, ep.DelayedNS)
	}
}
