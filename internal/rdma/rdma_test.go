package rdma

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRemotePtrRoundTrip(t *testing.T) {
	cases := []struct {
		server int
		offset uint64
	}{
		{0, 0},
		{0, 8},
		{1, 0},
		{127, MaxOffset},
		{63, 1 << 40},
	}
	for _, c := range cases {
		p := MakePtr(c.server, c.offset)
		if p.IsNull() {
			t.Fatalf("MakePtr(%d,%#x) is null", c.server, c.offset)
		}
		if p.Server() != c.server || p.Offset() != c.offset {
			t.Fatalf("round trip (%d,%#x) -> (%d,%#x)", c.server, c.offset, p.Server(), p.Offset())
		}
	}
}

func TestRemotePtrRoundTripProperty(t *testing.T) {
	f := func(server uint8, offset uint64) bool {
		s := int(server % MaxServers)
		o := (offset % MaxOffset) &^ 7
		p := MakePtr(s, o)
		return !p.IsNull() && p.Server() == s && p.Offset() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNullPtr(t *testing.T) {
	if !NullPtr.IsNull() {
		t.Fatal("NullPtr not null")
	}
	if NullPtr.String() != "null" {
		t.Fatalf("NullPtr.String() = %q", NullPtr.String())
	}
	if MakePtr(0, 0).IsNull() {
		t.Fatal("pointer to server 0 offset 0 must not be null")
	}
}

func TestRemotePtrAdd(t *testing.T) {
	p := MakePtr(5, 100)
	q := p.Add(24)
	if q.Server() != 5 || q.Offset() != 124 {
		t.Fatalf("Add: got (%d,%d)", q.Server(), q.Offset())
	}
}

func TestMakePtrPanicsOnBadServer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakePtr(MaxServers, 0)
}

func TestRegionReadWrite(t *testing.T) {
	r := NewRegion(1024)
	src := []uint64{1, 2, 3, 4, 5}
	r.Write(64, src)
	dst := make([]uint64, 5)
	r.Read(64, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("read back %v; want %v", dst, src)
		}
	}
	// Unwritten memory reads as zero.
	r.Read(512, dst)
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("unwritten memory read %v; want zeros", dst)
		}
	}
}

func TestRegionSizeRoundsUp(t *testing.T) {
	r := NewRegion(13)
	if r.Size() != 16 {
		t.Fatalf("Size = %d; want 16", r.Size())
	}
}

func TestRegionUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned offset")
		}
	}()
	r := NewRegion(64)
	r.Load(4)
}

func TestRegionOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	r := NewRegion(64)
	r.Read(56, make([]uint64, 2))
}

func TestRegionCASSemantics(t *testing.T) {
	r := NewRegion(64)
	r.Store(8, 42)
	// Successful CAS returns the old value.
	if got := r.CompareAndSwap(8, 42, 99); got != 42 {
		t.Fatalf("CAS returned %d; want 42", got)
	}
	if r.Load(8) != 99 {
		t.Fatalf("value after CAS = %d; want 99", r.Load(8))
	}
	// Failed CAS returns the current value and does not modify.
	if got := r.CompareAndSwap(8, 42, 7); got != 99 {
		t.Fatalf("failed CAS returned %d; want 99", got)
	}
	if r.Load(8) != 99 {
		t.Fatalf("value mutated by failed CAS: %d", r.Load(8))
	}
}

func TestRegionFetchAdd(t *testing.T) {
	r := NewRegion(64)
	r.Store(16, 10)
	if got := r.FetchAdd(16, 5); got != 10 {
		t.Fatalf("FetchAdd returned %d; want 10", got)
	}
	if r.Load(16) != 15 {
		t.Fatalf("value after FetchAdd = %d; want 15", r.Load(16))
	}
}

func TestRegionConcurrentAtomics(t *testing.T) {
	r := NewRegion(64)
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.FetchAdd(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Load(0); got != goroutines*perG {
		t.Fatalf("counter = %d; want %d", got, goroutines*perG)
	}
}

func TestRegionConcurrentCASLock(t *testing.T) {
	// A CAS-based spinlock protecting a plain counter word must not lose
	// updates.
	r := NewRegion(64)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for {
					if r.CompareAndSwap(0, 0, 1) == 0 {
						break
					}
				}
				r.Store(8, r.Load(8)+1)
				if r.CompareAndSwap(0, 1, 0) != 1 {
					t.Error("lock word corrupted")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Load(8); got != goroutines*perG {
		t.Fatalf("counter = %d; want %d", got, goroutines*perG)
	}
}

func TestAllocatorBumpAndReuse(t *testing.T) {
	a := NewAllocator(0, 1024)
	o1, err := a.Alloc(100) // rounds to 104
	if err != nil {
		t.Fatal(err)
	}
	o2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if o1 == o2 {
		t.Fatal("two allocations returned the same offset")
	}
	if o1%8 != 0 || o2%8 != 0 {
		t.Fatalf("unaligned allocations %d, %d", o1, o2)
	}
	a.Free(o1, 100)
	o3, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if o3 != o1 {
		t.Fatalf("freed block not reused: got %d want %d", o3, o1)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(0, 64)
	if _, err := a.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(8); err != ErrOutOfMemory {
		t.Fatalf("err = %v; want ErrOutOfMemory", err)
	}
}

func TestAllocatorReservedStart(t *testing.T) {
	a := NewAllocator(128, 1024)
	off, err := a.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if off < 128 {
		t.Fatalf("allocation %d inside reserved area", off)
	}
}

func TestAllocatorConcurrent(t *testing.T) {
	a := NewAllocator(0, 1<<20)
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				off, err := a.Alloc(64)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[off] {
					t.Errorf("offset %d allocated twice", off)
				}
				seen[off] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestAllocatorUsedAccounting(t *testing.T) {
	a := NewAllocator(0, 1024)
	o, _ := a.Alloc(64)
	if a.Used() != 64 {
		t.Fatalf("Used = %d; want 64", a.Used())
	}
	a.Free(o, 64)
	if a.Used() != 0 {
		t.Fatalf("Used after free = %d; want 0", a.Used())
	}
	if a.Remaining() != 1024-64 {
		t.Fatalf("Remaining = %d; want %d", a.Remaining(), 1024-64)
	}
}

func TestAllocatorFreeRejectsBogusOffsets(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Free accepted a bogus offset", name)
			}
		}()
		f()
	}

	a := NewAllocator(128, 1024)
	off, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}

	mustPanic("misaligned", func() { a.Free(off+4, 64) })
	mustPanic("before start", func() { a.Free(64, 64) })
	mustPanic("past bump pointer", func() { a.Free(off+64, 64) })
	mustPanic("tail past bump pointer", func() { a.Free(off, 128) })

	// The genuine block is still accepted and reused after the rejections.
	a.Free(off, 64)
	got, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != off {
		t.Fatalf("freed block not reused: got %#x, want %#x", got, off)
	}
}

func TestNewServerLayout(t *testing.T) {
	s := NewServer(3, 4096, 256)
	if s.ID != 3 {
		t.Fatalf("ID = %d", s.ID)
	}
	if s.Region.Size() != 4096 {
		t.Fatalf("region size = %d", s.Region.Size())
	}
	off, err := s.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if off < 256 {
		t.Fatalf("allocation %d inside reserved superblock", off)
	}
}
