package rdma

import (
	"fmt"
	"sync/atomic"
)

// Region is a registered memory region of one memory server: the target of
// all one-sided verbs.
//
// Memory is word-addressed internally ([]uint64) and byte-addressed at the
// API (offsets must be 8-byte aligned), mirroring the constraint that RDMA
// atomics operate on aligned 8-byte words. Every word access is atomic, so
// the region provides exactly the consistency a real RDMA NIC provides:
// CAS/FETCH_AND_ADD are atomic, individual 8-byte words never tear, but
// multi-word READs and WRITEs are *not* atomic with respect to concurrent
// writers — the index protocols must (and do) handle that with version
// checks, as in the paper.
type Region struct {
	words []uint64
}

// NewRegion allocates a zeroed region of the given size in bytes (rounded up
// to a multiple of 8).
func NewRegion(sizeBytes int) *Region {
	if sizeBytes < 0 {
		panic("rdma: negative region size")
	}
	return &Region{words: make([]uint64, (sizeBytes+7)/8)}
}

// Size returns the region size in bytes.
func (r *Region) Size() uint64 { return uint64(len(r.words)) * 8 }

func (r *Region) wordIndex(off uint64) int {
	if off%8 != 0 {
		panic(fmt.Sprintf("rdma: unaligned offset %#x", off))
	}
	w := off / 8
	if w >= uint64(len(r.words)) {
		panic(fmt.Sprintf("rdma: offset %#x beyond region of %d bytes", off, r.Size()))
	}
	return int(w)
}

// checkRange panics if [off, off+n*8) is not inside the region.
func (r *Region) checkRange(off uint64, n int) int {
	w := r.wordIndex(off)
	if w+n > len(r.words) {
		panic(fmt.Sprintf("rdma: range [%#x,+%d words) beyond region of %d bytes", off, n, r.Size()))
	}
	return w
}

// Read copies len(dst) words starting at byte offset off into dst.
func (r *Region) Read(off uint64, dst []uint64) {
	w := r.checkRange(off, len(dst))
	for i := range dst {
		dst[i] = atomic.LoadUint64(&r.words[w+i])
	}
}

// Write copies src into the region starting at byte offset off.
func (r *Region) Write(off uint64, src []uint64) {
	w := r.checkRange(off, len(src))
	for i, v := range src {
		atomic.StoreUint64(&r.words[w+i], v)
	}
}

// Load atomically reads the word at byte offset off.
func (r *Region) Load(off uint64) uint64 {
	return atomic.LoadUint64(&r.words[r.wordIndex(off)])
}

// Store atomically writes the word at byte offset off.
func (r *Region) Store(off uint64, v uint64) {
	atomic.StoreUint64(&r.words[r.wordIndex(off)], v)
}

// CompareAndSwap executes an atomic compare-and-swap on the word at off. It
// returns the value observed before the operation; the swap succeeded iff
// the returned value equals old (matching ibverbs atomic CAS semantics,
// which always return the prior value).
func (r *Region) CompareAndSwap(off uint64, old, new uint64) uint64 {
	w := r.wordIndex(off)
	for {
		cur := atomic.LoadUint64(&r.words[w])
		if cur != old {
			return cur
		}
		if atomic.CompareAndSwapUint64(&r.words[w], old, new) {
			return old
		}
	}
}

// FetchAdd atomically adds delta to the word at off and returns the value
// before the addition.
func (r *Region) FetchAdd(off uint64, delta uint64) uint64 {
	w := r.wordIndex(off)
	return atomic.AddUint64(&r.words[w], delta) - delta
}

// Zero clears the whole region, modeling a server whose registered memory
// was lost on restart: the new incarnation re-registers a fresh (zeroed)
// region at the same address range. Word-at-a-time atomic stores, so
// concurrent readers see zeros or old words but never torn values.
func (r *Region) Zero() {
	for w := range r.words {
		atomic.StoreUint64(&r.words[w], 0)
	}
}
